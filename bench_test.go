// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact — run any of them to re-derive
// the corresponding result), the ablations DESIGN.md calls out, and
// micro-benchmarks of the runtime's hot paths.
package powerstruggle

import (
	"io"
	"testing"

	"powerstruggle/internal/allocator"
	"powerstruggle/internal/cf"
	"powerstruggle/internal/cluster"
	"powerstruggle/internal/coordinator"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/exp"
	"powerstruggle/internal/policy"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/trace"
	"powerstruggle/internal/workload"
)

func benchEnv(b *testing.B) *exp.Env {
	b.Helper()
	env, err := exp.NewEnv()
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkTableI regenerates Table I (server configuration).
func BenchmarkTableI(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		r := exp.TableI(env)
		if _, err := r.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates Table II (application mixes).
func BenchmarkTableII(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		r := exp.TableII(env)
		if _, err := r.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates Fig. 2 (application-level utility curves).
func BenchmarkFig2(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig2(env, "", ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates Fig. 3 (resource-level utilities).
func BenchmarkFig3(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		_ = exp.Fig3(env)
	}
}

// BenchmarkFig4 regenerates Fig. 4 (space vs time coordination).
func BenchmarkFig4(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig4(env, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5 (ESD duty cycling, alternate vs
// consolidated).
func BenchmarkFig5(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig5(env, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7 (online sampling calibration) at a
// reduced sweep so the benchmark stays tractable.
func BenchmarkFig7(b *testing.B) {
	env := benchEnv(b)
	cfg := exp.Fig7Config{
		Fractions: []float64{0.10},
		Model:     cf.ModelConfig{Factors: 4, Epochs: 60, LearnRate: 0.03, Reg: 0.01, Seed: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7(env, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates Fig. 8 (the four policies at 100 W across
// the fifteen mixes, measured on the simulator).
func BenchmarkFig8(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig8(env, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9 (utility-difference case studies).
func BenchmarkFig9(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates Fig. 10 (the stringent 80 W cap with ESD).
func BenchmarkFig10(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig10(env, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11 regenerates Fig. 11 (arrival/departure dynamics).
func BenchmarkFig11(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig11(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12 regenerates Fig. 12 (cluster peak shaving).
func BenchmarkFig12(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig12(env, exp.Fig12Config{StepSeconds: 900}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAllocGranularity sweeps the allocator's DP step: the
// marginal-utility apportioning degrades gracefully as the grid
// coarsens (design choice 1 in DESIGN.md).
func BenchmarkAblationAllocGranularity(b *testing.B) {
	env := benchEnv(b)
	a := env.Lib.MustApp("STREAM")
	k := env.Lib.MustApp("kmeans")
	curves := []*workload.Curve{
		workload.OptimalCurve(env.HW, a),
		workload.OptimalCurve(env.HW, k),
	}
	budget := env.HW.DynamicBudget(100)
	for _, step := range []struct {
		name string
		w    float64
	}{{"0.25W", 0.25}, {"0.5W", 0.5}, {"1W", 1}, {"2W", 2}} {
		b.Run(step.name, func(b *testing.B) {
			var perf float64
			for i := 0; i < b.N; i++ {
				plan, err := allocator.Apportion(curves, budget, step.w)
				if err != nil {
					b.Fatal(err)
				}
				perf = plan.TotalPerf
			}
			b.ReportMetric(perf, "totalPerf")
		})
	}
}

// BenchmarkAblationKnobSet restricts the knob space: frequency-only
// curves collapse App+Res-Aware onto App-Aware (design choice 2).
func BenchmarkAblationKnobSet(b *testing.B) {
	env := benchEnv(b)
	a := env.Lib.MustApp("STREAM")
	k := env.Lib.MustApp("kmeans")
	budget := env.HW.DynamicBudget(100)
	cases := []struct {
		name   string
		curves []*workload.Curve
	}{
		{"freq-only", []*workload.Curve{workload.RAPLCurve(env.HW, a), workload.RAPLCurve(env.HW, k)}},
		{"full-fnm", []*workload.Curve{workload.OptimalCurve(env.HW, a), workload.OptimalCurve(env.HW, k)}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var perf float64
			for i := 0; i < b.N; i++ {
				plan, err := allocator.Apportion(tc.curves, budget, 0)
				if err != nil {
					b.Fatal(err)
				}
				perf = plan.TotalPerf
			}
			b.ReportMetric(perf, "totalPerf")
		})
	}
}

// BenchmarkAblationDutyCycle compares alternate and consolidated ESD
// duty cycling at the 70 W cap (design choice 3: amortizing P_cm).
func BenchmarkAblationDutyCycle(b *testing.B) {
	env := benchEnv(b)
	a := env.Lib.MustApp("STREAM")
	k := env.Lib.MustApp("kmeans")
	curves := []*workload.Curve{
		workload.OptimalCurve(env.HW, a),
		workload.OptimalCurve(env.HW, k),
	}
	cc := coordinator.Config{HW: env.HW, CapW: 70}
	for _, tc := range []struct {
		name string
		mk   func(dev *esd.Device) (coordinator.Schedule, error)
	}{
		{"alternate", func(dev *esd.Device) (coordinator.Schedule, error) {
			return coordinator.AlternateESD(cc, curves, dev)
		}},
		{"consolidated", func(dev *esd.Device) (coordinator.Schedule, error) {
			return coordinator.ESD(cc, curves, dev)
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var perf float64
			for i := 0; i < b.N; i++ {
				dev, err := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
				if err != nil {
					b.Fatal(err)
				}
				sched, err := tc.mk(dev)
				if err != nil {
					b.Fatal(err)
				}
				perf = sched.TotalPerf
			}
			b.ReportMetric(perf, "totalPerf")
		})
	}
}

// BenchmarkAblationSampling sweeps the CF sampling fraction (design
// choice 4, Fig 7's operating point).
func BenchmarkAblationSampling(b *testing.B) {
	env := benchEnv(b)
	model := cf.ModelConfig{Factors: 4, Epochs: 60, LearnRate: 0.03, Reg: 0.01, Seed: 1}
	for _, frac := range []struct {
		name string
		f    float64
	}{{"2pct", 0.02}, {"10pct", 0.10}, {"40pct", 0.40}} {
		b.Run(frac.name, func(b *testing.B) {
			var overshoot float64
			for i := 0; i < b.N; i++ {
				res, err := exp.Fig7(env, exp.Fig7Config{Fractions: []float64{frac.f}, Model: model})
				if err != nil {
					b.Fatal(err)
				}
				overshoot = res.Points[0].OvershootPct
			}
			b.ReportMetric(overshoot, "overshoot%")
		})
	}
}

// BenchmarkAblationESD compares the lead-acid profile against an ideal
// store at the 80 W cap, bounding the R4 benefit (design choice 5).
func BenchmarkAblationESD(b *testing.B) {
	env := benchEnv(b)
	a := env.Lib.MustApp("X264")
	k := env.Lib.MustApp("SSSP")
	curves := []*workload.Curve{
		workload.OptimalCurve(env.HW, a),
		workload.OptimalCurve(env.HW, k),
	}
	cc := coordinator.Config{HW: env.HW, CapW: 80}
	for _, tc := range []struct {
		name string
		spec esd.Spec
	}{
		{"lead-acid", esd.LeadAcid(300e3)},
		{"li-ion", esd.LiIon(300e3)},
		{"ideal", esd.Ideal(300e3)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var perf float64
			for i := 0; i < b.N; i++ {
				dev, err := esd.NewDevice(tc.spec, 0.6)
				if err != nil {
					b.Fatal(err)
				}
				sched, err := coordinator.ESD(cc, curves, dev)
				if err != nil {
					b.Fatal(err)
				}
				perf = sched.TotalPerf
			}
			b.ReportMetric(perf, "totalPerf")
		})
	}
}

// BenchmarkPolicyPlan measures one full policy planning pass (curve
// construction + DP apportioning + coordination).
func BenchmarkPolicyPlan(b *testing.B) {
	env := benchEnv(b)
	a := env.Lib.MustApp("STREAM")
	k := env.Lib.MustApp("kmeans")
	for i := 0; i < b.N; i++ {
		if _, err := policy.Plan(policy.AppResAware, policy.Context{
			HW: env.HW, CapW: 100,
			Profiles: []*workload.Profile{a, k},
			Library:  env.Lib,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalCurve measures the 432-setting Pareto construction.
func BenchmarkOptimalCurve(b *testing.B) {
	env := benchEnv(b)
	p := env.Lib.MustApp("facesim")
	for i := 0; i < b.N; i++ {
		_ = workload.OptimalCurve(env.HW, p)
	}
}

// BenchmarkAllocatorDP measures the budget DP for two applications.
func BenchmarkAllocatorDP(b *testing.B) {
	env := benchEnv(b)
	curves := []*workload.Curve{
		workload.OptimalCurve(env.HW, env.Lib.MustApp("STREAM")),
		workload.OptimalCurve(env.HW, env.Lib.MustApp("kmeans")),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := allocator.Apportion(curves, 30, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorStep measures the simulated server's step rate with
// two running applications.
func BenchmarkSimulatorStep(b *testing.B) {
	hw := simhw.DefaultConfig()
	srv, err := simhw.NewServer(hw)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		id, err := srv.Claim(6)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.SetKnobs(id, 1.8, 6, 8); err != nil {
			b.Fatal(err)
		}
		if err := srv.SetRunning(id, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Step(0.01)
	}
}

// BenchmarkMediatedSecond measures one simulated second of the full
// public-API loop (plan + execute).
func BenchmarkMediatedSecond(b *testing.B) {
	srv, err := NewServer(Defaults())
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.SetCap(100); err != nil {
		b.Fatal(err)
	}
	for _, a := range []string{"STREAM", "kmeans"} {
		if err := srv.Admit(a); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Run(AppResAware, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBatterySize sweeps the ESD nameplate capacity at the
// 80 W cap: small banks force short periods (more restore overhead),
// large banks change nothing past the point where the period is
// restore-amortized — the "how much storage" question of the energy
// storage literature the paper builds on.
func BenchmarkAblationBatterySize(b *testing.B) {
	env := benchEnv(b)
	a := env.Lib.MustApp("STREAM")
	k := env.Lib.MustApp("kmeans")
	curves := []*workload.Curve{
		workload.OptimalCurve(env.HW, a),
		workload.OptimalCurve(env.HW, k),
	}
	cc := coordinator.Config{HW: env.HW, CapW: 80}
	for _, tc := range []struct {
		name string
		capJ float64
	}{{"3kJ", 3e3}, {"30kJ", 30e3}, {"300kJ", 300e3}, {"3MJ", 3e6}} {
		b.Run(tc.name, func(b *testing.B) {
			var perf float64
			for i := 0; i < b.N; i++ {
				dev, err := esd.NewDevice(esd.LeadAcid(tc.capJ), 0.6)
				if err != nil {
					b.Fatal(err)
				}
				sched, err := coordinator.ESD(cc, curves, dev)
				if err != nil {
					b.Fatal(err)
				}
				perf = sched.TotalPerf
			}
			b.ReportMetric(perf, "totalPerf")
		})
	}
}

// BenchmarkExtClusterApportion compares the equal cluster-cap split with
// utility-aware apportioning (the UtilityOurs extension) at 30% shaving.
func BenchmarkExtClusterApportion(b *testing.B) {
	env := benchEnv(b)
	mixes := workload.Mixes()[:10]
	ev, err := cluster.NewEvaluator(cluster.Config{HW: env.HW, Library: env.Lib, Mixes: mixes})
	if err != nil {
		b.Fatal(err)
	}
	uc, err := ev.UncappedClusterW()
	if err != nil {
		b.Fatal(err)
	}
	load, err := trace.DiurnalLoad(trace.Config{Seed: 7, StepSeconds: 1800})
	if err != nil {
		b.Fatal(err)
	}
	demand := make([]trace.Point, len(load))
	for i, p := range load {
		demand[i] = trace.Point{T: p.T, V: p.V * uc}
	}
	caps, err := trace.PeakShaveCaps(demand, 0.30, uc)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		strat cluster.Strategy
	}{{"equal", cluster.EqualOurs}, {"utility", cluster.UtilityOurs}} {
		b.Run(tc.name, func(b *testing.B) {
			var perf float64
			for i := 0; i < b.N; i++ {
				r, err := ev.Evaluate(caps, tc.strat)
				if err != nil {
					b.Fatal(err)
				}
				perf = r.AvgPerfFrac * 100
			}
			b.ReportMetric(perf, "perf%")
		})
	}
}

// BenchmarkExtChurn runs the sustained-churn study (Poisson arrivals,
// cap swings) for two simulated minutes.
func BenchmarkExtChurn(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Churn(env, exp.ChurnConfig{Seconds: 120, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Violations != 0 {
			b.Fatalf("%d cap violations under churn", res.Violations)
		}
	}
}

// BenchmarkExtOnline measures one full oracle-vs-learned-utilities sweep
// (the "sampling overheads included" configuration).
func BenchmarkExtOnline(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.Online(env, 100, 3)
		if err != nil {
			b.Fatal(err)
		}
		if res.Ratio < 0.8 {
			b.Fatalf("online ratio %.3f", res.Ratio)
		}
	}
}

// BenchmarkExtPlacement brackets how much power-aware job pairing
// matters: exact max-matching vs naive order vs adversarial pairing at
// the binding reference cap.
func BenchmarkExtPlacement(b *testing.B) {
	env := benchEnv(b)
	ev, err := cluster.NewEvaluator(cluster.Config{
		HW: env.HW, Library: env.Lib, Mixes: workload.Mixes()[:6],
	})
	if err != nil {
		b.Fatal(err)
	}
	apps := env.Lib.Apps()
	for _, tc := range []struct {
		name  string
		place func() (*cluster.Placement, error)
	}{
		{"optimal", func() (*cluster.Placement, error) { return ev.PlaceOptimal(apps, cluster.PlacementConfig{}) }},
		{"naive", func() (*cluster.Placement, error) { return ev.PlaceNaive(apps, cluster.PlacementConfig{}) }},
		{"worst", func() (*cluster.Placement, error) { return ev.PlaceWorst(apps, cluster.PlacementConfig{}) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var perf float64
			for i := 0; i < b.N; i++ {
				p, err := tc.place()
				if err != nil {
					b.Fatal(err)
				}
				perf = p.PredictedPerf
			}
			b.ReportMetric(perf, "totalPerf")
		})
	}
}

// BenchmarkAblationPerCoreDVFS quantifies what true per-core DVFS buys
// over the uniform-per-application enforcement the paper's prototype
// used (its Section II-B lists the per-core knob; its conclusion asks
// for finer-grained hardware control): apportion the 100 W budget over
// uniform vs heterogeneous utility curves.
func BenchmarkAblationPerCoreDVFS(b *testing.B) {
	env := benchEnv(b)
	a := env.Lib.MustApp("SSSP") // serial-limited: boosting one core pays
	k := env.Lib.MustApp("BFS")
	budget := env.HW.DynamicBudget(100)
	cases := []struct {
		name   string
		curves []*workload.Curve
	}{
		{"uniform", []*workload.Curve{workload.OptimalCurve(env.HW, a), workload.OptimalCurve(env.HW, k)}},
		{"per-core", []*workload.Curve{a.HeteroCurve(env.HW), k.HeteroCurve(env.HW)}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var perf float64
			for i := 0; i < b.N; i++ {
				plan, err := allocator.Apportion(tc.curves, budget, 0)
				if err != nil {
					b.Fatal(err)
				}
				perf = plan.TotalPerf
			}
			b.ReportMetric(perf, "totalPerf")
		})
	}
}
