package powerstruggle_test

import (
	"fmt"

	"powerstruggle"
)

// Example reproduces the paper's headline scenario: a memory-bound and a
// compute-bound application sharing a 100 W server, mediated by the
// App+Res-Aware policy.
func Example() {
	srv, err := powerstruggle.NewServer(powerstruggle.Defaults())
	if err != nil {
		panic(err)
	}
	if err := srv.SetCap(100); err != nil {
		panic(err)
	}
	for _, app := range []string{"STREAM", "kmeans"} {
		if err := srv.Admit(app); err != nil {
			panic(err)
		}
	}
	res, err := srv.Run(powerstruggle.AppResAware, 30)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mode=%s violations=%d unequal-split=%v\n",
		res.Mode, res.CapViolations, res.AppBudgetW[0] != res.AppBudgetW[1])
	// Output: mode=space violations=0 unequal-split=true
}

// ExampleServer_AdmitCritical shows the latency-critical extension: an
// SLO floor reserves watts for the critical application before the
// best-effort job gets any.
func ExampleServer_AdmitCritical() {
	cfg := powerstruggle.Defaults()
	cfg.BatteryJ = 0
	srv, err := powerstruggle.NewServer(cfg)
	if err != nil {
		panic(err)
	}
	if err := srv.SetCap(95); err != nil {
		panic(err)
	}
	if err := srv.AdmitCritical("ferret", 1, 0.9); err != nil {
		panic(err)
	}
	if err := srv.Admit("BFS"); err != nil {
		panic(err)
	}
	res, err := srv.Run(powerstruggle.AppResAware, 20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("critical meets floor: %v\n", res.AppPerf[0] >= 0.88)
	// Output: critical meets floor: true
}

// ExampleServer_Plan inspects a schedule without executing it.
func ExampleServer_Plan() {
	srv, err := powerstruggle.NewServer(powerstruggle.Defaults())
	if err != nil {
		panic(err)
	}
	if err := srv.SetCap(80); err != nil {
		panic(err)
	}
	for _, app := range []string{"X264", "SSSP"} {
		if err := srv.Admit(app); err != nil {
			panic(err)
		}
	}
	sched, err := srv.Plan(powerstruggle.AppResESDAware)
	if err != nil {
		panic(err)
	}
	fmt.Printf("coordination=%s segments=%d\n", sched.Mode, len(sched.Segments))
	// Output: coordination=esd segments=2
}
