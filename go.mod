module powerstruggle

go 1.22
