// Command pscoord is the cluster coordinator: it scrapes a fleet of
// psd-style agents over HTTP, apportions a cluster power cap across the
// live members, and fans the per-server budgets out as leased grants —
// the paper's Section IV-D cluster manager with a real network in the
// loop instead of a function call.
//
// Drive three local daemons under a 240 W cluster cap:
//
//	psd -listen 127.0.0.1:8081 -ctrl-server 0 &
//	psd -listen 127.0.0.1:8082 -ctrl-server 1 &
//	psd -listen 127.0.0.1:8083 -ctrl-server 2 &
//	pscoord -agents http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 \
//	        -cap 240 -interval 2s -lease 4
//
// Replay a peak-shaving cap schedule instead of a constant cap:
//
//	pscoord -agents ... -capfile caps.csv -interval 1s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"powerstruggle/internal/buildinfo"
	"powerstruggle/internal/ctrlplane"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pscoord: ")
	var (
		agents   = flag.String("agents", "", "comma-separated agent base URLs (fleet index follows list order) or id=url pairs")
		strategy = flag.String("strategy", "equal", "apportioning strategy: equal or utility")
		capW     = flag.Float64("cap", 240, "cluster power cap in watts (constant-cap mode)")
		capFile  = flag.String("capfile", "", "replay a cluster cap schedule from this CSV (seconds,value) instead of a constant cap")
		interval = flag.Duration("interval", 2*time.Second, "control interval between fan-outs")
		lease    = flag.Float64("lease", 0, "draw lease granted with each assignment, in trace seconds (0: 2x the control interval)")
		missK    = flag.Int("missk", 3, "consecutive failed scrapes before an agent's membership lease expires")
		inflight = flag.Int("max-inflight", 8, "fan-out concurrency bound")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-RPC attempt timeout")
		retries  = flag.Int("retries", 2, "per-RPC retries beyond the first attempt")
		floorW   = flag.Float64("floor", 0, "per-server idle floor for the utility DP (0: learn from agent reports)")
		verbose  = flag.Bool("v", false, "log every control interval, not just membership changes")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	refs, err := parseAgents(*agents)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := ctrlplane.ParseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	leaseS := *lease
	if leaseS == 0 {
		// Default the draw lease to twice the control interval: short
		// enough that a partitioned agent fences within two intervals,
		// long enough that one dropped fan-out does not fence the
		// whole fleet.
		leaseS = 2 * interval.Seconds()
	}
	hub := telemetry.New(0)
	coord, err := ctrlplane.New(ctrlplane.Config{
		Agents:      refs,
		Strategy:    strat,
		LeaseS:      leaseS,
		MissK:       *missK,
		MaxInFlight: *inflight,
		RPCTimeout:  *timeout,
		Retries:     *retries,
		FloorW:      *floorW,
		Telemetry:   hub,
	})
	if err != nil {
		log.Fatal(err)
	}

	var caps []trace.Point
	if *capFile != "" {
		f, err := os.Open(*capFile)
		if err != nil {
			log.Fatal(err)
		}
		caps, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("replaying %d cap steps over %d agents (%v, lease %.1fs)", len(caps), len(refs), strat, leaseS)
	} else {
		log.Printf("driving %d agents at %.0f W cluster cap every %v (%v, lease %.1fs)", len(refs), *capW, *interval, strat, leaseS)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	step, expired := 0, 0
	t := 0.0
	for {
		cap := *capW
		if caps != nil {
			if step >= len(caps) {
				break
			}
			t, cap = caps[step].T, caps[step].V
		}
		res, err := coord.Step(ctx, t, cap)
		if err != nil {
			log.Fatal(err)
		}
		alive := 0
		for _, a := range res.Alive {
			if a {
				alive++
			}
		}
		if res.Reapportioned || res.ScrapeErrs > 0 || res.AssignErrs > 0 || *verbose {
			log.Printf("t=%8.0fs cap=%7.1fW alive=%d/%d grid=%7.1fW perf=%5.1f scrapeErrs=%d assignErrs=%d%s",
				res.T, res.CapW, alive, len(refs), res.FleetGridW, res.FleetPerfN,
				res.ScrapeErrs, res.AssignErrs, reapNote(res))
		}
		if alive == 0 {
			expired++
			if expired >= 3 {
				log.Printf("whole fleet unreachable for %d intervals; still retrying", expired)
				expired = 0
			}
		} else {
			expired = 0
		}
		step++
		if caps == nil {
			t += interval.Seconds()
		}
		select {
		case <-ctx.Done():
			summarize(coord)
			return
		case <-ticker.C:
		}
	}
	summarize(coord)
}

func reapNote(res ctrlplane.StepResult) string {
	if !res.Reapportioned {
		return ""
	}
	return "  [re-apportioned]"
}

func summarize(coord *ctrlplane.Coordinator) {
	st := coord.Stats()
	log.Printf("done: %d steps, %d re-apportions, %d lease expiries, %d rejoins, %d scrape failures, %d assign failures",
		st.Steps, st.Reapportions, st.LeaseExpiries, st.Rejoins, st.ScrapeFailures, st.AssignFailures)
	for _, ev := range coord.FaultEvents() {
		log.Printf("  event t=%.0fs %s %s: %s", ev.T, ev.Kind, ev.Target, ev.Detail)
	}
}

// parseAgents accepts "url,url,..." (IDs follow list order) or
// "id=url,id=url" pairs.
func parseAgents(s string) ([]ctrlplane.AgentRef, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("no agents: pass -agents url[,url...]")
	}
	var refs []ctrlplane.AgentRef
	for i, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		id, url := i, tok
		if k, v, ok := strings.Cut(tok, "="); ok {
			n, err := strconv.Atoi(strings.TrimSpace(k))
			if err != nil {
				return nil, fmt.Errorf("bad agent id in %q: %v", tok, err)
			}
			id, url = n, strings.TrimSpace(v)
		}
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			url = "http://" + url
		}
		refs = append(refs, ctrlplane.AgentRef{ID: id, URL: strings.TrimSuffix(url, "/")})
	}
	return refs, nil
}
