// Command pscoord is the cluster coordinator: it scrapes a fleet of
// psd-style agents over HTTP, apportions a cluster power cap across the
// live members, and fans the per-server budgets out as leased grants —
// the paper's Section IV-D cluster manager with a real network in the
// loop instead of a function call.
//
// Drive three local daemons under a 240 W cluster cap:
//
//	psd -listen 127.0.0.1:8081 -ctrl-server 0 &
//	psd -listen 127.0.0.1:8082 -ctrl-server 1 &
//	psd -listen 127.0.0.1:8083 -ctrl-server 2 &
//	pscoord -agents http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 \
//	        -cap 240 -interval 2s -lease 4
//
// Replay a peak-shaving cap schedule instead of a constant cap:
//
//	pscoord -agents ... -capfile caps.csv -interval 1s
//
// Run a highly available pair: two coordinators share a lease file, the
// winner leads, the loser observes with warm state and takes over
// within one interval of leader silence. Agents may also self-register
// instead of being listed:
//
//	pscoord -listen 127.0.0.1:7070 -ha-store /shared/pscoord-term.json -cap 240 &
//	pscoord -listen 127.0.0.1:7071 -ha-store /shared/pscoord-term.json -cap 240 &
//	psd -listen 127.0.0.1:8081 -ctrl-server 0 \
//	    -ctrl-announce http://127.0.0.1:7070,http://127.0.0.1:7071
//
// Or drop the shared filesystem entirely: a -ha-members pool
// replicates the term across the coordinators themselves (each serves
// a voter at its -listen address; campaigns commit on a majority), and
// -ha-priority orders who takes over a lapsed term first:
//
//	M=127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072
//	pscoord -listen 127.0.0.1:7070 -ha-members $M -ha-priority 0 -cap 240 &
//	pscoord -listen 127.0.0.1:7071 -ha-members $M -ha-priority 1 -cap 240 &
//	pscoord -listen 127.0.0.1:7072 -ha-members $M -ha-priority 2 -cap 240 &
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"powerstruggle/internal/buildinfo"
	"powerstruggle/internal/ctrlplane"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pscoord: ")
	var (
		agents     = flag.String("agents", "", "comma-separated agent base URLs (fleet index follows list order) or id=url pairs")
		strategy   = flag.String("strategy", "equal", "apportioning strategy: equal or utility")
		capW       = flag.Float64("cap", 240, "cluster power cap in watts (constant-cap mode)")
		capFile    = flag.String("capfile", "", "replay a cluster cap schedule from this CSV (seconds,value) instead of a constant cap")
		interval   = flag.Duration("interval", 2*time.Second, "control interval between fan-outs")
		lease      = flag.Float64("lease", 0, "draw lease granted with each assignment, in trace seconds (0: 2x the control interval)")
		leaseIv    = flag.Int("lease-iv", 0, "grant protocol-clock leases valid this many control intervals instead of -lease seconds; every grant carries the minting interval counter and the -interval length, and a restarted coordinator rehydrates the counter from fleet scrapes before granting (0: seconds-based leases)")
		missK      = flag.Int("missk", 3, "consecutive failed scrapes before an agent's membership lease expires")
		inflight   = flag.Int("max-inflight", 8, "fan-out concurrency bound")
		timeout    = flag.Duration("timeout", 2*time.Second, "per-RPC attempt timeout")
		retries    = flag.Int("retries", 2, "per-RPC retries beyond the first attempt")
		brkFails   = flag.Int("breaker-fails", 0, "consecutive failed scrapes before an agent's circuit breaker opens (0: disabled)")
		brkOpen    = flag.Int("breaker-open", 0, "control intervals an open breaker skips before a half-open probe (0: default 4)")
		floorW     = flag.Float64("floor", 0, "per-server idle floor for the utility DP (0: learn from agent reports)")
		confFloor  = flag.Float64("curve-conf-floor", 0, "confidence floor for learned utility curves: a member reporting lower coverage takes the curveless even share instead of entering the utility DP (0: default 0.75; negative: admit any learned curve)")
		transport  = flag.String("transport", "json", "default wire for scheme-less addresses: json (HTTP) or binary (pooled TCP frames); explicit http:// or tcp:// URLs override per agent")
		listen     = flag.String("listen", "", "serve /ctrl/register (agent self-registration; the fleet may then start empty) and /ctrl/leader on this address")
		binListen  = flag.String("binary-listen", "", "serve the register/vote/leader surface as binary frames on this TCP address (agents announce to tcp://<addr>)")
		haStore    = flag.String("ha-store", "", "run leader-elected on a shared term file: the path every coordinator of this cluster points at")
		haMembers  = flag.String("ha-members", "", "run leader-elected on a replicated quorum store: comma-separated voter base URLs of the whole coordinator pool, this member's -listen address included (no shared filesystem needed)")
		haPriority = flag.Int("ha-priority", 0, "takeover rank in the pool: 0 steals a lapsed term first, higher ranks hold off longer")
		haID       = flag.String("ha-id", "", "candidate identity in the election (default hostname-pid)")
		haTTL      = flag.Duration("ha-ttl", 0, "leadership term length (default 3x the control interval)")
		shardID    = flag.Int("shard", -1, "run as shard coordinator <id> in a two-tier tree: serve the ShardReport/ShardBudget trunk on -binary-listen and enforce the budget the global grants; -cap only bootstraps the budget until the first grant")
		globalSet  = flag.String("global", "", "run as the global apportioner over these shard trunks: comma-separated id=url[+url...] entries, the +-separated URLs one shard's coordinator set (leader plus standbys); -cap/-capfile drive the cluster cap")
		reclaim    = flag.Float64("reclaim", 0, "in -global mode, seconds a silent shard's last budget stays reserved after its membership expires (0: the budget lease)")
		verbose    = flag.Bool("v", false, "log every control interval, not just membership changes")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	if *globalSet != "" {
		if *shardID >= 0 {
			log.Fatal("-shard and -global are mutually exclusive (one tier per process)")
		}
		if err := runGlobal(*globalSet, *capW, *capFile, *interval, *lease, *leaseIv, *reclaim, *missK,
			*inflight, *timeout, *retries, *verbose); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *shardID >= 0 {
		if *binListen == "" {
			log.Fatal("-shard needs -binary-listen: the global scrapes the trunk over binary frames")
		}
		if *capFile != "" {
			log.Fatal("-shard and -capfile are exclusive: a shard's budget comes from the global; -cap only bootstraps it")
		}
	}

	kind, err := ctrlplane.ParseTransport(*transport)
	if err != nil {
		log.Fatal(err)
	}
	var refs []ctrlplane.AgentRef
	if strings.TrimSpace(*agents) != "" {
		refs, err = parseAgents(*agents, kind)
		if err != nil {
			log.Fatal(err)
		}
	} else if *listen == "" && *binListen == "" {
		log.Fatal("no agents: pass -agents url[,url...], or -listen/-binary-listen to build the fleet from registrations")
	}
	strat, err := ctrlplane.ParseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	leaseS := *lease
	if leaseS == 0 {
		// Default the draw lease to twice the control interval: short
		// enough that a partitioned agent fences within two intervals,
		// long enough that one dropped fan-out does not fence the
		// whole fleet.
		leaseS = 2 * interval.Seconds()
	}
	hub := telemetry.New(0)
	ccfg := ctrlplane.Config{
		Agents:               refs,
		Dynamic:              *listen != "" || *binListen != "",
		Strategy:             strat,
		LeaseS:               leaseS,
		MissK:                *missK,
		MaxInFlight:          *inflight,
		RPCTimeout:           *timeout,
		Retries:              *retries,
		BreakerFails:         *brkFails,
		BreakerOpenIntervals: *brkOpen,
		FloorW:               *floorW,
		CurveConfFloor:       *confFloor,
		Telemetry:            hub,
	}
	if *leaseIv > 0 {
		ccfg.LeaseIv = *leaseIv
		ccfg.IntervalS = interval.Seconds()
	}
	coord, err := ctrlplane.New(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	id := *haID
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "pscoord"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ttl := *haTTL
	if ttl == 0 {
		ttl = 3 * *interval
	}

	var ha *ctrlplane.HA
	var voter *ctrlplane.QuorumVoter
	switch {
	case *haStore != "" && *haMembers != "":
		log.Fatal("-ha-store and -ha-members are mutually exclusive (one election store per cluster)")
	case *haStore != "":
		store, err := ctrlplane.NewFileElection(*haStore)
		if err != nil {
			log.Fatal(err)
		}
		ha, err = ctrlplane.NewHA(coord, ctrlplane.HAConfig{
			ID: id, Election: store, TermTTL: ttl, Priority: *haPriority,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("leader election on %s as %q (term %v, priority %d)", *haStore, id, ttl, *haPriority)
	case *haMembers != "":
		if *listen == "" {
			log.Fatal("-ha-members needs -listen: the pool reaches this member's voter endpoint there")
		}
		var voters []string
		for _, tok := range strings.Split(*haMembers, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			voters = append(voters, kind.DefaultScheme(tok))
		}
		voter = ctrlplane.NewQuorumVoter(hub)
		store, err := ctrlplane.NewQuorumElection(ctrlplane.QuorumConfig{
			Voters: voters, Timeout: *timeout, Telemetry: hub,
		})
		if err != nil {
			log.Fatal(err)
		}
		ha, err = ctrlplane.NewHA(coord, ctrlplane.HAConfig{
			ID: id, Election: store, TermTTL: ttl, Priority: *haPriority,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("quorum election across %d voters as %q (majority %d, term %v, priority %d)",
			len(voters), id, store.Quorum(), ttl, *haPriority)
	}

	var sc *ctrlplane.ShardCoordinator
	if *shardID >= 0 {
		scfg := ctrlplane.ShardConfig{Shard: *shardID, InitialBudgetW: *capW}
		if ha != nil {
			sc, err = ctrlplane.NewShardCoordinatorHA(ha, scfg)
		} else {
			sc, err = ctrlplane.NewShardCoordinator(coord, scfg)
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	if *listen != "" {
		srv := &http.Server{
			Addr:              *listen,
			Handler:           ctrlplane.NewCoordinatorHandler(coord, ha, voter),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("registration listener: %v", err)
			}
		}()
		defer srv.Close()
		log.Printf("serving /ctrl/register and /ctrl/leader on %s", *listen)
	}
	if *binListen != "" {
		bcfg := ctrlplane.NewCoordinatorBinaryConfig(coord, ha, voter)
		if sc != nil {
			bcfg = sc.ShardBinaryConfig(bcfg)
		}
		bsrv, err := ctrlplane.StartBinaryServer(*binListen, bcfg)
		if err != nil {
			log.Fatalf("binary listener: %v", err)
		}
		defer bsrv.Close()
		if sc != nil {
			log.Printf("serving register/vote/leader and shard-%d trunk frames on %s", *shardID, bsrv.URL())
		} else {
			log.Printf("serving register/vote/leader frames on %s", bsrv.URL())
		}
	}

	var caps []trace.Point
	if *capFile != "" {
		f, err := os.Open(*capFile)
		if err != nil {
			log.Fatal(err)
		}
		caps, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("replaying %d cap steps over %d agents (%v, lease %.1fs)", len(caps), len(refs), strat, leaseS)
	} else if sc != nil {
		log.Printf("shard %d driving %d agents under the granted budget (bootstrap %.0f W) every %v (%v, lease %.1fs)",
			*shardID, len(refs), *capW, *interval, strat, leaseS)
	} else {
		log.Printf("driving %d agents at %.0f W cluster cap every %v (%v, lease %.1fs)", len(refs), *capW, *interval, strat, leaseS)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	step, expired := 0, 0
	t := 0.0
	wasLeading := ha == nil
	for {
		cap := *capW
		if caps != nil {
			if step >= len(caps) {
				break
			}
			t, cap = caps[step].T, caps[step].V
		}
		var res ctrlplane.StepResult
		var err error
		switch {
		case sc != nil:
			// Shard mode: the budget in force (granted over the trunk, or
			// the -cap bootstrap) is the cap; the loop's cap math is idle.
			res, err = sc.Step(ctx, t)
		case ha != nil:
			res, err = ha.Step(ctx, t, cap)
		default:
			res, err = coord.Step(ctx, t, cap)
		}
		if err != nil {
			// A canceled step is an orderly shutdown (SIGINT/SIGTERM
			// mid-fan-out), not a failure: resign and summarize instead
			// of dying with the stats unreported.
			if ctx.Err() != nil {
				summarize(coord, ha, sc)
				return
			}
			log.Fatal(err)
		}
		if res.Leading != wasLeading {
			if res.Leading {
				log.Printf("t=%8.0fs LEADING under epoch %d (failover #%d)", res.T, res.Epoch, ha.Failovers())
			} else {
				log.Printf("t=%8.0fs observing (epoch %d%s)", res.T, res.Epoch, deposedNote(res))
			}
			wasLeading = res.Leading
		}
		alive := 0
		for _, a := range res.Alive {
			if a {
				alive++
			}
		}
		if res.Reapportioned || res.ScrapeErrs > 0 || res.AssignErrs > 0 || *verbose {
			log.Printf("t=%8.0fs cap=%7.1fW alive=%d/%d grid=%7.1fW perf=%5.1f scrapeErrs=%d assignErrs=%d%s",
				res.T, res.CapW, alive, len(res.Alive), res.FleetGridW, res.FleetPerfN,
				res.ScrapeErrs, res.AssignErrs, reapNote(res))
		}
		if alive == 0 {
			expired++
			if expired >= 3 {
				log.Printf("whole fleet unreachable for %d intervals; still retrying", expired)
				expired = 0
			}
		} else {
			expired = 0
		}
		step++
		if caps == nil {
			t += interval.Seconds()
		}
		select {
		case <-ctx.Done():
			summarize(coord, ha, sc)
			return
		case <-ticker.C:
		}
	}
	summarize(coord, ha, sc)
}

func reapNote(res ctrlplane.StepResult) string {
	if !res.Reapportioned {
		return ""
	}
	return "  [re-apportioned]"
}

func deposedNote(res ctrlplane.StepResult) string {
	if !res.Deposed {
		return ""
	}
	return ", deposed: a newer leader owns the fleet"
}

func summarize(coord *ctrlplane.Coordinator, ha *ctrlplane.HA, sc *ctrlplane.ShardCoordinator) {
	if sc != nil {
		log.Printf("shard budget in force at exit: %.1f W (starved=%v)", sc.BudgetW(), sc.Starved())
	}
	if ha != nil {
		if err := ha.Resign(); err != nil {
			log.Printf("resign: %v", err)
		}
		term, lead := ha.Leader()
		log.Printf("election: epoch %d, leading=%v, %d failovers, %d campaign errors, %d registrations",
			term.Epoch, lead, ha.Failovers(), ha.CampaignErrors(), coord.Stats().Registrations)
	}
	st := coord.Stats()
	log.Printf("done: %d steps led, %d observed, %d re-apportions, %d lease expiries, %d rejoins, %d scrape failures, %d assign failures",
		st.Steps, st.Observes, st.Reapportions, st.LeaseExpiries, st.Rejoins, st.ScrapeFailures, st.AssignFailures)
	if st.BreakerTrips > 0 {
		log.Printf("breakers: %d trips, %d skipped dials", st.BreakerTrips, st.BreakerSkips)
	}
	for _, ev := range coord.FaultEvents() {
		log.Printf("  event t=%.0fs %s %s: %s", ev.T, ev.Kind, ev.Target, ev.Detail)
	}
}

// runGlobal drives the apex of the two-tier budget tree: each interval
// it scrapes every shard coordinator's report over the binary trunk,
// splits the cluster cap across the live shards, rebalances unused
// headroom, and fans the budgets out as epoch-fenced leased grants.
func runGlobal(set string, capW float64, capFile string, interval time.Duration,
	lease float64, leaseIv int, reclaim float64, missK, inflight int,
	timeout time.Duration, retries int, verbose bool) error {

	shards, err := parseShardRefs(set)
	if err != nil {
		return err
	}
	leaseS := lease
	if leaseS == 0 {
		// Same default as the flat coordinator: two intervals of lease,
		// so one dropped trunk fan-out does not starve a shard.
		leaseS = 2 * interval.Seconds()
	}
	hub := telemetry.New(0)
	gcfg := ctrlplane.GlobalConfig{
		Shards:      shards,
		LeaseS:      leaseS,
		MissK:       missK,
		ReclaimS:    reclaim,
		MaxInFlight: inflight,
		RPCTimeout:  timeout,
		Retries:     retries,
		Telemetry:   hub,
	}
	if leaseIv > 0 {
		gcfg.LeaseIv = leaseIv
		gcfg.IntervalS = interval.Seconds()
	}
	global, err := ctrlplane.NewGlobal(gcfg)
	if err != nil {
		return err
	}
	defer global.Close()

	var caps []trace.Point
	if capFile != "" {
		f, err := os.Open(capFile)
		if err != nil {
			return err
		}
		caps, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		log.Printf("global: replaying %d cap steps over %d shards (lease %.1fs)", len(caps), len(shards), leaseS)
	} else {
		log.Printf("global: driving %d shards at %.0f W cluster cap every %v (lease %.1fs)",
			len(shards), capW, interval, leaseS)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	step := 0
	t := 0.0
	summarizeGlobal := func() {
		st := global.Stats()
		log.Printf("global done: %d steps, %d shard expiries, %d rejoins, %d reclaims, %d scrape failures, %d grant failures",
			st.Steps, st.ShardExpiries, st.ShardRejoins, st.Reclaims, st.ScrapeFailures, st.GrantFailures)
		for _, ev := range global.FaultEvents() {
			log.Printf("  event t=%.0fs %s %s: %s", ev.T, ev.Kind, ev.Target, ev.Detail)
		}
	}
	for {
		cap := capW
		if caps != nil {
			if step >= len(caps) {
				break
			}
			t, cap = caps[step].T, caps[step].V
		}
		res, err := global.Step(ctx, t, cap)
		if err != nil {
			if ctx.Err() != nil {
				summarizeGlobal()
				return nil
			}
			return err
		}
		alive := 0
		var granted float64
		for i, a := range res.Alive {
			if a {
				alive++
			}
			if res.Granted[i] {
				granted += res.Budgets[i]
			}
		}
		if res.ScrapeErrs > 0 || res.GrantErrs > 0 || res.ReservedW > 0 || verbose {
			log.Printf("t=%8.0fs cap=%8.1fW granted=%8.1fW reserved=%7.1fW rebalanced=%6.1fW alive=%d/%d scrapeErrs=%d grantErrs=%d",
				res.T, res.CapW, granted, res.ReservedW, res.RebalancedW, alive, len(shards),
				res.ScrapeErrs, res.GrantErrs)
		}
		step++
		if caps == nil {
			t += interval.Seconds()
		}
		select {
		case <-ctx.Done():
			summarizeGlobal()
			return nil
		case <-ticker.C:
		}
	}
	summarizeGlobal()
	return nil
}

// parseShardRefs accepts "id=url[+url...],..." — one entry per shard,
// the +-separated URLs its coordinator set in takeover order (leader
// first). The trunk is binary-only, so scheme-less addresses become
// tcp://.
func parseShardRefs(s string) ([]ctrlplane.ShardRef, error) {
	var refs []ctrlplane.ShardRef
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("bad shard entry %q: want id=url[+url...]", tok)
		}
		id, err := strconv.Atoi(strings.TrimSpace(k))
		if err != nil {
			return nil, fmt.Errorf("bad shard id in %q: %v", tok, err)
		}
		var urls []string
		for _, u := range strings.Split(v, "+") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			urls = append(urls, strings.TrimSuffix(ctrlplane.TransportBinary.DefaultScheme(u), "/"))
		}
		if len(urls) == 0 {
			return nil, fmt.Errorf("shard %d has no trunk URLs", id)
		}
		refs = append(refs, ctrlplane.ShardRef{ID: id, URLs: urls})
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("no shards: pass -global id=url[+url...],...")
	}
	return refs, nil
}

// parseAgents accepts "url,url,..." (IDs follow list order) or
// "id=url,id=url" pairs. Scheme-less tokens get the -transport kind's
// scheme, so the same list works over either wire; explicit http:// or
// tcp:// URLs pick their own per agent.
func parseAgents(s string, kind ctrlplane.TransportKind) ([]ctrlplane.AgentRef, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("no agents: pass -agents url[,url...]")
	}
	var refs []ctrlplane.AgentRef
	for i, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		id, url := i, tok
		if k, v, ok := strings.Cut(tok, "="); ok {
			n, err := strconv.Atoi(strings.TrimSpace(k))
			if err != nil {
				return nil, fmt.Errorf("bad agent id in %q: %v", tok, err)
			}
			id, url = n, strings.TrimSpace(v)
		}
		url = kind.DefaultScheme(url)
		refs = append(refs, ctrlplane.AgentRef{ID: id, URL: strings.TrimSuffix(url, "/")})
	}
	return refs, nil
}
