// Command psbench measures the control plane's wire cost — interval
// latency and allocations per agent — across transports and fleet
// sizes, and gates regressions against the committed baseline.
//
//	psbench                                   # run the matrix, print the table
//	psbench -write BENCH_ctrlplane.json       # refresh the committed baseline
//	psbench -check BENCH_ctrlplane.json       # CI: fail on >20% regression
//
// Methodology (docs/BENCHMARKS.md): constant-time agent backends behind
// a single shared listener, constant cap so every measured interval is
// steady-state scrape + coalesced renewal, N >= 5 runs per cell with
// the minimum reported. -check normalizes wall-clock latency by a host
// factor (the json/10 reference cell) so a faster or slower CI machine
// does not mask or fake a regression; allocation counts are compared
// directly, since they are host-independent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"powerstruggle/internal/buildinfo"
	"powerstruggle/internal/cluster"
	"powerstruggle/internal/ctrlplane"
)

// baselineFile is the committed BENCH_ctrlplane.json schema.
type baselineFile struct {
	Schema    int                       `json:"schema"`
	Scenario  string                    `json:"scenario"`
	Policy    string                    `json:"policy"`
	GoVersion string                    `json:"go_version"`
	Cells     []ctrlplane.WireBenchCell `json:"cells"`
	// Hier is the two-tier matrix: the whole hierarchical control loop
	// (every shard step plus the global step) timed per interval.
	Hier []ctrlplane.HierBenchCell `json:"hier_cells,omitempty"`
	// DP is the apportioning-DP matrix: the full ApportionCurves
	// recompute against the incremental fast path when k of n member
	// curves change per interval — the hot path once a learning fleet's
	// curves move between intervals.
	DP []cluster.DPBenchCell `json:"dp_cells,omitempty"`
}

const scenarioDesc = "constant cap, steady-state renewals, constant-time backend, shared loopback listener"
const policyDesc = "min over N>=5 runs per cell; latency normalized by the json/10 host factor on -check; see docs/BENCHMARKS.md"

func main() {
	log.SetFlags(0)
	log.SetPrefix("psbench: ")
	var (
		fleets     = flag.String("fleets", "10,100,1000", "comma-separated fleet sizes to measure")
		transports = flag.String("transports", "json,binary", "comma-separated transports to measure")
		hier       = flag.String("hier", "1000x8", "two-tier cells to measure as AGENTSxSHARDS, comma-separated (empty: skip the binary-2tier matrix)")
		dp         = flag.String("dp", "128x0,128x1,128x4", "apportioning-DP cells to measure as MEMBERSxCHANGED, comma-separated (empty: skip the DP matrix)")
		runs       = flag.Int("runs", 5, "samples per cell (minimum is reported; policy floor is 5)")
		intervals  = flag.Int("intervals", 10, "measured control intervals per sample")
		inflight   = flag.Int("max-inflight", 64, "coordinator fan-out width (identical across cells)")
		write      = flag.String("write", "", "write the results as a baseline file at this path")
		check      = flag.String("check", "", "compare against the baseline file at this path; exit 1 on regression")
		gate       = flag.Float64("gate", 0.20, "regression gate as a fraction (0.20: fail if >20% worse)")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	sizes, err := parseSizes(*fleets)
	if err != nil {
		log.Fatal(err)
	}
	var kinds []ctrlplane.TransportKind
	for _, tok := range strings.Split(*transports, ",") {
		k, err := ctrlplane.ParseTransport(strings.TrimSpace(tok))
		if err != nil {
			log.Fatal(err)
		}
		kinds = append(kinds, k)
	}

	var cells []ctrlplane.WireBenchCell
	for _, n := range sizes {
		for _, kind := range kinds {
			log.Printf("measuring %s/%d (%d runs x %d intervals)...", kind, n, *runs, *intervals)
			cell, err := ctrlplane.RunWireBench(ctrlplane.WireBenchOptions{
				Agents:      n,
				Transport:   kind,
				Runs:        *runs,
				Intervals:   *intervals,
				MaxInFlight: *inflight,
			})
			if err != nil {
				log.Fatalf("%s/%d: %v", kind, n, err)
			}
			cells = append(cells, cell)
		}
	}

	hierSpecs, err := parseHier(*hier)
	if err != nil {
		log.Fatal(err)
	}
	var hierCells []ctrlplane.HierBenchCell
	for _, hc := range hierSpecs {
		log.Printf("measuring binary-2tier/%d over %d shards (%d runs x %d intervals)...",
			hc.agents, hc.shards, *runs, *intervals)
		cell, err := ctrlplane.RunHierBench(hc.agents, hc.shards, *runs, *intervals)
		if err != nil {
			log.Fatalf("binary-2tier/%d: %v", hc.agents, err)
		}
		hierCells = append(hierCells, cell)
	}

	dpSpecs, err := parseDP(*dp)
	if err != nil {
		log.Fatal(err)
	}
	var dpCells []cluster.DPBenchCell
	for _, dc := range dpSpecs {
		log.Printf("measuring dp/%d with %d curves changing per interval (%d runs x %d intervals)...",
			dc.members, dc.changed, *runs, *intervals)
		cell, err := cluster.RunDPBench(dc.members, dc.changed, *runs, *intervals)
		if err != nil {
			log.Fatalf("dp/%dx%d: %v", dc.members, dc.changed, err)
		}
		dpCells = append(dpCells, cell)
	}

	printTable(cells)
	printHierTable(hierCells)
	printDPTable(dpCells)
	failed := false
	if err := checkBinaryWins(cells); err != nil {
		log.Printf("FAIL: %v", err)
		failed = true
	}
	for _, e := range checkDPWins(dpCells) {
		log.Printf("FAIL: %v", e)
		failed = true
	}

	if *check != "" {
		base, err := readBaseline(*check)
		if err != nil {
			log.Fatal(err)
		}
		if errs := compareBaseline(base, cells, hierCells, dpCells, *gate); len(errs) > 0 {
			for _, e := range errs {
				log.Printf("FAIL: %v", e)
			}
			failed = true
		} else {
			log.Printf("baseline check passed (gate %.0f%%)", *gate*100)
		}
	}
	if failed {
		os.Exit(1)
	}

	if *write != "" {
		out := baselineFile{
			Schema:    1,
			Scenario:  scenarioDesc,
			Policy:    policyDesc,
			GoVersion: runtime.Version(),
			Cells:     cells,
			Hier:      hierCells,
			DP:        dpCells,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *write)
	}
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, tok := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad fleet size %q", tok)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no fleet sizes")
	}
	return sizes, nil
}

// hierSpec sizes one two-tier cell.
type hierSpec struct {
	agents, shards int
}

// parseHier accepts "AGENTSxSHARDS,..." (e.g. "1000x8,2000x16").
func parseHier(s string) ([]hierSpec, error) {
	var specs []hierSpec
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		a, sh, ok := strings.Cut(tok, "x")
		if !ok {
			return nil, fmt.Errorf("bad hier cell %q (want AGENTSxSHARDS)", tok)
		}
		agents, err1 := strconv.Atoi(strings.TrimSpace(a))
		shards, err2 := strconv.Atoi(strings.TrimSpace(sh))
		if err1 != nil || err2 != nil || agents <= 0 || shards <= 0 || agents%shards != 0 {
			return nil, fmt.Errorf("bad hier cell %q (want AGENTSxSHARDS, agents divisible by shards)", tok)
		}
		specs = append(specs, hierSpec{agents: agents, shards: shards})
	}
	return specs, nil
}

// dpSpec sizes one apportioning-DP cell.
type dpSpec struct {
	members, changed int
}

// parseDP accepts "MEMBERSxCHANGED,..." (e.g. "128x0,128x1,128x4").
func parseDP(s string) ([]dpSpec, error) {
	var specs []dpSpec
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		m, ch, ok := strings.Cut(tok, "x")
		if !ok {
			return nil, fmt.Errorf("bad dp cell %q (want MEMBERSxCHANGED)", tok)
		}
		members, err1 := strconv.Atoi(strings.TrimSpace(m))
		changed, err2 := strconv.Atoi(strings.TrimSpace(ch))
		if err1 != nil || err2 != nil || members <= 0 || changed < 0 || changed > members {
			return nil, fmt.Errorf("bad dp cell %q (want MEMBERSxCHANGED, 0 <= changed <= members)", tok)
		}
		specs = append(specs, dpSpec{members: members, changed: changed})
	}
	return specs, nil
}

func printTable(cells []ctrlplane.WireBenchCell) {
	fmt.Printf("%-9s %7s %15s %14s %7s %8s %13s\n",
		"transport", "agents", "ns/interval", "allocs/agent", "dials", "reuses", "batch frames")
	for _, c := range cells {
		fmt.Printf("%-9s %7d %15d %14.1f %7d %8d %13d\n",
			c.Transport, c.Agents, c.NsPerInterval, c.AllocsPerAgentInterval,
			c.ConnDials, c.ConnReuses, c.BatchFrames)
	}
}

func printHierTable(cells []ctrlplane.HierBenchCell) {
	if len(cells) == 0 {
		return
	}
	fmt.Printf("%-12s %7s %7s %15s\n", "transport", "agents", "shards", "ns/interval")
	for _, c := range cells {
		fmt.Printf("%-12s %7d %7d %15d\n", c.Transport, c.Agents, c.Shards, c.NsPerInterval)
	}
}

func printDPTable(cells []cluster.DPBenchCell) {
	if len(cells) == 0 {
		return
	}
	fmt.Printf("%-8s %8s %15s %15s %9s %13s\n",
		"members", "changed", "full ns/iv", "inc ns/iv", "speedup", "layers/iv")
	for _, c := range cells {
		fmt.Printf("%-8d %8d %15d %15d %9.1f %13.1f\n",
			c.Members, c.Changed, c.FullNsPerInterval, c.IncNsPerInterval,
			c.Speedup, c.MeanLayersRecomputed)
	}
}

// checkDPWins enforces the incremental apportioner's structural claim
// on every measured cell: it rebuilds strictly fewer member layers than
// the full DP whenever some curves held still, rebuilds none at all
// when only the cap moved, and turns the saved layers into wall-clock
// wins when few curves change.
func checkDPWins(cells []cluster.DPBenchCell) []error {
	var errs []error
	for _, c := range cells {
		if c.Changed == 0 {
			if c.MeanLayersRecomputed != 0 {
				errs = append(errs, fmt.Errorf(
					"dp/%dx0 rebuilt %.1f layers/interval on cap-only changes, want 0",
					c.Members, c.MeanLayersRecomputed))
			}
			if c.Speedup < 3 {
				errs = append(errs, fmt.Errorf(
					"dp/%dx0 cap-only speedup %.1fx under the 3x floor", c.Members, c.Speedup))
			}
			continue
		}
		if c.Changed*8 <= c.Members { // k << n: the sublinear regime
			if c.MeanLayersRecomputed >= 0.9*float64(c.Members) {
				errs = append(errs, fmt.Errorf(
					"dp/%dx%d rebuilt %.1f layers/interval, not sublinear in %d members",
					c.Members, c.Changed, c.MeanLayersRecomputed, c.Members))
			}
			if c.IncNsPerInterval >= c.FullNsPerInterval {
				errs = append(errs, fmt.Errorf(
					"dp/%dx%d incremental %d ns does not beat full %d ns",
					c.Members, c.Changed, c.IncNsPerInterval, c.FullNsPerInterval))
			}
		}
	}
	return errs
}

func findDPCell(cells []cluster.DPBenchCell, members, changed int) *cluster.DPBenchCell {
	for i := range cells {
		if cells[i].Members == members && cells[i].Changed == changed {
			return &cells[i]
		}
	}
	return nil
}

func findHierCell(cells []ctrlplane.HierBenchCell, agents, shards int) *ctrlplane.HierBenchCell {
	for i := range cells {
		if cells[i].Agents == agents && cells[i].Shards == shards {
			return &cells[i]
		}
	}
	return nil
}

func findCell(cells []ctrlplane.WireBenchCell, transport string, agents int) *ctrlplane.WireBenchCell {
	for i := range cells {
		if cells[i].Transport == transport && cells[i].Agents == agents {
			return &cells[i]
		}
	}
	return nil
}

// checkBinaryWins enforces the headline claim whenever the matrix
// includes both transports: at the largest fleet size, binary must beat
// JSON on interval latency and on allocations per agent.
func checkBinaryWins(cells []ctrlplane.WireBenchCell) error {
	max := 0
	for _, c := range cells {
		if c.Agents > max {
			max = c.Agents
		}
	}
	j, b := findCell(cells, "json", max), findCell(cells, "binary", max)
	if j == nil || b == nil {
		return nil // single-transport exploration run; nothing to compare
	}
	if b.NsPerInterval >= j.NsPerInterval {
		return fmt.Errorf("binary interval latency %d ns does not beat json %d ns at %d agents",
			b.NsPerInterval, j.NsPerInterval, max)
	}
	if b.AllocsPerAgentInterval >= j.AllocsPerAgentInterval {
		return fmt.Errorf("binary allocs/agent %.1f do not beat json %.1f at %d agents",
			b.AllocsPerAgentInterval, j.AllocsPerAgentInterval, max)
	}
	return nil
}

func readBaseline(path string) (baselineFile, error) {
	var base baselineFile
	data, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	if err := json.Unmarshal(data, &base); err != nil {
		return base, fmt.Errorf("%s: %w", path, err)
	}
	if base.Schema != 1 {
		return base, fmt.Errorf("%s: schema %d, want 1", path, base.Schema)
	}
	return base, nil
}

// compareBaseline gates the current cells against the committed
// baseline. Wall-clock latency is normalized by the host factor — the
// ratio of the reference cell (json at the smallest common fleet size)
// between this host and the baseline host — so only relative
// regressions fail. Allocation counts compare directly.
func compareBaseline(base baselineFile, cells []ctrlplane.WireBenchCell, hier []ctrlplane.HierBenchCell, dp []cluster.DPBenchCell, gate float64) []error {
	refAgents := 0
	for _, bc := range base.Cells {
		if bc.Transport != "json" {
			continue
		}
		if findCell(cells, "json", bc.Agents) == nil {
			continue
		}
		if refAgents == 0 || bc.Agents < refAgents {
			refAgents = bc.Agents
		}
	}
	if refAgents == 0 {
		return []error{fmt.Errorf("no common json reference cell between baseline and this run")}
	}
	refBase := findCell(base.Cells, "json", refAgents)
	refCur := findCell(cells, "json", refAgents)
	hostFactor := float64(refCur.NsPerInterval) / float64(refBase.NsPerInterval)

	var errs []error
	for i := range base.Cells {
		bc := &base.Cells[i]
		cur := findCell(cells, bc.Transport, bc.Agents)
		if cur == nil {
			errs = append(errs, fmt.Errorf("baseline cell %s/%d not measured in this run", bc.Transport, bc.Agents))
			continue
		}
		normNs := float64(cur.NsPerInterval) / hostFactor
		if normNs > float64(bc.NsPerInterval)*(1+gate) {
			errs = append(errs, fmt.Errorf(
				"%s/%d interval latency regressed: %.0f ns normalized (host factor %.2f) vs baseline %d ns (gate %.0f%%)",
				bc.Transport, bc.Agents, normNs, hostFactor, bc.NsPerInterval, gate*100))
		}
		if cur.AllocsPerAgentInterval > bc.AllocsPerAgentInterval*(1+gate) {
			errs = append(errs, fmt.Errorf(
				"%s/%d allocs/agent regressed: %.1f vs baseline %.1f (gate %.0f%%)",
				bc.Transport, bc.Agents, cur.AllocsPerAgentInterval, bc.AllocsPerAgentInterval, gate*100))
		}
	}
	// The two-tier cells gate the same way: the shared json reference
	// host factor normalizes wall clock, so only a relative regression
	// of the hierarchical loop fails.
	for i := range base.Hier {
		bc := &base.Hier[i]
		cur := findHierCell(hier, bc.Agents, bc.Shards)
		if cur == nil {
			errs = append(errs, fmt.Errorf("baseline cell %s/%dx%d not measured in this run",
				bc.Transport, bc.Agents, bc.Shards))
			continue
		}
		normNs := float64(cur.NsPerInterval) / hostFactor
		if normNs > float64(bc.NsPerInterval)*(1+gate) {
			errs = append(errs, fmt.Errorf(
				"%s/%dx%d interval latency regressed: %.0f ns normalized (host factor %.2f) vs baseline %d ns (gate %.0f%%)",
				bc.Transport, bc.Agents, bc.Shards, normNs, hostFactor, bc.NsPerInterval, gate*100))
		}
	}
	// The DP cells gate on the incremental path's latency (host-factor
	// normalized like every wall-clock number) and on the structural
	// metric directly: mean layers rebuilt per interval is seeded and
	// host-independent, so it compares exactly.
	for i := range base.DP {
		bc := &base.DP[i]
		cur := findDPCell(dp, bc.Members, bc.Changed)
		if cur == nil {
			errs = append(errs, fmt.Errorf("baseline cell dp/%dx%d not measured in this run", bc.Members, bc.Changed))
			continue
		}
		if cur.Runs != bc.Runs || cur.Intervals != bc.Intervals {
			// A different sampling plan walks a different prefix of the
			// seeded mutation stream: neither the layer counts nor the
			// per-interval minima are comparable. The structural gate
			// (checkDPWins) still ran on this run's own numbers.
			continue
		}
		normNs := float64(cur.IncNsPerInterval) / hostFactor
		if normNs > float64(bc.IncNsPerInterval)*(1+gate) {
			errs = append(errs, fmt.Errorf(
				"dp/%dx%d incremental latency regressed: %.0f ns normalized (host factor %.2f) vs baseline %d ns (gate %.0f%%)",
				bc.Members, bc.Changed, normNs, hostFactor, bc.IncNsPerInterval, gate*100))
		}
		if cur.MeanLayersRecomputed > bc.MeanLayersRecomputed {
			errs = append(errs, fmt.Errorf(
				"dp/%dx%d rebuilt %.1f layers/interval vs baseline %.1f: the incremental cache lost reuse",
				bc.Members, bc.Changed, cur.MeanLayersRecomputed, bc.MeanLayersRecomputed))
		}
	}
	return errs
}
