// Command psmediate runs one mediated-server experiment: admit a set of
// the paper's benchmark applications onto the simulated shared server,
// impose a power cap, pick a policy, and report measured normalized
// performance, power splits and cap adherence.
//
// Usage:
//
//	psmediate -cap 100 -apps STREAM,kmeans -policy app+res -seconds 30
//	psmediate -cap 80 -telemetry-trace out.json   # Perfetto-loadable spans
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"powerstruggle"
	"powerstruggle/internal/buildinfo"
	"powerstruggle/internal/workload"
)

// sweepCaps runs the admitted mix across a cap range.
func sweepCaps(srv *powerstruggle.Server, pol powerstruggle.Policy, spec string, seconds float64) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("sweep spec %q, want lo:hi:step", spec)
	}
	var lo, hi, step float64
	if _, err := fmt.Sscanf(spec, "%f:%f:%f", &lo, &hi, &step); err != nil {
		return fmt.Errorf("sweep spec %q: %v", spec, err)
	}
	if step <= 0 || hi < lo {
		return fmt.Errorf("sweep spec %q: empty range", spec)
	}
	fmt.Printf("%-8s %12s %8s %10s\n", "cap(W)", "total perf", "mode", "peak(W)")
	for capW := lo; capW <= hi+1e-9; capW += step {
		if err := srv.SetCap(capW); err != nil {
			return err
		}
		res, err := srv.Run(pol, seconds)
		if err != nil {
			fmt.Printf("%-8.0f %12s\n", capW, "infeasible")
			continue
		}
		fmt.Printf("%-8.0f %12.3f %8s %10.2f\n", capW, res.TotalPerf, res.Mode, res.MaxGridW)
	}
	return nil
}

// dumpTelemetry writes the requested exports after the experiment.
func dumpTelemetry(hub *powerstruggle.Telemetry, tracePath, jsonlPath string, metrics bool) {
	if hub == nil {
		return
	}
	writeFile := func(path string, write func(*os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := write(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if tracePath != "" {
		writeFile(tracePath, func(f *os.File) error { return hub.Tracer().WriteChromeTrace(f) })
		log.Printf("wrote %d trace events to %s (open in ui.perfetto.dev)", hub.Tracer().Written(), tracePath)
	}
	if jsonlPath != "" {
		writeFile(jsonlPath, func(f *os.File) error { return hub.Tracer().WriteJSONL(f) })
	}
	if metrics {
		if err := hub.Registry().WritePrometheus(os.Stderr); err != nil {
			log.Fatal(err)
		}
	}
}

var policies = map[string]powerstruggle.Policy{
	"util-unaware": powerstruggle.UtilUnaware,
	"server+res":   powerstruggle.ServerResAware,
	"app":          powerstruggle.AppAware,
	"app+res":      powerstruggle.AppResAware,
	"app+res+esd":  powerstruggle.AppResESDAware,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("psmediate: ")
	var (
		capW     = flag.Float64("cap", 100, "server power cap in watts (P_cap)")
		apps     = flag.String("apps", "STREAM,kmeans", "comma-separated applications to co-locate")
		polName  = flag.String("policy", "app+res", "policy: util-unaware, server+res, app, app+res, app+res+esd")
		seconds  = flag.Float64("seconds", 30, "simulated seconds to run")
		battery  = flag.Float64("battery", 300e3, "lead-acid battery capacity in joules (0 for none)")
		timeline = flag.Bool("timeline", false, "print the power timeline")
		list     = flag.Bool("list", false, "list available applications and exit")
		sweep    = flag.String("sweep", "", "sweep caps lo:hi:step and print total perf per cap (e.g. 75:120:5)")
		profiles = flag.String("profiles", "", "JSON file of custom application profiles; -apps then names profiles from it")

		telemetryOn  = flag.Bool("telemetry", false, "instrument the run (implied by the other -telemetry-* flags)")
		telemTrace   = flag.String("telemetry-trace", "", "write control-loop spans as Chrome trace_event JSON to FILE")
		telemJSONL   = flag.String("telemetry-jsonl", "", "write control-loop spans as JSON lines to FILE")
		telemMetrics = flag.Bool("telemetry-metrics", false, "print the Prometheus metrics page to stderr after the run")
		pprofListen  = flag.String("pprof-listen", "", "serve net/http/pprof on this address for the run's duration")

		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	pol, ok := policies[strings.ToLower(*polName)]
	if !ok {
		log.Fatalf("unknown policy %q (want one of util-unaware, server+res, app, app+res, app+res+esd)", *polName)
	}
	if *telemTrace != "" || *telemJSONL != "" || *telemMetrics {
		*telemetryOn = true
	}
	cfg := powerstruggle.Defaults()
	cfg.BatteryJ = *battery
	var hub *powerstruggle.Telemetry
	if *telemetryOn {
		hub = powerstruggle.NewTelemetry(0)
		cfg.Telemetry = hub
	}
	if *pprofListen != "" {
		// The pprof import registers on the default mux; a short
		// experiment rarely outlives the server, so errors just log.
		go func() {
			if err := http.ListenAndServe(*pprofListen, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	srv, err := powerstruggle.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *list {
		for _, a := range srv.Apps() {
			fmt.Println(a)
		}
		os.Exit(0)
	}
	if err := srv.SetCap(*capW); err != nil {
		log.Fatal(err)
	}
	names := strings.Split(*apps, ",")
	custom := map[string]*workload.Profile{}
	if *profiles != "" {
		f, err := os.Open(*profiles)
		if err != nil {
			log.Fatal(err)
		}
		loaded, err := workload.LoadProfiles(cfg.Platform, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range loaded {
			custom[p.Name] = p
		}
	}
	for _, n := range names {
		name := strings.TrimSpace(n)
		if p, ok := custom[name]; ok {
			if err := srv.AdmitProfile(p); err != nil {
				log.Fatal(err)
			}
			continue
		}
		if err := srv.Admit(name); err != nil {
			log.Fatal(err)
		}
	}
	if *sweep != "" {
		if err := sweepCaps(srv, pol, *sweep, *seconds); err != nil {
			log.Fatal(err)
		}
		dumpTelemetry(hub, *telemTrace, *telemJSONL, *telemMetrics)
		return
	}
	res, err := srv.Run(pol, *seconds)
	if err != nil {
		log.Fatal(err)
	}
	defer dumpTelemetry(hub, *telemTrace, *telemJSONL, *telemMetrics)

	fmt.Printf("policy        %v (%s coordination)\n", res.Policy, res.Mode)
	fmt.Printf("cap           %.1f W\n", *capW)
	fmt.Printf("total perf    %.3f (of %d.000 uncapped)\n", res.TotalPerf, len(names))
	for i, n := range names {
		fmt.Printf("  %-14s perf %.3f  budget %.1f W\n", strings.TrimSpace(n), res.AppPerf[i], res.AppBudgetW[i])
	}
	fmt.Printf("peak grid     %.2f W (violations: %d)\n", res.MaxGridW, res.CapViolations)
	if *timeline {
		for _, s := range res.Samples {
			line := fmt.Sprintf("t=%7.2fs server=%7.2fW grid=%7.2fW", s.T, s.ServerW, s.GridW)
			for j, w := range s.AppW {
				line += fmt.Sprintf(" app%d=%6.2fW", j+1, w)
			}
			if s.SoC > 0 {
				line += fmt.Sprintf(" soc=%.3f", s.SoC)
			}
			fmt.Println(line)
		}
	}
}
