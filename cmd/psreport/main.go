// Command psreport regenerates every table and figure of the paper's
// evaluation section and writes the formatted series to stdout or a
// file. This is the one-command reproduction entry point.
//
// Usage:
//
//	psreport [-out report.txt] [-seconds 30] [-quick]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"powerstruggle/internal/buildinfo"
	"powerstruggle/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psreport: ")
	var (
		out     = flag.String("out", "", "write the report to this file (default stdout)")
		seconds = flag.Float64("seconds", 30, "simulated seconds per policy measurement")
		quick   = flag.Bool("quick", false, "shrink the collaborative-filtering study for a fast run")
		format  = flag.String("format", "text", "output format: text (full report) or json (headline summary)")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriter(w)
	switch *format {
	case "text":
		if err := exp.WriteAll(bw, exp.Options{Seconds: *seconds, Quick: *quick}); err != nil {
			log.Fatal(err)
		}
	case "json":
		if err := exp.WriteJSON(bw, *seconds); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown format %q (want text or json)", *format)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
}
