// Command pscap inspects RAPL powercap zones: it walks a real
// /sys/class/powercap tree when one is present (read-only), and falls
// back to an emulated intel-rapl tree driven by the simulated platform
// otherwise — demonstrating that the runtime's observation surface works
// against both backends.
//
// Usage:
//
//	pscap [-root /sys/class/powercap] [-watch 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"powerstruggle/internal/buildinfo"
	"powerstruggle/internal/rapl"
	"powerstruggle/internal/simhw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pscap: ")
	var (
		root  = flag.String("root", rapl.DefaultSysfsRoot, "powercap sysfs root to inspect")
		watch = flag.Int("watch", 0, "sample zone power for this many seconds")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	zones, err := rapl.OpenSysfs(*root)
	if err != nil {
		log.Fatal(err)
	}
	if len(zones) == 0 {
		fmt.Println("no sysfs powercap zones found; showing the emulated intel-rapl tree")
		zones = emulated()
	}
	for _, z := range zones {
		err := rapl.Walk(z, func(path string, z rapl.Zone) error {
			e, err := z.EnergyMicroJoules()
			if err != nil {
				return err
			}
			limit, err := z.PowerLimitMicroWatts()
			if err != nil {
				return err
			}
			fmt.Printf("%-40s energy=%14d uJ  limit=%10d uW\n", path, e, limit)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if *watch > 0 {
		watchZones(zones, *watch)
	}
}

// emulated builds a demonstration tree over the simulated platform with
// one application running on each socket.
func emulated() []rapl.Zone {
	hw := simhw.DefaultConfig()
	tree, err := rapl.NewEmuTree(hw.Sockets, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Pre-charge the counters with one simulated second of a busy
	// socket and a half-loaded DRAM channel.
	for s := 0; s < hw.Sockets; s++ {
		busyCores := float64(hw.CoresPerSocket) * hw.CoreWatts(hw.FreqMaxGHz, 0.9)
		if err := tree.AccumulatePackage(s, busyCores+hw.PCmWatts/float64(hw.Sockets)); err != nil {
			log.Fatal(err)
		}
		if err := tree.AccumulateDRAM(s, (hw.MemMinWatts+hw.MemMaxWatts)/2); err != nil {
			log.Fatal(err)
		}
	}
	out := make([]rapl.Zone, 0, hw.Sockets)
	for s := 0; s < hw.Sockets; s++ {
		z, err := tree.Package(s)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, z)
	}
	return out
}

// watchZones samples each top-level zone's power once per second.
func watchZones(zones []rapl.Zone, seconds int) {
	meters := make([]*rapl.Meter, len(zones))
	for i, z := range zones {
		meters[i] = rapl.NewMeter(z)
	}
	start := time.Now()
	for s := 0; s <= seconds; s++ {
		t := time.Since(start).Seconds()
		line := fmt.Sprintf("t=%5.1fs", t)
		for i, z := range zones {
			w, err := meters[i].Sample(t)
			if err != nil {
				log.Fatal(err)
			}
			line += fmt.Sprintf("  %s=%7.2fW", z.Name(), w)
		}
		fmt.Println(line)
		if s < seconds {
			time.Sleep(time.Second)
		}
	}
}
