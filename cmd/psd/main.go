// Command psd runs the power-struggle mediator as a daemon: the
// simulated platform advances in wall-clock time and an HTTP API drives
// it — the paper's Accountant with curl as the cluster manager.
//
//	psd -listen :8080 -cap 100 -policy app+res+esd &
//	curl -s localhost:8080/apps
//	curl -s -X POST localhost:8080/admit -d '{"app":"STREAM"}'
//	curl -s -X POST localhost:8080/admit -d '{"app":"kmeans","seconds":120}'
//	curl -s -X POST localhost:8080/admit -d '{"app":"ferret","weight":2,"floorPerf":0.8}'
//	curl -s -X POST localhost:8080/cap -d '{"watts":80}'
//	curl -s localhost:8080/status
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"powerstruggle/internal/buildinfo"
	"powerstruggle/internal/cf"
	"powerstruggle/internal/ctrlplane"
	"powerstruggle/internal/daemon"
	"powerstruggle/internal/faults"
	"powerstruggle/internal/policy"
	"powerstruggle/internal/telemetry"
)

var policies = map[string]policy.Kind{
	"util-unaware": policy.UtilUnaware,
	"server+res":   policy.ServerResAware,
	"app":          policy.AppAware,
	"app+res":      policy.AppResAware,
	"app+res+esd":  policy.AppResESDAware,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("psd: ")
	var (
		listen  = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		capW    = flag.Float64("cap", 100, "initial power cap in watts")
		polName = flag.String("policy", "app+res", "mediation policy")
		battery = flag.Float64("battery", 300e3, "lead-acid battery capacity in joules (0 for none)")
		tick    = flag.Duration("tick", 50*time.Millisecond, "simulation tick")
		speed   = flag.Float64("speed", 1, "simulated seconds per wall-clock second")

		faultSeed     = flag.Int64("fault-seed", 1, "fault-injection random seed")
		faultKnobFail = flag.Float64("fault-knob-fail", 0, "probability a knob/suspend write fails transiently")
		faultStuck    = flag.Float64("fault-stuck-dvfs", 0, "probability a DVFS transition silently sticks")
		faultBeatDrop = flag.Float64("fault-beat-drop", 0, "probability a heartbeat batch is lost")

		telemetryOn = flag.Bool("telemetry", true, "instrument the control loop (/metrics registry, /trace spans)")
		telemRing   = flag.Int("telemetry-ring", 0, "span ring size in events (0: 65536)")
		pprofOn     = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")

		ctrlServer    = flag.Int("ctrl-server", -1, "join a pscoord control plane as this fleet index (-1: standalone); serves /ctrl/assign, /ctrl/report, /ctrl/lease")
		ctrlFence     = flag.Float64("ctrl-fence", 0, "cap to clamp to when the coordinator's draw lease lapses (0: the platform idle floor)")
		ctrlDecay     = flag.Float64("ctrl-safemode-decay", 0, "leaderless safe mode: watts per second to decay the held cap after lease lapse (0: cliff straight to the fence cap)")
		ctrlHold      = flag.Float64("ctrl-safemode-hold", 0, "leaderless safe mode: seconds to hold the last granted cap before decaying")
		ctrlFloor     = flag.Float64("ctrl-safemode-floor", 0, "leaderless safe mode: decay target in watts (0: the fence cap)")
		ctrlLearn     = flag.Float64("ctrl-learn", 0, "online utility learning: epsilon-greedy probe fraction in (0,1]; the daemon joins curveless, self-caps at or below its grants to sample its cap-utility curve, and reports the learned curve with its coverage (0: report the pre-characterized curve)")
		ctrlLearnSeed = flag.Int64("ctrl-learn-seed", 1, "probe-sequence seed for -ctrl-learn: the same seed replays the same probe order")
		ctrlAnnounce  = flag.String("ctrl-announce", "", "comma-separated coordinator base URLs to register with at boot (every one, so standbys are warm too); scheme-less addresses get the -transport scheme")
		ctrlAdvert    = flag.String("ctrl-advertise", "", "base URL coordinators should dial back (default: the -transport scheme on the matching listen address)")
		ctrlBinary    = flag.String("ctrl-binary-listen", "", "serve the control plane as binary frames on this TCP address besides the HTTP routes")
		transport     = flag.String("transport", "json", "default wire for scheme-less -ctrl-announce addresses and the advertised URL: json (HTTP) or binary (TCP frames)")

		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	pol, ok := policies[strings.ToLower(*polName)]
	if !ok {
		log.Fatalf("unknown policy %q", *polName)
	}
	var fcfg *faults.Config
	if *faultKnobFail > 0 || *faultStuck > 0 || *faultBeatDrop > 0 {
		fcfg = &faults.Config{
			Seed:           *faultSeed,
			KnobWriteFailP: *faultKnobFail,
			StuckDVFSP:     *faultStuck,
			BeatDropP:      *faultBeatDrop,
		}
	}
	var hub *telemetry.Hub
	if *telemetryOn {
		hub = telemetry.New(*telemRing)
	}
	d, err := daemon.New(daemon.Config{
		Policy: pol, InitialCapW: *capW, BatteryJ: *battery, Faults: fcfg,
		Telemetry: hub,
	})
	if err != nil {
		log.Fatal(err)
	}
	kind, err := ctrlplane.ParseTransport(*transport)
	if err != nil {
		log.Fatal(err)
	}
	if *ctrlServer >= 0 {
		cfg := daemon.CtrlConfig{
			ServerID: *ctrlServer, FenceCapW: *ctrlFence,
			SafeMode: ctrlplane.SafeModeConfig{
				HoldS: *ctrlHold, DecayWPerS: *ctrlDecay, FloorW: *ctrlFloor,
			},
		}
		if *ctrlLearn > 0 {
			cfg.Learn = &cf.OnlineConfig{Epsilon: *ctrlLearn, Seed: *ctrlLearnSeed}
		}
		if err := d.EnableCtrl(cfg); err != nil {
			log.Fatal(err)
		}
		if cfg.Learn != nil {
			log.Printf("online utility learning enabled: epsilon %.2f, seed %d", *ctrlLearn, *ctrlLearnSeed)
		}
		if cfg.SafeMode.Enabled() {
			log.Printf("control plane enabled: fleet index %d, safe-mode decay on lease lapse", *ctrlServer)
		} else {
			log.Printf("control plane enabled: fleet index %d, fencing on lease lapse", *ctrlServer)
		}
	} else if *ctrlAnnounce != "" {
		log.Fatal("-ctrl-announce needs -ctrl-server (the fleet index to register as)")
	}
	var binSrv *ctrlplane.BinaryServer
	if *ctrlBinary != "" {
		if *ctrlServer < 0 {
			log.Fatal("-ctrl-binary-listen needs -ctrl-server (the control plane must be enabled)")
		}
		ep, err := d.CtrlEndpoint()
		if err != nil {
			log.Fatal(err)
		}
		binSrv, err = ctrlplane.StartBinaryServer(*ctrlBinary, ctrlplane.BinaryServerConfig{
			Endpoints: map[int]ctrlplane.CtrlEndpoint{*ctrlServer: ep},
		})
		if err != nil {
			log.Fatalf("binary listener: %v", err)
		}
		defer binSrv.Close()
		log.Printf("serving control frames on %s", binSrv.URL())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *ctrlAnnounce != "" {
		coords := strings.Split(*ctrlAnnounce, ",")
		for i := range coords {
			coords[i] = kind.DefaultScheme(strings.TrimSpace(coords[i]))
		}
		advert := *ctrlAdvert
		if advert == "" {
			if kind == ctrlplane.TransportBinary {
				if binSrv == nil {
					log.Fatal("-transport binary needs -ctrl-binary-listen (or an explicit -ctrl-advertise URL)")
				}
				advert = binSrv.URL()
			} else {
				host := *listen
				if strings.HasPrefix(host, ":") {
					host = "127.0.0.1" + host
				}
				advert = "http://" + host
			}
		}
		req := ctrlplane.RegisterRequest{V: ctrlplane.ProtocolV, Server: *ctrlServer, URL: advert}
		// Announce in the background with retries: the daemon must come
		// up and mediate even while every coordinator is still booting.
		go func() {
			for {
				resp, err := ctrlplane.Announce(ctx, coords, req, 2*time.Second)
				if err == nil {
					log.Printf("registered as fleet index %d at %s (leader %q, epoch %d)",
						*ctrlServer, advert, resp.LeaderID, resp.Epoch)
					return
				}
				log.Printf("announce: %v (retrying)", err)
				select {
				case <-ctx.Done():
					return
				case <-time.After(2 * time.Second):
				}
			}
		}()
	}

	go func() {
		ticker := time.NewTicker(*tick)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if err := d.Advance(tick.Seconds() * *speed); err != nil {
					// Keep the control surface up: /healthz reports the
					// latched error while telemetry stays queryable.
					log.Printf("simulation halted: %v", err)
					return
				}
			}
		}
	}()

	handler := d.Handler()
	if *pprofOn {
		// The pprof import registers on the default mux; mount it beside
		// the daemon API instead of exposing the whole default mux.
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		outer.Handle("/debug/pprof/", http.DefaultServeMux)
		handler = outer
	}

	// Conservative timeouts keep one stuck or malicious client from
	// pinning a connection (and its goroutine) forever.
	srv := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	log.Printf("mediating on %s (policy %v, cap %.0f W)", *listen, pol, *capW)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
