// Command psscenario generates, runs, and replays seeded chaos
// campaigns against the simulated cluster: the scenario engine's CLI.
// A campaign is named by a (family, seed) pair and is fully
// deterministic — the same pair always produces the same faults, the
// same schedules, and the same invariant log, so a campaign that fails
// in CI reproduces anywhere from two integers.
//
// List the families:
//
//	psscenario -list
//
// Run one campaign and print its summary (add -v for the full log):
//
//	psscenario -family partition-emergency -seed 7
//
// Prove a campaign replays bit-identically (runs it twice and compares
// the invariant logs byte for byte):
//
//	psscenario -family rolling-restart -seed 11 -replay
//
// The exit status is 0 only if every invariant held (and, with
// -replay, the two runs matched).
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"

	"powerstruggle/internal/buildinfo"
	"powerstruggle/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psscenario: ")
	var (
		list    = flag.Bool("list", false, "list campaign families and exit")
		family  = flag.String("family", "", "campaign family to run (see -list)")
		seed    = flag.Int64("seed", 1, "campaign seed; (family, seed) names the campaign")
		servers = flag.Int("servers", 0, "fleet size (default 4)")
		steps   = flag.Int("steps", 0, "control intervals to run (default 24)")
		stepS   = flag.Float64("step", 0, "control interval length in trace seconds (default 300)")
		replay  = flag.Bool("replay", false, "run the campaign twice and require byte-identical invariant logs")
		verbose = flag.Bool("v", false, "print the full invariant log, not just the summary")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}
	if *list {
		for _, f := range scenario.Families() {
			fmt.Printf("%-22s %s\n", f, f.Description())
		}
		return
	}
	if *family == "" {
		log.Fatal("no campaign: pass -family (see -list) or -list")
	}
	fam, err := scenario.ParseFamily(*family)
	if err != nil {
		log.Fatal(err)
	}
	cfg := scenario.Config{Family: fam, Seed: *seed, Servers: *servers, Steps: *steps, StepS: *stepS}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	res, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		fmt.Print(res.LogText())
	}
	log.Printf("campaign %s seed=%d: %d steps, %d events, log digest %s",
		fam, *seed, len(res.Campaign.Caps), len(res.Campaign.Events), digest(res.LogText()))
	if res.SafeModeSteps > 0 {
		log.Printf("  %d steps rode a lost leader in safe mode (min leaderless fleet cap %.1f W)",
			res.SafeModeSteps, res.LeaderlessMinCapW)
	}
	if res.LeaseExpiries+res.Rejoins > 0 {
		log.Printf("  %d membership lease expiries, %d rejoins, final epoch %d",
			res.LeaseExpiries, res.Rejoins, res.FinalEpoch)
	}
	if res.Rehydrations > 0 {
		log.Printf("  %d interval-counter rehydrations across coordinator restarts", res.Rehydrations)
	}
	if res.DischargedJ+res.ChargedJ > 0 {
		log.Printf("  fleet moved %.0f J out, %.0f J in; %.0f J shortfall",
			res.DischargedJ, res.ChargedJ, res.ShortfallJ)
	}

	ok := true
	if !res.Ok() {
		ok = false
		for _, v := range res.Violations {
			log.Printf("INVARIANT VIOLATED: %s", v)
		}
	}
	if *replay {
		again, err := scenario.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if again.LogText() != res.LogText() {
			ok = false
			log.Printf("REPLAY DIVERGED: second run's log digest %s != %s",
				digest(again.LogText()), digest(res.LogText()))
		} else {
			log.Printf("replay identical: %d log lines, digest %s", len(res.Log), digest(res.LogText()))
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// digest fingerprints an invariant log for terse CI output.
func digest(s string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}
