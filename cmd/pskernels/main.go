// Command pskernels runs the real, heartbeat-instrumented counterparts
// of the paper's benchmark applications (graph kernels, k-means, STREAM,
// media pipeline) on the host and reports their heartbeat totals and
// wall-clock rates — the measurement interface the simulated runtime's
// performance accounting mirrors.
//
// Usage:
//
//	pskernels [-kernel BFS] [-scale 13] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"powerstruggle/internal/buildinfo"
	"powerstruggle/internal/heartbeat"
	"powerstruggle/internal/kernels"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pskernels: ")
	var (
		kernel = flag.String("kernel", "", "run only this kernel (default: all)")
		scale  = flag.Int("scale", 13, "Kronecker graph scale (vertices = 2^scale)")
		points = flag.Int("points", 20000, "k-means population")
		reps   = flag.Int("reps", 1, "repetitions per kernel")
	)
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	sz := kernels.DefaultSize()
	sz.GraphScale = *scale
	sz.Points = *points
	reg := kernels.Registry(sz)

	names := kernels.Names(reg)
	if *kernel != "" {
		if _, ok := reg[*kernel]; !ok {
			log.Fatalf("unknown kernel %q (have %v)", *kernel, names)
		}
		names = []string{*kernel}
	}

	fmt.Printf("%-14s %12s %12s %12s\n", "kernel", "beats", "seconds", "beats/s")
	for _, n := range names {
		var totalBeats, totalSecs float64
		for r := 0; r < *reps; r++ {
			hb := heartbeat.NewMonitor()
			start := time.Now()
			beats, err := kernels.RunWithHeartbeats(reg, n, hb)
			if err != nil {
				log.Fatalf("%s: %v", n, err)
			}
			totalBeats += beats
			totalSecs += time.Since(start).Seconds()
		}
		rate := 0.0
		if totalSecs > 0 {
			rate = totalBeats / totalSecs
		}
		fmt.Printf("%-14s %12.0f %12.3f %12.1f\n", n, totalBeats, totalSecs, rate)
	}
}
