// Command pscluster replays peak-shaving power caps over a fleet of
// mediated servers — the paper's Section IV-D experiment — comparing
// Equal(RAPL), Equal(Ours) and Consolidation+Migration.
//
// Usage:
//
//	pscluster -servers 10 -shave 15,30,45 -step 300
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"powerstruggle/internal/buildinfo"
	"powerstruggle/internal/cluster"
	"powerstruggle/internal/ctrlplane"
	"powerstruggle/internal/exp"
	"powerstruggle/internal/trace"
	"powerstruggle/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pscluster: ")
	var (
		servers   = flag.Int("servers", 10, "fleet size")
		shave     = flag.String("shave", "15,30,45", "comma-separated peak-shaving percentages")
		step      = flag.Float64("step", 300, "trace resolution in seconds")
		seed      = flag.Int64("seed", 7, "trace synthesis seed")
		days      = flag.Int("days", 1, "trace length in days (weekends dampened)")
		series    = flag.Bool("series", false, "also print the per-step cap and performance series")
		capFile   = flag.String("capfile", "", "replay a cluster cap schedule from this CSV (seconds,value) instead of synthesizing one")
		dumpTrace = flag.String("dumptrace", "", "write the synthetic demand trace to this CSV and exit")
		agents    = flag.Bool("agents", false, "replay through the networked control plane (in-process agents over loopback) and check budget parity against the pure simulation")
		strategy  = flag.String("strategy", "utility", "apportioning strategy in -agents mode: equal or utility")
		transport = flag.String("transport", "json", "wire for -agents mode: json (per-agent HTTP listeners) or binary (one shared TCP frame listener, batched fan-out)")
		haKill    = flag.Int("ha-kill-step", -1, "in -agents mode, replay through a leader-elected coordinator pool and kill the leader at this step; reports failover latency and post-recovery budget parity")
		haMembers = flag.Int("ha-members", 2, "pool size for the -ha-kill-step drill; 3 or more members elect through an in-process quorum store (loopback voter endpoints) instead of the shared-memory term")

		shards      = flag.Int("shards", 0, "run the two-tier hierarchy drill over this many shard coordinators (HA pairs under one global apportioner); 0 disables")
		shardAgents = flag.Int("shard-agents", 125, "agents per shard in the -shards drill")
		intervals   = flag.Int("intervals", 16, "control intervals in the -shards drill")
		clusterCap  = flag.Float64("cluster-cap", 0, "cluster cap in watts for the -shards drill (0: 52 W per agent, between idle floor and nameplate)")
		killLeader  = flag.Int("kill-leader-step", 0, "in the -shards drill, crash -kill-shard's leading coordinator at this 1-based interval (0: never); the warm standby promotes")
		killWhole   = flag.Int("kill-shard-step", 0, "in the -shards drill, crash BOTH coordinator nodes of -kill-shard at this 1-based interval (0: never); the global reserves its budget until reclaim")
		killShard   = flag.Int("kill-shard", 0, "shard index the kill steps target")
		satStep     = flag.Int("saturate-step", 0, "in the -shards drill, raise -saturate-shard's demand to nameplate at this 1-based interval (0: never); headroom must flow to it")
		satShard    = flag.Int("saturate-shard", 0, "shard index the saturation targets")
		leaseIv     = flag.Int("lease-iv", 0, "in the -shards drill, run the whole tree on protocol-clock leases: shard coordinators grant this many own-interval agent leases and the global grants one interval longer to the shards (0: seconds-based leases)")
		restartG    = flag.Int("restart-global-step", 0, "in the -shards drill, crash-restart the global apportioner at this 1-based interval (0: never); with -lease-iv the replacement rehydrates its interval counter from shard scrapes and the drill flags any duplicate interval number")

		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	if *shards > 0 {
		err := runTwoTier(ctrlplane.TwoTierOptions{
			Shards:            *shards,
			AgentsPerShard:    *shardAgents,
			Intervals:         *intervals,
			IntervalS:         *step,
			ClusterCapW:       *clusterCap,
			Seed:              *seed,
			KillLeaderStep:    *killLeader,
			KillShardStep:     *killWhole,
			KillShard:         *killShard,
			SaturateStep:      *satStep,
			SaturateShard:     *satShard,
			LeaseIv:           *leaseIv,
			RestartGlobalStep: *restartG,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	if *agents {
		if err := runAgents(*servers, *strategy, *transport, *capFile, *shave, *step, *seed, *haKill, *haMembers); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *haKill >= 0 {
		log.Fatal("-ha-kill-step needs -agents (the drill runs over the networked control plane)")
	}
	if *capFile != "" {
		if err := replayCapFile(*capFile, *servers); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *dumpTrace != "" {
		if err := dumpDemand(*dumpTrace, *servers, *step, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}

	var fracs []float64
	for _, tok := range strings.Split(*shave, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			log.Fatalf("bad shave level %q: %v", tok, err)
		}
		fracs = append(fracs, v/100)
	}
	env, err := exp.NewEnv()
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Fig12(env, exp.Fig12Config{
		Servers: *servers, ShaveFracs: fracs, StepSeconds: *step, Seed: *seed, Days: *days,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := res.Report.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *series {
		for _, lv := range res.Levels {
			fmt.Printf("series for shave %.0f%% (t, capW, perf per strategy):\n", lv.ShaveFrac*100)
			caps := res.Caps[lv.ShaveFrac]
			for i := range caps {
				if i%12 != 0 {
					continue
				}
				line := fmt.Sprintf("  t=%7.0fs cap=%7.0fW", caps[i].T, caps[i].V)
				for _, r := range lv.Results {
					if i < len(r.PerfSeries) {
						line += fmt.Sprintf(" %s=%5.1f", abbreviate(r.Strategy.String()), r.PerfSeries[i].V)
					}
				}
				fmt.Println(line)
			}
		}
	}
}

func abbreviate(s string) string {
	if len(s) > 12 {
		return s[:12]
	}
	return s
}

// fleet builds the default evaluator over the first N mixes.
func fleet(servers int) (*cluster.Evaluator, float64, error) {
	env, err := exp.NewEnv()
	if err != nil {
		return nil, 0, err
	}
	mixes := workload.Mixes()
	assign := make([]workload.Mix, servers)
	for i := range assign {
		assign[i] = mixes[i%len(mixes)]
	}
	ev, err := cluster.NewEvaluator(cluster.Config{HW: env.HW, Library: env.Lib, Mixes: assign})
	if err != nil {
		return nil, 0, err
	}
	uc, err := ev.UncappedClusterW()
	if err != nil {
		return nil, 0, err
	}
	return ev, uc, nil
}

// replayCapFile evaluates every strategy against a user-supplied cap
// schedule.
func replayCapFile(path string, servers int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	caps, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	ev, uc, err := fleet(servers)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %d cap steps over %d servers (uncapped fleet %.0f W)\n", len(caps), servers, uc)
	for _, s := range []cluster.Strategy{cluster.EqualRAPL, cluster.EqualOurs, cluster.ConsolidateMigrate, cluster.UtilityOurs} {
		r, err := ev.Evaluate(caps, s)
		if err != nil {
			return err
		}
		fmt.Printf("  %-32s perf %5.1f%%  efficiency %6.3f  violations %d\n",
			s, r.AvgPerfFrac*100, r.Efficiency, r.CapViolations)
	}
	return nil
}

// runAgents replays a cap schedule through the networked control plane
// — a pscoord-style coordinator fanning leased budgets out to one
// in-process agent per server over loopback HTTP — and checks that the
// resulting budget sequence matches the pure simulation watt for watt.
// With killStep >= 0 the replay runs through a leader-elected
// coordinator pair instead, killing the leader mid-trace.
func runAgents(servers int, strategyName, transportName, capFile string, shavePcts string, stepS float64, seed int64, killStep, members int) error {
	strat, err := ctrlplane.ParseStrategy(strategyName)
	if err != nil {
		return err
	}
	kind, err := ctrlplane.ParseTransport(transportName)
	if err != nil {
		return err
	}
	ev, uc, err := fleet(servers)
	if err != nil {
		return err
	}
	var caps []trace.Point
	if capFile != "" {
		f, err := os.Open(capFile)
		if err != nil {
			return err
		}
		caps, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		// Synthesize one peak-shaving schedule at the first -shave level.
		frac := 0.3
		if tok := strings.Split(shavePcts, ",")[0]; tok != "" {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("bad shave level %q: %v", tok, err)
			}
			frac = v / 100
		}
		load, err := trace.DiurnalLoad(trace.Config{Seed: seed, StepSeconds: stepS})
		if err != nil {
			return err
		}
		demand := make([]trace.Point, len(load))
		for i, p := range load {
			demand[i] = trace.Point{T: p.T, V: p.V * uc}
		}
		caps, err = trace.PeakShaveCaps(demand, frac, uc)
		if err != nil {
			return err
		}
	}

	flt, err := ctrlplane.StartSimFleetOpts(ev, ctrlplane.FleetOptions{
		Version: buildinfo.Version(), Transport: kind,
	})
	if err != nil {
		return err
	}
	defer flt.Close()
	interval := stepS
	if len(caps) > 1 {
		interval = caps[1].T - caps[0].T
	}
	if killStep >= 0 {
		return runHADrill(ev, flt, caps, strat, servers, interval, killStep, members)
	}
	coord, err := ctrlplane.New(ctrlplane.Config{
		Agents:   flt.Refs(),
		Strategy: strat,
		// Half the control interval: every lease is renewed before it
		// can lapse as long as the coordinator keeps stepping.
		LeaseS: interval * 0.5,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	fmt.Printf("replaying %d cap steps over %d networked agents (%v, %v transport)\n", len(caps), servers, strat, kind)
	var capViolations int
	results, err := coord.Replay(context.Background(), caps, func(res ctrlplane.StepResult) {
		if err := flt.Tick(res.T); err == nil {
			if flt.FleetGridW() > res.CapW+1e-6 {
				capViolations++
			}
		}
	})
	if err != nil {
		return err
	}

	oracleStrat := cluster.EqualOurs
	if strat == ctrlplane.StrategyUtility {
		oracleStrat = cluster.UtilityOurs
	}
	oracle, err := ev.Evaluate(caps, oracleStrat)
	if err != nil {
		return err
	}
	var maxDelta float64
	for i, res := range results {
		for j, b := range res.Budgets {
			maxDelta = math.Max(maxDelta, math.Abs(b-oracle.BudgetSeries[i][j]))
		}
	}
	st := coord.Stats()
	fmt.Printf("  budget parity vs %v: max |Δ| = %g W over %d steps x %d servers\n",
		oracleStrat, maxDelta, len(results), servers)
	fmt.Printf("  cap violations %d, scrape failures %d, assign failures %d, re-apportions %d\n",
		capViolations, st.ScrapeFailures, st.AssignFailures, st.Reapportions)
	if st.BatchFrames > 0 {
		ws := coord.WireStats()
		fmt.Printf("  binary wire: %d batch frames carried %d ops; %d conns dialed, %d reused\n",
			st.BatchFrames, st.BatchedOps, ws.BinaryDials, ws.BinaryReuses)
	}
	if maxDelta != 0 {
		return fmt.Errorf("networked replay diverged from the simulation by %g W", maxDelta)
	}
	return nil
}

// drillClock is a settable clock for the failover drill: trace time
// drives both coordinators' campaign timestamps, so the leadership TTL
// lapses in trace seconds rather than wall-clock seconds.
type drillClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *drillClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *drillClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

// runHADrill replays the cap schedule through a leader-elected pool of
// coordinators sharing one fleet, kills the leader (member 0) at
// killStep, and reports how many intervals the fleet spent leaderless
// plus budget parity on every interval somebody granted. A pair shares
// an in-memory term; three or more members elect through a replicated
// quorum store served on loopback voter endpoints, with priority-
// ordered takeover (member i holds rank i).
func runHADrill(ev *cluster.Evaluator, flt *ctrlplane.SimFleet, caps []trace.Point, strat ctrlplane.Strategy, servers int, interval float64, killStep, members int) error {
	if killStep >= len(caps)-1 {
		return fmt.Errorf("-ha-kill-step %d too late to observe a takeover in a %d-step trace", killStep, len(caps))
	}
	if members < 2 {
		return fmt.Errorf("-ha-members %d: a takeover drill needs at least a pair", members)
	}
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	wallAt := func(t float64) time.Time { return t0.Add(time.Duration(t * float64(time.Second))) }
	ttl := time.Duration(1.5 * interval * float64(time.Second))

	// The election store: one shared in-memory term for a pair, a
	// quorum pool (each member proposing to every loopback voter) from
	// three members up.
	storeName := "shared-memory term"
	mkStore := func(i int) (ctrlplane.Election, error) { return nil, nil }
	if members >= 3 {
		pool, err := ctrlplane.StartVoterPool(members, nil)
		if err != nil {
			return err
		}
		defer pool.Close()
		storeName = fmt.Sprintf("%d-voter quorum store (majority %d)", members, members/2+1)
		mkStore = func(int) (ctrlplane.Election, error) {
			return ctrlplane.NewQuorumElection(ctrlplane.QuorumConfig{Voters: pool.URLs()})
		}
	} else {
		shared := ctrlplane.NewMemElection()
		mkStore = func(int) (ctrlplane.Election, error) { return shared, nil }
	}

	has := make([]*ctrlplane.HA, members)
	clks := make([]*drillClock, members)
	for i := range has {
		c, err := ctrlplane.New(ctrlplane.Config{
			Agents:   flt.Refs(),
			Strategy: strat,
			// Exactly one interval: whatever grant a dead leader left
			// behind lapses before the next interval's cap could shrink
			// under it, so the blackout is fenced, not over-budget.
			LeaseS: interval,
		})
		if err != nil {
			return err
		}
		defer c.Close()
		store, err := mkStore(i)
		if err != nil {
			return err
		}
		clks[i] = &drillClock{}
		has[i], err = ctrlplane.NewHA(c, ctrlplane.HAConfig{
			ID: fmt.Sprintf("drill-%d", i), Election: store, TermTTL: ttl,
			Clock: clks[i].Now, Priority: i,
		})
		if err != nil {
			return err
		}
	}

	fmt.Printf("HA drill: %d cap steps over %d networked agents (%v), %d members on a %s, leader killed at step %d\n",
		len(caps), servers, strat, members, storeName, killStep)
	ctx := context.Background()
	granted := make([]ctrlplane.StepResult, len(caps))
	ledStep := make([]bool, len(caps))
	blackout, capViolations := 0, 0
	takeoverStep := -1
	for s, p := range caps {
		for _, clk := range clks {
			clk.Set(wallAt(p.T))
		}
		leaders := 0
		for i, ha := range has {
			if i == 0 && s >= killStep {
				continue
			}
			res, err := ha.Step(ctx, p.T, p.V)
			if err != nil {
				return err
			}
			if res.Leading {
				leaders++
				granted[s], ledStep[s] = res, true
			}
		}
		if leaders > 1 {
			return fmt.Errorf("step %d: %d members granted in one interval", s, leaders)
		}
		if s >= killStep {
			if !ledStep[s] {
				blackout++
			} else if takeoverStep < 0 {
				takeoverStep = s
			}
		}
		if err := flt.Tick(p.T); err != nil {
			return err
		}
		if flt.FleetGridW() > p.V+1e-6 {
			capViolations++
		}
	}

	oracleStrat := cluster.EqualOurs
	if strat == ctrlplane.StrategyUtility {
		oracleStrat = cluster.UtilityOurs
	}
	oracle, err := ev.Evaluate(caps, oracleStrat)
	if err != nil {
		return err
	}
	var maxDelta float64
	grantedSteps := 0
	for s := range caps {
		if !ledStep[s] {
			continue
		}
		grantedSteps++
		for j, b := range granted[s].Budgets {
			maxDelta = math.Max(maxDelta, math.Abs(b-oracle.BudgetSeries[s][j]))
		}
	}
	next := has[1]
	termN, leadN := next.Leader()
	fmt.Printf("  failover: %d leaderless interval(s); standby led from step %d under epoch %d (%d failover, %d holdoffs down-pool)\n",
		blackout, takeoverStep, termN.Epoch, next.Failovers(), has[members-1].Holdoffs())
	fmt.Printf("  budget parity vs %v on %d granted steps: max |Δ| = %g W; cap violations %d\n",
		oracleStrat, grantedSteps, maxDelta, capViolations)
	switch {
	case takeoverStep < 0:
		return fmt.Errorf("standby never took over after the kill at step %d", killStep)
	case blackout > 1:
		return fmt.Errorf("fleet leaderless for %d intervals, want at most one", blackout)
	case !leadN || next.Failovers() != 1:
		return fmt.Errorf("takeover skipped rank 1: member 1 leading=%v with %d failovers", leadN, next.Failovers())
	case maxDelta != 0:
		return fmt.Errorf("HA replay diverged from the simulation by %g W", maxDelta)
	case capViolations > 0:
		return fmt.Errorf("%d cap violations during the drill", capViolations)
	}
	return nil
}

// runTwoTier drives the hierarchical drill — per-shard coordinator HA
// pairs over loopback binary trunks under one global apportioner — and
// prints every interval's budget ledger. Any broken cap invariant is a
// non-zero exit: the drill is the CLI face of the two-tier safety
// argument, so a violation is a failure, not a statistic.
func runTwoTier(opts ctrlplane.TwoTierOptions) error {
	fmt.Printf("two-tier drill: %d shards x %d agents (%d total), %d intervals, seed %d\n",
		opts.Shards, opts.AgentsPerShard, opts.Shards*opts.AgentsPerShard, opts.Intervals, opts.Seed)
	switch {
	case opts.KillLeaderStep > 0:
		fmt.Printf("  chaos: shard %d leader killed at interval %d (warm standby promotes)\n",
			opts.KillShard, opts.KillLeaderStep)
	case opts.KillShardStep > 0:
		fmt.Printf("  chaos: shard %d loses both coordinators at interval %d (budget reserved until reclaim)\n",
			opts.KillShard, opts.KillShardStep)
	}
	if opts.SaturateStep > 0 {
		fmt.Printf("  chaos: shard %d saturates to nameplate at interval %d\n",
			opts.SaturateShard, opts.SaturateStep)
	}
	res, err := ctrlplane.RunTwoTierDrill(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  %4s %9s %9s %9s %9s %9s %6s %9s\n",
		"iv", "capW", "grantedW", "reservedW", "rebalW", "capsumW", "alive", "ms")
	for i, iv := range res.Intervals {
		fmt.Printf("  %4d %9.1f %9.1f %9.1f %9.1f %9.1f %6d %9.2f\n",
			i+1, iv.CapW, iv.SumBudgetsW, iv.ReservedW, iv.RebalancedW, iv.AgentCapSumW,
			iv.GlobalAlive, float64(iv.WallNs)/1e6)
	}
	fmt.Printf("  final shard budgets (W):")
	for _, w := range res.ShardBudgetW {
		fmt.Printf(" %.1f", w)
	}
	fmt.Println()
	fmt.Printf("  failovers %d, shard expiries %d, rejoins %d, reclaims %d, scrape failures %d, grant failures %d\n",
		res.Failovers, res.Stats.ShardExpiries, res.Stats.ShardRejoins, res.Stats.Reclaims,
		res.Stats.ScrapeFailures, res.Stats.GrantFailures)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Printf("  VIOLATION %s\n", v)
		}
		return fmt.Errorf("two-tier drill broke %d invariant(s)", len(res.Violations))
	}
	fmt.Println("  all cap invariants held")
	return nil
}

// dumpDemand writes the synthetic demand trace as CSV.
func dumpDemand(path string, servers int, stepS float64, seed int64) error {
	_, uc, err := fleet(servers)
	if err != nil {
		return err
	}
	load, err := trace.DiurnalLoad(trace.Config{Seed: seed, StepSeconds: stepS})
	if err != nil {
		return err
	}
	demand := make([]trace.Point, len(load))
	for i, p := range load {
		demand[i] = trace.Point{T: p.T, V: p.V * uc}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteCSV(f, demand); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
