// Package powerstruggle mediates "power struggles" on shared servers: it
// treats power as an indirectly shared resource and explicitly apportions
// a server's power cap across co-located applications, across each
// application's direct resources (per-core DVFS, core count, DRAM power),
// and across time — duty cycling and banking energy in a server-local
// battery when the cap is too tight for everyone to run at once.
//
// It is a from-scratch reproduction of "Mediating Power Struggles on a
// Shared Server" (Narayanan & Sivasubramaniam, ISPASS 2020), including
// the paper's full runtime (utility learning by collaborative filtering,
// PowerAllocator, Coordinator, Accountant), the simulated dual-socket
// platform it is evaluated on, the twelve benchmark applications and
// fifteen co-location mixes of its evaluation, and harnesses regenerating
// every table and figure.
//
// # Quick start
//
//	srv, err := powerstruggle.NewServer(powerstruggle.Defaults())
//	// handle err
//	srv.SetCap(100)
//	srv.Admit("STREAM")
//	srv.Admit("kmeans")
//	res, err := srv.Run(powerstruggle.AppResAware, 30)
//	// res.TotalPerf is the paper's objective (1); res.AppPerf the
//	// per-application normalized performances.
//
// The deeper machinery — hardware model, utility curves, allocator,
// coordinator, accountant, collaborative filtering, cluster replay,
// experiment harnesses — lives in the internal packages and is exercised
// through this facade, the executables under cmd/, and the examples.
package powerstruggle

import (
	"fmt"

	"powerstruggle/internal/allocator"
	"powerstruggle/internal/coordinator"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/policy"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/workload"
)

// Telemetry is a metrics registry plus control-loop span tracer; build
// one with NewTelemetry and attach it via Config. See docs/METRICS.md
// for the exported series and trace tracks.
type Telemetry = telemetry.Hub

// NewTelemetry builds an enabled telemetry hub. ringSize bounds the
// span ring in events (0 means the default, 65536).
func NewTelemetry(ringSize int) *Telemetry { return telemetry.New(ringSize) }

// Policy selects the power-management scheme, in the order the paper
// evaluates them.
type Policy = policy.Kind

// The evaluated policies.
const (
	// UtilUnaware splits the budget evenly and enforces shares with
	// hardware RAPL (baseline 1).
	UtilUnaware = policy.UtilUnaware
	// ServerResAware adds server-averaged resource awareness
	// (baseline 2).
	ServerResAware = policy.ServerResAware
	// AppAware apportions by application-level utilities (R1).
	AppAware = policy.AppAware
	// AppResAware additionally partitions each share across the
	// application's direct resources (R1+R2+R3).
	AppResAware = policy.AppResAware
	// AppResESDAware additionally time-shifts power with the server's
	// battery (R1-R4).
	AppResESDAware = policy.AppResESDAware
)

// Config describes a mediated server.
type Config struct {
	// Platform is the hardware description (Defaults().Platform is the
	// paper's Table I machine).
	Platform simhw.Config
	// BatteryJ, when positive, equips the server with a lead-acid ESD
	// of that nameplate capacity in joules.
	BatteryJ float64
	// RestoreSeconds is the cold-cache penalty applications pay when
	// resumed after suspension.
	RestoreSeconds float64
	// Telemetry, when non-nil, instruments every Run: interval/actuate
	// spans, watchdog and retry counters, allocator solve times. nil (the
	// default) runs uninstrumented with bit-identical results.
	Telemetry *Telemetry
}

// Defaults returns the paper's server: the Table I platform with a
// 300 kJ lead-acid UPS.
func Defaults() Config {
	return Config{Platform: simhw.DefaultConfig(), BatteryJ: 300e3}
}

// Server is a power-capped shared server hosting co-located applications.
type Server struct {
	cfg    Config
	lib    *workload.Library
	capW   float64
	apps   []*workload.Profile
	names  []string
	objs   []allocator.Objective
	anySLO bool
}

// NewServer builds a server from cfg.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	lib, err := workload.NewLibrary(cfg.Platform)
	if err != nil {
		return nil, err
	}
	allocator.EnableTelemetry(cfg.Telemetry.Registry())
	return &Server{cfg: cfg, lib: lib, capW: cfg.Platform.MaxServerWatts()}, nil
}

// Library exposes the application library realized on this platform.
func (s *Server) Library() *workload.Library { return s.lib }

// SetCap sets the server power cap in watts (the paper's P_cap).
func (s *Server) SetCap(watts float64) error {
	if watts <= 0 {
		return fmt.Errorf("powerstruggle: cap %.1f W is invalid", watts)
	}
	s.capW = watts
	return nil
}

// Cap returns the current power cap.
func (s *Server) Cap() float64 { return s.capW }

// Admit schedules a named benchmark application (one of the paper's
// twelve; see Apps) onto the server, best-effort with unit weight.
func (s *Server) Admit(app string) error {
	return s.AdmitCritical(app, 1, 0)
}

// AdmitCritical schedules a named application with a weighted objective
// term and an SLO floor: the mediator never allocates it less power than
// floorPerf of its uncapped performance needs (the latency-critical
// co-location the paper's footnote on Requirement R4 discusses). A
// floorPerf of 0 means best-effort; weight scales its term in the
// objective.
func (s *Server) AdmitCritical(app string, weight, floorPerf float64) error {
	p, err := s.lib.App(app)
	if err != nil {
		return err
	}
	return s.admit(p, app, weight, floorPerf)
}

// AdmitProfile schedules a custom application model.
func (s *Server) AdmitProfile(p *workload.Profile) error {
	if p == nil {
		return fmt.Errorf("powerstruggle: nil profile")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	return s.admit(p, p.Name, 1, 0)
}

func (s *Server) admit(p *workload.Profile, name string, weight, floorPerf float64) error {
	if weight <= 0 {
		return fmt.Errorf("powerstruggle: %s: weight %g must be positive", name, weight)
	}
	if floorPerf < 0 || floorPerf > 1 {
		return fmt.Errorf("powerstruggle: %s: SLO floor %g outside [0, 1]", name, floorPerf)
	}
	s.apps = append(s.apps, p)
	s.names = append(s.names, name)
	s.objs = append(s.objs, allocator.Objective{Weight: weight, FloorPerf: floorPerf})
	if weight != 1 || floorPerf > 0 {
		s.anySLO = true
	}
	return nil
}

// Apps lists the benchmark applications available to Admit.
func (s *Server) Apps() []string { return s.lib.Names() }

// Mixes returns the paper's Table II co-location mixes.
func Mixes() []workload.Mix { return workload.Mixes() }

// Result is the measured outcome of running the admitted applications
// under a policy.
type Result struct {
	// Policy that produced the schedule.
	Policy Policy
	// Mode is the coordination mode chosen (space, time or esd).
	Mode string
	// TotalPerf is the paper's objective (1): the sum of normalized
	// per-application performances (uncapped co-location scores one
	// per application).
	TotalPerf float64
	// AppPerf is each admitted application's normalized performance,
	// in admission order.
	AppPerf []float64
	// AppBudgetW is each application's time-averaged power share.
	AppBudgetW []float64
	// MaxGridW is the peak grid draw observed; adherence means it
	// never exceeded the cap.
	MaxGridW float64
	// CapViolations counts integration steps that exceeded the cap.
	CapViolations int
	// Samples is the decimated power timeline.
	Samples []coordinator.Sample
}

// Plan computes the schedule a policy would install right now without
// executing it.
func (s *Server) Plan(p Policy) (coordinator.Schedule, error) {
	dec, err := s.decide(p, s.device())
	if err != nil {
		return coordinator.Schedule{}, err
	}
	return dec.Schedule, nil
}

func (s *Server) device() *esd.Device {
	if s.cfg.BatteryJ <= 0 {
		return nil
	}
	dev, err := esd.NewDevice(esd.LeadAcid(s.cfg.BatteryJ), 0.6)
	if err != nil {
		return nil
	}
	return dev
}

func (s *Server) decide(p Policy, dev *esd.Device) (policy.Decision, error) {
	if len(s.apps) == 0 {
		return policy.Decision{}, fmt.Errorf("powerstruggle: no applications admitted")
	}
	ctx := policy.Context{
		HW:       s.cfg.Platform,
		CapW:     s.capW,
		Profiles: s.apps,
		Library:  s.lib,
		Device:   dev,
		Coord:    coordinator.Config{RestoreSeconds: s.cfg.RestoreSeconds},
	}
	if s.anySLO {
		ctx.Objectives = append([]allocator.Objective(nil), s.objs...)
	}
	return policy.Plan(p, ctx)
}

// Run plans with policy p and executes the schedule on the simulated
// platform for seconds of simulated time, returning measured results.
func (s *Server) Run(p Policy, seconds float64) (*Result, error) {
	if seconds <= 0 {
		return nil, fmt.Errorf("powerstruggle: run of %g s", seconds)
	}
	dev := s.device()
	dec, err := s.decide(p, dev)
	if err != nil {
		return nil, err
	}
	insts := make([]*workload.Instance, len(s.apps))
	for i, ap := range s.apps {
		inst, err := workload.NewInstance(ap, 0)
		if err != nil {
			return nil, err
		}
		insts[i] = inst
	}
	r := coordinator.Runner{
		Config: coordinator.Config{
			HW: s.cfg.Platform, CapW: s.capW,
			RestoreSeconds: s.cfg.RestoreSeconds,
			Telemetry:      s.cfg.Telemetry,
		},
		Profiles:    s.apps,
		Instances:   insts,
		Device:      dev,
		SampleEvery: 0.25,
	}
	run, err := r.Run(dec.Schedule, seconds)
	if err != nil {
		return nil, err
	}
	return &Result{
		Policy:        p,
		Mode:          dec.Schedule.Mode.String(),
		TotalPerf:     run.TotalPerf,
		AppPerf:       run.AppNormPerf,
		AppBudgetW:    dec.Schedule.AppBudgetW,
		MaxGridW:      run.MaxGridW,
		CapViolations: run.CapViolations,
		Samples:       run.Samples,
	}, nil
}

// Reset removes all admitted applications.
func (s *Server) Reset() {
	s.apps = nil
	s.names = nil
	s.objs = nil
	s.anySLO = false
}
