// Package heartbeat implements the Application Heartbeats interface the
// paper uses to measure application performance (Hoffmann et al., ref
// [41]): applications emit a beat per unit of useful work, and the
// runtime reads windowed beat rates to populate its performance matrix
// and detect phase changes.
package heartbeat

import (
	"fmt"
	"sort"
	"sync"
)

// beat is one recorded heartbeat batch.
type beat struct {
	t     float64 // emission time, seconds
	count float64 // beats in the batch (fractional allowed for models)
}

// Monitor collects heartbeats from registered producers and serves
// windowed rate queries. Time is caller-supplied (simulated or wall
// clock), monotone non-decreasing per producer.
//
// Monitor is safe for concurrent use.
type Monitor struct {
	mu    sync.Mutex
	prods map[string]*producer
}

type producer struct {
	beats  []beat
	total  float64
	lastT  float64
	window float64
}

// NewMonitor returns an empty heartbeat monitor.
func NewMonitor() *Monitor {
	return &Monitor{prods: make(map[string]*producer)}
}

// Register adds a producer with the given rate-averaging window in
// seconds. Registering an existing name resets its history.
func (m *Monitor) Register(name string, windowSeconds float64) error {
	if name == "" {
		return fmt.Errorf("heartbeat: producer needs a name")
	}
	if windowSeconds <= 0 {
		return fmt.Errorf("heartbeat: %s: window must be positive, got %g", name, windowSeconds)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.prods[name] = &producer{window: windowSeconds}
	return nil
}

// Unregister removes a producer and its history.
func (m *Monitor) Unregister(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.prods, name)
}

// Beat records count heartbeats from name at time t (seconds). Beats must
// arrive in non-decreasing time order per producer.
func (m *Monitor) Beat(name string, t, count float64) error {
	if count < 0 {
		return fmt.Errorf("heartbeat: %s: negative beat count %g", name, count)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.prods[name]
	if !ok {
		return fmt.Errorf("heartbeat: unknown producer %q", name)
	}
	if t < p.lastT {
		return fmt.Errorf("heartbeat: %s: time went backwards (%g after %g)", name, t, p.lastT)
	}
	p.lastT = t
	p.total += count
	p.beats = append(p.beats, beat{t: t, count: count})
	p.trim(t)
	return nil
}

// trim drops beats older than the window (keeping one beat before the
// window edge so a sparse producer still has a rate).
func (p *producer) trim(now float64) {
	cut := now - p.window
	i := sort.Search(len(p.beats), func(i int) bool { return p.beats[i].t >= cut })
	if i > 0 {
		p.beats = append(p.beats[:0], p.beats[i:]...)
	}
}

// Rate returns the producer's beat rate (beats/second) over its window
// ending at time now. A producer with no beats in the window reports 0.
func (m *Monitor) Rate(name string, now float64) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.prods[name]
	if !ok {
		return 0, fmt.Errorf("heartbeat: unknown producer %q", name)
	}
	cut := now - p.window
	var sum float64
	for _, b := range p.beats {
		if b.t >= cut && b.t <= now {
			sum += b.count
		}
	}
	return sum / p.window, nil
}

// Total returns the producer's lifetime beat count.
func (m *Monitor) Total(name string) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.prods[name]
	if !ok {
		return 0, fmt.Errorf("heartbeat: unknown producer %q", name)
	}
	return p.total, nil
}

// Producers returns the registered producer names in sorted order.
func (m *Monitor) Producers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.prods))
	for n := range m.prods {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
