package heartbeat

import "testing"

// A producer that has never beaten reports a zero rate, not an error:
// silence is a legitimate (and, under fault injection, load-bearing)
// observation.
func TestRateEmptyWindow(t *testing.T) {
	m := NewMonitor()
	if err := m.Register("app", 5); err != nil {
		t.Fatal(err)
	}
	r, err := m.Rate("app", 0)
	if err != nil {
		t.Fatalf("rate of a silent producer: %v", err)
	}
	if r != 0 {
		t.Fatalf("rate = %g with no beats, want 0", r)
	}
	tot, err := m.Total("app")
	if err != nil || tot != 0 {
		t.Fatalf("total = (%g, %v), want (0, nil)", tot, err)
	}
}

// Once every beat has aged out of the window the rate must decay to
// exactly zero — a stale burst must not keep reading as activity.
func TestRateExpiredWindow(t *testing.T) {
	m := NewMonitor()
	if err := m.Register("app", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Beat("app", 0, 50); err != nil {
		t.Fatal(err)
	}
	if r, _ := m.Rate("app", 1); r != 25 {
		t.Fatalf("in-window rate = %g, want 25", r)
	}
	if r, _ := m.Rate("app", 100); r != 0 {
		t.Fatalf("rate = %g long after the last beat, want 0", r)
	}
	// The lifetime total survives the window expiring.
	if tot, _ := m.Total("app"); tot != 50 {
		t.Fatalf("total = %g, want 50", tot)
	}
}

func TestRateUnknownProducer(t *testing.T) {
	m := NewMonitor()
	if _, err := m.Rate("ghost", 0); err == nil {
		t.Fatal("rate of an unregistered producer succeeded")
	}
}
