package heartbeat

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegisterValidation(t *testing.T) {
	m := NewMonitor()
	if err := m.Register("", 1); err == nil {
		t.Error("empty name accepted")
	}
	if err := m.Register("a", 0); err == nil {
		t.Error("zero window accepted")
	}
	if err := m.Register("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Beat("unknown", 0, 1); err == nil {
		t.Error("beat to unknown producer accepted")
	}
	if _, err := m.Rate("unknown", 0); err == nil {
		t.Error("rate of unknown producer accepted")
	}
	if _, err := m.Total("unknown"); err == nil {
		t.Error("total of unknown producer accepted")
	}
	if err := m.Beat("a", 0, -1); err == nil {
		t.Error("negative beat count accepted")
	}
}

func TestConstantEmitterRate(t *testing.T) {
	m := NewMonitor()
	if err := m.Register("app", 5); err != nil {
		t.Fatal(err)
	}
	// 10 beats/s for 20 s.
	for i := 0; i <= 200; i++ {
		if err := m.Beat("app", float64(i)*0.1, 1); err != nil {
			t.Fatal(err)
		}
	}
	r, err := m.Rate("app", 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-10) > 0.5 {
		t.Errorf("windowed rate = %g, want ~10", r)
	}
	total, _ := m.Total("app")
	if total != 201 {
		t.Errorf("total = %g, want 201", total)
	}
}

func TestWindowForgetsOldBeats(t *testing.T) {
	m := NewMonitor()
	if err := m.Register("app", 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Beat("app", 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Beat("app", 10, 1); err != nil {
		t.Fatal(err)
	}
	r, _ := m.Rate("app", 10)
	if math.Abs(r-0.5) > 1e-9 {
		t.Errorf("rate = %g, want 0.5 (burst at t=0 outside the window)", r)
	}
}

func TestTimeMustNotGoBackwards(t *testing.T) {
	m := NewMonitor()
	if err := m.Register("app", 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Beat("app", 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Beat("app", 4, 1); err == nil {
		t.Error("backwards beat accepted")
	}
}

func TestReregisterResets(t *testing.T) {
	m := NewMonitor()
	_ = m.Register("app", 1)
	_ = m.Beat("app", 0, 5)
	_ = m.Register("app", 1)
	total, err := m.Total("app")
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("total after re-registration = %g, want 0", total)
	}
}

func TestUnregister(t *testing.T) {
	m := NewMonitor()
	_ = m.Register("a", 1)
	_ = m.Register("b", 1)
	m.Unregister("a")
	if got := m.Producers(); len(got) != 1 || got[0] != "b" {
		t.Errorf("Producers = %v, want [b]", got)
	}
}

func TestConcurrentProducers(t *testing.T) {
	m := NewMonitor()
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		if err := m.Register(n, 10); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, n := range names {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := m.Beat(n, float64(i)*0.01, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, n := range names {
		total, err := m.Total(n)
		if err != nil {
			t.Fatal(err)
		}
		if total != 500 {
			t.Errorf("%s: total = %g, want 500", n, total)
		}
	}
}

func TestQuickRateMatchesTotalOverWindow(t *testing.T) {
	// For beats all inside the window, rate == sum/window exactly.
	prop := func(counts []uint8) bool {
		m := NewMonitor()
		if err := m.Register("p", 100); err != nil {
			return false
		}
		var sum float64
		for i, c := range counts {
			if i >= 90 {
				break
			}
			v := float64(c)
			sum += v
			if err := m.Beat("p", float64(i), v); err != nil {
				return false
			}
		}
		r, err := m.Rate("p", 90)
		if err != nil {
			return false
		}
		return math.Abs(r-sum/100) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
