// Package telemetry is the observability substrate of the mediation
// runtime: a metrics registry and a control-loop span tracer that make
// every R1–R4 decision measurable without perturbing it.
//
// The paper's runtime is a closed control loop — the Accountant (events
// E1–E4) triggers the PowerAllocator (R1 apportioning over utility
// curves, R2 resource partitioning), whose plan the Coordinator turns
// into space/time/ESD schedules (R3, R4) and actuates every interval.
// This package gives each stage first-class instruments:
//
//   - Registry: counters, gauges, and fixed-bucket histograms whose hot
//     path is a single atomic op — no locks, no allocation — so the
//     10 ms control interval can afford to observe itself. Handles are
//     nil-safe: a component built without telemetry carries nil
//     instruments and every method is a no-op, which keeps the
//     telemetry-disabled run bit-identical to the uninstrumented one.
//   - Tracer: per-interval control-loop spans (plan → calibrate →
//     actuate → settle) with attributes (tenant, knob vector, watts
//     granted, overshoot), buffered in a lock-free ring sized in
//     intervals; old intervals are overwritten, never blocked on.
//   - Exporters: Prometheus text format (served on the daemon's mux),
//     JSONL event streams for offline analysis, and Chrome trace_event
//     JSON so a whole psmediate run opens in Perfetto with one track
//     per tenant.
//
// docs/METRICS.md is the reference table of every metric and span this
// package carries, and DESIGN.md §9 documents the span model and the
// overhead budget (<1% of interval time, enforced by
// BenchmarkTelemetryOverhead in internal/coordinator).
package telemetry
