package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// jsonlEvent is the offline-analysis shape of one span event: simulated
// time in seconds, flat attribute object.
type jsonlEvent struct {
	T    float64        `json:"t"`
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	DurS float64        `json:"durS,omitempty"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSONL streams the tracer's retained events as one JSON object per
// line, oldest first — the format the offline-analysis scripts consume
// (jq-friendly, appendable, resumable).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		out := jsonlEvent{T: ev.TsS, Name: ev.Name, Cat: ev.Cat, Ph: string(ev.Ph), DurS: ev.DurS, Tid: ev.Tid}
		if len(ev.Attrs) > 0 {
			out.Args = make(map[string]any, len(ev.Attrs))
			for _, a := range ev.Attrs {
				out.Args[a.Key] = a.Val
			}
		}
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace_event entry. Timestamps are in
// microseconds; we map simulated seconds 1:1 onto trace microseconds
// via ×1e6, so one second of simulation reads as one second in Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the tracer's retained events as Chrome
// trace_event JSON (the object form, with thread-name metadata), which
// Perfetto and chrome://tracing open directly: one track per tid, spans
// nested by containment, attributes in the args pane.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].TsS < events[j].TsS })
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+8)}

	names := t.ThreadNames()
	tids := make([]int, 0, len(names))
	for tid := range names {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": names[tid]},
		})
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: string(ev.Ph),
			Ts: ev.TsS * 1e6, Pid: 1, Tid: ev.Tid,
		}
		switch ev.Ph {
		case 'X':
			ce.Dur = ev.DurS * 1e6
		case 'i':
			ce.S = "t"
		}
		if len(ev.Attrs) > 0 {
			ce.Args = make(map[string]any, len(ev.Attrs))
			for _, a := range ev.Attrs {
				ce.Args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
