package telemetry

import "sync"

// Phase names for span categories: the four stages of one control
// interval in the R1–R4 loop. "plan" covers the Accountant's
// re-allocation window (R1/R2 solve), "calibrate" the utility-model
// refresh feeding it, "actuate" the Coordinator writing knobs and
// running tenants (R3), and "settle" the recovery tail after an
// emergency clamp releases.
const (
	CatInterval  = "interval"
	CatPlan      = "plan"
	CatCalibrate = "calibrate"
	CatActuate   = "actuate"
	CatSettle    = "settle"
	CatFault     = "fault"
	CatCluster   = "cluster"
	CatCtrl      = "ctrlplane"
)

// Well-known trace tracks (Chrome trace tids). Tenants occupy
// TidTenant0 + index.
const (
	TidControl    = 0
	TidAccountant = 90
	TidClusterT   = 95
	TidCoord      = 97
	TidTenant0    = 1
)

// Attr is one span attribute. Values stay `any` so knob vectors render
// as strings and watts as numbers; spans are emitted once per control
// interval, off the per-write hot path, so the boxing cost is accepted.
type Attr struct {
	Key string
	Val any
}

// A returns an Attr — sugar keeping call sites short.
func A(key string, val any) Attr { return Attr{Key: key, Val: val} }

// SpanEvent is one trace event in simulated time. Ph follows the Chrome
// trace_event phases: 'X' complete span, 'i' instant.
type SpanEvent struct {
	Name  string
	Cat   string
	Ph    byte
	TsS   float64 // simulated-time start, seconds
	DurS  float64 // duration, seconds (complete spans)
	Tid   int
	Attrs []Attr
}

// Tracer records control-loop spans into a lock-free ring. A nil Tracer
// discards everything, so components plumb it unconditionally.
type Tracer struct {
	ring *Ring[SpanEvent]

	mu      sync.Mutex
	threads map[int]string
}

// NewTracer builds a tracer whose ring retains about ringSize events
// (0 means 65536 — roughly 20k control intervals of a two-tenant run).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 1 << 16
	}
	return &Tracer{ring: NewRing[SpanEvent](ringSize), threads: make(map[int]string)}
}

// SetThreadName labels a trace track (Perfetto shows it as the thread
// name; the executor names one track per tenant).
func (t *Tracer) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[tid] = name
	t.mu.Unlock()
}

// ThreadNames returns a copy of the track-name table.
func (t *Tracer) ThreadNames() map[int]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]string, len(t.threads))
	for k, v := range t.threads {
		out[k] = v
	}
	return out
}

// Span records a complete span [tsS, tsS+durS).
func (t *Tracer) Span(name, cat string, tid int, tsS, durS float64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.ring.Put(&SpanEvent{Name: name, Cat: cat, Ph: 'X', TsS: tsS, DurS: durS, Tid: tid, Attrs: attrs})
}

// Instant records a point event at tsS.
func (t *Tracer) Instant(name, cat string, tid int, tsS float64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.ring.Put(&SpanEvent{Name: name, Cat: cat, Ph: 'i', TsS: tsS, Tid: tid, Attrs: attrs})
}

// Events snapshots the retained events, oldest first.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	ptrs := t.ring.Snapshot()
	out := make([]SpanEvent, 0, len(ptrs))
	for _, p := range ptrs {
		out = append(out, *p)
	}
	return out
}

// Written returns the lifetime event count; Dropped how many the ring
// has overwritten.
func (t *Tracer) Written() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.Written()
}

// Dropped returns the number of events lost to ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.Dropped()
}
