package telemetry

import "sync/atomic"

// Ring is a lock-free, fixed-capacity ring buffer of pointers. Writers
// claim a slot with one atomic add and publish with one atomic pointer
// store, so concurrent writers never block each other and never block on
// a reader; when full, the oldest entries are overwritten. It backs the
// span tracer — sized in control intervals, a long run keeps the most
// recent window instead of growing without bound.
type Ring[T any] struct {
	slots []atomic.Pointer[T]
	mask  uint64
	next  atomic.Uint64
}

// NewRing builds a ring holding at least size entries (rounded up to a
// power of two; size <= 0 means 1024).
func NewRing[T any](size int) *Ring[T] {
	if size <= 0 {
		size = 1024
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Ring[T]{slots: make([]atomic.Pointer[T], n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.slots) }

// Put publishes v, overwriting the oldest entry when full. Nil-safe.
func (r *Ring[T]) Put(v *T) {
	if r == nil || v == nil {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i&r.mask].Store(v)
}

// Written returns the lifetime number of Put calls.
func (r *Ring[T]) Written() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Dropped returns how many entries have been overwritten.
func (r *Ring[T]) Dropped() uint64 {
	if r == nil {
		return 0
	}
	w := r.next.Load()
	if c := uint64(len(r.slots)); w > c {
		return w - c
	}
	return 0
}

// Snapshot copies the retained entries, oldest first. Entries being
// written concurrently may be absent (their slot still holds the value
// from the previous lap or nil); the snapshot is consistent enough for
// export, which is the only consumer.
func (r *Ring[T]) Snapshot() []*T {
	if r == nil {
		return nil
	}
	w := r.next.Load()
	c := uint64(len(r.slots))
	start := uint64(0)
	if w > c {
		start = w - c
	}
	out := make([]*T, 0, w-start)
	for i := start; i < w; i++ {
		if v := r.slots[i&r.mask].Load(); v != nil {
			out = append(out, v)
		}
	}
	return out
}
