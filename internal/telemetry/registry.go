package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// metricKind is the Prometheus family type.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labeled instance within a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	bounds     []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series // keyed by joined label values
	order  []string
}

func (f *family) get(values []string) *series {
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newHistogram(f.bounds)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Registry holds metric families. Registration is idempotent: asking for
// an existing name returns the existing handle, so components recreated
// against one registry (a daemon rebuilding its executor) keep
// accumulating into the same series. A nil *Registry hands out nil
// instruments, whose methods all no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register finds or creates a family; a name collision with a different
// kind panics — that is a programming error, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labels...),
		bounds:     append([]float64(nil), bounds...),
		series:     make(map[string]*series),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, nil, nil).get(nil).counter
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, nil, nil).get(nil).gauge
}

// Histogram registers (or finds) an unlabeled histogram with the given
// upper bucket bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, nil, bounds).get(nil).hist
}

// CounterVec is a counter family with labels. A nil vec hands out nil
// counters.
type CounterVec struct{ f *family }

// With returns the child for the given label values, creating it on
// first use. Hot paths should resolve children once and hold them.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(values).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(values).gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(values).hist
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, bounds)}
}

// visit walks families sorted by name, series in creation order, under
// the registry lock — exporters are cold-path and tolerate it.
func (r *Registry) visit(fn func(f *family, labelValues []string, s *series)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		ss := make([]*series, len(keys))
		for i, k := range keys {
			ss[i] = f.series[k]
		}
		f.mu.Unlock()
		for _, s := range ss {
			fn(f, s.labelValues, s)
		}
	}
}
