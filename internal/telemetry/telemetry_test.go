package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing[int](8)
	if r.Cap() != 8 {
		t.Fatalf("Cap() = %d, want 8", r.Cap())
	}
	for i := 0; i < 20; i++ {
		v := i
		r.Put(&v)
	}
	if r.Written() != 20 {
		t.Fatalf("Written() = %d, want 20", r.Written())
	}
	if r.Dropped() != 12 {
		t.Fatalf("Dropped() = %d, want 12", r.Dropped())
	}
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("Snapshot() has %d entries, want 8", len(snap))
	}
	for i, p := range snap {
		if *p != 12+i {
			t.Fatalf("Snapshot()[%d] = %d, want %d (oldest-first)", i, *p, 12+i)
		}
	}
}

func TestRingRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1024}, {-5, 1024}, {1, 1}, {3, 4}, {1000, 1024}, {1025, 2048},
	} {
		if got := NewRing[int](tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRingConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 1000
	r := NewRing[SpanEvent](256)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Put(&SpanEvent{Name: "s", Tid: w, TsS: float64(i)})
				if i%100 == 0 {
					_ = r.Snapshot() // readers race with writers
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Written() != writers*perWriter {
		t.Fatalf("Written() = %d, want %d", r.Written(), writers*perWriter)
	}
	if got := len(r.Snapshot()); got != 256 {
		t.Fatalf("Snapshot() has %d entries, want full ring of 256", got)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}

	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}

	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 105 {
		t.Fatalf("hist sum = %g, want 105", h.Sum())
	}
	want := []uint64{1, 1, 1, 1} // (..1], (1..2], (2..4], (4..+Inf)
	for i, n := range h.snapshot() {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
}

func TestNilHandlesNoOp(t *testing.T) {
	// Every nil handle must be callable: components plumb telemetry
	// unconditionally and a disabled run exercises exactly these paths.
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	var reg *Registry
	if reg.Counter("x", "") != nil || reg.Gauge("x", "") != nil || reg.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry handed out a live instrument")
	}
	if reg.CounterVec("x", "", "l").With("v") != nil {
		t.Fatal("nil registry vec handed out a live instrument")
	}
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	var tr *Tracer
	tr.Span("s", CatActuate, 0, 0, 1)
	tr.Instant("i", CatFault, 0, 0)
	tr.SetThreadName(0, "x")
	if tr.Events() != nil || tr.Written() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil tracer WriteChromeTrace: %v", err)
	}
	var hub *Hub
	if hub.Registry() != nil || hub.Tracer() != nil {
		t.Fatal("nil hub handed out live instruments")
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("ps_test_total", "help")
	b := reg.Counter("ps_test_total", "other help")
	if a != b {
		t.Fatal("re-registering the same counter returned a different handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles do not share state")
	}
	v1 := reg.CounterVec("ps_test_vec_total", "h", "kind").With("x")
	v2 := reg.CounterVec("ps_test_vec_total", "h", "kind").With("x")
	if v1 != v2 {
		t.Fatal("vec children not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	reg.Gauge("ps_test_total", "now a gauge")
}

// sampleLine matches one Prometheus text-format sample.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[-+]?(\d+(\.\d+)?([eE][-+]?\d+)?|Inf))$`)

func TestWritePrometheusParses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ps_a_total", "counts a\nthings").Add(3)
	reg.Gauge("ps_b_watts", "watts").Set(12.5)
	h := reg.Histogram("ps_c_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.05, 5} {
		h.Observe(v)
	}
	reg.CounterVec("ps_d_total", "labeled", "kind").With("x").Inc()
	reg.CounterVec("ps_d_total", "labeled", "kind").With("y").Add(2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	var (
		samples  int
		helpFor  = map[string]bool{}
		typeFor  = map[string]bool{}
		lastName string
	)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 {
				t.Fatalf("malformed HELP line %q", line)
			}
			helpFor[parts[2]] = true
			lastName = parts[2]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if parts[2] != lastName {
				t.Fatalf("TYPE for %q does not follow its HELP", parts[2])
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown TYPE %q", parts[3])
			}
			typeFor[parts[2]] = true
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("sample line %q does not parse", line)
		}
		samples++
	}
	for _, name := range []string{"ps_a_total", "ps_b_watts", "ps_c_seconds", "ps_d_total"} {
		if !helpFor[name] || !typeFor[name] {
			t.Fatalf("family %s missing HELP or TYPE:\n%s", name, text)
		}
	}
	if samples == 0 {
		t.Fatal("no samples rendered")
	}

	// Histogram buckets must be cumulative and end at the total count.
	bucket := regexp.MustCompile(`^ps_c_seconds_bucket\{le="([^"]+)"\} (\d+)$`)
	var counts []uint64
	var sawInf bool
	for _, line := range strings.Split(text, "\n") {
		if m := bucket.FindStringSubmatch(line); m != nil {
			n, _ := strconv.ParseUint(m[2], 10, 64)
			counts = append(counts, n)
			sawInf = m[1] == "+Inf"
		}
	}
	if len(counts) != 4 || !sawInf {
		t.Fatalf("histogram buckets = %v (Inf last: %v), want 4 ending at +Inf", counts, sawInf)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", counts)
		}
	}
	if counts[len(counts)-1] != h.Count() {
		t.Fatalf("+Inf bucket %d != count %d", counts[len(counts)-1], h.Count())
	}
}

func TestChromeTraceLoads(t *testing.T) {
	tr := NewTracer(64)
	tr.SetThreadName(TidControl, "control")
	tr.SetThreadName(TidTenant0, "STREAM")
	tr.Span("interval", CatInterval, TidControl, 0, 0.01, A("grid_w", 75.5))
	tr.Span("(f=2.5GHz, n=8, m=20W)", CatActuate, TidTenant0, 0, 0.01, A("tenant", "STREAM"))
	tr.Instant("knob-write-fail", CatFault, TidControl, 0.005, A("target", "dvfs"))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace does not unmarshal: %v", err)
	}
	if len(trace.TraceEvents) != 5 { // 2 thread_name + 2 spans + 1 instant
		t.Fatalf("got %d events, want 5", len(trace.TraceEvents))
	}
	var spans, instants, meta int
	for _, ev := range trace.TraceEvents {
		if ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %q lacks pid/tid", ev.Name)
		}
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur <= 0 {
				t.Fatalf("span %q has dur %g", ev.Name, ev.Dur)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Fatalf("unknown phase %q", ev.Ph)
		}
	}
	if spans != 2 || instants != 1 || meta != 2 {
		t.Fatalf("spans/instants/meta = %d/%d/%d, want 2/1/2", spans, instants, meta)
	}
	// Simulated seconds map to microseconds: the 10 ms interval is
	// 10000 µs.
	for _, ev := range trace.TraceEvents {
		if ev.Name == "interval" && ev.Dur != 10000 {
			t.Fatalf("interval dur = %g µs, want 10000", ev.Dur)
		}
	}
}

func TestJSONLStreamParses(t *testing.T) {
	tr := NewTracer(64)
	for i := 0; i < 10; i++ {
		tr.Span("interval", CatInterval, TidControl, float64(i)*0.01, 0.01, A("n", i))
	}
	tr.Instant("fault", CatFault, TidControl, 0.05)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 11 {
		t.Fatalf("got %d lines, want 11", len(lines))
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if _, ok := obj["t"]; !ok {
			t.Fatalf("line %d lacks t: %s", i, line)
		}
		if _, ok := obj["ph"]; !ok {
			t.Fatalf("line %d lacks ph: %s", i, line)
		}
	}
}

func TestTracerRingBoundsRetention(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 100; i++ {
		tr.Span(fmt.Sprintf("s%d", i), CatInterval, TidControl, float64(i), 1)
	}
	if tr.Written() != 100 {
		t.Fatalf("Written() = %d, want 100", tr.Written())
	}
	if tr.Dropped() != 84 {
		t.Fatalf("Dropped() = %d, want 84", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	if evs[0].Name != "s84" || evs[15].Name != "s99" {
		t.Fatalf("retention window [%s..%s], want [s84..s99]", evs[0].Name, evs[15].Name)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("ps_conc_total", "h")
			h := reg.Histogram("ps_conc_seconds", "h", LatencyBuckets())
			v := reg.CounterVec("ps_conc_vec_total", "h", "w")
			for i := 0; i < 500; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				v.With(strconv.Itoa(w % 2)).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_ = reg.WritePrometheus(&bytes.Buffer{}) // exporter races with writers
		}
	}()
	wg.Wait()
	<-done
	if got := reg.Counter("ps_conc_total", "h").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	var vecTotal uint64
	for _, lv := range []string{"0", "1"} {
		vecTotal += reg.CounterVec("ps_conc_vec_total", "h", "w").With(lv).Value()
	}
	if vecTotal != 4000 {
		t.Fatalf("vec total = %d, want 4000", vecTotal)
	}
}
