package telemetry

// Hub bundles the two instruments a component plumbs: the metrics
// registry and the span tracer. A nil *Hub means telemetry is off —
// Registry() and Tracer() then return nil handles whose methods all
// no-op, so call sites never branch on enablement and the disabled run
// stays bit-identical to the uninstrumented one.
type Hub struct {
	reg    *Registry
	tracer *Tracer
}

// New builds an enabled hub. ringSize bounds the span ring in events
// (0 means the tracer default, 65536).
func New(ringSize int) *Hub {
	return &Hub{reg: NewRegistry(), tracer: NewTracer(ringSize)}
}

// Registry returns the metrics registry (nil when the hub is nil).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Tracer returns the span tracer (nil when the hub is nil).
func (h *Hub) Tracer() *Tracer {
	if h == nil {
		return nil
	}
	return h.tracer
}
