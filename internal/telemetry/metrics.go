package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; a nil Counter silently discards observations, so components
// built without telemetry pay only a nil check.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits.
// A nil Gauge discards writes.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: cumulative bucket counts in
// Prometheus style, plus sum and count. Bucket bounds are frozen at
// registration, so Observe is a binary search plus two atomic adds —
// no locks, no allocation. A nil Histogram discards observations.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound admits v; the last slot is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns the per-bucket (non-cumulative) counts.
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// LatencyBuckets is an exponential ladder for wall-clock latencies in
// seconds, from 1 µs to ~4 s — wide enough for a knob write and for the
// paper's ~800 ms re-allocation.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 23)
	for v := 1e-6; v < 5; v *= 2 {
		out = append(out, v)
	}
	return out
}

// WattBuckets is a linear ladder for power distributions (overshoot,
// apportion deltas) from 0.5 W to 64 W.
func WattBuckets() []float64 {
	return []float64{0.5, 1, 2, 4, 8, 16, 32, 64}
}
