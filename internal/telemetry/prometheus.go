package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, one HELP and TYPE
// line each, histograms expanded into cumulative _bucket/_sum/_count
// series. Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	var last string
	r.visit(func(f *family, values []string, s *series) {
		if f.name != last {
			pf("# HELP %s %s\n", f.name, escapeHelp(f.help))
			pf("# TYPE %s %s\n", f.name, f.kind)
			last = f.name
		}
		lbl := formatLabels(f.labelNames, values, "", "")
		switch f.kind {
		case kindCounter:
			pf("%s%s %d\n", f.name, lbl, s.counter.Value())
		case kindGauge:
			pf("%s%s %g\n", f.name, lbl, s.gauge.Value())
		case kindHistogram:
			counts := s.hist.snapshot()
			var cum uint64
			for i, b := range s.hist.bounds {
				cum += counts[i]
				pf("%s_bucket%s %d\n", f.name,
					formatLabels(f.labelNames, values, "le", fmt.Sprintf("%g", b)), cum)
			}
			cum += counts[len(counts)-1]
			pf("%s_bucket%s %d\n", f.name, formatLabels(f.labelNames, values, "le", "+Inf"), cum)
			pf("%s_sum%s %g\n", f.name, lbl, s.hist.Sum())
			pf("%s_count%s %d\n", f.name, lbl, s.hist.Count())
		}
	})
	return err
}

// formatLabels renders {a="x",b="y"}, optionally appending one extra
// pair (the histogram le label); empty label sets render as "".
func formatLabels(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", n, v)
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
