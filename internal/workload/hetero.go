package workload

import (
	"powerstruggle/internal/simhw"
)

// HeteroKnobs extends Knobs with per-core DVFS heterogeneity: Boost of
// the application's cores run at BoostFreqGHz while the rest stay at
// Base.FreqGHz. The paper's platform supports per-core DVFS (Section
// II-B); its prototype enforced one frequency per application, which
// this generalizes — the serial fraction of the application rides the
// fastest core, so boosting one core buys Amdahl-limited applications
// disproportionate performance per watt.
type HeteroKnobs struct {
	// Base is the uniform setting for the non-boosted cores (and the
	// DRAM limit).
	Base Knobs
	// Boost is how many cores run at BoostFreqGHz (0 disables
	// heterogeneity; Boost <= Base.Cores).
	Boost int
	// BoostFreqGHz is the boosted cores' frequency (clamped to the
	// ladder, at or above Base.FreqGHz).
	BoostFreqGHz float64
}

// clampHetero snaps the heterogeneous setting onto the hardware.
func (hk HeteroKnobs) clamp(cfg simhw.Config, maxCores int) HeteroKnobs {
	out := hk
	out.Base = hk.Base.Clamp(cfg, maxCores)
	if out.Boost < 0 {
		out.Boost = 0
	}
	if out.Boost > out.Base.Cores {
		out.Boost = out.Base.Cores
	}
	out.BoostFreqGHz = cfg.ClampFreq(hk.BoostFreqGHz)
	if out.BoostFreqGHz < out.Base.FreqGHz {
		out.BoostFreqGHz = out.Base.FreqGHz
	}
	return out
}

// RateHetero returns the delivered heartbeat rate under per-core DVFS
// heterogeneity. The compute roofline generalizes Amdahl's law to
// heterogeneous cores: the serial fraction runs on the fastest core and
// the parallel fraction on the aggregate frequency.
func (p *Profile) RateHetero(cfg simhw.Config, hk HeteroKnobs) float64 {
	hk = hk.clamp(cfg, p.MaxCores)
	k := hk.Base
	fastest := k.FreqGHz
	aggregate := float64(k.Cores) * k.FreqGHz
	if hk.Boost > 0 {
		fastest = hk.BoostFreqGHz
		aggregate = float64(hk.Boost)*hk.BoostFreqGHz + float64(k.Cores-hk.Boost)*k.FreqGHz
	}
	// Time per beat: serial on the fastest core, parallel on the sum.
	serial := (1 - p.ParallelFrac) / fastest
	parallel := p.ParallelFrac / aggregate
	rc := p.BaseRate / (serial + parallel)
	rm := p.MemRate(cfg, k.MemWatts)
	return smoothMin(rc, rm)
}

// PowerHetero returns the dynamic draw under per-core heterogeneity:
// each boosted core pays its own switching power, and the DRAM draw
// follows the delivered rate exactly as in the uniform model.
func (p *Profile) PowerHetero(cfg simhw.Config, hk HeteroKnobs) float64 {
	hk = hk.clamp(cfg, p.MaxCores)
	k := hk.Base
	basePerCore := cfg.CoreWatts(k.FreqGHz, p.CPUActivity)
	boostPerCore := cfg.CoreWatts(hk.BoostFreqGHz, p.CPUActivity)
	cores := float64(k.Cores-hk.Boost)*basePerCore + float64(hk.Boost)*boostPerCore

	// DRAM draw at the heterogeneous delivered rate.
	used := 0.0
	if p.MemBytesPerBeat > 0 {
		used = p.RateHetero(cfg, hk) * p.MemBytesPerBeat
		if capGB := cfg.MemBandwidthGBs(k.MemWatts); used > capGB {
			used = capGB
		}
	}
	draw := cfg.MemMinWatts + (used/cfg.MemPeakGBs)*(cfg.MemMaxWatts-cfg.MemMinWatts)
	if draw > k.MemWatts {
		draw = k.MemWatts
	}
	return cores + draw
}

// HeteroCurve builds the utility curve over the heterogeneous knob
// space: every uniform setting plus single-step boost variants (one or
// two cores raised above the pack). It strictly contains the uniform
// space, so it dominates OptimalCurve; the gap is what per-core DVFS is
// worth (the paper's future-work item on finer-grained power control).
func (p *Profile) HeteroCurve(cfg simhw.Config) *Curve {
	ladder := cfg.FreqLadder()
	uniform := EnumKnobs(cfg, p.MaxCores)
	raw := make([]Point, 0, len(uniform)*3)
	nc := p.NoCapRate(cfg)
	if nc <= 0 {
		return &Curve{}
	}
	add := func(hk HeteroKnobs) {
		raw = append(raw, Point{
			Knobs:    hk.Base,
			PowerW:   p.PowerHetero(cfg, hk),
			Perf:     p.RateHetero(cfg, hk) / nc,
			DutyFrac: 1,
		})
	}
	for _, k := range uniform {
		add(HeteroKnobs{Base: k})
		for _, bf := range ladder {
			if bf <= k.FreqGHz {
				continue
			}
			for _, boost := range []int{1, 2} {
				if boost > k.Cores {
					break
				}
				add(HeteroKnobs{Base: k, Boost: boost, BoostFreqGHz: bf})
			}
		}
	}
	return withDutyRays(pareto(raw))
}
