package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"powerstruggle/internal/simhw"
)

// ProfileSpec is the JSON-facing description of a custom application:
// the same compact characterization the built-in library uses, so users
// model their own services without touching the roofline math.
type ProfileSpec struct {
	// Name identifies the application.
	Name string `json:"name"`
	// Class is an optional workload family tag.
	Class string `json:"class,omitempty"`
	// ParallelFrac is the Amdahl parallel fraction in [0, 1).
	ParallelFrac float64 `json:"parallelFrac"`
	// MemBoundness is the compute-to-memory roofline ratio at the
	// uncapped point: >1 memory-bound, <<1 compute-bound.
	MemBoundness float64 `json:"memBoundness"`
	// Activity is the core switching-activity factor in (0, 1].
	Activity float64 `json:"activity"`
	// MaxCores is the maximum useful parallelism (0: one socket's
	// cores).
	MaxCores int `json:"maxCores,omitempty"`
}

// buildSpecProfile realizes a ProfileSpec exactly as the built-in
// library realizes its specs.
func buildSpecProfile(cfg simhw.Config, s ProfileSpec) (*Profile, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("workload: profile spec needs a name")
	}
	if s.MemBoundness < 0 {
		return nil, fmt.Errorf("workload: %s: memBoundness must be non-negative", s.Name)
	}
	class := Class(s.Class)
	if class == "" {
		class = ClassAnalytics
	}
	p := buildProfile(cfg, appSpec{
		name:         s.Name,
		class:        class,
		parallelFrac: s.ParallelFrac,
		memBoundness: s.MemBoundness,
		activity:     s.Activity,
		maxCores:     s.MaxCores,
	})
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadProfiles parses a JSON array of ProfileSpec and realizes each on
// cfg. It is the file format psmediate's -profiles flag accepts.
func LoadProfiles(cfg simhw.Config, r io.Reader) ([]*Profile, error) {
	var specs []ProfileSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("workload: parsing profile specs: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("workload: no profile specs in input")
	}
	seen := make(map[string]bool, len(specs))
	out := make([]*Profile, 0, len(specs))
	for _, s := range specs {
		if seen[s.Name] {
			return nil, fmt.Errorf("workload: duplicate profile %q", s.Name)
		}
		seen[s.Name] = true
		p, err := buildSpecProfile(cfg, s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
