package workload

import (
	"fmt"
	"sort"

	"powerstruggle/internal/simhw"
)

// appSpec is the compact characterization an application profile is built
// from. memBoundness is the ratio of the compute roofline to the memory
// roofline at the uncapped operating point: >1 means the application is
// memory-bound there (STREAM), <<1 means DRAM watts buy it nothing
// (kmeans). These relative shapes — not absolute rates — drive every
// utility difference in the paper.
type appSpec struct {
	name         string
	class        Class
	parallelFrac float64
	memBoundness float64
	activity     float64
	// maxCores is the application's maximum useful parallelism; STREAM
	// saturates its channel with fewer threads, X264's pipeline depth
	// limits it, and so on. It also spreads uncapped power draws the
	// way real co-located applications differ.
	maxCores int
}

// specs characterizes the twelve applications of the paper's evaluation
// (Section IV): MineBench data analytics, GAP graph kernels, STREAM, and
// PARSEC media workloads.
var specs = []appSpec{
	{"STREAM", ClassMemory, 0.85, 5.00, 0.50, 4},
	{"kmeans", ClassAnalytics, 0.98, 0.08, 1.00, 6},
	{"APR", ClassAnalytics, 0.93, 0.35, 0.90, 5},
	{"BFS", ClassGraph, 0.85, 2.20, 0.62, 5},
	{"Connected", ClassGraph, 0.88, 1.80, 0.66, 5},
	{"TriangleCount", ClassGraph, 0.93, 0.50, 0.88, 6},
	{"SSSP", ClassGraph, 0.82, 1.40, 0.70, 4},
	{"Betweenness", ClassGraph, 0.88, 0.90, 0.78, 5},
	{"PageRank", ClassSearch, 0.94, 0.35, 0.80, 6},
	{"X264", ClassMedia, 0.92, 0.20, 0.95, 4},
	{"facesim", ClassMedia, 0.94, 0.70, 0.85, 6},
	{"ferret", ClassMedia, 0.96, 0.30, 0.92, 5},
}

// buildProfile realizes a spec on a platform: BaseRate is normalized so
// the uncapped compute roofline is 1 beat/s, and MemBytesPerBeat is set
// so the uncapped memory roofline sits at 1/memBoundness of it.
func buildProfile(cfg simhw.Config, s appSpec) *Profile {
	maxCores := s.maxCores
	if maxCores <= 0 || maxCores > cfg.CoresPerSocket {
		maxCores = cfg.CoresPerSocket
	}
	p := &Profile{
		Name:         s.name,
		Class:        s.class,
		ParallelFrac: s.parallelFrac,
		CPUActivity:  s.activity,
		MaxCores:     maxCores,
	}
	p.BaseRate = 1 / (cfg.FreqMaxGHz * p.Speedup(p.MaxCores))
	if s.memBoundness > 0 {
		// Uncapped compute roofline is 1 beat/s by construction, so the
		// memory roofline at m = MemMaxWatts must be 1/memBoundness.
		p.MemBytesPerBeat = cfg.MemBandwidthGBs(cfg.MemMaxWatts) * s.memBoundness
	}
	return p
}

// Library holds the application profiles realized for one platform.
type Library struct {
	cfg      simhw.Config
	byName   map[string]*Profile
	ordered  []*Profile
	specsMap map[string]appSpec
}

// NewLibrary realizes the paper's twelve applications on cfg.
func NewLibrary(cfg simhw.Config) (*Library, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &Library{
		cfg:      cfg,
		byName:   make(map[string]*Profile, len(specs)),
		specsMap: make(map[string]appSpec, len(specs)),
	}
	for _, s := range specs {
		p := buildProfile(cfg, s)
		if err := p.Validate(); err != nil {
			return nil, err
		}
		l.byName[p.Name] = p
		l.ordered = append(l.ordered, p)
		l.specsMap[p.Name] = s
	}
	return l, nil
}

// Config returns the platform the library was realized on.
func (l *Library) Config() simhw.Config { return l.cfg }

// App returns a named application profile.
func (l *Library) App(name string) (*Profile, error) {
	p, ok := l.byName[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown application %q", name)
	}
	return p, nil
}

// MustApp is App for names known at compile time; it panics on a typo.
func (l *Library) MustApp(name string) *Profile {
	p, err := l.App(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Apps returns all application profiles in declaration order.
func (l *Library) Apps() []*Profile {
	out := make([]*Profile, len(l.ordered))
	copy(out, l.ordered)
	return out
}

// Names returns the application names in sorted order.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.byName))
	for n := range l.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WithPhases returns a copy of a named profile carrying the given phase
// schedule, for experiments on the paper's event E4 (dynamic changes
// within an application).
func (l *Library) WithPhases(name string, phases []Phase) (*Profile, error) {
	p, err := l.App(name)
	if err != nil {
		return nil, err
	}
	out := *p
	out.Phases = append([]Phase(nil), phases...)
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// Mix is one of Table II's two-application co-locations.
type Mix struct {
	// ID is the mix number (1-15).
	ID int
	// App1 and App2 are the co-located application names.
	App1, App2 string
}

// String renders the mix as Table II's row.
func (m Mix) String() string { return fmt.Sprintf("mix-%d: %s + %s", m.ID, m.App1, m.App2) }

// Mixes returns Table II: the fifteen randomly-chosen application pairs
// the paper evaluates.
func Mixes() []Mix {
	return []Mix{
		{1, "STREAM", "kmeans"},
		{2, "Connected", "kmeans"},
		{3, "STREAM", "BFS"},
		{4, "facesim", "BFS"},
		{5, "ferret", "Betweenness"},
		{6, "ferret", "PageRank"},
		{7, "facesim", "Betweenness"},
		{8, "X264", "TriangleCount"},
		{9, "APR", "Connected"},
		{10, "PageRank", "kmeans"},
		{11, "ferret", "SSSP"},
		{12, "facesim", "X264"},
		{13, "APR", "kmeans"},
		{14, "X264", "SSSP"},
		{15, "APR", "X264"},
	}
}

// MixProfiles resolves a mix's two applications against the library.
func (l *Library) MixProfiles(m Mix) (*Profile, *Profile, error) {
	a, err := l.App(m.App1)
	if err != nil {
		return nil, nil, err
	}
	b, err := l.App(m.App2)
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}
