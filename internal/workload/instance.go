package workload

import (
	"fmt"

	"powerstruggle/internal/simhw"
)

// Instance is one running copy of an application in a time-stepped
// simulation: it tracks busy time (for phase selection), delivered
// heartbeats, and optionally a finite amount of work after which the
// application departs (the paper's event E3).
type Instance struct {
	// Profile is the application model. Phase-bearing profiles are
	// resolved per step through PhaseAt.
	Profile *Profile
	// TotalBeats is the finite work of the instance in heartbeats; 0
	// means the instance runs forever.
	TotalBeats float64

	busySeconds float64
	beats       float64
	done        bool
}

// NewInstance starts an instance of profile with totalBeats of work (0
// for endless).
func NewInstance(p *Profile, totalBeats float64) (*Instance, error) {
	if p == nil {
		return nil, fmt.Errorf("workload: instance needs a profile")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if totalBeats < 0 {
		return nil, fmt.Errorf("workload: %s: negative work %g", p.Name, totalBeats)
	}
	return &Instance{Profile: p, TotalBeats: totalBeats}, nil
}

// Effective returns the phase-resolved profile in force right now.
func (in *Instance) Effective() *Profile {
	return in.Profile.PhaseAt(in.busySeconds)
}

// Advance runs the instance for dt seconds at knob setting k on cfg
// (running=false models a suspended task: time passes, no progress, no
// busy time). It returns the heartbeats delivered during the step.
func (in *Instance) Advance(cfg simhw.Config, k Knobs, running bool, dt float64) float64 {
	if dt <= 0 || in.done || !running {
		return 0
	}
	eff := in.Effective()
	rate := eff.Rate(cfg, k)
	delivered := rate * dt
	if in.TotalBeats > 0 && in.beats+delivered >= in.TotalBeats {
		delivered = in.TotalBeats - in.beats
		in.done = true
	}
	in.beats += delivered
	in.busySeconds += dt
	return delivered
}

// Beats returns the heartbeats delivered so far.
func (in *Instance) Beats() float64 { return in.beats }

// BusySeconds returns accumulated running (non-suspended) time.
func (in *Instance) BusySeconds() float64 { return in.busySeconds }

// Done reports whether a finite instance has completed its work.
func (in *Instance) Done() bool { return in.done }

// Remaining returns the heartbeats left for a finite instance, or -1 for
// an endless one.
func (in *Instance) Remaining() float64 {
	if in.TotalBeats == 0 {
		return -1
	}
	r := in.TotalBeats - in.beats
	if r < 0 {
		return 0
	}
	return r
}
