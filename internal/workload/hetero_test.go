package workload

import (
	"math"
	"math/rand"
	"testing"

	"powerstruggle/internal/simhw"
)

func TestHeteroReducesToUniform(t *testing.T) {
	cfg, lib := testEnv(t)
	rng := rand.New(rand.NewSource(11))
	for _, p := range lib.Apps() {
		for trial := 0; trial < 100; trial++ {
			k := randomKnobs(cfg, rng, p.MaxCores)
			// Boost = 0 and boost-at-base-frequency are both uniform.
			for _, hk := range []HeteroKnobs{
				{Base: k},
				{Base: k, Boost: 1, BoostFreqGHz: k.FreqGHz},
			} {
				if got, want := p.RateHetero(cfg, hk), p.Rate(cfg, k); math.Abs(got-want) > 1e-9*want {
					t.Fatalf("%s: hetero rate %g vs uniform %g at %v", p.Name, got, want, k)
				}
				if got, want := p.PowerHetero(cfg, hk), p.Power(cfg, k); math.Abs(got-want) > 1e-9*want {
					t.Fatalf("%s: hetero power %g vs uniform %g at %v", p.Name, got, want, k)
				}
			}
		}
	}
}

func TestBoostHelpsAndCosts(t *testing.T) {
	cfg, lib := testEnv(t)
	// SSSP has the lowest parallel fraction: boosting one core for its
	// serial phase must raise both rate and power.
	p := lib.MustApp("SSSP")
	base := Knobs{FreqGHz: 1.4, Cores: p.MaxCores, MemWatts: 10}
	hk := HeteroKnobs{Base: base, Boost: 1, BoostFreqGHz: 2.0}
	if got, plain := p.RateHetero(cfg, hk), p.Rate(cfg, base); got <= plain {
		t.Errorf("boost did not raise SSSP's rate: %g vs %g", got, plain)
	}
	if got, plain := p.PowerHetero(cfg, hk), p.Power(cfg, base); got <= plain {
		t.Errorf("boost did not raise power: %g vs %g", got, plain)
	}
}

func TestHeteroCurveDominatesUniform(t *testing.T) {
	cfg, lib := testEnv(t)
	for _, name := range []string{"SSSP", "BFS", "kmeans"} {
		p := lib.MustApp(name)
		uni := OptimalCurve(cfg, p)
		het := p.HeteroCurve(cfg)
		for w := 3.0; w <= 26; w += 1 {
			u, h := uni.PerfAt(w), het.PerfAt(w)
			if h+1e-9 < u {
				t.Fatalf("%s: hetero curve below uniform at %g W (%g < %g)", name, w, h, u)
			}
		}
	}
}

func TestHeteroGainLargestForSerialApps(t *testing.T) {
	cfg, lib := testEnv(t)
	gain := func(name string) float64 {
		p := lib.MustApp(name)
		uni := OptimalCurve(cfg, p)
		het := p.HeteroCurve(cfg)
		best := 0.0
		for w := 5.0; w <= 20; w += 1 {
			if u := uni.PerfAt(w); u > 0 {
				if g := het.PerfAt(w)/u - 1; g > best {
					best = g
				}
			}
		}
		return best
	}
	// SSSP (p=0.82) must gain more from a boosted serial core than
	// kmeans (p=0.98).
	if gSSSP, gKM := gain("SSSP"), gain("kmeans"); gSSSP <= gKM {
		t.Errorf("per-core DVFS gain: SSSP %.3f vs kmeans %.3f, want SSSP ahead", gSSSP, gKM)
	}
}

func TestHeteroClamp(t *testing.T) {
	cfg := simhw.DefaultConfig()
	lib, _ := NewLibrary(cfg)
	p := lib.MustApp("X264")
	hk := HeteroKnobs{
		Base:         Knobs{FreqGHz: 1.5, Cores: 99, MemWatts: 50},
		Boost:        99,
		BoostFreqGHz: 0.1,
	}
	// Clamping happens inside the model calls: they must not panic and
	// must behave like a sane setting.
	rate := p.RateHetero(cfg, hk)
	if rate <= 0 {
		t.Fatalf("clamped hetero rate %g", rate)
	}
	power := p.PowerHetero(cfg, hk)
	if power <= 0 || power > cfg.MaxDynamicWatts() {
		t.Fatalf("clamped hetero power %g", power)
	}
}
