package workload

import (
	"fmt"
	"math"

	"powerstruggle/internal/simhw"
)

// Class tags an application with the workload family the paper draws it
// from (Table II's parenthesized types).
type Class string

// The workload families of the paper's evaluation.
const (
	ClassMemory    Class = "memory"
	ClassAnalytics Class = "analytics"
	ClassGraph     Class = "graph"
	ClassSearch    Class = "search"
	ClassMedia     Class = "media"
)

// smoothMinExp controls how sharply the roofline transitions between the
// compute- and memory-bound regimes. Higher is closer to a hard min.
const smoothMinExp = 4.0

// Profile is the analytic model of one application: how fast it runs and
// how much power it draws at any (f, n, m) knob setting on a platform.
//
// Rates are expressed in heartbeats per second (the paper measures
// performance with the Application Heartbeats interface); all evaluation
// results normalize rates to the application's own uncapped rate, so the
// absolute scale only matters relative to MemBytesPerBeat.
type Profile struct {
	// Name is the benchmark's name as used in Table II.
	Name string
	// Class is the workload family.
	Class Class

	// BaseRate is the compute-side heartbeat rate of one core at 1 GHz
	// with unbounded memory bandwidth.
	BaseRate float64
	// ParallelFrac is the Amdahl parallel fraction p; throughput on n
	// cores scales by 1/((1-p) + p/n).
	ParallelFrac float64
	// MemBytesPerBeat is the DRAM traffic one heartbeat generates, in
	// gigabytes. Together with the channel bandwidth it sets the memory
	// roofline: rateMem = bandwidth(m)/MemBytesPerBeat.
	MemBytesPerBeat float64
	// CPUActivity is the switching-activity factor of the application's
	// cores in [0, 1]; memory-stalled cores draw less dynamic power.
	CPUActivity float64
	// MaxCores is the application's core entitlement on its socket
	// (Table I platform: 6).
	MaxCores int

	// Phases optionally makes the application non-stationary (the
	// paper's event E4). Empty means a single steady phase.
	Phases []Phase
}

// Phase is one steady interval of a non-stationary application. Scales
// multiply the base profile's parameters for the phase's duration; the
// phase list cycles.
type Phase struct {
	// Seconds is the phase duration in application-local busy time.
	Seconds float64
	// MemScale multiplies MemBytesPerBeat (a phase can become more or
	// less memory-bound).
	MemScale float64
	// ActivityScale multiplies CPUActivity.
	ActivityScale float64
}

// Validate reports whether the profile is internally consistent.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile has no name")
	case p.BaseRate <= 0:
		return fmt.Errorf("workload: %s: BaseRate must be positive, got %g", p.Name, p.BaseRate)
	case p.ParallelFrac < 0 || p.ParallelFrac >= 1:
		return fmt.Errorf("workload: %s: ParallelFrac must be in [0, 1), got %g", p.Name, p.ParallelFrac)
	case p.MemBytesPerBeat < 0:
		return fmt.Errorf("workload: %s: MemBytesPerBeat must be non-negative, got %g", p.Name, p.MemBytesPerBeat)
	case p.CPUActivity <= 0 || p.CPUActivity > 1:
		return fmt.Errorf("workload: %s: CPUActivity must be in (0, 1], got %g", p.Name, p.CPUActivity)
	case p.MaxCores <= 0:
		return fmt.Errorf("workload: %s: MaxCores must be positive, got %d", p.Name, p.MaxCores)
	}
	for i, ph := range p.Phases {
		if ph.Seconds <= 0 || ph.MemScale <= 0 || ph.ActivityScale <= 0 {
			return fmt.Errorf("workload: %s: phase %d has non-positive parameters", p.Name, i)
		}
	}
	return nil
}

// Speedup returns the Amdahl throughput scaling of n cores relative to
// one core.
func (p *Profile) Speedup(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 / ((1 - p.ParallelFrac) + p.ParallelFrac/float64(n))
}

// ComputeRate returns the compute-roofline heartbeat rate at frequency f
// on n cores (no memory limit).
func (p *Profile) ComputeRate(f float64, n int) float64 {
	if f <= 0 || n <= 0 {
		return 0
	}
	return p.BaseRate * f * p.Speedup(n)
}

// MemRate returns the memory-roofline heartbeat rate the DRAM limit m
// sustains on cfg. Applications with no memory traffic are unbounded.
func (p *Profile) MemRate(cfg simhw.Config, m float64) float64 {
	if p.MemBytesPerBeat <= 0 {
		return math.Inf(1)
	}
	return cfg.MemBandwidthGBs(m) / p.MemBytesPerBeat
}

// Rate returns the delivered heartbeat rate at knob setting k on cfg: a
// smooth minimum of the compute and memory rooflines.
func (p *Profile) Rate(cfg simhw.Config, k Knobs) float64 {
	k = k.Clamp(cfg, p.MaxCores)
	rc := p.ComputeRate(k.FreqGHz, k.Cores)
	rm := p.MemRate(cfg, k.MemWatts)
	return smoothMin(rc, rm)
}

// smoothMin blends two rooflines: (a^-q + b^-q)^(-1/q). It approaches
// min(a, b) as q grows while keeping a mild gradient on the slack side,
// matching the soft knee measured rooflines show.
func smoothMin(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	if math.IsInf(b, 1) {
		return a
	}
	if math.IsInf(a, 1) {
		return b
	}
	return math.Pow(math.Pow(a, -smoothMinExp)+math.Pow(b, -smoothMinExp), -1/smoothMinExp)
}

// MemDemandGBs returns the DRAM bandwidth the application pulls at knob
// setting k: its delivered rate times its per-beat traffic, never more
// than the channel's limit-imposed bandwidth.
func (p *Profile) MemDemandGBs(cfg simhw.Config, k Knobs) float64 {
	if p.MemBytesPerBeat <= 0 {
		return 0
	}
	demand := p.Rate(cfg, k) * p.MemBytesPerBeat
	if cap := cfg.MemBandwidthGBs(k.MemWatts); demand > cap {
		demand = cap
	}
	return demand
}

// MemDrawWatts returns the DRAM power the application actually pulls at
// knob setting k: the channel floor plus traffic-proportional power, and
// never more than the limit m. Compute-bound applications draw near the
// floor no matter how high their limit — which is why shifting their DRAM
// watts to cores is free.
func (p *Profile) MemDrawWatts(cfg simhw.Config, k Knobs) float64 {
	k = k.Clamp(cfg, p.MaxCores)
	used := p.MemDemandGBs(cfg, k)
	draw := cfg.MemMinWatts + (used/cfg.MemPeakGBs)*(cfg.MemMaxWatts-cfg.MemMinWatts)
	if draw > k.MemWatts {
		draw = k.MemWatts
	}
	return draw
}

// Power returns the application's dynamic power P_X at knob setting k on
// cfg: core static + activity-scaled switching power on its n cores plus
// its actual DRAM draw. It excludes the shared P_idle and P_cm.
func (p *Profile) Power(cfg simhw.Config, k Knobs) float64 {
	k = k.Clamp(cfg, p.MaxCores)
	return float64(k.Cores)*cfg.CoreWatts(k.FreqGHz, p.CPUActivity) + p.MemDrawWatts(cfg, k)
}

// NoCapKnobs returns the application's unconstrained operating point.
func (p *Profile) NoCapKnobs(cfg simhw.Config) Knobs {
	return MaxKnobs(cfg, p.MaxCores)
}

// NoCapRate returns the application's uncapped heartbeat rate, the
// denominator of every normalized result in the paper.
func (p *Profile) NoCapRate(cfg simhw.Config) float64 {
	return p.Rate(cfg, p.NoCapKnobs(cfg))
}

// NoCapPower returns the application's uncapped dynamic draw.
func (p *Profile) NoCapPower(cfg simhw.Config) float64 {
	return p.Power(cfg, p.NoCapKnobs(cfg))
}

// NormRate returns the delivered rate at k normalized to the uncapped
// rate, i.e. the Perf_X(...)/Perf_X_nocap term of the paper's objective.
func (p *Profile) NormRate(cfg simhw.Config, k Knobs) float64 {
	nc := p.NoCapRate(cfg)
	if nc <= 0 {
		return 0
	}
	return p.Rate(cfg, k) / nc
}

// PhaseAt returns the effective profile during the phase active after the
// application has been busy for t seconds. Profiles without phases return
// themselves.
func (p *Profile) PhaseAt(t float64) *Profile {
	if len(p.Phases) == 0 {
		return p
	}
	var cycle float64
	for _, ph := range p.Phases {
		cycle += ph.Seconds
	}
	if cycle <= 0 {
		return p
	}
	t = math.Mod(t, cycle)
	for _, ph := range p.Phases {
		if t < ph.Seconds {
			out := *p
			out.MemBytesPerBeat *= ph.MemScale
			out.CPUActivity = clamp01(out.CPUActivity * ph.ActivityScale)
			out.Phases = nil
			return &out
		}
		t -= ph.Seconds
	}
	return p
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
