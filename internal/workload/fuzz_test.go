package workload

import (
	"math"
	"testing"

	"powerstruggle/internal/simhw"
)

// FuzzKnobModel throws arbitrary knob values at the application model:
// clamping must hold everything inside the hardware envelope and the
// model must stay finite.
func FuzzKnobModel(f *testing.F) {
	f.Add(2.0, 6, 10.0)
	f.Add(-1.0, 0, -3.0)
	f.Add(1e308, 1<<30, 1e308)
	f.Add(math.Pi, 3, 5.5)
	cfg := simhw.DefaultConfig()
	lib, err := NewLibrary(cfg)
	if err != nil {
		f.Fatal(err)
	}
	apps := lib.Apps()
	f.Fuzz(func(t *testing.T, freq float64, cores int, mem float64) {
		if math.IsNaN(freq) || math.IsNaN(mem) {
			return
		}
		k := Knobs{FreqGHz: freq, Cores: cores, MemWatts: mem}
		p := apps[(abs(cores))%len(apps)]
		c := k.Clamp(cfg, p.MaxCores)
		if c.FreqGHz < cfg.FreqMinGHz || c.FreqGHz > cfg.FreqMaxGHz {
			t.Fatalf("clamped frequency %g outside the ladder", c.FreqGHz)
		}
		if c.Cores < 1 || c.Cores > p.MaxCores {
			t.Fatalf("clamped cores %d outside [1, %d]", c.Cores, p.MaxCores)
		}
		if c.MemWatts < cfg.MemMinWatts || c.MemWatts > cfg.MemMaxWatts {
			t.Fatalf("clamped DRAM limit %g outside the range", c.MemWatts)
		}
		rate := p.Rate(cfg, k)
		power := p.Power(cfg, k)
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
			t.Fatalf("rate %g at %v", rate, k)
		}
		if math.IsNaN(power) || power < 0 || power > cfg.MaxDynamicWatts()+1 {
			t.Fatalf("power %g at %v", power, k)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == math.MinInt {
			return math.MaxInt
		}
		return -v
	}
	return v
}
