package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"powerstruggle/internal/simhw"
)

func testEnv(t *testing.T) (simhw.Config, *Library) {
	t.Helper()
	cfg := simhw.DefaultConfig()
	lib, err := NewLibrary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, lib
}

func TestLibraryHasAllPaperApplications(t *testing.T) {
	_, lib := testEnv(t)
	apps := lib.Apps()
	if len(apps) != 12 {
		t.Fatalf("library has %d applications, want 12", len(apps))
	}
	for _, name := range []string{
		"STREAM", "kmeans", "APR", "BFS", "Connected", "TriangleCount",
		"SSSP", "Betweenness", "PageRank", "X264", "facesim", "ferret",
	} {
		if _, err := lib.App(name); err != nil {
			t.Errorf("missing application %s: %v", name, err)
		}
	}
	if _, err := lib.App("nonexistent"); err == nil {
		t.Error("lookup of unknown application succeeded")
	}
}

func TestMixesMatchTableII(t *testing.T) {
	_, lib := testEnv(t)
	mixes := Mixes()
	if len(mixes) != 15 {
		t.Fatalf("%d mixes, want 15", len(mixes))
	}
	for i, m := range mixes {
		if m.ID != i+1 {
			t.Errorf("mix %d has ID %d", i, m.ID)
		}
		if _, _, err := lib.MixProfiles(m); err != nil {
			t.Errorf("mix %d: %v", m.ID, err)
		}
	}
	// Spot-check the paper's named case studies.
	if mixes[0].App1 != "STREAM" || mixes[0].App2 != "kmeans" {
		t.Errorf("mix-1 = %v, want STREAM + kmeans", mixes[0])
	}
	if mixes[9].App1 != "PageRank" || mixes[9].App2 != "kmeans" {
		t.Errorf("mix-10 = %v, want PageRank + kmeans", mixes[9])
	}
	if mixes[13].App1 != "X264" || mixes[13].App2 != "SSSP" {
		t.Errorf("mix-14 = %v, want X264 + SSSP", mixes[13])
	}
}

func TestSpeedupProperties(t *testing.T) {
	_, lib := testEnv(t)
	for _, p := range lib.Apps() {
		if got := p.Speedup(1); got != 1 {
			t.Errorf("%s: Speedup(1) = %g, want 1", p.Name, got)
		}
		prev := 1.0
		for n := 2; n <= p.MaxCores; n++ {
			s := p.Speedup(n)
			if s <= prev {
				t.Errorf("%s: speedup not increasing at %d cores", p.Name, n)
			}
			if s > float64(n) {
				t.Errorf("%s: superlinear speedup %g on %d cores", p.Name, s, n)
			}
			prev = s
		}
	}
}

// randomKnobs draws a uniform random valid knob setting.
func randomKnobs(cfg simhw.Config, rng *rand.Rand, maxCores int) Knobs {
	ladder := cfg.FreqLadder()
	mems := cfg.MemSteps()
	return Knobs{
		FreqGHz:  ladder[rng.Intn(len(ladder))],
		Cores:    1 + rng.Intn(maxCores),
		MemWatts: mems[rng.Intn(len(mems))],
	}
}

func TestRateMonotoneInEachKnob(t *testing.T) {
	cfg, lib := testEnv(t)
	rng := rand.New(rand.NewSource(1))
	for _, p := range lib.Apps() {
		for trial := 0; trial < 200; trial++ {
			k := randomKnobs(cfg, rng, p.MaxCores)
			base := p.Rate(cfg, k)
			up := k
			up.FreqGHz = cfg.ClampFreq(k.FreqGHz + cfg.FreqStepGHz)
			if r := p.Rate(cfg, up); r+1e-12 < base {
				t.Fatalf("%s: rate fell raising f at %v: %g -> %g", p.Name, k, base, r)
			}
			up = k
			if up.Cores < p.MaxCores {
				up.Cores++
				if r := p.Rate(cfg, up); r+1e-12 < base {
					t.Fatalf("%s: rate fell adding a core at %v", p.Name, k)
				}
			}
			up = k
			up.MemWatts = cfg.ClampMem(k.MemWatts + cfg.MemStepWatts)
			if r := p.Rate(cfg, up); r+1e-12 < base {
				t.Fatalf("%s: rate fell raising m at %v", p.Name, k)
			}
		}
	}
}

func TestPowerProperties(t *testing.T) {
	cfg, lib := testEnv(t)
	rng := rand.New(rand.NewSource(2))
	for _, p := range lib.Apps() {
		nocap := p.NoCapRate(cfg)
		if nocap <= 0 {
			t.Fatalf("%s: non-positive uncapped rate", p.Name)
		}
		for trial := 0; trial < 200; trial++ {
			k := randomKnobs(cfg, rng, p.MaxCores)
			w := p.Power(cfg, k)
			if w <= 0 {
				t.Fatalf("%s: non-positive power at %v", p.Name, k)
			}
			if draw := p.MemDrawWatts(cfg, k); draw > k.MemWatts+1e-9 || draw < cfg.MemMinWatts-1e-9 {
				t.Fatalf("%s: DRAM draw %g outside [floor, limit %g]", p.Name, draw, k.MemWatts)
			}
			if nr := p.NormRate(cfg, k); nr > 1+1e-9 {
				t.Fatalf("%s: normalized rate %g exceeds 1 at %v", p.Name, nr, k)
			}
			if w > p.NoCapPower(cfg)+1e-9 {
				t.Fatalf("%s: power %g at %v exceeds uncapped draw %g", p.Name, w, k, p.NoCapPower(cfg))
			}
		}
	}
}

func TestUncappedDrawsMatchPaperScale(t *testing.T) {
	cfg, lib := testEnv(t)
	// Per-application uncapped dynamic draws sit near the paper's
	// ~20 W, and a two-application co-location lands near 110 W.
	for _, p := range lib.Apps() {
		w := p.NoCapPower(cfg)
		if w < 12 || w > 30 {
			t.Errorf("%s: uncapped draw %g W outside the plausible 12-30 W band", p.Name, w)
		}
	}
	var total float64
	n := 0
	for _, m := range Mixes() {
		a, b, err := lib.MixProfiles(m)
		if err != nil {
			t.Fatal(err)
		}
		total += cfg.ServerPowerWatts([]float64{a.NoCapPower(cfg), b.NoCapPower(cfg)})
		n++
	}
	avg := total / float64(n)
	if avg < 100 || avg > 125 {
		t.Errorf("average uncapped co-located server draw %g W, want near the paper's 110 W", avg)
	}
}

func TestClassBoundednessShapes(t *testing.T) {
	cfg, lib := testEnv(t)
	// STREAM must be insensitive to frequency and sensitive to DRAM
	// power; kmeans the opposite — the asymmetry every result needs.
	stream := lib.MustApp("STREAM")
	kmeans := lib.MustApp("kmeans")
	base := Knobs{FreqGHz: 1.6, Cores: 3, MemWatts: 6}
	fUp := base
	fUp.FreqGHz = 2.0
	mUp := base
	mUp.MemWatts = 10

	sF := stream.Rate(cfg, fUp)/stream.Rate(cfg, base) - 1
	sM := stream.Rate(cfg, mUp)/stream.Rate(cfg, base) - 1
	if sM < 4*sF {
		t.Errorf("STREAM: DRAM gain %.3f not dominant over frequency gain %.3f", sM, sF)
	}
	kF := kmeans.Rate(cfg, fUp)/kmeans.Rate(cfg, base) - 1
	kM := kmeans.Rate(cfg, mUp)/kmeans.Rate(cfg, base) - 1
	if kF < 4*kM {
		t.Errorf("kmeans: frequency gain %.3f not dominant over DRAM gain %.3f", kF, kM)
	}
}

func TestPhases(t *testing.T) {
	_, lib := testEnv(t)
	p, err := lib.WithPhases("X264", []Phase{
		{Seconds: 2, MemScale: 1, ActivityScale: 1},
		{Seconds: 3, MemScale: 4, ActivityScale: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if eff := p.PhaseAt(1); eff.MemBytesPerBeat != p.MemBytesPerBeat {
		t.Error("phase 0 altered memory intensity")
	}
	eff := p.PhaseAt(3)
	if math.Abs(eff.MemBytesPerBeat-4*p.MemBytesPerBeat) > 1e-12 {
		t.Errorf("phase 1 memory scale: got %g, want %g", eff.MemBytesPerBeat, 4*p.MemBytesPerBeat)
	}
	if math.Abs(eff.CPUActivity-0.5*p.CPUActivity) > 1e-12 {
		t.Errorf("phase 1 activity scale: got %g", eff.CPUActivity)
	}
	// The schedule cycles.
	if eff := p.PhaseAt(5.5); eff.MemBytesPerBeat != p.MemBytesPerBeat {
		t.Error("phase schedule did not cycle back to phase 0")
	}
	// Phase-free profiles return themselves.
	base := lib.MustApp("kmeans")
	if base.PhaseAt(100) != base {
		t.Error("phase-free profile did not return itself")
	}
}

func TestProfileValidate(t *testing.T) {
	_, lib := testEnv(t)
	good := *lib.MustApp("kmeans")
	bad := good
	bad.BaseRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero BaseRate accepted")
	}
	bad = good
	bad.ParallelFrac = 1
	if err := bad.Validate(); err == nil {
		t.Error("ParallelFrac=1 accepted")
	}
	bad = good
	bad.CPUActivity = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero activity accepted")
	}
	bad = good
	bad.MaxCores = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MaxCores accepted")
	}
	bad = good
	bad.Phases = []Phase{{Seconds: 0, MemScale: 1, ActivityScale: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-length phase accepted")
	}
}

func TestQuickNormRateBounded(t *testing.T) {
	cfg, lib := testEnv(t)
	apps := lib.Apps()
	prop := func(app, fi, ni, mi uint8) bool {
		p := apps[int(app)%len(apps)]
		ladder := cfg.FreqLadder()
		mems := cfg.MemSteps()
		k := Knobs{
			FreqGHz:  ladder[int(fi)%len(ladder)],
			Cores:    1 + int(ni)%p.MaxCores,
			MemWatts: mems[int(mi)%len(mems)],
		}
		nr := p.NormRate(cfg, k)
		return nr >= 0 && nr <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInstanceLifecycle(t *testing.T) {
	cfg, lib := testEnv(t)
	p := lib.MustApp("kmeans")
	if _, err := NewInstance(nil, 0); err == nil {
		t.Error("nil-profile instance accepted")
	}
	if _, err := NewInstance(p, -1); err == nil {
		t.Error("negative work accepted")
	}
	rate := p.NoCapRate(cfg)
	inst, err := NewInstance(p, rate*2) // two seconds of work at full tilt
	if err != nil {
		t.Fatal(err)
	}
	k := p.NoCapKnobs(cfg)
	got := inst.Advance(cfg, k, true, 1)
	if math.Abs(got-rate) > 1e-9 {
		t.Errorf("1 s advance delivered %g beats, want %g", got, rate)
	}
	if inst.Done() {
		t.Fatal("done after half the work")
	}
	// Suspended time makes no progress.
	if got := inst.Advance(cfg, k, false, 10); got != 0 {
		t.Errorf("suspended advance delivered %g beats", got)
	}
	if inst.BusySeconds() != 1 {
		t.Errorf("busy seconds %g, want 1 (suspension excluded)", inst.BusySeconds())
	}
	// Finish; delivery is capped at remaining work.
	got = inst.Advance(cfg, k, true, 10)
	if math.Abs(got-rate) > 1e-9 {
		t.Errorf("final advance delivered %g, want %g (remaining)", got, rate)
	}
	if !inst.Done() {
		t.Fatal("not done after delivering all work")
	}
	if r := inst.Remaining(); r != 0 {
		t.Errorf("remaining = %g, want 0", r)
	}
	endless, _ := NewInstance(p, 0)
	if endless.Remaining() != -1 {
		t.Error("endless instance should report -1 remaining")
	}
}

// TestPaperSectionIIArithmetic checks the worked example the paper opens
// with: one application alone pushes the server to ~90 W (P_idle + P_cm
// + ~20 W dynamic), and a co-located pair lands near 110 W.
func TestPaperSectionIIArithmetic(t *testing.T) {
	cfg, lib := testEnv(t)
	var soloLo, soloHi = math.Inf(1), math.Inf(-1)
	for _, p := range lib.Apps() {
		solo := cfg.ServerPowerWatts([]float64{p.NoCapPower(cfg)})
		soloLo = math.Min(soloLo, solo)
		soloHi = math.Max(soloHi, solo)
	}
	if soloLo < 80 || soloHi > 102 {
		t.Errorf("solo server draws span [%.1f, %.1f] W, want near the paper's 90 W", soloLo, soloHi)
	}
	var pairSum float64
	for _, m := range Mixes() {
		a, b, err := lib.MixProfiles(m)
		if err != nil {
			t.Fatal(err)
		}
		pairSum += cfg.ServerPowerWatts([]float64{a.NoCapPower(cfg), b.NoCapPower(cfg)})
	}
	if avg := pairSum / float64(len(Mixes())); avg < 100 || avg > 122 {
		t.Errorf("average pair draw %.1f W, want near the paper's 110 W", avg)
	}
}

func TestLoadProfilesFromJSON(t *testing.T) {
	cfg, _ := testEnv(t)
	const body = `[
	  {"name": "webapp", "parallelFrac": 0.9, "memBoundness": 0.6, "activity": 0.8, "maxCores": 4},
	  {"name": "batch", "class": "analytics", "parallelFrac": 0.97, "memBoundness": 0.1, "activity": 1.0}
	]`
	profs, err := LoadProfiles(cfg, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 2 {
		t.Fatalf("%d profiles", len(profs))
	}
	if profs[0].Name != "webapp" || profs[0].MaxCores != 4 {
		t.Errorf("webapp: %+v", profs[0])
	}
	if profs[1].MaxCores != cfg.CoresPerSocket {
		t.Errorf("batch defaulted MaxCores to %d", profs[1].MaxCores)
	}
	// Loaded profiles behave like built-ins.
	if rate := profs[0].NoCapRate(cfg); rate <= 0 {
		t.Errorf("webapp uncapped rate %g", rate)
	}
	if c := OptimalCurve(cfg, profs[0]); c.Len() == 0 {
		t.Error("webapp has an empty utility curve")
	}
}

func TestLoadProfilesRejectsBadInput(t *testing.T) {
	cfg, _ := testEnv(t)
	cases := map[string]string{
		"empty-array":    `[]`,
		"not-json":       `nope`,
		"unknown-field":  `[{"name":"x","parallelFrac":0.5,"memBoundness":1,"activity":0.5,"bogus":1}]`,
		"no-name":        `[{"parallelFrac":0.5,"memBoundness":1,"activity":0.5}]`,
		"bad-parallel":   `[{"name":"x","parallelFrac":1.5,"memBoundness":1,"activity":0.5}]`,
		"bad-activity":   `[{"name":"x","parallelFrac":0.5,"memBoundness":1,"activity":0}]`,
		"negative-bound": `[{"name":"x","parallelFrac":0.5,"memBoundness":-1,"activity":0.5}]`,
		"duplicate":      `[{"name":"x","parallelFrac":0.5,"memBoundness":1,"activity":0.5},{"name":"x","parallelFrac":0.5,"memBoundness":1,"activity":0.5}]`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadProfiles(cfg, strings.NewReader(body)); err == nil {
				t.Errorf("accepted %s", name)
			}
		})
	}
}
