package workload

import (
	"sort"

	"powerstruggle/internal/simhw"
)

// Point is one operating point on an application's power-performance
// utility curve: a knob setting, the dynamic power it draws, and the
// delivered performance normalized to the application's uncapped rate.
type Point struct {
	Knobs  Knobs
	PowerW float64
	Perf   float64
	// DutyFrac is the fraction of time the application actually runs at
	// Knobs; values below 1 model RAPL's forced-idle clamping when even
	// the lowest DVFS state exceeds the budget. Power and Perf are
	// duty-averaged.
	DutyFrac float64
}

// Curve is a power-performance utility curve: Pareto-optimal operating
// points sorted by ascending power. It is the computational form of the
// paper's Fig. 2 (one curve per application) and the object the
// PowerAllocator water-fills over.
type Curve struct {
	points []Point
	// rayIdx, when non-nil, enables the exact duty-ray region: rayIdx[i]
	// is the index in points[i:] (absolute) of the steady point with the
	// best performance per watt, so At can synthesize run/suspend duty
	// cycling of the most efficient unaffordable point.
	rayIdx []int
}

// Points returns the curve's Pareto points in ascending power order.
func (c *Curve) Points() []Point {
	out := make([]Point, len(c.points))
	copy(out, c.points)
	return out
}

// Len returns the number of Pareto points.
func (c *Curve) Len() int { return len(c.points) }

// MinPower returns the power of the cheapest runnable point, or 0 for an
// empty curve.
func (c *Curve) MinPower() float64 {
	if len(c.points) == 0 {
		return 0
	}
	return c.points[0].PowerW
}

// MaxPower returns the power of the most expensive point, or 0 for an
// empty curve.
func (c *Curve) MaxPower() float64 {
	if len(c.points) == 0 {
		return 0
	}
	return c.points[len(c.points)-1].PowerW
}

// At returns the best operating point affordable under budget watts. ok
// is false when even the cheapest point exceeds the budget and the curve
// has no duty-ray region — the regime where the Coordinator must
// multiplex in time instead. Curves with duty rays (OptimalCurve,
// CurveFromEval) additionally consider running an unaffordable steady
// point a budget/power fraction of the time, the exact concave envelope
// of RAPL-style forced idling.
func (c *Curve) At(budget float64) (Point, bool) {
	// points is sorted by power with strictly increasing perf, so the
	// last affordable point is the best one.
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].PowerW > budget })
	var (
		steady   Point
		okSteady bool
	)
	if i > 0 {
		steady, okSteady = c.points[i-1], true
	}
	if c.rayIdx == nil || i >= len(c.points) || budget <= 0 {
		return steady, okSteady
	}
	ray := c.points[c.rayIdx[i]]
	frac := budget / ray.PowerW
	rayPt := Point{
		Knobs:    ray.Knobs,
		PowerW:   budget,
		Perf:     ray.Perf * frac,
		DutyFrac: ray.DutyFrac * frac,
	}
	if !okSteady || rayPt.Perf > steady.Perf {
		return rayPt, true
	}
	return steady, true
}

// PerfAt returns the normalized performance affordable under budget
// watts, or 0 if the application cannot run at all under it.
func (c *Curve) PerfAt(budget float64) float64 {
	pt, ok := c.At(budget)
	if !ok {
		return 0
	}
	return pt.Perf
}

// Marginal returns the performance gained by raising the budget from w to
// w+step, divided by step: the per-watt utility slope the paper's R1
// argument is about.
func (c *Curve) Marginal(w, step float64) float64 {
	if step <= 0 {
		return 0
	}
	return (c.PerfAt(w+step) - c.PerfAt(w)) / step
}

// pareto sorts raw operating points by power and keeps only those with
// strictly increasing performance, deduplicating equal-power points in
// favor of the better one.
func pareto(raw []Point) *Curve {
	sort.Slice(raw, func(i, j int) bool {
		if raw[i].PowerW != raw[j].PowerW {
			return raw[i].PowerW < raw[j].PowerW
		}
		return raw[i].Perf > raw[j].Perf
	})
	var pts []Point
	best := -1.0
	for _, p := range raw {
		if p.Perf > best {
			pts = append(pts, p)
			best = p.Perf
		}
	}
	return &Curve{points: pts}
}

// OptimalCurve builds the application's full utility curve: the Pareto
// frontier over the entire discrete (f, n, m) knob space. This is what
// the App+Res-Aware policy allocates against.
func OptimalCurve(cfg simhw.Config, p *Profile) *Curve {
	knobs := EnumKnobs(cfg, p.MaxCores)
	raw := make([]Point, 0, len(knobs)+8)
	for _, k := range knobs {
		raw = append(raw, Point{Knobs: k, PowerW: p.Power(cfg, k), Perf: p.NormRate(cfg, k), DutyFrac: 1})
	}
	return withDutyRays(pareto(raw))
}

// withDutyRays enables the exact duty-ray region on a steady frontier:
// at any budget b below a steady point's power P, running that point a
// b/P fraction of the time delivers a b/P fraction of its performance
// (RAPL-style forced idling at fine grain). At synthesizes the best such
// point from a precomputed suffix-max of performance per watt; the
// result is the frontier's concave envelope through the origin — the
// best any enforcement can do without blending two non-idle settings.
func withDutyRays(c *Curve) *Curve {
	n := len(c.points)
	if n == 0 {
		return c
	}
	c.rayIdx = make([]int, n)
	best := n - 1
	bestRatio := -1.0
	for i := n - 1; i >= 0; i-- {
		p := c.points[i]
		if p.PowerW > 0 {
			if r := p.Perf / p.PowerW; r > bestRatio {
				bestRatio, best = r, i
			}
		}
		c.rayIdx[i] = best
	}
	return c
}

// idleInjectSteps is the resolution of the forced-idle region prepended
// to utility curves.
const idleInjectSteps = 64

// idleInjectPoints prepends the forced-idle clamp region below an
// enforcement's cheapest steady point: the hardware alternates the task
// between that point and full suspension, so averaged power and
// performance scale linearly with the duty fraction.
func idleInjectPoints(base Point, steps int) []Point {
	out := make([]Point, 0, steps)
	for i := 1; i < steps; i++ {
		frac := float64(i) / float64(steps)
		out = append(out, Point{
			Knobs:    base.Knobs,
			PowerW:   base.PowerW * frac,
			Perf:     base.Perf * frac,
			DutyFrac: frac,
		})
	}
	return out
}

// raplGridStepW is the budget grid on which enforcement-style curves are
// sampled.
const raplGridStepW = 0.5

// RAPLCurve builds the utility curve a hardware package-RAPL enforcement
// sees: utility-blind, it keeps all the application's cores and an
// uncapped DRAM channel and throttles frequency — then forced idling,
// below the DVFS floor — until the measured draw meets the budget. This
// is the enforcement behind the Util-Unaware baseline and the
// application-level — but not resource-level — view of the App-Aware
// policy.
func RAPLCurve(cfg simhw.Config, p *Profile) *Curve {
	raw := make([]Point, 0, cfg.FreqSteps()+8)
	var cheapest Point
	for i, f := range cfg.FreqLadder() {
		k := Knobs{FreqGHz: f, Cores: p.MaxCores, MemWatts: cfg.MemMaxWatts}
		pt := Point{Knobs: k, PowerW: p.Power(cfg, k), Perf: p.NormRate(cfg, k), DutyFrac: 1}
		if i == 0 {
			cheapest = pt
		}
		raw = append(raw, pt)
	}
	// Below the lowest DVFS state, RAPL clamps with forced idling.
	raw = append(raw, idleInjectPoints(cheapest, idleInjectSteps)...)
	return pareto(raw)
}

// ShapedCurve builds the per-application curve the Server+Res-Aware
// baseline operates on: at every budget, adopt — verbatim — the knob
// shape the library-average curve picks there. The baseline is
// application-blind: it looks the shape up in a server-level table, so
// when the shape draws more on this application than the budget allows,
// the hardware clamps it with forced idling rather than re-fitting the
// knobs to the application.
func ShapedCurve(cfg simhw.Config, p *Profile, shape *Curve) *Curve {
	maxB := p.NoCapPower(cfg)
	var raw []Point
	for b := raplGridStepW; b <= maxB+raplGridStepW; b += raplGridStepW {
		sp, ok := shape.At(b)
		k := MinKnobs(cfg)
		if ok {
			k = sp.Knobs.Clamp(cfg, p.MaxCores)
		}
		w := p.Power(cfg, k)
		perf := p.NormRate(cfg, k)
		if w <= b {
			raw = append(raw, Point{Knobs: k, PowerW: w, Perf: perf, DutyFrac: 1})
			continue
		}
		frac := b / w
		raw = append(raw, Point{Knobs: k, PowerW: b, Perf: perf * frac, DutyFrac: frac})
	}
	return pareto(raw)
}

// PointEval scores one knob setting for curve construction: the power it
// is believed to draw and the normalized performance it is believed to
// deliver. The oracle evaluator reads the analytic model; the
// collaborative-filtering estimator substitutes learned estimates.
type PointEval func(k Knobs) (powerW, perf float64)

// OracleEval returns the model-exact evaluator for a profile.
func OracleEval(cfg simhw.Config, p *Profile) PointEval {
	return func(k Knobs) (float64, float64) {
		return p.Power(cfg, k), p.NormRate(cfg, k)
	}
}

// CurveFromEval builds a Pareto utility curve over the full knob space
// using an arbitrary evaluator — the hook through which estimated
// utilities (Section III-A's collaborative filtering) reach the
// allocator.
func CurveFromEval(cfg simhw.Config, maxCores int, eval PointEval) *Curve {
	knobs := EnumKnobs(cfg, maxCores)
	raw := make([]Point, 0, len(knobs)+idleInjectSteps)
	for _, k := range knobs {
		w, perf := eval(k)
		if w < 0 || perf < 0 {
			continue
		}
		raw = append(raw, Point{Knobs: k, PowerW: w, Perf: perf, DutyFrac: 1})
	}
	return withDutyRays(pareto(raw))
}

// AverageCurve builds the server-level resource utility curve the
// Server+Res-Aware baseline uses: for every knob setting, performance and
// power are averaged across all library applications, and the Pareto
// frontier of those averages picks one knob shape per budget. The shape
// is then applied to every application regardless of its own utilities.
func AverageCurve(cfg simhw.Config, profiles []*Profile) *Curve {
	if len(profiles) == 0 {
		return &Curve{}
	}
	maxCores := 0
	for _, p := range profiles {
		if p.MaxCores > maxCores {
			maxCores = p.MaxCores
		}
	}
	knobs := EnumKnobs(cfg, maxCores)
	raw := make([]Point, 0, len(knobs))
	for _, k := range knobs {
		var perf, pow float64
		for _, p := range profiles {
			perf += p.NormRate(cfg, k)
			pow += p.Power(cfg, k)
		}
		n := float64(len(profiles))
		raw = append(raw, Point{Knobs: k, PowerW: pow / n, Perf: perf / n, DutyFrac: 1})
	}
	return pareto(raw)
}

// ApplyShape realizes a knob shape chosen from another curve (the
// averaged one) on a specific application under a budget: it adopts the
// shape's knobs and then steps frequency, then DRAM, down until the
// application's own power fits the budget. ok is false when nothing fits.
func ApplyShape(cfg simhw.Config, p *Profile, shape Knobs, budget float64) (Point, bool) {
	k := shape.Clamp(cfg, p.MaxCores)
	for {
		if w := p.Power(cfg, k); w <= budget {
			return Point{Knobs: k, PowerW: w, Perf: p.NormRate(cfg, k), DutyFrac: 1}, true
		}
		switch {
		case k.FreqGHz > cfg.FreqMinGHz+1e-9:
			k.FreqGHz = cfg.ClampFreq(k.FreqGHz - cfg.FreqStepGHz)
		case k.MemWatts > cfg.MemMinWatts+1e-9:
			k.MemWatts = cfg.ClampMem(k.MemWatts - cfg.MemStepWatts)
		case k.Cores > 1:
			k.Cores--
		default:
			// Even the floor setting exceeds the budget: fall back to
			// forced idling at the floor, as RAPL clamping would.
			w := p.Power(cfg, k)
			if budget <= 0 || w <= 0 {
				return Point{}, false
			}
			frac := budget / w
			return Point{Knobs: k, PowerW: budget, Perf: p.NormRate(cfg, k) * frac, DutyFrac: frac}, true
		}
	}
}
