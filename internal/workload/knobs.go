// Package workload models the applications the paper co-locates:
// analytic performance/power response surfaces over the three
// intra-application knobs (per-core DVFS f, core count n, DRAM power m),
// the twelve benchmark applications of the evaluation, and Table II's
// fifteen two-application mixes.
//
// The model is a smoothed roofline: an application has a compute rate
// that scales with frequency and (via Amdahl's law) core count, and a
// memory rate fixed by the bandwidth its DRAM power limit buys; delivered
// throughput is a smooth minimum of the two. Power follows the simhw
// platform model scaled by the application's core activity factor and its
// actual (demand-limited) DRAM draw. Memory-bound applications therefore
// buy performance with DRAM watts and compute-bound ones with core watts
// — exactly the application- and resource-level utility differences
// (Figs. 2, 3, 9) every result in the paper flows from.
package workload

import (
	"fmt"

	"powerstruggle/internal/simhw"
)

// Knobs is one intra-application power actuation: the paper's (f, n, m)
// triple.
type Knobs struct {
	// FreqGHz is the DVFS setting of the application's cores.
	FreqGHz float64
	// Cores is the number of un-gated cores (consolidation knob).
	Cores int
	// MemWatts is the DRAM RAPL limit on the application's channel.
	MemWatts float64
}

// String renders the knob triple as the paper writes it.
func (k Knobs) String() string {
	return fmt.Sprintf("(f=%.1fGHz, n=%d, m=%.0fW)", k.FreqGHz, k.Cores, k.MemWatts)
}

// MaxKnobs returns the unconstrained setting on cfg for an application
// entitled to up to maxCores cores: top frequency, all its cores, DRAM
// uncapped.
func MaxKnobs(cfg simhw.Config, maxCores int) Knobs {
	if maxCores <= 0 || maxCores > cfg.CoresPerSocket {
		maxCores = cfg.CoresPerSocket
	}
	return Knobs{FreqGHz: cfg.FreqMaxGHz, Cores: maxCores, MemWatts: cfg.MemMaxWatts}
}

// MinKnobs returns the lowest-power runnable setting on cfg: one core at
// minimum frequency with the DRAM channel at its floor.
func MinKnobs(cfg simhw.Config) Knobs {
	return Knobs{FreqGHz: cfg.FreqMinGHz, Cores: 1, MemWatts: cfg.MemMinWatts}
}

// EnumKnobs enumerates the full discrete knob space on cfg for an
// application entitled to up to maxCores cores: every frequency step x
// every core count x every DRAM limit. For the paper platform this is
// 9 x 6 x 8 = 432 settings per application.
func EnumKnobs(cfg simhw.Config, maxCores int) []Knobs {
	if maxCores <= 0 || maxCores > cfg.CoresPerSocket {
		maxCores = cfg.CoresPerSocket
	}
	freqs := cfg.FreqLadder()
	mems := cfg.MemSteps()
	out := make([]Knobs, 0, len(freqs)*maxCores*len(mems))
	for _, f := range freqs {
		for n := 1; n <= maxCores; n++ {
			for _, m := range mems {
				out = append(out, Knobs{FreqGHz: f, Cores: n, MemWatts: m})
			}
		}
	}
	return out
}

// Clamp snaps the knobs onto cfg's hardware ladders and the application's
// core entitlement.
func (k Knobs) Clamp(cfg simhw.Config, maxCores int) Knobs {
	if maxCores <= 0 || maxCores > cfg.CoresPerSocket {
		maxCores = cfg.CoresPerSocket
	}
	out := k
	out.FreqGHz = cfg.ClampFreq(k.FreqGHz)
	out.MemWatts = cfg.ClampMem(k.MemWatts)
	if out.Cores < 1 {
		out.Cores = 1
	}
	if out.Cores > maxCores {
		out.Cores = maxCores
	}
	return out
}
