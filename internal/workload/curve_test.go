package workload

import (
	"math"
	"math/rand"
	"testing"

	"powerstruggle/internal/simhw"
)

func TestEnumKnobsCoversTheLadder(t *testing.T) {
	cfg := simhw.DefaultConfig()
	knobs := EnumKnobs(cfg, 6)
	if want := 9 * 6 * 8; len(knobs) != want {
		t.Fatalf("EnumKnobs produced %d settings, want %d", len(knobs), want)
	}
	seen := make(map[Knobs]bool, len(knobs))
	for _, k := range knobs {
		if seen[k] {
			t.Fatalf("duplicate setting %v", k)
		}
		seen[k] = true
	}
	if got := len(EnumKnobs(cfg, 3)); got != 9*3*8 {
		t.Errorf("EnumKnobs(3 cores) = %d settings, want %d", got, 9*3*8)
	}
}

func TestKnobsClamp(t *testing.T) {
	cfg := simhw.DefaultConfig()
	k := Knobs{FreqGHz: 5, Cores: 99, MemWatts: 0.5}.Clamp(cfg, 4)
	if k.FreqGHz != cfg.FreqMaxGHz || k.Cores != 4 || k.MemWatts != cfg.MemMinWatts {
		t.Errorf("Clamp = %v", k)
	}
	k = Knobs{FreqGHz: 0, Cores: 0, MemWatts: 99}.Clamp(cfg, 6)
	if k.FreqGHz != cfg.FreqMinGHz || k.Cores != 1 || k.MemWatts != cfg.MemMaxWatts {
		t.Errorf("Clamp = %v", k)
	}
}

func TestCurveParetoInvariants(t *testing.T) {
	cfg := simhw.DefaultConfig()
	lib, err := NewLibrary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lib.Apps() {
		for _, c := range []*Curve{OptimalCurve(cfg, p), RAPLCurve(cfg, p)} {
			pts := c.Points()
			if len(pts) == 0 {
				t.Fatalf("%s: empty curve", p.Name)
			}
			for i := 1; i < len(pts); i++ {
				if pts[i].PowerW <= pts[i-1].PowerW {
					t.Fatalf("%s: power not increasing at point %d", p.Name, i)
				}
				if pts[i].Perf <= pts[i-1].Perf {
					t.Fatalf("%s: perf not increasing at point %d", p.Name, i)
				}
			}
			if c.MinPower() != pts[0].PowerW || c.MaxPower() != pts[len(pts)-1].PowerW {
				t.Fatalf("%s: Min/MaxPower disagree with points", p.Name)
			}
		}
	}
}

func TestCurveAtMatchesBruteForce(t *testing.T) {
	cfg := simhw.DefaultConfig()
	lib, _ := NewLibrary(cfg)
	p := lib.MustApp("BFS")
	c := OptimalCurve(cfg, p)
	pts := c.Points()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		budget := rng.Float64() * 30
		// Brute force over steady points plus run/suspend duty rays of
		// unaffordable points.
		best := -1.0
		for _, pt := range pts {
			if pt.PowerW <= budget {
				if pt.Perf > best {
					best = pt.Perf
				}
			} else if budget > 0 {
				if v := budget / pt.PowerW * pt.Perf; v > best {
					best = v
				}
			}
		}
		got, ok := c.At(budget)
		if best < 0 {
			if ok {
				t.Fatalf("At(%g) returned a point despite none affordable", budget)
			}
			continue
		}
		if !ok || math.Abs(got.Perf-best) > 1e-12 {
			t.Fatalf("At(%g) = %v (ok=%v), want perf %g", budget, got, ok, best)
		}
		if got.PowerW > budget+1e-12 {
			t.Fatalf("At(%g) returned unaffordable point %v", budget, got)
		}
	}
}

func TestOptimalDominatesEnforcementCurves(t *testing.T) {
	cfg := simhw.DefaultConfig()
	lib, _ := NewLibrary(cfg)
	avg := AverageCurve(cfg, lib.Apps())
	for _, p := range lib.Apps() {
		opt := OptimalCurve(cfg, p)
		rapl := RAPLCurve(cfg, p)
		shaped := ShapedCurve(cfg, p, avg)
		for w := 2.0; w <= 30; w += 1 {
			o := opt.PerfAt(w)
			if r := rapl.PerfAt(w); r > o+1e-2 {
				t.Fatalf("%s: RAPL curve beats optimal at %g W (%g > %g)", p.Name, w, r, o)
			}
			if s := shaped.PerfAt(w); s > o+1e-2 {
				t.Fatalf("%s: shaped curve beats optimal at %g W (%g > %g)", p.Name, w, s, o)
			}
		}
	}
}

func TestRAPLCurveIdleInjection(t *testing.T) {
	cfg := simhw.DefaultConfig()
	lib, _ := NewLibrary(cfg)
	p := lib.MustApp("STREAM")
	c := RAPLCurve(cfg, p)
	// Below the DVFS floor the curve must still be runnable with a
	// duty fraction < 1.
	pt, ok := c.At(5)
	if !ok {
		t.Fatal("RAPL curve unrunnable at 5 W despite idle injection")
	}
	if pt.DutyFrac >= 1 {
		t.Errorf("5 W point has duty %g, want < 1 (forced idling)", pt.DutyFrac)
	}
	if pt.PowerW > 5+1e-9 {
		t.Errorf("5 W point draws %g", pt.PowerW)
	}
	// RAPL keeps all entitled cores and an uncapped channel.
	if pt.Knobs.Cores != p.MaxCores || pt.Knobs.MemWatts != cfg.MemMaxWatts {
		t.Errorf("RAPL point reshaped knobs: %v", pt.Knobs)
	}
}

func TestCurveFromOracleEvalMatchesOptimal(t *testing.T) {
	cfg := simhw.DefaultConfig()
	lib, _ := NewLibrary(cfg)
	p := lib.MustApp("facesim")
	opt := OptimalCurve(cfg, p)
	ev := CurveFromEval(cfg, p.MaxCores, OracleEval(cfg, p))
	for w := 3.0; w <= 28; w += 0.5 {
		if a, b := opt.PerfAt(w), ev.PerfAt(w); math.Abs(a-b) > 1e-12 {
			t.Fatalf("oracle-eval curve diverges at %g W: %g vs %g", w, a, b)
		}
	}
}

func TestApplyShapeFitsBudget(t *testing.T) {
	cfg := simhw.DefaultConfig()
	lib, _ := NewLibrary(cfg)
	rng := rand.New(rand.NewSource(4))
	for _, p := range lib.Apps() {
		for trial := 0; trial < 100; trial++ {
			shape := randomKnobs(cfg, rng, cfg.CoresPerSocket)
			budget := 2 + rng.Float64()*26
			pt, ok := ApplyShape(cfg, p, shape, budget)
			if !ok {
				t.Fatalf("%s: ApplyShape failed at %g W", p.Name, budget)
			}
			if pt.PowerW > budget+1e-9 {
				t.Fatalf("%s: shaped point draws %g over budget %g", p.Name, pt.PowerW, budget)
			}
		}
	}
}

func TestMarginalNonNegative(t *testing.T) {
	cfg := simhw.DefaultConfig()
	lib, _ := NewLibrary(cfg)
	c := OptimalCurve(cfg, lib.MustApp("SSSP"))
	for w := 0.0; w < 30; w += 0.25 {
		if m := c.Marginal(w, 0.5); m < 0 {
			t.Fatalf("negative marginal utility %g at %g W", m, w)
		}
	}
	if c.Marginal(10, 0) != 0 {
		t.Error("zero-step marginal should be 0")
	}
}

func TestAverageCurveIsAPlausibleMiddle(t *testing.T) {
	cfg := simhw.DefaultConfig()
	lib, _ := NewLibrary(cfg)
	avg := AverageCurve(cfg, lib.Apps())
	if avg.Len() == 0 {
		t.Fatal("empty average curve")
	}
	// At any budget, the average curve's perf sits within the envelope
	// of the per-application optima.
	for w := 5.0; w <= 25; w += 2.5 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range lib.Apps() {
			v := OptimalCurve(cfg, p).PerfAt(w)
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		got := avg.PerfAt(w)
		if got > hi+1e-9 {
			t.Fatalf("average curve above every application at %g W (%g > %g)", w, got, hi)
		}
	}
	if AverageCurve(cfg, nil).Len() != 0 {
		t.Error("average of no applications is non-empty")
	}
}

func TestShapedCurveDutyWithinBounds(t *testing.T) {
	cfg := simhw.DefaultConfig()
	lib, _ := NewLibrary(cfg)
	avg := AverageCurve(cfg, lib.Apps())
	for _, p := range lib.Apps() {
		c := ShapedCurve(cfg, p, avg)
		for _, pt := range c.Points() {
			if pt.DutyFrac <= 0 || pt.DutyFrac > 1 {
				t.Fatalf("%s: duty %g outside (0, 1]", p.Name, pt.DutyFrac)
			}
		}
	}
}
