// Package buildinfo derives a human-readable version string from the
// binary's embedded module and VCS metadata — no linker flags, no
// generated files, so every cmd/ binary reports the same truth with one
// line of code.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// Version returns "module-version (revision[-dirty])", best-effort.
// Binaries built outside a module or VCS checkout degrade gracefully to
// "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return v
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return fmt.Sprintf("%s (%s)", v, rev)
}
