package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes a series as two-column CSV ("seconds,value") with
// a header row.
func WriteCSV(w io.Writer, series []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "value"}); err != nil {
		return err
	}
	for _, p := range series {
		rec := []string{
			strconv.FormatFloat(p.T, 'g', -1, 64),
			strconv.FormatFloat(p.V, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a two-column CSV series ("seconds,value"; an optional
// header row is skipped). Timestamps must be strictly increasing and
// values finite and non-negative — the validity a cap replay needs.
func ReadCSV(r io.Reader) ([]Point, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	var out []Point
	prevT := -1.0
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv: %w", err)
		}
		line++
		t, errT := strconv.ParseFloat(rec[0], 64)
		v, errV := strconv.ParseFloat(rec[1], 64)
		if errT != nil || errV != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("trace: csv line %d: non-numeric record %v", line, rec)
		}
		if t <= prevT {
			return nil, fmt.Errorf("trace: csv line %d: timestamps must increase (%g after %g)", line, t, prevT)
		}
		if v < 0 || v != v {
			return nil, fmt.Errorf("trace: csv line %d: invalid value %g", line, v)
		}
		prevT = t
		out = append(out, Point{T: t, V: v})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: csv contains no data rows")
	}
	return out, nil
}
