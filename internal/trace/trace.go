// Package trace synthesizes the cluster power demand trace and the
// peak-shaving cap schedules of the paper's Fig. 12. The paper replays
// power caps derived from a publicly-available trace of a
// connection-intensive internet service (ref [49], MSN-style login
// load); that trace is not redistributable, so this package generates a
// diurnal load curve with the same qualitative features — a deep
// overnight trough, a broad daytime plateau with two sub-peaks, and
// short-term jitter — and derives cap schedules that shave a fraction of
// its peak.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is one step of a time series.
type Point struct {
	// T is seconds since the trace start.
	T float64
	// V is the value (normalized load, or watts for cap series).
	V float64
}

// Config parameterizes trace synthesis.
type Config struct {
	// Seconds is the trace length (default: Days x 24 h).
	Seconds float64
	// Days sets the default length in days when Seconds is zero
	// (default 1). Weekends (days 5 and 6 of each week) carry a
	// dampened daytime load, as connection-intensive services show.
	Days int
	// StepSeconds is the sampling period (default: 60 s).
	StepSeconds float64
	// MinLoad and MaxLoad bound the normalized diurnal load (defaults:
	// 0.35 and 1.0) — connection-intensive services never go fully
	// idle.
	MinLoad float64
	MaxLoad float64
	// JitterFrac is the short-term load noise amplitude (default 0.03).
	JitterFrac float64
	// Seed makes synthesis deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Seconds <= 0 {
		c.Seconds = float64(c.Days) * 24 * 3600
	}
	if c.StepSeconds <= 0 {
		c.StepSeconds = 60
	}
	if c.MaxLoad <= 0 {
		c.MaxLoad = 1.0
	}
	if c.MinLoad <= 0 {
		c.MinLoad = 0.35
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.03
	}
	return c
}

// DiurnalLoad synthesizes a normalized (0..1) connection-intensive load
// curve: an overnight trough around 4 am, a morning ramp, a daytime
// plateau with late-morning and evening sub-peaks, and bounded jitter.
func DiurnalLoad(cfg Config) ([]Point, error) {
	cfg = cfg.withDefaults()
	if cfg.MinLoad >= cfg.MaxLoad {
		return nil, fmt.Errorf("trace: load bounds [%g, %g] are invalid", cfg.MinLoad, cfg.MaxLoad)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int(cfg.Seconds/cfg.StepSeconds) + 1
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) * cfg.StepSeconds
		h := math.Mod(t/3600, 24)
		day := int(t/86400) % 7
		// Base diurnal: trough at 4 am, peak mid-day.
		base := 0.5 - 0.5*math.Cos(2*math.Pi*(h-4)/24)
		// Sub-peaks at ~11 am and ~8 pm.
		base += 0.12*gauss(h, 11, 2) + 0.18*gauss(h, 20, 1.8)
		if base > 1 {
			base = 1
		}
		// Weekend dampening of the daytime plateau.
		if day >= 5 {
			base *= 0.8
		}
		v := cfg.MinLoad + (cfg.MaxLoad-cfg.MinLoad)*base
		v += cfg.JitterFrac * (2*rng.Float64() - 1) * v
		if v < cfg.MinLoad {
			v = cfg.MinLoad
		}
		if v > cfg.MaxLoad {
			v = cfg.MaxLoad
		}
		out = append(out, Point{T: t, V: v})
	}
	return out, nil
}

// gauss is an unnormalized bell over the 24-hour circle.
func gauss(h, mu, sigma float64) float64 {
	d := math.Abs(h - mu)
	if d > 12 {
		d = 24 - d
	}
	return math.Exp(-d * d / (2 * sigma * sigma))
}

// DemandWatts scales a normalized load curve into a cluster power demand
// series: servers x (idleW + load * dynamicW). This is the uncapped draw
// the cluster would have, the reference Fig. 12a shaves from.
func DemandWatts(load []Point, servers int, idleW, dynamicW float64) []Point {
	out := make([]Point, len(load))
	for i, p := range load {
		out[i] = Point{T: p.T, V: float64(servers) * (idleW + p.V*dynamicW)}
	}
	return out
}

// ShaveCaps derives a peak-shaving cap schedule from a demand series:
// the cap is the demand clipped at (1-shaveFrac) of the demand's peak —
// binding only around the peaks, exactly the Fig. 12a shape.
func ShaveCaps(demand []Point, shaveFrac float64) ([]Point, error) {
	if shaveFrac < 0 || shaveFrac >= 1 {
		return nil, fmt.Errorf("trace: shave fraction %g outside [0, 1)", shaveFrac)
	}
	peak := 0.0
	for _, p := range demand {
		if p.V > peak {
			peak = p.V
		}
	}
	ceiling := (1 - shaveFrac) * peak
	out := make([]Point, len(demand))
	for i, p := range demand {
		v := p.V
		if v > ceiling {
			v = ceiling
		}
		out[i] = Point{T: p.T, V: v}
	}
	return out, nil
}

// PeakShaveCaps derives the cap schedule the cluster manager actually
// enforces: during peak-shaving events — steps where demand exceeds
// (1-shaveFrac) of the demand peak — the cluster is capped at that
// ceiling; between events no cap binds and the schedule carries openCapW
// (the fleet's nameplate, or any value at or above what it can draw).
// This is the replay semantics of the paper's Fig. 12: caps exist to
// shave peaks, not to track demand.
func PeakShaveCaps(demand []Point, shaveFrac, openCapW float64) ([]Point, error) {
	if shaveFrac < 0 || shaveFrac >= 1 {
		return nil, fmt.Errorf("trace: shave fraction %g outside [0, 1)", shaveFrac)
	}
	ceiling := (1 - shaveFrac) * Peak(demand)
	if openCapW < ceiling {
		return nil, fmt.Errorf("trace: open cap %.0f W below shaving ceiling %.0f W", openCapW, ceiling)
	}
	out := make([]Point, len(demand))
	for i, p := range demand {
		v := openCapW
		if p.V > ceiling {
			v = ceiling
		}
		out[i] = Point{T: p.T, V: v}
	}
	return out, nil
}

// EventFraction returns the fraction of steps where a cap schedule binds
// below openCapW.
func EventFraction(caps []Point, openCapW float64) float64 {
	if len(caps) == 0 {
		return 0
	}
	n := 0
	for _, p := range caps {
		if p.V < openCapW {
			n++
		}
	}
	return float64(n) / float64(len(caps))
}

// Peak returns the series maximum.
func Peak(series []Point) float64 {
	peak := 0.0
	for _, p := range series {
		if p.V > peak {
			peak = p.V
		}
	}
	return peak
}

// Mean returns the series average.
func Mean(series []Point) float64 {
	if len(series) == 0 {
		return 0
	}
	var s float64
	for _, p := range series {
		s += p.V
	}
	return s / float64(len(series))
}
