package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestDiurnalLoadBoundsAndDeterminism(t *testing.T) {
	cfg := Config{Seed: 3}
	a, err := DiurnalLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 24*60+1 {
		t.Fatalf("%d points for a 24 h / 60 s trace", len(a))
	}
	for _, p := range a {
		if p.V < 0.35-1e-9 || p.V > 1+1e-9 {
			t.Fatalf("load %g at t=%g outside [0.35, 1]", p.V, p.T)
		}
	}
	b, err := DiurnalLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic for a seed")
		}
	}
	if _, err := DiurnalLoad(Config{MinLoad: 0.9, MaxLoad: 0.5}); err == nil {
		t.Error("inverted load bounds accepted")
	}
}

func TestDiurnalShapeHasTroughAndPeak(t *testing.T) {
	load, _ := DiurnalLoad(Config{Seed: 1, JitterFrac: 0.001})
	atHour := func(h float64) float64 {
		idx := int(h * 60)
		return load[idx].V
	}
	if night, day := atHour(4), atHour(20); night >= day {
		t.Errorf("4 am load %g not below 8 pm load %g", night, day)
	}
	if atHour(4) > 0.5 {
		t.Errorf("overnight trough %g too high", atHour(4))
	}
	if atHour(20) < 0.85 {
		t.Errorf("evening peak %g too low", atHour(20))
	}
}

func TestDemandWatts(t *testing.T) {
	load := []Point{{T: 0, V: 0.5}, {T: 60, V: 1.0}}
	d := DemandWatts(load, 10, 70, 44)
	if d[0].V != 10*(70+0.5*44) {
		t.Errorf("demand at half load = %g", d[0].V)
	}
	if d[1].V != 10*(70+44) {
		t.Errorf("demand at full load = %g", d[1].V)
	}
}

func TestShaveCapsClipsAtCeiling(t *testing.T) {
	demand := []Point{{0, 500}, {60, 900}, {120, 1000}}
	caps, err := ShaveCaps(demand, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	ceiling := 0.7 * 1000
	for i, c := range caps {
		if c.V > ceiling+1e-9 {
			t.Errorf("cap %g over ceiling at %d", c.V, i)
		}
		if demand[i].V <= ceiling && c.V != demand[i].V {
			t.Errorf("cap %g altered below the ceiling at %d", c.V, i)
		}
	}
	if _, err := ShaveCaps(demand, 1.5); err == nil {
		t.Error("shave fraction over 1 accepted")
	}
}

func TestPeakShaveCaps(t *testing.T) {
	demand := []Point{{0, 400}, {60, 800}, {120, 1000}}
	const open = 1100
	caps, err := PeakShaveCaps(demand, 0.30, open)
	if err != nil {
		t.Fatal(err)
	}
	ceiling := 0.7 * 1000
	// Non-event steps are uncapped (open), event steps capped at the
	// ceiling.
	if caps[0].V != open {
		t.Errorf("non-event step capped at %g", caps[0].V)
	}
	if caps[1].V != ceiling || caps[2].V != ceiling {
		t.Errorf("event steps capped at %g/%g, want %g", caps[1].V, caps[2].V, ceiling)
	}
	if frac := EventFraction(caps, open); math.Abs(frac-2.0/3) > 1e-9 {
		t.Errorf("event fraction %g, want 2/3", frac)
	}
	if _, err := PeakShaveCaps(demand, 0.30, 100); err == nil {
		t.Error("open cap below the ceiling accepted")
	}
}

func TestPeakAndMean(t *testing.T) {
	s := []Point{{0, 1}, {1, 5}, {2, 3}}
	if Peak(s) != 5 {
		t.Errorf("Peak = %g", Peak(s))
	}
	if Mean(s) != 3 {
		t.Errorf("Mean = %g", Mean(s))
	}
	if Mean(nil) != 0 {
		t.Error("Mean of empty series not 0")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	series := []Point{{0, 100}, {60, 95.5}, {120, 80}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(series) {
		t.Fatalf("%d points, want %d", len(got), len(series))
	}
	for i := range series {
		if got[i] != series[i] {
			t.Errorf("point %d: %v vs %v", i, got[i], series[i])
		}
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":        "seconds,value\n",
		"non-numeric":  "seconds,value\n0,100\nten,90\n",
		"backwards":    "0,100\n0,90\n",
		"negative":     "0,100\n60,-5\n",
		"wrong-fields": "0,100,extra\n",
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(body)); err == nil {
				t.Errorf("accepted %q", body)
			}
		})
	}
	// A headerless numeric file is accepted.
	got, err := ReadCSV(strings.NewReader("0,100\n60,90\n"))
	if err != nil || len(got) != 2 {
		t.Fatalf("headerless parse: %v, %v", got, err)
	}
}

func TestMultiDayTraceWithWeekends(t *testing.T) {
	load, err := DiurnalLoad(Config{Days: 7, Seed: 2, JitterFrac: 0.001, StepSeconds: 600})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := load[len(load)-1].T, 7*24*3600.0; math.Abs(got-want) > 600 {
		t.Fatalf("trace ends at %g s, want ~%g", got, want)
	}
	atHour := func(day int, h float64) float64 {
		idx := int((float64(day)*24 + h) * 6)
		return load[idx].V
	}
	// Saturday's daytime plateau sits below Wednesday's.
	if sat, wed := atHour(5, 14), atHour(2, 14); sat >= wed {
		t.Errorf("Saturday 2 pm load %g not below Wednesday's %g", sat, wed)
	}
}
