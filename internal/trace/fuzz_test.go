package trace

import (
	"strings"
	"testing"
)

// FuzzReadCSV exercises the cap-schedule parser with arbitrary input:
// it must never panic, and anything it accepts must satisfy the replay
// invariants (increasing timestamps, finite non-negative values).
func FuzzReadCSV(f *testing.F) {
	f.Add("seconds,value\n0,100\n60,90\n")
	f.Add("0,100\n")
	f.Add("garbage")
	f.Add("0,100\n0,100\n")
	f.Add("0,-1\n")
	f.Add("0,1e400\n")
	f.Add(",\n")
	f.Fuzz(func(t *testing.T, body string) {
		pts, err := ReadCSV(strings.NewReader(body))
		if err != nil {
			return
		}
		prev := -1.0
		for _, p := range pts {
			if p.T <= prev {
				t.Fatalf("accepted non-increasing timestamps: %v", pts)
			}
			if p.V < 0 || p.V != p.V {
				t.Fatalf("accepted invalid value %g", p.V)
			}
			prev = p.T
		}
	})
}
