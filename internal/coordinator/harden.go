package coordinator

import (
	"errors"
	"fmt"
	"math"
	"time"

	"powerstruggle/internal/faults"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/workload"
)

// Backoff bounds for a flapping actuator, in simulated seconds.
const (
	minBackoffS = 0.05
	maxBackoffS = 1.6
	// emergencyRetries is the per-write retry budget of the watchdog's
	// clamp: emergency writes bypass backoff entirely, because leaving a
	// breaching server alone is worse than hammering its actuators.
	emergencyRetries = 16
)

// watchdog is the cap-breach watchdog's state. It observes the grid draw
// after every control interval; when the draw exceeds the cap for K
// consecutive intervals the clamp engages, forcing either the emergency
// knob floor (min frequency, min DRAM limit) or — when even the floor
// cannot fit under the cap — a full suspend. K consecutive clean
// intervals release it, after which frequencies ramp back linearly.
type watchdog struct {
	enabled bool
	engaged bool
	// suspend selects the clamp tier: false forces the knob floor,
	// true suspends every application (draw falls to P_idle).
	suspend bool

	breachRun    int
	cleanRun     int
	engages      int
	breachSteps  int
	maxBreachRun int

	// recoverAt is the simulated time the last release happened; -1
	// when no recovery ramp is in progress.
	recoverAt float64
}

// recordEvent appends a structured event to the fault log, if any, and
// mirrors it into telemetry: an observed-fault counter bump plus an
// instant event on the control track, so a Perfetto trace lines up
// degraded-mode transitions with the intervals they happened in.
func (e *Executor) recordEvent(kind, target, detail string) {
	if e.tel.enabled {
		e.tel.observed.With(kind).Inc()
		e.tel.tracer.Instant(kind, telemetry.CatFault, telemetry.TidControl, e.now,
			telemetry.A("target", target), telemetry.A("detail", detail))
	}
	if e.flog == nil {
		return
	}
	e.flog.Append(faults.Event{T: e.now, Kind: kind, Target: target, Detail: detail})
}

// FaultLog exposes the executor's structured fault/recovery event log
// (nil when neither faults nor the watchdog are enabled).
func (e *Executor) FaultLog() *faults.Log { return e.flog }

// FaultEvents returns the logged fault and recovery events in order.
func (e *Executor) FaultEvents() []faults.Event {
	if e.flog == nil {
		return nil
	}
	return e.flog.Events()
}

// WatchdogEngaged reports whether the emergency clamp is currently
// holding the server down.
func (e *Executor) WatchdogEngaged() bool { return e.wd.engaged }

// WatchdogEngages counts clamp engagements so far.
func (e *Executor) WatchdogEngages() int { return e.wd.engages }

// CapBreachSteps counts control intervals whose grid draw exceeded the
// cap.
func (e *Executor) CapBreachSteps() int { return e.wd.breachSteps }

// MaxBreachRun is the longest run of consecutive over-cap control
// intervals observed — the quantity the watchdog exists to bound.
func (e *Executor) MaxBreachRun() int { return e.wd.maxBreachRun }

// retry performs op with bounded immediate retries on transient
// failures. On exhaustion the application enters exponential backoff and
// the transient error is returned; non-transient errors return at once.
// A dropout is not retried — the whole window is dead, retries only spin.
func (e *Executor) retry(i int, op func() error) error {
	var err error
	for attempt := 0; attempt <= e.cfg.maxRetries(); attempt++ {
		err = op()
		if err == nil || !faults.IsTransient(err) {
			return err
		}
		e.tel.retries.Inc()
		if errors.Is(err, faults.ErrDropout) {
			break
		}
	}
	e.noteDegraded(i, err)
	return err
}

// noteDegraded moves application i into (or deeper into) backoff after
// its retry budget ran out.
func (e *Executor) noteDegraded(i int, err error) {
	if e.backoffS[i] <= 0 {
		e.backoffS[i] = minBackoffS
	} else {
		e.backoffS[i] = math.Min(e.backoffS[i]*2, maxBackoffS)
	}
	e.retryAt[i] = e.now + e.backoffS[i]
	e.tel.backoffs.Inc()
	e.recordEvent("actuation-degraded", e.hbName(i),
		fmt.Sprintf("retries exhausted (%v); backing off %.2f s", err, e.backoffS[i]))
}

// writeKnobs applies knobs and load for application i with retries.
// Transient exhaustion leaves the slot on stale knobs and returns the
// transient error; the caller degrades rather than aborts.
func (e *Executor) writeKnobs(i int, k workload.Knobs, eff *workload.Profile) error {
	if e.tel.enabled {
		defer e.tel.observeLatency(e.tel.latKnob, time.Now())
	}
	if err := e.retry(i, func() error {
		return e.srv.SetKnobs(e.slots[i], k.FreqGHz, k.Cores, k.MemWatts)
	}); err != nil {
		return err
	}
	// Load reporting is the occupant's own telemetry, not an actuation;
	// it does not fault and a failure here is a real error.
	return e.srv.SetLoad(e.slots[i], eff.CPUActivity, eff.MemDrawWatts(e.cfg.HW, k))
}

// writeRunning starts or suspends application i with retries. It reports
// whether the write took effect; transient exhaustion degrades (false,
// nil) so the caller holds the previous state, real errors propagate.
func (e *Executor) writeRunning(i int, running bool) (bool, error) {
	if e.tel.enabled {
		defer e.tel.observeLatency(e.tel.latRun, time.Now())
	}
	err := e.retry(i, func() error { return e.srv.SetRunning(e.slots[i], running) })
	if err == nil {
		return true, nil
	}
	if faults.IsTransient(err) {
		return false, nil
	}
	return false, err
}

// writeSleep drives the sockets into PC6 with bounded retries. A
// transiently failed sleep is survivable — the server just idles awake
// for the step — so transient exhaustion degrades silently.
func (e *Executor) writeSleep() error {
	if e.tel.enabled {
		defer e.tel.observeLatency(e.tel.latSleep, time.Now())
	}
	var err error
	for attempt := 0; attempt <= e.cfg.maxRetries(); attempt++ {
		err = e.srv.Sleep()
		if err == nil || !faults.IsTransient(err) {
			return err
		}
		if errors.Is(err, faults.ErrDropout) {
			break
		}
	}
	e.recordEvent("sleep-degraded", "", fmt.Sprintf("PC6 entry failed (%v); idling awake", err))
	return nil
}

// watchdogPrepare runs at the start of every control interval: it
// finishes an expired recovery ramp, releases an engaged clamp after K
// clean intervals, and engages the clamp once the breach run reaches K.
func (e *Executor) watchdogPrepare() {
	k := e.cfg.watchdogK()
	if e.wd.recoverAt >= 0 && e.now-e.wd.recoverAt >= e.cfg.watchdogRecovery() {
		// The settle span covers the whole recovery ramp: release to
		// full scheduled frequency.
		e.tel.tracer.Span("settle", telemetry.CatSettle, telemetry.TidControl,
			e.wd.recoverAt, e.now-e.wd.recoverAt)
		e.wd.recoverAt = -1
		e.recordEvent("watchdog-recovered", "", "recovery ramp complete; scheduled knobs restored")
	}
	if e.wd.engaged && e.wd.cleanRun >= k {
		e.wd.engaged = false
		e.wd.suspend = false
		e.wd.recoverAt = e.now
		e.tel.wdReleases.Inc()
		e.recordEvent("watchdog-release", "",
			fmt.Sprintf("%d clean intervals; ramping back over %.1f s", k, e.cfg.watchdogRecovery()))
	}
	if !e.wd.engaged && e.wd.breachRun >= k {
		e.engageWatchdog()
	}
}

// engageWatchdog turns the clamp on, choosing the tier by whether the
// knob floor itself fits under the cap.
func (e *Executor) engageWatchdog() {
	e.wd.engaged = true
	e.wd.engages++
	e.tel.wdEngages.Inc()
	e.wd.cleanRun = 0
	e.wd.recoverAt = -1
	floor := e.clampFloorWatts()
	e.wd.suspend = floor > e.cfg.CapW
	tier := fmt.Sprintf("clamping to knob floor (~%.1f W)", floor)
	if e.wd.suspend {
		tier = fmt.Sprintf("knob floor ~%.1f W still over cap; suspending all applications", floor)
	}
	e.recordEvent("watchdog-engage", "",
		fmt.Sprintf("%d consecutive intervals over %.1f W cap; %s", e.wd.breachRun, e.cfg.CapW, tier))
}

// clampFloorWatts estimates the worst-case server draw with every
// application forced to the emergency knob floor — the engage-time
// decision between the floor tier and the suspend tier.
func (e *Executor) clampFloorWatts() float64 {
	hw := e.cfg.HW
	w := hw.PIdleWatts
	if len(e.profiles) > 0 {
		w += hw.PCmWatts
	}
	for i := range e.profiles {
		eff := e.instances[i].Effective()
		w += float64(eff.MaxCores)*hw.CoreWatts(hw.FreqMinGHz, eff.CPUActivity) + hw.MemMinWatts
	}
	return w
}

// watchdogObserve accounts one control interval's grid draw against the
// cap.
func (e *Executor) watchdogObserve(gridW float64) {
	if gridW > e.cfg.CapW+capSlack {
		e.wd.breachRun++
		e.wd.breachSteps++
		e.wd.cleanRun = 0
		if e.wd.breachRun > e.wd.maxBreachRun {
			e.wd.maxBreachRun = e.wd.breachRun
		}
		return
	}
	e.wd.breachRun = 0
	e.wd.cleanRun++
}

// clampSegment is the engaged watchdog's replacement for the segment's
// actuation: scheduled applications run at the knob floor (or everything
// suspends, on the suspend tier), written through verified emergency
// writes that bypass backoff.
func (e *Executor) clampSegment(seg Segment) ([]bool, error) {
	n := len(e.profiles)
	effRun := make([]bool, n)
	for i := 0; i < n; i++ {
		sk, scheduled := seg.Run[i]
		run := scheduled && !e.wd.suspend && !seg.Sleep
		if run {
			eff := e.instances[i].Effective()
			k := e.knobsFor(i, sk)
			if err := e.forceKnobs(i, k, eff); err != nil {
				return nil, err
			}
		}
		if e.forceRun(i, run) {
			effRun[i] = run
		} else {
			effRun[i] = e.prevRunning[i]
		}
		e.prevRunning[i] = effRun[i]
	}
	// No PC6 and no scheduled ESD activity while clamped: the emergency
	// state is deliberately the simplest one that sheds power.
	return effRun, nil
}

// forceKnobs is the emergency knob write: bounded hard retries with a
// read-back verification, because an injected stuck-DVFS or delayed
// DRAM-limit write reports success while leaving the old setting live.
// Persistent failure is recorded and survived — the clamp stays engaged
// and tries again next interval.
func (e *Executor) forceKnobs(i int, k workload.Knobs, eff *workload.Profile) error {
	var lastErr error
	for attempt := 0; attempt < emergencyRetries; attempt++ {
		e.tel.emergencyWrites.Inc()
		if err := e.srv.SetKnobs(e.slots[i], k.FreqGHz, k.Cores, k.MemWatts); err != nil {
			if !faults.IsTransient(err) {
				return err
			}
			lastErr = err
			if errors.Is(err, faults.ErrDropout) {
				break
			}
			continue
		}
		st, err := e.srv.Slot(e.slots[i])
		if err != nil {
			return err
		}
		if st.FreqGHz == k.FreqGHz && st.MemWatts == k.MemWatts {
			return e.srv.SetLoad(e.slots[i], eff.CPUActivity, eff.MemDrawWatts(e.cfg.HW, k))
		}
		lastErr = fmt.Errorf("write reported success but read back f=%.2f m=%.1f", st.FreqGHz, st.MemWatts)
	}
	e.recordEvent("clamp-write-failed", e.hbName(i),
		fmt.Sprintf("emergency knob write not verified after %d attempts (%v)", emergencyRetries, lastErr))
	return nil
}

// forceRun is the emergency run/suspend write: bounded hard retries with
// read-back verification, reporting whether the state took effect.
func (e *Executor) forceRun(i int, running bool) bool {
	for attempt := 0; attempt < emergencyRetries; attempt++ {
		e.tel.emergencyWrites.Inc()
		if err := e.srv.SetRunning(e.slots[i], running); err != nil {
			if errors.Is(err, faults.ErrDropout) {
				break
			}
			continue
		}
		st, err := e.srv.Slot(e.slots[i])
		if err == nil && st.Running == running {
			return true
		}
	}
	what := "suspend"
	if running {
		what = "resume"
	}
	e.recordEvent("clamp-write-failed", e.hbName(i),
		fmt.Sprintf("emergency %s not verified after %d attempts", what, emergencyRetries))
	return false
}
