package coordinator

import (
	"time"

	"powerstruggle/internal/telemetry"
)

// execTel holds the executor's pre-resolved telemetry instruments. All
// handles come out of the registry once, at construction, so the per-
// interval hot path performs no lookups and no allocation — just atomic
// ops on the handles (or nil-check no-ops when telemetry is off).
type execTel struct {
	enabled bool
	tracer  *telemetry.Tracer

	intervals   *telemetry.Counter
	gridW       *telemetry.Gauge
	serverW     *telemetry.Gauge
	capW        *telemetry.Gauge
	soc         *telemetry.Gauge
	overshootW  *telemetry.Histogram
	breachSteps *telemetry.Counter

	wdEngages  *telemetry.Counter
	wdReleases *telemetry.Counter

	retries         *telemetry.Counter
	backoffs        *telemetry.Counter
	emergencyWrites *telemetry.Counter

	latKnob  *telemetry.Histogram
	latRun   *telemetry.Histogram
	latSleep *telemetry.Histogram

	observed *telemetry.CounterVec
	injected *telemetry.CounterVec
}

// newExecTel resolves the coordinator instrument set against h. A nil
// hub yields the zero execTel: every handle nil, every record a no-op.
func newExecTel(h *telemetry.Hub) execTel {
	if h == nil {
		return execTel{}
	}
	reg := h.Registry()
	lat := reg.HistogramVec("ps_coordinator_actuation_latency_seconds",
		"Wall-clock latency of one actuation write, by knob kind.",
		telemetry.LatencyBuckets(), "knob")
	return execTel{
		enabled: true,
		tracer:  h.Tracer(),
		intervals: reg.Counter("ps_coordinator_intervals_total",
			"Control intervals executed."),
		gridW: reg.Gauge("ps_coordinator_grid_watts",
			"Grid draw of the last control interval."),
		serverW: reg.Gauge("ps_coordinator_server_watts",
			"Server draw of the last control interval."),
		capW: reg.Gauge("ps_coordinator_cap_watts",
			"Power cap in force."),
		soc: reg.Gauge("ps_coordinator_esd_soc",
			"ESD state of charge (0 when no device)."),
		overshootW: reg.Histogram("ps_coordinator_overshoot_watts",
			"Grid draw over the cap, per breaching interval.",
			telemetry.WattBuckets()),
		breachSteps: reg.Counter("ps_coordinator_cap_breach_steps_total",
			"Control intervals whose grid draw exceeded the cap."),
		wdEngages: reg.Counter("ps_coordinator_watchdog_engages_total",
			"Cap-breach watchdog clamp engagements."),
		wdReleases: reg.Counter("ps_coordinator_watchdog_releases_total",
			"Cap-breach watchdog clamp releases."),
		retries: reg.Counter("ps_coordinator_actuation_retries_total",
			"Transient actuation write failures absorbed by retries."),
		backoffs: reg.Counter("ps_coordinator_actuation_backoffs_total",
			"Retry budgets exhausted; application moved into backoff."),
		emergencyWrites: reg.Counter("ps_coordinator_emergency_writes_total",
			"Read-back-verified emergency writes issued while clamped."),
		latKnob:  lat.With("knobs"),
		latRun:   lat.With("run"),
		latSleep: lat.With("sleep"),
		observed: reg.CounterVec("ps_faults_observed_total",
			"Degraded-mode and recovery events the hardened loop recorded, by kind.", "kind"),
		injected: reg.CounterVec("ps_faults_injected_total",
			"Faults the injector fired, by kind.", "kind"),
	}
}

// observeLatency records a wall-clock actuation latency. The time.Now
// calls only happen when telemetry is enabled (see callers), so the
// disabled path stays free of clock reads.
func (t *execTel) observeLatency(h *telemetry.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// emitStepSpans records the interval span and one run span per executing
// application — the "actuate" slices of the span model. Called once per
// Step, only when tracing is on; the allocations here are per interval,
// not per write.
func (e *Executor) emitStepSpans(start, dt float64, seg Segment, effRun []bool, appW []float64, gridW, serverW, soc float64) {
	tr := e.tel.tracer
	if tr == nil {
		return
	}
	attrs := []telemetry.Attr{
		telemetry.A("grid_w", gridW),
		telemetry.A("server_w", serverW),
		telemetry.A("cap_w", e.cfg.CapW),
		telemetry.A("soc", soc),
	}
	if over := gridW - e.cfg.CapW; over > capSlack {
		attrs = append(attrs, telemetry.A("overshoot_w", over))
	}
	if e.wd.engaged {
		attrs = append(attrs, telemetry.A("watchdog", "engaged"))
	}
	if seg.Sleep {
		attrs = append(attrs, telemetry.A("sleep", true))
	}
	tr.Span("interval", telemetry.CatInterval, telemetry.TidControl, start, dt, attrs...)

	for i := range e.profiles {
		sk, scheduled := seg.Run[i]
		if !scheduled || i >= len(effRun) || !effRun[i] {
			continue
		}
		k := e.knobsFor(i, sk)
		duty := 1.0
		if sk.Duty > 0 && sk.Duty < 1 {
			duty = sk.Duty
		}
		w := 0.0
		if i < len(appW) {
			w = appW[i]
		}
		tr.Span(k.String(), telemetry.CatActuate, telemetry.TidTenant0+i, start, dt,
			telemetry.A("tenant", e.hbName(i)),
			telemetry.A("freq_ghz", k.FreqGHz),
			telemetry.A("cores", k.Cores),
			telemetry.A("mem_w", k.MemWatts),
			telemetry.A("duty", duty),
			telemetry.A("power_w", w),
			telemetry.A("granted_w", e.grantedW(i)),
		)
	}
}

// grantedW is the time-averaged budget the installed schedule grants
// application i (0 when the schedule predates the application).
func (e *Executor) grantedW(i int) float64 {
	if !e.haveSched || i >= len(e.sched.AppBudgetW) {
		return 0
	}
	return e.sched.AppBudgetW[i]
}

// nameTenantTracks (re)labels the per-tenant trace tracks after an
// arrival or a departure compacted the indices.
func (e *Executor) nameTenantTracks() {
	if e.tel.tracer == nil {
		return
	}
	e.tel.tracer.SetThreadName(telemetry.TidControl, "control")
	for i := range e.profiles {
		e.tel.tracer.SetThreadName(telemetry.TidTenant0+i, e.hbName(i))
	}
}
