package coordinator

import (
	"bytes"
	"reflect"
	"testing"

	"powerstruggle/internal/faults"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/workload"
)

func TestTelemetrySpansPerInterval(t *testing.T) {
	f := newFixture(t, "STREAM", "kmeans")
	hub := telemetry.New(0)
	ex, err := NewExecutor(Config{HW: f.hw, CapW: 100, Telemetry: hub}, nil)
	if err != nil {
		t.Fatal(err)
	}
	addApps(t, ex, f)
	if err := ex.SetSchedule(overCapSchedule(f)); err != nil {
		t.Fatal(err)
	}
	const steps = 50
	for i := 0; i < steps; i++ {
		if _, err := ex.Step(0.01); err != nil {
			t.Fatal(err)
		}
	}

	reg := hub.Registry()
	if got := reg.Counter("ps_coordinator_intervals_total", "").Value(); got != steps {
		t.Fatalf("intervals counter = %d, want %d", got, steps)
	}
	var intervalSpans, runSpans int
	for _, ev := range hub.Tracer().Events() {
		switch {
		case ev.Cat == telemetry.CatInterval && ev.Ph == 'X':
			intervalSpans++
			if ev.Tid != telemetry.TidControl {
				t.Fatalf("interval span on tid %d, want control track", ev.Tid)
			}
		case ev.Cat == telemetry.CatActuate && ev.Ph == 'X':
			runSpans++
		}
	}
	if intervalSpans != steps {
		t.Fatalf("%d interval spans, want one per step (%d)", intervalSpans, steps)
	}
	if runSpans == 0 {
		t.Fatal("no per-tenant actuate spans recorded")
	}
	names := hub.Tracer().ThreadNames()
	if names[telemetry.TidControl] != "control" {
		t.Fatalf("control track named %q", names[telemetry.TidControl])
	}
	if names[telemetry.TidTenant0] == "" || names[telemetry.TidTenant0+1] == "" {
		t.Fatalf("tenant tracks unnamed: %v", names)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ps_coordinator_intervals_total",
		"ps_coordinator_grid_watts",
		"ps_coordinator_cap_watts",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("metrics page lacks %s:\n%s", want, buf.String())
		}
	}
}

// stepAll drives an executor and returns every sample, failing the test
// on error.
func stepAll(t *testing.T, ex *Executor, steps int, dt float64) []Sample {
	t.Helper()
	out := make([]Sample, 0, steps)
	for i := 0; i < steps; i++ {
		s, err := ex.Step(dt)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		out = append(out, s)
	}
	return out
}

// TestTelemetryDisabledBitIdentical is the guard the whole design hangs
// on: telemetry observes, never steers. A run with a hub attached must
// produce exactly the samples of a run without one — including under
// fault injection, where a perturbed RNG stream would show up
// immediately.
func TestTelemetryDisabledBitIdentical(t *testing.T) {
	build := func(hub *telemetry.Hub, fc *faults.Config) (*Executor, *fixture) {
		f := newFixture(t, "STREAM", "kmeans")
		ex, err := NewExecutor(Config{
			HW: f.hw, CapW: 60, Watchdog: true, WatchdogK: 3,
			Telemetry: hub, Faults: fc,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		addApps(t, ex, f)
		if err := ex.SetSchedule(overCapSchedule(f)); err != nil {
			t.Fatal(err)
		}
		return ex, f
	}
	const steps = 300
	for _, tc := range []struct {
		name string
		fc   *faults.Config
	}{
		{"fault-free", nil},
		{"faulted", &faults.Config{Seed: 7, KnobWriteFailP: 0.2, StuckDVFSP: 0.1, BeatDropP: 0.1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			exOff, _ := build(nil, tc.fc)
			exOn, _ := build(telemetry.New(0), tc.fc)
			off := stepAll(t, exOff, steps, 0.01)
			on := stepAll(t, exOn, steps, 0.01)
			if !reflect.DeepEqual(off, on) {
				for i := range off {
					if !reflect.DeepEqual(off[i], on[i]) {
						t.Fatalf("samples diverge at step %d:\n  off: %+v\n  on:  %+v", i, off[i], on[i])
					}
				}
				t.Fatal("samples diverge")
			}
			if exOff.CapBreachSteps() != exOn.CapBreachSteps() ||
				exOff.WatchdogEngages() != exOn.WatchdogEngages() {
				t.Fatal("watchdog state diverges between instrumented and bare runs")
			}
		})
	}
}

func TestTelemetryFaultCounters(t *testing.T) {
	f := newFixture(t, "STREAM", "kmeans")
	hub := telemetry.New(0)
	ex, err := NewExecutor(Config{
		HW: f.hw, CapW: 100, Telemetry: hub,
		Faults: &faults.Config{Seed: 3, KnobWriteFailP: 0.4, StuckDVFSP: 0.2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	addApps(t, ex, f)
	if err := ex.SetSchedule(overCapSchedule(f)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := ex.Step(0.01); err != nil {
			t.Fatal(err)
		}
	}
	// Every log entry was mirrored into exactly one of the two counters:
	// the injector's own records into injected_total, the executor's
	// recovery records into observed_total.
	reg := hub.Registry()
	counts := ex.FaultLog().Counts()
	var logged, mirrored uint64
	for kind, n := range counts {
		logged += uint64(n)
		mirrored += reg.CounterVec("ps_faults_observed_total", "", "kind").With(kind).Value()
		mirrored += reg.CounterVec("ps_faults_injected_total", "", "kind").With(kind).Value()
	}
	if logged == 0 {
		t.Fatal("fault rates this high produced no logged events")
	}
	if mirrored != logged {
		t.Fatalf("mirrored fault metrics %d != fault log total %d", mirrored, logged)
	}
	var injected uint64
	for _, kind := range []string{"knob-write-fail", "stuck-dvfs"} {
		injected += reg.CounterVec("ps_faults_injected_total", "", "kind").With(kind).Value()
	}
	if injected == 0 {
		t.Fatal("injected fault counters never incremented")
	}
	if got := reg.Counter("ps_coordinator_actuation_retries_total", "").Value(); got == 0 {
		t.Fatal("transient failures absorbed with zero recorded retries")
	}
}

// BenchmarkTelemetryOverhead compares a fully instrumented control
// interval against the bare one; DESIGN.md §9 budgets the delta at under
// 1% of the 10 ms interval (i.e. < 100 µs — measured overhead is
// microseconds).
func BenchmarkTelemetryOverhead(b *testing.B) {
	build := func(hub *telemetry.Hub) *Executor {
		hw := simhw.DefaultConfig()
		lib, err := workload.NewLibrary(hw)
		if err != nil {
			b.Fatal(err)
		}
		profs := []*workload.Profile{lib.MustApp("STREAM"), lib.MustApp("kmeans")}
		ex, err := NewExecutor(Config{HW: hw, CapW: 100, Telemetry: hub}, nil)
		if err != nil {
			b.Fatal(err)
		}
		run := map[int]SegKnob{}
		for i, p := range profs {
			inst, err := workload.NewInstance(p, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ex.AddApp(p, inst); err != nil {
				b.Fatal(err)
			}
			run[i] = SegKnob{Knobs: p.NoCapKnobs(hw), Duty: 1}
		}
		if err := ex.SetSchedule(Schedule{PeriodS: 1, Segments: []Segment{{Seconds: 1, Run: run}}}); err != nil {
			b.Fatal(err)
		}
		return ex
	}
	b.Run("disabled", func(b *testing.B) {
		ex := build(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Step(0.01); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		ex := build(telemetry.New(0))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Step(0.01); err != nil {
				b.Fatal(err)
			}
		}
	})
}
