package coordinator

import (
	"math"
	"strings"
	"testing"

	"powerstruggle/internal/allocator"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

type fixture struct {
	hw     simhw.Config
	lib    *workload.Library
	profs  []*workload.Profile
	curves []*workload.Curve
}

func newFixture(t *testing.T, names ...string) *fixture {
	t.Helper()
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{hw: hw, lib: lib}
	for _, n := range names {
		p := lib.MustApp(n)
		f.profs = append(f.profs, p)
		f.curves = append(f.curves, workload.OptimalCurve(hw, p))
	}
	return f
}

func (f *fixture) run(t *testing.T, capW float64, sched Schedule, dev *esd.Device, seconds float64) RunResult {
	t.Helper()
	insts := make([]*workload.Instance, len(f.profs))
	for i, p := range f.profs {
		inst, err := workload.NewInstance(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = inst
	}
	r := Runner{
		Config:      Config{HW: f.hw, CapW: capW},
		Profiles:    f.profs,
		Instances:   insts,
		Device:      dev,
		SampleEvery: 1,
	}
	res, err := r.Run(sched, seconds)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSpaceScheduleAdheresAndPredicts(t *testing.T) {
	f := newFixture(t, "STREAM", "kmeans")
	const capW = 100
	plan, err := allocator.Apportion(f.curves, f.hw.DynamicBudget(capW), 0)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Space(Config{HW: f.hw, CapW: capW}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Mode != ModeSpace {
		t.Fatalf("mode = %v, want space", sched.Mode)
	}
	if sched.PeakGridW > capW {
		t.Fatalf("predicted peak %g over cap", sched.PeakGridW)
	}
	res := f.run(t, capW, sched, nil, 30)
	if res.CapViolations != 0 {
		t.Fatalf("%d cap violations", res.CapViolations)
	}
	if math.Abs(res.TotalPerf-sched.TotalPerf) > 0.02 {
		t.Errorf("measured %g vs predicted %g", res.TotalPerf, sched.TotalPerf)
	}
}

func TestTimeScheduleFairSharesAndRestorePenalty(t *testing.T) {
	f := newFixture(t, "X264", "SSSP")
	const capW = 80
	cc := Config{HW: f.hw, CapW: capW}
	fair, err := Time(cc, f.curves, true)
	if err != nil {
		t.Fatal(err)
	}
	if fair.Mode != ModeTime {
		t.Fatalf("mode = %v, want time", fair.Mode)
	}
	if len(fair.Segments) != 2 {
		t.Fatalf("%d segments, want 2", len(fair.Segments))
	}
	if math.Abs(fair.Segments[0].Seconds-fair.Segments[1].Seconds) > 1e-9 {
		t.Errorf("fair duty cycle has unequal slices %g/%g",
			fair.Segments[0].Seconds, fair.Segments[1].Seconds)
	}
	res := f.run(t, capW, fair, nil, 30)
	if res.CapViolations != 0 {
		t.Fatalf("%d cap violations", res.CapViolations)
	}
	if math.Abs(res.TotalPerf-fair.TotalPerf) > 0.03 {
		t.Errorf("measured %g vs predicted %g", res.TotalPerf, fair.TotalPerf)
	}

	// Utility-weighted shares respect the fairness floor.
	weighted, err := Time(cc, f.curves, false)
	if err != nil {
		t.Fatal(err)
	}
	floor := DefaultMinShareFrac / 2 * weighted.PeriodS
	for i, seg := range weighted.Segments {
		if seg.Seconds < floor-1e-9 {
			t.Errorf("segment %d below the fairness floor: %g s", i, seg.Seconds)
		}
	}
}

func TestTimeRejectsImpossibleCaps(t *testing.T) {
	f := newFixture(t, "STREAM", "kmeans")
	// A cap below idle + P_cm leaves no budget even for one at a time.
	if _, err := Time(Config{HW: f.hw, CapW: 70}, f.curves, true); err == nil {
		// 70 W leaves 0 W of dynamic budget: Time must fail.
		t.Fatal("Time accepted a cap with no dynamic budget")
	}
}

func TestESDScheduleMatchesEquation5(t *testing.T) {
	f := newFixture(t, "STREAM", "kmeans")
	const capW = 80
	dev, err := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := ESD(Config{HW: f.hw, CapW: capW}, f.curves, dev)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Mode != ModeESD || len(sched.Segments) != 2 {
		t.Fatalf("unexpected schedule shape: %v, %d segments", sched.Mode, len(sched.Segments))
	}
	off, on := sched.Segments[0], sched.Segments[1]
	if !off.Sleep || off.ChargeW <= 0 {
		t.Fatalf("first segment is not a charging sleep: %+v", off)
	}
	if on.DischargeW <= 0 || len(on.Run) != 2 {
		t.Fatalf("second segment is not a consolidated discharge: %+v", on)
	}
	// Equation (5): OFF/ON = (P_idle + P_cm + sum P_X - cap) / (eta *
	// chargeW), with the ON-phase draw implied by the discharge power.
	eta := dev.Spec().RoundTripEff()
	wantRatio := on.DischargeW / (eta * off.ChargeW)
	gotRatio := off.Seconds / on.Seconds
	if math.Abs(gotRatio-wantRatio)/wantRatio > 1e-6 {
		t.Errorf("OFF/ON = %g, equation (5) wants %g", gotRatio, wantRatio)
	}
	// Peak grid draw is exactly the cap (discharge tops it up).
	if math.Abs(sched.PeakGridW-capW) > 1e-9 {
		t.Errorf("peak grid %g, want the cap %d", sched.PeakGridW, capW)
	}
	res := f.run(t, capW, sched, dev, 60)
	if res.CapViolations != 0 {
		t.Fatalf("%d cap violations", res.CapViolations)
	}
	if math.Abs(res.TotalPerf-sched.TotalPerf) > 0.05 {
		t.Errorf("measured %g vs predicted %g", res.TotalPerf, sched.TotalPerf)
	}
}

func TestESDSustainsStateOfCharge(t *testing.T) {
	f := newFixture(t, "X264", "SSSP")
	dev, err := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := ESD(Config{HW: f.hw, CapW: 80}, f.curves, dev)
	if err != nil {
		t.Fatal(err)
	}
	before := dev.SoC()
	res := f.run(t, 80, sched, dev, 120)
	after := dev.SoC()
	// The schedule is energy-balanced per period: SoC must not drift.
	if math.Abs(after-before) > 0.02 {
		t.Errorf("SoC drifted %g -> %g over 120 s", before, after)
	}
	if res.TotalPerf <= 0 {
		t.Error("no progress under ESD coordination")
	}
}

func TestConsolidatedESDBeatsAlternate(t *testing.T) {
	f := newFixture(t, "STREAM", "kmeans")
	const capW = 70 // below even one application's needs: the Fig 5 regime
	cc := Config{HW: f.hw, CapW: capW}
	devA, _ := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
	alt, err := AlternateESD(cc, f.curves, devA)
	if err != nil {
		t.Fatal(err)
	}
	devC, _ := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
	cons, err := ESD(cc, f.curves, devC)
	if err != nil {
		t.Fatal(err)
	}
	if cons.TotalPerf <= alt.TotalPerf {
		t.Errorf("consolidated ESD (%g) does not beat alternate (%g): P_cm not amortized",
			cons.TotalPerf, alt.TotalPerf)
	}
	// The paper's Fig 5 gain is ~30%; ours should be comfortably
	// positive and of that order.
	if gain := cons.TotalPerf/alt.TotalPerf - 1; gain < 0.15 {
		t.Errorf("consolidation gain %.1f%%, want >= 15%%", gain*100)
	}
}

func TestESDValidation(t *testing.T) {
	f := newFixture(t, "STREAM", "kmeans")
	if _, err := ESD(Config{HW: f.hw, CapW: 80}, f.curves, nil); err == nil {
		t.Error("ESD without a device accepted")
	}
	dev, _ := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
	if _, err := ESD(Config{HW: f.hw, CapW: 45}, f.curves, dev); err == nil {
		t.Error("ESD with no charging headroom accepted")
	}
	if _, err := ESD(Config{HW: f.hw, CapW: 80}, nil, dev); err == nil {
		t.Error("ESD with no applications accepted")
	}
	if _, err := Space(Config{HW: f.hw, CapW: 80}, allocator.Plan{Allocs: []allocator.Allocation{{}}}); err == nil {
		t.Error("Space with an unrunnable allocation accepted")
	}
}

func TestModeStrings(t *testing.T) {
	if ModeSpace.String() != "space" || ModeTime.String() != "time" || ModeESD.String() != "esd" {
		t.Error("mode names changed")
	}
	if Mode(42).String() == "" {
		t.Error("unknown mode has empty name")
	}
}

func TestBrownoutGuardOnDepletedBattery(t *testing.T) {
	f := newFixture(t, "STREAM", "kmeans")
	spec := esd.LeadAcid(20e3)
	dev, err := esd.NewDevice(spec, spec.MinSoC) // empty store
	if err != nil {
		t.Fatal(err)
	}
	sched, err := ESD(Config{HW: f.hw, CapW: 80}, f.curves, dev)
	if err != nil {
		t.Fatal(err)
	}
	res := f.run(t, 80, sched, dev, 60)
	// The guard must keep the grid at/below the cap even while the
	// store cannot cover the ON phases...
	if res.CapViolations != 0 {
		t.Fatalf("%d violations starting from an empty battery (peak %.2f W)",
			res.CapViolations, res.MaxGridW)
	}
	// ...and once charged, progress resumes.
	if res.TotalPerf <= 0 {
		t.Error("no progress after the battery charged")
	}
	if dev.SoC() <= spec.MinSoC {
		t.Error("battery never charged")
	}
}

func TestScheduleString(t *testing.T) {
	f := newFixture(t, "STREAM", "kmeans")
	dev, _ := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
	sched, err := ESD(Config{HW: f.hw, CapW: 80}, f.curves, dev)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.String()
	for _, want := range []string{"esd", "sleep", "discharge", "run(2)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Schedule.String %q missing %q", s, want)
		}
	}
}
