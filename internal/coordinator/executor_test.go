package coordinator

import (
	"testing"

	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

func newExecFixture(t *testing.T) (*Executor, *fixture) {
	t.Helper()
	f := newFixture(t, "STREAM", "kmeans")
	ex, err := NewExecutor(Config{HW: f.hw, CapW: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ex, f
}

func addApps(t *testing.T, ex *Executor, f *fixture) {
	t.Helper()
	for _, p := range f.profs {
		inst, err := workload.NewInstance(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.AddApp(p, inst); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExecutorLifecycle(t *testing.T) {
	ex, f := newExecFixture(t)
	if _, err := ex.Step(0.01); err == nil {
		t.Error("Step without a schedule succeeded")
	}
	addApps(t, ex, f)
	if ex.Apps() != 2 {
		t.Fatalf("Apps = %d, want 2", ex.Apps())
	}

	run := map[int]SegKnob{
		0: {Knobs: f.profs[0].NoCapKnobs(f.hw), Duty: 1},
		1: {Knobs: f.profs[1].NoCapKnobs(f.hw), Duty: 1},
	}
	sched := Schedule{PeriodS: 1, Segments: []Segment{{Seconds: 1, Run: run}}}
	if err := ex.SetSchedule(sched); err != nil {
		t.Fatal(err)
	}
	s, err := ex.Step(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if s.ServerW <= f.hw.PIdleWatts {
		t.Errorf("server draw %g with both applications running", s.ServerW)
	}
	if len(s.AppW) != 2 || s.AppW[0] <= 0 || s.AppW[1] <= 0 {
		t.Errorf("per-app draws %v", s.AppW)
	}

	// Removing an application invalidates the schedule.
	if err := ex.RemoveApp(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.Schedule(); ok {
		t.Error("schedule survived a removal")
	}
	if err := ex.RemoveApp(5); err == nil {
		t.Error("removal of unknown index succeeded")
	}
}

func TestExecutorArrivalKeepsOldSchedule(t *testing.T) {
	ex, f := newExecFixture(t)
	inst, _ := workload.NewInstance(f.profs[0], 0)
	if _, err := ex.AddApp(f.profs[0], inst); err != nil {
		t.Fatal(err)
	}
	sched := Schedule{PeriodS: 1, Segments: []Segment{{
		Seconds: 1,
		Run:     map[int]SegKnob{0: {Knobs: f.profs[0].NoCapKnobs(f.hw), Duty: 1}},
	}}}
	if err := ex.SetSchedule(sched); err != nil {
		t.Fatal(err)
	}
	// A newcomer appends; the old schedule remains valid and the
	// newcomer stays suspended.
	inst2, _ := workload.NewInstance(f.profs[1], 0)
	if _, err := ex.AddApp(f.profs[1], inst2); err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.Schedule(); !ok {
		t.Fatal("schedule dropped on arrival")
	}
	s, err := ex.Step(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if s.AppW[0] <= 0 {
		t.Error("existing application stopped during arrival")
	}
	if s.AppW[1] != 0 {
		t.Error("newcomer ran before re-allocation")
	}
}

func TestExecutorRejectsBadSchedules(t *testing.T) {
	ex, f := newExecFixture(t)
	addApps(t, ex, f)
	if err := ex.SetSchedule(Schedule{}); err == nil {
		t.Error("empty schedule accepted")
	}
	bad := Schedule{PeriodS: 1, Segments: []Segment{{
		Seconds: 1,
		Run:     map[int]SegKnob{7: {Knobs: workload.MinKnobs(f.hw), Duty: 1}},
	}}}
	if err := ex.SetSchedule(bad); err == nil {
		t.Error("schedule referencing an unknown application accepted")
	}
	zero := Schedule{Segments: []Segment{{Seconds: 0}}}
	if err := ex.SetSchedule(zero); err == nil {
		t.Error("zero-period schedule accepted")
	}
}

func TestExecutorIdle(t *testing.T) {
	ex, f := newExecFixture(t)
	addApps(t, ex, f)
	s, err := ex.Idle(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.ServerW != f.hw.PIdleWatts || s.GridW != f.hw.PIdleWatts {
		t.Errorf("idle draw %g/%g, want the idle floor", s.ServerW, s.GridW)
	}
	if ex.Now() != 0.5 {
		t.Errorf("Now = %g after a 0.5 s idle", ex.Now())
	}
}

func TestExecutorCapUpdate(t *testing.T) {
	ex, _ := newExecFixture(t)
	ex.SetCap(85)
	if ex.Cap() != 85 {
		t.Errorf("Cap = %g after SetCap(85)", ex.Cap())
	}
}

func TestRunnerValidation(t *testing.T) {
	f := newFixture(t, "STREAM")
	r := Runner{Config: Config{HW: f.hw, CapW: 100}}
	if _, err := r.Run(Schedule{}, 1); err == nil {
		t.Error("runner without applications accepted")
	}
	inst, _ := workload.NewInstance(f.profs[0], 0)
	r = Runner{
		Config:    Config{HW: simhw.DefaultConfig(), CapW: 100},
		Profiles:  f.profs,
		Instances: []*workload.Instance{inst},
	}
	if _, err := r.Run(Schedule{}, 1); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestExecutorHeartbeatsTrackDeliveredRate(t *testing.T) {
	ex, f := newExecFixture(t)
	addApps(t, ex, f)
	run := map[int]SegKnob{
		0: {Knobs: f.profs[0].NoCapKnobs(f.hw), Duty: 1},
		1: {Knobs: f.profs[1].NoCapKnobs(f.hw), Duty: 1},
	}
	sched := Schedule{PeriodS: 1, Segments: []Segment{{Seconds: 1, Run: run}}}
	if err := ex.SetSchedule(sched); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ { // 3 s at 10 ms
		if _, err := ex.Step(0.01); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range f.profs {
		rate, err := ex.HeartbeatRate(i)
		if err != nil {
			t.Fatal(err)
		}
		want := p.NoCapRate(f.hw)
		if rate < want*0.9 || rate > want*1.1 {
			t.Errorf("%s: heartbeat rate %.3f, uncapped model rate %.3f", p.Name, rate, want)
		}
	}
	if _, err := ex.HeartbeatRate(9); err == nil {
		t.Error("rate of unknown application accepted")
	}
}
