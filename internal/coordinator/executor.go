package coordinator

import (
	"fmt"
	"math"

	"powerstruggle/internal/esd"
	"powerstruggle/internal/heartbeat"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

// Executor drives one simulated server through coordinator schedules over
// continuous time, across application arrivals and departures and
// schedule changes — the execution half of the paper's runtime that the
// Accountant steers.
type Executor struct {
	cfg Config
	srv *simhw.Server
	dev *esd.Device
	hb  *heartbeat.Monitor

	profiles  []*workload.Profile
	instances []*workload.Instance
	slots     []simhw.SlotID

	sched       Schedule
	haveSched   bool
	pos         float64 // position within the schedule period
	bounds      []float64
	restoreLeft []float64
	prevRunning []bool

	now float64
}

// NewExecutor builds an executor for one server. dev may be nil. Every
// application's delivered work is published to the executor's heartbeat
// monitor under "<name>#<index>", the measurement interface the paper's
// runtime reads performance from.
func NewExecutor(cfg Config, dev *esd.Device) (*Executor, error) {
	srv, err := simhw.NewServer(cfg.HW)
	if err != nil {
		return nil, err
	}
	return &Executor{cfg: cfg, srv: srv, dev: dev, hb: heartbeat.NewMonitor()}, nil
}

// Heartbeats exposes the executor's heartbeat monitor.
func (e *Executor) Heartbeats() *heartbeat.Monitor { return e.hb }

// HeartbeatRate returns application i's windowed heartbeat rate
// (beats/second) as of now.
func (e *Executor) HeartbeatRate(i int) (float64, error) {
	if i < 0 || i >= len(e.profiles) {
		return 0, fmt.Errorf("coordinator: HeartbeatRate(%d) with %d applications", i, len(e.profiles))
	}
	return e.hb.Rate(e.hbName(i), e.now)
}

// hbName is application i's heartbeat producer name.
func (e *Executor) hbName(i int) string {
	return fmt.Sprintf("%s#%d", e.profiles[i].Name, i)
}

// SetCap updates the server power cap (the paper's event E1 actuation).
func (e *Executor) SetCap(w float64) { e.cfg.CapW = w }

// Cap returns the current power cap.
func (e *Executor) Cap() float64 { return e.cfg.CapW }

// Config returns the executor's coordinator configuration.
func (e *Executor) Config() Config { return e.cfg }

// Device returns the attached ESD, or nil.
func (e *Executor) Device() *esd.Device { return e.dev }

// Now returns seconds of simulated time.
func (e *Executor) Now() float64 { return e.now }

// AddApp places an application on the server and returns its index.
// The caller must install a fresh schedule before the next Step.
func (e *Executor) AddApp(p *workload.Profile, inst *workload.Instance) (int, error) {
	if p == nil || inst == nil {
		return 0, fmt.Errorf("coordinator: AddApp needs a profile and an instance")
	}
	id, err := e.srv.Claim(p.MaxCores)
	if err != nil {
		return 0, fmt.Errorf("coordinator: placing %s: %w", p.Name, err)
	}
	e.profiles = append(e.profiles, p)
	e.instances = append(e.instances, inst)
	e.slots = append(e.slots, id)
	e.restoreLeft = append(e.restoreLeft, 0)
	e.prevRunning = append(e.prevRunning, false)
	idx := len(e.profiles) - 1
	if err := e.hb.Register(e.hbName(idx), hbWindowS); err != nil {
		return 0, err
	}
	// An installed schedule stays valid: it references only the older
	// indices, so the newcomer simply stays suspended until the next
	// plan — exactly the paper's behaviour during re-allocation.
	return idx, nil
}

// RemoveApp releases an application's resources. Remaining applications'
// indices compact down; the caller must install a fresh schedule before
// the next Step.
func (e *Executor) RemoveApp(i int) error {
	if i < 0 || i >= len(e.profiles) {
		return fmt.Errorf("coordinator: RemoveApp(%d) with %d applications", i, len(e.profiles))
	}
	if err := e.srv.Release(e.slots[i]); err != nil {
		return err
	}
	// Heartbeat producers are index-suffixed; drop them all and
	// re-register under the compacted indices.
	for j := range e.profiles {
		e.hb.Unregister(e.hbName(j))
	}
	e.profiles = append(e.profiles[:i], e.profiles[i+1:]...)
	e.instances = append(e.instances[:i], e.instances[i+1:]...)
	e.slots = append(e.slots[:i], e.slots[i+1:]...)
	e.restoreLeft = append(e.restoreLeft[:i], e.restoreLeft[i+1:]...)
	e.prevRunning = append(e.prevRunning[:i], e.prevRunning[i+1:]...)
	for j := range e.profiles {
		if err := e.hb.Register(e.hbName(j), hbWindowS); err != nil {
			return err
		}
	}
	e.haveSched = false
	return nil
}

// hbWindowS is the heartbeat rate-averaging window.
const hbWindowS = 2.0

// Apps returns the active application count.
func (e *Executor) Apps() int { return len(e.profiles) }

// Profile returns the i-th application's profile.
func (e *Executor) Profile(i int) *workload.Profile { return e.profiles[i] }

// Instance returns the i-th application's instance.
func (e *Executor) Instance(i int) *workload.Instance { return e.instances[i] }

// SetSchedule installs a schedule. Segment Run maps index the current
// application order.
func (e *Executor) SetSchedule(s Schedule) error {
	if len(s.Segments) == 0 {
		return fmt.Errorf("coordinator: empty schedule")
	}
	period := s.PeriodS
	if period <= 0 {
		for _, seg := range s.Segments {
			period += seg.Seconds
		}
		s.PeriodS = period
	}
	if period <= 0 {
		return fmt.Errorf("coordinator: schedule has zero period")
	}
	for _, seg := range s.Segments {
		for i := range seg.Run {
			if i < 0 || i >= len(e.profiles) {
				return fmt.Errorf("coordinator: schedule references application %d of %d", i, len(e.profiles))
			}
		}
	}
	e.sched = s
	e.haveSched = true
	e.pos = 0
	e.bounds = make([]float64, len(s.Segments)+1)
	for i, seg := range s.Segments {
		e.bounds[i+1] = e.bounds[i] + seg.Seconds
	}
	return nil
}

// Schedule returns the installed schedule (zero value if none).
func (e *Executor) Schedule() (Schedule, bool) { return e.sched, e.haveSched }

// Idle advances time with every application suspended and no ESD
// activity — the state between an arrival and the first plan.
func (e *Executor) Idle(dt float64) (Sample, error) {
	for i := range e.profiles {
		if err := e.srv.SetRunning(e.slots[i], false); err != nil {
			return Sample{}, err
		}
		e.prevRunning[i] = false
	}
	e.srv.Step(dt)
	if e.dev != nil {
		e.dev.Idle(dt)
	}
	e.now += dt
	s := Sample{T: e.now, ServerW: e.cfg.HW.PIdleWatts, GridW: e.cfg.HW.PIdleWatts, AppW: make([]float64, len(e.profiles))}
	if e.dev != nil {
		s.SoC = e.dev.SoC()
	}
	return s, nil
}

// Step advances the installed schedule by dt seconds and returns the
// step's sample. Applications with finite work may complete during the
// step; the caller detects that via their instances.
func (e *Executor) Step(dt float64) (Sample, error) {
	if !e.haveSched {
		return Sample{}, fmt.Errorf("coordinator: no schedule installed")
	}
	if dt <= 0 {
		return Sample{}, fmt.Errorf("coordinator: step of %g s", dt)
	}
	seg := e.segmentAt(e.pos)

	// Brownout guard: an ON phase that banks on discharge power the
	// device cannot deliver would push the grid over the cap. When the
	// store cannot cover this step, the applications stay suspended and
	// the step charges instead — the emergency clamp a RAPL hard limit
	// provides on real hardware.
	if seg.DischargeW > 0 && e.dev != nil && e.dev.AvailableJ() < seg.DischargeW*dt {
		charge := e.cfg.HW.ChargeHeadroom(e.cfg.CapW)
		seg = Segment{Seconds: seg.Seconds, Sleep: true, ChargeW: charge}
	}

	// Actuate every application for this segment.
	for i := range e.profiles {
		sk, running := seg.Run[i]
		if running {
			if !e.prevRunning[i] && seg.Restore[i] {
				e.restoreLeft[i] = e.cfg.restore()
			}
			eff := e.instances[i].Effective()
			k := sk.Knobs.Clamp(e.cfg.HW, eff.MaxCores)
			if err := e.srv.SetKnobs(e.slots[i], k.FreqGHz, k.Cores, k.MemWatts); err != nil {
				return Sample{}, err
			}
			if err := e.srv.SetLoad(e.slots[i], eff.CPUActivity, eff.MemDrawWatts(e.cfg.HW, k)); err != nil {
				return Sample{}, err
			}
		}
		if err := e.srv.SetRunning(e.slots[i], running); err != nil {
			return Sample{}, err
		}
		e.prevRunning[i] = running
	}
	if seg.Sleep {
		if err := e.srv.Sleep(); err != nil {
			return Sample{}, err
		}
	}

	// Advance applications and compose duty-averaged power.
	appW := make([]float64, len(e.profiles))
	serverW := e.cfg.HW.PIdleWatts
	anyRun := false
	for i := range e.profiles {
		sk, running := seg.Run[i]
		duty := 1.0
		if running && sk.Duty > 0 && sk.Duty < 1 {
			duty = sk.Duty
		}
		progressDt := dt * duty
		if e.restoreLeft[i] > 0 {
			burn := math.Min(e.restoreLeft[i], progressDt)
			e.restoreLeft[i] -= burn
			progressDt -= burn
		}
		if running && !e.srv.Waking() {
			k := sk.Knobs.Clamp(e.cfg.HW, e.instances[i].Effective().MaxCores)
			delivered := e.instances[i].Advance(e.cfg.HW, k, true, progressDt)
			if delivered > 0 {
				if err := e.hb.Beat(e.hbName(i), e.now+dt, delivered); err != nil {
					return Sample{}, err
				}
			}
		}
		w, err := e.srv.AppPowerWatts(e.slots[i])
		if err != nil {
			return Sample{}, err
		}
		appW[i] = w * duty
		if running && !seg.Sleep {
			anyRun = true
			serverW += appW[i]
		}
	}
	if anyRun {
		serverW += e.cfg.HW.PCmWatts
	}
	e.srv.Step(dt)

	gridW := serverW
	soc := 0.0
	if e.dev != nil {
		switch {
		case seg.ChargeW > 0:
			gridW += e.dev.Charge(seg.ChargeW, dt)
		case seg.DischargeW > 0:
			gridW -= e.dev.Discharge(seg.DischargeW, dt)
		default:
			e.dev.Idle(dt)
		}
		soc = e.dev.SoC()
	}

	e.pos = math.Mod(e.pos+dt, e.sched.PeriodS)
	e.now += dt
	return Sample{T: e.now, ServerW: serverW, GridW: gridW, SoC: soc, AppW: appW}, nil
}

// segmentAt locates the segment containing period position pos.
func (e *Executor) segmentAt(pos float64) Segment {
	for i := range e.sched.Segments {
		if pos < e.bounds[i+1]-1e-12 {
			return e.sched.Segments[i]
		}
	}
	return e.sched.Segments[len(e.sched.Segments)-1]
}
