package coordinator

import (
	"fmt"
	"math"

	"powerstruggle/internal/esd"
	"powerstruggle/internal/faults"
	"powerstruggle/internal/heartbeat"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

// Platform is the slice of the simulated server the executor actuates
// and observes. Both *simhw.Server (the fault-free fast path) and
// *faults.Server (the injected-fault wrapper) satisfy it, so the
// executor's hardening is exercised against real failure modes without
// the fault-free path paying anything.
type Platform interface {
	Claim(cores int) (simhw.SlotID, error)
	Release(id simhw.SlotID) error
	SetKnobs(id simhw.SlotID, freqGHz float64, cores int, memWatts float64) error
	SetLoad(id simhw.SlotID, activity, memDrawWatts float64) error
	SetRunning(id simhw.SlotID, running bool) error
	Sleep() error
	Slot(id simhw.SlotID) (simhw.SlotState, error)
	AppPowerWatts(id simhw.SlotID) (float64, error)
	Step(dt float64) float64
	Waking() bool
}

// BeatSink is where the executor publishes delivered work. The bare
// monitor delivers every beat; the fault wrapper loses some.
type BeatSink interface {
	Beat(name string, t, count float64) error
}

// Store is the slice of the ESD the executor drives. Both *esd.Device
// and *faults.Device satisfy it.
type Store interface {
	SoC() float64
	AvailableJ() float64
	Charge(watts, dt float64) float64
	Discharge(watts, dt float64) float64
	Idle(dt float64)
}

// Executor drives one simulated server through coordinator schedules over
// continuous time, across application arrivals and departures and
// schedule changes — the execution half of the paper's runtime that the
// Accountant steers. With fault injection enabled it is also the
// hardened mediation loop: transient actuation failures are retried with
// exponential backoff, and a cap-breach watchdog clamps the server to an
// emergency floor when measured draw stays over the cap.
type Executor struct {
	cfg Config
	srv Platform
	raw *simhw.Server
	dev *esd.Device
	// store and beats are the (possibly fault-wrapped) actuation views
	// of dev and hb; fault-free they alias them exactly.
	store Store
	hb    *heartbeat.Monitor
	beats BeatSink
	inj   *faults.Injector
	flog  *faults.Log

	profiles  []*workload.Profile
	instances []*workload.Instance
	slots     []simhw.SlotID

	sched       Schedule
	haveSched   bool
	pos         float64 // position within the schedule period
	bounds      []float64
	restoreLeft []float64
	prevRunning []bool

	// Per-application retry backoff: after retries exhaust, the
	// actuator is left alone until retryAt, doubling backoffS each
	// consecutive failure (bounded) — the standard pressure-relief for
	// a flapping actuator.
	backoffS []float64
	retryAt  []float64

	wd watchdog

	tel execTel

	now float64
}

// NewExecutor builds an executor for one server. dev may be nil. Every
// application's delivered work is published to the executor's heartbeat
// monitor under "<name>#<index>", the measurement interface the paper's
// runtime reads performance from.
func NewExecutor(cfg Config, dev *esd.Device) (*Executor, error) {
	raw, err := simhw.NewServer(cfg.HW)
	if err != nil {
		return nil, err
	}
	e := &Executor{cfg: cfg, raw: raw, dev: dev, hb: heartbeat.NewMonitor()}
	e.srv = raw
	e.beats = e.hb
	if dev != nil {
		e.store = dev
	}
	e.tel = newExecTel(cfg.Telemetry)
	e.nameTenantTracks()
	e.wd.recoverAt = -1
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		inj, err := faults.NewInjector(*cfg.Faults)
		if err != nil {
			return nil, err
		}
		now := func() float64 { return e.now }
		e.inj = inj
		e.flog = inj.Log()
		if e.tel.enabled {
			injected := e.tel.injected
			inj.SetObserver(func(kind string) { injected.With(kind).Inc() })
		}
		e.srv = faults.NewServer(inj, raw)
		e.beats = faults.NewHeartbeats(inj, e.hb, now)
		if dev != nil {
			e.store = faults.NewDevice(inj, dev, now)
		}
		e.wd.enabled = true
	}
	if cfg.Watchdog {
		e.wd.enabled = true
	}
	if e.wd.enabled && e.flog == nil {
		e.flog = faults.NewLog(0)
	}
	return e, nil
}

// Heartbeats exposes the executor's heartbeat monitor.
func (e *Executor) Heartbeats() *heartbeat.Monitor { return e.hb }

// HeartbeatRate returns application i's windowed heartbeat rate
// (beats/second) as of now.
func (e *Executor) HeartbeatRate(i int) (float64, error) {
	if i < 0 || i >= len(e.profiles) {
		return 0, fmt.Errorf("coordinator: HeartbeatRate(%d) with %d applications", i, len(e.profiles))
	}
	return e.hb.Rate(e.hbName(i), e.now)
}

// HeartbeatTotal returns application i's lifetime delivered beat count
// as the monitor received it — the signal the accountant watches for
// telemetry loss.
func (e *Executor) HeartbeatTotal(i int) (float64, error) {
	if i < 0 || i >= len(e.profiles) {
		return 0, fmt.Errorf("coordinator: HeartbeatTotal(%d) with %d applications", i, len(e.profiles))
	}
	return e.hb.Total(e.hbName(i))
}

// hbName is application i's heartbeat producer name.
func (e *Executor) hbName(i int) string {
	return fmt.Sprintf("%s#%d", e.profiles[i].Name, i)
}

// SetCap updates the server power cap (the paper's event E1 actuation).
func (e *Executor) SetCap(w float64) { e.cfg.CapW = w }

// Cap returns the current power cap.
func (e *Executor) Cap() float64 { return e.cfg.CapW }

// Config returns the executor's coordinator configuration.
func (e *Executor) Config() Config { return e.cfg }

// Device returns the attached ESD, or nil.
func (e *Executor) Device() *esd.Device { return e.dev }

// Now returns seconds of simulated time.
func (e *Executor) Now() float64 { return e.now }

// AddApp places an application on the server and returns its index.
// The caller must install a fresh schedule before the next Step.
func (e *Executor) AddApp(p *workload.Profile, inst *workload.Instance) (int, error) {
	if p == nil || inst == nil {
		return 0, fmt.Errorf("coordinator: AddApp needs a profile and an instance")
	}
	id, err := e.srv.Claim(p.MaxCores)
	if err != nil {
		return 0, fmt.Errorf("coordinator: placing %s: %w", p.Name, err)
	}
	e.profiles = append(e.profiles, p)
	e.instances = append(e.instances, inst)
	e.slots = append(e.slots, id)
	e.restoreLeft = append(e.restoreLeft, 0)
	e.prevRunning = append(e.prevRunning, false)
	e.backoffS = append(e.backoffS, 0)
	e.retryAt = append(e.retryAt, 0)
	idx := len(e.profiles) - 1
	if err := e.hb.Register(e.hbName(idx), hbWindowS); err != nil {
		return 0, err
	}
	e.nameTenantTracks()
	// An installed schedule stays valid: it references only the older
	// indices, so the newcomer simply stays suspended until the next
	// plan — exactly the paper's behaviour during re-allocation.
	return idx, nil
}

// RemoveApp releases an application's resources. Remaining applications'
// indices compact down; the caller must install a fresh schedule before
// the next Step.
func (e *Executor) RemoveApp(i int) error {
	if i < 0 || i >= len(e.profiles) {
		return fmt.Errorf("coordinator: RemoveApp(%d) with %d applications", i, len(e.profiles))
	}
	if err := e.srv.Release(e.slots[i]); err != nil {
		return err
	}
	// Heartbeat producers are index-suffixed; drop them all and
	// re-register under the compacted indices.
	for j := range e.profiles {
		e.hb.Unregister(e.hbName(j))
	}
	e.profiles = append(e.profiles[:i], e.profiles[i+1:]...)
	e.instances = append(e.instances[:i], e.instances[i+1:]...)
	e.slots = append(e.slots[:i], e.slots[i+1:]...)
	e.restoreLeft = append(e.restoreLeft[:i], e.restoreLeft[i+1:]...)
	e.prevRunning = append(e.prevRunning[:i], e.prevRunning[i+1:]...)
	e.backoffS = append(e.backoffS[:i], e.backoffS[i+1:]...)
	e.retryAt = append(e.retryAt[:i], e.retryAt[i+1:]...)
	for j := range e.profiles {
		if err := e.hb.Register(e.hbName(j), hbWindowS); err != nil {
			return err
		}
	}
	e.nameTenantTracks()
	e.haveSched = false
	return nil
}

// hbWindowS is the heartbeat rate-averaging window.
const hbWindowS = 2.0

// Apps returns the active application count.
func (e *Executor) Apps() int { return len(e.profiles) }

// Profile returns the i-th application's profile.
func (e *Executor) Profile(i int) *workload.Profile { return e.profiles[i] }

// Instance returns the i-th application's instance.
func (e *Executor) Instance(i int) *workload.Instance { return e.instances[i] }

// SetSchedule installs a schedule. Segment Run maps index the current
// application order.
func (e *Executor) SetSchedule(s Schedule) error {
	if len(s.Segments) == 0 {
		return fmt.Errorf("coordinator: empty schedule")
	}
	period := s.PeriodS
	if period <= 0 {
		for _, seg := range s.Segments {
			period += seg.Seconds
		}
		s.PeriodS = period
	}
	if period <= 0 {
		return fmt.Errorf("coordinator: schedule has zero period")
	}
	for _, seg := range s.Segments {
		for i := range seg.Run {
			if i < 0 || i >= len(e.profiles) {
				return fmt.Errorf("coordinator: schedule references application %d of %d", i, len(e.profiles))
			}
		}
	}
	e.sched = s
	e.haveSched = true
	e.pos = 0
	e.bounds = make([]float64, len(s.Segments)+1)
	for i, seg := range s.Segments {
		e.bounds[i+1] = e.bounds[i] + seg.Seconds
	}
	return nil
}

// Schedule returns the installed schedule (zero value if none).
func (e *Executor) Schedule() (Schedule, bool) { return e.sched, e.haveSched }

// Idle advances time with every application suspended and no ESD
// activity — the state between an arrival and the first plan.
func (e *Executor) Idle(dt float64) (Sample, error) {
	for i := range e.profiles {
		ok, err := e.writeRunning(i, false)
		if err != nil {
			return Sample{}, err
		}
		if ok {
			e.prevRunning[i] = false
		}
		// A degraded suspend leaves the task running; the next Step's
		// watchdog accounting sees its draw.
	}
	e.srv.Step(dt)
	if e.store != nil {
		e.store.Idle(dt)
	}
	e.now += dt
	s := Sample{T: e.now, ServerW: e.cfg.HW.PIdleWatts, GridW: e.cfg.HW.PIdleWatts, AppW: make([]float64, len(e.profiles))}
	if e.store != nil {
		s.SoC = e.store.SoC()
	}
	return s, nil
}

// Step advances the installed schedule by dt seconds and returns the
// step's sample. Applications with finite work may complete during the
// step; the caller detects that via their instances.
func (e *Executor) Step(dt float64) (Sample, error) {
	if !e.haveSched {
		return Sample{}, fmt.Errorf("coordinator: no schedule installed")
	}
	if dt <= 0 {
		return Sample{}, fmt.Errorf("coordinator: step of %g s", dt)
	}
	seg := e.segmentAt(e.pos)

	// Brownout guard: an ON phase that banks on discharge power the
	// device cannot deliver would push the grid over the cap. When the
	// store cannot cover this step, the applications stay suspended and
	// the step charges instead — the emergency clamp a RAPL hard limit
	// provides on real hardware.
	if seg.DischargeW > 0 && e.store != nil && e.store.AvailableJ() < seg.DischargeW*dt {
		charge := e.cfg.HW.ChargeHeadroom(e.cfg.CapW)
		seg = Segment{Seconds: seg.Seconds, Sleep: true, ChargeW: charge}
	}

	// Watchdog bookkeeping from previous intervals: finish an expired
	// recovery ramp, engage the clamp when the breach run hit K.
	if e.wd.enabled {
		e.watchdogPrepare()
	}

	// Actuate every application for this segment.
	effRun, err := e.actuateSegment(seg)
	if err != nil {
		return Sample{}, err
	}

	// Advance applications and compose duty-averaged power. Power is
	// gated on the platform's measured per-slot draw (w > 0), not on
	// schedule intent: a task whose suspend was lost keeps drawing and
	// must stay visible to the watchdog.
	appW := make([]float64, len(e.profiles))
	serverW := e.cfg.HW.PIdleWatts
	anyRun := false
	for i := range e.profiles {
		sk, scheduled := seg.Run[i]
		duty := 1.0
		if scheduled && sk.Duty > 0 && sk.Duty < 1 {
			duty = sk.Duty
		}
		progressDt := dt * duty
		if e.restoreLeft[i] > 0 {
			burn := math.Min(e.restoreLeft[i], progressDt)
			e.restoreLeft[i] -= burn
			progressDt -= burn
		}
		if scheduled && effRun[i] && !e.srv.Waking() {
			k := e.knobsFor(i, sk)
			delivered := e.instances[i].Advance(e.cfg.HW, k, true, progressDt)
			if delivered > 0 {
				if err := e.beats.Beat(e.hbName(i), e.now+dt, delivered); err != nil {
					return Sample{}, err
				}
			}
		}
		w, err := e.srv.AppPowerWatts(e.slots[i])
		if err != nil {
			return Sample{}, err
		}
		appW[i] = w * duty
		if w > 0 {
			anyRun = true
			serverW += appW[i]
		}
	}
	if anyRun {
		serverW += e.cfg.HW.PCmWatts
	}
	e.srv.Step(dt)

	gridW := serverW
	soc := 0.0
	if e.store != nil {
		switch {
		case e.wd.engaged && e.wd.suspend:
			// Emergency suspend: no scheduled ESD activity either.
			e.store.Idle(dt)
		case seg.ChargeW > 0:
			gridW += e.store.Charge(seg.ChargeW, dt)
		case seg.DischargeW > 0:
			gridW -= e.store.Discharge(seg.DischargeW, dt)
		default:
			e.store.Idle(dt)
		}
		soc = e.store.SoC()
	}

	// Cap adherence is about grid draw: ESD discharge legitimately lets
	// the server exceed the cap while the grid stays under it.
	if e.wd.enabled {
		e.watchdogObserve(gridW)
	}

	if e.tel.enabled {
		e.tel.intervals.Inc()
		e.tel.gridW.Set(gridW)
		e.tel.serverW.Set(serverW)
		e.tel.capW.Set(e.cfg.CapW)
		e.tel.soc.Set(soc)
		if over := gridW - e.cfg.CapW; over > capSlack {
			e.tel.overshootW.Observe(over)
			e.tel.breachSteps.Inc()
		}
		e.emitStepSpans(e.now, dt, seg, effRun, appW, gridW, serverW, soc)
	}

	e.pos = math.Mod(e.pos+dt, e.sched.PeriodS)
	e.now += dt
	return Sample{T: e.now, ServerW: serverW, GridW: gridW, SoC: soc, AppW: appW}, nil
}

// knobsFor resolves application i's knobs for this step: the schedule's
// knobs clamped to the hardware, overridden to the emergency floor while
// the watchdog clamp is engaged, and frequency-limited along the
// recovery ramp after a release.
func (e *Executor) knobsFor(i int, sk SegKnob) workload.Knobs {
	k := sk.Knobs.Clamp(e.cfg.HW, e.instances[i].Effective().MaxCores)
	switch {
	case e.wd.engaged && !e.wd.suspend:
		k.FreqGHz = e.cfg.HW.FreqMinGHz
		k.MemWatts = e.cfg.HW.MemMinWatts
	case e.wd.recoverAt >= 0:
		frac := (e.now - e.wd.recoverAt) / e.cfg.watchdogRecovery()
		f := e.cfg.HW.FreqMinGHz + frac*(k.FreqGHz-e.cfg.HW.FreqMinGHz)
		k.FreqGHz = e.cfg.HW.ClampFreq(f)
	}
	return k
}

// actuateSegment applies one segment's run/suspend/knob pattern and
// returns each application's effective running state. While the
// watchdog clamp is engaged it substitutes the emergency pattern.
func (e *Executor) actuateSegment(seg Segment) ([]bool, error) {
	if e.wd.engaged {
		return e.clampSegment(seg)
	}
	n := len(e.profiles)
	effRun := make([]bool, n)
	for i := 0; i < n; i++ {
		sk, running := seg.Run[i]
		if e.inj != nil && e.now < e.retryAt[i] {
			// Backing off a flapping actuator: hold the previous state.
			effRun[i] = e.prevRunning[i]
			continue
		}
		knobsOK := true
		if running {
			if !e.prevRunning[i] && seg.Restore[i] {
				e.restoreLeft[i] = e.cfg.restore()
			}
			eff := e.instances[i].Effective()
			k := e.knobsFor(i, sk)
			if err := e.writeKnobs(i, k, eff); err != nil {
				if !faults.IsTransient(err) {
					return nil, err
				}
				// Degraded: the slot runs on with stale knobs.
				knobsOK = false
			}
		}
		runOK, err := e.writeRunning(i, running)
		if err != nil {
			return nil, err
		}
		if runOK {
			effRun[i] = running
		} else {
			effRun[i] = e.prevRunning[i]
		}
		if knobsOK && runOK && e.backoffS[i] > 0 {
			e.backoffS[i] = 0
			e.recordEvent("actuation-recovered", e.hbName(i), "actuator healthy again; backoff cleared")
		}
		e.prevRunning[i] = effRun[i]
	}
	if seg.Sleep {
		anyRunning := false
		for _, r := range effRun {
			if r {
				anyRunning = true
			}
		}
		if anyRunning {
			// Only reachable after a degraded suspend: PC6 entry would
			// legitimately fail while a task still runs, so stay awake
			// and let the watchdog see the draw.
			e.recordEvent("sleep-skip", "", "PC6 entry skipped: a degraded suspend left a task running")
		} else if err := e.writeSleep(); err != nil {
			return nil, err
		}
	}
	return effRun, nil
}

// segmentAt locates the segment containing period position pos.
func (e *Executor) segmentAt(pos float64) Segment {
	for i := range e.sched.Segments {
		if pos < e.bounds[i+1]-1e-12 {
			return e.sched.Segments[i]
		}
	}
	return e.sched.Segments[len(e.sched.Segments)-1]
}
