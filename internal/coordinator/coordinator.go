// Package coordinator implements the paper's Coordinator: it refines the
// PowerAllocator's output into an executable schedule that keeps the
// server inside its power cap at every instant, coordinating application
// power draw in space (simultaneous throttling, R3a), in time (duty
// cycling, R3b), or in both by banking energy in an ESD while the sockets
// deep-sleep and over-drawing the cap from the battery while every
// application runs at once, amortizing the non-convex P_cm (R4).
//
// The Executor drives these schedules on the simulated platform every
// ~10 ms control interval, hardened against injected faults (bounded
// retries, the cap-breach watchdog — see internal/faults) and, when a
// telemetry.Hub is attached, fully instrumented: per-knob actuation
// latencies, watchdog and retry counters, and one interval span with
// per-tenant actuate slices on the trace timeline (docs/METRICS.md).
// Attaching telemetry never changes a run's outputs.
package coordinator

import (
	"fmt"
	"math"

	"powerstruggle/internal/allocator"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/faults"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/workload"
)

// Mode identifies which of the paper's coordination strategies a schedule
// uses.
type Mode int

// The coordination strategies of Section III-B.
const (
	// ModeSpace throttles all applications simultaneously (R3a); state
	// stays warm in private caches.
	ModeSpace Mode = iota
	// ModeTime multiplexes applications in time with alternate duty
	// cycling (R3b); suspended applications lose private-cache state.
	ModeTime
	// ModeESD alternates whole-server sleep (banking energy) with
	// simultaneous full-speed execution of every application, supplying
	// the excess over the cap from storage (R4).
	ModeESD
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSpace:
		return "space"
	case ModeTime:
		return "time"
	case ModeESD:
		return "esd"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SegKnob is one application's actuation inside a segment.
type SegKnob struct {
	Knobs workload.Knobs
	// Duty is the fraction of the segment the application actually
	// executes (RAPL idle-injection inside an otherwise steady
	// segment); 1 for normal running.
	Duty float64
}

// Segment is one interval of a schedule's period.
type Segment struct {
	// Seconds is the segment length.
	Seconds float64
	// Sleep drives the sockets into PC6 for the segment (all Run maps
	// must be empty).
	Sleep bool
	// Run maps application index to its actuation; absent applications
	// are suspended.
	Run map[int]SegKnob
	// ChargeW and DischargeW are the ESD rail powers during the
	// segment (at most one may be non-zero).
	ChargeW    float64
	DischargeW float64
	// Restore marks the applications that resume in this segment after
	// a suspension and must pay the cold-cache restore penalty.
	Restore map[int]bool
}

// Schedule is the Coordinator's executable output: a periodic timeline
// plus its predicted steady-state performance.
type Schedule struct {
	Mode     Mode
	PeriodS  float64
	Segments []Segment
	// AppPerf is the predicted per-application normalized performance
	// (time-averaged over the period, restore overheads included).
	AppPerf []float64
	// AppBudgetW is the time-averaged power apportioned to each
	// application.
	AppBudgetW []float64
	// TotalPerf is the paper's objective (1) under this schedule.
	TotalPerf float64
	// PeakGridW is the highest instantaneous grid draw of any segment;
	// adherence means PeakGridW <= the cap.
	PeakGridW float64
}

// String renders the schedule compactly: mode, period, and each
// segment's role.
func (s Schedule) String() string {
	out := fmt.Sprintf("%s period=%.2fs", s.Mode, s.PeriodS)
	for _, seg := range s.Segments {
		switch {
		case seg.Sleep:
			out += fmt.Sprintf(" [sleep %.2fs charge=%.1fW]", seg.Seconds, seg.ChargeW)
		case seg.DischargeW > 0:
			out += fmt.Sprintf(" [run(%d) %.2fs discharge=%.1fW]", len(seg.Run), seg.Seconds, seg.DischargeW)
		default:
			out += fmt.Sprintf(" [run(%d) %.2fs]", len(seg.Run), seg.Seconds)
		}
	}
	return out
}

// Config parameterizes the coordinator.
type Config struct {
	// HW is the platform.
	HW simhw.Config
	// CapW is the server power cap.
	CapW float64
	// RestoreSeconds is the dead time an application pays when resumed
	// after suspension (cold private caches / page restore); the
	// drawback of time coordination the paper calls out.
	RestoreSeconds float64
	// PeriodSeconds is the duty-cycle period for ModeTime; 0 means
	// DefaultPeriodS.
	PeriodSeconds float64
	// MinShare is the fairness floor of an application's time share in
	// utility-weighted duty cycling, as a fraction of the fair share.
	// 0 means DefaultMinShareFrac.
	MinShare float64
	// Faults, when non-nil with any rate enabled, wraps the platform,
	// heartbeat delivery, and ESD telemetry in the seed-driven fault
	// injector and arms the retry/watchdog machinery. nil (or an
	// all-zero config) leaves the fault-free fast path untouched — the
	// executor then drives the bare simulated server with no wrappers,
	// no random draws, and bit-identical numerical results.
	Faults *faults.Config
	// Watchdog forces the cap-breach watchdog on even without injected
	// faults (it arms automatically when Faults is enabled).
	Watchdog bool
	// WatchdogK is both the number of consecutive over-cap control
	// intervals tolerated before the emergency clamp engages and the
	// number of consecutive clean intervals required to release it;
	// 0 means DefaultWatchdogK.
	WatchdogK int
	// WatchdogRecoveryS is the ramp length over which released
	// applications regain their scheduled frequency after a clamp;
	// 0 means DefaultWatchdogRecoveryS.
	WatchdogRecoveryS float64
	// MaxRetries bounds the immediate same-step retries of a
	// transiently failed actuation; 0 means DefaultMaxRetries.
	MaxRetries int
	// Telemetry, when non-nil, instruments the executor: per-interval
	// control-loop spans, actuation latency/retry/watchdog metrics, and
	// injected-vs-observed fault counters all land in the hub. nil runs
	// the uninstrumented fast path — the numerical results are
	// bit-identical either way (telemetry only observes, never steers).
	Telemetry *telemetry.Hub
}

// Defaults for Config.
const (
	DefaultPeriodS      = 2.0
	DefaultRestoreS     = 0.06
	DefaultMinShareFrac = 0.5
	// DefaultWatchdogK tolerates this many consecutive over-cap
	// control intervals before the emergency clamp engages.
	DefaultWatchdogK = 5
	// DefaultWatchdogRecoveryS ramps released applications back to
	// their scheduled frequency over this long.
	DefaultWatchdogRecoveryS = 2.0
	// DefaultMaxRetries bounds immediate retries of a failed actuation.
	DefaultMaxRetries = 3
)

func (c Config) watchdogK() int {
	if c.WatchdogK > 0 {
		return c.WatchdogK
	}
	return DefaultWatchdogK
}

func (c Config) watchdogRecovery() float64 {
	if c.WatchdogRecoveryS > 0 {
		return c.WatchdogRecoveryS
	}
	return DefaultWatchdogRecoveryS
}

func (c Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return DefaultMaxRetries
}

func (c Config) period() float64 {
	if c.PeriodSeconds > 0 {
		return c.PeriodSeconds
	}
	return DefaultPeriodS
}

func (c Config) minShareFrac() float64 {
	if c.MinShare > 0 {
		return c.MinShare
	}
	return DefaultMinShareFrac
}

// Space builds the R3a schedule: every funded application runs
// continuously at its allocated operating point; the cap is met by
// simultaneous throttling. An application whose share admits no
// operating point stays suspended (its plan already scores it zero).
// Fails only when nothing at all can run — the regime Time or ESD must
// handle.
func Space(cfg Config, plan allocator.Plan) (Schedule, error) {
	run := make(map[int]SegKnob, len(plan.Allocs))
	var (
		perf    []float64
		budgets []float64
		total   float64
		draw    float64
	)
	for i, a := range plan.Allocs {
		perf = append(perf, 0)
		budgets = append(budgets, a.BudgetW)
		if !a.Runnable {
			continue
		}
		duty := a.Point.DutyFrac
		if duty <= 0 || duty > 1 {
			duty = 1
		}
		run[i] = SegKnob{Knobs: a.Point.Knobs, Duty: duty}
		perf[i] = a.Point.Perf
		total += a.Point.Perf
		draw += a.Point.PowerW
	}
	if len(run) == 0 {
		return Schedule{}, fmt.Errorf("coordinator: no application has a runnable point; use time or ESD coordination")
	}
	seg := Segment{Seconds: cfg.period(), Run: run}
	peak := cfg.HW.PIdleWatts + cfg.HW.PCmWatts + draw
	return Schedule{
		Mode:       ModeSpace,
		PeriodS:    cfg.period(),
		Segments:   []Segment{seg},
		AppPerf:    perf,
		AppBudgetW: budgets,
		TotalPerf:  total,
		PeakGridW:  peak,
	}, nil
}

// Time builds the R3b schedule: applications take turns, each getting the
// entire dynamic budget while it is ON. fair gives every application an
// equal share of the period; otherwise shares start at the fairness
// floor and the remainder goes to the applications with the best
// performance per unit of time (the App+Res-Aware enforcement of unequal
// budgets). curves supply each application's ON operating point.
func Time(cfg Config, curves []*workload.Curve, fair bool) (Schedule, error) {
	n := len(curves)
	if n == 0 {
		return Schedule{}, fmt.Errorf("coordinator: no applications to schedule")
	}
	budget := cfg.HW.DynamicBudget(cfg.CapW)
	period := cfg.period()

	// Each application's best point with the whole budget to itself.
	on := make([]workload.Point, n)
	for i, c := range curves {
		pt, ok := c.At(budget)
		if !ok {
			return Schedule{}, fmt.Errorf("coordinator: application %d cannot run even alone under %.1f W", i, budget)
		}
		on[i] = pt
	}

	shares := make([]float64, n)
	if fair {
		for i := range shares {
			shares[i] = 1 / float64(n)
		}
	} else {
		// Fairness floor, then remainder to the highest-utility apps.
		floor := cfg.minShareFrac() / float64(n)
		rest := 1 - floor*float64(n)
		bestI, bestPerf := 0, -1.0
		for i := range shares {
			shares[i] = floor
			if on[i].Perf > bestPerf {
				bestI, bestPerf = i, on[i].Perf
			}
		}
		shares[bestI] += rest
	}

	sched := Schedule{
		Mode:       ModeTime,
		PeriodS:    period,
		AppPerf:    make([]float64, n),
		AppBudgetW: make([]float64, n),
	}
	var peak float64
	for i := 0; i < n; i++ {
		secs := shares[i] * period
		if secs <= 0 {
			continue
		}
		seg := Segment{
			Seconds: secs,
			Run:     map[int]SegKnob{i: {Knobs: on[i].Knobs, Duty: on[i].DutyFrac}},
			Restore: map[int]bool{i: true},
		}
		sched.Segments = append(sched.Segments, seg)
		eff := restoreEfficiency(secs, cfg.restore())
		sched.AppPerf[i] = shares[i] * on[i].Perf * eff
		sched.AppBudgetW[i] = shares[i] * on[i].PowerW
		sched.TotalPerf += sched.AppPerf[i]
		if p := cfg.HW.PIdleWatts + cfg.HW.PCmWatts + on[i].PowerW; p > peak {
			peak = p
		}
	}
	sched.PeakGridW = peak
	return sched, nil
}

func (c Config) restore() float64 {
	if c.RestoreSeconds > 0 {
		return c.RestoreSeconds
	}
	return DefaultRestoreS
}

// restoreEfficiency is the fraction of an ON interval left after paying
// the cold-cache restore penalty at its start.
func restoreEfficiency(onSeconds, restoreSeconds float64) float64 {
	if onSeconds <= 0 {
		return 0
	}
	eff := 1 - restoreSeconds/onSeconds
	if eff < 0 {
		return 0
	}
	return eff
}

// ESD builds the R4 schedule: during the OFF phase every application is
// suspended, the sockets deep-sleep, and the cap-to-idle headroom charges
// the battery; during the ON phase all applications run simultaneously —
// paying P_cm once — with the excess over the cap discharged from the
// battery. The OFF:ON ratio follows the paper's equation (5); the total
// ON-phase dynamic power is chosen by searching a grid of budgets and
// apportioning each with the allocator.
func ESD(cfg Config, curves []*workload.Curve, dev *esd.Device) (Schedule, error) {
	n := len(curves)
	if n == 0 {
		return Schedule{}, fmt.Errorf("coordinator: no applications to schedule")
	}
	if dev == nil {
		return Schedule{}, fmt.Errorf("coordinator: ESD coordination needs a device")
	}
	spec := dev.Spec()
	chargeW := math.Min(cfg.HW.ChargeHeadroom(cfg.CapW), spec.MaxChargeW)
	if chargeW <= 0 {
		return Schedule{}, fmt.Errorf("coordinator: cap %.1f W leaves no charging headroom over P_idle %.1f W", cfg.CapW, cfg.HW.PIdleWatts)
	}
	eta := spec.RoundTripEff()

	// Search ON-phase dynamic budgets from just over the cap-feasible
	// level up to everything the applications can use.
	maxL := 0.0
	for _, c := range curves {
		maxL += c.MaxPower()
	}
	bestObj := -1.0
	var bestPlan allocator.Plan
	var bestOnFrac, bestDischarge, bestL float64
	for L := cfg.HW.DynamicBudget(cfg.CapW) + 1; L <= maxL+1e-9; L += 1 {
		plan, err := allocator.Apportion(curves, L, 0)
		if err != nil {
			return Schedule{}, err
		}
		discharge := cfg.HW.PIdleWatts + cfg.HW.PCmWatts + plan.SpentW - cfg.CapW
		if discharge <= 0 {
			continue // space coordination would cover this; not ESD's regime
		}
		if discharge > spec.MaxDischargeW {
			continue
		}
		// Equation (5): OFF/ON = (P_idle + P_cm + sum P_X - P_cap) /
		// (eta * (P_cap - P_idle)), with the charge power additionally
		// bounded by the device.
		offOn := discharge / (eta * chargeW)
		onFrac := 1 / (1 + offOn)
		obj := onFrac * plan.TotalPerf
		if obj > bestObj {
			bestObj, bestPlan, bestOnFrac, bestDischarge, bestL = obj, plan, onFrac, discharge, L
		}
	}
	if bestObj < 0 {
		return Schedule{}, fmt.Errorf("coordinator: no feasible ESD operating point under cap %.1f W", cfg.CapW)
	}
	_ = bestL

	// Pick a period whose ON-phase store swing stays within half the
	// usable window, clamped to sane bounds.
	period := cfg.period()
	if drain := bestDischarge / spec.DischargeEff; drain > 0 {
		maxOn := 0.5 * spec.UsableJ() / drain
		if maxPeriod := maxOn / bestOnFrac; maxPeriod < period {
			period = maxPeriod
		}
	}
	if period < 0.5 {
		period = 0.5
	}

	onS := bestOnFrac * period
	offS := period - onS
	run := make(map[int]SegKnob, n)
	restore := make(map[int]bool, n)
	sched := Schedule{
		Mode:       ModeESD,
		PeriodS:    period,
		AppPerf:    make([]float64, n),
		AppBudgetW: make([]float64, n),
	}
	eff := restoreEfficiency(onS, cfg.restore())
	for i, a := range bestPlan.Allocs {
		if !a.Runnable {
			continue
		}
		run[i] = SegKnob{Knobs: a.Point.Knobs, Duty: a.Point.DutyFrac}
		restore[i] = true
		sched.AppPerf[i] = bestOnFrac * a.Point.Perf * eff
		sched.AppBudgetW[i] = bestOnFrac * a.Point.PowerW
		sched.TotalPerf += sched.AppPerf[i]
	}
	sched.Segments = []Segment{
		{Seconds: offS, Sleep: true, ChargeW: chargeW},
		{Seconds: onS, Run: run, DischargeW: bestDischarge, Restore: restore},
	}
	sched.PeakGridW = cfg.CapW // discharge tops the draw up to exactly the cap
	return sched, nil
}

// AlternateESD builds the Fig. 5a strawman: ESD-assisted duty cycling
// where applications still take turns (paying P_cm during every ON slice
// without amortizing it across applications). It exists to quantify the
// ~30% advantage of the consolidated ON phase (Fig. 5b, which ESD
// implements).
func AlternateESD(cfg Config, curves []*workload.Curve, dev *esd.Device) (Schedule, error) {
	n := len(curves)
	if n == 0 {
		return Schedule{}, fmt.Errorf("coordinator: no applications to schedule")
	}
	if dev == nil {
		return Schedule{}, fmt.Errorf("coordinator: ESD coordination needs a device")
	}
	spec := dev.Spec()
	chargeW := math.Min(cfg.HW.ChargeHeadroom(cfg.CapW), spec.MaxChargeW)
	if chargeW <= 0 {
		return Schedule{}, fmt.Errorf("coordinator: cap %.1f W leaves no charging headroom", cfg.CapW)
	}
	eta := spec.RoundTripEff()

	// Each application runs alone at its best point; the battery covers
	// its individual excess over the cap.
	type alt struct {
		pt        workload.Point
		discharge float64
	}
	alts := make([]alt, n)
	var sumOnWeight float64
	for i, c := range curves {
		pt, ok := c.At(c.MaxPower())
		if !ok {
			return Schedule{}, fmt.Errorf("coordinator: application %d has an empty curve", i)
		}
		d := cfg.HW.PIdleWatts + cfg.HW.PCmWatts + pt.PowerW - cfg.CapW
		if d < 0 {
			d = 0
		}
		if d > spec.MaxDischargeW {
			return Schedule{}, fmt.Errorf("coordinator: application %d needs %.1f W of discharge, device allows %.1f", i, d, spec.MaxDischargeW)
		}
		alts[i] = alt{pt: pt, discharge: d}
		sumOnWeight += d / (eta * chargeW)
	}
	// One shared OFF phase banks energy for all ON slices (equal ON
	// lengths); energy balance gives OFF/ON_total.
	offOn := sumOnWeight / float64(n)
	onFrac := 1 / (1 + offOn)

	period := cfg.period()
	onTotal := onFrac * period
	onEach := onTotal / float64(n)
	offS := period - onTotal

	sched := Schedule{
		Mode:       ModeESD,
		PeriodS:    period,
		AppPerf:    make([]float64, n),
		AppBudgetW: make([]float64, n),
	}
	sched.Segments = append(sched.Segments, Segment{Seconds: offS, Sleep: true, ChargeW: chargeW})
	eff := restoreEfficiency(onEach, cfg.restore())
	peak := 0.0
	for i, a := range alts {
		sched.Segments = append(sched.Segments, Segment{
			Seconds:    onEach,
			Run:        map[int]SegKnob{i: {Knobs: a.pt.Knobs, Duty: a.pt.DutyFrac}},
			DischargeW: a.discharge,
			Restore:    map[int]bool{i: true},
		})
		share := onEach / period
		sched.AppPerf[i] = share * a.pt.Perf * eff
		sched.AppBudgetW[i] = share * a.pt.PowerW
		sched.TotalPerf += sched.AppPerf[i]
		if p := cfg.HW.PIdleWatts + cfg.HW.PCmWatts + a.pt.PowerW - a.discharge; p > peak {
			peak = p
		}
	}
	sched.PeakGridW = peak
	return sched, nil
}
