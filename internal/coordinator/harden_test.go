package coordinator

import (
	"testing"

	"powerstruggle/internal/faults"
)

// overCapSchedule pins every application at its uncapped knobs so the
// server draws well past any reasonable cap.
func overCapSchedule(f *fixture) Schedule {
	run := map[int]SegKnob{}
	for i, p := range f.profs {
		run[i] = SegKnob{Knobs: p.NoCapKnobs(f.hw), Duty: 1}
	}
	return Schedule{PeriodS: 1, Segments: []Segment{{Seconds: 1, Run: run}}}
}

func TestWatchdogEngagesAndClamps(t *testing.T) {
	f := newFixture(t, "STREAM", "kmeans")
	ex, err := NewExecutor(Config{HW: f.hw, CapW: 60, Watchdog: true, WatchdogK: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	addApps(t, ex, f)
	if err := ex.SetSchedule(overCapSchedule(f)); err != nil {
		t.Fatal(err)
	}

	var engagedAt int = -1
	for i := 0; i < 40; i++ {
		s, err := ex.Step(0.1)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if engagedAt < 0 && ex.WatchdogEngaged() {
			engagedAt = i
		}
		if engagedAt >= 0 && i > engagedAt && ex.WatchdogEngaged() && s.GridW > 60+capSlack {
			t.Fatalf("step %d: engaged watchdog left draw at %.1f W over the 60 W cap", i, s.GridW)
		}
	}
	if engagedAt < 0 {
		t.Fatal("watchdog never engaged on a persistently over-cap schedule")
	}
	if ex.WatchdogEngages() < 1 {
		t.Fatal("engage counter not incremented")
	}
	if got := ex.MaxBreachRun(); got > 3 {
		t.Fatalf("breach run reached %d consecutive intervals, watchdog K is 3", got)
	}
	if ex.CapBreachSteps() < 3 {
		t.Fatalf("breach steps %d, want >= K", ex.CapBreachSteps())
	}
	if ex.FaultLog().Count("watchdog-engage") < 1 {
		t.Fatal("engagement not logged")
	}
}

func TestWatchdogReleasesAfterCleanRun(t *testing.T) {
	f := newFixture(t, "STREAM", "kmeans")
	ex, err := NewExecutor(Config{HW: f.hw, CapW: 60, Watchdog: true, WatchdogK: 3, WatchdogRecoveryS: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	addApps(t, ex, f)
	if err := ex.SetSchedule(overCapSchedule(f)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := ex.Step(0.1); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	log := ex.FaultLog()
	if log.Count("watchdog-engage") < 1 {
		t.Fatal("watchdog never engaged")
	}
	// A 60 W cap is below the two apps' knob floor, so the clamp suspends
	// everything, the draw falls to idle, and K clean intervals later the
	// watchdog must hand control back and start the recovery ramp.
	if log.Count("watchdog-release") < 1 {
		t.Fatal("watchdog never released despite clean intervals under clamp")
	}
	if ex.MaxBreachRun() > 3 {
		t.Fatalf("breach run reached %d with K=3", ex.MaxBreachRun())
	}
}

func TestWatchdogQuietWhenUnderCap(t *testing.T) {
	f := newFixture(t, "STREAM")
	ex, err := NewExecutor(Config{HW: f.hw, CapW: 200, Watchdog: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	addApps(t, ex, f)
	if err := ex.SetSchedule(overCapSchedule(f)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := ex.Step(0.1); err != nil {
			t.Fatal(err)
		}
	}
	if ex.WatchdogEngages() != 0 || ex.CapBreachSteps() != 0 {
		t.Fatalf("watchdog acted under a generous cap: engages=%d breaches=%d",
			ex.WatchdogEngages(), ex.CapBreachSteps())
	}
	if evs := ex.FaultEvents(); len(evs) != 0 {
		t.Fatalf("unexpected events on a healthy run: %v", evs)
	}
}

func TestFaultFreePathHasNoLog(t *testing.T) {
	ex, f := newExecFixture(t)
	addApps(t, ex, f)
	if ex.FaultLog() != nil {
		t.Fatal("plain executor allocated a fault log")
	}
	if evs := ex.FaultEvents(); evs != nil {
		t.Fatalf("plain executor reports events: %v", evs)
	}
}

// A fault config with every rate zero must leave the executor
// bit-identical to one with no fault config at all.
func TestZeroRateConfigIsIdentical(t *testing.T) {
	run := func(fc *faults.Config) []Sample {
		f := newFixture(t, "STREAM", "kmeans")
		ex, err := NewExecutor(Config{HW: f.hw, CapW: 100, Faults: fc}, nil)
		if err != nil {
			t.Fatal(err)
		}
		addApps(t, ex, f)
		if err := ex.SetSchedule(overCapSchedule(f)); err != nil {
			t.Fatal(err)
		}
		out := make([]Sample, 300)
		for i := range out {
			s, err := ex.Step(0.01)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = s
		}
		return out
	}
	plain := run(nil)
	zero := run(&faults.Config{Seed: 99})
	for i := range plain {
		a, b := plain[i], zero[i]
		if a.T != b.T || a.ServerW != b.ServerW || a.GridW != b.GridW || a.SoC != b.SoC {
			t.Fatalf("step %d diverged: %+v vs %+v", i, a, b)
		}
		for j := range a.AppW {
			if a.AppW[j] != b.AppW[j] {
				t.Fatalf("step %d app %d draw diverged: %g vs %g", i, j, a.AppW[j], b.AppW[j])
			}
		}
	}
}
