package coordinator

import (
	"fmt"

	"powerstruggle/internal/esd"
	"powerstruggle/internal/workload"
)

// Sample is one point of a run's time series.
type Sample struct {
	// T is simulated seconds since the run began.
	T float64
	// ServerW is the server's draw (idle + P_cm + dynamic).
	ServerW float64
	// GridW is what the feed actually supplies: server draw plus ESD
	// charging minus ESD discharging. Cap adherence is about GridW.
	GridW float64
	// SoC is the ESD state of charge (0 when no device is attached).
	SoC float64
	// AppW is each application's dynamic draw.
	AppW []float64
}

// RunResult summarizes executing a schedule for a while.
type RunResult struct {
	// Samples is the decimated time series.
	Samples []Sample
	// AppBeats is each application's delivered heartbeats.
	AppBeats []float64
	// AppNormPerf is each application's delivered rate normalized to
	// its uncapped rate — the measured counterpart of the schedule's
	// AppPerf prediction.
	AppNormPerf []float64
	// TotalPerf is the measured objective (1).
	TotalPerf float64
	// MaxGridW is the peak observed grid draw.
	MaxGridW float64
	// CapViolations counts steps whose grid draw exceeded the cap by
	// more than capSlack.
	CapViolations int
	// GridEnergyJ is the total energy supplied by the feed.
	GridEnergyJ float64
	// Seconds is the simulated duration.
	Seconds float64
}

// capSlack is the tolerance for counting cap violations, covering
// floating-point noise in the power composition.
const capSlack = 1e-6

// Runner executes one coordinator schedule against fresh simulated
// hardware for a fixed duration — the measurement harness behind every
// steady-state result.
type Runner struct {
	Config    Config
	Profiles  []*workload.Profile
	Instances []*workload.Instance
	Device    *esd.Device // nil when the server has no storage

	// StepSeconds is the integration step; 0 means 10 ms.
	StepSeconds float64
	// SampleEvery decimates the recorded series to one sample per this
	// many seconds; 0 means every step.
	SampleEvery float64
}

// Run executes sched for seconds of simulated time and returns the
// measured result.
func (r *Runner) Run(sched Schedule, seconds float64) (RunResult, error) {
	n := len(r.Profiles)
	if n == 0 || len(r.Instances) != n {
		return RunResult{}, fmt.Errorf("coordinator: runner needs matching profiles and instances (%d vs %d)", n, len(r.Instances))
	}
	ex, err := NewExecutor(r.Config, r.Device)
	if err != nil {
		return RunResult{}, err
	}
	startBeats := make([]float64, n)
	for i := range r.Profiles {
		if _, err := ex.AddApp(r.Profiles[i], r.Instances[i]); err != nil {
			return RunResult{}, err
		}
		startBeats[i] = r.Instances[i].Beats()
	}
	if err := ex.SetSchedule(sched); err != nil {
		return RunResult{}, err
	}

	dt := r.StepSeconds
	if dt <= 0 {
		dt = 0.01
	}
	res := RunResult{
		AppBeats:    make([]float64, n),
		AppNormPerf: make([]float64, n),
		Seconds:     seconds,
	}
	lastSample := -1e18
	for t := 0.0; t < seconds-dt/2; t += dt {
		s, err := ex.Step(dt)
		if err != nil {
			return RunResult{}, err
		}
		res.GridEnergyJ += s.GridW * dt
		if s.GridW > res.MaxGridW {
			res.MaxGridW = s.GridW
		}
		if r.Config.CapW > 0 && s.GridW > r.Config.CapW+capSlack {
			res.CapViolations++
		}
		if r.SampleEvery <= 0 || t-lastSample >= r.SampleEvery-1e-12 {
			res.Samples = append(res.Samples, s)
			lastSample = t
		}
	}

	for i, p := range r.Profiles {
		res.AppBeats[i] = r.Instances[i].Beats() - startBeats[i]
		if nc := p.NoCapRate(r.Config.HW); nc > 0 && seconds > 0 {
			res.AppNormPerf[i] = res.AppBeats[i] / (nc * seconds)
		}
		res.TotalPerf += res.AppNormPerf[i]
	}
	return res, nil
}
