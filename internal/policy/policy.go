// Package policy implements the five server power-management schemes the
// paper evaluates (Sections IV-A and IV-B): the Util-Unaware RAPL
// baseline, the Server+Res-Aware baseline, and the proposed App-Aware,
// App+Res-Aware and App+Res+ESD-Aware policies. A policy is the glue
// between utility curves (what each watt buys whom), the PowerAllocator
// (who gets which watts), and the Coordinator (how the watts are drawn
// without ever exceeding the cap).
package policy

import (
	"fmt"

	"powerstruggle/internal/allocator"
	"powerstruggle/internal/coordinator"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

// Kind enumerates the evaluated policies.
type Kind int

// The schemes of the paper's evaluation, in the order its figures plot
// them.
const (
	// UtilUnaware equally splits the budget and enforces each share
	// with hardware RAPL; duty-cycles fairly when shares cannot run.
	UtilUnaware Kind = iota
	// ServerResAware equally splits the budget but picks knob shapes by
	// server-averaged resource utilities.
	ServerResAware
	// AppAware apportions the budget by application-level utilities but
	// enforces each share RAPL-style, without resource-level tuning.
	AppAware
	// AppResAware apportions by application-level utilities over full
	// per-resource Pareto curves (the paper's R1+R2+R3 policy).
	AppResAware
	// AppResESDAware adds the R4 energy-storage coordination.
	AppResESDAware
)

// Kinds lists all policies in evaluation order.
func Kinds() []Kind {
	return []Kind{UtilUnaware, ServerResAware, AppAware, AppResAware, AppResESDAware}
}

// String names the policy as the paper's figures do.
func (k Kind) String() string {
	switch k {
	case UtilUnaware:
		return "Util-Unaware"
	case ServerResAware:
		return "Server+Res-Aware"
	case AppAware:
		return "App-Aware"
	case AppResAware:
		return "App+Res-Aware"
	case AppResESDAware:
		return "App+Res+ESD-Aware"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// spaceMargin is the preference the Coordinator gives space coordination:
// time multiplexing must beat it by this relative margin to be chosen,
// because suspension flushes private-cache state (Section III-B prefers
// R3a "since states of applications are preserved").
const spaceMargin = 1.05

// Context carries everything a policy needs to plan for one server at
// one instant.
type Context struct {
	// HW is the platform.
	HW simhw.Config
	// CapW is the server's current power cap (the paper's P_cap).
	CapW float64
	// Profiles are the co-located applications.
	Profiles []*workload.Profile
	// Library supplies the previously-seen-application population the
	// Server+Res-Aware baseline averages over.
	Library *workload.Library
	// Device is the server's ESD, if any; only AppResESDAware uses it.
	Device *esd.Device
	// Coord overrides coordinator tunables; HW and CapW are filled in
	// by the policy.
	Coord coordinator.Config
	// CurveOverride, when non-nil, substitutes the curve for
	// application i — the hook for collaborative-filtering estimates
	// (a nil return falls back to the policy's own construction).
	CurveOverride func(i int, p *workload.Profile) *workload.Curve
	// Objectives, when non-nil, replaces the paper's evenly-weighed
	// objective (1) with weighted terms and per-application performance
	// floors (SLOs) for the utility-aware policies. Must match
	// Profiles in length.
	Objectives []allocator.Objective
}

func (c Context) coordConfig() coordinator.Config {
	out := c.Coord
	out.HW = c.HW
	out.CapW = c.CapW
	return out
}

// Decision is a policy's output: the schedule to execute plus the curves
// and plan that produced it (for introspection and the paper's Fig. 8b/c
// style reporting).
type Decision struct {
	Kind     Kind
	Schedule coordinator.Schedule
	// Curves are the per-application utility curves the policy used.
	Curves []*workload.Curve
	// Plan is the space-mode apportioning (even when time/ESD mode was
	// chosen, it records what space coordination would have done).
	Plan allocator.Plan
}

// Plan runs policy kind against ctx and returns its decision.
func Plan(kind Kind, ctx Context) (Decision, error) {
	if len(ctx.Profiles) == 0 {
		return Decision{}, fmt.Errorf("policy: no applications")
	}
	if ctx.CapW <= 0 {
		return Decision{}, fmt.Errorf("policy: cap %.1f W is invalid", ctx.CapW)
	}
	curves, err := buildCurves(kind, ctx)
	if err != nil {
		return Decision{}, err
	}
	budget := ctx.HW.DynamicBudget(ctx.CapW)

	var plan allocator.Plan
	switch {
	case kind == UtilUnaware || kind == ServerResAware:
		plan, err = allocator.EqualSplit(curves, budget)
	case ctx.Objectives != nil:
		plan, err = allocator.ApportionWeighted(curves, ctx.Objectives, budget, 0)
	default:
		plan, err = allocator.Apportion(curves, budget, 0)
	}
	if err != nil {
		return Decision{}, err
	}

	dec := Decision{Kind: kind, Curves: curves, Plan: plan}
	cc := ctx.coordConfig()

	// Candidate 1: space coordination (R3a), if every share can run.
	var (
		space   coordinator.Schedule
		haveSpc bool
	)
	if sched, err := coordinator.Space(cc, plan); err == nil {
		space, haveSpc = sched, true
	}

	// Candidate 2: time coordination (R3b).
	fair := kind == UtilUnaware || kind == ServerResAware
	var (
		tm     coordinator.Schedule
		haveTm bool
	)
	if sched, err := coordinator.Time(cc, curves, fair); err == nil {
		tm, haveTm = sched, true
	}

	// Candidate 3: ESD coordination (R4), for the ESD-aware policy only.
	var (
		es     coordinator.Schedule
		haveES bool
	)
	if kind == AppResESDAware && ctx.Device != nil {
		if sched, err := coordinator.ESD(cc, curves, ctx.Device); err == nil {
			es, haveES = sched, true
		}
	}

	switch {
	case haveES && (!haveSpc || es.TotalPerf > space.TotalPerf*spaceMargin) &&
		(!haveTm || es.TotalPerf >= tm.TotalPerf):
		dec.Schedule = es
	case haveSpc && (!haveTm || tm.TotalPerf <= space.TotalPerf*spaceMargin):
		dec.Schedule = space
	case haveTm:
		dec.Schedule = tm
	case haveSpc:
		dec.Schedule = space
	default:
		return Decision{}, fmt.Errorf("policy: %v found no feasible schedule under %.1f W", kind, ctx.CapW)
	}
	return dec, nil
}

// buildCurves constructs each application's utility curve as the policy
// kind sees it.
func buildCurves(kind Kind, ctx Context) ([]*workload.Curve, error) {
	curves := make([]*workload.Curve, len(ctx.Profiles))
	var avg *workload.Curve
	if kind == ServerResAware {
		if ctx.Library == nil {
			return nil, fmt.Errorf("policy: Server+Res-Aware needs the application library")
		}
		avg = workload.AverageCurve(ctx.HW, ctx.Library.Apps())
	}
	for i, p := range ctx.Profiles {
		if ctx.CurveOverride != nil {
			if c := ctx.CurveOverride(i, p); c != nil {
				curves[i] = c
				continue
			}
		}
		switch kind {
		case UtilUnaware, AppAware:
			curves[i] = workload.RAPLCurve(ctx.HW, p)
		case ServerResAware:
			curves[i] = workload.ShapedCurve(ctx.HW, p, avg)
		case AppResAware, AppResESDAware:
			curves[i] = workload.OptimalCurve(ctx.HW, p)
		default:
			return nil, fmt.Errorf("policy: unknown kind %v", kind)
		}
	}
	return curves, nil
}
