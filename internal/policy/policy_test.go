package policy

import (
	"testing"

	"powerstruggle/internal/coordinator"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

func testContext(t *testing.T, capW float64, withESD bool, apps ...string) Context {
	t.Helper()
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	profs := make([]*workload.Profile, len(apps))
	for i, a := range apps {
		profs[i] = lib.MustApp(a)
	}
	ctx := Context{HW: hw, CapW: capW, Profiles: profs, Library: lib}
	if withESD {
		dev, err := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Device = dev
	}
	return ctx
}

func TestPlanValidation(t *testing.T) {
	ctx := testContext(t, 100, false, "STREAM", "kmeans")
	empty := ctx
	empty.Profiles = nil
	if _, err := Plan(UtilUnaware, empty); err == nil {
		t.Error("plan without applications accepted")
	}
	bad := ctx
	bad.CapW = 0
	if _, err := Plan(UtilUnaware, bad); err == nil {
		t.Error("plan with zero cap accepted")
	}
	noLib := ctx
	noLib.Library = nil
	if _, err := Plan(ServerResAware, noLib); err == nil {
		t.Error("Server+Res-Aware without a library accepted")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		UtilUnaware:    "Util-Unaware",
		ServerResAware: "Server+Res-Aware",
		AppAware:       "App-Aware",
		AppResAware:    "App+Res-Aware",
		AppResESDAware: "App+Res+ESD-Aware",
	}
	if len(Kinds()) != len(want) {
		t.Fatalf("Kinds() has %d entries", len(Kinds()))
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestEveryPolicyAdheresToEveryCap is the central safety property: no
// policy's schedule may ever let the grid draw exceed the cap, measured
// by actually executing the schedule.
func TestEveryPolicyAdheresToEveryCap(t *testing.T) {
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{120, 100, 90, 80, 72}
	mixes := workload.Mixes()
	if testing.Short() {
		mixes = mixes[:4]
		caps = []float64{100, 80}
	}
	for _, m := range mixes {
		a, b, err := lib.MixProfiles(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, capW := range caps {
			for _, kind := range Kinds() {
				var dev *esd.Device
				if kind == AppResESDAware {
					dev, _ = esd.NewDevice(esd.LeadAcid(300e3), 0.6)
				}
				dec, err := Plan(kind, Context{
					HW: hw, CapW: capW,
					Profiles: []*workload.Profile{a, b},
					Library:  lib, Device: dev,
				})
				if err != nil {
					t.Fatalf("mix %d, %v at %g W: %v", m.ID, kind, capW, err)
				}
				if dec.Schedule.PeakGridW > capW+1e-6 {
					t.Fatalf("mix %d, %v at %g W: predicted peak %g over cap",
						m.ID, kind, capW, dec.Schedule.PeakGridW)
				}
				insts := []*workload.Instance{{Profile: a}, {Profile: b}}
				r := coordinator.Runner{
					Config:    coordinator.Config{HW: hw, CapW: capW},
					Profiles:  []*workload.Profile{a, b},
					Instances: insts,
					Device:    dev,
				}
				res, err := r.Run(dec.Schedule, 10)
				if err != nil {
					t.Fatalf("mix %d, %v at %g W: %v", m.ID, kind, capW, err)
				}
				if res.CapViolations != 0 {
					t.Fatalf("mix %d, %v at %g W: %d violations (peak %g)",
						m.ID, kind, capW, res.CapViolations, res.MaxGridW)
				}
			}
		}
	}
}

// TestPolicyOrderingMatchesThePaper checks the evaluation's headline
// staircase: on average across the mixes, awareness must pay — App-Aware
// over the baselines, App+Res-Aware over App-Aware, and the ESD scheme
// over everything at the stringent cap.
func TestPolicyOrderingMatchesThePaper(t *testing.T) {
	hw := simhw.DefaultConfig()
	lib, _ := workload.NewLibrary(hw)
	avg := func(kind Kind, capW float64) float64 {
		var sum float64
		for _, m := range workload.Mixes() {
			a, b, _ := lib.MixProfiles(m)
			var dev *esd.Device
			if kind == AppResESDAware {
				dev, _ = esd.NewDevice(esd.LeadAcid(300e3), 0.6)
			}
			dec, err := Plan(kind, Context{
				HW: hw, CapW: capW,
				Profiles: []*workload.Profile{a, b},
				Library:  lib, Device: dev,
			})
			if err != nil {
				t.Fatalf("mix %d %v: %v", m.ID, kind, err)
			}
			sum += dec.Schedule.TotalPerf
		}
		return sum / float64(len(workload.Mixes()))
	}

	// The loose cap (Fig 8).
	uu, app, appRes := avg(UtilUnaware, 100), avg(AppAware, 100), avg(AppResAware, 100)
	if app <= uu {
		t.Errorf("at 100 W App-Aware (%.3f) does not beat Util-Unaware (%.3f)", app, uu)
	}
	if appRes <= app {
		t.Errorf("at 100 W App+Res-Aware (%.3f) does not beat App-Aware (%.3f)", appRes, app)
	}
	if gain := appRes/uu - 1; gain < 0.05 {
		t.Errorf("at 100 W App+Res-Aware gains only %.1f%% over the baseline, want >= 5%%", gain*100)
	}

	// The stringent cap (Fig 10): much larger relative gains, and the
	// ESD scheme far ahead.
	uu80, appRes80, esd80 := avg(UtilUnaware, 80), avg(AppResAware, 80), avg(AppResESDAware, 80)
	if appRes80 <= uu80 {
		t.Errorf("at 80 W App+Res-Aware (%.3f) does not beat Util-Unaware (%.3f)", appRes80, uu80)
	}
	if gainLoose, gainTight := appRes/uu-1, appRes80/uu80-1; gainTight <= gainLoose {
		t.Errorf("stringent-cap gain (%.1f%%) not larger than loose-cap gain (%.1f%%)",
			gainTight*100, gainLoose*100)
	}
	if boost := esd80 / uu80; boost < 1.4 {
		t.Errorf("ESD boost at 80 W is %.2fx, want >= 1.4x (paper: ~70%%+)", boost)
	}
}

func TestESDPolicyUsesStorageOnlyWhenStringent(t *testing.T) {
	ctx := testContext(t, 110, true, "STREAM", "kmeans")
	dec, err := Plan(AppResESDAware, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Schedule.Mode == coordinator.ModeESD {
		t.Error("ESD coordination chosen at a loose 110 W cap")
	}
	ctx80 := testContext(t, 80, true, "STREAM", "kmeans")
	dec80, err := Plan(AppResESDAware, ctx80)
	if err != nil {
		t.Fatal(err)
	}
	if dec80.Schedule.Mode != coordinator.ModeESD {
		t.Errorf("mode %v at the stringent 80 W cap, want esd", dec80.Schedule.Mode)
	}
}

func TestCurveOverrideHook(t *testing.T) {
	ctx := testContext(t, 100, false, "STREAM", "kmeans")
	called := 0
	ctx.CurveOverride = func(i int, p *workload.Profile) *workload.Curve {
		called++
		return workload.OptimalCurve(ctx.HW, p)
	}
	if _, err := Plan(AppAware, ctx); err != nil {
		t.Fatal(err)
	}
	if called != 2 {
		t.Errorf("override called %d times, want 2", called)
	}
}

func TestDecisionRecordsCurvesAndPlan(t *testing.T) {
	ctx := testContext(t, 100, false, "X264", "SSSP")
	dec, err := Plan(AppResAware, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Curves) != 2 {
		t.Fatalf("%d curves recorded", len(dec.Curves))
	}
	if len(dec.Plan.Allocs) != 2 {
		t.Fatalf("%d allocations recorded", len(dec.Plan.Allocs))
	}
	if dec.Plan.SpentW > ctx.HW.DynamicBudget(100)+1e-9 {
		t.Errorf("plan spends %g over the dynamic budget", dec.Plan.SpentW)
	}
}

func TestFourAppAdherence(t *testing.T) {
	hw := simhw.DefaultConfig()
	hw.ChannelSharing = 2
	lib, err := workload.NewLibrary(simhw.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Shrink four applications to 3 cores and doubled memory traffic
	// (two sharers per channel).
	var profs []*workload.Profile
	for _, name := range []string{"STREAM", "kmeans", "X264", "BFS"} {
		p := *lib.MustApp(name)
		if p.MaxCores > 3 {
			p.MaxCores = 3
		}
		p.MemBytesPerBeat *= 2
		profs = append(profs, &p)
	}
	for _, capW := range []float64{110, 95} {
		for _, kind := range []Kind{UtilUnaware, AppResAware} {
			dec, err := Plan(kind, Context{HW: hw, CapW: capW, Profiles: profs, Library: lib})
			if err != nil {
				t.Fatalf("%v at %g W: %v", kind, capW, err)
			}
			if dec.Schedule.PeakGridW > capW+1e-6 {
				t.Fatalf("%v at %g W: peak %g", kind, capW, dec.Schedule.PeakGridW)
			}
			insts := make([]*workload.Instance, len(profs))
			for i := range profs {
				insts[i], _ = workload.NewInstance(profs[i], 0)
			}
			r := coordinator.Runner{
				Config:    coordinator.Config{HW: hw, CapW: capW},
				Profiles:  profs,
				Instances: insts,
			}
			res, err := r.Run(dec.Schedule, 8)
			if err != nil {
				t.Fatalf("%v at %g W: %v", kind, capW, err)
			}
			if res.CapViolations != 0 {
				t.Fatalf("%v at %g W: %d violations", kind, capW, res.CapViolations)
			}
		}
	}
}
