package exp

import (
	"powerstruggle/internal/cluster"
	"powerstruggle/internal/trace"
	"powerstruggle/internal/workload"
)

// Fig12Level is one shaving level's outcome across strategies.
type Fig12Level struct {
	ShaveFrac     float64
	CeilingW      float64
	EventFraction float64
	Results       map[cluster.Strategy]cluster.Result
}

// Fig12Result carries the cluster peak-shaving study.
type Fig12Result struct {
	Demand []trace.Point
	Caps   map[float64][]trace.Point
	Levels []Fig12Level
	Report *Report
}

// Fig12Config tunes the cluster study.
type Fig12Config struct {
	// Servers is the fleet size (default 10, as in the paper).
	Servers int
	// ShaveFracs are the shaving levels (default 15, 30, 45%).
	ShaveFracs []float64
	// StepSeconds is the trace resolution (default 300 s).
	StepSeconds float64
	// Days is the trace length in days (default 1; weekends dampened).
	Days int
	// Seed drives trace synthesis.
	Seed int64
}

func (c Fig12Config) withDefaults() Fig12Config {
	if c.Servers == 0 {
		c.Servers = 10
	}
	if len(c.ShaveFracs) == 0 {
		c.ShaveFracs = []float64{0.15, 0.30, 0.45}
	}
	if c.StepSeconds == 0 {
		c.StepSeconds = 300
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// Fig12 regenerates Fig. 12: dynamic peak-shaving caps derived from a
// diurnal cluster trace (12a) replayed over the fleet under the three
// cluster strategies (12b).
func Fig12(env *Env, cfg Fig12Config) (*Fig12Result, error) {
	cfg = cfg.withDefaults()
	mixes := workload.Mixes()
	assign := make([]workload.Mix, cfg.Servers)
	for i := range assign {
		assign[i] = mixes[i%len(mixes)]
	}
	ev, err := cluster.NewEvaluator(cluster.Config{HW: env.HW, Library: env.Lib, Mixes: assign})
	if err != nil {
		return nil, err
	}
	uncapped, err := ev.UncappedClusterW()
	if err != nil {
		return nil, err
	}
	load, err := trace.DiurnalLoad(trace.Config{Seed: cfg.Seed, StepSeconds: cfg.StepSeconds, Days: cfg.Days})
	if err != nil {
		return nil, err
	}
	// The cap trace is external (a connection-intensive service's power
	// draw); scale its peak to the fleet's unconstrained draw.
	demand := make([]trace.Point, len(load))
	for i, p := range load {
		demand[i] = trace.Point{T: p.T, V: p.V * uncapped}
	}

	res := &Fig12Result{
		Demand: demand,
		Caps:   make(map[float64][]trace.Point),
		Report: &Report{ID: "Fig 12", Title: "Cluster level peak shaving"},
	}
	res.Report.addf("fleet: %d servers, uncapped draw %.0f W", cfg.Servers, uncapped)
	res.Report.addf("(a) dynamic power caps (ceilings):")
	for _, sh := range cfg.ShaveFracs {
		caps, err := trace.PeakShaveCaps(demand, sh, uncapped)
		if err != nil {
			return nil, err
		}
		res.Caps[sh] = caps
		res.Report.addf("  shave %2.0f%%: ceiling %6.0f W, binding %2.0f%% of the day",
			sh*100, (1-sh)*trace.Peak(demand), trace.EventFraction(caps, uncapped)*100)
	}
	res.Report.addf("(b) aggregate performance (fraction of uncapped):")
	strategies := []cluster.Strategy{cluster.EqualRAPL, cluster.EqualOurs, cluster.ConsolidateMigrate}
	for _, sh := range cfg.ShaveFracs {
		level := Fig12Level{
			ShaveFrac:     sh,
			CeilingW:      (1 - sh) * trace.Peak(demand),
			EventFraction: trace.EventFraction(res.Caps[sh], uncapped),
			Results:       make(map[cluster.Strategy]cluster.Result),
		}
		for _, s := range strategies {
			r, err := ev.Evaluate(res.Caps[sh], s)
			if err != nil {
				return nil, err
			}
			level.Results[s] = r
			res.Report.addf("  shave %2.0f%% %-32s perf %5.1f%%  eff %6.3f  violations %d",
				sh*100, s, r.AvgPerfFrac*100, r.Efficiency, r.CapViolations)
		}
		res.Levels = append(res.Levels, level)
	}
	// Terminal rendering: the demand/cap shapes and strategy bars.
	demandV := make([]float64, len(demand))
	for i, p := range demand {
		demandV[i] = p.V
	}
	res.Report.addf("demand trace: %s", sparkline(downsample(demandV, 72)))
	for _, sh := range cfg.ShaveFracs {
		capsV := make([]float64, len(res.Caps[sh]))
		for i, p := range res.Caps[sh] {
			capsV[i] = p.V
		}
		res.Report.addf("caps @%2.0f%%:   %s", sh*100, sparkline(downsample(capsV, 72)))
	}
	for _, lv := range res.Levels {
		labels := make([]string, 0, len(strategies))
		values := make([]float64, 0, len(strategies))
		for _, st := range strategies {
			labels = append(labels, st.String())
			values = append(values, lv.Results[st].AvgPerfFrac*100)
		}
		res.Report.addf("shave %2.0f%% (perf %% of uncapped):", lv.ShaveFrac*100)
		res.Report.Lines = append(res.Report.Lines, barChart(labels, values, 40)...)
	}

	// Headline efficiency comparisons.
	for _, lv := range res.Levels {
		rapl := lv.Results[cluster.EqualRAPL]
		ours := lv.Results[cluster.EqualOurs]
		cons := lv.Results[cluster.ConsolidateMigrate]
		if rapl.Efficiency > 0 && cons.Efficiency > 0 {
			res.Report.addf("  shave %2.0f%%: Ours vs RAPL %+.1f%%, vs Consolidation %+.1f%% (power efficiency)",
				lv.ShaveFrac*100, (ours.Efficiency/rapl.Efficiency-1)*100, (ours.Efficiency/cons.Efficiency-1)*100)
		}
	}
	return res, nil
}
