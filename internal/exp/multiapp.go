package exp

import (
	"fmt"

	"powerstruggle/internal/esd"
	"powerstruggle/internal/policy"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

// MultiAppConfig parameterizes the deeper-consolidation study: four
// applications on one server, two per socket, sharing the DRAM channels.
// The paper evaluates pairs; its framework ("multiple applications on
// each server") is N-way, and this experiment exercises the allocator,
// duty cycling and ESD coordination at N = 4.
type MultiAppConfig struct {
	// Apps are the four applications (default: STREAM, kmeans, X264,
	// BFS — two compute-leaning, two memory-leaning).
	Apps []string
	// CapsW are the server caps to sweep (default 110, 100, 90).
	CapsW []float64
	// Seconds of simulated time per measurement (default 20).
	Seconds float64
}

func (c MultiAppConfig) withDefaults() MultiAppConfig {
	if len(c.Apps) == 0 {
		c.Apps = []string{"STREAM", "kmeans", "X264", "BFS"}
	}
	if len(c.CapsW) == 0 {
		c.CapsW = []float64{110, 100, 90}
	}
	if c.Seconds <= 0 {
		c.Seconds = 20
	}
	return c
}

// MultiAppRow is one cap's outcome.
type MultiAppRow struct {
	CapW float64
	// Perf maps policy to the measured objective (of len(Apps) max).
	Perf map[policy.Kind]float64
	// Violations sums cap violations across policies.
	Violations int
}

// MultiAppResult carries the 4-way study.
type MultiAppResult struct {
	Apps   []string
	Rows   []MultiAppRow
	Report *Report
}

// multiAppEnv builds the shared-channel platform and the shrunken
// profiles: each application cedes cores (3 per application on 12
// cores) and sees half its channel bandwidth (two sharers per channel).
func multiAppEnv(env *Env, names []string) (simhw.Config, []*workload.Profile, error) {
	hw := env.HW
	hw.ChannelSharing = 2
	profs := make([]*workload.Profile, len(names))
	for i, n := range names {
		base, err := env.Lib.App(n)
		if err != nil {
			return simhw.Config{}, nil, err
		}
		p := *base
		if p.MaxCores > 3 {
			p.MaxCores = 3
		}
		// Two sharers per channel halve the per-application memory
		// roofline.
		p.MemBytesPerBeat *= 2
		profs[i] = &p
	}
	return hw, profs, nil
}

// MultiApp runs the 4-way co-location sweep.
func MultiApp(env *Env, cfg MultiAppConfig) (*MultiAppResult, error) {
	cfg = cfg.withDefaults()
	hw, profs, err := multiAppEnv(env, cfg.Apps)
	if err != nil {
		return nil, err
	}
	shared := &Env{HW: hw, Lib: env.Lib}
	kinds := []policy.Kind{policy.UtilUnaware, policy.AppResAware, policy.AppResESDAware}

	res := &MultiAppResult{
		Apps: cfg.Apps,
		Report: &Report{
			ID:    "MultiApp",
			Title: fmt.Sprintf("four-way co-location (%v), two applications per channel", cfg.Apps),
		},
	}
	header := fmt.Sprintf("%-8s", "cap(W)")
	for _, k := range kinds {
		header += fmt.Sprintf(" %20s", k)
	}
	res.Report.Lines = append(res.Report.Lines, header)

	for _, capW := range cfg.CapsW {
		row := MultiAppRow{CapW: capW, Perf: make(map[policy.Kind]float64)}
		line := fmt.Sprintf("%-8.0f", capW)
		for _, k := range kinds {
			var dev *esd.Device
			if k == policy.AppResESDAware {
				dev, err = esd.NewDevice(esd.LeadAcid(300e3), 0.6)
				if err != nil {
					return nil, err
				}
			}
			dec, err := policy.Plan(k, policy.Context{
				HW: hw, CapW: capW, Profiles: profs, Library: env.Lib, Device: dev,
			})
			if err != nil {
				return nil, fmt.Errorf("cap %g, %v: %w", capW, k, err)
			}
			run, err := runSchedule(shared, capW, profs, dec.Schedule, dev, cfg.Seconds)
			if err != nil {
				return nil, fmt.Errorf("cap %g, %v: %w", capW, k, err)
			}
			row.Perf[k] = run.TotalPerf
			row.Violations += run.CapViolations
			line += fmt.Sprintf(" %14.3f(%-4s)", run.TotalPerf, dec.Schedule.Mode)
		}
		res.Rows = append(res.Rows, row)
		res.Report.Lines = append(res.Report.Lines, line)
	}
	return res, nil
}
