package exp

import (
	"fmt"
	"math/rand"

	"powerstruggle/internal/cf"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/policy"
	"powerstruggle/internal/workload"
)

// OnlineEstimator builds CF-estimated utility curves the way the running
// system does: a few noisy online samples of the new application, the
// accumulated population matrix for everything else, and a power safety
// margin. It caches the dataset and per-application estimates so a full
// evaluation sweep pays the training cost once per application.
type OnlineEstimator struct {
	env *Env
	ds  *cf.Dataset
	// Frac is the online sampling fraction (the paper's 10%).
	Frac float64
	// Noise is the multiplicative measurement noise on samples.
	Noise float64
	// Margin is the power safety margin applied to estimates.
	Margin float64
	// Seed drives sampling and noise.
	Seed  int64
	cache map[string]*workload.Curve
}

// NewOnlineEstimator builds an estimator with the paper's operating
// point: 10% sampling, 3% measurement noise, and a 5% power margin.
func NewOnlineEstimator(env *Env) (*OnlineEstimator, error) {
	ds, err := cf.BuildDataset(env.HW, env.Lib)
	if err != nil {
		return nil, err
	}
	return &OnlineEstimator{
		env: env, ds: ds,
		Frac: 0.10, Noise: 0.03, Margin: 0.05, Seed: 41,
		cache: make(map[string]*workload.Curve),
	}, nil
}

// Curve returns the CF-estimated utility curve for one application,
// leave-one-out trained (the application itself never contributes full
// rows, only its sparse noisy samples).
func (o *OnlineEstimator) Curve(p *workload.Profile) (*workload.Curve, error) {
	if c, ok := o.cache[p.Name]; ok {
		return c, nil
	}
	var train []int
	for i, name := range o.ds.Rows {
		if name != p.Name {
			train = append(train, i)
		}
	}
	// Seeds derive from the application name so estimates are
	// deterministic regardless of evaluation order.
	nameSeed := int64(0)
	for _, r := range p.Name {
		nameSeed = nameSeed*131 + int64(r)
	}
	rng := rand.New(rand.NewSource(o.Seed + nameSeed))
	noisy := func(v float64) float64 { return v * (1 + o.Noise*(2*rng.Float64()-1)) }
	sampled := o.ds.SampleCols(o.Frac, o.Seed+nameSeed)
	est, err := o.ds.EstimateApp(train, sampled,
		func(j int) float64 { return noisy(p.Power(o.env.HW, o.ds.Cols[j])) },
		func(j int) float64 { return noisy(p.Rate(o.env.HW, o.ds.Cols[j])) },
		cf.DefaultModelConfig())
	if err != nil {
		return nil, err
	}
	c := est.CurveMargin(p.MaxCores, o.Margin)
	o.cache[p.Name] = c
	return c, nil
}

// OnlineResult compares planning from learned utilities against oracle
// utilities across the mixes.
type OnlineResult struct {
	CapW float64
	// OraclePerf and OnlinePerf are average measured objectives.
	OraclePerf, OnlinePerf float64
	// Ratio is OnlinePerf/OraclePerf: how much the sampling overhead
	// costs.
	Ratio float64
	// MaxGridW is the worst observed draw under learned utilities.
	MaxGridW float64
	// Violations counts steps over the cap under learned utilities.
	Violations int
	Report     *Report
}

// Online measures App+Res-Aware planning from CF-estimated curves (the
// paper's deployed configuration: "all the results include these
// sampling and re-allocation overheads") against oracle curves, across
// all Table II mixes at one cap.
func Online(env *Env, capW, seconds float64) (*OnlineResult, error) {
	est, err := NewOnlineEstimator(env)
	if err != nil {
		return nil, err
	}
	res := &OnlineResult{
		CapW:   capW,
		Report: &Report{ID: "Online", Title: fmt.Sprintf("oracle vs learned utilities at P_cap = %.0f W", capW)},
	}
	res.Report.addf("%-6s %12s %12s %8s", "mix", "oracle", "online", "ratio")
	n := 0
	for _, m := range workload.Mixes() {
		a, b, err := env.Lib.MixProfiles(m)
		if err != nil {
			return nil, err
		}
		profs := []*workload.Profile{a, b}
		base := policy.Context{HW: env.HW, CapW: capW, Profiles: profs, Library: env.Lib}
		if capW < 90 {
			dev, err := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
			if err != nil {
				return nil, err
			}
			base.Device = dev
		}

		oracleDec, err := policy.Plan(policy.AppResAware, base)
		if err != nil {
			return nil, err
		}
		oracleRun, err := runSchedule(env, capW, profs, oracleDec.Schedule, base.Device, seconds)
		if err != nil {
			return nil, err
		}

		online := base
		var estErr error
		online.CurveOverride = func(i int, p *workload.Profile) *workload.Curve {
			c, err := est.Curve(p)
			if err != nil {
				estErr = err
				return nil
			}
			return c
		}
		onlineDec, err := policy.Plan(policy.AppResAware, online)
		if err != nil {
			return nil, err
		}
		if estErr != nil {
			return nil, estErr
		}
		onlineRun, err := runSchedule(env, capW, profs, onlineDec.Schedule, base.Device, seconds)
		if err != nil {
			return nil, err
		}

		res.OraclePerf += oracleRun.TotalPerf
		res.OnlinePerf += onlineRun.TotalPerf
		if onlineRun.MaxGridW > res.MaxGridW {
			res.MaxGridW = onlineRun.MaxGridW
		}
		res.Violations += onlineRun.CapViolations
		ratio := 0.0
		if oracleRun.TotalPerf > 0 {
			ratio = onlineRun.TotalPerf / oracleRun.TotalPerf
		}
		res.Report.addf("mix-%-2d %12.3f %12.3f %8.3f", m.ID, oracleRun.TotalPerf, onlineRun.TotalPerf, ratio)
		n++
	}
	res.OraclePerf /= float64(n)
	res.OnlinePerf /= float64(n)
	if res.OraclePerf > 0 {
		res.Ratio = res.OnlinePerf / res.OraclePerf
	}
	res.Report.addf("AVG    %12.3f %12.3f %8.3f  (max grid %.2f W, violations %d)",
		res.OraclePerf, res.OnlinePerf, res.Ratio, res.MaxGridW, res.Violations)
	return res, nil
}
