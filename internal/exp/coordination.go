package exp

import (
	"fmt"

	"powerstruggle/internal/allocator"
	"powerstruggle/internal/coordinator"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/workload"
)

// runSchedule executes a schedule for seconds on fresh instances and
// returns the measured result.
func runSchedule(env *Env, capW float64, profs []*workload.Profile, sched coordinator.Schedule, dev *esd.Device, seconds float64) (coordinator.RunResult, error) {
	insts := make([]*workload.Instance, len(profs))
	for i, p := range profs {
		inst, err := workload.NewInstance(p, 0)
		if err != nil {
			return coordinator.RunResult{}, err
		}
		insts[i] = inst
	}
	r := coordinator.Runner{
		Config:      coordinator.Config{HW: env.HW, CapW: capW},
		Profiles:    profs,
		Instances:   insts,
		Device:      dev,
		SampleEvery: 0.25,
	}
	return r.Run(sched, seconds)
}

// Fig4Result carries Fig. 4's data: server power timelines under space
// coordination (both applications throttled simultaneously) and time
// coordination (alternate duty cycling).
type Fig4Result struct {
	SpaceSeries []coordinator.Sample
	TimeSeries  []coordinator.Sample
	SpacePerf   float64
	TimePerf    float64
	Report      *Report
}

// Fig4 regenerates Fig. 4 on a two-application mix: space coordination
// at a 90 W cap, time coordination at 80 W (where simultaneous
// execution no longer fits).
func Fig4(env *Env, mixID int) (*Fig4Result, error) {
	a, b, err := mixProfiles(env, mixID)
	if err != nil {
		return nil, err
	}
	profs := []*workload.Profile{a, b}
	curves := []*workload.Curve{
		workload.OptimalCurve(env.HW, a),
		workload.OptimalCurve(env.HW, b),
	}
	res := &Fig4Result{Report: &Report{ID: "Fig 4", Title: "Coordinating power use between applications"}}

	// (a) space coordination at 90 W.
	const spaceCap = 90.0
	plan, err := allocator.Apportion(curves, env.HW.DynamicBudget(spaceCap), 0)
	if err != nil {
		return nil, err
	}
	spaceSched, err := coordinator.Space(coordinator.Config{HW: env.HW, CapW: spaceCap}, plan)
	if err != nil {
		return nil, err
	}
	spaceRun, err := runSchedule(env, spaceCap, profs, spaceSched, nil, 10)
	if err != nil {
		return nil, err
	}
	res.SpaceSeries = spaceRun.Samples
	res.SpacePerf = spaceRun.TotalPerf

	// (b) time coordination at 80 W.
	const timeCap = 80.0
	timeSched, err := coordinator.Time(coordinator.Config{HW: env.HW, CapW: timeCap}, curves, true)
	if err != nil {
		return nil, err
	}
	timeRun, err := runSchedule(env, timeCap, profs, timeSched, nil, 10)
	if err != nil {
		return nil, err
	}
	res.TimeSeries = timeRun.Samples
	res.TimePerf = timeRun.TotalPerf

	res.Report.addf("(a) space coordination, P_cap=%.0f W, total perf %.3f:", spaceCap, res.SpacePerf)
	appendSeries(res.Report, spaceRun.Samples, 8)
	res.Report.addf("(b) time coordination, P_cap=%.0f W, total perf %.3f:", timeCap, res.TimePerf)
	appendSeries(res.Report, timeRun.Samples, 16)
	return res, nil
}

// appendSeries formats up to n leading samples of a power timeline.
func appendSeries(r *Report, samples []coordinator.Sample, n int) {
	for i, s := range samples {
		if i >= n {
			break
		}
		line := fmt.Sprintf("  t=%5.2fs server=%6.2fW grid=%6.2fW", s.T, s.ServerW, s.GridW)
		for j, w := range s.AppW {
			line += fmt.Sprintf(" app%d=%5.2fW", j+1, w)
		}
		if s.SoC > 0 {
			line += fmt.Sprintf(" soc=%.3f", s.SoC)
		}
		r.Lines = append(r.Lines, line)
	}
}

// Fig5Result carries Fig. 5's data: ESD-assisted duty cycling at a cap
// below even one application's needs, alternate vs consolidated.
type Fig5Result struct {
	AlternatePerf    float64
	ConsolidatedPerf float64
	// Gain is consolidated/alternate - 1 (the paper's ~30%: P_cm is
	// amortized when applications run together).
	Gain              float64
	AlternateSeries   []coordinator.Sample
	ConsolidateSeries []coordinator.Sample
	Report            *Report
}

// Fig5 regenerates Fig. 5 at a 70 W cap (insufficient to run even one
// application steadily) with the paper's lead-acid ESD.
func Fig5(env *Env, mixID int) (*Fig5Result, error) {
	a, b, err := mixProfiles(env, mixID)
	if err != nil {
		return nil, err
	}
	profs := []*workload.Profile{a, b}
	curves := []*workload.Curve{
		workload.OptimalCurve(env.HW, a),
		workload.OptimalCurve(env.HW, b),
	}
	const capW = 70.0
	cc := coordinator.Config{HW: env.HW, CapW: capW}
	res := &Fig5Result{Report: &Report{ID: "Fig 5", Title: "Addressing non-convexity of P_cm using ESD"}}

	devA, err := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
	if err != nil {
		return nil, err
	}
	alt, err := coordinator.AlternateESD(cc, curves, devA)
	if err != nil {
		return nil, err
	}
	altRun, err := runSchedule(env, capW, profs, alt, devA, 60)
	if err != nil {
		return nil, err
	}

	devC, err := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
	if err != nil {
		return nil, err
	}
	cons, err := coordinator.ESD(cc, curves, devC)
	if err != nil {
		return nil, err
	}
	consRun, err := runSchedule(env, capW, profs, cons, devC, 60)
	if err != nil {
		return nil, err
	}

	res.AlternatePerf = altRun.TotalPerf
	res.ConsolidatedPerf = consRun.TotalPerf
	if res.AlternatePerf > 0 {
		res.Gain = res.ConsolidatedPerf/res.AlternatePerf - 1
	}
	res.AlternateSeries = altRun.Samples
	res.ConsolidateSeries = consRun.Samples
	res.Report.addf("(a) alternate duty cycling with ESD:    total perf %.3f", res.AlternatePerf)
	appendSeries(res.Report, altRun.Samples, 12)
	res.Report.addf("(b) consolidated duty cycling with ESD: total perf %.3f", res.ConsolidatedPerf)
	appendSeries(res.Report, consRun.Samples, 12)
	res.Report.addf("consolidation gain from amortizing P_cm: %.1f%%", res.Gain*100)
	return res, nil
}

// mixProfiles resolves a mix ID.
func mixProfiles(env *Env, mixID int) (*workload.Profile, *workload.Profile, error) {
	for _, m := range workload.Mixes() {
		if m.ID == mixID {
			return env.Lib.MixProfiles(m)
		}
	}
	return nil, nil, fmt.Errorf("exp: unknown mix %d", mixID)
}
