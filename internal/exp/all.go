package exp

import (
	"fmt"
	"io"
)

// Options tunes the full-report run.
type Options struct {
	// Seconds of simulated time per Fig 8/10 measurement (default 30).
	Seconds float64
	// Quick shrinks the CF study for fast runs.
	Quick bool
}

// WriteAll regenerates every table and figure and writes the reports to
// w, in the paper's order.
func WriteAll(w io.Writer, opts Options) error {
	if opts.Seconds <= 0 {
		opts.Seconds = 30
	}
	env, err := NewEnv()
	if err != nil {
		return err
	}
	emit := func(r *Report) error {
		if _, err := r.WriteTo(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}

	steps := []func() (*Report, error){
		func() (*Report, error) { return TableI(env), nil },
		func() (*Report, error) { return TableII(env), nil },
		func() (*Report, error) {
			r, err := Fig2(env, "", "")
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
		func() (*Report, error) { return Fig3(env).Report, nil },
		func() (*Report, error) {
			r, err := Fig4(env, 1)
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
		func() (*Report, error) {
			r, err := Fig5(env, 1)
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
		func() (*Report, error) {
			cfg := Fig7Config{}
			if opts.Quick {
				cfg.Fractions = []float64{0.05, 0.10}
			}
			r, err := Fig7(env, cfg)
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
		func() (*Report, error) {
			r, err := Fig8(env, opts.Seconds)
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
		func() (*Report, error) {
			r, err := Fig9(env)
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
		func() (*Report, error) {
			r, err := Fig10(env, opts.Seconds)
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
		func() (*Report, error) {
			r, err := Fig11(env)
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
		func() (*Report, error) {
			r, err := Fig12(env, Fig12Config{})
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
		// Extensions beyond the paper's evaluation (see DESIGN.md).
		func() (*Report, error) {
			r, err := Online(env, 100, opts.Seconds)
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
		func() (*Report, error) {
			r, err := Churn(env, ChurnConfig{})
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
		func() (*Report, error) {
			r, err := MultiApp(env, MultiAppConfig{Seconds: opts.Seconds})
			if err != nil {
				return nil, err
			}
			return r.Report, nil
		},
	}
	for _, step := range steps {
		r, err := step()
		if err != nil {
			return err
		}
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}
