package exp

import (
	"encoding/json"
	"io"

	"powerstruggle/internal/cluster"
	"powerstruggle/internal/policy"
)

// Summary is the machine-readable digest of the evaluation: the headline
// numbers EXPERIMENTS.md quotes, in one JSON document. It deliberately
// carries aggregates, not raw series — consumers wanting series use the
// per-experiment APIs.
type Summary struct {
	// Platform constants (Table I).
	Platform struct {
		Cores         int     `json:"cores"`
		FreqMinGHz    float64 `json:"freqMinGHz"`
		FreqMaxGHz    float64 `json:"freqMaxGHz"`
		PIdleWatts    float64 `json:"pIdleWatts"`
		PCmWatts      float64 `json:"pCmWatts"`
		PDynamicWatts float64 `json:"pDynamicWatts"`
	} `json:"platform"`

	// Fig8 and Fig10 carry per-policy averages across the mixes.
	Fig8  PolicySummary `json:"fig8_cap100W"`
	Fig10 PolicySummary `json:"fig10_cap80W"`

	// Fig5 is the ESD consolidation study.
	Fig5 struct {
		AlternatePerf    float64 `json:"alternatePerf"`
		ConsolidatedPerf float64 `json:"consolidatedPerf"`
		GainPct          float64 `json:"gainPct"`
	} `json:"fig5_cap70W"`

	// Fig7 is the calibration sweep.
	Fig7 struct {
		Points         []Fig7Point `json:"points"`
		ChosenFraction float64     `json:"chosenFraction"`
	} `json:"fig7_sampling"`

	// Fig12 carries the cluster study per shaving level.
	Fig12 []ClusterSummary `json:"fig12_cluster"`

	// Extensions carries the beyond-the-paper studies' headlines.
	Extensions struct {
		// OnlineRatio is learned-utilities performance over oracle at
		// 100 W.
		OnlineRatio float64 `json:"onlineRatioCap100"`
		// ChurnViolations counts cap violations in the sustained-churn
		// study (outside transition windows).
		ChurnViolations int `json:"churnViolations"`
		// ChurnDepartures counts completed jobs in the churn study.
		ChurnDepartures int `json:"churnDepartures"`
	} `json:"extensions"`
}

// PolicySummary is one cap's policy comparison.
type PolicySummary struct {
	CapW          float64            `json:"capW"`
	AvgPerf       map[string]float64 `json:"avgPerf"`
	AvgSplitPct   float64            `json:"avgLargerSharePct"`
	CapViolations int                `json:"capViolations"`
}

// ClusterSummary is one shaving level of Fig 12.
type ClusterSummary struct {
	ShavePct      float64            `json:"shavePct"`
	EventPct      float64            `json:"eventPct"`
	AvgPerfPct    map[string]float64 `json:"avgPerfPct"`
	EfficiencyRel map[string]float64 `json:"efficiencyVsRAPLPct"`
}

// Summarize runs the headline experiments and returns the digest.
func Summarize(env *Env, seconds float64) (*Summary, error) {
	if seconds <= 0 {
		seconds = 10
	}
	s := &Summary{}
	s.Platform.Cores = env.HW.TotalCores()
	s.Platform.FreqMinGHz = env.HW.FreqMinGHz
	s.Platform.FreqMaxGHz = env.HW.FreqMaxGHz
	s.Platform.PIdleWatts = env.HW.PIdleWatts
	s.Platform.PCmWatts = env.HW.PCmWatts
	s.Platform.PDynamicWatts = env.HW.MaxDynamicWatts()

	f8, err := Fig8(env, seconds)
	if err != nil {
		return nil, err
	}
	s.Fig8 = policySummary(f8)

	f10, err := Fig10(env, seconds)
	if err != nil {
		return nil, err
	}
	s.Fig10 = policySummary(f10)

	f5, err := Fig5(env, 1)
	if err != nil {
		return nil, err
	}
	s.Fig5.AlternatePerf = f5.AlternatePerf
	s.Fig5.ConsolidatedPerf = f5.ConsolidatedPerf
	s.Fig5.GainPct = f5.Gain * 100

	f7, err := Fig7(env, Fig7Config{})
	if err != nil {
		return nil, err
	}
	s.Fig7.Points = f7.Points
	s.Fig7.ChosenFraction = f7.ChosenFraction

	f12, err := Fig12(env, Fig12Config{})
	if err != nil {
		return nil, err
	}
	online, err := Online(env, 100, seconds)
	if err != nil {
		return nil, err
	}
	s.Extensions.OnlineRatio = online.Ratio
	churn, err := Churn(env, ChurnConfig{Seconds: 300})
	if err != nil {
		return nil, err
	}
	s.Extensions.ChurnViolations = churn.Violations
	s.Extensions.ChurnDepartures = churn.Departures

	for _, lv := range f12.Levels {
		cs := ClusterSummary{
			ShavePct:      lv.ShaveFrac * 100,
			EventPct:      lv.EventFraction * 100,
			AvgPerfPct:    make(map[string]float64),
			EfficiencyRel: make(map[string]float64),
		}
		rapl := lv.Results[cluster.EqualRAPL]
		for strat, r := range lv.Results {
			cs.AvgPerfPct[strat.String()] = r.AvgPerfFrac * 100
			if rapl.Efficiency > 0 {
				cs.EfficiencyRel[strat.String()] = (r.Efficiency/rapl.Efficiency - 1) * 100
			}
		}
		s.Fig12 = append(s.Fig12, cs)
	}
	return s, nil
}

func policySummary(pc *PolicyComparison) PolicySummary {
	out := PolicySummary{
		CapW:        pc.CapW,
		AvgPerf:     make(map[string]float64),
		AvgSplitPct: pc.AvgSplit * 100,
	}
	for k, v := range pc.Avg {
		out.AvgPerf[policy.Kind(k).String()] = v
	}
	for _, r := range pc.Rows {
		out.CapViolations += r.CapViolations
	}
	return out
}

// WriteJSON runs Summarize and writes the indented JSON document.
func WriteJSON(w io.Writer, seconds float64) error {
	env, err := NewEnv()
	if err != nil {
		return err
	}
	s, err := Summarize(env, seconds)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
