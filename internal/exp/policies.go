package exp

import (
	"fmt"
	"sync"

	"powerstruggle/internal/esd"
	"powerstruggle/internal/policy"
	"powerstruggle/internal/workload"
)

// MixPolicyRow is one mix's measured outcome under one policy.
type MixPolicyRow struct {
	MixID  int
	Policy policy.Kind
	// TotalPerf is the measured objective (1): sum of the two
	// applications' normalized performances.
	TotalPerf float64
	// AppPerf and AppBudgetW are per-application outcomes.
	AppPerf    []float64
	AppBudgetW []float64
	// Mode names the coordination mode the policy chose.
	Mode string
	// MaxGridW and CapViolations audit cap adherence.
	MaxGridW      float64
	CapViolations int
}

// PolicyComparison carries a Fig 8a/Fig 10-style sweep: all mixes
// crossed with a policy list at one cap.
type PolicyComparison struct {
	CapW     float64
	Policies []policy.Kind
	Rows     []MixPolicyRow
	// Avg[kind] is the mean TotalPerf across mixes.
	Avg map[policy.Kind]float64
	// AvgSplit is the mean fraction of inter-application power given to
	// the larger-share application under the last (most aware) policy —
	// the paper's "46%-54% split on average".
	AvgSplit float64
	Report   *Report
}

// comparePolicies measures every Table II mix under every given policy
// at one cap, by planning and then executing the plan on the simulated
// server for seconds of simulated time.
func comparePolicies(env *Env, capW float64, kinds []policy.Kind, seconds float64, id, title string) (*PolicyComparison, error) {
	res := &PolicyComparison{
		CapW:     capW,
		Policies: kinds,
		Avg:      make(map[policy.Kind]float64),
		Report:   &Report{ID: id, Title: title},
	}
	header := fmt.Sprintf("%-6s", "mix")
	for _, k := range kinds {
		header += fmt.Sprintf(" %20s", k)
	}
	res.Report.Lines = append(res.Report.Lines, header)

	// Each (mix, policy) cell is independent: measure them in parallel
	// and assemble deterministically by index.
	mixes := workload.Mixes()
	type cell struct {
		row MixPolicyRow
		err error
	}
	cells := make([][]cell, len(mixes))
	var wg sync.WaitGroup
	for mi, m := range mixes {
		mi, m := mi, m
		cells[mi] = make([]cell, len(kinds))
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, b, err := env.Lib.MixProfiles(m)
			if err != nil {
				cells[mi][0].err = err
				return
			}
			profs := []*workload.Profile{a, b}
			for ki, k := range kinds {
				var dev *esd.Device
				if k == policy.AppResESDAware {
					dev, err = esd.NewDevice(esd.LeadAcid(300e3), 0.6)
					if err != nil {
						cells[mi][ki].err = err
						continue
					}
				}
				dec, err := policy.Plan(k, policy.Context{
					HW: env.HW, CapW: capW, Profiles: profs, Library: env.Lib, Device: dev,
				})
				if err != nil {
					cells[mi][ki].err = fmt.Errorf("mix %d %v: %w", m.ID, k, err)
					continue
				}
				run, err := runSchedule(env, capW, profs, dec.Schedule, dev, seconds)
				if err != nil {
					cells[mi][ki].err = fmt.Errorf("mix %d %v: %w", m.ID, k, err)
					continue
				}
				cells[mi][ki].row = MixPolicyRow{
					MixID:         m.ID,
					Policy:        k,
					TotalPerf:     run.TotalPerf,
					AppPerf:       run.AppNormPerf,
					AppBudgetW:    dec.Schedule.AppBudgetW,
					Mode:          dec.Schedule.Mode.String(),
					MaxGridW:      run.MaxGridW,
					CapViolations: run.CapViolations,
				}
			}
		}()
	}
	wg.Wait()

	var splitSum float64
	var splitN int
	awareKind := kinds[len(kinds)-1]
	for mi, m := range mixes {
		line := fmt.Sprintf("mix-%-2d", m.ID)
		for ki, k := range kinds {
			c := cells[mi][ki]
			if c.err != nil {
				return nil, c.err
			}
			row := c.row
			res.Rows = append(res.Rows, row)
			res.Avg[k] += row.TotalPerf / float64(len(mixes))
			line += fmt.Sprintf(" %14.3f(%-4s)", row.TotalPerf, row.Mode)
			if k == awareKind {
				total := row.AppBudgetW[0] + row.AppBudgetW[1]
				if total > 0 {
					hi := row.AppBudgetW[0]
					if row.AppBudgetW[1] > hi {
						hi = row.AppBudgetW[1]
					}
					splitSum += hi / total
					splitN++
				}
			}
		}
		res.Report.Lines = append(res.Report.Lines, line)
	}
	if splitN > 0 {
		res.AvgSplit = splitSum / float64(splitN)
	}
	avgLine := fmt.Sprintf("%-6s", "AVG")
	for _, k := range kinds {
		avgLine += fmt.Sprintf(" %14.3f      ", res.Avg[k])
	}
	res.Report.Lines = append(res.Report.Lines, avgLine)
	base := res.Avg[kinds[0]]
	for _, k := range kinds[1:] {
		if base > 0 {
			res.Report.addf("%s vs %s: %+.1f%%", k, kinds[0], (res.Avg[k]/base-1)*100)
		}
	}
	res.Report.addf("average larger-share split under %s: %.0f%%-%.0f%%", awareKind, res.AvgSplit*100, (1-res.AvgSplit)*100)
	labels := make([]string, len(kinds))
	values := make([]float64, len(kinds))
	for i, k := range kinds {
		labels[i] = k.String()
		values[i] = res.Avg[k]
	}
	res.Report.addf("average normalized throughput:")
	res.Report.Lines = append(res.Report.Lines, barChart(labels, values, 40)...)
	return res, nil
}

// Fig8 regenerates Fig. 8: the four policies at P_cap = 100 W across all
// mixes (8a), with per-application power splits (8b) and speedups over
// Util-Unaware (8c) under App+Res-Aware.
func Fig8(env *Env, seconds float64) (*PolicyComparison, error) {
	kinds := []policy.Kind{policy.UtilUnaware, policy.ServerResAware, policy.AppAware, policy.AppResAware}
	res, err := comparePolicies(env, 100, kinds, seconds, "Fig 8", "Power management at P_cap = 100 W")
	if err != nil {
		return nil, err
	}
	// 8b/8c: splits and speedups under App+Res-Aware.
	res.Report.addf("Fig 8b/8c: App+Res-Aware per-application splits and speedups vs Util-Unaware")
	uu := rowsByPolicy(res.Rows, policy.UtilUnaware)
	ar := rowsByPolicy(res.Rows, policy.AppResAware)
	for _, m := range workload.Mixes() {
		u, a := uu[m.ID], ar[m.ID]
		if u == nil || a == nil {
			continue
		}
		tot := a.AppBudgetW[0] + a.AppBudgetW[1]
		s1, s2 := 0.0, 0.0
		if tot > 0 {
			s1, s2 = a.AppBudgetW[0]/tot*100, a.AppBudgetW[1]/tot*100
		}
		sp1, sp2 := speedup(a.AppPerf[0], u.AppPerf[0]), speedup(a.AppPerf[1], u.AppPerf[1])
		res.Report.addf("  mix-%-2d split %2.0f%%/%2.0f%%  speedups %.2fx / %.2fx", m.ID, s1, s2, sp1, sp2)
	}
	return res, nil
}

func speedup(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

func rowsByPolicy(rows []MixPolicyRow, k policy.Kind) map[int]*MixPolicyRow {
	out := make(map[int]*MixPolicyRow)
	for i := range rows {
		if rows[i].Policy == k {
			out[rows[i].MixID] = &rows[i]
		}
	}
	return out
}

// Fig10 regenerates Fig. 10: the policies at the stringent P_cap = 80 W,
// including the ESD-aware scheme.
func Fig10(env *Env, seconds float64) (*PolicyComparison, error) {
	kinds := []policy.Kind{policy.UtilUnaware, policy.ServerResAware, policy.AppResAware, policy.AppResESDAware}
	return comparePolicies(env, 80, kinds, seconds, "Fig 10", "Power management at P_cap = 80 W")
}
