package exp

import (
	"fmt"

	"powerstruggle/internal/accountant"
	"powerstruggle/internal/policy"
)

// Fig11Result carries the arrival/departure case studies.
type Fig11Result struct {
	// ArrivalSamples is the mix-14 timeline: SSSP alone, X264 arriving
	// at t=20 s under a 100 W cap.
	ArrivalSamples []accountant.AppSample
	ArrivalEvents  []accountant.Event
	// DepartureSamples is the mix-10 timeline: PageRank finishing and
	// kmeans being uncapped.
	DepartureSamples []accountant.AppSample
	DepartureEvents  []accountant.Event
	Report           *Report
}

// Fig11 regenerates Fig. 11: power re-allocation on an application's
// arrival (11a, mix-14) and departure (11b, mix-10), with the paper's
// ~800 ms re-allocation latency.
func Fig11(env *Env) (*Fig11Result, error) {
	res := &Fig11Result{Report: &Report{ID: "Fig 11", Title: "Impact of application arrival/departure"}}

	// (a) Arrival: SSSP runs alone; X264 arrives at t = 20 s.
	simA, err := accountant.NewSim(accountant.Config{
		HW: env.HW, Policy: policy.AppResAware, Library: env.Lib,
		InitialCapW: 100, ReallocSeconds: 0.8, SampleEvery: 0.5,
	})
	if err != nil {
		return nil, err
	}
	if err := simA.AddArrival(0, env.Lib.MustApp("SSSP"), 0); err != nil {
		return nil, err
	}
	if err := simA.AddArrival(20, env.Lib.MustApp("X264"), 0); err != nil {
		return nil, err
	}
	if err := simA.Run(40); err != nil {
		return nil, err
	}
	res.ArrivalSamples = simA.Samples()
	res.ArrivalEvents = simA.Events()

	// (b) Departure: mix-10 runs under 100 W; PageRank's work is finite
	// and it departs, after which kmeans is uncapped.
	simB, err := accountant.NewSim(accountant.Config{
		HW: env.HW, Policy: policy.AppResAware, Library: env.Lib,
		InitialCapW: 100, ReallocSeconds: 0.8, SampleEvery: 0.5,
	})
	if err != nil {
		return nil, err
	}
	pr := env.Lib.MustApp("PageRank")
	if err := simB.AddArrival(0, pr, pr.NoCapRate(env.HW)*14); err != nil {
		return nil, err
	}
	if err := simB.AddArrival(0, env.Lib.MustApp("kmeans"), 0); err != nil {
		return nil, err
	}
	if err := simB.Run(40); err != nil {
		return nil, err
	}
	res.DepartureSamples = simB.Samples()
	res.DepartureEvents = simB.Events()

	res.Report.addf("(a) arrival (mix-14: X264 joins SSSP at t=20 s, P_cap=100 W):")
	appendEvents(res.Report, res.ArrivalEvents)
	appendAppSamples(res.Report, res.ArrivalSamples, 17, 25)
	res.Report.addf("(b) departure (mix-10: PageRank finishes, kmeans uncapped):")
	appendEvents(res.Report, res.DepartureEvents)
	appendAppSamples(res.Report, res.DepartureSamples, 0, 40)
	return res, nil
}

func appendEvents(r *Report, events []accountant.Event) {
	for _, e := range events {
		r.addf("  t=%6.2fs %-16s %-10s %s", e.T, e.Kind, e.App, e.Detail)
	}
}

// appendAppSamples formats the samples in [from, to) seconds, decimated
// to roughly 12 lines.
func appendAppSamples(r *Report, samples []accountant.AppSample, from, to float64) {
	var window []accountant.AppSample
	for _, s := range samples {
		if s.T >= from && s.T < to {
			window = append(window, s)
		}
	}
	step := len(window)/12 + 1
	for i := 0; i < len(window); i += step {
		s := window[i]
		line := ""
		for _, a := range s.Apps {
			line += " " + a.Name + "=" + formatApp(a)
		}
		r.addf("  t=%6.2fs grid=%6.1fW%s", s.T, s.GridW, line)
	}
}

func formatApp(a accountant.AppState) string {
	if a.BudgetW <= 0 {
		return "(pending)"
	}
	return fmt.Sprintf("%v@%.1fW", a.Knobs, a.PowerW)
}
