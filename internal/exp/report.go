// Package exp regenerates every table and figure of the paper's
// evaluation: each experiment returns structured results plus formatted
// rows matching what the paper reports, so the whole evaluation can be
// re-derived with one command (cmd/psreport) or one benchmark run each.
package exp

import (
	"fmt"
	"io"
	"strings"

	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the paper's label ("Table I", "Fig 8", ...).
	ID string
	// Title describes what the experiment shows.
	Title string
	// Lines is the formatted output, one row/series point per line.
	Lines []string
}

// WriteTo renders the report.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (r *Report) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Env bundles the platform and application library every experiment
// needs.
type Env struct {
	HW  simhw.Config
	Lib *workload.Library
}

// NewEnv builds the default paper environment (Table I platform, the
// twelve applications).
func NewEnv() (*Env, error) {
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		return nil, err
	}
	return &Env{HW: hw, Lib: lib}, nil
}

// TableI regenerates Table I: the server configuration.
func TableI(env *Env) *Report {
	hw := env.HW
	r := &Report{ID: "Table I", Title: "Server configuration"}
	r.addf("%-14s %v", "Processor", "Xeon-2620 (simulated)")
	r.addf("%-14s %d", "Cores", hw.TotalCores())
	r.addf("%-14s %.1f-%.1f GHz", "Freq.", hw.FreqMinGHz, hw.FreqMaxGHz)
	r.addf("%-14s %d", "Freq. steps", hw.FreqSteps())
	r.addf("%-14s %d nodes", "NUMA", hw.Sockets)
	r.addf("%-14s %d channels, %.0f-%.0f W each", "DRAM RAPL", hw.MemChannels, hw.MemMinWatts, hw.MemMaxWatts)
	r.addf("%-14s %.0f W", "P_idle", hw.PIdleWatts)
	r.addf("%-14s %.0f W", "P_cm", hw.PCmWatts)
	r.addf("%-14s %.0f W", "P_dynamic", hw.MaxDynamicWatts())
	return r
}

// TableII regenerates Table II: the fifteen application mixes.
func TableII(env *Env) *Report {
	r := &Report{ID: "Table II", Title: "Application mixes"}
	r.addf("%-4s %-22s %-22s", "Mix", "App1 (type)", "App2 (type)")
	for _, m := range workload.Mixes() {
		a, b, err := env.Lib.MixProfiles(m)
		if err != nil {
			r.addf("mix-%d: %v", m.ID, err)
			continue
		}
		r.addf("%-4d %-22s %-22s", m.ID,
			fmt.Sprintf("%s (%s)", a.Name, a.Class),
			fmt.Sprintf("%s (%s)", b.Name, b.Class))
	}
	return r
}
