package exp

import (
	"fmt"
	"math"
	"math/rand"

	"powerstruggle/internal/accountant"
	"powerstruggle/internal/policy"
)

// ChurnConfig parameterizes the sustained-churn stress study: Poisson
// job arrivals, exponentially-sized jobs, and periodic cap swings — the
// paper's events E1-E3 at steady state rather than as isolated case
// studies.
type ChurnConfig struct {
	// Seconds of simulated time (default 600).
	Seconds float64
	// ArrivalsPerMinute is the Poisson arrival rate (default 2,
	// three-quarters of the two-slot server's service capacity).
	ArrivalsPerMinute float64
	// MeanJobSeconds is the mean busy time of a job at uncapped speed
	// (default 30; exponentially distributed).
	MeanJobSeconds float64
	// CapHighW and CapLowW are the two cap levels the datacenter swings
	// between (defaults 100 and 85), toggling every CapPeriodSeconds
	// (default 120).
	CapHighW, CapLowW float64
	CapPeriodSeconds  float64
	// Policy is the mediation scheme (default App+Res-Aware).
	Policy policy.Kind
	// Seed drives the arrival process.
	Seed int64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Seconds <= 0 {
		c.Seconds = 600
	}
	if c.ArrivalsPerMinute <= 0 {
		c.ArrivalsPerMinute = 2
	}
	if c.MeanJobSeconds <= 0 {
		c.MeanJobSeconds = 30
	}
	if c.CapHighW <= 0 {
		c.CapHighW = 100
	}
	if c.CapLowW <= 0 {
		c.CapLowW = 85
	}
	if c.CapPeriodSeconds <= 0 {
		c.CapPeriodSeconds = 120
	}
	if c.Policy == 0 {
		c.Policy = policy.AppResAware
	}
	if c.Seed == 0 {
		c.Seed = 23
	}
	return c
}

// ChurnResult summarizes a churn run.
type ChurnResult struct {
	// Arrivals, Departures, CapChanges and PhaseEvents count the logged
	// accountant events.
	Arrivals, Departures, CapChanges, PhaseEvents int
	// Queued counts arrivals that had to wait for direct resources.
	Queued int
	// MaxGridW is the worst observed grid draw outside re-allocation
	// transition windows; Violations counts samples above the cap in
	// force at the time (outside those windows).
	MaxGridW   float64
	Violations int
	// MeanUtilFrac is the average of (grid draw - idle floor) over
	// (cap - idle floor): how much of the granted dynamic power the
	// mediator converts into draw.
	MeanUtilFrac float64
	Report       *Report
}

// transitionGraceS excuses adherence accounting for this long after a
// cap change or membership event: the paper's runtime needs ~800 ms to
// land a new plan, during which the old plan may exceed a freshly
// lowered cap.
const transitionGraceS = 1.5

// Churn runs the sustained-churn study on one mediated server.
func Churn(env *Env, cfg ChurnConfig) (*ChurnResult, error) {
	cfg = cfg.withDefaults()
	sim, err := accountant.NewSim(accountant.Config{
		HW: env.HW, Policy: cfg.Policy, Library: env.Lib,
		InitialCapW: cfg.CapHighW, ReallocSeconds: 0.8, SampleEvery: 0.25,
	})
	if err != nil {
		return nil, err
	}

	// Poisson arrivals of random applications with exponential work.
	rng := rand.New(rand.NewSource(cfg.Seed))
	apps := env.Lib.Apps()
	t := 0.0
	for {
		t += rng.ExpFloat64() * 60 / cfg.ArrivalsPerMinute
		if t >= cfg.Seconds {
			break
		}
		p := apps[rng.Intn(len(apps))]
		beats := p.NoCapRate(env.HW) * rng.ExpFloat64() * cfg.MeanJobSeconds
		if beats < 1e-6 {
			beats = 1e-6
		}
		if err := sim.AddArrival(t, p, beats); err != nil {
			return nil, err
		}
	}
	// Cap swings (E1).
	lo := true
	for ct := cfg.CapPeriodSeconds; ct < cfg.Seconds; ct += cfg.CapPeriodSeconds {
		capW := cfg.CapHighW
		if lo {
			capW = cfg.CapLowW
		}
		lo = !lo
		if err := sim.AddCapChange(ct, capW); err != nil {
			return nil, err
		}
	}

	if err := sim.Run(cfg.Seconds); err != nil {
		return nil, err
	}

	res := &ChurnResult{Report: &Report{
		ID:    "Churn",
		Title: fmt.Sprintf("sustained churn: %.0f arrivals/min, caps %g/%g W, %s", cfg.ArrivalsPerMinute, cfg.CapHighW, cfg.CapLowW, cfg.Policy),
	}}
	events := sim.Events()
	transitions := make([]float64, 0, len(events))
	for _, e := range events {
		switch e.Kind {
		case accountant.EvArrival:
			res.Arrivals++
			if e.Detail == "no free direct resources; queued" {
				res.Queued++
			}
		case accountant.EvDeparture:
			res.Departures++
		case accountant.EvCapChange:
			res.CapChanges++
		case accountant.EvPhaseChange:
			res.PhaseEvents++
		}
		transitions = append(transitions, e.T)
	}

	inGrace := func(t float64) bool {
		for _, tt := range transitions {
			if t >= tt && t < tt+transitionGraceS {
				return true
			}
		}
		return false
	}
	var utilSum float64
	var utilN int
	for _, s := range sim.Samples() {
		if inGrace(s.T) {
			continue
		}
		if s.GridW > res.MaxGridW {
			res.MaxGridW = s.GridW
		}
		if s.GridW > s.CapW+1e-6 {
			res.Violations++
		}
		if len(s.Apps) > 0 {
			denom := s.CapW - env.HW.PIdleWatts
			if denom > 0 {
				utilSum += math.Max(0, s.GridW-env.HW.PIdleWatts) / denom
				utilN++
			}
		}
	}
	if utilN > 0 {
		res.MeanUtilFrac = utilSum / float64(utilN)
	}

	res.Report.addf("arrivals %d (queued %d), departures %d, cap changes %d, phase events %d",
		res.Arrivals, res.Queued, res.Departures, res.CapChanges, res.PhaseEvents)
	res.Report.addf("max grid %.1f W, violations outside transitions: %d", res.MaxGridW, res.Violations)
	res.Report.addf("mean dynamic-power utilization while occupied: %.0f%%", res.MeanUtilFrac*100)
	return res, nil
}
