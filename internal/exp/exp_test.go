package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"powerstruggle/internal/accountant"
	"powerstruggle/internal/cluster"
	"powerstruggle/internal/policy"
)

func newTestEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestTables(t *testing.T) {
	env := newTestEnv(t)
	t1 := TableI(env)
	if len(t1.Lines) < 8 {
		t.Errorf("Table I has %d rows", len(t1.Lines))
	}
	joined := strings.Join(t1.Lines, "\n")
	for _, want := range []string{"P_idle", "50 W", "P_cm", "20 W", "1.2-2.0 GHz"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	t2 := TableII(env)
	if len(t2.Lines) != 16 { // header + 15 mixes
		t.Errorf("Table II has %d rows, want 16", len(t2.Lines))
	}
	if !strings.Contains(strings.Join(t2.Lines, "\n"), "STREAM (memory)") {
		t.Error("Table II missing STREAM's type annotation")
	}
}

func TestFig2CurvesDifferAndAreMonotone(t *testing.T) {
	env := newTestEnv(t)
	res, err := Fig2(env, "", "")
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 2; a++ {
		prev := -1.0
		for _, v := range res.Perf[a] {
			if v < prev-1e-9 {
				t.Fatalf("%s: perf not monotone in cap", res.Apps[a])
			}
			prev = v
		}
	}
	// The paper's point: the two slopes differ. At a mid cap STREAM is
	// nearly saturated while kmeans is far from it.
	mid := len(res.CapsW) / 2
	if res.Perf[0][mid] <= res.Perf[1][mid] {
		t.Errorf("STREAM (%.3f) not ahead of kmeans (%.3f) at %g W: utility asymmetry lost",
			res.Perf[0][mid], res.Perf[1][mid], res.CapsW[mid])
	}
	if _, err := Fig2(env, "nope", ""); err == nil {
		t.Error("unknown application accepted")
	}
}

func TestFig3ResourceUtilitiesShape(t *testing.T) {
	env := newTestEnv(t)
	res := Fig3(env)
	if len(res.Utilities) != 12 {
		t.Fatalf("%d utility rows, want 12", len(res.Utilities))
	}
	byName := make(map[string]ResourceUtility)
	for _, u := range res.Utilities {
		byName[u.App] = u
		if u.CorePerW < 0 || u.FreqPerW < 0 || u.MemPerW < 0 {
			t.Errorf("%s: negative utility %+v", u.App, u)
		}
	}
	// STREAM buys performance with DRAM watts, kmeans with core watts —
	// the Fig 3/9d asymmetry.
	if s := byName["STREAM"]; s.MemPerW <= s.CorePerW || s.MemPerW <= s.FreqPerW {
		t.Errorf("STREAM: DRAM watt not dominant: %+v", s)
	}
	if k := byName["kmeans"]; k.MemPerW >= k.CorePerW {
		t.Errorf("kmeans: DRAM watt dominant: %+v", k)
	}
}

func TestFig4SpaceVsTime(t *testing.T) {
	env := newTestEnv(t)
	res, err := Fig4(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpacePerf <= res.TimePerf {
		t.Errorf("space at 90 W (%.3f) not ahead of time at 80 W (%.3f)", res.SpacePerf, res.TimePerf)
	}
	// Space coordination: both applications draw simultaneously.
	s := res.SpaceSeries[len(res.SpaceSeries)/2]
	if s.AppW[0] <= 0 || s.AppW[1] <= 0 {
		t.Errorf("space sample has an idle application: %v", s.AppW)
	}
	// Time coordination: at most one application draws at any sample.
	for _, ts := range res.TimeSeries {
		if ts.AppW[0] > 0 && ts.AppW[1] > 0 {
			t.Fatalf("time coordination ran both applications at t=%g", ts.T)
		}
	}
	if _, err := Fig4(env, 99); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestFig5ConsolidationGain(t *testing.T) {
	env := newTestEnv(t)
	res, err := Fig5(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gain < 0.15 {
		t.Errorf("consolidated ESD gain %.1f%%, want >= 15%% (paper: ~30%%)", res.Gain*100)
	}
}

func TestFig7OvershootShrinksWithSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("CF sweep is slow")
	}
	env := newTestEnv(t)
	res, err := Fig7(env, Fig7Config{Fractions: []float64{0.02, 0.10, 0.40}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d sweep points", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.OvershootPct > first.OvershootPct+1e-9 {
		t.Errorf("overshoot rose with sampling: %.2f%% -> %.2f%%",
			first.OvershootPct, last.OvershootPct)
	}
	if last.PerfPct < 90 {
		t.Errorf("dense sampling achieves only %.1f%% of optimal", last.PerfPct)
	}
	if res.ChosenFraction <= 0 {
		t.Error("no operating fraction chosen")
	}
}

func TestFig8And10Comparisons(t *testing.T) {
	env := newTestEnv(t)
	f8, err := Fig8(env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Rows) != 15*4 {
		t.Fatalf("Fig 8 has %d rows, want 60", len(f8.Rows))
	}
	for _, r := range f8.Rows {
		if r.CapViolations != 0 {
			t.Errorf("mix %d %v violated the cap %d times", r.MixID, r.Policy, r.CapViolations)
		}
	}
	if f8.Avg[policy.AppResAware] <= f8.Avg[policy.UtilUnaware] {
		t.Error("App+Res-Aware not ahead at 100 W")
	}
	// The paper's average split is 46-54; ours must be clearly unequal
	// but not extreme.
	if f8.AvgSplit < 0.51 || f8.AvgSplit > 0.65 {
		t.Errorf("average larger-share split %.2f outside [0.51, 0.65]", f8.AvgSplit)
	}

	f10, err := Fig10(env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if f10.Avg[policy.AppResESDAware] <= f10.Avg[policy.AppResAware] {
		t.Error("ESD awareness does not pay at 80 W")
	}
	gain8 := f8.Avg[policy.AppResAware]/f8.Avg[policy.UtilUnaware] - 1
	gain10 := f10.Avg[policy.AppResAware]/f10.Avg[policy.UtilUnaware] - 1
	if gain10 <= gain8 {
		t.Errorf("stringent-cap gain %.1f%% not above loose-cap gain %.1f%%", gain10*100, gain8*100)
	}
}

func TestFig9CaseStudies(t *testing.T) {
	env := newTestEnv(t)
	res, err := Fig9(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 10, 14} {
		if res.InterApp[id] == nil {
			t.Errorf("mix-%d case study missing", id)
		}
	}
	if len(res.IntraApp) != 4 {
		t.Errorf("%d resource-utility rows, want 4", len(res.IntraApp))
	}
}

func TestFig11EventSequences(t *testing.T) {
	env := newTestEnv(t)
	res, err := Fig11(env)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals int
	for _, e := range res.ArrivalEvents {
		if e.Kind.String() == "E2-arrival" {
			arrivals++
		}
	}
	if arrivals != 2 {
		t.Errorf("arrival study logged %d arrivals, want 2", arrivals)
	}
	var departed bool
	for _, e := range res.DepartureEvents {
		if e.Kind.String() == "E3-departure" {
			departed = true
		}
	}
	if !departed {
		t.Error("departure study logged no departure")
	}
	// After the departure the survivor's budget grows.
	samples := res.DepartureSamples
	var during, after float64
	for _, s := range samples {
		if len(s.Apps) == 2 && s.Apps[1].Name == "kmeans" && s.Apps[1].PowerW > 0 {
			during = s.Apps[1].PowerW
		}
		if len(s.Apps) == 1 && s.Apps[0].Name == "kmeans" {
			after = s.Apps[0].PowerW
		}
	}
	if after <= during {
		t.Errorf("kmeans draw did not grow after the departure: %.1f -> %.1f", during, after)
	}
}

func TestFig12ShapeAndClaims(t *testing.T) {
	env := newTestEnv(t)
	res, err := Fig12(env, Fig12Config{StepSeconds: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("%d shaving levels", len(res.Levels))
	}
	for _, lv := range res.Levels {
		rapl := lv.Results[cluster.EqualRAPL]
		ours := lv.Results[cluster.EqualOurs]
		if ours.AvgPerfFrac <= rapl.AvgPerfFrac {
			t.Errorf("shave %.0f%%: Ours %.3f vs RAPL %.3f", lv.ShaveFrac*100,
				ours.AvgPerfFrac, rapl.AvgPerfFrac)
		}
		if lv.EventFraction <= 0 || lv.EventFraction >= 1 {
			t.Errorf("shave %.0f%%: event fraction %.2f", lv.ShaveFrac*100, lv.EventFraction)
		}
	}
}

func TestWriteAllProducesEveryReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, Options{Seconds: 5, Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I", "Table II", "Fig 2", "Fig 3", "Fig 4", "Fig 5",
		"Fig 7", "Fig 8", "Fig 9", "Fig 10", "Fig 11", "Fig 12",
	} {
		if !strings.Contains(out, "== "+want) {
			t.Errorf("report missing %s", want)
		}
	}
}

func TestChurnStaysWithinCaps(t *testing.T) {
	env := newTestEnv(t)
	res, err := Churn(env, ChurnConfig{Seconds: 240})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals == 0 || res.Departures == 0 {
		t.Fatalf("no churn: %d arrivals, %d departures", res.Arrivals, res.Departures)
	}
	if res.CapChanges == 0 {
		t.Error("no cap swings occurred")
	}
	if res.Violations != 0 {
		t.Errorf("%d cap violations outside transition windows (max grid %.1f W)",
			res.Violations, res.MaxGridW)
	}
	if res.MeanUtilFrac <= 0.3 {
		t.Errorf("mean dynamic-power utilization %.0f%% suspiciously low", res.MeanUtilFrac*100)
	}
}

func TestChurnAcrossPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy churn is slow")
	}
	env := newTestEnv(t)
	for _, kind := range []policy.Kind{policy.UtilUnaware, policy.AppResAware} {
		res, err := Churn(env, ChurnConfig{Seconds: 180, Policy: kind, Seed: 31})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Violations != 0 {
			t.Errorf("%v: %d violations under churn", kind, res.Violations)
		}
	}
}

func TestOnlineUtilitiesNearOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("CF training sweep is slow")
	}
	env := newTestEnv(t)
	res, err := Online(env, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("%d cap violations planning from learned utilities", res.Violations)
	}
	if res.Ratio < 0.85 {
		t.Errorf("learned utilities deliver only %.1f%% of oracle", res.Ratio*100)
	}
	if res.Ratio > 1.001 {
		t.Errorf("learned utilities beat the oracle (%.3f): estimator leaking truth?", res.Ratio)
	}
}

func TestMultiAppColocation(t *testing.T) {
	env := newTestEnv(t)
	res, err := MultiApp(env, MultiAppConfig{Seconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Violations != 0 {
			t.Errorf("cap %g: %d violations with four applications", row.CapW, row.Violations)
		}
		if row.Perf[policy.AppResAware] <= row.Perf[policy.UtilUnaware] {
			t.Errorf("cap %g: mediation does not pay with four applications (%.3f vs %.3f)",
				row.CapW, row.Perf[policy.AppResAware], row.Perf[policy.UtilUnaware])
		}
	}
	// ESD awareness should win at the tightest cap.
	last := res.Rows[len(res.Rows)-1]
	if last.Perf[policy.AppResESDAware] < last.Perf[policy.AppResAware] {
		t.Errorf("ESD awareness loses at the tight cap: %.3f vs %.3f",
			last.Perf[policy.AppResESDAware], last.Perf[policy.AppResAware])
	}
}

func TestSummaryJSONRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("summary runs the headline experiments")
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, 3); err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if got.Platform.Cores != 12 || got.Platform.PIdleWatts != 50 {
		t.Errorf("platform constants wrong: %+v", got.Platform)
	}
	if got.Fig8.CapViolations != 0 || got.Fig10.CapViolations != 0 {
		t.Error("summary records cap violations")
	}
	if got.Fig8.AvgPerf["App+Res-Aware"] <= got.Fig8.AvgPerf["Util-Unaware"] {
		t.Error("summary lost the Fig 8 ordering")
	}
	if len(got.Fig12) != 3 {
		t.Errorf("%d cluster levels in summary", len(got.Fig12))
	}
}

func TestChartPrimitives(t *testing.T) {
	bars := barChart([]string{"a", "bb"}, []float64{1, 2}, 10)
	if len(bars) != 2 {
		t.Fatalf("%d bars", len(bars))
	}
	if !strings.Contains(bars[1], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", bars[1])
	}
	if strings.Count(bars[0], "#") != 5 {
		t.Errorf("half bar wrong: %q", bars[0])
	}
	if s := sparkline([]float64{0, 1, 2, 3}); len([]rune(s)) != 4 {
		t.Errorf("sparkline %q", s)
	}
	if s := sparkline(nil); s != "" {
		t.Errorf("empty sparkline %q", s)
	}
	if got := downsample(make([]float64, 100), 10); len(got) != 10 {
		t.Errorf("downsample kept %d", len(got))
	}
	flat := sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != []rune("▁")[0] {
			t.Errorf("flat series rendered %q", flat)
		}
	}
}

func TestSoakTwoSimulatedHours(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	env := newTestEnv(t)
	res, err := Churn(env, ChurnConfig{
		Seconds: 7200, ArrivalsPerMinute: 1.5, MeanJobSeconds: 40,
		CapPeriodSeconds: 300, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("%d cap violations over two simulated hours (max grid %.1f W)",
			res.Violations, res.MaxGridW)
	}
	if res.Departures < 50 {
		t.Errorf("only %d jobs completed over two hours", res.Departures)
	}
}

func TestAccountantWithLiveEstimator(t *testing.T) {
	if testing.Short() {
		t.Skip("CF calibration is slow")
	}
	env := newTestEnv(t)
	est, err := NewOnlineEstimator(env)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := accountant.NewSim(accountant.Config{
		HW: env.HW, Policy: policy.AppResAware, Library: env.Lib,
		InitialCapW: 100, ReallocSeconds: 0.8, SampleEvery: 0.25,
		Estimator: est,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sim.AddArrival(0, env.Lib.MustApp("SSSP"), 0)
	_ = sim.AddArrival(5, env.Lib.MustApp("X264"), 0)
	if err := sim.Run(15); err != nil {
		t.Fatal(err)
	}
	for _, s := range sim.Samples() {
		if s.GridW > 100+1e-6 {
			t.Fatalf("grid %.2f W over the cap with learned utilities at t=%.1f", s.GridW, s.T)
		}
	}
	last := sim.Samples()[len(sim.Samples())-1]
	if len(last.Apps) != 2 || last.Apps[0].PowerW <= 0 || last.Apps[1].PowerW <= 0 {
		t.Fatalf("applications not both running under learned utilities: %+v", last.Apps)
	}
}
