package exp

import (
	"powerstruggle/internal/workload"
)

// Fig2Result carries Fig. 2's data: application-level utility curves
// (normalized performance as a function of the application power cap)
// for a contrasting pair.
type Fig2Result struct {
	Apps  []string
	CapsW []float64
	// Perf[i][j] is application i's normalized performance at CapsW[j].
	Perf [][]float64
	// Report is the formatted figure.
	Report *Report
}

// Fig2 regenerates Fig. 2 for two contrasting applications (default:
// mix-1's STREAM and kmeans, a memory-bound/compute-bound pair whose
// slopes differ the way the paper's A and B do).
func Fig2(env *Env, appA, appB string) (*Fig2Result, error) {
	if appA == "" {
		appA = "STREAM"
	}
	if appB == "" {
		appB = "kmeans"
	}
	a, err := env.Lib.App(appA)
	if err != nil {
		return nil, err
	}
	b, err := env.Lib.App(appB)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{
		Apps:   []string{appA, appB},
		Report: &Report{ID: "Fig 2", Title: "Application-level power utilities (perf vs per-app cap)"},
	}
	curves := []*workload.Curve{
		workload.OptimalCurve(env.HW, a),
		workload.OptimalCurve(env.HW, b),
	}
	res.Perf = make([][]float64, 2)
	res.Report.addf("%-8s %10s %10s", "cap(W)", appA, appB)
	for w := 4.0; w <= 28.0+1e-9; w += 2 {
		res.CapsW = append(res.CapsW, w)
		res.Perf[0] = append(res.Perf[0], curves[0].PerfAt(w))
		res.Perf[1] = append(res.Perf[1], curves[1].PerfAt(w))
		res.Report.addf("%-8.1f %10.3f %10.3f", w, curves[0].PerfAt(w), curves[1].PerfAt(w))
	}
	return res, nil
}

// ResourceUtility is one application's marginal utility per watt for
// each direct-resource knob at a reference operating point.
type ResourceUtility struct {
	App string
	// CorePerW is the normalized-perf gain per watt of adding one core.
	CorePerW float64
	// FreqPerW is the gain per watt of one DVFS step up on all cores.
	FreqPerW float64
	// MemPerW is the gain per watt of one DRAM power step up.
	MemPerW float64
}

// resourceUtilities measures the three knobs' marginal utility per watt
// for one application at a mid-range reference point.
func resourceUtilities(env *Env, p *workload.Profile) ResourceUtility {
	hw := env.HW
	// Reference point: half the cores, mid frequency, mid DRAM — a
	// setting where every knob has room in both directions.
	ref := workload.Knobs{
		FreqGHz:  hw.ClampFreq((hw.FreqMinGHz + hw.FreqMaxGHz) / 2),
		Cores:    (p.MaxCores + 1) / 2,
		MemWatts: hw.ClampMem((hw.MemMinWatts + hw.MemMaxWatts) / 2),
	}
	base := p.NormRate(hw, ref)
	basePower := p.Power(hw, ref)
	perW := func(k workload.Knobs, allocW float64) float64 {
		dPerf := p.NormRate(hw, k) - base
		if dPerf < 1e-9 {
			return 0
		}
		// Denominator: the watts the knob change *allocates*. For the
		// DRAM limit that is the limit step itself — a compute-bound
		// application barely draws more, but the budget must still
		// reserve the limit.
		dPow := p.Power(hw, k) - basePower
		if allocW > dPow {
			dPow = allocW
		}
		if dPow <= 0 {
			return 0
		}
		return dPerf / dPow
	}
	kCore := ref
	kCore.Cores++
	kFreq := ref
	kFreq.FreqGHz = hw.ClampFreq(ref.FreqGHz + hw.FreqStepGHz)
	kMem := ref
	kMem.MemWatts = hw.ClampMem(ref.MemWatts + hw.MemStepWatts)
	return ResourceUtility{
		App:      p.Name,
		CorePerW: perW(kCore, 0),
		FreqPerW: perW(kFreq, 0),
		MemPerW:  perW(kMem, hw.MemStepWatts),
	}
}

// Fig3Result carries Fig. 3's data: per-resource utilities per watt for
// every application.
type Fig3Result struct {
	Utilities []ResourceUtility
	Report    *Report
}

// Fig3 regenerates Fig. 3: the utility of a marginal watt differs across
// direct resources, and differently per application.
func Fig3(env *Env) *Fig3Result {
	res := &Fig3Result{Report: &Report{ID: "Fig 3", Title: "Resource-level power utilities (norm-perf gain per watt)"}}
	res.Report.addf("%-14s %12s %12s %12s", "app", "+core", "+DVFS-step", "+DRAM-watt")
	for _, p := range env.Lib.Apps() {
		u := resourceUtilities(env, p)
		res.Utilities = append(res.Utilities, u)
		res.Report.addf("%-14s %12.4f %12.4f %12.4f", u.App, u.CorePerW, u.FreqPerW, u.MemPerW)
	}
	return res
}

// Fig9Result carries Fig. 9's case studies: inter-application utility
// curves for mixes 10, 1 and 14 plus intra-application resource
// utilities for the mix-1 and mix-14 applications.
type Fig9Result struct {
	InterApp map[int]*Fig2Result
	IntraApp []ResourceUtility
	Report   *Report
}

// Fig9 regenerates Fig. 9.
func Fig9(env *Env) (*Fig9Result, error) {
	res := &Fig9Result{
		InterApp: make(map[int]*Fig2Result),
		Report:   &Report{ID: "Fig 9", Title: "Utility differences across applications and their resources"},
	}
	cases := map[int][2]string{
		10: {"PageRank", "kmeans"},
		1:  {"STREAM", "kmeans"},
		14: {"X264", "SSSP"},
	}
	for _, id := range []int{10, 1, 14} {
		pair := cases[id]
		f, err := Fig2(env, pair[0], pair[1])
		if err != nil {
			return nil, err
		}
		res.InterApp[id] = f
		res.Report.addf("mix-%d inter-application utility (%s vs %s):", id, pair[0], pair[1])
		res.Report.Lines = append(res.Report.Lines, f.Report.Lines...)
	}
	res.Report.addf("resource-level utilities (Fig 9d):")
	res.Report.addf("%-14s %12s %12s %12s", "app", "+core", "+DVFS-step", "+DRAM-watt")
	for _, name := range []string{"STREAM", "kmeans", "X264", "SSSP"} {
		p, err := env.Lib.App(name)
		if err != nil {
			return nil, err
		}
		u := resourceUtilities(env, p)
		res.IntraApp = append(res.IntraApp, u)
		res.Report.addf("%-14s %12.4f %12.4f %12.4f", u.App, u.CorePerW, u.FreqPerW, u.MemPerW)
	}
	return res, nil
}
