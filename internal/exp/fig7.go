package exp

import (
	"math"
	"math/rand"
	"sync"

	"powerstruggle/internal/cf"
	"powerstruggle/internal/workload"
)

// Fig7Point is one sampled-fraction operating point of the online
// calibration study.
type Fig7Point struct {
	// Fraction of the knob space measured online.
	Fraction float64
	// OvershootPct is the mean server power overshoot over the cap when
	// allocating with estimated utilities (positive = cap violated).
	OvershootPct float64
	// PerfPct is the mean achieved performance relative to allocating
	// with exhaustively-measured utilities.
	PerfPct float64
}

// Fig7Config tunes the calibration study.
type Fig7Config struct {
	// Fractions to sweep (default 2, 5, 10, 20, 40%).
	Fractions []float64
	// CapW is the server cap the allocations target (default 100 W).
	CapW float64
	// NoiseFrac is the multiplicative measurement noise on online
	// samples (default 0.03) — power and heartbeat meters are not
	// exact, which is what makes sparse sampling risky.
	NoiseFrac float64
	// MarginFrac is the power safety margin applied when allocating
	// from estimates (default: equal to NoiseFrac).
	MarginFrac float64
	// Folds is the cross-validation fold count (default 5, as in the
	// paper).
	Folds int
	// Model overrides the CF hyperparameters (zero value: defaults).
	Model cf.ModelConfig
	// Seed drives sampling and noise.
	Seed int64
}

func (c Fig7Config) withDefaults() Fig7Config {
	if len(c.Fractions) == 0 {
		c.Fractions = []float64{0.02, 0.05, 0.10, 0.20, 0.40}
	}
	if c.CapW == 0 {
		c.CapW = 100
	}
	if c.NoiseFrac == 0 {
		c.NoiseFrac = 0.03
	}
	if c.MarginFrac == 0 {
		c.MarginFrac = c.NoiseFrac
	}
	if c.Folds == 0 {
		c.Folds = 5
	}
	if c.Model.Factors == 0 {
		c.Model = cf.DefaultModelConfig()
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
	return c
}

// Fig7Result carries the calibration sweep.
type Fig7Result struct {
	Points []Fig7Point
	// ChosenFraction is the paper's operating point: the smallest
	// fraction whose overshoot is below 0.25% and performance above
	// 95% of the exhaustive strategy.
	ChosenFraction float64
	Report         *Report
}

// Fig7 regenerates Fig. 7: sweeping the online sampling fraction and
// measuring the power and performance consequences of allocating with
// collaboratively-filtered estimates, under k-fold cross-validation
// (each fold's applications are estimated using only the others).
func Fig7(env *Env, cfg Fig7Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	ds, err := cf.BuildDataset(env.HW, env.Lib)
	if err != nil {
		return nil, err
	}
	apps := env.Lib.Apps()
	budget := env.HW.DynamicBudget(cfg.CapW)
	perApp := budget / 2 // the evaluation co-locates pairs

	res := &Fig7Result{Report: &Report{ID: "Fig 7", Title: "Calibration of online sampling (5-fold CV)"}}
	res.Report.addf("%-10s %14s %14s", "sampled", "overshoot(%)", "perf-vs-opt(%)")

	for _, frac := range cfg.Fractions {
		// Each held-out application is an independent CF training run;
		// measure the fold in parallel.
		overshoots := make([]float64, len(apps))
		perfs := make([]float64, len(apps))
		errs := make([]error, len(apps))
		var wg sync.WaitGroup
		for ti, target := range apps {
			ti, target := ti, target
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Train on the applications outside the target's fold.
				var train []int
				for i := range apps {
					if i%cfg.Folds != ti%cfg.Folds {
						train = append(train, i)
					}
				}
				rng := rand.New(rand.NewSource(cfg.Seed + int64(ti)*101 + int64(frac*1000)))
				noisy := func(v float64) float64 {
					return v * (1 + cfg.NoiseFrac*(2*rng.Float64()-1))
				}
				sampled := ds.SampleCols(frac, cfg.Seed+int64(ti))
				est, err := ds.EstimateApp(train, sampled,
					func(j int) float64 { return noisy(target.Power(env.HW, ds.Cols[j])) },
					func(j int) float64 { return noisy(target.Rate(env.HW, ds.Cols[j])) },
					cfg.Model)
				if err != nil {
					errs[ti] = err
					return
				}
				estCurve := est.CurveMargin(target.MaxCores, cfg.MarginFrac)
				oracle := workload.OptimalCurve(env.HW, target)

				// The allocator believes the estimate; the hardware
				// draws the truth.
				chosen, ok := estCurve.At(perApp)
				if !ok {
					return
				}
				truePower := target.Power(env.HW, chosen.Knobs) * chosen.DutyFrac
				over := (truePower - perApp) / perApp * 100
				if over < 0 {
					over = 0
				}
				truePerf := target.NormRate(env.HW, chosen.Knobs) * chosen.DutyFrac
				optPerf := oracle.PerfAt(perApp)
				rel := 100.0
				if optPerf > 0 {
					rel = truePerf / optPerf * 100
				}
				overshoots[ti] = over
				perfs[ti] = math.Min(rel, 120)
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		pt := Fig7Point{Fraction: frac, OvershootPct: mean(overshoots), PerfPct: mean(perfs)}
		res.Points = append(res.Points, pt)
		res.Report.addf("%-10.0f%% %13.2f %14.1f", frac*100, pt.OvershootPct, pt.PerfPct)
	}
	// The paper fixes 10%: pick the smallest fraction meeting the
	// adherence and performance bars, defaulting to the last point.
	res.ChosenFraction = cfg.Fractions[len(cfg.Fractions)-1]
	for _, p := range res.Points {
		if p.OvershootPct < 0.25 && p.PerfPct > 95 {
			res.ChosenFraction = p.Fraction
			break
		}
	}
	res.Report.addf("chosen online sampling rate: %.0f%%", res.ChosenFraction*100)
	return res, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// EstimatedCurves builds CF-estimated utility curves for a mix at a
// sampling fraction — the hook Fig 8/10 style experiments use to include
// calibration overheads ("all the results include these sampling ...
// overheads").
func EstimatedCurves(env *Env, profs []*workload.Profile, frac, noise float64, seed int64) ([]*workload.Curve, error) {
	ds, err := cf.BuildDataset(env.HW, env.Lib)
	if err != nil {
		return nil, err
	}
	apps := env.Lib.Apps()
	idxOf := func(name string) int {
		for i, a := range apps {
			if a.Name == name {
				return i
			}
		}
		return -1
	}
	out := make([]*workload.Curve, len(profs))
	for pi, p := range profs {
		ti := idxOf(p.Name)
		var train []int
		for i := range apps {
			if i != ti {
				train = append(train, i)
			}
		}
		rng := rand.New(rand.NewSource(seed + int64(pi)*37))
		noisy := func(v float64) float64 { return v * (1 + noise*(2*rng.Float64()-1)) }
		sampled := ds.SampleCols(frac, seed+int64(pi))
		est, err := ds.EstimateApp(train, sampled,
			func(j int) float64 { return noisy(p.Power(env.HW, ds.Cols[j])) },
			func(j int) float64 { return noisy(p.Rate(env.HW, ds.Cols[j])) },
			cf.DefaultModelConfig())
		if err != nil {
			return nil, err
		}
		out[pi] = est.Curve(p.MaxCores)
	}
	return out, nil
}
