package exp

import (
	"fmt"
	"math"
	"strings"
)

// Terminal rendering for the regenerated figures: horizontal bars for
// policy comparisons and sparklines for time series, so psreport output
// reads like the paper's plots without leaving the terminal.

// barChart renders labeled horizontal bars scaled to width columns.
func barChart(labels []string, values []float64, width int) []string {
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	out := make([]string, 0, len(values))
	for i, v := range values {
		n := int(math.Round(v / maxV * float64(width)))
		if n < 0 {
			n = 0
		}
		out = append(out, fmt.Sprintf("  %-*s %7.3f |%s", maxLabel, labels[i], v, strings.Repeat("#", n)))
	}
	return out
}

// sparkline renders a series as one line of block characters.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}

// downsample thins a series to at most n points by striding.
func downsample(values []float64, n int) []float64 {
	if n <= 0 || len(values) <= n {
		return values
	}
	out := make([]float64, 0, n)
	stride := float64(len(values)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, values[int(float64(i)*stride)])
	}
	return out
}
