package ctrlplane

import (
	"context"
	"fmt"
	"net/http"
	"strings"
)

// Transport is the client side of one wire encoding of the v2 control
// protocol. Every method performs exactly one attempt against the
// endpoint at base; retries, backoff, circuit breaking, and telemetry
// accounting above the wire live in rpcClient and the coordinator, so
// the two implementations (JSON-over-HTTP and binary frames over
// pooled TCP) stay semantically interchangeable. Implementations must
// honor ctx deadlines and be safe for concurrent use.
type Transport interface {
	// Scrape ticks the agent's replay clock to t (when hasT is set) and
	// returns its report. server names the agent on shared listeners;
	// the JSON transport addresses agents by URL and ignores it.
	Scrape(ctx context.Context, base string, server int, t float64, hasT bool) (Report, error)
	Assign(ctx context.Context, base string, req AssignRequest) (AssignResponse, error)
	Renew(ctx context.Context, base string, req LeaseRequest) (LeaseResponse, error)
	Register(ctx context.Context, base string, req RegisterRequest) (RegisterResponse, error)
	Vote(ctx context.Context, base string, req VoteRequest) (VoteResponse, error)
	Leader(ctx context.Context, base string) (LeaderStatus, error)
	// Name labels the transport in telemetry and errors ("json", "binary").
	Name() string
	// Close releases pooled connections. The transport is unusable after.
	Close()
}

// BatchTransport is the optional batched fan-out surface: one frame
// carries a whole fleet's scrapes or grants. Only the binary transport
// implements it; the coordinator falls back to unary RPCs elsewhere.
type BatchTransport interface {
	ScrapeBatch(ctx context.Context, base string, req BatchScrapeRequest) (BatchScrapeResponse, error)
	GrantBatch(ctx context.Context, base string, req BatchGrantRequest) (BatchGrantResponse, error)
}

// TransportKind selects a wire encoding on the CLI and in fleet
// helpers. The kind only picks defaults — the actual encoding used for
// any one endpoint is chosen per URL scheme (http/https vs tcp), so
// mixed fleets work.
type TransportKind int

const (
	// TransportJSON is HTTP/JSON: the debug/curl surface and fuzz target.
	TransportJSON TransportKind = iota
	// TransportBinary is length-prefixed binary frames over pooled TCP.
	TransportBinary
)

func (k TransportKind) String() string {
	switch k {
	case TransportJSON:
		return "json"
	case TransportBinary:
		return "binary"
	}
	return fmt.Sprintf("transport(%d)", int(k))
}

// Scheme returns the URL scheme the kind dials.
func (k TransportKind) Scheme() string {
	if k == TransportBinary {
		return "tcp"
	}
	return "http"
}

// ParseTransport parses a -transport flag value.
func ParseTransport(name string) (TransportKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "json", "http":
		return TransportJSON, nil
	case "binary", "bin", "tcp":
		return TransportBinary, nil
	}
	return TransportJSON, fmt.Errorf("ctrlplane: unknown transport %q (want json or binary)", name)
}

// DefaultScheme prefixes addr with the kind's scheme when addr has
// none, so CLI address lists may mix bare host:port tokens with
// explicit http:// or tcp:// URLs.
func (k TransportKind) DefaultScheme(addr string) string {
	if addr == "" || strings.Contains(addr, "://") {
		return addr
	}
	return k.Scheme() + "://" + addr
}

// BinaryURL reports whether base selects the binary framing.
func BinaryURL(base string) bool {
	return strings.HasPrefix(base, "tcp://")
}

// wireDialer bundles one client per encoding and picks by URL scheme.
type wireDialer struct {
	json *jsonTransport
	bin  *binaryTransport
}

// newWireDialer builds both transports. rt overrides the JSON HTTP
// round-tripper (fault-injection shims); nil gets the pooled default.
func newWireDialer(rt http.RoundTripper, tel *ctrlTel) *wireDialer {
	if tel == nil {
		tel = &ctrlTel{}
	}
	return &wireDialer{json: newJSONTransport(rt, tel), bin: newBinaryTransport(tel)}
}

func (d *wireDialer) forURL(base string) Transport {
	if BinaryURL(base) {
		return d.bin
	}
	return d.json
}

func (d *wireDialer) Close() {
	d.json.Close()
	d.bin.Close()
}
