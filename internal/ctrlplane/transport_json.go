package ctrlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// jsonIdleConnsPerHost sizes the HTTP keep-alive pool per agent host.
// http.DefaultTransport caps idle conns at 2 per host and 100 total,
// which silently re-dials on every interval once the fleet outgrows
// the pool; the control plane's fan-out is bounded by MaxInFlight, so
// a pool at least that deep keeps one persistent conn per in-flight
// slot across intervals.
const jsonIdleConnsPerHost = 64

// jsonTransport is the HTTP/JSON encoding: the debug/curl surface and
// the fuzz target. Each method is a single attempt.
type jsonTransport struct {
	hc  *http.Client
	tel *ctrlTel
}

// newJSONTransport builds the JSON client. rt overrides the
// round-tripper (the fault-injection shim path used by soak tests);
// when nil, a keep-alive pooled transport with counted dials is used
// so fan-out reuses conns across intervals instead of re-dialing.
func newJSONTransport(rt http.RoundTripper, tel *ctrlTel) *jsonTransport {
	t := &jsonTransport{tel: tel}
	if rt == nil {
		dialer := &net.Dialer{Timeout: 10 * time.Second, KeepAlive: 30 * time.Second}
		rt = &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				tel.connDials.With("json").Inc()
				return dialer.DialContext(ctx, network, addr)
			},
			MaxIdleConns:        0, // unlimited total; per-host cap below governs
			MaxIdleConnsPerHost: jsonIdleConnsPerHost,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	t.hc = &http.Client{Transport: rt}
	return t
}

func (t *jsonTransport) Name() string { return "json" }

// Close drops idle keep-alive conns.
func (t *jsonTransport) Close() {
	t.hc.CloseIdleConnections()
}

// call performs one HTTP round trip and decodes the response into out.
// Non-200 responses become errors carrying the trimmed body; *Report
// outputs take the strict decode path (unknown-field and validation
// rejection), everything else plain json.Unmarshal — responses are
// from our own coordinator/agent, requests are what untrusted peers
// send and stay strict on the handler side.
func (t *jsonTransport) call(ctx context.Context, method, url string, payload []byte, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
		t.tel.wireBytes.With("json", "tx").Add(uint64(len(payload)))
	}
	t.tel.wireFrames.With("json", "tx").Inc()
	resp, err := t.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
	}()
	data, err := readBody(resp.Body)
	if err != nil {
		return err
	}
	t.tel.wireFrames.With("json", "rx").Inc()
	t.tel.wireBytes.With("json", "rx").Add(uint64(len(data)))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ctrlplane: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	switch v := out.(type) {
	case *Report:
		rep, err := DecodeReport(data)
		if err != nil {
			return err
		}
		*v = rep
	default:
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("ctrlplane: decode response: %w", err)
		}
	}
	return nil
}

// get is one GET attempt; url is complete (base + path + query).
func (t *jsonTransport) get(ctx context.Context, url string, out any) error {
	return t.call(ctx, http.MethodGet, url, nil, out)
}

// post is one POST attempt of in marshaled as JSON.
func (t *jsonTransport) post(ctx context.Context, url string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return t.call(ctx, http.MethodPost, url, payload, out)
}

func (t *jsonTransport) Scrape(ctx context.Context, base string, server int, at float64, hasT bool) (Report, error) {
	url := base + PathReport
	if hasT {
		url += "?t=" + strconv.FormatFloat(at, 'g', -1, 64)
	}
	var rep Report
	err := t.get(ctx, url, &rep)
	return rep, err
}

func (t *jsonTransport) Assign(ctx context.Context, base string, req AssignRequest) (AssignResponse, error) {
	var resp AssignResponse
	err := t.post(ctx, base+PathAssign, req, &resp)
	return resp, err
}

func (t *jsonTransport) Renew(ctx context.Context, base string, req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := t.post(ctx, base+PathLease, req, &resp)
	return resp, err
}

func (t *jsonTransport) Register(ctx context.Context, base string, req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := t.post(ctx, base+PathRegister, req, &resp)
	return resp, err
}

func (t *jsonTransport) Vote(ctx context.Context, base string, req VoteRequest) (VoteResponse, error) {
	var raw json.RawMessage
	if err := t.post(ctx, base+PathVote, req, &raw); err != nil {
		return VoteResponse{}, err
	}
	// Vote replies cross trust domains (coordinator pools); decode
	// strictly like the voter decodes requests.
	return DecodeVoteResponse(raw)
}

func (t *jsonTransport) Leader(ctx context.Context, base string) (LeaderStatus, error) {
	var st LeaderStatus
	err := t.get(ctx, base+PathLeader, &st)
	return st, err
}
