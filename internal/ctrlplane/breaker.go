package ctrlplane

// Per-agent circuit breakers. Without one, a blackholed agent charges
// every control interval its full RPC bill — retries × timeout for the
// scrape, then again for the assign — and with enough dead agents the
// interval's wall-clock budget goes to waiting on them instead of
// serving the live fleet. The breaker converts that steady bleed into
// a bounded probe cadence: after BreakerFails consecutive failed
// scrapes the coordinator stops dialing the agent entirely for
// BreakerOpenIntervals intervals (each skip still counts as a missed
// heartbeat, so membership expiry proceeds on schedule), then spends
// exactly one retry-free probe to see whether it came back. A probe
// that succeeds closes the breaker and the agent rejoins the normal
// scrape/grant flow the same interval.
//
// The breaker is off by default (BreakerFails = 0): the parity gates
// prove the networked replay bit-identical to the in-process oracle
// under the exact default RPC behavior, and an enabled breaker changes
// when RPCs happen, not what they grant.

// breakerState classifies one member's breaker.
type breakerState int

const (
	// breakerClosed: RPCs flow normally with the full retry budget.
	breakerClosed breakerState = iota
	// breakerOpen: RPCs are skipped outright this interval.
	breakerOpen
	// breakerHalfOpen: the open window has elapsed; spend one
	// single-attempt probe.
	breakerHalfOpen
)

func (c Config) breakerEnabled() bool { return c.BreakerFails > 0 }

func (c Config) breakerOpenIntervals() int {
	if c.BreakerOpenIntervals > 0 {
		return c.BreakerOpenIntervals
	}
	return 4
}

// breakerState returns the member's current breaker state. Read on
// fan-out goroutines; mutation happens only in the single-threaded
// accounting loop between fan-outs, so no lock is needed beyond the
// step's own ordering.
func (c *Coordinator) breakerState(m *member) breakerState {
	if !c.cfg.breakerEnabled() || m.breakerFails < c.cfg.BreakerFails {
		return breakerClosed
	}
	if m.breakerOpenLeft > 0 {
		return breakerOpen
	}
	return breakerHalfOpen
}

// breakerNoteFailure records one failed scrape and reports whether it
// opened (or re-opened, after a failed probe) the breaker.
func (c *Coordinator) breakerNoteFailure(m *member) bool {
	m.breakerFails++
	if c.cfg.breakerEnabled() && m.breakerFails >= c.cfg.BreakerFails {
		m.breakerOpenLeft = c.cfg.breakerOpenIntervals()
		return true
	}
	return false
}

// breakerNoteSuccess resets the member's breaker and reports whether
// that closed a tripped one.
func (c *Coordinator) breakerNoteSuccess(m *member) bool {
	closed := c.cfg.breakerEnabled() && m.breakerFails >= c.cfg.BreakerFails
	m.breakerFails = 0
	m.breakerOpenLeft = 0
	return closed
}
