package ctrlplane

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"powerstruggle/internal/cluster"
)

// canonicalMessages returns one representative per frame type, each the
// encoded payload plus its type — the round-trip and fuzz corpora share
// them.
func canonicalMessages() map[byte][]byte {
	rep := Report{
		V: ProtocolV, Server: 3, Epoch: 2, Seq: 17,
		CapW: 85.5, PerfN: 0.92, GridW: 80.25, SoC: 0.5,
		Fenced: false, SafeMode: true, IdleFloorW: 25, NameplateW: 120,
		Version: "v1.2.3", Iv: 42,
		UtilityCurve: []cluster.CapPoint{
			{CapW: 25, Perf: 0, GridW: 25},
			{CapW: 60, Perf: 0.61, GridW: 55.5},
			{CapW: 120, Perf: 1, GridW: 110},
		},
	}
	// learned is a live daemon's report: the curve came from the online
	// estimator, so the count u32's meta flag is set and confidence +
	// observed cells trail the points.
	learned := rep2(rep, 5)
	learned.CurveConf = 0.75
	learned.CurveCells = 9
	term := WireTerm{Epoch: 4, Leader: "coord-a", ExpiresUnixNano: 1700000000000000000}
	return map[byte][]byte{
		FrameScrapeReq:  appendScrapeReq(nil, 3, 1200.5, true),
		FrameReportResp: appendReportPayload(nil, rep),
		FrameAssignReq: appendAssignReq(nil, AssignRequest{
			V: ProtocolV, Epoch: 2, Seq: 9, Server: 3, T: 1200.5, CapW: 85.5, LeaseS: 150,
			Iv: 42, LeaseIv: 3, IvS: 1.5,
		}),
		FrameAssignResp: appendAssignRespPayload(nil, AssignResponse{
			V: ProtocolV, Server: 3, Epoch: 2, Seq: 9, Applied: true,
			CapW: 85.5, PerfN: 0.92, GridW: 80.25, SoC: 0.5, Fenced: false, SafeMode: false,
			Iv: 42,
		}),
		FrameLeaseReq: appendLeaseReq(nil, LeaseRequest{
			V: ProtocolV, Epoch: 2, Server: 3, T: 1200.5, LeaseS: 150,
			Iv: 42, LeaseIv: 3, IvS: 1.5,
		}),
		FrameLeaseResp: appendLeaseRespPayload(nil, LeaseResponse{
			V: ProtocolV, Epoch: 2, Server: 3, CapW: 85.5, ExpiresT: 1350.5, Fenced: false,
			Iv: 42,
		}),
		FrameRegisterReq: appendRegisterReq(nil, RegisterRequest{
			V: ProtocolV, Server: 3, URL: "tcp://10.0.0.7:9000", NameplateW: 120,
		}),
		FrameRegisterResp: appendRegisterRespPayload(nil, RegisterResponse{
			V: ProtocolV, Server: 3, Accepted: true, Epoch: 2, Leader: true, LeaderID: "coord-a",
		}),
		FrameVoteReq: appendVoteReq(nil, VoteRequest{
			V: ProtocolV, Phase: VoteAccept, Ballot: 7, Term: &term,
		}),
		FrameVoteResp: appendVoteRespPayload(nil, VoteResponse{
			V: ProtocolV, Granted: true, Promise: 7, AcceptedBallot: 7, Term: &term,
		}),
		FrameLeaderResp: appendLeaderStatusPayload(nil, LeaderStatus{
			V: ProtocolV, ID: "coord-a", LeaderID: "coord-a", Epoch: 2, Leader: true, Failovers: 1,
		}),
		FrameBatchScrapeReq: appendBatchScrapeReq(nil, BatchScrapeRequest{
			V: ProtocolV, T: 1200.5, HasT: true, Servers: []int{0, 1, 2},
		}),
		FrameBatchScrapeResp: appendBatchScrapeRespPayload(nil, BatchScrapeResponse{
			V: ProtocolV, Results: []ScrapeResult{
				{Server: 0, Report: rep2(rep, 0)},
				{Server: 1, Err: "no agent 1 behind this listener"},
				{Server: 5, Report: learned},
			},
		}),
		FrameBatchGrantReq: appendBatchGrantReq(nil, BatchGrantRequest{
			V: ProtocolV, Epoch: 2, Seq: 9, T: 1200.5, LeaseS: 150,
			Iv: 42, LeaseIv: 3, IvS: 1.5,
			Entries: []GrantEntry{
				{Server: 0, CapW: 80, Renew: true},
				{Server: 1, CapW: 40.5, Renew: false},
			},
		}),
		FrameBatchGrantResp: appendBatchGrantRespPayload(nil, BatchGrantResponse{
			V: ProtocolV, Results: []GrantResult{
				{Server: 0, Renewed: true, Resp: AssignResponse{V: ProtocolV, Server: 0, Epoch: 2, CapW: 80, Iv: 42}},
				{Server: 1, Err: "lost it"},
			},
		}),
		FrameShardReportReq: appendShardReportReq(nil, ShardReportRequest{
			V: ProtocolV, Shard: 2, T: 1200.5, HasT: true, Iv: 42,
		}),
		FrameShardReportResp: appendShardReportPayload(nil, ShardReport{
			V: ProtocolV, Shard: 2, Epoch: 3, Seq: 11, T: 1200.5, Leading: true,
			Agents: 125, FloorW: 5625, DemandW: 7500, UsedW: 6200.5, CapW: 6450,
			BudgetW: 6500, Starved: false,
			Curve: []cluster.CapPoint{
				{CapW: 5625, Perf: 0, GridW: 5625},
				{CapW: 6500, Perf: 61.5, GridW: 6400},
				{CapW: 7500, Perf: 125, GridW: 7400},
			},
			GEpoch: 3, GSeq: 11, GIv: 42,
		}),
		FrameShardBudgetReq: appendShardBudgetReq(nil, ShardBudgetRequest{
			V: ProtocolV, Epoch: 2, Seq: 9, Shard: 2, T: 1200.5, CapW: 6500, LeaseS: 900,
			Iv: 42, LeaseIv: 3, IvS: 1.5,
		}),
		FrameShardBudgetResp: appendShardBudgetRespPayload(nil, ShardBudgetResponse{
			V: ProtocolV, Shard: 2, Epoch: 2, Seq: 9, Applied: true, CapW: 6500, Iv: 42,
		}),
		FrameLeaderReq: nil,
		FrameError:     appendErrPayload(nil, "agent 3: no such server"),
	}
}

func rep2(r Report, server int) Report {
	r.Server = server
	return r
}

// reencodePayload decodes payload as ftype's message and re-encodes it;
// ok is false when ftype has no decoder (never: all types covered) and
// err is the decode error.
func reencodePayload(ftype byte, payload []byte) ([]byte, error) {
	switch ftype {
	case FrameScrapeReq:
		server, t, hasT, err := decodeScrapeReq(payload)
		if err != nil {
			return nil, err
		}
		return appendScrapeReq(nil, server, t, hasT), nil
	case FrameReportResp:
		rep, err := decodeReportPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendReportPayload(nil, rep), nil
	case FrameAssignReq:
		req, err := decodeAssignReqPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendAssignReq(nil, req), nil
	case FrameAssignResp:
		resp, err := decodeAssignRespPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendAssignRespPayload(nil, resp), nil
	case FrameLeaseReq:
		req, err := decodeLeaseReqPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendLeaseReq(nil, req), nil
	case FrameLeaseResp:
		resp, err := decodeLeaseRespPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendLeaseRespPayload(nil, resp), nil
	case FrameRegisterReq:
		req, err := decodeRegisterReqPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendRegisterReq(nil, req), nil
	case FrameRegisterResp:
		resp, err := decodeRegisterRespPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendRegisterRespPayload(nil, resp), nil
	case FrameVoteReq:
		req, err := decodeVoteReqPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendVoteReq(nil, req), nil
	case FrameVoteResp:
		resp, err := decodeVoteRespPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendVoteRespPayload(nil, resp), nil
	case FrameLeaderReq:
		if len(payload) != 0 {
			return nil, errTrailing
		}
		return nil, nil
	case FrameLeaderResp:
		st, err := decodeLeaderStatusPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendLeaderStatusPayload(nil, st), nil
	case FrameBatchScrapeReq:
		req, err := decodeBatchScrapeReqPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendBatchScrapeReq(nil, req), nil
	case FrameBatchScrapeResp:
		resp, err := decodeBatchScrapeRespPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendBatchScrapeRespPayload(nil, resp), nil
	case FrameBatchGrantReq:
		req, err := decodeBatchGrantReqPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendBatchGrantReq(nil, req), nil
	case FrameBatchGrantResp:
		resp, err := decodeBatchGrantRespPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendBatchGrantRespPayload(nil, resp), nil
	case FrameShardReportReq:
		req, err := decodeShardReportReqPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendShardReportReq(nil, req), nil
	case FrameShardReportResp:
		rep, err := decodeShardReportPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendShardReportPayload(nil, rep), nil
	case FrameShardBudgetReq:
		req, err := decodeShardBudgetReqPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendShardBudgetReq(nil, req), nil
	case FrameShardBudgetResp:
		resp, err := decodeShardBudgetRespPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendShardBudgetRespPayload(nil, resp), nil
	case FrameError:
		msg, err := decodeErrPayload(payload)
		if err != nil {
			return nil, err
		}
		return appendErrPayload(nil, msg), nil
	}
	return nil, errUnknownFrame
}

var (
	errTrailing     = &codecTestErr{"trailing payload"}
	errUnknownFrame = &codecTestErr{"unknown frame type"}
)

type codecTestErr struct{ s string }

func (e *codecTestErr) Error() string { return e.s }

// TestFrameRoundTrip proves every message type survives encode → frame
// → decode → re-encode byte-identically.
func TestFrameRoundTrip(t *testing.T) {
	for ftype, payload := range canonicalMessages() {
		frame := EncodeFrame(ftype, payload)
		gotType, gotPayload, rest, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("frame %#02x: %v", ftype, err)
		}
		if gotType != ftype || len(rest) != 0 {
			t.Fatalf("frame %#02x decoded as %#02x with %d rest bytes", ftype, gotType, len(rest))
		}
		re, err := reencodePayload(ftype, gotPayload)
		if err != nil {
			t.Fatalf("frame %#02x payload decode: %v", ftype, err)
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("frame %#02x re-encoded %d bytes != original %d", ftype, len(re), len(payload))
		}
	}
}

// TestTypedRoundTrips checks decoded values match the originals
// field-for-field (the byte identity above could in principle hide a
// swap of two same-width fields).
func TestTypedRoundTrips(t *testing.T) {
	rep := Report{
		V: ProtocolV, Server: 5, Epoch: 3, Seq: 21, CapW: 60, PerfN: 0.7,
		GridW: 58, SoC: 0.25, Fenced: true, IdleFloorW: 25, NameplateW: 120,
		Version:      "dev",
		UtilityCurve: []cluster.CapPoint{{CapW: 25, Perf: 0, GridW: 25}, {CapW: 120, Perf: 1, GridW: 110}},
	}
	got, err := decodeReportPayload(appendReportPayload(nil, rep))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("report round trip:\n got %+v\nwant %+v", got, rep)
	}

	// A learned curve's meta fields survive the flag-bit encoding.
	rep.CurveConf = 0.375
	rep.CurveCells = 3
	got, err = decodeReportPayload(appendReportPayload(nil, rep))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("learned report round trip:\n got %+v\nwant %+v", got, rep)
	}

	areq := AssignRequest{V: ProtocolV, Epoch: 1, Seq: 4, Server: 0, T: 300, CapW: 75, LeaseS: 150,
		Iv: 7, LeaseIv: 2, IvS: 0.5}
	gotA, err := decodeAssignReqPayload(appendAssignReq(nil, areq))
	if err != nil {
		t.Fatal(err)
	}
	if gotA != areq {
		t.Fatalf("assign round trip: got %+v want %+v", gotA, areq)
	}

	vreq := VoteRequest{V: ProtocolV, Phase: VotePrepare, Ballot: 3}
	gotV, err := decodeVoteReqPayload(appendVoteReq(nil, vreq))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotV, vreq) {
		t.Fatalf("vote round trip: got %+v want %+v", gotV, vreq)
	}

	srep := ShardReport{
		V: ProtocolV, Shard: 4, Epoch: 2, Seq: 33, T: 900, Leading: true,
		Agents: 16, FloorW: 720, DemandW: 960, UsedW: 801.5, CapW: 850, BudgetW: 860,
		Starved: true,
		Curve:   []cluster.CapPoint{{CapW: 720, Perf: 0, GridW: 720}, {CapW: 960, Perf: 16, GridW: 950}},
		GEpoch:  1, GSeq: 8, GIv: 7,
	}
	gotS, err := decodeShardReportPayload(appendShardReportPayload(nil, srep))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotS, srep) {
		t.Fatalf("shard report round trip:\n got %+v\nwant %+v", gotS, srep)
	}

	sbud := ShardBudgetRequest{V: ProtocolV, Epoch: 3, Seq: 5, Shard: 1, T: 600, CapW: 512.5, LeaseS: 900,
		Iv: 7, LeaseIv: 2, IvS: 0.5}
	gotSB, err := decodeShardBudgetReqPayload(appendShardBudgetReq(nil, sbud))
	if err != nil {
		t.Fatal(err)
	}
	if gotSB != sbud {
		t.Fatalf("shard budget round trip: got %+v want %+v", gotSB, sbud)
	}

	breq := BatchGrantRequest{
		V: ProtocolV, Epoch: 2, Seq: 7, T: 600, LeaseS: 300,
		Iv: 7, LeaseIv: 2, IvS: 0.5,
		Entries: []GrantEntry{{Server: 0, CapW: 50, Renew: true}, {Server: 9, CapW: 0}},
	}
	gotB, err := decodeBatchGrantReqPayload(appendBatchGrantReq(nil, breq))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotB, breq) {
		t.Fatalf("batch grant round trip: got %+v want %+v", gotB, breq)
	}
}

// TestDecodeFrameErrors is the malformed-frame table: truncation,
// garbage, oversize, and foreign versions must all be refused.
func TestDecodeFrameErrors(t *testing.T) {
	ok := EncodeFrame(FrameLeaseReq, appendLeaseReq(nil, LeaseRequest{
		V: ProtocolV, Epoch: 1, Server: 0, T: 0, LeaseS: 0,
	}))
	oversize := make([]byte, frameHeaderLen)
	oversize[0], oversize[1], oversize[2], oversize[3] = frameMagic0, frameMagic1, ProtocolV, FrameAssignReq
	binary.BigEndian.PutUint32(oversize[4:8], maxBodyBytes+1)
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"short header", ok[:frameHeaderLen-1], "truncated"},
		{"bad magic", append([]byte("XX"), ok[2:]...), "bad frame magic"},
		{"garbage", []byte("GET /ctrl/report HTTP/1.1\r\n"), "bad frame magic"},
		{"foreign version", mutate(ok, 2, ProtocolV+1), "protocol v3"},
		{"zero version", mutate(ok, 2, 0), "protocol v0"},
		{"unknown type 0x00", mutate(ok, 3, 0x00), "unknown frame type"},
		{"unknown type 0x15", mutate(ok, 3, 0x15), "unknown frame type"},
		{"unknown type 0x80", mutate(ok, 3, 0x80), "unknown frame type"},
		{"oversize payload", oversize, "exceeds"},
		{"truncated payload", ok[:len(ok)-4], "payload truncated"},
	}
	for _, tc := range cases {
		_, _, _, err := DecodeFrame(tc.data)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	// Trailing bytes after one frame are the next frame, not an error.
	two := append(append([]byte{}, ok...), ok...)
	_, _, rest, err := DecodeFrame(two)
	if err != nil || len(rest) != len(ok) {
		t.Fatalf("stacked frames: err=%v rest=%d want %d", err, len(rest), len(ok))
	}
}

func mutate(frame []byte, i int, v byte) []byte {
	out := append([]byte{}, frame...)
	out[i] = v
	return out
}

// TestPayloadStrictness: trailing bytes, non-0|1 bools, and lying
// counts inside a well-formed frame must be refused by the message
// decoders.
func TestPayloadStrictness(t *testing.T) {
	lease := appendLeaseReq(nil, LeaseRequest{V: ProtocolV, Epoch: 1, Server: 0, T: 0, LeaseS: 0})
	if _, err := decodeLeaseReqPayload(append(lease, 0)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing byte: got %v", err)
	}
	if _, err := decodeLeaseReqPayload(lease[:len(lease)-1]); err == nil {
		t.Error("truncated payload decoded")
	}

	// Bool byte 2 would decode true but re-encode as 1 — refused.
	scrape := appendScrapeReq(nil, 1, 5, true)
	scrape[8] = 2
	if _, _, _, err := decodeScrapeReq(scrape); err == nil || !strings.Contains(err.Error(), "0|1") {
		t.Errorf("bool byte 2: got %v", err)
	}

	// A curve count past the remaining payload must fail fast, not
	// allocate. With an empty curve the count u32 sits just before the
	// trailing interval-counter u64.
	rep := appendReportPayload(nil, Report{V: ProtocolV, Server: 0, SoC: 0.5, Version: ""})
	binary.BigEndian.PutUint32(rep[len(rep)-12:len(rep)-8], 1<<30)
	if _, err := decodeReportPayload(rep); err == nil || !strings.Contains(err.Error(), "curve count") {
		t.Errorf("lying curve count: got %v", err)
	}

	// Same for batch entry counts.
	batch := appendBatchScrapeReq(nil, BatchScrapeRequest{V: ProtocolV, HasT: true, T: 1, Servers: []int{0}})
	binary.BigEndian.PutUint32(batch[9:13], 1<<30)
	if _, err := decodeBatchScrapeReqPayload(batch); err == nil || !strings.Contains(err.Error(), "exceeds payload") {
		t.Errorf("lying batch count: got %v", err)
	}

	// The curve-meta flag over all-zero meta would re-encode without
	// the flag; the non-canonical form is refused.
	withCurve := appendReportPayload(nil, Report{
		V: ProtocolV, Server: 0, SoC: 0.5,
		UtilityCurve: []cluster.CapPoint{{CapW: 25, Perf: 1, GridW: 25}},
	})
	// Count u32 sits 12 bytes (f64 conf + u32 cells... absent here) —
	// for a one-point meta-less curve it sits before 24 point bytes and
	// the trailing u64. Rebuild with the flag set and zero meta spliced
	// in after the points.
	cntOff := len(withCurve) - 8 - 24 - 4
	flagged := append([]byte{}, withCurve[:cntOff]...)
	flagged = binary.BigEndian.AppendUint32(flagged, 1|curveMetaFlag)
	flagged = append(flagged, withCurve[cntOff+4:len(withCurve)-8]...)
	flagged = binary.BigEndian.AppendUint64(flagged, 0) // zero conf f64
	flagged = binary.BigEndian.AppendUint32(flagged, 0) // zero cells u32
	flagged = append(flagged, withCurve[len(withCurve)-8:]...)
	if _, err := decodeReportPayload(flagged); err == nil || !strings.Contains(err.Error(), "zero meta") {
		t.Errorf("flagged zero curve meta: got %v", err)
	}

	// And a legacy frame — flag never set — still decodes.
	if _, err := decodeReportPayload(withCurve); err != nil {
		t.Errorf("legacy meta-less report: %v", err)
	}

	// Semantic validation runs behind structural decode: epoch 0 is a
	// clean payload but an invalid request.
	bad := appendAssignReq(nil, AssignRequest{V: ProtocolV, Epoch: 0, Seq: 1, Server: 0, T: 0, CapW: 1, LeaseS: 0})
	if _, err := decodeAssignReqPayload(bad); err == nil || !strings.Contains(err.Error(), "epoch 0") {
		t.Errorf("epoch 0 assign: got %v", err)
	}
}
