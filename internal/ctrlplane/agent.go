package ctrlplane

import (
	"fmt"
	"sync"

	"powerstruggle/internal/cf"
	"powerstruggle/internal/cluster"
)

// Backend is the server an agent enforces budgets on: the simulated
// mediated server in tests and the replay harness, a live psd daemon in
// deployment.
type Backend interface {
	// Apply enforces capW and returns the normalized performance and
	// grid draw the server settles at under that cap.
	Apply(capW float64) (perfN, gridW float64, err error)
	// SoC is the battery state of charge in [0, 1] (0 without an ESD).
	SoC() float64
	// IdleFloorW is the draw the server cannot shed without shutting
	// down; NameplateW its unconstrained maximum.
	IdleFloorW() float64
	NameplateW() float64
	// UtilityCurve samples the server's cap → (perf, grid) curve on
	// the cluster.ServerCapStepW grid, or returns nil when the server
	// cannot characterize itself.
	UtilityCurve() ([]cluster.CapPoint, error)
}

// AgentConfig parameterizes one agent.
type AgentConfig struct {
	// ID is the agent's fleet index; assigns addressed to another
	// server are refused.
	ID int
	// Backend is the enforced server (required).
	Backend Backend
	// FenceCapW is the fail-safe cap the agent self-imposes when its
	// draw lease lapses. The default of zero models the deepest
	// fail-safe the simulated platform has — suspend everything and
	// sleep — matching internal/cluster's dropout semantics (a lost
	// server draws nothing), which is what makes lease expiry and
	// in-process dropout interchangeable.
	FenceCapW float64
	// SafeMode, when enabled, replaces the fence cliff with a graceful
	// leaderless degradation: hold the last granted cap, then walk it
	// down toward a floor. Zero value keeps the cliff semantics.
	SafeMode SafeModeConfig
	// Learn, when non-nil, replaces the backend's pre-characterized
	// utility curve with an online estimator: the agent self-caps to
	// probe unsampled cap levels (never above its grant), learns the
	// cap→utility curve from what it enforces, and reports the learned
	// curve with CurveConf/CurveCells meta so the coordinator can weigh
	// its confidence. FloorW and NameplateW default to the backend's.
	Learn *cf.OnlineConfig
	// Version is reported to the coordinator (build audit).
	Version string
}

// SafeModeConfig parameterizes leaderless degradation. The invariant
// that makes holding safe: the held cap is the last cap a leader
// granted, so the fleet-wide sum of held caps never exceeds the last
// cluster cap that leader apportioned. Decay from there only shrinks
// the sum — a leaderless fleet drifts toward its floors instead of
// cliffing to them the instant a lease lapses.
type SafeModeConfig struct {
	// HoldS holds the last granted cap for this many trace seconds
	// past lease expiry before decay begins.
	HoldS float64
	// DecayWPerS is the linear ramp-down rate after the hold window.
	// Safe mode is enabled iff DecayWPerS > 0.
	DecayWPerS float64
	// FloorW is the decay target — the deepest the degradation goes
	// without a coordinator. Defaults to the agent's FenceCapW.
	FloorW float64
}

// Enabled reports whether safe-mode degradation replaces the fence
// cliff.
func (c SafeModeConfig) Enabled() bool { return c.DecayWPerS > 0 }

// Validate rejects non-finite or negative safe-mode parameters.
func (c SafeModeConfig) Validate() error {
	if !finite(c.HoldS) || c.HoldS < 0 {
		return fmt.Errorf("ctrlplane: safe-mode hold %g s", c.HoldS)
	}
	if !finite(c.DecayWPerS) || c.DecayWPerS < 0 {
		return fmt.Errorf("ctrlplane: safe-mode decay %g W/s", c.DecayWPerS)
	}
	if !finite(c.FloorW) || c.FloorW < 0 {
		return fmt.Errorf("ctrlplane: safe-mode floor %g W", c.FloorW)
	}
	return nil
}

// CapAt computes the safe-mode cap at trace time t for a lease that
// expired at expireT holding heldW: the held cap through the hold
// window, then a linear decay clamped at the floor. A held cap already
// at or below the floor just stays put.
func (c SafeModeConfig) CapAt(t, expireT, heldW float64) float64 {
	if heldW <= c.FloorW {
		return heldW
	}
	over := t - expireT - c.HoldS
	if over <= 0 {
		return heldW
	}
	capW := heldW - c.DecayWPerS*over
	if capW < c.FloorW {
		capW = c.FloorW
	}
	return capW
}

// Agent is the per-server control-plane endpoint: it holds the enforced
// cap, the draw lease, and the last applied sequence number, and fences
// itself when the lease lapses. All methods are safe for concurrent
// use.
type Agent struct {
	cfg AgentConfig

	mu         sync.Mutex
	capW       float64
	perfN      float64
	gridW      float64
	lastEpoch  uint64
	lastSeq    uint64
	lastGrantT float64
	leaseS     float64
	// Protocol-clock state (docs/CONTROL_PLANE.md "Protocol clock").
	// grantIv/leaseIv/ivS are the in-force grant's clock triple: the
	// lease lapses once the effective interval reaches grantIv+leaseIv.
	// lastSeenIv is the highest interval observed from any grant or
	// renewal; lastSeenT anchors it on the local clock so the effective
	// interval keeps counting at ivS when the coordinator stalls.
	grantIv    uint64
	leaseIv    uint64
	ivS        float64
	lastSeenIv uint64
	lastSeenT  float64
	// localT is the agent's own clock high-water mark (trace time for
	// replay agents, injected wall seconds for daemons).
	localT float64
	// skewIv is the last measured coordinator skew in intervals:
	// locally elapsed intervals minus coordinator-minted intervals over
	// the same span (positive = the coordinator runs slow).
	skewIv float64
	fenced bool
	// safeMode is a flavor of fenced: the lease lapsed, but instead of
	// the fence cap the agent enforces heldW decaying per SafeMode.
	// Only a fresh Assign clears it.
	safeMode    bool
	safeEntries int
	heldW       float64
	expireT     float64
	curve       []cluster.CapPoint
	curveBuilt  bool
	// Online-learning state (cfg.Learn): est learns the cap→utility
	// curve from enforced caps, grantW remembers the full grant so a
	// probing agent can restore it, and lastProbeIv rate-limits probe
	// moves to one per protocol interval — the cap never flaps within
	// an interval.
	est         *cf.OnlineEstimator
	grantW      float64
	lastProbeIv uint64
	// assigns/fences/staleDrops/epochDrops count protocol activity for
	// the local operator (the coordinator has its own fleet-wide
	// counters).
	assigns    int
	fences     int
	staleDrops int
	epochDrops int
}

// NewAgent builds an agent booted in the fenced state: until the first
// grant arrives it enforces the fail-safe cap, so a freshly started
// fleet is safe by default.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("ctrlplane: agent %d needs a backend", cfg.ID)
	}
	if cfg.ID < 0 {
		return nil, fmt.Errorf("ctrlplane: agent id %d", cfg.ID)
	}
	if !finite(cfg.FenceCapW) || cfg.FenceCapW < 0 {
		return nil, fmt.Errorf("ctrlplane: agent %d fence cap %g W", cfg.ID, cfg.FenceCapW)
	}
	if err := cfg.SafeMode.Validate(); err != nil {
		return nil, fmt.Errorf("agent %d: %w", cfg.ID, err)
	}
	if cfg.SafeMode.Enabled() && cfg.SafeMode.FloorW == 0 {
		cfg.SafeMode.FloorW = cfg.FenceCapW
	}
	a := &Agent{cfg: cfg, fenced: true, capW: cfg.FenceCapW}
	if cfg.Learn != nil {
		lc := *cfg.Learn
		if lc.FloorW == 0 {
			lc.FloorW = cfg.Backend.IdleFloorW()
		}
		if lc.NameplateW == 0 {
			lc.NameplateW = cfg.Backend.NameplateW()
		}
		est, err := cf.NewOnlineEstimator(lc)
		if err != nil {
			return nil, fmt.Errorf("ctrlplane: agent %d learner: %w", cfg.ID, err)
		}
		a.est = est
	}
	perf, grid, err := cfg.Backend.Apply(cfg.FenceCapW)
	if err != nil {
		return nil, fmt.Errorf("ctrlplane: agent %d boot fence: %w", cfg.ID, err)
	}
	a.perfN, a.gridW = perf, grid
	return a, nil
}

// ID returns the agent's fleet index.
func (a *Agent) ID() int { return a.cfg.ID }

// Assign applies a budget grant. Grants are ordered by (Epoch, Seq):
// anything not strictly newer than the last applied pair is
// acknowledged without effect. Within one epoch that makes assignment
// idempotent under network-level duplication and reordering; across
// epochs it fences a deposed leader — once any grant from epoch E has
// been applied, every in-flight or retried grant from an older epoch
// is refused, no matter how it was delayed or duplicated.
func (a *Agent) Assign(req AssignRequest) (AssignResponse, error) {
	if req.Server != a.cfg.ID {
		return AssignResponse{}, fmt.Errorf("ctrlplane: assign for server %d reached agent %d", req.Server, a.cfg.ID)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if req.Epoch < a.lastEpoch {
		a.epochDrops++
		return a.stateLocked(false), nil
	}
	if req.Epoch == a.lastEpoch && req.Seq <= a.lastSeq {
		a.staleDrops++
		return a.stateLocked(false), nil
	}
	capW := req.CapW
	if a.est != nil {
		// A learning agent may self-cap below its grant to probe an
		// unsampled cell; a probe never exceeds the grant, so the
		// cluster cap holds while the curve is partial.
		a.grantW = req.CapW
		capW = a.est.ProbeCap(req.CapW)
		a.lastProbeIv = req.Iv
	}
	perf, grid, err := a.cfg.Backend.Apply(capW)
	if err != nil {
		return AssignResponse{}, err
	}
	a.capW, a.perfN, a.gridW = capW, perf, grid
	a.lastEpoch = req.Epoch
	a.lastSeq = req.Seq
	a.lastGrantT = req.T
	a.leaseS = req.LeaseS
	if req.T > a.localT {
		a.localT = req.T
	}
	a.noteIvLocked(req.Iv, req.IvS)
	a.grantIv = req.Iv
	a.leaseIv = req.LeaseIv
	a.ivS = req.IvS
	a.fenced = false
	a.safeMode = false
	a.assigns++
	if a.est != nil {
		a.est.Observe(a.capW, a.perfN)
	}
	return a.stateLocked(true), nil
}

// Renew extends the draw lease without changing the budget. A fenced
// agent stays fenced and its lease clock stays dead — only a fresh
// Assign restores a budget (the daemon's ctrlRenew has the same
// semantics). A delayed or duplicated renewal carrying a T older than
// the last grant is ignored: moving the lease clock backward would
// spuriously fence a healthy agent on its next Tick. Only the epoch
// that granted the in-force budget may renew it — a deposed leader
// must not keep a budget it no longer owns alive, and a new leader has
// nothing to renew before its first assign.
func (a *Agent) Renew(req LeaseRequest) (LeaseResponse, error) {
	if req.Server != a.cfg.ID {
		return LeaseResponse{}, fmt.Errorf("ctrlplane: lease for server %d reached agent %d", req.Server, a.cfg.ID)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if req.Epoch < a.lastEpoch {
		a.epochDrops++
	} else {
		// Any renewal from the current (or a newer) epoch is a protocol-
		// clock observation, even when it cannot move the lease: a fenced
		// or safe-mode agent keeps counting the coordinator's intervals,
		// which is what ages its decay correctly.
		if req.T > a.localT {
			a.localT = req.T
		}
		a.noteIvLocked(req.Iv, req.IvS)
		if req.Epoch == a.lastEpoch && !a.fenced && req.T >= a.lastGrantT {
			a.lastGrantT = req.T
			a.leaseS = req.LeaseS
			a.grantIv = req.Iv
			a.leaseIv = req.LeaseIv
			a.ivS = req.IvS
		}
	}
	resp := LeaseResponse{V: ProtocolV, Epoch: a.lastEpoch, Server: a.cfg.ID, CapW: a.capW, Fenced: a.fenced, Iv: a.lastSeenIv}
	if !a.fenced && a.leaseS > 0 {
		resp.ExpiresT = a.lastGrantT + a.leaseS
	}
	return resp, nil
}

// noteIvLocked folds one observed coordinator interval into the
// protocol clock: measure skew against the locally elapsed span, then
// advance the high-water mark. Zero ivs (clockless peers) are ignored.
func (a *Agent) noteIvLocked(iv uint64, ivS float64) {
	if iv == 0 || iv <= a.lastSeenIv {
		return
	}
	if a.lastSeenIv > 0 && ivS > 0 {
		a.skewIv = (a.localT-a.lastSeenT)/ivS - float64(iv-a.lastSeenIv)
	}
	a.lastSeenIv = iv
	a.lastSeenT = a.localT
}

// clockModeLocked reports whether the in-force grant carries an
// interval lease — the protocol clock then replaces seconds-based
// lease aging entirely.
func (a *Agent) clockModeLocked() bool { return a.leaseIv > 0 && a.ivS > 0 }

// effectiveIvLocked is the agent's protocol-clock reading: the highest
// observed interval, advanced by whole nominal intervals of local time
// elapsed since that observation. While the coordinator mints on
// schedule the local extrapolation stays at zero; when it stalls, the
// effective interval keeps counting at ivS — which is exactly what
// lapses the lease on time without wall-vs-trace ambiguity.
func (a *Agent) effectiveIvLocked() uint64 {
	if a.ivS <= 0 {
		return a.lastSeenIv
	}
	dt := a.localT - a.lastSeenT
	if dt <= 0 {
		return a.lastSeenIv
	}
	return a.lastSeenIv + uint64(dt/a.ivS)
}

// Tick advances the agent's clock to trace time t and fences the server
// if its draw lease has lapsed. The daemon calls this from its
// wall-clock loop; the replay harness and handler call it with
// coordinator time.
func (a *Agent) Tick(t float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tickLocked(t)
}

func (a *Agent) tickLocked(t float64) error {
	if t > a.localT {
		a.localT = t
	}
	if a.safeMode {
		// Already degrading leaderless: continue the decay.
		return a.applySafeCapLocked(t)
	}
	if a.fenced {
		return nil
	}
	if a.clockModeLocked() {
		// Interval lease: lapse once the effective interval reaches the
		// grant's boundary — seconds play no part.
		if a.effectiveIvLocked() < a.grantIv+a.leaseIv {
			return a.learnTickLocked()
		}
	} else if a.leaseS <= 0 || t < a.lastGrantT+a.leaseS {
		return a.learnTickLocked()
	}
	if a.cfg.SafeMode.Enabled() {
		// Lease lapsed with safe mode on: hold the last granted cap
		// (fleet sum still bounded by the last cluster cap a leader
		// apportioned) and start the decay clock at the expiry instant,
		// not at whenever the next tick happened to land.
		a.safeMode = true
		a.fenced = true
		a.fences++
		a.safeEntries++
		a.heldW = a.capW
		a.expireT = a.lastGrantT + a.leaseS
		return a.applySafeCapLocked(t)
	}
	perf, grid, err := a.cfg.Backend.Apply(a.cfg.FenceCapW)
	if err != nil {
		return fmt.Errorf("ctrlplane: agent %d fence: %w", a.cfg.ID, err)
	}
	a.capW, a.perfN, a.gridW = a.cfg.FenceCapW, perf, grid
	a.fenced = true
	a.fences++
	return nil
}

// learnTickLocked runs one online-learning step under a live lease:
// observe the cell the enforced cap lands on, then — at most once per
// protocol interval — move the probe to the estimator's next choice.
// Rate-limiting probe moves to interval boundaries keeps the cap from
// flapping within an interval; a converged estimator's probe is the
// full grant, so learning agents settle back onto their grants. In
// clockless (seconds-lease) deployments the interval counter never
// advances, so probes move only on fresh assigns.
func (a *Agent) learnTickLocked() error {
	if a.est == nil || a.fenced {
		return nil
	}
	a.est.Observe(a.capW, a.perfN)
	target := a.capW
	if iv := a.effectiveIvLocked(); iv > a.lastProbeIv {
		a.lastProbeIv = iv
		target = a.est.ProbeCap(a.grantW)
	}
	if target == a.capW {
		return nil
	}
	perf, grid, err := a.cfg.Backend.Apply(target)
	if err != nil {
		return fmt.Errorf("ctrlplane: agent %d probe: %w", a.cfg.ID, err)
	}
	a.capW, a.perfN, a.gridW = target, perf, grid
	return nil
}

// applySafeCapLocked enforces the safe-mode cap for trace time t. In
// clock mode the decay ages by whole protocol intervals past the lapse
// boundary — an integer count times the nominal interval length — so a
// trace-replay fleet and a wall-clock fleet walking the same interval
// sequence enforce bit-identical caps.
func (a *Agent) applySafeCapLocked(t float64) error {
	var target float64
	if a.clockModeLocked() {
		boundary := a.grantIv + a.leaseIv
		var over uint64
		if eff := a.effectiveIvLocked(); eff > boundary {
			over = eff - boundary
		}
		target = a.cfg.SafeMode.CapAt(float64(over)*a.ivS, 0, a.heldW)
	} else {
		target = a.cfg.SafeMode.CapAt(t, a.expireT, a.heldW)
	}
	if target == a.capW {
		return nil
	}
	perf, grid, err := a.cfg.Backend.Apply(target)
	if err != nil {
		return fmt.Errorf("ctrlplane: agent %d safe-mode decay: %w", a.cfg.ID, err)
	}
	a.capW, a.perfN, a.gridW = target, perf, grid
	return nil
}

// Refresh re-applies the enforced cap so the reported perf and draw
// reflect the backend's current workload — the control-plane twin of a
// live daemon re-planning under an unchanged cap when its hosted mix
// shifts. The budget, lease, and fencing ledger are untouched.
func (a *Agent) Refresh() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	perf, grid, err := a.cfg.Backend.Apply(a.capW)
	if err != nil {
		return fmt.Errorf("ctrlplane: agent %d refresh: %w", a.cfg.ID, err)
	}
	a.perfN, a.gridW = perf, grid
	return nil
}

// Report snapshots the agent for a telemetry scrape. A pre-characterized
// agent builds its cap-utility curve lazily on first use (the curve is a
// property of the hosted mix and does not change); a learning agent
// reports its current learned curve with CurveConf/CurveCells meta
// instead, or no curve at all before the first accepted observation.
func (a *Agent) Report() (Report, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.est != nil {
		rep := a.reportLocked()
		if curve, ok := a.est.Curve(); ok {
			rep.UtilityCurve = curve
			rep.CurveConf = a.est.Confidence()
			rep.CurveCells = a.est.ObservedCells()
		}
		return rep, nil
	}
	if !a.curveBuilt {
		curve, err := a.cfg.Backend.UtilityCurve()
		if err != nil {
			return Report{}, err
		}
		a.curve = curve
		a.curveBuilt = true
	}
	rep := a.reportLocked()
	rep.UtilityCurve = a.curve
	return rep, nil
}

// reportLocked builds the curveless part of a scrape report.
func (a *Agent) reportLocked() Report {
	return Report{
		V:        ProtocolV,
		Server:   a.cfg.ID,
		Epoch:    a.lastEpoch,
		Seq:      a.lastSeq,
		CapW:     a.capW,
		PerfN:    a.perfN,
		GridW:    a.gridW,
		SoC:      a.cfg.Backend.SoC(),
		Fenced:   a.fenced,
		SafeMode: a.safeMode,

		IdleFloorW: a.cfg.Backend.IdleFloorW(),
		NameplateW: a.cfg.Backend.NameplateW(),
		Version:    a.cfg.Version,
		Iv:         a.lastSeenIv,
	}
}

// Scrape is Tick-then-Report in one call: the server side of a
// telemetry scrape regardless of transport (the HTTP handler parses
// ?t= into it, the binary server decodes a scrape frame into it).
// hasT is false when the scrape carries no coordinator clock.
func (a *Agent) Scrape(t float64, hasT bool) (Report, error) {
	if hasT {
		if err := a.Tick(t); err != nil {
			return Report{}, err
		}
	}
	return a.Report()
}

// stateLocked builds an AssignResponse from the current state.
func (a *Agent) stateLocked(applied bool) AssignResponse {
	return AssignResponse{
		V: ProtocolV, Server: a.cfg.ID, Epoch: a.lastEpoch, Seq: a.lastSeq, Applied: applied,
		CapW: a.capW, PerfN: a.perfN, GridW: a.gridW,
		SoC: a.cfg.Backend.SoC(), Fenced: a.fenced, SafeMode: a.safeMode,
		Iv: a.lastSeenIv,
	}
}

// CapW returns the cap the agent currently enforces.
func (a *Agent) CapW() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capW
}

// GridW returns the grid draw the enforced cap settles at — the ground
// truth the soak test sums against the cluster cap.
func (a *Agent) GridW() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gridW
}

// PerfN returns the delivered normalized performance.
func (a *Agent) PerfN() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.perfN
}

// Fenced reports whether the fail-safe cap is in force.
func (a *Agent) Fenced() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fenced
}

// SafeMode reports whether the agent is degrading leaderless — fenced,
// but holding/decaying the last granted cap instead of cliffing.
func (a *Agent) SafeMode() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.safeMode
}

// SafeModeEntries counts lease lapses that entered safe-mode
// degradation (a subset of Fences).
func (a *Agent) SafeModeEntries() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.safeEntries
}

// Assigns counts applied budget grants — renewals excluded, so a
// steady-state fleet shows one assign followed by renewals only.
func (a *Agent) Assigns() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.assigns
}

// Fences counts lease lapses that forced the fail-safe cap.
func (a *Agent) Fences() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fences
}

// StaleDrops counts stale or duplicated assigns refused by sequence
// check.
func (a *Agent) StaleDrops() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.staleDrops
}

// EpochDrops counts grants and renewals refused for carrying an epoch
// older than the newest one applied — a deposed leader's traffic.
func (a *Agent) EpochDrops() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epochDrops
}

// LastEpoch is the highest coordinator epoch the agent has applied a
// grant from (0 before the first grant).
func (a *Agent) LastEpoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastEpoch
}

// LastIv is the highest protocol-clock interval the agent has observed
// from any grant or renewal (0 while clockless).
func (a *Agent) LastIv() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastSeenIv
}

// Learning reports whether the agent characterizes its utility curve
// online instead of trusting a pre-characterized backend curve.
func (a *Agent) Learning() bool { return a.est != nil }

// LearnConverged reports whether the online estimator has sampled every
// cap cell often enough to stop probing (false when not learning).
func (a *Agent) LearnConverged() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.est != nil && a.est.Converged()
}

// LearnConfidence is the learned curve's coverage fraction (0 when not
// learning).
func (a *Agent) LearnConfidence() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.est == nil {
		return 0
	}
	return a.est.Confidence()
}

// ClockSkewIv is the last measured coordinator skew in intervals:
// positive when the coordinator minted fewer intervals than the
// agent's local clock counted over the same span (the coordinator runs
// slow or stalls), negative when it minted faster.
func (a *Agent) ClockSkewIv() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.skewIv
}
