package ctrlplane

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// CtrlEndpoint is the server-side surface one agent exposes to the
// binary transport — implemented by *Agent for replay fleets and by
// the daemon's control adapter for live servers. Methods mirror the
// three agent RPCs; all must be safe for concurrent use.
type CtrlEndpoint interface {
	Assign(req AssignRequest) (AssignResponse, error)
	Renew(req LeaseRequest) (LeaseResponse, error)
	Scrape(t float64, hasT bool) (Report, error)
}

// BinaryServerConfig wires endpoints into a BinaryServer. Endpoints
// maps server id → agent; many agents share one listener, which is
// what makes batch frames possible. The coordinator hooks are nil on
// agent-only servers — the matching frames then answer FrameError.
type BinaryServerConfig struct {
	Endpoints map[int]CtrlEndpoint
	Register  func(req RegisterRequest) RegisterResponse
	Vote      func(req VoteRequest) VoteResponse
	Leader    func() LeaderStatus
	// ShardReport and ShardBudget are the trunk surface a shard
	// coordinator exposes to the global apportioner; nil on servers that
	// are not shard coordinators (the frames then answer FrameError).
	ShardReport func(req ShardReportRequest) (ShardReport, error)
	ShardBudget func(req ShardBudgetRequest) (ShardBudgetResponse, error)
}

// BinaryServer serves the binary framing of the v2 control protocol on
// one TCP listener: many agents (and optionally a coordinator's
// register/vote/leader surface) behind a single addr, one goroutine
// per conn, frames answered in arrival order per conn.
type BinaryServer struct {
	cfg BinaryServerConfig
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// serverIdleTimeout sheds conns idle longer than this; clients redial
// transparently.
const serverIdleTimeout = 5 * time.Minute

// StartBinaryServer listens on addr (host:port, port 0 for ephemeral)
// and serves until Close.
func StartBinaryServer(addr string, cfg BinaryServerConfig) (*BinaryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &BinaryServer{cfg: cfg, ln: ln, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the bound listen address.
func (s *BinaryServer) Addr() string { return s.ln.Addr().String() }

// URL returns the tcp:// base URL clients dial.
func (s *BinaryServer) URL() string { return "tcp://" + s.Addr() }

// BounceConns closes every live conn (chaos drills); the listener
// stays up, so clients recover by redialing.
func (s *BinaryServer) BounceConns() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close stops the listener and tears down every conn.
func (s *BinaryServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.BounceConns()
	s.wg.Wait()
}

func (s *BinaryServer) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *BinaryServer) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *BinaryServer) serve() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(c) {
			c.Close()
			return
		}
		s.wg.Add(1)
		go s.handle(c)
	}
}

func (s *BinaryServer) handle(c net.Conn) {
	defer s.wg.Done()
	defer s.untrack(c)
	defer c.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		_ = c.SetReadDeadline(time.Now().Add(serverIdleTimeout))
		ftype, payload, err := readFrame(br)
		if err != nil {
			// Framing errors (bad magic, truncation, oversize) desync
			// the stream: there is no way back to a frame boundary, so
			// the conn is dropped rather than answered.
			return
		}
		respType, resp := s.dispatch(ftype, payload)
		_ = c.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if err := writeFrame(bw, respType, resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *BinaryServer) endpoint(server int) (CtrlEndpoint, error) {
	ep, ok := s.cfg.Endpoints[server]
	if !ok {
		return nil, fmt.Errorf("no agent %d behind this listener", server)
	}
	return ep, nil
}

// dispatch answers one decoded frame. Malformed payloads inside a
// well-framed message answer FrameError and keep the conn — the moral
// equivalent of the HTTP handlers' 400s.
func (s *BinaryServer) dispatch(ftype byte, payload []byte) (byte, []byte) {
	fail := func(err error) (byte, []byte) {
		return FrameError, appendErrPayload(nil, err.Error())
	}
	switch ftype {
	case FrameScrapeReq:
		server, t, hasT, err := decodeScrapeReq(payload)
		if err != nil {
			return fail(err)
		}
		ep, err := s.endpoint(server)
		if err != nil {
			return fail(err)
		}
		rep, err := ep.Scrape(t, hasT)
		if err != nil {
			return fail(err)
		}
		return FrameReportResp, appendReportPayload(nil, rep)

	case FrameAssignReq:
		req, err := decodeAssignReqPayload(payload)
		if err != nil {
			return fail(err)
		}
		ep, err := s.endpoint(req.Server)
		if err != nil {
			return fail(err)
		}
		resp, err := ep.Assign(req)
		if err != nil {
			return fail(err)
		}
		return FrameAssignResp, appendAssignRespPayload(nil, resp)

	case FrameLeaseReq:
		req, err := decodeLeaseReqPayload(payload)
		if err != nil {
			return fail(err)
		}
		ep, err := s.endpoint(req.Server)
		if err != nil {
			return fail(err)
		}
		resp, err := ep.Renew(req)
		if err != nil {
			return fail(err)
		}
		return FrameLeaseResp, appendLeaseRespPayload(nil, resp)

	case FrameRegisterReq:
		if s.cfg.Register == nil {
			return fail(fmt.Errorf("not a coordinator: no register endpoint"))
		}
		req, err := decodeRegisterReqPayload(payload)
		if err != nil {
			return fail(err)
		}
		return FrameRegisterResp, appendRegisterRespPayload(nil, s.cfg.Register(req))

	case FrameVoteReq:
		if s.cfg.Vote == nil {
			return fail(fmt.Errorf("not a quorum voter: no vote endpoint"))
		}
		req, err := decodeVoteReqPayload(payload)
		if err != nil {
			return fail(err)
		}
		return FrameVoteResp, appendVoteRespPayload(nil, s.cfg.Vote(req))

	case FrameLeaderReq:
		if s.cfg.Leader == nil {
			return fail(fmt.Errorf("not a coordinator: no leader endpoint"))
		}
		if len(payload) != 0 {
			return fail(fmt.Errorf("leader request carries %d payload bytes", len(payload)))
		}
		return FrameLeaderResp, appendLeaderStatusPayload(nil, s.cfg.Leader())

	case FrameBatchScrapeReq:
		req, err := decodeBatchScrapeReqPayload(payload)
		if err != nil {
			return fail(err)
		}
		resp := BatchScrapeResponse{V: ProtocolV}
		for _, server := range req.Servers {
			resp.Results = append(resp.Results, s.scrapeOne(server, req.T, req.HasT))
		}
		return FrameBatchScrapeResp, appendBatchScrapeRespPayload(nil, resp)

	case FrameBatchGrantReq:
		req, err := decodeBatchGrantReqPayload(payload)
		if err != nil {
			return fail(err)
		}
		resp := BatchGrantResponse{V: ProtocolV}
		for _, e := range req.Entries {
			resp.Results = append(resp.Results, s.grantOne(req, e))
		}
		return FrameBatchGrantResp, appendBatchGrantRespPayload(nil, resp)

	case FrameShardReportReq:
		if s.cfg.ShardReport == nil {
			return fail(fmt.Errorf("not a shard coordinator: no shard-report endpoint"))
		}
		req, err := decodeShardReportReqPayload(payload)
		if err != nil {
			return fail(err)
		}
		rep, err := s.cfg.ShardReport(req)
		if err != nil {
			return fail(err)
		}
		return FrameShardReportResp, appendShardReportPayload(nil, rep)

	case FrameShardBudgetReq:
		if s.cfg.ShardBudget == nil {
			return fail(fmt.Errorf("not a shard coordinator: no shard-budget endpoint"))
		}
		req, err := decodeShardBudgetReqPayload(payload)
		if err != nil {
			return fail(err)
		}
		resp, err := s.cfg.ShardBudget(req)
		if err != nil {
			return fail(err)
		}
		return FrameShardBudgetResp, appendShardBudgetRespPayload(nil, resp)
	}
	return fail(fmt.Errorf("frame type %#02x is not a request", ftype))
}

func (s *BinaryServer) scrapeOne(server int, t float64, hasT bool) ScrapeResult {
	ep, err := s.endpoint(server)
	if err != nil {
		return ScrapeResult{Server: server, Err: err.Error()}
	}
	rep, err := ep.Scrape(t, hasT)
	if err != nil {
		return ScrapeResult{Server: server, Err: err.Error()}
	}
	return ScrapeResult{Server: server, Report: rep}
}

// NewCoordinatorBinaryConfig exposes a coordinator's register/vote/
// leader surface over binary frames — the frame-for-frame mirror of
// NewCoordinatorHandler. ha and voter may be nil with the same
// meanings. Merge the result with agent endpoints to co-host both on
// one listener.
func NewCoordinatorBinaryConfig(c *Coordinator, ha *HA, voter *QuorumVoter) BinaryServerConfig {
	cfg := BinaryServerConfig{
		Register: func(req RegisterRequest) RegisterResponse {
			resp := c.Register(req)
			st := coordStatus(c, ha)
			resp.Leader = st.Leader
			resp.LeaderID = st.LeaderID
			return resp
		},
		Leader: func() LeaderStatus { return coordStatus(c, ha) },
	}
	if voter != nil {
		cfg.Vote = voter.Vote
	}
	return cfg
}

// grantOne applies one batch-grant entry: a coalesced renewal first
// when asked, falling through to a fresh assign under the frame's
// (Epoch, Seq) when the renewal did not hold the requested budget —
// the coordinator's unary renew-else-assign sequence, server-side.
func (s *BinaryServer) grantOne(req BatchGrantRequest, e GrantEntry) GrantResult {
	ep, err := s.endpoint(e.Server)
	if err != nil {
		return GrantResult{Server: e.Server, Err: err.Error()}
	}
	if e.Renew {
		lr := LeaseRequest{V: ProtocolV, Epoch: req.Epoch, Server: e.Server, T: req.T, LeaseS: req.LeaseS,
			Iv: req.Iv, LeaseIv: req.LeaseIv, IvS: req.IvS}
		resp, err := ep.Renew(lr)
		if err == nil && !resp.Fenced && resp.Epoch == req.Epoch && resp.CapW == e.CapW {
			return GrantResult{Server: e.Server, Renewed: true, Resp: AssignResponse{
				V: ProtocolV, Server: e.Server, Epoch: resp.Epoch, CapW: resp.CapW, Fenced: resp.Fenced, Iv: resp.Iv,
			}}
		}
	}
	ar := AssignRequest{V: ProtocolV, Epoch: req.Epoch, Seq: req.Seq, Server: e.Server, T: req.T, CapW: e.CapW, LeaseS: req.LeaseS,
		Iv: req.Iv, LeaseIv: req.LeaseIv, IvS: req.IvS}
	resp, err := ep.Assign(ar)
	if err != nil {
		return GrantResult{Server: e.Server, Err: err.Error()}
	}
	return GrantResult{Server: e.Server, Resp: resp}
}
