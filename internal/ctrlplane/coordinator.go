package ctrlplane

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"powerstruggle/internal/cluster"
	"powerstruggle/internal/faults"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/trace"
)

// Strategy selects how the coordinator apportions the cluster cap.
type Strategy int

const (
	// StrategyEqual splits the cap evenly across live agents —
	// Equal(Ours) with the network in the loop.
	StrategyEqual Strategy = iota
	// StrategyUtility apportions by marginal utility with the
	// cluster.ApportionCurves DP over scraped cap-utility curves —
	// Utility(Ours) with the network in the loop.
	StrategyUtility
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyEqual:
		return "equal"
	case StrategyUtility:
		return "utility"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy maps a CLI name to a strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "equal":
		return StrategyEqual, nil
	case "utility":
		return StrategyUtility, nil
	default:
		return 0, fmt.Errorf("ctrlplane: unknown strategy %q (equal, utility)", name)
	}
}

// AgentRef addresses one fleet member.
type AgentRef struct {
	// ID is the agent's fleet index (must match the agent's own).
	ID int
	// URL is the agent's base URL, e.g. http://10.0.0.7:8080.
	URL string
}

// Config parameterizes the coordinator.
type Config struct {
	// Agents is the initial fleet. With Dynamic set it may be empty and
	// agents join at runtime through Register (the coordinator
	// handler's /ctrl/register endpoint).
	Agents []AgentRef
	// Dynamic admits agents registered after construction; without it
	// an empty Agents list is an error and registrations are refused.
	Dynamic bool
	// Strategy picks the apportioning scheme (default equal).
	Strategy Strategy
	// LeaseS is the draw lease granted with every assignment, in trace
	// seconds. A lease no longer than the control interval gives the
	// hard cap guarantee (a stale agent fences before it can draw
	// against an old budget); longer leases bound any breach by their
	// length. Zero grants non-lapsing budgets.
	LeaseS float64
	// LeaseIv, when positive, switches the fleet to protocol-clock
	// leases: every grant carries the minting interval and is valid for
	// LeaseIv intervals of the granting epoch, identically for
	// trace-replay agents and wall-clock daemons (LeaseS still rides
	// along for mixed fleets with clockless agents). A coordinator in
	// this mode refuses to grant until it has rehydrated its interval
	// counter from a majority of scrape responses, so a crash–restart
	// cannot re-issue interval numbers.
	LeaseIv int
	// IntervalS is the nominal control-interval length in seconds,
	// stamped on every clock-mode grant so agents can age the protocol
	// clock locally when the coordinator stalls. Required when LeaseIv
	// is set.
	IntervalS float64
	// MissK is how many consecutive failed scrapes expire an agent's
	// membership lease (default 3; the parity tests use 1 so expiry
	// lands in the same control interval as the outage).
	MissK int
	// MaxInFlight bounds fan-out concurrency (default 8).
	MaxInFlight int
	// RPCTimeout bounds each RPC attempt (default 2s).
	RPCTimeout time.Duration
	// Retries is the per-RPC retry budget beyond the first attempt
	// (default 2), under jittered exponential backoff bounded by
	// BackoffBase and BackoffMax (defaults 10ms, 160ms).
	Retries     int
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerFails, when positive, arms a per-agent circuit breaker:
	// after that many consecutive failed scrapes the coordinator stops
	// dialing the agent for BreakerOpenIntervals control intervals
	// (skips still count as missed heartbeats), then spends one
	// retry-free probe. Zero (the default) disables the breaker — the
	// parity replays depend on the exact default RPC behavior.
	BreakerFails int
	// BreakerOpenIntervals is the open window in control intervals
	// (default 4).
	BreakerOpenIntervals int
	// Seed drives backoff jitter.
	Seed int64
	// FloorW overrides the idle floor fed to the utility DP; zero
	// learns it from agent reports.
	FloorW float64
	// CurveConfFloor is the minimum confidence at which a learned
	// member curve (one reported with CurveConf/CurveCells meta) enters
	// the utility DP; below it the member takes the curveless even-share
	// fallback. Pre-characterized curves, reported without meta, are
	// always trusted. Zero means DefaultCurveConfFloor; negative admits
	// every learned curve.
	CurveConfFloor float64
	// Transport lets callers wrap the HTTP transport — the fault
	// injector's drop/delay/duplicate shim in the soak tests (nil:
	// http.DefaultTransport).
	Transport http.RoundTripper
	// Telemetry, when non-nil, instruments the coordinator (fleet
	// gauges, RPC counters and latency, membership trace instants).
	Telemetry *telemetry.Hub
}

// DefaultCurveConfFloor is the coverage confidence a learned curve
// must reach before the utility DP trusts it: three quarters of the
// cap grid observed or filled-and-verified. Below it the even-share
// fallback is safer than a curve that is mostly extrapolation.
const DefaultCurveConfFloor = 0.75

func (c Config) curveConfFloor() float64 {
	if c.CurveConfFloor != 0 {
		return c.CurveConfFloor
	}
	return DefaultCurveConfFloor
}

func (c Config) missK() int {
	if c.MissK > 0 {
		return c.MissK
	}
	return 3
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return 8
}

func (c Config) rpcTimeout() time.Duration {
	if c.RPCTimeout > 0 {
		return c.RPCTimeout
	}
	return 2 * time.Second
}

func (c Config) rpcRetries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 2
}

func (c Config) backoffBase() time.Duration {
	if c.BackoffBase > 0 {
		return c.BackoffBase
	}
	return 10 * time.Millisecond
}

func (c Config) backoffMax() time.Duration {
	if c.BackoffMax > 0 {
		return c.BackoffMax
	}
	return 160 * time.Millisecond
}

// member is the coordinator's view of one agent.
type member struct {
	ref    AgentRef
	alive  bool
	misses int
	// grantedW is the last acknowledged budget (what the agent
	// enforces until its lease lapses).
	grantedW float64
	granted  bool
	// Scraped state. curveConf/curveCells mirror the report's curve
	// meta: both zero for a pre-characterized (fully trusted) curve,
	// non-zero for a learned one the apportioner weighs against the
	// confidence floor.
	scraped    bool
	floorW     float64
	curve      []cluster.CapPoint
	curveConf  float64
	curveCells int
	gridW      float64
	perfN      float64
	soc        float64
	fenced     bool
	version    string
	// Circuit-breaker ledger (see breaker.go): consecutive failed
	// scrapes, and open-window intervals left to skip.
	breakerFails    int
	breakerOpenLeft int
}

// Stats accumulates coordinator lifetime counters.
type Stats struct {
	Steps          int
	Observes       int
	Reapportions   int
	LeaseExpiries  int
	Rejoins        int
	ScrapeFailures int
	AssignFailures int
	RenewFailures  int
	Registrations  int
	// BreakerTrips counts per-agent circuit breakers opened (including
	// re-opens after a failed half-open probe); BreakerSkips counts
	// RPCs never sent because a breaker was open.
	BreakerTrips int
	BreakerSkips int
	// Rehydrations counts interval-counter rehydrations from a scrape
	// majority — once per (re)start in clock mode.
	Rehydrations int
	// BatchFrames counts batch frames exchanged on the binary
	// transport; BatchedOps counts the per-agent operations they
	// carried (a fleet of 1k behind one listener moves ~1k ops in 2
	// frames per interval).
	BatchFrames int
	BatchedOps  int
}

// StepResult is one control interval's outcome.
type StepResult struct {
	T    float64
	CapW float64
	// Epoch is the leadership epoch the interval ran under (always 1
	// for a plain single coordinator).
	Epoch uint64
	// Leading is false for an Observe interval: budgets were computed
	// but nothing was granted.
	Leading bool
	// Iv is the protocol-clock interval minted for this interval's
	// grants (0 on observe intervals and clockless coordinators).
	Iv uint64
	// Rehydrating reports a clock-mode leader that skipped granting
	// because it has not yet recovered its interval counter from a
	// majority of agent scrapes (a restart in progress).
	Rehydrating bool
	// Deposed reports that some response carried an epoch above this
	// coordinator's — another leader has taken over and this one's
	// grants are being refused.
	Deposed bool
	// Budgets is the per-agent budget the coordinator decided this
	// interval (zero for expired agents) — the sequence the parity
	// gate compares against the in-process oracle.
	Budgets []float64
	// Granted marks which budgets were acknowledged by their agent.
	Granted []bool
	// Alive is the membership mask after this interval's scrapes.
	Alive []bool
	// Reapportioned reports an alive-set transition this interval.
	Reapportioned bool
	// FleetGridW and FleetPerfN sum the live agents' scraped state.
	FleetGridW float64
	FleetPerfN float64
	// ScrapeErrs/AssignErrs count RPC failures this interval (after
	// retries).
	ScrapeErrs int
	AssignErrs int
	// BreakerSkips counts RPCs not sent this interval because the
	// target agent's circuit breaker was open.
	BreakerSkips int
}

// Coordinator drives a fleet of agents: scrape, decide, fan out.
// Step is single-threaded (it is the control loop); the fan-out inside
// each step is concurrent.
type Coordinator struct {
	cfg    Config
	client *rpcClient
	tel    *ctrlTel

	members   []*member
	seq       uint64
	prevAlive []bool
	stats     Stats
	flog      *faults.Log
	// dp is the incremental apportioning cache: between intervals most
	// member curves are unchanged (pre-characterized ones never change,
	// learned ones only while probing), so the utility DP replays only
	// the layers after the first changed curve.
	dp cluster.Apportioner

	// epoch is the leadership epoch grants fan out under (1 for a
	// plain coordinator; the HA wrapper moves it on election wins).
	// seenEpoch is the highest epoch observed in any response — above
	// epoch means this coordinator has been deposed. Both are atomics
	// because fan-out goroutines and the registration handler read
	// them concurrently with the control loop.
	epoch     atomic.Uint64
	seenEpoch atomic.Uint64

	// iv is the protocol-clock interval counter (clock mode only; 0
	// until the first mint). Atomic because the registration handler and
	// tests read it concurrently with the control loop. rehydrated,
	// maxSeenIv, and maxSeenSeq only move on the control loop: a fresh
	// clock-mode coordinator must see a majority of agent reports — and
	// adopt the highest interval and same-epoch sequence among them —
	// before it may mint, so a crash–restart cannot re-issue interval or
	// sequence numbers another grant already used.
	iv         atomic.Uint64
	rehydrated bool
	maxSeenIv  uint64
	maxSeenSeq uint64

	// regMu guards pending, the agent announcements queued by Register
	// (HTTP handler goroutines) until the next Step admits them.
	regMu   sync.Mutex
	pending []AgentRef
}

// New builds a coordinator over a static fleet.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Agents) == 0 && !cfg.Dynamic {
		return nil, fmt.Errorf("ctrlplane: coordinator needs at least one agent (or Config.Dynamic for a registration-built fleet)")
	}
	seen := make(map[int]bool, len(cfg.Agents))
	for _, ref := range cfg.Agents {
		if ref.ID < 0 || ref.URL == "" {
			return nil, fmt.Errorf("ctrlplane: bad agent ref %+v", ref)
		}
		if seen[ref.ID] {
			return nil, fmt.Errorf("ctrlplane: duplicate agent id %d", ref.ID)
		}
		seen[ref.ID] = true
	}
	if cfg.LeaseS < 0 || !finite(cfg.LeaseS) {
		return nil, fmt.Errorf("ctrlplane: lease %g s", cfg.LeaseS)
	}
	if cfg.LeaseIv < 0 {
		return nil, fmt.Errorf("ctrlplane: lease of %d intervals", cfg.LeaseIv)
	}
	if cfg.LeaseIv > 0 && (!finite(cfg.IntervalS) || cfg.IntervalS <= 0) {
		return nil, fmt.Errorf("ctrlplane: interval leases need IntervalS > 0, got %g", cfg.IntervalS)
	}
	tel := newCtrlTel(cfg.Telemetry)
	c := &Coordinator{
		cfg:    cfg,
		tel:    tel,
		client: newRPCClient(cfg, tel),
		flog:   faults.NewLog(0),
		// A clockless coordinator has nothing to recover; a clock-mode
		// one starts unrehydrated and earns the right to mint from its
		// first majority scrape.
		rehydrated: cfg.LeaseIv == 0,
	}
	for _, ref := range cfg.Agents {
		// Members start alive — the in-process oracle starts every
		// server alive too; an unreachable agent expires after MissK
		// intervals.
		c.members = append(c.members, &member{ref: ref, alive: true})
	}
	c.epoch.Store(1)
	return c, nil
}

// Epoch returns the leadership epoch grants currently fan out under.
func (c *Coordinator) Epoch() uint64 { return c.epoch.Load() }

// PeakEpoch returns the highest epoch observed in any agent response —
// above Epoch() means another coordinator leads.
func (c *Coordinator) PeakEpoch() uint64 { return c.seenEpoch.Load() }

// Iv returns the protocol-clock interval counter: the last interval
// minted (0 before the first mint, and always 0 for a clockless
// coordinator). Unlike the epoch it is monotonic across elections —
// SetEpoch does not reset it — which is what makes interval numbers
// unique for the life of the fleet.
func (c *Coordinator) Iv() uint64 { return c.iv.Load() }

// SetEpoch moves the coordinator to a new leadership epoch. Bumping it
// invalidates the granted ledger, so the next step assigns every
// member afresh instead of renewing leases granted under an older
// epoch (which agents would refuse anyway). Call between steps only —
// the HA wrapper does, right after winning an election.
func (c *Coordinator) SetEpoch(e uint64) {
	if c.epoch.Swap(e) == e {
		return
	}
	for _, m := range c.members {
		m.grantedW, m.granted = 0, false
	}
}

// noteEpoch folds an observed response epoch into the peak.
func (c *Coordinator) noteEpoch(e uint64) {
	for {
		cur := c.seenEpoch.Load()
		if e <= cur || c.seenEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Register queues an agent announcement; the next control interval
// admits it (or updates the URL of a member that re-announced after a
// restart). Safe to call from handler goroutines concurrently with
// Step. The response's leader fields are zero here — the coordinator
// handler fills them from the HA layer when one is attached.
func (c *Coordinator) Register(req RegisterRequest) RegisterResponse {
	resp := RegisterResponse{V: ProtocolV, Server: req.Server, Epoch: c.Epoch()}
	if !c.cfg.Dynamic {
		return resp
	}
	ref := AgentRef{ID: req.Server, URL: strings.TrimSuffix(req.URL, "/")}
	c.regMu.Lock()
	replaced := false
	for i, p := range c.pending {
		if p.ID == ref.ID {
			c.pending[i], replaced = ref, true
			break
		}
	}
	if !replaced {
		c.pending = append(c.pending, ref)
	}
	c.regMu.Unlock()
	c.tel.registrations.Inc()
	resp.Accepted = true
	return resp
}

// admitRegistrations merges queued announcements into the member set.
// Runs at the top of each control interval, on the control loop's
// goroutine, so membership never mutates mid-step.
func (c *Coordinator) admitRegistrations(t float64) {
	c.regMu.Lock()
	pending := c.pending
	c.pending = nil
	c.regMu.Unlock()
	for _, ref := range pending {
		found := false
		for _, m := range c.members {
			if m.ref.ID == ref.ID {
				found = true
				if m.ref.URL != ref.URL {
					c.flog.Append(faults.Event{T: t, Kind: "agent-reregister", Target: fmt.Sprintf("agent-%d", ref.ID),
						Detail: fmt.Sprintf("url %s -> %s", m.ref.URL, ref.URL)})
					m.ref.URL = ref.URL
				}
				break
			}
		}
		if found {
			continue
		}
		// A new member starts alive, like the initial fleet: it just
		// announced itself, and its first scrape follows immediately.
		c.members = append(c.members, &member{ref: ref, alive: true})
		c.stats.Registrations++
		c.flog.Append(faults.Event{T: t, Kind: "agent-register", Target: fmt.Sprintf("agent-%d", ref.ID),
			Detail: fmt.Sprintf("announced at %s; fleet is now %d agents", ref.URL, len(c.members))})
	}
}

// Stats returns the coordinator's lifetime counters.
func (c *Coordinator) Stats() Stats { return c.stats }

// FaultEvents returns the membership event log (lease expiries and
// rejoins) in order.
func (c *Coordinator) FaultEvents() []faults.Event { return c.flog.Events() }

// Step drives one control interval at trace time t under cluster cap
// capW: scrape every member (the liveness heartbeat), settle
// membership, apportion the cap across the live fleet, and fan the
// budgets out.
func (c *Coordinator) Step(ctx context.Context, t, capW float64) (StepResult, error) {
	return c.step(ctx, t, capW, true)
}

// Observe runs one control interval without granting anything: scrape
// the fleet (warm state and the membership heartbeat), settle
// membership, and compute what this coordinator would apportion. A
// standby runs Observe every interval so that on winning an election
// it already holds current curves, floors, budgets, and membership —
// takeover needs no discovery phase, which is what keeps failover
// inside one control interval.
func (c *Coordinator) Observe(ctx context.Context, t, capW float64) (StepResult, error) {
	return c.step(ctx, t, capW, false)
}

func (c *Coordinator) step(ctx context.Context, t, capW float64, lead bool) (StepResult, error) {
	if !finite(t) || !finite(capW) || capW < 0 {
		return StepResult{}, fmt.Errorf("ctrlplane: step t=%g cap=%g", t, capW)
	}
	c.admitRegistrations(t)
	epoch := c.epoch.Load()
	n := len(c.members)
	res := StepResult{
		T: t, CapW: capW,
		Epoch: epoch, Leading: lead,
		Budgets: make([]float64, n),
		Granted: make([]bool, n),
		Alive:   make([]bool, n),
	}

	// Phase 1 — telemetry scrape, doubling as the membership
	// heartbeat. Parallel with bounded concurrency; each RPC carries
	// the coordinator clock so agents can notice lapsed leases. A
	// member behind an open circuit breaker is skipped outright (the
	// skip still counts as a missed heartbeat); a half-open one gets a
	// single retry-free probe. Closed-breaker members sharing one
	// binary listener ride a single batch frame instead of unary RPCs;
	// breaker states are snapshotted serially first (they only mutate
	// in the accounting loops between fan-outs, so the snapshot equals
	// what each goroutine would read) because grouping depends on them.
	reports := make([]*Report, n)
	errs := make([]error, n)
	skipped := make([]bool, n)
	var batchFrames, batchOps atomic.Int64
	states := make([]breakerState, n)
	for i, m := range c.members {
		states[i] = c.breakerState(m)
	}
	groups, grouped := c.batchGroups(states, nil)
	work := make([]func(), 0, n)
	for i := range c.members {
		if grouped[i] {
			continue
		}
		i, m := i, c.members[i]
		work = append(work, func() {
			if states[i] == breakerOpen {
				skipped[i] = true
				return
			}
			retries := c.cfg.rpcRetries()
			if states[i] == breakerHalfOpen {
				retries = 0
			}
			rep, err := c.client.scrape(ctx, retries, m.ref.URL, m.ref.ID, t)
			if err != nil {
				errs[i] = err
				return
			}
			if rep.Server != m.ref.ID {
				errs[i] = fmt.Errorf("ctrlplane: scrape of agent %d answered as %d", m.ref.ID, rep.Server)
				return
			}
			c.noteEpoch(rep.Epoch)
			reports[i] = &rep
		})
	}
	for _, g := range groups {
		g := g
		work = append(work, func() {
			req := BatchScrapeRequest{V: ProtocolV, T: t, HasT: true, Servers: make([]int, 0, len(g.idx))}
			for _, i := range g.idx {
				req.Servers = append(req.Servers, c.members[i].ref.ID)
			}
			resp, err := c.client.scrapeBatch(ctx, g.url, req)
			if err != nil {
				for _, i := range g.idx {
					errs[i] = err
				}
				return
			}
			batchFrames.Add(1)
			batchOps.Add(int64(len(g.idx)))
			byID := make(map[int]int, len(g.idx))
			for _, i := range g.idx {
				byID[c.members[i].ref.ID] = i
			}
			for _, r := range resp.Results {
				i, ok := byID[r.Server]
				if !ok {
					continue
				}
				delete(byID, r.Server)
				if r.Err != "" {
					errs[i] = fmt.Errorf("ctrlplane: agent %d: %s", r.Server, r.Err)
					continue
				}
				rep := r.Report
				if rep.Server != r.Server {
					errs[i] = fmt.Errorf("ctrlplane: scrape of agent %d answered as %d", r.Server, rep.Server)
					continue
				}
				c.noteEpoch(rep.Epoch)
				reports[i] = &rep
			}
			for id, i := range byID {
				errs[i] = fmt.Errorf("ctrlplane: batch scrape response missing agent %d", id)
			}
		})
	}
	fanOut(ctx, len(work), c.cfg.maxInFlight(), func(k int) { work[k]() })
	for i, m := range c.members {
		if rep := reports[i]; rep != nil {
			if c.breakerNoteSuccess(m) {
				c.flog.Append(faults.Event{T: t, Kind: "breaker-close", Target: fmt.Sprintf("agent-%d", m.ref.ID),
					Detail: "half-open probe answered; resuming normal scrape/grant flow"})
			}
			m.misses = 0
			m.scraped = true
			m.gridW, m.perfN, m.soc, m.fenced = rep.GridW, rep.PerfN, rep.SoC, rep.Fenced
			m.floorW = rep.IdleFloorW
			m.version = rep.Version
			if len(rep.UtilityCurve) > 0 {
				m.curve = rep.UtilityCurve
				m.curveConf = rep.CurveConf
				m.curveCells = rep.CurveCells
			}
			if c.tel.enabled {
				c.tel.agentSoC.With(strconv.Itoa(i)).Set(rep.SoC)
			}
		} else {
			if skipped[i] {
				m.breakerOpenLeft--
				res.BreakerSkips++
				c.stats.BreakerSkips++
			} else if errs[i] != nil && c.breakerNoteFailure(m) {
				c.stats.BreakerTrips++
				c.tel.breakerTrips.Inc()
				c.flog.Append(faults.Event{T: t, Kind: "breaker-open", Target: fmt.Sprintf("agent-%d", m.ref.ID),
					Detail: fmt.Sprintf("%d consecutive failed scrapes; skipping RPCs for %d intervals", m.breakerFails, c.cfg.breakerOpenIntervals())})
			}
			m.misses++
			m.scraped = false
			res.ScrapeErrs++
			c.stats.ScrapeFailures++
		}
	}

	// Protocol-clock harvest (clock mode only). Every scraped report
	// carries the agent's highest observed interval; fold them into the
	// skew gauge and — until a majority has answered — the rehydration
	// ledger. Observe intervals harvest too, so a warm standby is
	// already rehydrated when it wins an election.
	if c.cfg.LeaseIv > 0 {
		scrapedOK := 0
		cur := c.iv.Load()
		for i := range c.members {
			rep := reports[i]
			if rep == nil {
				continue
			}
			scrapedOK++
			if rep.Iv > c.maxSeenIv {
				c.maxSeenIv = rep.Iv
			}
			if rep.Epoch == epoch && rep.Seq > c.maxSeenSeq {
				c.maxSeenSeq = rep.Seq
			}
			if c.tel.enabled {
				// Per-member lag series; the fleet max the old scalar gauge
				// carried is max() over these.
				var lag float64
				if cur > rep.Iv {
					lag = float64(cur - rep.Iv)
				}
				c.tel.clockSkewIv.With(strconv.Itoa(i)).Set(lag)
			}
		}
		// Keep the counter at least as high as anything the fleet has
		// echoed — for the active leader this is a no-op (reports echo
		// its own mints), but it keeps a warm standby's counter tracking
		// the leader interval by interval, so a promotion mints above
		// everything its predecessor issued, not above a boot-time
		// snapshot.
		if c.maxSeenIv > c.iv.Load() {
			c.iv.Store(c.maxSeenIv)
		}
		if !c.rehydrated && scrapedOK >= len(c.members)/2+1 {
			// Majority heard: no interval or same-epoch sequence above
			// these can have been granted (a grant needs the same
			// majority's listeners reachable), so minting past them is
			// safe.
			if c.maxSeenSeq > c.seq {
				c.seq = c.maxSeenSeq
			}
			c.rehydrated = true
			c.stats.Rehydrations++
			c.tel.rehydrations.Inc()
			c.flog.Append(faults.Event{T: t, Kind: "clock-rehydrate", Target: "coordinator",
				Detail: fmt.Sprintf("interval counter recovered from %d/%d agents: iv=%d seq=%d", scrapedOK, len(c.members), c.iv.Load(), c.seq)})
		}
	}

	// Phase 2 — membership: expire after MissK consecutive misses,
	// readmit on the first successful scrape.
	for i, m := range c.members {
		switch {
		case m.alive && m.misses >= c.cfg.missK():
			m.alive = false
			m.grantedW, m.granted = 0, false
			c.stats.LeaseExpiries++
			c.tel.leaseExpiries.Inc()
			c.tel.noteMembership(t, i, true)
			c.flog.Append(faults.Event{T: t, Kind: "lease-expiry", Target: fmt.Sprintf("agent-%d", i),
				Detail: fmt.Sprintf("%d consecutive missed scrapes; re-apportioning cluster budget across survivors", m.misses)})
		case !m.alive && m.scraped:
			m.alive = true
			c.stats.Rejoins++
			c.tel.rejoins.Inc()
			c.tel.noteMembership(t, i, false)
			c.flog.Append(faults.Event{T: t, Kind: "agent-rejoin", Target: fmt.Sprintf("agent-%d", i),
				Detail: "agent back; re-apportioning cluster budget"})
		}
		res.Alive[i] = m.alive
	}
	if c.prevAlive != nil {
		if len(c.prevAlive) != len(res.Alive) {
			// Registration grew the fleet mid-run.
			res.Reapportioned = true
		} else {
			for i := range res.Alive {
				if res.Alive[i] != c.prevAlive[i] {
					res.Reapportioned = true
					break
				}
			}
		}
	}
	c.prevAlive = append(c.prevAlive[:0], res.Alive...)
	if res.Reapportioned {
		c.stats.Reapportions++
		c.tel.reapportions.Inc()
	}

	// Phase 3 — apportion the cluster cap across the live fleet.
	if err := c.apportion(capW, res.Alive, res.Budgets); err != nil {
		return StepResult{}, err
	}

	// Phase 4 — fan the budgets out (leader only; a standby's interval
	// ends at the decision). An unchanged budget rides a cheap lease
	// renewal instead of a full assignment; either way the grant
	// re-arms the agent's draw lease. Every request carries the
	// leadership epoch, and every response reports the agent's highest
	// applied epoch — one above ours anywhere means we are deposed and
	// our grants are being refused.
	if !lead {
		for _, m := range c.members {
			if m.scraped {
				res.FleetGridW += m.gridW
				res.FleetPerfN += m.perfN
			}
		}
		res.Deposed = c.seenEpoch.Load() > epoch
		c.stats.Observes++
		c.stats.BatchFrames += int(batchFrames.Load())
		c.stats.BatchedOps += int(batchOps.Load())
		c.tel.batchedOps.Add(uint64(batchOps.Load()))
		c.tel.noteStep(res)
		return res, nil
	}
	if !c.rehydrated {
		// Clock-mode leader that has not yet heard a majority: minting
		// now could re-issue an interval number a pre-restart grant
		// already used, double-committing budget within one lease
		// window. Hold grants; agents ride their leases (or safe mode)
		// until the counter is recovered.
		for _, m := range c.members {
			if m.scraped {
				res.FleetGridW += m.gridW
				res.FleetPerfN += m.perfN
			}
		}
		res.Rehydrating = true
		res.Deposed = c.seenEpoch.Load() > epoch
		c.stats.Observes++
		c.stats.BatchFrames += int(batchFrames.Load())
		c.stats.BatchedOps += int(batchOps.Load())
		c.tel.batchedOps.Add(uint64(batchOps.Load()))
		c.tel.noteStep(res)
		return res, nil
	}
	c.seq++
	seq := c.seq
	// Mint this interval's protocol-clock reading and the lease triple
	// every grant carries (all zero when clockless).
	var mintIv, leaseIv uint64
	var ivS float64
	if c.cfg.LeaseIv > 0 {
		mintIv = c.iv.Add(1)
		leaseIv = uint64(c.cfg.LeaseIv)
		ivS = c.cfg.IntervalS
		res.Iv = mintIv
	}
	renewFailed := make([]bool, n)
	grantSkipped := make([]bool, n)
	// Recompute breaker states: the scrape accounting above moved them
	// (a success closes a breaker, a failure may open one).
	for i, m := range c.members {
		states[i] = c.breakerState(m)
	}
	groups, grouped = c.batchGroups(states, res.Alive)
	grantWork := make([]func(), 0, n)
	for i := range c.members {
		if grouped[i] {
			continue
		}
		i, m := i, c.members[i]
		grantWork = append(grantWork, func() {
			if !m.alive {
				return
			}
			if states[i] == breakerOpen {
				// The scrape already paid this member's miss; don't burn
				// the assign budget against the same black hole.
				grantSkipped[i] = true
				return
			}
			if m.granted && m.grantedW == res.Budgets[i] && m.scraped && !m.fenced {
				req := LeaseRequest{V: ProtocolV, Epoch: epoch, Server: m.ref.ID, T: t, LeaseS: c.cfg.LeaseS,
					Iv: mintIv, LeaseIv: leaseIv, IvS: ivS}
				resp, err := c.client.renew(ctx, m.ref.URL, req)
				if err == nil {
					c.noteEpoch(resp.Epoch)
					if !resp.Fenced && resp.Epoch == epoch && resp.CapW == m.grantedW {
						res.Granted[i] = true
						return
					}
				}
				renewFailed[i] = err != nil
				// Fall through to a full assignment: a failed renewal may
				// leave the agent about to fence; a renewal answered
				// fenced, from another epoch, or enforcing a cap other
				// than the grant (the agent fenced and was re-assigned
				// between the scrape and the renewal) means the budget is
				// not in force; only an assign restores it and re-arms
				// the lease.
			}
			req := AssignRequest{V: ProtocolV, Epoch: epoch, Seq: seq, Server: m.ref.ID, T: t,
				CapW: res.Budgets[i], LeaseS: c.cfg.LeaseS, Iv: mintIv, LeaseIv: leaseIv, IvS: ivS}
			retries := c.cfg.rpcRetries()
			if states[i] == breakerHalfOpen {
				retries = 0
			}
			resp, err := c.client.assign(ctx, retries, m.ref.URL, req)
			if err != nil {
				errs[i] = err
				return
			}
			c.noteEpoch(resp.Epoch)
			// Applied, or refused-as-duplicate with our own grant already
			// in force, both mean this interval's budget holds. A refusal
			// carrying a higher epoch means another leader owns the agent.
			if resp.Applied || (resp.Epoch == epoch && resp.CapW == res.Budgets[i]) {
				res.Granted[i] = true
				return
			}
			errs[i] = fmt.Errorf("ctrlplane: agent %d refused epoch-%d grant (agent at epoch %d)",
				m.ref.ID, epoch, resp.Epoch)
		})
	}
	for _, g := range groups {
		g := g
		grantWork = append(grantWork, func() {
			// One frame carries the whole group: coalesced renewals for
			// members whose acknowledged budget already matches, fresh
			// assigns for the rest. The server applies the same
			// renew-else-assign sequence per entry that the unary path
			// runs client-side, so semantics are transport-independent.
			req := BatchGrantRequest{V: ProtocolV, Epoch: epoch, Seq: seq, T: t, LeaseS: c.cfg.LeaseS,
				Iv: mintIv, LeaseIv: leaseIv, IvS: ivS}
			for _, i := range g.idx {
				m := c.members[i]
				req.Entries = append(req.Entries, GrantEntry{
					Server: m.ref.ID,
					CapW:   res.Budgets[i],
					Renew:  m.granted && m.grantedW == res.Budgets[i] && m.scraped && !m.fenced,
				})
			}
			resp, err := c.client.grantBatch(ctx, g.url, req)
			if err != nil {
				for _, i := range g.idx {
					errs[i] = err
				}
				return
			}
			batchFrames.Add(1)
			batchOps.Add(int64(len(g.idx)))
			byID := make(map[int]int, len(g.idx))
			for _, i := range g.idx {
				byID[c.members[i].ref.ID] = i
			}
			for _, r := range resp.Results {
				i, ok := byID[r.Server]
				if !ok {
					continue
				}
				delete(byID, r.Server)
				if r.Err != "" {
					errs[i] = fmt.Errorf("ctrlplane: agent %d: %s", r.Server, r.Err)
					continue
				}
				c.noteEpoch(r.Resp.Epoch)
				if r.Renewed || r.Resp.Applied || (r.Resp.Epoch == epoch && r.Resp.CapW == res.Budgets[i]) {
					res.Granted[i] = true
					continue
				}
				errs[i] = fmt.Errorf("ctrlplane: agent %d refused epoch-%d grant (agent at epoch %d)",
					r.Server, epoch, r.Resp.Epoch)
			}
			for id, i := range byID {
				errs[i] = fmt.Errorf("ctrlplane: batch grant response missing agent %d", id)
			}
		})
	}
	fanOut(ctx, len(grantWork), c.cfg.maxInFlight(), func(k int) { grantWork[k]() })
	for i, m := range c.members {
		if !m.alive {
			continue
		}
		if renewFailed[i] {
			c.stats.RenewFailures++
		}
		if grantSkipped[i] {
			res.BreakerSkips++
			c.stats.BreakerSkips++
		}
		if res.Granted[i] {
			m.grantedW, m.granted = res.Budgets[i], true
		} else {
			res.AssignErrs++
			c.stats.AssignFailures++
			c.tel.assignFails.Inc()
		}
		if m.scraped {
			res.FleetGridW += m.gridW
			res.FleetPerfN += m.perfN
		}
	}
	res.Deposed = c.seenEpoch.Load() > epoch

	c.stats.Steps++
	c.stats.BatchFrames += int(batchFrames.Load())
	c.stats.BatchedOps += int(batchOps.Load())
	c.tel.batchedOps.Add(uint64(batchOps.Load()))
	c.tel.noteStep(res)
	return res, nil
}

// batchGroup is one batch frame's worth of members: fleet indices that
// share a binary listener URL.
type batchGroup struct {
	url string
	idx []int
}

// batchGroups partitions the members eligible for batch frames —
// closed-breaker (open members are skipped, half-open ones probe
// unary with no retries), alive when an alive mask is given, and
// behind a tcp:// URL — into per-URL groups of at least two, chunked
// at maxBatchEntries. Singleton members stay on the unary path: a
// batch frame for one agent buys nothing over a unary frame on the
// same pooled conn. Returns the groups and a mask of grouped indices.
func (c *Coordinator) batchGroups(states []breakerState, alive []bool) ([]batchGroup, []bool) {
	grouped := make([]bool, len(c.members))
	byURL := make(map[string][]int)
	order := make([]string, 0, 4)
	for i, m := range c.members {
		if states[i] != breakerClosed || !BinaryURL(m.ref.URL) {
			continue
		}
		if alive != nil && !alive[i] {
			continue
		}
		url := trimSlash(m.ref.URL)
		if _, ok := byURL[url]; !ok {
			order = append(order, url)
		}
		byURL[url] = append(byURL[url], i)
	}
	var groups []batchGroup
	for _, url := range order {
		idx := byURL[url]
		if len(idx) < 2 {
			continue
		}
		for len(idx) > 0 {
			n := min(len(idx), maxBatchEntries)
			g := batchGroup{url: url, idx: idx[:n]}
			idx = idx[n:]
			groups = append(groups, g)
			for _, i := range g.idx {
				grouped[i] = true
			}
		}
	}
	return groups, grouped
}

// WireStats is the client-side connection ledger for the binary
// transport — the bench asserts dials stay bounded while reuses grow
// with the interval count (i.e. the pool works).
type WireStats struct {
	BinaryDials  uint64
	BinaryReuses uint64
}

// WireStats returns the coordinator's connection counters.
func (c *Coordinator) WireStats() WireStats {
	return WireStats{
		BinaryDials:  c.client.dialer.bin.dials.Load(),
		BinaryReuses: c.client.dialer.bin.reuses.Load(),
	}
}

// Close releases pooled connections (both transports). The coordinator
// must not be stepped afterwards.
func (c *Coordinator) Close() { c.client.close() }

// apportion fills budgets with the strategy's per-agent grants.
func (c *Coordinator) apportion(capW float64, alive []bool, budgets []float64) error {
	var idxs []int
	for i, a := range alive {
		if a {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return nil
	}
	switch c.cfg.Strategy {
	case StrategyEqual:
		per := capW / float64(len(idxs))
		for _, i := range idxs {
			budgets[i] = per
		}
	case StrategyUtility:
		// Members whose report yields no usable cap-utility curve — a
		// curveless live daemon, a learner below the confidence floor,
		// or a member on MissK grace that has not reported yet — get the
		// documented fallback of an even share; the DP apportions the
		// remaining budget across the curve-bearing members. The
		// effective-curve decision is made once here, per interval, so a
		// curve crossing the floor cannot flap a member's treatment
		// within one apportion.
		per := capW / float64(len(idxs))
		remainW := capW
		var curved []int
		for _, i := range idxs {
			if c.effectiveCurve(c.members[i]) == nil {
				budgets[i] = per
				remainW -= per
			} else {
				curved = append(curved, i)
			}
		}
		if len(curved) == 0 {
			return nil
		}
		floor := c.cfg.FloorW
		if floor == 0 {
			// ApportionCurves prices every curve from one common idle
			// floor; silently picking one member's floor would compute
			// every other member's budget against the wrong floor, so
			// a heterogeneous fleet must say what it wants explicitly.
			floor = c.members[curved[0]].floorW
			for _, i := range curved[1:] {
				if f := c.members[i].floorW; f != floor {
					return fmt.Errorf("ctrlplane: heterogeneous idle floors (agent %d reports %g W, agent %d reports %g W); set Config.FloorW to apportion a mixed fleet",
						c.members[curved[0]].ref.ID, floor, c.members[i].ref.ID, f)
				}
			}
		}
		curves := make([][]cluster.CapPoint, len(curved))
		for j, i := range curved {
			curves[j] = c.effectiveCurve(c.members[i])
		}
		// The incremental apportioner is bit-identical to ApportionCurves
		// and only recomputes the DP layers after the first member whose
		// curve changed since the last interval.
		b, _, _ := c.dp.Apportion(remainW, floor, curves)
		for j, i := range curved {
			budgets[i] = b[j]
		}
	default:
		return fmt.Errorf("ctrlplane: unknown strategy %v", c.cfg.Strategy)
	}
	return nil
}

// effectiveCurve returns the cap-utility curve the apportioner may use
// for a member, or nil for the even-share fallback: pre-characterized
// curves (reported without meta) are trusted outright; learned curves
// (meta present) count only once their confidence clears the configured
// floor.
func (c *Coordinator) effectiveCurve(m *member) []cluster.CapPoint {
	if m.curve == nil {
		return nil
	}
	if (m.curveConf != 0 || m.curveCells != 0) && m.curveConf < c.cfg.curveConfFloor() {
		return nil
	}
	return m.curve
}

// Replay drives the coordinator through a cap schedule, one control
// interval per point, as fast as the fleet acknowledges. onStep, when
// non-nil, observes every interval (the harness uses it to advance
// in-process agent clocks).
func (c *Coordinator) Replay(ctx context.Context, caps []trace.Point, onStep func(StepResult)) ([]StepResult, error) {
	if len(caps) == 0 {
		return nil, fmt.Errorf("ctrlplane: empty cap schedule")
	}
	out := make([]StepResult, 0, len(caps))
	for _, cp := range caps {
		res, err := c.Step(ctx, cp.T, cp.V)
		if err != nil {
			return out, err
		}
		if onStep != nil {
			onStep(res)
		}
		out = append(out, res)
	}
	return out, nil
}

// GrantedW returns the last acknowledged budget for agent i (0 when
// none).
func (c *Coordinator) GrantedW(i int) float64 {
	if i < 0 || i >= len(c.members) {
		return math.NaN()
	}
	return c.members[i].grantedW
}
