package ctrlplane

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"powerstruggle/internal/faults"
)

// fakeClock is an injectable wall clock: the chaos suite advances each
// coordinator's clock in lockstep with trace time (or skews one of
// them) instead of sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}

// wallAt maps trace seconds onto the fake wall clock, 1:1.
func wallAt(traceT float64) time.Time {
	return t0.Add(time.Duration(traceT * float64(time.Second)))
}

// haPair builds two HA coordinators over one shared election store and
// one fleet, each with its own fake clock.
func haPair(t *testing.T, refs []AgentRef, store Election, ttl time.Duration, cfg Config) (a, b *HA, clkA, clkB *fakeClock) {
	t.Helper()
	mk := func(id string) (*HA, *fakeClock) {
		c := cfg
		c.Agents = refs
		coord, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		clk := &fakeClock{t: t0}
		ha, err := NewHA(coord, HAConfig{ID: id, Election: store, TermTTL: ttl, Clock: clk.Now})
		if err != nil {
			t.Fatal(err)
		}
		return ha, clk
	}
	a, clkA = mk("coord-a")
	b, clkB = mk("coord-b")
	return a, b, clkA, clkB
}

// TestHAFailoverSoak is the HA acceptance gate, run under -race in CI:
// a leader and a warm standby drive a real loopback fleet through a cap
// ramp; the leader is killed mid-trace. The standby must take over
// within one control interval of observable leader silence, the summed
// fleet draw must never exceed the cluster cap at any tick, no agent
// may apply two different epochs' grants in the same control interval,
// and every granted interval's budget vector must match the
// single-coordinator simulation bit for bit — including after recovery,
// when the old leader returns as a mere observer.
func TestHAFailoverSoak(t *testing.T) {
	const (
		servers  = 4
		interval = 300.0
		steps    = 14
		killStep = 6 // the leader's last step is killStep-1
		backStep = 10
	)
	caps := capRamp(steps, interval, 720, 420)

	// Oracle: the pure simulation over the same schedule. Budgets
	// depend only on (cap, alive set, curves), so every granted
	// networked interval must reproduce it exactly, whichever
	// coordinator granted.
	oracle, err := testEvaluator(t, servers, nil).Evaluate(caps, oracleStrategy(StrategyUtility))
	if err != nil {
		t.Fatal(err)
	}

	flt, err := StartSimFleet(testEvaluator(t, servers, nil), "ha-soak")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()

	store := NewMemElection()
	ttl := time.Duration(1.5 * interval * float64(time.Second))
	a, b, clkA, clkB := haPair(t, flt.Refs(), store, ttl, Config{
		Strategy: StrategyUtility,
		// The lease equals the control interval: the longest lease that
		// still guarantees the cap structurally, and what bounds the
		// failover blackout to one interval of fenced (zero-draw) fleet.
		LeaseS: interval,
		Seed:   7,
	})

	leadEpochs := make(map[uint64]string) // epoch → coordinator that granted under it
	for s, cp := range caps {
		clkA.Set(wallAt(cp.T))
		clkB.Set(wallAt(cp.T))
		epochsBefore := make([]uint64, servers)
		for i, ag := range flt.Agents {
			epochsBefore[i] = ag.LastEpoch()
		}

		var results []StepResult
		if s < killStep || s >= backStep {
			res, err := a.Step(context.Background(), cp.T, cp.V)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res)
		}
		res, err := b.Step(context.Background(), cp.T, cp.V)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)

		// Exactly one leader per interval, and its budgets match the
		// oracle. The takeover interval (killStep) legitimately has no
		// leader: the standby's campaign cannot win until the dead
		// leader's term lapses.
		var leaders int
		for _, r := range results {
			if !r.Leading {
				continue
			}
			leaders++
			if who, ok := leadEpochs[r.Epoch]; ok && who != fmt.Sprint(r.Epoch, r.Leading) {
				// Same epoch led twice is fine only for the same node;
				// recorded below keyed by epoch.
				_ = who
			}
			for i, bg := range r.Budgets {
				if bg != oracle.BudgetSeries[s][i] {
					t.Fatalf("step %d server %d: epoch-%d budget %g W, simulation %g W",
						s, i, r.Epoch, bg, oracle.BudgetSeries[s][i])
				}
			}
			for i, g := range r.Granted {
				if !g {
					t.Fatalf("step %d: leader (epoch %d) budget for agent %d not acknowledged", s, r.Epoch, i)
				}
			}
		}
		if leaders > 1 {
			t.Fatalf("step %d: %d leaders granted in one interval", s, leaders)
		}
		if s == killStep && leaders != 0 {
			t.Fatalf("step %d: the dead leader's unexpired term was stolen early", s)
		}
		if s != killStep && leaders != 1 {
			t.Fatalf("step %d: no leader granted", s)
		}
		if s == killStep+1 {
			if term, lead := b.Leader(); !lead || term.Epoch != 2 {
				t.Fatalf("standby had not taken over one interval after silence: term %+v lead %v", term, lead)
			}
		}

		// No agent applies two epochs' grants in one interval, and
		// applied epochs never move backward.
		for i, ag := range flt.Agents {
			after := ag.LastEpoch()
			if after < epochsBefore[i] {
				t.Fatalf("step %d: agent %d's applied epoch went backward (%d → %d)", s, i, epochsBefore[i], after)
			}
			if epochsBefore[i] != 0 && after != epochsBefore[i] && epochsBefore[i] != after-1 {
				t.Fatalf("step %d: agent %d jumped epochs %d → %d in one interval", s, i, epochsBefore[i], after)
			}
		}

		// The cap invariant, at the interval edge and mid-interval.
		if err := flt.Tick(cp.T); err != nil {
			t.Fatal(err)
		}
		if draw := flt.FleetGridW(); draw > cp.V+1e-6 {
			t.Fatalf("step %d (t=%g): fleet draws %g W over the %g W cap", s, cp.T, draw, cp.V)
		}
		if err := flt.Tick(cp.T + interval/2); err != nil {
			t.Fatal(err)
		}
		if draw := flt.FleetGridW(); draw > cp.V+1e-6 {
			t.Fatalf("step %d (t=%g, mid-interval): fleet draws %g W over the %g W cap", s, cp.T, draw, cp.V)
		}
	}

	if got := b.Failovers(); got != 1 {
		t.Fatalf("standby counted %d failovers, want 1", got)
	}
	if got := a.Failovers(); got != 0 {
		t.Fatalf("old leader counted %d failovers, want 0", got)
	}
	if term, lead := a.Leader(); lead {
		t.Fatalf("returned old leader still believes it leads: %+v", term)
	}
	if a.Coordinator().PeakEpoch() != 2 {
		t.Fatalf("old leader observed peak epoch %d, want 2", a.Coordinator().PeakEpoch())
	}
	for i, ag := range flt.Agents {
		if ag.LastEpoch() != 2 {
			t.Fatalf("agent %d finished at epoch %d, want 2", i, ag.LastEpoch())
		}
	}
	if st := b.Coordinator().Stats(); st.Steps == 0 || st.Observes == 0 {
		t.Fatalf("standby never exercised both roles: %+v", st)
	}
}

// TestSplitBrainEpochFencing drives the window the election cannot
// close: a deposed leader that has not yet noticed keeps fanning out.
// Once any epoch-2 grant lands, every epoch-1 assignment and renewal
// must be refused at the agents, no matter how it is retried.
func TestSplitBrainEpochFencing(t *testing.T) {
	const servers, interval = 3, 300.0
	flt, err := StartSimFleet(testEvaluator(t, servers, nil), "split")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	mk := func() *Coordinator {
		c, err := New(Config{Agents: flt.Refs(), Strategy: StrategyEqual, LeaseS: interval})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	zombie, leader := mk(), mk()
	leader.SetEpoch(2)

	// Interval 0: the zombie grants first (the agents have seen nothing
	// newer), then the new leader overrides within the same interval.
	resZ, err := zombie.Step(context.Background(), 0, 600)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range resZ.Granted {
		if !g {
			t.Fatalf("agent %d refused the first leader's grant", i)
		}
	}
	resL, err := leader.Step(context.Background(), 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range resL.Granted {
		if !g {
			t.Fatalf("agent %d refused the epoch-2 takeover grant", i)
		}
	}
	want := 300.0 / servers
	for i, ag := range flt.Agents {
		if ag.CapW() != want || ag.LastEpoch() != 2 {
			t.Fatalf("agent %d: cap %g W epoch %d after takeover, want %g W epoch 2", i, ag.CapW(), ag.LastEpoch(), want)
		}
	}

	// Interval 1: the zombie retries — scrape, renewal, assignment all
	// carry epoch 1 and every grant must bounce. Its budgets would have
	// been 200 W each; the agents must stay at the leader's 100 W.
	resZ2, err := zombie.Step(context.Background(), interval, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !resZ2.Deposed {
		t.Fatal("zombie did not learn it was deposed from the responses")
	}
	if resZ2.AssignErrs != servers {
		t.Fatalf("%d of %d zombie grants refused", resZ2.AssignErrs, servers)
	}
	for i, g := range resZ2.Granted {
		if g {
			t.Fatalf("agent %d acknowledged a stale-epoch grant", i)
		}
	}
	for i, ag := range flt.Agents {
		if ag.LastEpoch() != 2 {
			t.Fatalf("agent %d regressed to epoch %d", i, ag.LastEpoch())
		}
		if ag.EpochDrops() == 0 {
			t.Fatalf("agent %d counted no epoch drops", i)
		}
	}

	// The rightful leader's next interval restores service untouched.
	resL2, err := leader.Step(context.Background(), interval, 300)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range resL2.Granted {
		if !g {
			t.Fatalf("agent %d refused the rightful leader after the zombie's retry", i)
		}
	}
	for i, ag := range flt.Agents {
		if ag.Fenced() || ag.CapW() != want {
			t.Fatalf("agent %d: fenced=%v cap=%g after recovery, want an unfenced %g W", i, ag.Fenced(), ag.CapW(), want)
		}
	}
}

// TestClockSkewTakeover: a standby whose clock runs far ahead judges
// the leader's term expired and takes over — a spurious failover, but a
// safe one: epochs resolve it, the old leader stands down on the
// evidence in the responses, and exactly one coordinator grants from
// the next interval on.
func TestClockSkewTakeover(t *testing.T) {
	const servers, interval = 3, 300.0
	flt, err := StartSimFleet(testEvaluator(t, servers, nil), "skew")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	store := NewMemElection()
	ttl := time.Duration(1.5 * interval * float64(time.Second))
	a, b, clkA, clkB := haPair(t, flt.Refs(), store, ttl, Config{
		Strategy: StrategyEqual,
		LeaseS:   interval,
	})
	skew := 2 * ttl

	// Interval 0: A bootstraps epoch 1; B, skewed ahead, sees that term
	// as already lapsed and takes epoch 2 within the same interval.
	clkA.Set(wallAt(0))
	clkB.Set(wallAt(0).Add(skew))
	resA, err := a.Step(context.Background(), 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !resA.Leading || resA.Epoch != 1 {
		t.Fatalf("bootstrap: %+v", resA)
	}
	resB, err := b.Step(context.Background(), 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Leading || resB.Epoch != 2 {
		t.Fatalf("skewed standby did not take over: %+v", resB)
	}
	if b.Failovers() != 1 {
		t.Fatalf("failovers %d, want 1", b.Failovers())
	}

	// Interval 1: A campaigns, loses (B's term is unexpired on any
	// clock A can hold), observes, and reports deposed; B renews and
	// remains the only granter.
	clkA.Set(wallAt(interval))
	clkB.Set(wallAt(interval).Add(skew))
	resA, err = a.Step(context.Background(), interval, 300)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Leading {
		t.Fatal("deposed leader granted after the skewed takeover")
	}
	if !resA.Deposed {
		t.Fatal("deposed leader did not see the newer epoch in the fleet's responses")
	}
	resB, err = b.Step(context.Background(), interval, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Leading || resB.Epoch != 2 {
		t.Fatalf("skewed winner lost its own term: %+v", resB)
	}
	for i, ag := range flt.Agents {
		if ag.LastEpoch() != 2 {
			t.Fatalf("agent %d at epoch %d, want 2", i, ag.LastEpoch())
		}
	}
	if err := flt.Tick(interval); err != nil {
		t.Fatal(err)
	}
	if draw := flt.FleetGridW(); draw > 300+1e-6 {
		t.Fatalf("fleet draws %g W over the 300 W cap through the skewed handoff", draw)
	}
}

// TestPartitionedLeaderKeepsCapSafe: a leader cut off from the fleet
// but not from the election store keeps its term — availability is
// lost, not leadership — and safety degrades gracefully: the agents'
// draw leases lapse, they fence to zero draw, and the standby must NOT
// steal the term. When the partition heals, the same leader readmits
// and regrants the whole fleet.
func TestPartitionedLeaderKeepsCapSafe(t *testing.T) {
	const servers, interval = 3, 300.0
	flt, err := StartSimFleet(testEvaluator(t, servers, nil), "partition")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	refs := flt.Refs()
	net, err := faults.NewNetInjector(faults.NetConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemElection()
	ttl := time.Duration(1.5 * interval * float64(time.Second))

	coordA, err := New(Config{
		Agents: refs, Strategy: StrategyEqual, LeaseS: interval,
		MissK: 2, Retries: 0, RPCTimeout: 200 * time.Millisecond,
		Transport: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	clkA := &fakeClock{t: t0}
	a, err := NewHA(coordA, HAConfig{ID: "coord-a", Election: store, TermTTL: ttl, Clock: clkA.Now})
	if err != nil {
		t.Fatal(err)
	}
	coordB, err := New(Config{Agents: refs, Strategy: StrategyEqual, LeaseS: interval})
	if err != nil {
		t.Fatal(err)
	}
	clkB := &fakeClock{t: t0}
	b, err := NewHA(coordB, HAConfig{ID: "coord-b", Election: store, TermTTL: ttl, Clock: clkB.Now})
	if err != nil {
		t.Fatal(err)
	}

	setPartition := func(down bool) {
		for _, ref := range refs {
			net.SetDown(ref.URL[len("http://"):], down)
		}
	}
	const capW = 300.0
	for s := 0; s < 8; s++ {
		ts := float64(s) * interval
		clkA.Set(wallAt(ts))
		clkB.Set(wallAt(ts))
		if s == 2 {
			setPartition(true)
		}
		if s == 6 {
			setPartition(false)
		}
		resA, err := a.Step(context.Background(), ts, capW)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := b.Step(context.Background(), ts, capW)
		if err != nil {
			t.Fatal(err)
		}
		if !resA.Leading {
			t.Fatalf("step %d: leader lost its term while only the data path was down", s)
		}
		if resB.Leading {
			t.Fatalf("step %d: standby stole an actively renewed term", s)
		}
		if err := flt.Tick(ts); err != nil {
			t.Fatal(err)
		}
		if draw := flt.FleetGridW(); draw > capW+1e-6 {
			t.Fatalf("step %d: fleet draws %g W over the %g W cap", s, draw, capW)
		}
		// One full interval into the partition every lease has lapsed:
		// the fleet must be fenced to zero draw, not coasting on stale
		// budgets.
		if s >= 3 && s < 6 {
			for i, ag := range flt.Agents {
				if !ag.Fenced() {
					t.Fatalf("step %d: agent %d unfenced %g s into the partition", s, i, ts-2*interval)
				}
			}
			if draw := flt.FleetGridW(); draw != 0 {
				t.Fatalf("step %d: fenced fleet draws %g W", s, draw)
			}
		}
		// After the heal, recovery within MissK intervals: full
		// membership, full grants, no epoch change (same leader).
		if s == 7 {
			for i, g := range resA.Granted {
				if !g {
					t.Fatalf("agent %d ungranted after the heal", i)
				}
			}
			if resA.Epoch != 1 {
				t.Fatalf("partition minted epoch %d without a leadership change", resA.Epoch)
			}
		}
	}
	if b.Failovers() != 0 {
		t.Fatalf("standby counted %d failovers across a data-path partition", b.Failovers())
	}
	if st := coordA.Stats(); st.LeaseExpiries != servers || st.Rejoins != servers {
		t.Fatalf("leader saw %d expiries / %d rejoins, want %d / %d", st.LeaseExpiries, st.Rejoins, servers, servers)
	}
}

// flakyElection injects store outages for one coordinator only — the
// store-partition case, distinct from the data-path partition above.
type flakyElection struct {
	inner Election
	fail  atomic.Bool
}

func (f *flakyElection) Campaign(id string, now time.Time, ttl time.Duration) (Term, error) {
	if f.fail.Load() {
		return Term{}, fmt.Errorf("injected store outage")
	}
	return f.inner.Campaign(id, now, ttl)
}

func (f *flakyElection) Resign(id string) error {
	if f.fail.Load() {
		return fmt.Errorf("injected store outage")
	}
	return f.inner.Resign(id)
}

// TestStorePartitionFailsOver: a leader that cannot reach the election
// store must drop to observing (it cannot prove it still leads), its
// term lapses, and the standby takes over with a new epoch.
func TestStorePartitionFailsOver(t *testing.T) {
	const servers, interval = 2, 300.0
	flt, err := StartSimFleet(testEvaluator(t, servers, nil), "store-outage")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	store := NewMemElection()
	flaky := &flakyElection{inner: store}
	ttl := time.Duration(1.5 * interval * float64(time.Second))

	mk := func(id string, e Election) (*HA, *fakeClock) {
		c, err := New(Config{Agents: flt.Refs(), Strategy: StrategyEqual, LeaseS: interval})
		if err != nil {
			t.Fatal(err)
		}
		clk := &fakeClock{t: t0}
		ha, err := NewHA(c, HAConfig{ID: id, Election: e, TermTTL: ttl, Clock: clk.Now})
		if err != nil {
			t.Fatal(err)
		}
		return ha, clk
	}
	a, clkA := mk("coord-a", flaky)
	b, clkB := mk("coord-b", store)

	sawTakeover := false
	for s := 0; s < 6; s++ {
		ts := float64(s) * interval
		clkA.Set(wallAt(ts))
		clkB.Set(wallAt(ts))
		if s == 2 {
			flaky.fail.Store(true)
		}
		resA, err := a.Step(context.Background(), ts, 200)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := b.Step(context.Background(), ts, 200)
		if err != nil {
			t.Fatal(err)
		}
		if s >= 2 && resA.Leading {
			t.Fatalf("step %d: leader granted without being able to renew its term", s)
		}
		if resB.Leading {
			sawTakeover = true
			if resB.Epoch != 2 {
				t.Fatalf("step %d: takeover under epoch %d, want 2", s, resB.Epoch)
			}
		}
		if err := flt.Tick(ts); err != nil {
			t.Fatal(err)
		}
		if draw := flt.FleetGridW(); draw > 200+1e-6 {
			t.Fatalf("step %d: fleet draws %g W over the 200 W cap", s, draw)
		}
	}
	if !sawTakeover {
		t.Fatal("standby never took over from the store-partitioned leader")
	}
	if a.CampaignErrors() == 0 {
		t.Fatal("leader counted no campaign errors across the store outage")
	}
	if b.Failovers() != 1 {
		t.Fatalf("standby counted %d failovers, want 1", b.Failovers())
	}
}

// TestRegisterGrowsFleet: agent autodiscovery end to end — an agent
// announces itself over HTTP through the coordinator handler, the next
// control interval admits it and re-apportions, and a static fleet
// refuses registration outright.
func TestRegisterGrowsFleet(t *testing.T) {
	const servers, interval = 3, 300.0
	flt, err := StartSimFleet(testEvaluator(t, servers, nil), "register")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	refs := flt.Refs()

	coord, err := New(Config{Agents: refs[:2], Dynamic: true, Strategy: StrategyEqual, LeaseS: interval})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewCoordinatorHandler(coord, nil, nil))
	defer srv.Close()

	res, err := coord.Step(context.Background(), 0, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Budgets) != 2 || res.Budgets[0] != 300 {
		t.Fatalf("pre-registration budgets %+v", res.Budgets)
	}

	// The third agent announces itself — through Announce, the same
	// path psd -ctrl-announce uses.
	reg, err := Announce(context.Background(), []string{srv.URL},
		RegisterRequest{V: ProtocolV, Server: refs[2].ID, URL: refs[2].URL, NameplateW: 120}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Accepted || !reg.Leader {
		t.Fatalf("registration response %+v", reg)
	}

	res, err = coord.Step(context.Background(), interval, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Budgets) != 3 {
		t.Fatalf("fleet did not grow: %d budgets", len(res.Budgets))
	}
	if !res.Reapportioned {
		t.Fatal("admitting a member did not re-apportion")
	}
	for i, g := range res.Granted {
		if !g || res.Budgets[i] != 200 {
			t.Fatalf("agent %d: granted=%v budget=%g, want a granted 200 W", i, g, res.Budgets[i])
		}
	}
	if st := coord.Stats(); st.Registrations != 1 {
		t.Fatalf("registrations %d, want 1", st.Registrations)
	}

	// Re-announcing the same agent (a restart on the same URL) must not
	// grow the fleet again.
	if _, err := Announce(context.Background(), []string{srv.URL},
		RegisterRequest{V: ProtocolV, Server: refs[2].ID, URL: refs[2].URL, NameplateW: 120}, time.Second); err != nil {
		t.Fatal(err)
	}
	res, err = coord.Step(context.Background(), 2*interval, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Budgets) != 3 || coord.Stats().Registrations != 1 {
		t.Fatalf("re-announcement grew the fleet: %d budgets, %d registrations", len(res.Budgets), coord.Stats().Registrations)
	}

	// The leadership probe answers on the same handler.
	probe, err := http.Get(srv.URL + PathLeader)
	if err != nil {
		t.Fatal(err)
	}
	body, err := readBody(probe.Body)
	probe.Body.Close()
	if err != nil || probe.StatusCode != http.StatusOK {
		t.Fatalf("leader probe: %d %v", probe.StatusCode, err)
	}
	if string(body) == "" {
		t.Fatal("empty leader probe body")
	}

	// A static fleet refuses registrations.
	static, err := New(Config{Agents: refs[:2], Strategy: StrategyEqual, LeaseS: interval})
	if err != nil {
		t.Fatal(err)
	}
	staticSrv := httptest.NewServer(NewCoordinatorHandler(static, nil, nil))
	defer staticSrv.Close()
	if _, err := Announce(context.Background(), []string{staticSrv.URL},
		RegisterRequest{V: ProtocolV, Server: refs[2].ID, URL: refs[2].URL, NameplateW: 120}, time.Second); err == nil {
		t.Fatal("static coordinator accepted a registration")
	}
}

// TestAnnounceReachesEveryCoordinator pins the warm-standby contract:
// an announce must land on every coordinator in the list, even the
// ones after the leader has already accepted — otherwise the standby
// wins its takeover term with an empty fleet and leads nobody.
func TestAnnounceReachesEveryCoordinator(t *testing.T) {
	const servers, interval = 2, 300.0
	flt, err := StartSimFleet(testEvaluator(t, servers, nil), "announce-all")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	refs := flt.Refs()

	mk := func() (*Coordinator, *httptest.Server) {
		c, err := New(Config{Agents: refs[:1], Dynamic: true, Strategy: StrategyEqual, LeaseS: interval})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewCoordinatorHandler(c, nil, nil))
		t.Cleanup(srv.Close)
		return c, srv
	}
	lead, leadSrv := mk()
	standby, standbySrv := mk()

	// The leader is FIRST in the list and (with a nil HA) affirms
	// leadership, so an early-returning Announce would skip the standby.
	reg, err := Announce(context.Background(), []string{leadSrv.URL, standbySrv.URL},
		RegisterRequest{V: ProtocolV, Server: refs[1].ID, URL: refs[1].URL, NameplateW: 120}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Accepted || !reg.Leader {
		t.Fatalf("registration response %+v", reg)
	}
	for name, c := range map[string]*Coordinator{"leader": lead, "standby": standby} {
		res, err := c.Step(context.Background(), 0, 600)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Budgets) != 2 {
			t.Fatalf("%s fleet did not grow: %d budgets", name, len(res.Budgets))
		}
		if st := c.Stats(); st.Registrations != 1 {
			t.Fatalf("%s registrations %d, want 1", name, st.Registrations)
		}
	}

	// A dead coordinator in the list must not block the others.
	_, deadSrv := mk()
	deadSrv.Close()
	reg, err = Announce(context.Background(), []string{deadSrv.URL, leadSrv.URL},
		RegisterRequest{V: ProtocolV, Server: refs[1].ID, URL: refs[1].URL, NameplateW: 120}, time.Second)
	if err != nil || !reg.Accepted {
		t.Fatalf("announce past a dead coordinator: %+v %v", reg, err)
	}
}

// TestRenewalUnderDelayDuplication covers the lease path under the
// network injector's delay and duplication (no drops): renewals and
// their duplicates must keep the fleet granted and unfenced, with
// duplicated assigns absorbed by the sequence dedup.
func TestRenewalUnderDelayDuplication(t *testing.T) {
	const servers, interval = 3, 300.0
	flt, err := StartSimFleet(testEvaluator(t, servers, nil), "renewal-faults")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	net, err := faults.NewNetInjector(faults.NetConfig{
		Seed: 21, DelayP: 0.6, DelayMax: 2 * time.Millisecond, DupP: 0.6,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(Config{
		Agents:   flt.Refs(),
		Strategy: StrategyEqual,
		// A lease spanning two intervals plus slack: the steady state
		// is renewals, which is the path under test.
		LeaseS:    2.5 * interval,
		Transport: net,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		ts := float64(s) * interval
		res, err := coord.Step(context.Background(), ts, 450)
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range res.Granted {
			if !g {
				t.Fatalf("step %d: agent %d ungranted under delay+duplication", s, i)
			}
		}
		if err := flt.Tick(ts); err != nil {
			t.Fatal(err)
		}
		if draw := flt.FleetGridW(); draw > 450+1e-6 {
			t.Fatalf("step %d: fleet draws %g W over the 450 W cap", s, draw)
		}
	}
	for i, ag := range flt.Agents {
		if ag.Fences() != 0 || ag.Fenced() {
			t.Fatalf("agent %d fenced %d times under a steadily renewed lease", i, ag.Fences())
		}
		if ag.CapW() != 150 {
			t.Fatalf("agent %d enforces %g W, want 150 W", i, ag.CapW())
		}
	}
	counts := net.Counts()
	if counts.Duplicates == 0 || counts.Delays == 0 {
		t.Fatalf("injector fired nothing (%+v) — the run proved nothing", counts)
	}
}

// Epoch fencing at the agent, under the message-level faults the wire
// can produce: duplicated grants, reordered (older-T) renewals, and
// renewals from epochs other than the one that granted.
func TestAgentEpochFencingRules(t *testing.T) {
	a, err := NewAgent(AgentConfig{ID: 0, Backend: &fakeBackend{}})
	if err != nil {
		t.Fatal(err)
	}
	grant := func(epoch, seq uint64, t6, capW float64) AssignResponse {
		resp, err := a.Assign(AssignRequest{V: ProtocolV, Epoch: epoch, Seq: seq, Server: 0, T: t6, CapW: capW, LeaseS: 100})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Epoch 1 grants, then epoch 2 takes over with a LOWER seq — seqs
	// reset per leader, and (epoch, seq) ordering must still apply it.
	if resp := grant(1, 9, 0, 50); !resp.Applied {
		t.Fatal("bootstrap grant refused")
	}
	if resp := grant(2, 1, 10, 70); !resp.Applied {
		t.Fatal("new epoch's first grant (lower seq) refused")
	}
	if a.CapW() != 70 || a.LastEpoch() != 2 {
		t.Fatalf("cap %g epoch %d after takeover", a.CapW(), a.LastEpoch())
	}

	// A duplicated epoch-2 grant is a stale drop; a delayed epoch-1
	// grant with a huge seq is an epoch drop. Neither touches the cap.
	if resp := grant(2, 1, 10, 70); resp.Applied {
		t.Fatal("duplicate applied twice")
	}
	if resp := grant(1, 999, 20, 90); resp.Applied {
		t.Fatal("stale-epoch grant with a high seq applied")
	}
	if a.CapW() != 70 {
		t.Fatalf("cap %g after stale traffic, want 70", a.CapW())
	}
	if a.StaleDrops() != 1 || a.EpochDrops() != 1 {
		t.Fatalf("staleDrops=%d epochDrops=%d, want 1 and 1", a.StaleDrops(), a.EpochDrops())
	}

	// Renewals: only the granting epoch extends the lease. An old
	// epoch's renewal is refused (and counted); a FUTURE epoch's
	// renewal — a new leader renewing before its first assign — must
	// not extend a lease it never granted, though it is not an error.
	if resp, err := a.Renew(LeaseRequest{V: ProtocolV, Epoch: 1, Server: 0, T: 30, LeaseS: 100}); err != nil || resp.Epoch != 2 {
		t.Fatalf("old-epoch renewal: %+v %v", resp, err)
	}
	if a.EpochDrops() != 2 {
		t.Fatalf("old-epoch renewal not counted: %d", a.EpochDrops())
	}
	before, err := a.Renew(LeaseRequest{V: ProtocolV, Epoch: 2, Server: 0, T: 40, LeaseS: 100})
	if err != nil {
		t.Fatal(err)
	}
	after, err := a.Renew(LeaseRequest{V: ProtocolV, Epoch: 3, Server: 0, T: 90, LeaseS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if after.ExpiresT != before.ExpiresT {
		t.Fatalf("a future epoch's renewal moved the lease: %g → %g", before.ExpiresT, after.ExpiresT)
	}

	// A reordered renewal carrying an older T must not pull the lease
	// backward (it would spuriously fence the agent).
	if _, err := a.Renew(LeaseRequest{V: ProtocolV, Epoch: 2, Server: 0, T: 35, LeaseS: 100}); err != nil {
		t.Fatal(err)
	}
	if err := a.Tick(139); err != nil {
		t.Fatal(err)
	}
	if a.Fenced() {
		t.Fatal("reordered renewal pulled the lease backward and fenced the agent")
	}
}
