package ctrlplane

import (
	"context"
	"testing"
	"time"

	"powerstruggle/internal/faults"
	"powerstruggle/internal/telemetry"
)

// TestCtrlPlaneSoak is the safety acceptance gate: under dropped,
// delayed, and duplicated RPCs, the summed fleet draw must never exceed
// the cluster cap at any control interval. The guarantee is structural,
// not probabilistic — every grant is a lease no longer than the control
// interval, so an agent the coordinator cannot reach fences itself to
// zero draw before its stale budget can conflict with a re-apportioned
// one. Run under -race in CI: the fan-out, the fault injector, and the
// shared evaluator backend all exercise their locking here.
func TestCtrlPlaneSoak(t *testing.T) {
	const (
		servers  = 4
		steps    = 36
		interval = 300.0
	)
	for _, tc := range []struct {
		name string
		net  faults.NetConfig
	}{
		{"drops", faults.NetConfig{Seed: 11, DropReqP: 0.2, DropRespP: 0.1}},
		{"delays", faults.NetConfig{Seed: 12, DelayP: 0.5, DelayMax: 3 * time.Millisecond}},
		{"duplicates", faults.NetConfig{Seed: 13, DupP: 0.3}},
		{"everything", faults.NetConfig{Seed: 14, DropReqP: 0.15, DropRespP: 0.1,
			DelayP: 0.3, DelayMax: 3 * time.Millisecond, DupP: 0.2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ev := testEvaluator(t, servers, nil)
			flt, err := StartSimFleet(ev, "soak")
			if err != nil {
				t.Fatal(err)
			}
			defer flt.Close()
			net, err := faults.NewNetInjector(tc.net, nil)
			if err != nil {
				t.Fatal(err)
			}
			hub := telemetry.New(0)
			coord, err := New(Config{
				Agents:   flt.Refs(),
				Strategy: StrategyUtility,
				// The lease equals the control interval — the longest
				// lease that still guarantees the cap invariant.
				LeaseS:      interval,
				MissK:       2,
				RPCTimeout:  250 * time.Millisecond,
				Retries:     1,
				BackoffBase: time.Millisecond,
				BackoffMax:  4 * time.Millisecond,
				Seed:        99,
				Transport:   net,
				Telemetry:   hub,
			})
			if err != nil {
				t.Fatal(err)
			}

			// A sawtooth cap: decreases are the dangerous direction (a
			// stale larger budget must die before the smaller total
			// applies), so sweep down repeatedly.
			caps := make([]float64, steps)
			for i := range caps {
				caps[i] = 700 - float64(i%6)*60
			}
			var assignErrs int
			for s, capW := range caps {
				ts := float64(s) * interval
				res, err := coord.Step(context.Background(), ts, capW)
				if err != nil {
					t.Fatal(err)
				}
				assignErrs += res.AssignErrs
				// The agents' own clocks reach ts: any lease not renewed
				// this interval has lapsed and fenced its agent.
				if err := flt.Tick(ts); err != nil {
					t.Fatal(err)
				}
				if draw := flt.FleetGridW(); draw > capW+1e-6 {
					t.Fatalf("step %d (t=%g): fleet draws %g W over the %g W cluster cap", s, ts, draw, capW)
				}
				// Mid-interval the same cap still holds; leases granted at
				// ts are still live, fenced agents stay fenced.
				if err := flt.Tick(ts + interval/2); err != nil {
					t.Fatal(err)
				}
				if draw := flt.FleetGridW(); draw > capW+1e-6 {
					t.Fatalf("step %d (t=%g, mid-interval): fleet draws %g W over the %g W cap", s, ts, draw, capW)
				}
			}

			counts := net.Counts()
			injected := counts.ReqDrops + counts.RespDrops + counts.Delays + counts.Duplicates
			if tc.net.Enabled() && injected == 0 {
				t.Fatalf("soak injected no faults (%+v) — the run proved nothing", counts)
			}
			t.Logf("%s: injected %+v; coordinator stats %+v; assign errors %d",
				tc.name, counts, coord.Stats(), assignErrs)

			// Recovery: with the network healed, the fleet must converge
			// back to full membership and full grants within MissK+1
			// intervals.
			net.Heal()
			healT := float64(steps) * interval
			for s := 0; s < 3; s++ {
				ts := healT + float64(s)*interval
				res, err := coord.Step(context.Background(), ts, 700)
				if err != nil {
					t.Fatal(err)
				}
				if err := flt.Tick(ts); err != nil {
					t.Fatal(err)
				}
				if s == 2 {
					for i, g := range res.Granted {
						if !g {
							t.Errorf("agent %d still ungranted after the network healed", i)
						}
					}
					for i, a := range res.Alive {
						if !a {
							t.Errorf("agent %d still expired after the network healed", i)
						}
					}
				}
			}
		})
	}
}
