package ctrlplane

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"powerstruggle/internal/cluster"
)

// Binary framing of the v2 control protocol (see docs/WIRE.md).
//
// Every frame is:
//
//	'P' 'W' | version u8 | type u8 | payload length u32 BE | payload
//
// The header carries the protocol version once, so payloads do not
// re-encode the V field JSON messages carry; decoders stamp
// V=ProtocolV back onto decoded messages. All payload scalars are
// fixed-width big-endian — u64 for integers (two's complement for
// signed), IEEE-754 bits for float64, a single strict 0|1 byte for
// bools, u16 length + bytes for strings. No varints: a fixed-width
// encoding has exactly one byte representation per value, which is
// what lets FuzzDecodeFrame assert that every accepted frame re-encodes
// byte-identically.

// Frame types. Requests are odd, their responses even; FrameError is
// the out-of-band failure answer to any request.
const (
	FrameAssignReq       byte = 0x01
	FrameAssignResp      byte = 0x02
	FrameScrapeReq       byte = 0x03
	FrameReportResp      byte = 0x04
	FrameLeaseReq        byte = 0x05
	FrameLeaseResp       byte = 0x06
	FrameRegisterReq     byte = 0x07
	FrameRegisterResp    byte = 0x08
	FrameVoteReq         byte = 0x09
	FrameVoteResp        byte = 0x0a
	FrameLeaderReq       byte = 0x0b
	FrameLeaderResp      byte = 0x0c
	FrameBatchScrapeReq  byte = 0x0d
	FrameBatchScrapeResp byte = 0x0e
	FrameBatchGrantReq   byte = 0x0f
	FrameBatchGrantResp  byte = 0x10
	// Shard↔global trunk frames of the two-tier budget tree (see
	// docs/WIRE.md §6): the global apportioner scrapes shard summaries
	// and grants shard budgets over the same framing.
	FrameShardReportReq  byte = 0x11
	FrameShardReportResp byte = 0x12
	FrameShardBudgetReq  byte = 0x13
	FrameShardBudgetResp byte = 0x14
	FrameError           byte = 0x7f
)

const (
	frameMagic0    = 'P'
	frameMagic1    = 'W'
	frameHeaderLen = 8
)

// maxBatchEntries bounds one batch frame's fan-out; bigger fleets are
// chunked by the coordinator.
const maxBatchEntries = 4096

// maxBatchPayload bounds batch frames, which may carry a whole fleet's
// reports (curves included) in one payload; unary frames keep the
// HTTP-equivalent maxBodyBytes bound.
const maxBatchPayload = 16 << 20

// framePayloadLimit returns the payload bound for a frame type.
func framePayloadLimit(ftype byte) int {
	switch ftype {
	case FrameBatchScrapeReq, FrameBatchScrapeResp, FrameBatchGrantReq, FrameBatchGrantResp,
		FrameShardReportResp:
		// Shard report responses carry a whole shard's aggregate curve,
		// so they take the batch bound, not the unary one.
		return maxBatchPayload
	}
	return maxBodyBytes
}

func validFrameType(ftype byte) bool {
	return (ftype >= FrameAssignReq && ftype <= FrameShardBudgetResp) || ftype == FrameError
}

// EncodeFrame wraps payload in a length-prefixed frame of type ftype.
func EncodeFrame(ftype byte, payload []byte) []byte {
	b := make([]byte, frameHeaderLen+len(payload))
	b[0], b[1] = frameMagic0, frameMagic1
	b[2] = ProtocolV
	b[3] = ftype
	binary.BigEndian.PutUint32(b[4:8], uint32(len(payload)))
	copy(b[frameHeaderLen:], payload)
	return b
}

// DecodeFrame parses one frame off the front of data, returning its
// type, payload, and any remaining bytes. It rejects bad magic, a
// foreign protocol version, unknown frame types, and payloads past the
// type's bound — the same strictness the JSON decoders apply.
func DecodeFrame(data []byte) (ftype byte, payload, rest []byte, err error) {
	if len(data) < frameHeaderLen {
		return 0, nil, nil, fmt.Errorf("ctrlplane: frame truncated at %d bytes (want %d-byte header)", len(data), frameHeaderLen)
	}
	if data[0] != frameMagic0 || data[1] != frameMagic1 {
		return 0, nil, nil, fmt.Errorf("ctrlplane: bad frame magic %#02x%02x", data[0], data[1])
	}
	if data[2] != ProtocolV {
		return 0, nil, nil, fmt.Errorf("ctrlplane: frame protocol v%d, want v%d", data[2], ProtocolV)
	}
	ftype = data[3]
	if !validFrameType(ftype) {
		return 0, nil, nil, fmt.Errorf("ctrlplane: unknown frame type %#02x", ftype)
	}
	n := int(binary.BigEndian.Uint32(data[4:8]))
	if n > framePayloadLimit(ftype) {
		return 0, nil, nil, fmt.Errorf("ctrlplane: frame payload %d bytes exceeds %d", n, framePayloadLimit(ftype))
	}
	if len(data)-frameHeaderLen < n {
		return 0, nil, nil, fmt.Errorf("ctrlplane: frame payload truncated (%d of %d bytes)", len(data)-frameHeaderLen, n)
	}
	return ftype, data[frameHeaderLen : frameHeaderLen+n], data[frameHeaderLen+n:], nil
}

// readFrame reads one frame off a stream.
func readFrame(r io.Reader) (ftype byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return 0, nil, fmt.Errorf("ctrlplane: bad frame magic %#02x%02x", hdr[0], hdr[1])
	}
	if hdr[2] != ProtocolV {
		return 0, nil, fmt.Errorf("ctrlplane: frame protocol v%d, want v%d", hdr[2], ProtocolV)
	}
	ftype = hdr[3]
	if !validFrameType(ftype) {
		return 0, nil, fmt.Errorf("ctrlplane: unknown frame type %#02x", ftype)
	}
	n := int(binary.BigEndian.Uint32(hdr[4:8]))
	if n > framePayloadLimit(ftype) {
		return 0, nil, fmt.Errorf("ctrlplane: frame payload %d bytes exceeds %d", n, framePayloadLimit(ftype))
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return ftype, payload, nil
}

// writeFrame writes one frame to a stream.
func writeFrame(w io.Writer, ftype byte, payload []byte) error {
	_, err := w.Write(EncodeFrame(ftype, payload))
	return err
}

// wbuf appends fixed-width big-endian scalars.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)     { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16)  { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wbuf) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *wbuf) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

// rbuf consumes fixed-width big-endian scalars with a latched error,
// so decoders read a whole message unconditionally and check once.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("ctrlplane: "+format, args...)
	}
}

func (r *rbuf) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.fail("payload truncated at byte %d (want %d more)", r.off, n)
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *rbuf) u8() byte {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *rbuf) u16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

func (r *rbuf) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (r *rbuf) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (r *rbuf) i64() int64   { return int64(r.u64()) }
func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *rbuf) integer() int { return int(r.i64()) }

// boolean insists on 0|1 — any other byte would decode true but
// re-encode as 1, breaking the one-representation-per-value property.
func (r *rbuf) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bool byte not 0|1")
		return false
	}
}

func (r *rbuf) str() string {
	n := int(r.u16())
	p := r.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// done returns the latched error, or rejects trailing bytes — the
// binary mirror of decodeStrict's dec.More() check.
func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("ctrlplane: %d trailing bytes after message", len(r.b)-r.off)
	}
	return nil
}

// --- scrape request (binary-only; the JSON equivalent is GET /ctrl/report?t=) ---

func appendScrapeReq(b []byte, server int, t float64, hasT bool) []byte {
	w := wbuf{b: b}
	w.i64(int64(server))
	w.boolean(hasT)
	w.f64(t)
	return w.b
}

func decodeScrapeReq(p []byte) (server int, t float64, hasT bool, err error) {
	r := rbuf{b: p}
	server = r.integer()
	hasT = r.boolean()
	t = r.f64()
	if err := r.done(); err != nil {
		return 0, 0, false, err
	}
	if server < 0 {
		return 0, 0, false, fmt.Errorf("ctrlplane: scrape server %d", server)
	}
	if hasT && (!finite(t) || t < 0) {
		return 0, 0, false, fmt.Errorf("ctrlplane: scrape time %g", t)
	}
	return server, t, hasT, nil
}

// --- Report ---

// curveMetaFlag is the high bit of the report's curve-count u32: set
// when the curve carries learning metadata (confidence + observed
// cells), which then follows the curve points. Legacy encoders never
// set the bit, so frames without meta decode unchanged; the canonical
// rule — bit set if and only if the meta is non-zero, enforced both
// ways — keeps one byte representation per value even for reports
// embedded mid-stream in batch responses.
const curveMetaFlag = uint32(1) << 31

func putReport(w *wbuf, rep Report) {
	w.i64(int64(rep.Server))
	w.u64(rep.Epoch)
	w.u64(rep.Seq)
	w.f64(rep.CapW)
	w.f64(rep.PerfN)
	w.f64(rep.GridW)
	w.f64(rep.SoC)
	w.boolean(rep.Fenced)
	w.boolean(rep.SafeMode)
	w.f64(rep.IdleFloorW)
	w.f64(rep.NameplateW)
	w.str(rep.Version)
	hasMeta := rep.CurveConf != 0 || rep.CurveCells != 0
	cnt := uint32(len(rep.UtilityCurve))
	if hasMeta {
		cnt |= curveMetaFlag
	}
	w.u32(cnt)
	for _, p := range rep.UtilityCurve {
		w.f64(p.CapW)
		w.f64(p.Perf)
		w.f64(p.GridW)
	}
	if hasMeta {
		w.f64(rep.CurveConf)
		w.u32(uint32(rep.CurveCells))
	}
	w.u64(rep.Iv)
}

func getReport(r *rbuf) Report {
	var rep Report
	rep.V = ProtocolV
	rep.Server = r.integer()
	rep.Epoch = r.u64()
	rep.Seq = r.u64()
	rep.CapW = r.f64()
	rep.PerfN = r.f64()
	rep.GridW = r.f64()
	rep.SoC = r.f64()
	rep.Fenced = r.boolean()
	rep.SafeMode = r.boolean()
	rep.IdleFloorW = r.f64()
	rep.NameplateW = r.f64()
	rep.Version = r.str()
	cw := r.u32()
	hasMeta := cw&curveMetaFlag != 0
	n := int(cw &^ curveMetaFlag)
	if r.err == nil && n*24 > len(r.b)-r.off {
		r.fail("curve count %d exceeds payload", n)
	}
	if r.err == nil && n > 0 {
		rep.UtilityCurve = make([]cluster.CapPoint, n)
		for i := range rep.UtilityCurve {
			rep.UtilityCurve[i] = cluster.CapPoint{CapW: r.f64(), Perf: r.f64(), GridW: r.f64()}
		}
	}
	if hasMeta {
		rep.CurveConf = r.f64()
		rep.CurveCells = int(r.u32())
		if r.err == nil && rep.CurveConf == 0 && rep.CurveCells == 0 {
			// A set flag over all-zero meta would re-encode without the
			// flag; reject the non-canonical form.
			r.fail("curve meta flag set over zero meta")
		}
	}
	rep.Iv = r.u64()
	return rep
}

func appendReportPayload(b []byte, rep Report) []byte {
	w := wbuf{b: b}
	putReport(&w, rep)
	return w.b
}

func decodeReportPayload(p []byte) (Report, error) {
	r := rbuf{b: p}
	rep := getReport(&r)
	if err := r.done(); err != nil {
		return Report{}, err
	}
	if err := rep.Validate(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// --- AssignRequest / AssignResponse ---

func appendAssignReq(b []byte, req AssignRequest) []byte {
	w := wbuf{b: b}
	w.u64(req.Epoch)
	w.u64(req.Seq)
	w.i64(int64(req.Server))
	w.f64(req.T)
	w.f64(req.CapW)
	w.f64(req.LeaseS)
	w.u64(req.Iv)
	w.u64(req.LeaseIv)
	w.f64(req.IvS)
	return w.b
}

func decodeAssignReqPayload(p []byte) (AssignRequest, error) {
	r := rbuf{b: p}
	var req AssignRequest
	req.V = ProtocolV
	req.Epoch = r.u64()
	req.Seq = r.u64()
	req.Server = r.integer()
	req.T = r.f64()
	req.CapW = r.f64()
	req.LeaseS = r.f64()
	req.Iv = r.u64()
	req.LeaseIv = r.u64()
	req.IvS = r.f64()
	if err := r.done(); err != nil {
		return AssignRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return AssignRequest{}, err
	}
	return req, nil
}

func putAssignResp(w *wbuf, resp AssignResponse) {
	w.i64(int64(resp.Server))
	w.u64(resp.Epoch)
	w.u64(resp.Seq)
	w.boolean(resp.Applied)
	w.f64(resp.CapW)
	w.f64(resp.PerfN)
	w.f64(resp.GridW)
	w.f64(resp.SoC)
	w.boolean(resp.Fenced)
	w.boolean(resp.SafeMode)
	w.u64(resp.Iv)
}

func getAssignResp(r *rbuf) AssignResponse {
	var resp AssignResponse
	resp.V = ProtocolV
	resp.Server = r.integer()
	resp.Epoch = r.u64()
	resp.Seq = r.u64()
	resp.Applied = r.boolean()
	resp.CapW = r.f64()
	resp.PerfN = r.f64()
	resp.GridW = r.f64()
	resp.SoC = r.f64()
	resp.Fenced = r.boolean()
	resp.SafeMode = r.boolean()
	resp.Iv = r.u64()
	return resp
}

func appendAssignRespPayload(b []byte, resp AssignResponse) []byte {
	w := wbuf{b: b}
	putAssignResp(&w, resp)
	return w.b
}

func decodeAssignRespPayload(p []byte) (AssignResponse, error) {
	r := rbuf{b: p}
	resp := getAssignResp(&r)
	if err := r.done(); err != nil {
		return AssignResponse{}, err
	}
	return resp, nil
}

// --- LeaseRequest / LeaseResponse ---

func appendLeaseReq(b []byte, req LeaseRequest) []byte {
	w := wbuf{b: b}
	w.u64(req.Epoch)
	w.i64(int64(req.Server))
	w.f64(req.T)
	w.f64(req.LeaseS)
	w.u64(req.Iv)
	w.u64(req.LeaseIv)
	w.f64(req.IvS)
	return w.b
}

func decodeLeaseReqPayload(p []byte) (LeaseRequest, error) {
	r := rbuf{b: p}
	var req LeaseRequest
	req.V = ProtocolV
	req.Epoch = r.u64()
	req.Server = r.integer()
	req.T = r.f64()
	req.LeaseS = r.f64()
	req.Iv = r.u64()
	req.LeaseIv = r.u64()
	req.IvS = r.f64()
	if err := r.done(); err != nil {
		return LeaseRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return LeaseRequest{}, err
	}
	return req, nil
}

func appendLeaseRespPayload(b []byte, resp LeaseResponse) []byte {
	w := wbuf{b: b}
	w.u64(resp.Epoch)
	w.i64(int64(resp.Server))
	w.f64(resp.CapW)
	w.f64(resp.ExpiresT)
	w.boolean(resp.Fenced)
	w.u64(resp.Iv)
	return w.b
}

func decodeLeaseRespPayload(p []byte) (LeaseResponse, error) {
	r := rbuf{b: p}
	var resp LeaseResponse
	resp.V = ProtocolV
	resp.Epoch = r.u64()
	resp.Server = r.integer()
	resp.CapW = r.f64()
	resp.ExpiresT = r.f64()
	resp.Fenced = r.boolean()
	resp.Iv = r.u64()
	if err := r.done(); err != nil {
		return LeaseResponse{}, err
	}
	return resp, nil
}

// --- RegisterRequest / RegisterResponse ---

func appendRegisterReq(b []byte, req RegisterRequest) []byte {
	w := wbuf{b: b}
	w.i64(int64(req.Server))
	w.str(req.URL)
	w.f64(req.NameplateW)
	return w.b
}

func decodeRegisterReqPayload(p []byte) (RegisterRequest, error) {
	r := rbuf{b: p}
	var req RegisterRequest
	req.V = ProtocolV
	req.Server = r.integer()
	req.URL = r.str()
	req.NameplateW = r.f64()
	if err := r.done(); err != nil {
		return RegisterRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return RegisterRequest{}, err
	}
	return req, nil
}

func appendRegisterRespPayload(b []byte, resp RegisterResponse) []byte {
	w := wbuf{b: b}
	w.i64(int64(resp.Server))
	w.boolean(resp.Accepted)
	w.u64(resp.Epoch)
	w.boolean(resp.Leader)
	w.str(resp.LeaderID)
	return w.b
}

func decodeRegisterRespPayload(p []byte) (RegisterResponse, error) {
	r := rbuf{b: p}
	var resp RegisterResponse
	resp.V = ProtocolV
	resp.Server = r.integer()
	resp.Accepted = r.boolean()
	resp.Epoch = r.u64()
	resp.Leader = r.boolean()
	resp.LeaderID = r.str()
	if err := r.done(); err != nil {
		return RegisterResponse{}, err
	}
	return resp, nil
}

// --- VoteRequest / VoteResponse ---

func putWireTerm(w *wbuf, t WireTerm) {
	w.u64(t.Epoch)
	w.str(t.Leader)
	w.i64(t.ExpiresUnixNano)
}

func getWireTerm(r *rbuf) WireTerm {
	var t WireTerm
	t.Epoch = r.u64()
	t.Leader = r.str()
	t.ExpiresUnixNano = r.i64()
	return t
}

func appendVoteReq(b []byte, req VoteRequest) []byte {
	w := wbuf{b: b}
	w.str(req.Phase)
	w.u64(req.Ballot)
	w.boolean(req.Term != nil)
	if req.Term != nil {
		putWireTerm(&w, *req.Term)
	}
	return w.b
}

func decodeVoteReqPayload(p []byte) (VoteRequest, error) {
	r := rbuf{b: p}
	var req VoteRequest
	req.V = ProtocolV
	req.Phase = r.str()
	req.Ballot = r.u64()
	if r.boolean() {
		t := getWireTerm(&r)
		req.Term = &t
	}
	if err := r.done(); err != nil {
		return VoteRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return VoteRequest{}, err
	}
	return req, nil
}

func appendVoteRespPayload(b []byte, resp VoteResponse) []byte {
	w := wbuf{b: b}
	w.boolean(resp.Granted)
	w.u64(resp.Promise)
	w.u64(resp.AcceptedBallot)
	w.boolean(resp.Term != nil)
	if resp.Term != nil {
		putWireTerm(&w, *resp.Term)
	}
	return w.b
}

func decodeVoteRespPayload(p []byte) (VoteResponse, error) {
	r := rbuf{b: p}
	var resp VoteResponse
	resp.V = ProtocolV
	resp.Granted = r.boolean()
	resp.Promise = r.u64()
	resp.AcceptedBallot = r.u64()
	if r.boolean() {
		t := getWireTerm(&r)
		resp.Term = &t
	}
	if err := r.done(); err != nil {
		return VoteResponse{}, err
	}
	if err := resp.Validate(); err != nil {
		return VoteResponse{}, err
	}
	return resp, nil
}

// --- LeaderStatus (FrameLeaderReq carries an empty payload) ---

func appendLeaderStatusPayload(b []byte, st LeaderStatus) []byte {
	w := wbuf{b: b}
	w.str(st.ID)
	w.str(st.LeaderID)
	w.u64(st.Epoch)
	w.boolean(st.Leader)
	w.i64(int64(st.Failovers))
	return w.b
}

func decodeLeaderStatusPayload(p []byte) (LeaderStatus, error) {
	r := rbuf{b: p}
	var st LeaderStatus
	st.V = ProtocolV
	st.ID = r.str()
	st.LeaderID = r.str()
	st.Epoch = r.u64()
	st.Leader = r.boolean()
	st.Failovers = r.integer()
	if err := r.done(); err != nil {
		return LeaderStatus{}, err
	}
	return st, nil
}

// --- FrameError payload: one error string ---

func appendErrPayload(b []byte, msg string) []byte {
	w := wbuf{b: b}
	w.str(msg)
	return w.b
}

func decodeErrPayload(p []byte) (string, error) {
	r := rbuf{b: p}
	msg := r.str()
	if err := r.done(); err != nil {
		return "", err
	}
	return msg, nil
}

// --- batch messages (binary-only; see docs/WIRE.md §5) ---

// BatchScrapeRequest asks one endpoint for many agents' reports in a
// single frame: the shared replay instant plus the fleet slice living
// behind that listener.
type BatchScrapeRequest struct {
	V       int
	T       float64
	HasT    bool
	Servers []int
}

// Validate enforces the batch-scrape invariants.
func (r BatchScrapeRequest) Validate() error {
	if r.V != ProtocolV {
		return fmt.Errorf("ctrlplane: batch scrape protocol v%d, want v%d", r.V, ProtocolV)
	}
	if r.HasT && (!finite(r.T) || r.T < 0) {
		return fmt.Errorf("ctrlplane: batch scrape time %g", r.T)
	}
	if !r.HasT && r.T != 0 {
		return fmt.Errorf("ctrlplane: batch scrape time %g without hasT", r.T)
	}
	if len(r.Servers) == 0 || len(r.Servers) > maxBatchEntries {
		return fmt.Errorf("ctrlplane: batch scrape of %d servers (want 1..%d)", len(r.Servers), maxBatchEntries)
	}
	for _, s := range r.Servers {
		if s < 0 {
			return fmt.Errorf("ctrlplane: batch scrape server %d", s)
		}
	}
	return nil
}

// ScrapeResult is one agent's slot in a batch-scrape response: either
// its report or the per-agent error, never both.
type ScrapeResult struct {
	Server int
	Err    string
	Report Report // valid when Err == ""
}

// BatchScrapeResponse answers a BatchScrapeRequest slot-for-slot.
type BatchScrapeResponse struct {
	V       int
	Results []ScrapeResult
}

// BatchGrantRequest fans one interval's grants to every agent behind
// an endpoint in a single frame. Entries marked Renew coalesce the
// renewal round-trip: the server renews, checks the renewal held the
// requested budget, and falls through to a fresh assign under this
// frame's (Epoch, Seq) when it did not — exactly the coordinator's
// unary renew-else-assign sequence, one hop shorter.
type BatchGrantRequest struct {
	V      int
	Epoch  uint64
	Seq    uint64
	T      float64
	LeaseS float64
	// Iv/LeaseIv/IvS carry the protocol-clock triple shared by every
	// entry in the frame (one mint interval per fan-out); all zero when
	// the coordinator runs clockless.
	Iv      uint64
	LeaseIv uint64
	IvS     float64
	Entries []GrantEntry
}

// GrantEntry is one agent's budget in a batch grant.
type GrantEntry struct {
	Server int
	CapW   float64
	Renew  bool
}

// Validate enforces the batch-grant invariants (the per-entry fields
// feed AssignRequest/LeaseRequest validation server-side, so the same
// bounds apply here).
func (r BatchGrantRequest) Validate() error {
	if r.V != ProtocolV {
		return fmt.Errorf("ctrlplane: batch grant protocol v%d, want v%d", r.V, ProtocolV)
	}
	if r.Epoch == 0 {
		return fmt.Errorf("ctrlplane: batch grant epoch 0 (epochs start at 1)")
	}
	if r.Seq == 0 {
		return fmt.Errorf("ctrlplane: batch grant seq 0 (sequence numbers start at 1)")
	}
	if !finite(r.T) || r.T < 0 {
		return fmt.Errorf("ctrlplane: batch grant time %g", r.T)
	}
	if !finite(r.LeaseS) || r.LeaseS < 0 {
		return fmt.Errorf("ctrlplane: batch grant lease %g s", r.LeaseS)
	}
	if err := validateClockFields(r.Iv, r.LeaseIv, r.IvS); err != nil {
		return fmt.Errorf("ctrlplane: batch grant %w", err)
	}
	if len(r.Entries) == 0 || len(r.Entries) > maxBatchEntries {
		return fmt.Errorf("ctrlplane: batch grant of %d entries (want 1..%d)", len(r.Entries), maxBatchEntries)
	}
	for _, e := range r.Entries {
		if e.Server < 0 {
			return fmt.Errorf("ctrlplane: batch grant server %d", e.Server)
		}
		if !finite(e.CapW) || e.CapW < 0 {
			return fmt.Errorf("ctrlplane: batch grant cap %g W", e.CapW)
		}
	}
	return nil
}

// GrantResult is one agent's slot in a batch-grant response. Renewed
// reports that the coalesced renewal held (the lease moved and the
// budget matched); otherwise Resp is the assign acknowledgement and
// the coordinator applies its usual granted criterion.
type GrantResult struct {
	Server  int
	Err     string
	Renewed bool
	Resp    AssignResponse // valid when Err == ""
}

// BatchGrantResponse answers a BatchGrantRequest slot-for-slot.
type BatchGrantResponse struct {
	V       int
	Results []GrantResult
}

func appendBatchScrapeReq(b []byte, req BatchScrapeRequest) []byte {
	w := wbuf{b: b}
	w.f64(req.T)
	w.boolean(req.HasT)
	w.u32(uint32(len(req.Servers)))
	for _, s := range req.Servers {
		w.i64(int64(s))
	}
	return w.b
}

func decodeBatchScrapeReqPayload(p []byte) (BatchScrapeRequest, error) {
	r := rbuf{b: p}
	var req BatchScrapeRequest
	req.V = ProtocolV
	req.T = r.f64()
	req.HasT = r.boolean()
	n := int(r.u32())
	if r.err == nil && n*8 > len(r.b)-r.off {
		r.fail("batch scrape count %d exceeds payload", n)
	}
	if r.err == nil {
		req.Servers = make([]int, n)
		for i := range req.Servers {
			req.Servers[i] = r.integer()
		}
	}
	if err := r.done(); err != nil {
		return BatchScrapeRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return BatchScrapeRequest{}, err
	}
	return req, nil
}

func appendBatchScrapeRespPayload(b []byte, resp BatchScrapeResponse) []byte {
	w := wbuf{b: b}
	w.u32(uint32(len(resp.Results)))
	for _, res := range resp.Results {
		w.i64(int64(res.Server))
		w.str(res.Err)
		if res.Err == "" {
			putReport(&w, res.Report)
		}
	}
	return w.b
}

func decodeBatchScrapeRespPayload(p []byte) (BatchScrapeResponse, error) {
	r := rbuf{b: p}
	var resp BatchScrapeResponse
	resp.V = ProtocolV
	n := int(r.u32())
	if r.err == nil && n > maxBatchEntries {
		r.fail("batch scrape response count %d exceeds %d", n, maxBatchEntries)
	}
	for i := 0; i < n && r.err == nil; i++ {
		var res ScrapeResult
		res.Server = r.integer()
		res.Err = r.str()
		if res.Err == "" {
			res.Report = getReport(&r)
			if r.err == nil {
				if err := res.Report.Validate(); err != nil {
					return BatchScrapeResponse{}, err
				}
			}
		}
		resp.Results = append(resp.Results, res)
	}
	if err := r.done(); err != nil {
		return BatchScrapeResponse{}, err
	}
	return resp, nil
}

func appendBatchGrantReq(b []byte, req BatchGrantRequest) []byte {
	w := wbuf{b: b}
	w.u64(req.Epoch)
	w.u64(req.Seq)
	w.f64(req.T)
	w.f64(req.LeaseS)
	w.u64(req.Iv)
	w.u64(req.LeaseIv)
	w.f64(req.IvS)
	w.u32(uint32(len(req.Entries)))
	for _, e := range req.Entries {
		w.i64(int64(e.Server))
		w.f64(e.CapW)
		w.boolean(e.Renew)
	}
	return w.b
}

func decodeBatchGrantReqPayload(p []byte) (BatchGrantRequest, error) {
	r := rbuf{b: p}
	var req BatchGrantRequest
	req.V = ProtocolV
	req.Epoch = r.u64()
	req.Seq = r.u64()
	req.T = r.f64()
	req.LeaseS = r.f64()
	req.Iv = r.u64()
	req.LeaseIv = r.u64()
	req.IvS = r.f64()
	n := int(r.u32())
	if r.err == nil && n*17 > len(r.b)-r.off {
		r.fail("batch grant count %d exceeds payload", n)
	}
	if r.err == nil {
		req.Entries = make([]GrantEntry, n)
		for i := range req.Entries {
			req.Entries[i] = GrantEntry{Server: r.integer(), CapW: r.f64(), Renew: r.boolean()}
		}
	}
	if err := r.done(); err != nil {
		return BatchGrantRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return BatchGrantRequest{}, err
	}
	return req, nil
}

func appendBatchGrantRespPayload(b []byte, resp BatchGrantResponse) []byte {
	w := wbuf{b: b}
	w.u32(uint32(len(resp.Results)))
	for _, res := range resp.Results {
		w.i64(int64(res.Server))
		w.str(res.Err)
		if res.Err == "" {
			w.boolean(res.Renewed)
			putAssignResp(&w, res.Resp)
		}
	}
	return w.b
}

func decodeBatchGrantRespPayload(p []byte) (BatchGrantResponse, error) {
	r := rbuf{b: p}
	var resp BatchGrantResponse
	resp.V = ProtocolV
	n := int(r.u32())
	if r.err == nil && n > maxBatchEntries {
		r.fail("batch grant response count %d exceeds %d", n, maxBatchEntries)
	}
	for i := 0; i < n && r.err == nil; i++ {
		var res GrantResult
		res.Server = r.integer()
		res.Err = r.str()
		if res.Err == "" {
			res.Renewed = r.boolean()
			res.Resp = getAssignResp(&r)
		}
		resp.Results = append(resp.Results, res)
	}
	if err := r.done(); err != nil {
		return BatchGrantResponse{}, err
	}
	return resp, nil
}

// --- shard↔global trunk messages (binary-only; see docs/WIRE.md §6) ---

func appendShardReportReq(b []byte, req ShardReportRequest) []byte {
	w := wbuf{b: b}
	w.i64(int64(req.Shard))
	w.boolean(req.HasT)
	w.f64(req.T)
	w.u64(req.Iv)
	return w.b
}

func decodeShardReportReqPayload(p []byte) (ShardReportRequest, error) {
	r := rbuf{b: p}
	var req ShardReportRequest
	req.V = ProtocolV
	req.Shard = r.integer()
	req.HasT = r.boolean()
	req.T = r.f64()
	req.Iv = r.u64()
	if err := r.done(); err != nil {
		return ShardReportRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return ShardReportRequest{}, err
	}
	return req, nil
}

func appendShardReportPayload(b []byte, rep ShardReport) []byte {
	w := wbuf{b: b}
	w.i64(int64(rep.Shard))
	w.u64(rep.Epoch)
	w.u64(rep.Seq)
	w.f64(rep.T)
	w.boolean(rep.Leading)
	w.i64(int64(rep.Agents))
	w.f64(rep.FloorW)
	w.f64(rep.DemandW)
	w.f64(rep.UsedW)
	w.f64(rep.CapW)
	w.f64(rep.BudgetW)
	w.boolean(rep.Starved)
	w.u32(uint32(len(rep.Curve)))
	for _, p := range rep.Curve {
		w.f64(p.CapW)
		w.f64(p.Perf)
		w.f64(p.GridW)
	}
	w.u64(rep.GEpoch)
	w.u64(rep.GSeq)
	w.u64(rep.GIv)
	return w.b
}

func decodeShardReportPayload(p []byte) (ShardReport, error) {
	r := rbuf{b: p}
	var rep ShardReport
	rep.V = ProtocolV
	rep.Shard = r.integer()
	rep.Epoch = r.u64()
	rep.Seq = r.u64()
	rep.T = r.f64()
	rep.Leading = r.boolean()
	rep.Agents = r.integer()
	rep.FloorW = r.f64()
	rep.DemandW = r.f64()
	rep.UsedW = r.f64()
	rep.CapW = r.f64()
	rep.BudgetW = r.f64()
	rep.Starved = r.boolean()
	n := int(r.u32())
	if r.err == nil && n*24 > len(r.b)-r.off {
		r.fail("shard curve count %d exceeds payload", n)
	}
	if r.err == nil && n > 0 {
		rep.Curve = make([]cluster.CapPoint, n)
		for i := range rep.Curve {
			rep.Curve[i] = cluster.CapPoint{CapW: r.f64(), Perf: r.f64(), GridW: r.f64()}
		}
	}
	rep.GEpoch = r.u64()
	rep.GSeq = r.u64()
	rep.GIv = r.u64()
	if err := r.done(); err != nil {
		return ShardReport{}, err
	}
	if err := rep.Validate(); err != nil {
		return ShardReport{}, err
	}
	return rep, nil
}

func appendShardBudgetReq(b []byte, req ShardBudgetRequest) []byte {
	w := wbuf{b: b}
	w.u64(req.Epoch)
	w.u64(req.Seq)
	w.i64(int64(req.Shard))
	w.f64(req.T)
	w.f64(req.CapW)
	w.f64(req.LeaseS)
	w.u64(req.Iv)
	w.u64(req.LeaseIv)
	w.f64(req.IvS)
	return w.b
}

func decodeShardBudgetReqPayload(p []byte) (ShardBudgetRequest, error) {
	r := rbuf{b: p}
	var req ShardBudgetRequest
	req.V = ProtocolV
	req.Epoch = r.u64()
	req.Seq = r.u64()
	req.Shard = r.integer()
	req.T = r.f64()
	req.CapW = r.f64()
	req.LeaseS = r.f64()
	req.Iv = r.u64()
	req.LeaseIv = r.u64()
	req.IvS = r.f64()
	if err := r.done(); err != nil {
		return ShardBudgetRequest{}, err
	}
	if err := req.Validate(); err != nil {
		return ShardBudgetRequest{}, err
	}
	return req, nil
}

func appendShardBudgetRespPayload(b []byte, resp ShardBudgetResponse) []byte {
	w := wbuf{b: b}
	w.i64(int64(resp.Shard))
	w.u64(resp.Epoch)
	w.u64(resp.Seq)
	w.boolean(resp.Applied)
	w.f64(resp.CapW)
	w.u64(resp.Iv)
	return w.b
}

func decodeShardBudgetRespPayload(p []byte) (ShardBudgetResponse, error) {
	r := rbuf{b: p}
	var resp ShardBudgetResponse
	resp.V = ProtocolV
	resp.Shard = r.integer()
	resp.Epoch = r.u64()
	resp.Seq = r.u64()
	resp.Applied = r.boolean()
	resp.CapW = r.f64()
	resp.Iv = r.u64()
	if err := r.done(); err != nil {
		return ShardBudgetResponse{}, err
	}
	return resp, nil
}
