package ctrlplane

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"powerstruggle/internal/cluster"
)

// curvelessBackend models a live daemon: it cannot pre-characterize its
// churning mix, so it reports no cap-utility curve.
type curvelessBackend struct{ fakeBackend }

func (b *curvelessBackend) UtilityCurve() ([]cluster.CapPoint, error) { return nil, nil }

// floorBackend reports a configurable idle floor.
type floorBackend struct {
	fakeBackend
	floor float64
}

func (b *floorBackend) IdleFloorW() float64 { return b.floor }

// startBackendFleet serves one agent per backend over loopback HTTP.
func startBackendFleet(t *testing.T, backends []Backend) []AgentRef {
	t.Helper()
	refs := make([]AgentRef, len(backends))
	for i, be := range backends {
		a, err := NewAgent(AgentConfig{ID: i, Backend: be})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewHandler(a))
		t.Cleanup(srv.Close)
		refs[i] = AgentRef{ID: i, URL: srv.URL}
	}
	return refs
}

// Under StrategyUtility a scraped member with no utility curve — a live
// daemon, which never reports one — must get the documented even-share
// fallback, not a 0 W budget that would fence a healthy fleet to its
// floor.
func TestUtilityEvenShareForCurvelessMembers(t *testing.T) {
	refs := startBackendFleet(t, []Backend{
		&fakeBackend{}, &fakeBackend{}, &curvelessBackend{},
	})
	coord, err := New(Config{Agents: refs, Strategy: StrategyUtility, LeaseS: 150})
	if err != nil {
		t.Fatal(err)
	}
	const capW = 90.0
	res, err := coord.Step(context.Background(), 0, capW)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Budgets[2], capW/3; got != want {
		t.Fatalf("curveless member's budget %g W, want the even share %g W", got, want)
	}
	for i, b := range res.Budgets[:2] {
		if b <= 0 {
			t.Fatalf("curve-bearing member %d got %g W from the DP remainder", i, b)
		}
	}
	var sum float64
	for _, b := range res.Budgets {
		sum += b
	}
	if sum > capW+1e-9 {
		t.Fatalf("budgets sum to %g W over the %g W cap", sum, capW)
	}
	for i, g := range res.Granted {
		if !g {
			t.Fatalf("agent %d's budget not acknowledged", i)
		}
	}
}

// ApportionCurves prices every curve from one common idle floor, so a
// fleet whose members report different floors must fail loudly instead
// of silently computing everyone's budget against the first member's
// floor; an explicit Config.FloorW overrides.
func TestUtilityHeterogeneousFloorsRejected(t *testing.T) {
	refs := startBackendFleet(t, []Backend{
		&floorBackend{floor: 10}, &floorBackend{floor: 25},
	})
	coord, err := New(Config{Agents: refs, Strategy: StrategyUtility, LeaseS: 150})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Step(context.Background(), 0, 100); err == nil {
		t.Fatal("heterogeneous idle floors apportioned silently")
	}

	override, err := New(Config{Agents: refs, Strategy: StrategyUtility, LeaseS: 150, FloorW: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := override.Step(context.Background(), 0, 100); err != nil {
		t.Fatalf("explicit FloorW rejected: %v", err)
	}
}

// fenceOnLease is a transport shim that fences the agent the moment the
// coordinator's first lease renewal goes out — the race the coordinator
// must survive: an agent that fenced after the scrape answered healthy.
type fenceOnLease struct {
	agent  *Agent
	fenceT float64
	once   sync.Once
}

func (f *fenceOnLease) RoundTrip(r *http.Request) (*http.Response, error) {
	if strings.HasSuffix(r.URL.Path, PathLease) {
		f.once.Do(func() { _ = f.agent.Tick(f.fenceT) })
	}
	return http.DefaultTransport.RoundTrip(r)
}

// A renewal answered by a fenced agent must not count as a grant: a
// fenced agent ignores renewals, so the coordinator falls through to a
// full assignment, which restores the budget in the same control
// interval instead of a full interval later.
func TestRenewalOfFencedAgentFallsThroughToAssign(t *testing.T) {
	a, err := NewAgent(AgentConfig{ID: 0, Backend: &fakeBackend{}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(a))
	defer srv.Close()
	coord, err := New(Config{
		Agents:    []AgentRef{{ID: 0, URL: srv.URL}},
		Strategy:  StrategyEqual,
		LeaseS:    150,
		Transport: &fenceOnLease{agent: a, fenceT: 250},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Step(context.Background(), 0, 60); err != nil {
		t.Fatal(err)
	}
	if a.Fenced() {
		t.Fatal("agent fenced after a successful grant")
	}
	// Same budget at t=100: the scrape sees a healthy agent, so the
	// coordinator tries a renewal — and the shim fences the agent first.
	res, err := coord.Step(context.Background(), 100, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Granted[0] {
		t.Fatal("budget not re-granted after the fence")
	}
	if a.Fenced() || a.CapW() != 60 {
		t.Fatalf("after re-grant: fenced=%v cap=%g, want an unfenced 60 W", a.Fenced(), a.CapW())
	}
}
