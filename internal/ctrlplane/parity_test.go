package ctrlplane

import (
	"context"
	"testing"

	"powerstruggle/internal/cluster"
	"powerstruggle/internal/faults"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/trace"
	"powerstruggle/internal/workload"
)

// testEvaluator builds the same small fleet the cluster tests use.
func testEvaluator(t *testing.T, servers int, dropouts []cluster.Dropout) *cluster.Evaluator {
	t.Helper()
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	mixes := workload.Mixes()
	assign := make([]workload.Mix, servers)
	for i := range assign {
		assign[i] = mixes[i%len(mixes)]
	}
	ev, err := cluster.NewEvaluator(cluster.Config{HW: hw, Library: lib, Mixes: assign, Dropouts: dropouts})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// capRamp sweeps [loW, hiW] over n points at stepS resolution.
func capRamp(n int, stepS, loW, hiW float64) []trace.Point {
	pts := make([]trace.Point, n)
	for i := range pts {
		frac := float64(i) / float64(n-1)
		pts[i] = trace.Point{T: float64(i) * stepS, V: loW + frac*(hiW-loW)}
	}
	return pts
}

func oracleStrategy(s Strategy) cluster.Strategy {
	if s == StrategyUtility {
		return cluster.UtilityOurs
	}
	return cluster.EqualOurs
}

// TestCtrlPlaneParity is the headline acceptance gate: replaying a cap
// schedule through the networked coordinator — real HTTP, real JSON,
// real fan-out — over in-process agents must produce bit-for-bit the
// per-server budget sequence of the pure simulation, for both
// Equal(Ours) and Utility(Ours), under zero network faults.
func TestCtrlPlaneParity(t *testing.T) {
	const servers = 4
	caps := capRamp(12, 300, 750, 350)
	for _, strat := range []Strategy{StrategyEqual, StrategyUtility} {
		t.Run(strat.String(), func(t *testing.T) {
			ev := testEvaluator(t, servers, nil)
			oracle, err := ev.Evaluate(caps, oracleStrategy(strat))
			if err != nil {
				t.Fatal(err)
			}

			flt, err := StartSimFleet(ev, "test")
			if err != nil {
				t.Fatal(err)
			}
			defer flt.Close()
			coord, err := New(Config{
				Agents:   flt.Refs(),
				Strategy: strat,
				// Half the control interval: renewed leases never sit on
				// the t == lastGrant+leaseS float-equality edge.
				LeaseS: 150,
			})
			if err != nil {
				t.Fatal(err)
			}
			results, err := coord.Replay(context.Background(), caps, func(res StepResult) {
				if err := flt.Tick(res.T); err != nil {
					t.Errorf("tick %g: %v", res.T, err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(caps) {
				t.Fatalf("%d results for %d cap points", len(results), len(caps))
			}
			for s, res := range results {
				for i, b := range res.Budgets {
					if b != oracle.BudgetSeries[s][i] {
						t.Fatalf("step %d server %d: networked budget %g W, simulation %g W",
							s, i, b, oracle.BudgetSeries[s][i])
					}
				}
				for i, g := range res.Granted {
					if !g {
						t.Fatalf("step %d: agent %d's budget not acknowledged under zero faults", s, i)
					}
				}
				if res.ScrapeErrs != 0 || res.AssignErrs != 0 {
					t.Fatalf("step %d: RPC errors under zero faults: %+v", s, res)
				}
			}
			if st := coord.Stats(); st.LeaseExpiries != 0 || st.Reapportions != 0 {
				t.Fatalf("membership churn under zero faults: %+v", st)
			}
		})
	}
}

// TestDropoutLeaseExpiryParity is the dropout-equivalence gate: the
// same outage expressed two ways — an in-process Dropout window in the
// simulation, or a blackholed agent whose membership lease expires —
// must yield the identical budget trace. This is what makes the
// networked control plane a faithful implementation of the paper's
// re-apportioning semantics rather than an approximation.
func TestDropoutLeaseExpiryParity(t *testing.T) {
	const servers, lost = 4, 1
	// Outage spans [600, 1500): cap points at 600, 900, 1200 see the
	// server down; it returns for 1500+.
	caps := capRamp(10, 300, 700, 450)
	window := cluster.Dropout{Server: lost, FromT: 600, ToT: 1500}

	for _, strat := range []Strategy{StrategyEqual, StrategyUtility} {
		t.Run(strat.String(), func(t *testing.T) {
			// Oracle: the simulation with an in-process dropout window.
			evOracle := testEvaluator(t, servers, []cluster.Dropout{window})
			oracle, err := evOracle.Evaluate(caps, oracleStrategy(strat))
			if err != nil {
				t.Fatal(err)
			}

			// Networked: a healthy simulation; the outage happens on the
			// wire instead, as a deterministic blackhole of that agent.
			ev := testEvaluator(t, servers, nil)
			flt, err := StartSimFleet(ev, "test")
			if err != nil {
				t.Fatal(err)
			}
			defer flt.Close()
			net, err := faults.NewNetInjector(faults.NetConfig{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			refs := flt.Refs()
			lostHost := refs[lost].URL[len("http://"):]
			coord, err := New(Config{
				Agents:   refs,
				Strategy: strat,
				LeaseS:   150,
				// One missed scrape expires the membership lease, so the
				// re-apportioning lands in the same control interval as
				// the outage — the simulation's dropout detection is
				// instantaneous, and MissK=1 is its networked equivalent.
				MissK:     1,
				Transport: net,
			})
			if err != nil {
				t.Fatal(err)
			}

			for s, cp := range caps {
				net.SetDown(lostHost, cp.T >= window.FromT && cp.T < window.ToT)
				res, err := coord.Step(context.Background(), cp.T, cp.V)
				if err != nil {
					t.Fatal(err)
				}
				if err := flt.Tick(cp.T); err != nil {
					t.Fatal(err)
				}
				for i, b := range res.Budgets {
					if b != oracle.BudgetSeries[s][i] {
						t.Fatalf("step %d (t=%g) server %d: lease-expiry budget %g W, dropout budget %g W",
							s, cp.T, i, b, oracle.BudgetSeries[s][i])
					}
				}
				// The blackholed agent must also stop drawing within one
				// control interval: its draw lease lapses and it fences.
				if cp.T >= window.FromT+300 && cp.T < window.ToT {
					if !flt.Agents[lost].Fenced() {
						t.Fatalf("t=%g: blackholed agent still unfenced past one interval", cp.T)
					}
				}
			}
			st := coord.Stats()
			if st.LeaseExpiries != 1 || st.Rejoins != 1 {
				t.Fatalf("expiries=%d rejoins=%d, want 1 and 1", st.LeaseExpiries, st.Rejoins)
			}
			if st.Reapportions != oracle.Reapportions {
				t.Fatalf("networked reapportions %d, simulation %d", st.Reapportions, oracle.Reapportions)
			}
		})
	}
}

// Renewals: under a constant cap with a lease longer than the control
// interval, the coordinator must switch to cheap lease renewals and the
// agents must never re-apply or fence.
func TestCoordinatorRenewsUnchangedBudgets(t *testing.T) {
	ev := testEvaluator(t, 2, nil)
	flt, err := StartSimFleet(ev, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	coord, err := New(Config{Agents: flt.Refs(), Strategy: StrategyEqual, LeaseS: 700})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 6; step++ {
		t6 := float64(step) * 300
		if _, err := coord.Step(context.Background(), t6, 400); err != nil {
			t.Fatal(err)
		}
		if err := flt.Tick(t6); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range flt.Agents {
		if a.Fences() != 0 {
			t.Errorf("agent %d fenced %d times under steady renewal", i, a.Fences())
		}
		if a.Fenced() {
			t.Errorf("agent %d fenced", i)
		}
	}
}
