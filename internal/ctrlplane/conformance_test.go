package ctrlplane

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"powerstruggle/internal/faults"
)

// testElectionConformance drives one election store through the shared
// invariant table every implementation must satisfy identically:
//
//   - epochs are strictly monotonic — every change of leadership mints
//     a fresh epoch, including the same node regaining a lapsed term;
//   - an epoch never has two leaders;
//   - a renewal preserves the epoch and only extends the expiry;
//   - resign preserves the epoch (the next winner bumps it);
//   - an expired or resigned term is reclaimable by any candidate.
//
// The three stores — in-process, file-backed, and quorum-replicated —
// must be indistinguishable through this table; the HA layer treats
// them interchangeably.
func testElectionConformance(t *testing.T, e Election) {
	t.Helper()
	const ttl = 10 * time.Second

	// Cross-cutting invariants, re-checked after every campaign.
	leaderOf := map[uint64]string{}
	lastEpoch := uint64(0)
	campaign := func(stage, id string, at time.Duration) Term {
		t.Helper()
		term, err := e.Campaign(id, t0.Add(at), ttl)
		if err != nil {
			t.Fatalf("%s: campaign %s: %v", stage, id, err)
		}
		if term.Epoch == 0 || term.Leader == "" {
			t.Fatalf("%s: campaign returned an empty term %+v", stage, term)
		}
		if term.Epoch < lastEpoch {
			t.Fatalf("%s: epoch regressed %d -> %d", stage, lastEpoch, term.Epoch)
		}
		if prev, seen := leaderOf[term.Epoch]; seen && prev != term.Leader {
			t.Fatalf("%s: epoch %d had two leaders %q and %q", stage, term.Epoch, prev, term.Leader)
		}
		leaderOf[term.Epoch] = term.Leader
		lastEpoch = term.Epoch
		return term
	}

	stages := []struct {
		name       string
		id         string
		at         time.Duration
		resign     string // resign this id before campaigning
		wantLeader string
		wantEpoch  uint64
		wantExp    time.Duration // expected expiry offset from t0
	}{
		{name: "bootstrap mints epoch 1", id: "a", at: 0,
			wantLeader: "a", wantEpoch: 1, wantExp: ttl},
		{name: "renewal preserves the epoch", id: "a", at: 5 * time.Second,
			wantLeader: "a", wantEpoch: 1, wantExp: 15 * time.Second},
		{name: "an in-force term beats a challenger", id: "b", at: 10 * time.Second,
			wantLeader: "a", wantEpoch: 1, wantExp: 15 * time.Second},
		{name: "an expired term is reclaimable and bumps the epoch", id: "b", at: 16 * time.Second,
			wantLeader: "b", wantEpoch: 2, wantExp: 26 * time.Second},
		{name: "the deposed leader only observes", id: "a", at: 17 * time.Second,
			wantLeader: "b", wantEpoch: 2, wantExp: 26 * time.Second},
		{name: "resign keeps the epoch for the next winner to bump", id: "a", at: 18 * time.Second, resign: "b",
			wantLeader: "a", wantEpoch: 3, wantExp: 28 * time.Second},
		{name: "a lapsed term is reclaimable by its own ex-holder under a fresh epoch", id: "a", at: 100 * time.Second,
			wantLeader: "a", wantEpoch: 4, wantExp: 110 * time.Second},
		{name: "resign by a non-holder is a no-op", id: "a", at: 101 * time.Second, resign: "b",
			wantLeader: "a", wantEpoch: 4, wantExp: 111 * time.Second},
	}
	for _, s := range stages {
		if s.resign != "" {
			if err := e.Resign(s.resign); err != nil {
				t.Fatalf("%s: resign %s: %v", s.name, s.resign, err)
			}
		}
		term := campaign(s.name, s.id, s.at)
		if term.Leader != s.wantLeader || term.Epoch != s.wantEpoch {
			t.Fatalf("%s: term %+v, want leader %q under epoch %d", s.name, term, s.wantLeader, s.wantEpoch)
		}
		if !term.Expires.Equal(t0.Add(s.wantExp)) {
			t.Fatalf("%s: expiry %v, want %v", s.name, term.Expires, t0.Add(s.wantExp))
		}
	}

	// Leadership thrash: alternate winners past each expiry. The
	// per-campaign checks above keep asserting strict monotonicity and
	// one-leader-per-epoch throughout.
	now := 200 * time.Second
	for i := 0; i < 10; i++ {
		id := "a"
		if i%2 == 1 {
			id = "b"
		}
		if term := campaign("thrash", id, now); term.Leader != id {
			t.Fatalf("thrash round %d: expired term not taken by %s: %+v", i, id, term)
		}
		now += 2 * ttl
	}

	// Bad campaigns are refused outright and must not disturb the term.
	if _, err := e.Campaign("", t0.Add(now), ttl); err == nil {
		t.Fatal("empty candidate id accepted")
	}
	if _, err := e.Campaign("a", t0.Add(now), 0); err == nil {
		t.Fatal("zero ttl accepted")
	}
	campaign("store survives refused campaigns", "a", now)
}

// TestElectionConformance runs the shared invariant table against all
// three stores, unmodified: the suite is the contract that lets the HA
// layer swap stores freely.
func TestElectionConformance(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		testElectionConformance(t, NewMemElection())
	})
	t.Run("file", func(t *testing.T) {
		e, err := NewFileElection(filepath.Join(t.TempDir(), "term.json"))
		if err != nil {
			t.Fatal(err)
		}
		testElectionConformance(t, e)
	})
	t.Run("quorum", func(t *testing.T) {
		pool, err := StartVoterPool(3, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(pool.Close)
		e, err := NewQuorumElection(QuorumConfig{Voters: pool.URLs()})
		if err != nil {
			t.Fatal(err)
		}
		testElectionConformance(t, e)
	})
}

// faultyStore wraps an election store with seeded RPC-style faults: a
// campaign may be dropped before it reaches the store (the store never
// saw it) or after (the effect landed, the caller learned nothing) —
// the same ambiguity the net injector gives the quorum store's wire.
type faultyStore struct {
	inner     Election
	dropReqP  float64
	dropRespP float64

	mu  sync.Mutex
	rng *rand.Rand
}

func (f *faultyStore) roll(p float64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < p
}

func (f *faultyStore) Campaign(id string, now time.Time, ttl time.Duration) (Term, error) {
	if f.roll(f.dropReqP) {
		return Term{}, fmt.Errorf("injected campaign drop (request)")
	}
	term, err := f.inner.Campaign(id, now, ttl)
	if err != nil {
		return term, err
	}
	if f.roll(f.dropRespP) {
		return Term{}, fmt.Errorf("injected campaign drop (response)")
	}
	return term, nil
}

func (f *faultyStore) Resign(id string) error {
	if f.roll(f.dropReqP) {
		return fmt.Errorf("injected resign drop")
	}
	return f.inner.Resign(id)
}

// testElectionSafety runs the seeded randomized election-safety
// property against one store: campaigners concurrently campaign with
// skewed clocks while the store's transport (or a fault wrapper)
// drops and delays calls, and no interleaving may ever produce two
// leaders for one epoch or an epoch regression in any campaigner's
// observation sequence. mk builds campaigner i's handle onto the one
// shared store — the quorum variant gives each its own proposer and
// fault injector, like distinct coordinators. minSuccessFrac guards
// against a vacuous pass; the quorum store runs with a lower floor
// because dueling proposers legitimately abandon contended campaigns
// (the HA layer just observes on those) on top of the injected drops.
func testElectionSafety(t *testing.T, seed int64, minSuccessFrac float64, mk func(i int) Election) {
	t.Helper()
	const (
		campaigners = 4
		segments    = 4
		rounds      = 15 // per segment
		ttl         = time.Second
		step        = ttl / 3
	)
	skewRng := rand.New(rand.NewSource(seed))

	type campaigner struct {
		id    string
		e     Election
		skew  time.Duration
		rng   *rand.Rand
		last  uint64 // last observed epoch; must never regress
		wins  int
		succs int
	}
	cs := make([]*campaigner, campaigners)
	for i := range cs {
		cs[i] = &campaigner{
			id:   fmt.Sprintf("cand-%d", i),
			e:    mk(i),
			skew: time.Duration(skewRng.Int63n(int64(ttl))) - ttl/2,
			rng:  rand.New(rand.NewSource(seed + int64(i) + 1)),
		}
	}

	var trackMu sync.Mutex
	leaderOf := map[uint64]string{}
	observe := func(c *campaigner, term Term) {
		trackMu.Lock()
		defer trackMu.Unlock()
		if term.Epoch < c.last {
			t.Errorf("%s: epoch regressed %d -> %d", c.id, c.last, term.Epoch)
		}
		c.last = term.Epoch
		if prev, seen := leaderOf[term.Epoch]; seen && prev != term.Leader {
			t.Errorf("epoch %d has two leaders: %q and %q", term.Epoch, prev, term.Leader)
		}
		leaderOf[term.Epoch] = term.Leader
		c.succs++
		if term.Leader == c.id {
			c.wins++
		}
	}

	// Segments run concurrently inside, with a virtual-clock jump of
	// 2 x ttl between them: past any skew, every clock agrees the term
	// lapsed, so each segment must mint at least one fresh epoch — the
	// liveness half (expired terms are reclaimable under faults), which
	// also keeps the safety half from passing vacuously.
	base := t0
	for seg := 0; seg < segments; seg++ {
		var wg sync.WaitGroup
		for _, c := range cs {
			wg.Add(1)
			go func(c *campaigner) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					// Real-time jitter decorrelates the proposers a
					// little, like coordinators on their own tickers;
					// the virtual campaign clocks below are unaffected.
					time.Sleep(time.Duration(c.rng.Int63n(int64(3 * time.Millisecond))))
					now := base.Add(time.Duration(r)*step + c.skew +
						time.Duration(c.rng.Int63n(int64(step/4))))
					term, err := c.e.Campaign(c.id, now, ttl)
					if err != nil {
						continue // learned nothing; never act on it
					}
					observe(c, term)
					if term.Leader == c.id && c.rng.Intn(10) == 0 {
						_ = c.e.Resign(c.id) // clean handover, sometimes refused
					}
				}
			}(c)
		}
		wg.Wait()
		base = base.Add(time.Duration(rounds)*step + 2*ttl)
	}

	// Guard against a vacuous pass: the fault rates must leave most
	// campaigns decided, and the epoch must have moved once per segment.
	total, wins := 0, 0
	var maxEpoch uint64
	for _, c := range cs {
		total += c.succs
		wins += c.wins
		if c.last > maxEpoch {
			maxEpoch = c.last
		}
	}
	if want := int(minSuccessFrac * float64(campaigners*segments*rounds)); total < want {
		t.Fatalf("only %d of %d campaigns decided, want at least %d — faults ate the test",
			total, campaigners*segments*rounds, want)
	}
	if wins == 0 {
		t.Fatal("no campaigner ever led")
	}
	if maxEpoch < segments {
		t.Fatalf("final epoch %d after %d expiry segments — expired terms were not reclaimed", maxEpoch, segments)
	}
}

// TestElectionSafetyRandomized asserts the two election-safety
// invariants — one leader per epoch, no epoch regression — across all
// three stores under concurrent skewed-clock campaigners and injected
// store faults.
func TestElectionSafetyRandomized(t *testing.T) {
	const seed = 7
	t.Run("mem", func(t *testing.T) {
		store := NewMemElection()
		testElectionSafety(t, seed, 0.5, func(i int) Election {
			return &faultyStore{inner: store, dropReqP: 0.1, dropRespP: 0.1,
				rng: rand.New(rand.NewSource(seed + 100 + int64(i)))}
		})
	})
	t.Run("file", func(t *testing.T) {
		store, err := NewFileElection(filepath.Join(t.TempDir(), "term.json"))
		if err != nil {
			t.Fatal(err)
		}
		testElectionSafety(t, seed, 0.5, func(i int) Election {
			return &faultyStore{inner: store, dropReqP: 0.1, dropRespP: 0.1,
				rng: rand.New(rand.NewSource(seed + 100 + int64(i)))}
		})
	})
	t.Run("quorum", func(t *testing.T) {
		pool, err := StartVoterPool(3, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(pool.Close)
		testElectionSafety(t, seed, 0.25, func(i int) Election {
			inj, err := faults.NewNetInjector(faults.NetConfig{
				Seed:      seed + 100 + int64(i),
				DropReqP:  0.05,
				DropRespP: 0.05,
				DelayP:    0.2,
				DelayMax:  5 * time.Millisecond,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewQuorumElection(QuorumConfig{Voters: pool.URLs(), Transport: inj})
			if err != nil {
				t.Fatal(err)
			}
			return e
		})
	})
}
