package ctrlplane

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"powerstruggle/internal/cf"
	"powerstruggle/internal/cluster"
)

// SimFleet is N in-process agents served over real loopback HTTP, each
// backed by one server of a shared cluster evaluator. It is the harness
// behind pscluster -agents and the parity/soak tests: the coordinator
// talks to it over the same wire it would use against remote psd
// daemons, but every agent's planning is the pure simulation — so a
// zero-fault replay must reproduce the simulation's budget sequence
// watt for watt.
type SimFleet struct {
	Agents []*Agent

	refs []AgentRef
	lns  []net.Listener
	srvs []*http.Server
	bin  *BinaryServer
}

// FleetOptions parameterizes a simulated fleet beyond the defaults.
type FleetOptions struct {
	// Version is reported by every agent (build audit).
	Version string
	// FenceCapW is each agent's fail-safe cap (default 0: deep sleep).
	FenceCapW float64
	// SafeMode, when enabled, gives every agent graceful leaderless
	// degradation instead of the fence cliff.
	SafeMode SafeModeConfig
	// Transport picks the fleet's wire. TransportJSON (the default)
	// gives every agent its own loopback HTTP listener; TransportBinary
	// hosts the whole fleet behind one BinaryServer listener, which is
	// what lets the coordinator batch scrapes and grants into single
	// frames.
	Transport TransportKind
	// Learn, when non-nil, makes every agent characterize its utility
	// curve online instead of trusting the evaluator's pre-computed one
	// — the cold-start scenario's fleet. Each agent learns from its own
	// seed (Learn.Seed + server index) so replays stay deterministic.
	Learn *cf.OnlineConfig
}

// StartSimFleet boots one agent per evaluator server on loopback
// listeners. Agents boot fenced at 0 W (deep sleep) until their first
// grant, matching the cluster replay's "dead servers draw nothing".
func StartSimFleet(ev *cluster.Evaluator, version string) (*SimFleet, error) {
	return StartSimFleetOpts(ev, FleetOptions{Version: version})
}

// StartSimFleetOpts boots a simulated fleet with explicit options —
// the scenario runner's entry point, where fence caps and safe-mode
// degradation matter.
func StartSimFleetOpts(ev *cluster.Evaluator, opts FleetOptions) (*SimFleet, error) {
	f := &SimFleet{}
	for i := 0; i < ev.Servers(); i++ {
		var learn *cf.OnlineConfig
		if opts.Learn != nil {
			lc := *opts.Learn
			lc.Seed = opts.Learn.Seed + int64(i)
			learn = &lc
		}
		a, err := NewAgent(AgentConfig{
			ID:        i,
			Backend:   NewSimBackend(ev, i),
			FenceCapW: opts.FenceCapW,
			SafeMode:  opts.SafeMode,
			Learn:     learn,
			Version:   opts.Version,
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Agents = append(f.Agents, a)
	}
	if len(f.Agents) == 0 {
		f.Close()
		return nil, fmt.Errorf("ctrlplane: evaluator has no servers")
	}
	if opts.Transport == TransportBinary {
		// One listener for the whole fleet: all agents answer behind a
		// single tcp:// URL, so the coordinator's batch grouping can
		// fold the fleet into single frames.
		eps := make(map[int]CtrlEndpoint, len(f.Agents))
		for i, a := range f.Agents {
			eps[i] = a
		}
		srv, err := StartBinaryServer("127.0.0.1:0", BinaryServerConfig{Endpoints: eps})
		if err != nil {
			f.Close()
			return nil, err
		}
		f.bin = srv
		for i := range f.Agents {
			f.refs = append(f.refs, AgentRef{ID: i, URL: srv.URL()})
		}
		return f, nil
	}
	for i, a := range f.Agents {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, err
		}
		srv := &http.Server{
			Handler:           NewHandler(a),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() { _ = srv.Serve(ln) }()
		f.lns = append(f.lns, ln)
		f.srvs = append(f.srvs, srv)
		f.refs = append(f.refs, AgentRef{ID: i, URL: "http://" + ln.Addr().String()})
	}
	return f, nil
}

// BinaryServer returns the fleet's shared binary listener (nil on a
// JSON fleet) — the chaos drills bounce its conns.
func (f *SimFleet) BinaryServer() *BinaryServer { return f.bin }

// Refs returns the fleet's agent references, in server-index order.
func (f *SimFleet) Refs() []AgentRef {
	return append([]AgentRef(nil), f.refs...)
}

// Tick advances every agent's local clock to trace time t — the
// in-process stand-in for each daemon's own ticker, which is what
// fences a stale lease even when the coordinator's scrapes are lost.
func (f *SimFleet) Tick(t float64) error {
	for _, a := range f.Agents {
		if err := a.Tick(t); err != nil {
			return err
		}
	}
	return nil
}

// FleetGridW sums the fleet's current grid draw — what a power meter on
// the cluster's feed would read. Fenced agents are at their fence cap's
// draw (0 W for the deep-sleep default).
func (f *SimFleet) FleetGridW() float64 {
	var sum float64
	for _, a := range f.Agents {
		sum += a.GridW()
	}
	return sum
}

// Close shuts the listeners down.
func (f *SimFleet) Close() {
	for _, srv := range f.srvs {
		_ = srv.Close()
	}
	for _, ln := range f.lns {
		_ = ln.Close()
	}
	if f.bin != nil {
		f.bin.Close()
	}
}
