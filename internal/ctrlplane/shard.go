package ctrlplane

import (
	"context"
	"fmt"
	"sync"

	"powerstruggle/internal/cluster"
)

// ShardConfig parameterizes one shard coordinator's place in the
// two-tier budget tree.
type ShardConfig struct {
	// Shard is this shard's id in the global apportioner's ShardRef set.
	Shard int
	// InitialBudgetW is the bootstrap budget the shard enforces before
	// its first ShardBudget grant arrives. The deployment invariant is
	// that the initial budgets across all shards sum to at most the
	// cluster cap (pscluster bootstraps every shard at cap/shards).
	InitialBudgetW float64
	// RollupPoints bounds the aggregate curve shipped up the trunk
	// (default 256 — a few KiB per shard per interval).
	RollupPoints int
}

func (c ShardConfig) rollupPoints() int {
	if c.RollupPoints > 0 {
		return c.RollupPoints
	}
	return 256
}

// saturationFrac is the draw/budget ratio past which a member is
// considered cap-limited: its demand is estimated one curve level
// above its grant rather than at its observed draw. 0.98 rather than
// 1.0 because enforcement clamps draw a hair under the budget.
const saturationFrac = 0.98

// ShardCoordinator runs one shard of the two-tier tree: the wrapped
// Coordinator (optionally behind its HA pair) drives the shard's fleet
// slice with the full flat protocol — scrape, membership, apportion,
// epoch-fenced grants, breakers — while this layer holds the budget
// the tier above granted, fences ShardBudget grants by the global
// (Epoch, Seq) pair exactly as agents fence assignments, and rolls the
// members' cap-utility curves up into the ShardReport the global DP
// apportions against.
//
// Step must run on a single control loop, like Coordinator.Step;
// Report and ApplyBudget are safe to call concurrently from server
// goroutines.
type ShardCoordinator struct {
	cfg ShardConfig
	c   *Coordinator
	ha  *HA

	mu sync.Mutex
	// budgetW is the shard budget in force; budgetExpiry is the trace
	// time it lapses (0: non-lapsing). Past expiry the shard holds the
	// budget — never grows it — and reports itself starved; this is
	// cap-safe because the silent global has reserved the shard's last
	// grant until its reclaim window passes.
	budgetW      float64
	budgetExpiry float64
	starved      bool
	// lastEpoch/lastSeq fence budget grants: the shard's mirror of
	// Agent.Assign's (epoch, seq) ledger, holding the GLOBAL epoch.
	lastEpoch uint64
	lastSeq   uint64
	// Global protocol-clock state, the shard's mirror of the agent's:
	// gGrantIv/gLeaseIv/gIvS are the in-force budget grant's clock
	// triple (the budget starves once the effective global interval
	// reaches gGrantIv+gLeaseIv); lastGIv/lastGIvT track the highest
	// global interval observed from any trunk scrape or grant, anchored
	// on the shard clock so the effective interval keeps counting when
	// the global stalls.
	gGrantIv uint64
	gLeaseIv uint64
	gIvS     float64
	lastGIv  uint64
	lastGIvT float64
	stepped  bool
	report   ShardReport
}

// NewShardCoordinator wraps a coordinator as one shard of the tree.
func NewShardCoordinator(c *Coordinator, cfg ShardConfig) (*ShardCoordinator, error) {
	if c == nil {
		return nil, fmt.Errorf("ctrlplane: shard coordinator needs a coordinator")
	}
	if cfg.Shard < 0 {
		return nil, fmt.Errorf("ctrlplane: shard id %d", cfg.Shard)
	}
	if !finite(cfg.InitialBudgetW) || cfg.InitialBudgetW < 0 {
		return nil, fmt.Errorf("ctrlplane: shard initial budget %g W", cfg.InitialBudgetW)
	}
	return &ShardCoordinator{cfg: cfg, c: c, budgetW: cfg.InitialBudgetW}, nil
}

// NewShardCoordinatorHA wraps an HA pair member as one shard of the
// tree: the wrapped coordinator leads or observes per its elections,
// and the shard reports Leading accordingly so the global tries the
// peer when it scrapes a standby.
func NewShardCoordinatorHA(ha *HA, cfg ShardConfig) (*ShardCoordinator, error) {
	if ha == nil {
		return nil, fmt.Errorf("ctrlplane: shard coordinator needs an HA member")
	}
	sc, err := NewShardCoordinator(ha.Coordinator(), cfg)
	if err != nil {
		return nil, err
	}
	sc.ha = ha
	return sc, nil
}

// Coordinator returns the wrapped coordinator.
func (s *ShardCoordinator) Coordinator() *Coordinator { return s.c }

// BudgetW returns the shard budget currently in force.
func (s *ShardCoordinator) BudgetW() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budgetW
}

// Starved reports the shard's budget lease has lapsed.
func (s *ShardCoordinator) Starved() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.starved
}

// Step drives one shard control interval at trace time t: run the
// wrapped coordinator (or HA member) under the budget in force, then
// refresh the trunk report snapshot from the post-step member state.
func (s *ShardCoordinator) Step(ctx context.Context, t float64) (StepResult, error) {
	s.mu.Lock()
	if s.gLeaseIv > 0 && s.gIvS > 0 {
		// Interval budget lease: starve once the effective global
		// interval — last observed, aged by the shard clock at the
		// nominal interval length — reaches the grant's boundary.
		eff := s.lastGIv
		if dt := t - s.lastGIvT; dt > 0 {
			eff += uint64(dt / s.gIvS)
		}
		if eff >= s.gGrantIv+s.gLeaseIv && !s.starved {
			s.starved = true
		}
	} else if s.budgetExpiry > 0 && t > s.budgetExpiry && !s.starved {
		// The budget lease lapsed without a fresh grant: hold the last
		// budget (never grow it) and say so in the next report.
		s.starved = true
	}
	budget := s.budgetW
	s.mu.Unlock()

	var res StepResult
	var err error
	if s.ha != nil {
		res, err = s.ha.Step(ctx, t, budget)
	} else {
		res, err = s.c.Step(ctx, t, budget)
	}
	if err != nil {
		return res, err
	}
	s.refreshReport(t, budget)
	return res, nil
}

// refreshReport rebuilds the trunk snapshot. Runs on the control-loop
// goroutine right after a step, so the member state it reads is
// settled.
func (s *ShardCoordinator) refreshReport(t, budget float64) {
	rep := ShardReport{V: ProtocolV, Shard: s.cfg.Shard, T: t, BudgetW: budget}
	rep.Epoch = s.c.Epoch()
	rep.Seq = s.c.seq
	rep.Leading = true
	if s.ha != nil {
		_, rep.Leading = s.ha.Leader()
	}
	curves := make([][]cluster.CapPoint, 0, len(s.c.members))
	allCurved := true
	floor := s.c.cfg.FloorW
	floorKnown := floor != 0
	for _, m := range s.c.members {
		if !m.alive {
			continue
		}
		rep.Agents++
		rep.FloorW += m.floorW
		rep.CapW += m.grantedW
		if m.scraped {
			rep.UsedW += m.gridW
		}
		// Demand: an unconstrained member wants what it draws; a
		// cap-limited one (draw pinned at its grant) hill-climbs — it
		// asks for the next curve level above its grant, not its full
		// saturation cap. The bounded over-ask keeps the global's
		// rebalance inputs static when grants are static (a member
		// parked at its floor looks cap-limited too, and jumping its
		// demand to saturation made the tier above oscillate), while a
		// genuinely saturated member keeps ratcheting up interval after
		// interval until its draw detaches from its grant.
		// The rollup applies the flat coordinator's effective-curve rule:
		// a learned curve below the confidence floor is treated as
		// curveless here too, so a half-learned member can neither steer
		// the shard's demand hill-climb nor leak extrapolated cells into
		// the trunk aggregate the global DP prices.
		curve := s.c.effectiveCurve(m)
		demand := m.gridW
		if m.granted && m.grantedW > 0 && m.gridW >= saturationFrac*m.grantedW {
			demand = m.grantedW
			if n := len(curve); n > 0 {
				demand = curve[n-1].CapW
				for _, p := range curve {
					if p.CapW > m.grantedW {
						demand = p.CapW
						break
					}
				}
			}
			if demand < m.gridW {
				demand = m.gridW
			}
		}
		rep.DemandW += demand
		if len(curve) == 0 {
			allCurved = false
			continue
		}
		curves = append(curves, curve)
		if !floorKnown {
			floor, floorKnown = m.floorW, true
		} else if s.c.cfg.FloorW == 0 && m.floorW != floor {
			// RollupCurves prices every member from one common floor;
			// a heterogeneous shard without an explicit Config.FloorW
			// ships no aggregate (even-share fallback above), mirroring
			// the flat coordinator's refusal to guess.
			allCurved = false
		}
	}
	if allCurved && len(curves) > 0 {
		rep.Curve = cluster.DownsampleCurve(cluster.RollupCurves(floor, curves), s.cfg.rollupPoints())
	}
	s.mu.Lock()
	rep.Starved = s.starved
	rep.GEpoch = s.lastEpoch
	rep.GSeq = s.lastSeq
	rep.GIv = s.lastGIv
	s.report = rep
	s.stepped = true
	s.mu.Unlock()
}

// noteGIvLocked folds one observed global interval into the shard's
// protocol clock, anchored at shard time t.
func (s *ShardCoordinator) noteGIvLocked(iv uint64, t float64) {
	if iv > s.lastGIv {
		s.lastGIv = iv
		s.lastGIvT = t
	}
}

// Report answers the global apportioner's trunk scrape with the last
// step's snapshot. The snapshot carries Leading, so a standby's answer
// tells the global to try the peer URL.
func (s *ShardCoordinator) Report(req ShardReportRequest) (ShardReport, error) {
	if err := req.Validate(); err != nil {
		return ShardReport{}, err
	}
	if req.Shard != s.cfg.Shard {
		return ShardReport{}, fmt.Errorf("ctrlplane: shard report for shard %d answered by shard %d", req.Shard, s.cfg.Shard)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The trunk scrape broadcasts the global clock even when the grant
	// deadband skips a re-grant, so the shard keeps counting intervals.
	if req.Iv > 0 && req.HasT {
		s.noteGIvLocked(req.Iv, req.T)
	}
	if !s.stepped {
		return ShardReport{}, fmt.Errorf("ctrlplane: shard %d has not completed a control interval yet", s.cfg.Shard)
	}
	rep := s.report
	rep.GIv = s.lastGIv
	return rep, nil
}

// ApplyBudget applies (or fences) one ShardBudget grant — the shard's
// mirror of Agent.Assign. A grant older than the newest applied
// (global epoch, seq) pair is refused with the ledger echoed, so a
// deposed global apportioner recognizes itself and a retransmitted
// duplicate of the in-force grant is acknowledged as granted.
func (s *ShardCoordinator) ApplyBudget(req ShardBudgetRequest) (ShardBudgetResponse, error) {
	if err := req.Validate(); err != nil {
		return ShardBudgetResponse{}, err
	}
	if req.Shard != s.cfg.Shard {
		return ShardBudgetResponse{}, fmt.Errorf("ctrlplane: shard budget for shard %d sent to shard %d", req.Shard, s.cfg.Shard)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := ShardBudgetResponse{V: ProtocolV, Shard: s.cfg.Shard}
	if req.Epoch < s.lastEpoch || (req.Epoch == s.lastEpoch && req.Seq <= s.lastSeq) {
		resp.Epoch, resp.Seq, resp.CapW, resp.Iv = s.lastEpoch, s.lastSeq, s.budgetW, s.lastGIv
		return resp, nil
	}
	s.lastEpoch, s.lastSeq = req.Epoch, req.Seq
	s.budgetW = req.CapW
	s.budgetExpiry = 0
	if req.LeaseS > 0 {
		s.budgetExpiry = req.T + req.LeaseS
	}
	s.noteGIvLocked(req.Iv, req.T)
	s.gGrantIv, s.gLeaseIv, s.gIvS = req.Iv, req.LeaseIv, req.IvS
	s.starved = false
	resp.Epoch, resp.Seq, resp.Applied, resp.CapW, resp.Iv = req.Epoch, req.Seq, true, req.CapW, s.lastGIv
	return resp, nil
}

// ShardBinaryConfig merges the shard's trunk surface into a binary
// server config (typically one also carrying the shard's coordinator
// register/leader surface and its co-hosted agent endpoints).
func (s *ShardCoordinator) ShardBinaryConfig(cfg BinaryServerConfig) BinaryServerConfig {
	cfg.ShardReport = s.Report
	cfg.ShardBudget = s.ApplyBudget
	return cfg
}
