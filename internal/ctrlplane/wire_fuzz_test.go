package ctrlplane

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeAssign hammers the assign decoder with arbitrary bytes: it
// must never panic, and anything it accepts must satisfy the validated
// invariants and survive a marshal/decode round trip.
func FuzzDecodeAssign(f *testing.F) {
	seed, _ := json.Marshal(AssignRequest{V: ProtocolV, Epoch: 7, Seq: 3, Server: 1, T: 600, CapW: 85.5, LeaseS: 300})
	f.Add(seed)
	f.Add([]byte(`{"v":2,"epoch":1,"seq":1,"server":0,"t":0,"capW":0,"leaseS":0}`))
	f.Add([]byte(`{"v":2,"epoch":0,"seq":1,"server":0,"t":0,"capW":1,"leaseS":1}`))
	f.Add([]byte(`{"v":1,"seq":1,"server":0,"t":0,"capW":1,"leaseS":1}`))
	f.Add([]byte(`{"v":2,"epoch":1,"seq":0,"server":-1,"t":-5,"capW":-1,"leaseS":-1}`))
	f.Add([]byte(`{"v":2,"epoch":1,"seq":1,"server":0,"t":1e309,"capW":1,"leaseS":1}`))
	f.Add([]byte(`{"v":2}`))
	f.Add([]byte(`{"v":2,"epoch":1,"seq":1,"server":0,"t":0,"capW":1,"leaseS":0}{"trailing":1}`))
	f.Add([]byte(`{"v":2,"unknown":true}`))
	f.Add([]byte(`not json`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeAssign(data)
		if err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("accepted message fails validation: %v", err)
		}
		if req.Epoch == 0 {
			t.Fatal("accepted an epochless grant — a pre-HA coordinator slipped through the fence")
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted message does not marshal: %v", err)
		}
		again, err := DecodeAssign(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if again != req {
			t.Fatalf("round trip changed the message: %+v != %+v", again, req)
		}
	})
}

// FuzzDecodeReport does the same for telemetry reports, whose utility
// curves feed the coordinator's apportioning DP — a malformed curve
// must be rejected at the wire, not discovered inside the DP.
func FuzzDecodeReport(f *testing.F) {
	seed, _ := json.Marshal(Report{
		V: ProtocolV, Server: 2, Seq: 9, CapW: 80, PerfN: 1.2, GridW: 76,
		SoC: 0.6, IdleFloorW: 25, NameplateW: 120, Version: "v0-test",
	})
	f.Add(seed)
	f.Add([]byte(`{"v":1,"server":0,"seq":0,"capW":0,"perfN":0,"gridW":0,"soc":0,"fenced":true,"idleFloorW":0,"nameplateW":0}`))
	f.Add([]byte(`{"v":1,"server":0,"seq":1,"capW":1,"perfN":1,"gridW":1,"soc":0.5,"idleFloorW":1,"nameplateW":2,"utilityCurve":[{"capW":2,"perf":0.1,"gridW":1},{"capW":4,"perf":0.2,"gridW":3}]}`))
	f.Add([]byte(`{"v":1,"server":0,"seq":1,"capW":1,"perfN":1,"gridW":1,"soc":0.5,"idleFloorW":1,"nameplateW":2,"utilityCurve":[{"capW":4,"perf":0.1,"gridW":1},{"capW":2,"perf":0.2,"gridW":3}]}`))
	f.Add([]byte(`{"v":1,"server":0,"seq":1,"capW":1,"perfN":1,"gridW":1,"soc":1.5,"idleFloorW":1,"nameplateW":2}`))
	f.Add([]byte(`{"v":1,"server":0,"soc":-0.1}`))
	// Learned-curve meta: valid coverage, out-of-range confidence, and
	// meta dangling without a curve.
	f.Add([]byte(`{"v":2,"server":0,"seq":1,"capW":1,"perfN":1,"gridW":1,"soc":0.5,"idleFloorW":1,"nameplateW":2,"utilityCurve":[{"capW":2,"perf":0.1,"gridW":1}],"curveConf":0.5,"curveCells":3}`))
	f.Add([]byte(`{"v":2,"server":0,"seq":1,"capW":1,"perfN":1,"gridW":1,"soc":0.5,"idleFloorW":1,"nameplateW":2,"utilityCurve":[{"capW":2,"perf":0.1,"gridW":1}],"curveConf":1.5,"curveCells":3}`))
	f.Add([]byte(`{"v":2,"server":0,"seq":1,"capW":1,"perfN":1,"gridW":1,"soc":0.5,"idleFloorW":1,"nameplateW":2,"curveConf":0.5,"curveCells":3}`))
	f.Add([]byte(`{"v":2,"server":0,"soc":0.5,"curveCells":-1}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return
		}
		if err := rep.Validate(); err != nil {
			t.Fatalf("accepted report fails validation: %v", err)
		}
		if rep.SoC < 0 || rep.SoC > 1 {
			t.Fatalf("accepted report with soc %g", rep.SoC)
		}
		if rep.CurveConf < 0 || rep.CurveConf > 1 {
			t.Fatalf("accepted report with curveConf %g", rep.CurveConf)
		}
		if (rep.CurveConf != 0 || rep.CurveCells != 0) && len(rep.UtilityCurve) == 0 {
			t.Fatalf("accepted curve meta without a curve: conf %g cells %d", rep.CurveConf, rep.CurveCells)
		}
		prev := -1.0
		for _, p := range rep.UtilityCurve {
			if p.CapW <= prev {
				t.Fatalf("accepted non-increasing curve: %g after %g", p.CapW, prev)
			}
			prev = p.CapW
		}
		out, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("accepted report does not marshal: %v", err)
		}
		if _, err := DecodeReport(out); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}

// FuzzDecodeLease covers the renewal decoder: leases extend draw
// permission, so an accepted message must carry a live epoch and sane
// horizon.
func FuzzDecodeLease(f *testing.F) {
	seed, _ := json.Marshal(LeaseRequest{V: ProtocolV, Epoch: 2, Server: 1, T: 600, LeaseS: 300})
	f.Add(seed)
	f.Add([]byte(`{"v":2,"epoch":1,"server":0,"t":0,"leaseS":5}`))
	f.Add([]byte(`{"v":2,"epoch":0,"server":0,"t":0,"leaseS":5}`))
	f.Add([]byte(`{"v":1,"server":0,"t":0,"leaseS":5}`))
	f.Add([]byte(`{"v":2,"epoch":1,"server":0,"t":0,"leaseS":-1}`))
	f.Add([]byte(`{"v":2,"epoch":1,"server":0,"t":0,"leaseS":5}trailing`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeLease(data)
		if err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("accepted lease fails validation: %v", err)
		}
		if req.Epoch == 0 {
			t.Fatal("accepted an epochless renewal")
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted lease does not marshal: %v", err)
		}
		again, err := DecodeLease(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if again != req {
			t.Fatalf("round trip changed the message: %+v != %+v", again, req)
		}
	})
}

// wireTermEq compares optional wire terms field-wise — VoteRequest and
// VoteResponse carry *WireTerm, so struct equality would compare the
// pointers, not the terms.
func wireTermEq(a, b *WireTerm) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

// FuzzDecodeVote hammers the quorum vote decoder: votes move the
// replicated leadership term, so anything accepted must satisfy the
// phase invariants (prepare carries no term, accept carries a valid
// one) and survive a marshal/decode round trip.
func FuzzDecodeVote(f *testing.F) {
	w := termToWire(Term{Epoch: 3, Leader: "coord-a:1", Expires: t0})
	prep, _ := json.Marshal(VoteRequest{V: ProtocolV, Phase: VotePrepare, Ballot: 7})
	acc, _ := json.Marshal(VoteRequest{V: ProtocolV, Phase: VoteAccept, Ballot: 7, Term: &w})
	f.Add(prep)
	f.Add(acc)
	f.Add([]byte(`{"v":2,"phase":"prepare","ballot":0}`))
	f.Add([]byte(`{"v":2,"phase":"prepare","ballot":1,"term":{"epoch":1,"leader":"x"}}`))
	f.Add([]byte(`{"v":2,"phase":"accept","ballot":1}`))
	f.Add([]byte(`{"v":2,"phase":"accept","ballot":1,"term":{"epoch":0,"leader":"x"}}`))
	f.Add([]byte(`{"v":2,"phase":"accept","ballot":1,"term":{"epoch":1,"leader":""}}`))
	f.Add([]byte(`{"v":2,"phase":"accept","ballot":1,"term":{"epoch":1,"leader":"x","expiresUnixNano":-1}}`))
	f.Add([]byte(`{"v":2,"phase":"veto","ballot":1}`))
	f.Add([]byte(`{"v":1,"phase":"prepare","ballot":1}`))
	f.Add([]byte(`{"v":2,"phase":"prepare","ballot":1,"bogus":true}`))
	f.Add([]byte(`{"v":2,"phase":"prepare","ballot":1}{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeVote(data)
		if err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("accepted vote fails validation: %v", err)
		}
		if req.Ballot == 0 {
			t.Fatal("accepted a zero ballot — voters could double-grant it")
		}
		if (req.Phase == VotePrepare) != (req.Term == nil) {
			t.Fatalf("accepted %s vote with term=%v", req.Phase, req.Term)
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted vote does not marshal: %v", err)
		}
		again, err := DecodeVote(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if again.V != req.V || again.Phase != req.Phase || again.Ballot != req.Ballot || !wireTermEq(again.Term, req.Term) {
			t.Fatalf("round trip changed the message: %+v != %+v", again, req)
		}
	})
}

// FuzzDecodeVoteReply covers the voter's answer: a proposer counts
// grants toward a majority, so an accepted response must keep the
// accepted-ballot/term pairing and the promise ordering consistent.
func FuzzDecodeVoteReply(f *testing.F) {
	w := termToWire(Term{Epoch: 3, Leader: "coord-a:1", Expires: t0})
	granted, _ := json.Marshal(VoteResponse{V: ProtocolV, Granted: true, Promise: 9, AcceptedBallot: 7, Term: &w})
	bare, _ := json.Marshal(VoteResponse{V: ProtocolV, Granted: true, Promise: 9})
	f.Add(granted)
	f.Add(bare)
	f.Add([]byte(`{"V":2,"Granted":false,"Promise":3}`))
	f.Add([]byte(`{"V":2,"Granted":true,"Promise":3,"AcceptedBallot":5}`))
	f.Add([]byte(`{"V":2,"Granted":true,"Promise":3,"Term":{"epoch":1,"leader":"x"}}`))
	f.Add([]byte(`{"V":2,"Granted":true,"Promise":3,"AcceptedBallot":4,"Term":{"epoch":1,"leader":"x"}}`))
	f.Add([]byte(`{"V":2,"Granted":true,"Promise":3,"AcceptedBallot":3,"Term":{"epoch":0,"leader":"x"}}`))
	f.Add([]byte(`{"V":1,"Granted":true,"Promise":3}`))
	f.Add([]byte(`{"V":2,"bogus":1}`))
	f.Add([]byte(`[]`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeVoteResponse(data)
		if err != nil {
			return
		}
		if err := resp.Validate(); err != nil {
			t.Fatalf("accepted response fails validation: %v", err)
		}
		if (resp.AcceptedBallot == 0) != (resp.Term == nil) {
			t.Fatalf("accepted response with unpaired accepted state: %+v", resp)
		}
		if resp.AcceptedBallot > resp.Promise {
			t.Fatalf("accepted response promising %d below its accepted ballot %d", resp.Promise, resp.AcceptedBallot)
		}
		out, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("accepted response does not marshal: %v", err)
		}
		again, err := DecodeVoteResponse(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if again.V != resp.V || again.Granted != resp.Granted || again.Promise != resp.Promise ||
			again.AcceptedBallot != resp.AcceptedBallot || !wireTermEq(again.Term, resp.Term) {
			t.Fatalf("round trip changed the message: %+v != %+v", again, resp)
		}
	})
}

// FuzzDecodeRegister covers the registration decoder: the URL an agent
// announces is dialed by the coordinator every interval, so anything
// accepted must parse as an absolute http(s) URL within the size bound.
func FuzzDecodeRegister(f *testing.F) {
	seed, _ := json.Marshal(RegisterRequest{V: ProtocolV, Server: 4, URL: "http://10.0.0.4:7077", NameplateW: 120})
	f.Add(seed)
	f.Add([]byte(`{"v":2,"server":0,"url":"http://localhost:1","nameplateW":100}`))
	f.Add([]byte(`{"v":2,"server":0,"url":"ftp://x","nameplateW":100}`))
	f.Add([]byte(`{"v":2,"server":0,"url":"/relative","nameplateW":100}`))
	f.Add([]byte(`{"v":2,"server":-1,"url":"http://x","nameplateW":100}`))
	f.Add([]byte(`{"v":2,"server":0,"url":"http://x","nameplateW":-1}`))
	f.Add([]byte(`{"v":1,"server":0,"url":"http://x","nameplateW":100}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRegister(data)
		if err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("accepted registration fails validation: %v", err)
		}
		if len(req.URL) > maxURLBytes {
			t.Fatalf("accepted %d-byte URL", len(req.URL))
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted registration does not marshal: %v", err)
		}
		again, err := DecodeRegister(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if again != req {
			t.Fatalf("round trip changed the message: %+v != %+v", again, req)
		}
	})
}
