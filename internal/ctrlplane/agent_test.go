package ctrlplane

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"powerstruggle/internal/cluster"
)

// fakeBackend is a linear server: perf = cap/100, draw = 0.9*cap.
type fakeBackend struct {
	mu      sync.Mutex
	applied []float64
	failing bool
}

func (f *fakeBackend) Apply(capW float64) (float64, float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failing {
		return 0, 0, fmt.Errorf("backend down")
	}
	f.applied = append(f.applied, capW)
	return capW / 100, capW * 0.9, nil
}
func (f *fakeBackend) SoC() float64        { return 0.5 }
func (f *fakeBackend) IdleFloorW() float64 { return 10 }
func (f *fakeBackend) NameplateW() float64 { return 100 }
func (f *fakeBackend) UtilityCurve() ([]cluster.CapPoint, error) {
	// On the DP's grid: point k sits at floor + k*ServerCapStepW.
	var curve []cluster.CapPoint
	for cap := f.IdleFloorW(); cap <= f.NameplateW(); cap += cluster.ServerCapStepW {
		curve = append(curve, cluster.CapPoint{CapW: cap, Perf: cap / 100, GridW: cap * 0.9})
	}
	return curve, nil
}
func (f *fakeBackend) applyCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.applied)
}

func assign(seq uint64, t, capW, leaseS float64) AssignRequest {
	return AssignRequest{V: ProtocolV, Epoch: 1, Seq: seq, Server: 0, T: t, CapW: capW, LeaseS: leaseS}
}

// A duplicated or reordered assign (Seq not newer) must be acknowledged
// without touching the backend — the idempotency the soak's
// network-level duplication leans on.
func TestAgentSeqDedup(t *testing.T) {
	be := &fakeBackend{}
	a, err := NewAgent(AgentConfig{ID: 0, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	boot := be.applyCount() // the boot fence

	resp, err := a.Assign(assign(5, 0, 80, 10))
	if err != nil || !resp.Applied || resp.CapW != 80 {
		t.Fatalf("first assign: %+v, %v", resp, err)
	}
	for _, seq := range []uint64{5, 4, 1} {
		resp, err := a.Assign(assign(seq, 1, 30, 10))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Applied {
			t.Fatalf("stale seq %d applied", seq)
		}
		if resp.CapW != 80 {
			t.Fatalf("stale seq %d changed cap to %g", seq, resp.CapW)
		}
	}
	if got := be.applyCount() - boot; got != 1 {
		t.Fatalf("backend applied %d times, want 1", got)
	}
	if a.StaleDrops() != 3 {
		t.Fatalf("staleDrops = %d, want 3", a.StaleDrops())
	}

	// A misdirected assign is refused outright.
	bad := assign(9, 2, 50, 10)
	bad.Server = 7
	if _, err := a.Assign(bad); err == nil {
		t.Fatal("assign for another server accepted")
	}
}

// A lapsed draw lease must fence the agent to its fail-safe cap, and
// only a fresh assign may unfence it.
func TestAgentLeaseFence(t *testing.T) {
	be := &fakeBackend{}
	a, err := NewAgent(AgentConfig{ID: 0, Backend: be})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Fenced() {
		t.Fatal("agent must boot fenced")
	}
	if _, err := a.Assign(assign(1, 100, 80, 10)); err != nil {
		t.Fatal(err)
	}
	if a.Fenced() || a.GridW() != 72 {
		t.Fatalf("after grant: fenced=%v grid=%g", a.Fenced(), a.GridW())
	}
	// Within the lease: no fence.
	if err := a.Tick(109.9); err != nil {
		t.Fatal(err)
	}
	if a.Fenced() {
		t.Fatal("fenced before the lease lapsed")
	}
	// A renewal extends the lease past the original expiry.
	if _, err := a.Renew(LeaseRequest{V: ProtocolV, Epoch: 1, Server: 0, T: 105, LeaseS: 10}); err != nil {
		t.Fatal(err)
	}
	if err := a.Tick(112); err != nil {
		t.Fatal(err)
	}
	if a.Fenced() {
		t.Fatal("fenced despite renewal")
	}
	// Lapse: fence to the zero-watt fail-safe.
	if err := a.Tick(115); err != nil {
		t.Fatal(err)
	}
	if !a.Fenced() || a.CapW() != 0 || a.GridW() != 0 {
		t.Fatalf("after lapse: fenced=%v cap=%g grid=%g", a.Fenced(), a.CapW(), a.GridW())
	}
	if a.Fences() != 1 {
		t.Fatalf("fences = %d, want 1", a.Fences())
	}
	// A renewal cannot resurrect a fenced agent.
	resp, err := a.Renew(LeaseRequest{V: ProtocolV, Epoch: 1, Server: 0, T: 116, LeaseS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Fenced {
		t.Fatal("renew unfenced a fenced agent")
	}
	if err := a.Tick(200); err != nil {
		t.Fatal(err)
	}
	if !a.Fenced() {
		t.Fatal("agent unfenced without an assign")
	}
	// Only an assign restores a budget.
	if _, err := a.Assign(assign(2, 200, 40, 10)); err != nil {
		t.Fatal(err)
	}
	if a.Fenced() || a.CapW() != 40 {
		t.Fatalf("after re-assign: fenced=%v cap=%g", a.Fenced(), a.CapW())
	}
}

// A delayed or duplicated renewal carrying an older T must not move the
// lease clock backward — that would spuriously fence a healthy agent on
// its next Tick.
func TestAgentStaleRenewalIgnored(t *testing.T) {
	a, err := NewAgent(AgentConfig{ID: 0, Backend: &fakeBackend{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Assign(assign(1, 100, 80, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Renew(LeaseRequest{V: ProtocolV, Epoch: 1, Server: 0, T: 105, LeaseS: 10}); err != nil {
		t.Fatal(err)
	}
	// A duplicate of an earlier renewal arrives late; the lease still
	// runs to 115, not back to 105.
	resp, err := a.Renew(LeaseRequest{V: ProtocolV, Epoch: 1, Server: 0, T: 95, LeaseS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ExpiresT != 115 {
		t.Fatalf("stale renewal moved expiry to %g, want 115", resp.ExpiresT)
	}
	if err := a.Tick(108); err != nil {
		t.Fatal(err)
	}
	if a.Fenced() {
		t.Fatal("stale renewal rewound the lease clock and fenced a healthy agent")
	}
}

// A zero-length lease never lapses.
func TestAgentZeroLeaseNeverFences(t *testing.T) {
	a, err := NewAgent(AgentConfig{ID: 0, Backend: &fakeBackend{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Assign(assign(1, 0, 60, 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Tick(1e12); err != nil {
		t.Fatal(err)
	}
	if a.Fenced() {
		t.Fatal("zero-lease agent fenced")
	}
}

// fanOut must run everything exactly once and never exceed its
// concurrency bound.
func TestFanOutBound(t *testing.T) {
	const n, bound = 64, 5
	var inFlight, peak, runs atomic.Int64
	fanOut(context.Background(), n, bound, func(i int) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runs.Add(1)
		inFlight.Add(-1)
	})
	if runs.Load() != n {
		t.Fatalf("ran %d of %d", runs.Load(), n)
	}
	if peak.Load() > bound {
		t.Fatalf("peak concurrency %d exceeds bound %d", peak.Load(), bound)
	}
}
