package ctrlplane

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"powerstruggle/internal/cf"
	"powerstruggle/internal/cluster"
	"powerstruggle/internal/telemetry"
)

// learnedCurve builds a test cap-utility curve on the [45, 95] W grid.
func learnedCurve(scale float64) []cluster.CapPoint {
	grid := cf.CapGrid(45, 95, 10)
	rates := make([]float64, len(grid))
	for j, c := range grid {
		rates[j] = scale * (1 - math.Exp(-c/60))
	}
	return cf.CurveFromRates(grid, rates)
}

// TestLearnedCurveConfidenceFloor pins the effective-curve rule: a
// pre-characterized curve (no meta) and a converged learner enter the
// utility DP; a learner below the confidence floor takes the curveless
// even-share fallback, and the curved members split the remainder
// exactly as the full DP says. The decision repeats bit-identically —
// and with zero DP recompute — when nothing changed.
func TestLearnedCurveConfidenceFloor(t *testing.T) {
	c := &Coordinator{cfg: Config{Strategy: StrategyUtility, FloorW: 45}}
	c.members = []*member{
		{curve: learnedCurve(100)},                             // pre-characterized: trusted
		{curve: learnedCurve(80), curveConf: 1, curveCells: 6}, // converged learner: trusted
		{curve: learnedCurve(60), curveConf: 0.5, curveCells: 3} /* below DefaultCurveConfFloor */}
	alive := []bool{true, true, true}
	budgets := make([]float64, 3)
	const capW = 500.0
	if err := c.apportion(capW, alive, budgets); err != nil {
		t.Fatal(err)
	}
	per := capW / 3
	if budgets[2] != per {
		t.Fatalf("low-confidence member got %g W, want the even share %g W", budgets[2], per)
	}
	want, _, _ := cluster.ApportionCurves(capW-per, 45,
		[][]cluster.CapPoint{learnedCurve(100), learnedCurve(80)})
	if budgets[0] != want[0] || budgets[1] != want[1] {
		t.Fatalf("curved members got %g/%g W, full DP says %g/%g W",
			budgets[0], budgets[1], want[0], want[1])
	}
	again := make([]float64, 3)
	if err := c.apportion(capW, alive, again); err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i] != budgets[i] {
			t.Fatalf("member %d budget moved %g -> %g W with no state change", i, budgets[i], again[i])
		}
	}
	if n := c.dp.LastRecomputed(); n != 0 {
		t.Fatalf("unchanged curves recomputed %d DP layers, want 0", n)
	}
	// Raising the floor above 1 demotes even the converged learner, but
	// never the pre-characterized curve.
	c.cfg.CurveConfFloor = 1.5
	strict := make([]float64, 3)
	if err := c.apportion(capW, alive, strict); err != nil {
		t.Fatal(err)
	}
	if strict[1] != per || strict[2] != per {
		t.Fatalf("learners under a strict floor got %g/%g W, want even shares %g W", strict[1], strict[2], per)
	}
	if strict[0] == per {
		t.Fatal("pre-characterized member demoted to an even share by the learned-curve floor")
	}
}

// TestLearningProbeNoFlapWithinInterval is the satellite regression for
// the curveless-fallback contract: a learning agent may move its
// self-cap at most once per protocol interval — ticks inside an
// interval never flap the enforced cap.
func TestLearningProbeNoFlapWithinInterval(t *testing.T) {
	ev := testEvaluator(t, 1, nil)
	a, err := NewAgent(AgentConfig{
		ID: 0, Backend: NewSimBackend(ev, 0),
		Learn: &cf.OnlineConfig{Epsilon: 0.5, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Learning() {
		t.Fatal("agent with Learn config reports Learning() == false")
	}
	_, err = a.Assign(AssignRequest{V: ProtocolV, Epoch: 1, Seq: 1, Server: 0, T: 0,
		CapW: 600, LeaseS: 600, Iv: 1, LeaseIv: 2, IvS: 300})
	if err != nil {
		t.Fatal(err)
	}
	if a.CapW() > 600 {
		t.Fatalf("probe cap %g W exceeds the 600 W grant", a.CapW())
	}
	cap0 := a.CapW()
	for ts := 10.0; ts < 300; ts += 10 {
		if err := a.Tick(ts); err != nil {
			t.Fatal(err)
		}
		if a.CapW() != cap0 {
			t.Fatalf("t=%g: cap flapped %g -> %g W within interval 1", ts, cap0, a.CapW())
		}
	}
	// The next interval may move the probe once; after that it must hold
	// again until the following boundary.
	if err := a.Tick(310); err != nil {
		t.Fatal(err)
	}
	cap1 := a.CapW()
	for ts := 320.0; ts < 590; ts += 10 {
		if err := a.Tick(ts); err != nil {
			t.Fatal(err)
		}
		if a.CapW() != cap1 {
			t.Fatalf("t=%g: cap flapped %g -> %g W within interval 2", ts, cap1, a.CapW())
		}
	}
}

// TestPerMemberClockSkewGauge pins the ps_ctrl_clock_skew_intervals
// member series: a coordinator ahead of a stale fleet shows each
// member's lag, and the lag closes once grants carry fresh intervals.
func TestPerMemberClockSkewGauge(t *testing.T) {
	ev := testEvaluator(t, 2, nil)
	flt, err := StartSimFleet(ev, "skew")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	hub := telemetry.New(0)
	coord, err := New(Config{Agents: flt.Refs(), LeaseIv: 2, IntervalS: 300, Telemetry: hub})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	// A restarted leader that already minted interval 3 over a fleet
	// that has seen none of them.
	coord.iv.Store(3)
	if _, err := coord.Observe(context.Background(), 0, 600); err != nil {
		t.Fatal(err)
	}
	dump := func() string {
		var buf bytes.Buffer
		if err := hub.Registry().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := dump()
	for _, want := range []string{
		`ps_ctrl_clock_skew_intervals{member="0"} 3`,
		`ps_ctrl_clock_skew_intervals{member="1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	// Two leading intervals later the fleet echoes the mints and every
	// member's lag has closed.
	for s := 1; s <= 2; s++ {
		if _, err := coord.Step(context.Background(), float64(s)*300, 600); err != nil {
			t.Fatal(err)
		}
	}
	out = dump()
	for _, want := range []string{
		`ps_ctrl_clock_skew_intervals{member="0"} 0`,
		`ps_ctrl_clock_skew_intervals{member="1"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("post-grant metrics missing %q:\n%s", want, out)
		}
	}
}
