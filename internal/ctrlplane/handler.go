package ctrlplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// NewHandler serves an agent's /ctrl/* endpoints. The handler is
// self-contained so it can be mounted beside a daemon's existing API or
// served alone by the replay harness.
func NewHandler(a *Agent) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathAssign, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := readBody(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := DecodeAssign(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Server != a.ID() {
			http.Error(w, fmt.Sprintf("assign for server %d reached agent %d", req.Server, a.ID()), http.StatusBadRequest)
			return
		}
		resp, err := a.Assign(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeWireJSON(w, resp)
	})
	mux.HandleFunc(PathReport, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		// A scrape may carry the coordinator's clock; the agent uses it
		// to notice a lapsed lease even without a local ticker.
		var t float64
		hasT := false
		if ts := r.URL.Query().Get("t"); ts != "" {
			var err error
			t, err = strconv.ParseFloat(ts, 64)
			if err != nil || !finite(t) || t < 0 {
				http.Error(w, fmt.Sprintf("bad t %q", ts), http.StatusBadRequest)
				return
			}
			hasT = true
		}
		rep, err := a.Scrape(t, hasT)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeWireJSON(w, rep)
	})
	mux.HandleFunc(PathLease, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := readBody(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := DecodeLease(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Server != a.ID() {
			http.Error(w, fmt.Sprintf("lease for server %d reached agent %d", req.Server, a.ID()), http.StatusBadRequest)
			return
		}
		resp, err := a.Renew(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeWireJSON(w, resp)
	})
	return mux
}

// LeaderStatus is the GET /ctrl/leader payload: which candidate this
// coordinator believes leads, under which epoch, and whether it is that
// candidate itself.
type LeaderStatus struct {
	V         int    `json:"v"`
	ID        string `json:"id"`
	LeaderID  string `json:"leaderId"`
	Epoch     uint64 `json:"epoch"`
	Leader    bool   `json:"leader"`
	Failovers int    `json:"failovers"`
}

// coordStatus builds the leadership view both transports serve: which
// candidate this coordinator believes leads, under which epoch, and
// whether it is that candidate itself. ha may be nil for a plain
// single coordinator — it then reports itself leader of its own epoch
// with no election behind it.
func coordStatus(c *Coordinator, ha *HA) LeaderStatus {
	st := LeaderStatus{V: ProtocolV, Epoch: c.Epoch(), Leader: true}
	if ha != nil {
		term, lead := ha.Leader()
		st.ID = ha.ID()
		st.LeaderID = term.Leader
		st.Epoch = term.Epoch
		st.Leader = lead
		st.Failovers = ha.Failovers()
	}
	return st
}

// NewCoordinatorHandler serves a coordinator's /ctrl/* endpoints:
// agent registration, the leadership probe, and — when voter is
// non-nil — this pool member's /ctrl/vote quorum endpoint. ha may be
// nil (see coordStatus).
func NewCoordinatorHandler(c *Coordinator, ha *HA, voter *QuorumVoter) http.Handler {
	status := func() LeaderStatus { return coordStatus(c, ha) }
	mux := http.NewServeMux()
	mux.HandleFunc(PathRegister, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := readBody(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := DecodeRegister(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := c.Register(req)
		st := status()
		resp.Leader = st.Leader
		resp.LeaderID = st.LeaderID
		writeWireJSON(w, resp)
	})
	mux.HandleFunc(PathLeader, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeWireJSON(w, status())
	})
	if voter != nil {
		mux.Handle(PathVote, NewVoterHandler(voter))
	}
	return mux
}

// writeWireJSON writes a control-plane message.
func writeWireJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
