package ctrlplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// NewHandler serves an agent's /ctrl/* endpoints. The handler is
// self-contained so it can be mounted beside a daemon's existing API or
// served alone by the replay harness.
func NewHandler(a *Agent) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathAssign, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := readBody(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := DecodeAssign(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Server != a.ID() {
			http.Error(w, fmt.Sprintf("assign for server %d reached agent %d", req.Server, a.ID()), http.StatusBadRequest)
			return
		}
		resp, err := a.Assign(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeWireJSON(w, resp)
	})
	mux.HandleFunc(PathReport, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		// A scrape may carry the coordinator's clock; the agent uses it
		// to notice a lapsed lease even without a local ticker.
		if ts := r.URL.Query().Get("t"); ts != "" {
			t, err := strconv.ParseFloat(ts, 64)
			if err != nil || !finite(t) || t < 0 {
				http.Error(w, fmt.Sprintf("bad t %q", ts), http.StatusBadRequest)
				return
			}
			if err := a.Tick(t); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		rep, err := a.Report()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeWireJSON(w, rep)
	})
	mux.HandleFunc(PathLease, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := readBody(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := DecodeLease(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Server != a.ID() {
			http.Error(w, fmt.Sprintf("lease for server %d reached agent %d", req.Server, a.ID()), http.StatusBadRequest)
			return
		}
		resp, err := a.Renew(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeWireJSON(w, resp)
	})
	return mux
}

// writeWireJSON writes a control-plane message.
func writeWireJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
