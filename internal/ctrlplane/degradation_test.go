package ctrlplane

import (
	"context"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"powerstruggle/internal/faults"
)

// Safe-mode degradation: a lapsed lease must hold the last granted cap
// through the hold window, then decay linearly to the floor — never
// cliff — and a fresh grant must restore normal operation.
func TestAgentSafeModeHoldAndDecay(t *testing.T) {
	be := &fakeBackend{}
	a, err := NewAgent(AgentConfig{
		ID: 0, Backend: be, FenceCapW: 20,
		SafeMode: SafeModeConfig{HoldS: 300, DecayWPerS: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Grant 100 W at t=0 with a 300 s lease: expiry at 300, decay
	// starts at 600.
	if _, err := a.Assign(assign(1, 0, 100, 300)); err != nil {
		t.Fatal(err)
	}
	if err := a.Tick(200); err != nil {
		t.Fatal(err)
	}
	if a.Fenced() || a.SafeMode() {
		t.Fatal("degraded inside a live lease")
	}
	// Lapse lands in the hold window: the cap must hold, not cliff.
	if err := a.Tick(450); err != nil {
		t.Fatal(err)
	}
	if !a.SafeMode() || !a.Fenced() {
		t.Fatalf("safeMode=%v fenced=%v after lapse", a.SafeMode(), a.Fenced())
	}
	if got := a.CapW(); got != 100 {
		t.Fatalf("cap %g W in the hold window, want the held 100 W", got)
	}
	// 650 is 50 s past the hold window: 100 − 0.1·50 = 95 W.
	if err := a.Tick(650); err != nil {
		t.Fatal(err)
	}
	if got := a.CapW(); math.Abs(got-95) > 1e-9 {
		t.Fatalf("cap %g W mid-decay, want 95 W", got)
	}
	// Deep into the decay the cap pins at the floor (FenceCapW, the
	// default FloorW).
	if err := a.Tick(5000); err != nil {
		t.Fatal(err)
	}
	if got := a.CapW(); got != 20 {
		t.Fatalf("cap %g W at the end of decay, want the 20 W floor", got)
	}
	if a.SafeModeEntries() != 1 || a.Fences() != 1 {
		t.Fatalf("entries=%d fences=%d, want 1 and 1", a.SafeModeEntries(), a.Fences())
	}
	rep, err := a.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SafeMode || !rep.Fenced {
		t.Fatalf("report safeMode=%v fenced=%v", rep.SafeMode, rep.Fenced)
	}
	// A fresh grant clears safe mode entirely.
	resp, err := a.Assign(assign(2, 5100, 90, 300))
	if err != nil || !resp.Applied {
		t.Fatalf("re-grant: %+v, %v", resp, err)
	}
	if resp.SafeMode || a.SafeMode() || a.Fenced() || a.CapW() != 90 {
		t.Fatalf("after re-grant: safeMode=%v fenced=%v cap=%g", a.SafeMode(), a.Fenced(), a.CapW())
	}
}

// A held cap already at or below the floor must stay put — decay never
// raises a cap.
func TestAgentSafeModeHeldBelowFloor(t *testing.T) {
	be := &fakeBackend{}
	a, err := NewAgent(AgentConfig{
		ID: 0, Backend: be, FenceCapW: 10,
		SafeMode: SafeModeConfig{DecayWPerS: 1, FloorW: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Assign(assign(1, 0, 30, 100)); err != nil {
		t.Fatal(err)
	}
	if err := a.Tick(10000); err != nil {
		t.Fatal(err)
	}
	if got := a.CapW(); got != 30 {
		t.Fatalf("cap %g W, want the held 30 W (below the 50 W floor)", got)
	}
}

// Renewals must not resurrect a safe-mode agent: like a plain fence,
// only a fresh assign restores the budget.
func TestAgentSafeModeRefusesRenewal(t *testing.T) {
	be := &fakeBackend{}
	a, err := NewAgent(AgentConfig{
		ID: 0, Backend: be, SafeMode: SafeModeConfig{DecayWPerS: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Assign(assign(1, 0, 80, 10)); err != nil {
		t.Fatal(err)
	}
	if err := a.Tick(50); err != nil {
		t.Fatal(err)
	}
	if !a.SafeMode() {
		t.Fatal("not in safe mode after lapse")
	}
	resp, err := a.Renew(LeaseRequest{V: ProtocolV, Epoch: 1, Server: 0, T: 60, LeaseS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Fenced || resp.ExpiresT != 0 {
		t.Fatalf("renewal of a safe-mode agent answered %+v", resp)
	}
	if err := a.Tick(70); err != nil {
		t.Fatal(err)
	}
	if !a.SafeMode() {
		t.Fatal("renewal cleared safe mode")
	}
}

// The circuit breaker must stop dialing a blackholed agent after
// BreakerFails consecutive failed scrapes, keep membership expiry on
// schedule, and close again once a half-open probe answers.
func TestBreakerSkipsBlackholedAgent(t *testing.T) {
	ev := testEvaluator(t, 3, nil)
	flt, err := StartSimFleet(ev, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	inj, err := faults.NewNetInjector(faults.NetConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(Config{
		Agents: flt.Refs(), LeaseS: 150,
		MissK: 2, Retries: 1, RPCTimeout: time.Second,
		BreakerFails: 2, BreakerOpenIntervals: 3,
		Transport: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadHost := strings.TrimPrefix(flt.Refs()[2].URL, "http://")
	inj.SetDown(deadHost, true)

	ctx := context.Background()
	step := func(i int) StepResult {
		t.Helper()
		res, err := coord.Step(ctx, float64(i)*300, 600)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Two failing intervals trip the breaker; the next three are
	// skipped without a single wire attempt toward the dead host.
	step(0)
	step(1)
	if coord.Stats().BreakerTrips != 1 {
		t.Fatalf("trips = %d after %d failures, want 1", coord.Stats().BreakerTrips, 2)
	}
	blackholed := inj.Counts().Blackholed
	sawSkips := 0
	for i := 2; i < 5; i++ {
		res := step(i)
		sawSkips += res.BreakerSkips
		if res.Alive[2] {
			t.Fatalf("interval %d: dead agent still alive past MissK=2", i)
		}
	}
	if sawSkips == 0 {
		t.Fatal("open breaker skipped nothing")
	}
	if got := inj.Counts().Blackholed; got != blackholed {
		t.Fatalf("open breaker still dialed the dead host (%d new attempts)", got-blackholed)
	}
	// Heal; the next half-open probe readmits the agent in one
	// interval and the breaker closes.
	inj.SetDown(deadHost, false)
	var back bool
	for i := 5; i < 9; i++ {
		res := step(i)
		if res.Alive[2] && res.Granted[2] {
			back = true
			break
		}
	}
	if !back {
		t.Fatal("healed agent never rejoined with a granted budget")
	}
	if coord.Stats().BreakerSkips == 0 {
		t.Fatal("lifetime BreakerSkips stayed zero")
	}
}

// hangingTransport blocks every request until its context is canceled
// — the worst-case peer for shutdown promptness.
type hangingTransport struct{}

func (hangingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	<-req.Context().Done()
	return nil, req.Context().Err()
}

// A canceled context must abort a step promptly: in-flight attempts
// unblock, no retry budget is burned, and the serialized fan-out
// launches nothing further. Without the cancellation paths this
// configuration would hang for minutes (4 agents × 2 RPCs × 6 attempts
// × 10 s each, serialized by MaxInFlight=1).
func TestStepCancellationPromptness(t *testing.T) {
	ev := testEvaluator(t, 4, nil)
	flt, err := StartSimFleet(ev, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	coord, err := New(Config{
		Agents: flt.Refs(), LeaseS: 150,
		MaxInFlight: 1, Retries: 5, RPCTimeout: 10 * time.Second,
		Transport: hangingTransport{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := coord.Step(ctx, 0, 600); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("canceled step took %v", elapsed)
	}
}
