package ctrlplane

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Term is one leadership grant from an election store: Leader may act
// as the cluster's coordinator for epoch Epoch until Expires, absent a
// renewal. Epochs are strictly monotonic — every change of leadership
// (including the same node regaining a lapsed term) bumps the epoch,
// which is what lets agents fence a deposed leader's traffic by number
// comparison alone.
type Term struct {
	Epoch   uint64    `json:"epoch"`
	Leader  string    `json:"leader"`
	Expires time.Time `json:"expires"`
}

// equal reports whether two terms name the same grant. Plain struct
// comparison is a trap here: time.Time's == also compares the
// monotonic-clock reading and location pointer, so a term that has
// been through a JSON or wire round trip (which strips both) would
// spuriously differ from its in-memory twin. Compare the instant.
func (t Term) equal(o Term) bool {
	return t.Epoch == o.Epoch && t.Leader == o.Leader && t.Expires.Equal(o.Expires)
}

// Election is the leader-election substrate: a lease on a shared
// store. Campaign is the only operation a coordinator needs — it
// acquires, renews, or learns the current term in one call, so there
// is no separate watch path to race with.
//
// Expiry is judged with the caller's clock (the `now` argument), which
// is how real deployments behave — each participant reads the shared
// state and applies its own clock — and what lets the chaos suite
// inject clock skew per coordinator. The safety argument does not rest
// on clocks anyway: it rests on agents refusing epochs older than the
// newest they have applied.
type Election interface {
	// Campaign attempts to acquire or renew leadership for candidate
	// id as of now, with term length ttl:
	//   - id holds the current term and it is unexpired → renewed
	//     (same epoch, expiry extended);
	//   - no term yet, or the current term is expired → a new term
	//     with epoch+1 and id as leader;
	//   - another candidate holds an unexpired term → no change.
	// The returned Term is the store's term after the call; the caller
	// leads iff Term.Leader == id.
	Campaign(id string, now time.Time, ttl time.Duration) (Term, error)
	// Resign expires id's term immediately (keeping the epoch, so the
	// next campaigner still bumps it). A no-op when id does not hold
	// the term.
	Resign(id string) error
}

// campaignDecide is the shared acquire/renew/observe rule both stores
// apply under their respective locks.
func campaignDecide(cur Term, id string, now time.Time, ttl time.Duration) Term {
	switch {
	case cur.Leader == id && now.Before(cur.Expires):
		cur.Expires = now.Add(ttl)
	case cur.Epoch == 0 || !now.Before(cur.Expires):
		cur = Term{Epoch: cur.Epoch + 1, Leader: id, Expires: now.Add(ttl)}
	}
	return cur
}

func validCampaign(id string, ttl time.Duration) error {
	if id == "" {
		return fmt.Errorf("ctrlplane: campaign with empty candidate id")
	}
	if ttl <= 0 {
		return fmt.Errorf("ctrlplane: campaign ttl %v", ttl)
	}
	return nil
}

// MemElection is an in-process election store: a mutex-guarded term
// shared by every coordinator holding the same pointer. It backs the
// chaos suite and single-process multi-coordinator setups (pscluster's
// HA replay runs two coordinators over one MemElection).
type MemElection struct {
	mu   sync.Mutex
	term Term
}

// NewMemElection builds an empty in-process election store.
func NewMemElection() *MemElection { return &MemElection{} }

// Campaign implements Election.
func (e *MemElection) Campaign(id string, now time.Time, ttl time.Duration) (Term, error) {
	if err := validCampaign(id, ttl); err != nil {
		return Term{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.term = campaignDecide(e.term, id, now, ttl)
	return e.term, nil
}

// Resign implements Election.
func (e *MemElection) Resign(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.term.Leader == id {
		e.term.Expires = time.Time{}
	}
	return nil
}

// Term returns the store's current term (tests inspect it).
func (e *MemElection) Term() Term {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.term
}

// FileElection is a lease on a shared filesystem: the term lives in a
// JSON state file, updates are serialized by an O_EXCL lock file and
// landed with an atomic rename. It is the zero-dependency shared store
// for pscoord -ha-store — two or three coordinators pointing at the
// same path (local disk for colocated processes, a shared mount
// otherwise) elect exactly one leader. Not suitable for stores on
// filesystems without POSIX rename atomicity.
type FileElection struct {
	path string

	// mu serializes this process's campaigns (the lock file serializes
	// cross-process ones) and guards token, this handle's claim on the
	// lock file while held.
	mu    sync.Mutex
	token string
}

// NewFileElection builds a file-backed election store at path. The
// parent directory must exist; the state file is created on the first
// campaign.
func NewFileElection(path string) (*FileElection, error) {
	if path == "" {
		return nil, fmt.Errorf("ctrlplane: file election needs a path")
	}
	dir := filepath.Dir(path)
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return nil, fmt.Errorf("ctrlplane: file election directory %s: %v", dir, err)
	}
	return &FileElection{path: path}, nil
}

// lockRetries × lockBackoff bounds how long a campaign waits on a
// contended lock file before erroring; a campaign that cannot decide
// is treated by the HA layer as "not leader", which is always safe.
const (
	lockRetries = 50
	lockBackoff = 2 * time.Millisecond
)

// staleLockAge is the orphan threshold: the full retry budget. A live
// writer holds the lock for the few syscalls of one read-decide-write,
// so a lock this old belongs to a process that crashed mid-campaign.
const staleLockAge = lockRetries * lockBackoff

// lockSeq makes lock tokens unique within this process.
var lockSeq atomic.Uint64

// withLock runs fn while holding the store's lock file. A lock whose
// mtime exceeds the whole retry budget is orphaned — its holder
// crashed mid-campaign — and is stolen instead of bricking the store
// forever. Stealing is heuristic (a holder stalled past the budget
// could be robbed), so the lock file carries a per-acquisition token
// and write re-checks it immediately before landing: a robbed holder
// aborts its campaign rather than clobbering the thief's.
func (e *FileElection) withLock(fn func() error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	lock := e.path + ".lock"
	token := fmt.Sprintf("%d-%d", os.Getpid(), lockSeq.Add(1))
	acquired := false
	for i := 0; i < lockRetries; i++ {
		f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := f.WriteString(token)
			f.Close()
			if werr != nil {
				os.Remove(lock)
				return fmt.Errorf("ctrlplane: election lock: %w", werr)
			}
			acquired = true
			break
		}
		if !os.IsExist(err) {
			return fmt.Errorf("ctrlplane: election lock: %w", err)
		}
		if st, serr := os.Stat(lock); serr == nil && time.Since(st.ModTime()) > staleLockAge {
			// Losing the remove race to another stealer just means the
			// next O_EXCL attempt waits behind it, like any contention.
			_ = os.Remove(lock)
			continue
		}
		time.Sleep(lockBackoff)
	}
	if !acquired {
		return fmt.Errorf("ctrlplane: election lock %s contended for over %v (a live writer holds it; orphans are stolen after %v)",
			lock, time.Duration(lockRetries)*lockBackoff, staleLockAge)
	}
	e.token = token
	defer func() {
		e.token = ""
		// Unlock only if the lock is still ours: after a steal it
		// belongs to the thief, and removing it would cascade.
		if data, err := os.ReadFile(lock); err == nil && string(data) == token {
			os.Remove(lock)
		}
	}()
	return fn()
}

// read loads the current term (zero Term when the store is empty).
func (e *FileElection) read() (Term, error) {
	data, err := os.ReadFile(e.path)
	if os.IsNotExist(err) {
		return Term{}, nil
	}
	if err != nil {
		return Term{}, fmt.Errorf("ctrlplane: election state: %w", err)
	}
	var t Term
	if err := json.Unmarshal(data, &t); err != nil {
		return Term{}, fmt.Errorf("ctrlplane: election state %s corrupt: %w", e.path, err)
	}
	return t, nil
}

// write lands a term atomically (temp file + rename).
func (e *FileElection) write(t Term) error {
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.tmp.%d", e.path, os.Getpid())
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("ctrlplane: election state: %w", err)
	}
	if e.token != "" {
		// Landing a term decided under a stolen lock would clobber the
		// thief's campaign; verify ownership right before the rename.
		if held, err := os.ReadFile(e.path + ".lock"); err != nil || string(held) != e.token {
			os.Remove(tmp)
			return fmt.Errorf("ctrlplane: election lock stolen mid-campaign (stalled past %v); campaign aborted", staleLockAge)
		}
	}
	if err := os.Rename(tmp, e.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ctrlplane: election state: %w", err)
	}
	return nil
}

// Campaign implements Election.
func (e *FileElection) Campaign(id string, now time.Time, ttl time.Duration) (Term, error) {
	if err := validCampaign(id, ttl); err != nil {
		return Term{}, err
	}
	var out Term
	err := e.withLock(func() error {
		cur, err := e.read()
		if err != nil {
			return err
		}
		next := campaignDecide(cur, id, now, ttl)
		if !next.equal(cur) {
			if err := e.write(next); err != nil {
				return err
			}
		}
		out = next
		return nil
	})
	return out, err
}

// Resign implements Election.
func (e *FileElection) Resign(id string) error {
	return e.withLock(func() error {
		cur, err := e.read()
		if err != nil {
			return err
		}
		if cur.Leader != id {
			return nil
		}
		cur.Expires = time.Time{}
		return e.write(cur)
	})
}
