package ctrlplane

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"powerstruggle/internal/cluster"
)

// This file is the wire benchmark harness behind cmd/psbench and the
// committed BENCH_ctrlplane.json baseline. It measures the transport,
// not the planner: agents run a constant-time backend so interval
// latency and allocations are dominated by encode/decode, conn
// management, and fan-out — the things the binary transport exists to
// improve. Policy (docs/BENCHMARKS.md, after SNIPPETS §1): a fixed
// canonical scenario, N >= 5 runs per cell, minimum-of-runs reported.

// benchBackend is a constant-time Backend: the cap maps linearly to
// perf and draw with no planning, so the wire is the hot path.
type benchBackend struct{}

func (benchBackend) Apply(capW float64) (float64, float64, error) {
	if capW > 320 {
		capW = 320
	}
	return capW / 320, capW, nil
}
func (benchBackend) SoC() float64                              { return 0.5 }
func (benchBackend) IdleFloorW() float64                       { return 45 }
func (benchBackend) NameplateW() float64                       { return 320 }
func (benchBackend) UtilityCurve() ([]cluster.CapPoint, error) { return nil, nil }

// BenchFleet is N bench agents behind a single listener — one HTTP
// server routing /a/<i>/ctrl/* per agent, or one binary frame server —
// so a 1k-agent cell needs two sockets, not a thousand, and both
// transports face the identical topology (shared host, per-agent
// base URLs for JSON; shared tcp:// URL, batchable, for binary).
type BenchFleet struct {
	Agents []*Agent

	refs []AgentRef
	ln   net.Listener
	srv  *http.Server
	bin  *BinaryServer
}

// StartBenchFleet boots n bench agents on the given transport.
func StartBenchFleet(n int, kind TransportKind) (*BenchFleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ctrlplane: bench fleet needs at least one agent")
	}
	f := &BenchFleet{}
	for i := 0; i < n; i++ {
		a, err := NewAgent(AgentConfig{ID: i, Backend: benchBackend{}, Version: "bench"})
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Agents = append(f.Agents, a)
	}
	if kind == TransportBinary {
		eps := make(map[int]CtrlEndpoint, n)
		for i, a := range f.Agents {
			eps[i] = a
		}
		srv, err := StartBinaryServer("127.0.0.1:0", BinaryServerConfig{Endpoints: eps})
		if err != nil {
			f.Close()
			return nil, err
		}
		f.bin = srv
		for i := range f.Agents {
			f.refs = append(f.refs, AgentRef{ID: i, URL: srv.URL()})
		}
		return f, nil
	}
	mux := http.NewServeMux()
	for i, a := range f.Agents {
		prefix := "/a/" + strconv.Itoa(i)
		mux.Handle(prefix+"/", http.StripPrefix(prefix, NewHandler(a)))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Close()
		return nil, err
	}
	f.ln = ln
	f.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = f.srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	for i := range f.Agents {
		f.refs = append(f.refs, AgentRef{ID: i, URL: base + "/a/" + strconv.Itoa(i)})
	}
	return f, nil
}

// Refs returns the fleet's agent references.
func (f *BenchFleet) Refs() []AgentRef { return append([]AgentRef(nil), f.refs...) }

// Close shuts the fleet down.
func (f *BenchFleet) Close() {
	if f.srv != nil {
		_ = f.srv.Close()
	}
	if f.ln != nil {
		_ = f.ln.Close()
	}
	if f.bin != nil {
		f.bin.Close()
	}
}

// WireBenchOptions parameterizes one benchmark cell.
type WireBenchOptions struct {
	// Agents is the fleet size (the matrix axis: 10 / 100 / 1000).
	Agents int
	// Transport picks the wire under test.
	Transport TransportKind
	// Runs is the sample count; the minimum across runs is reported
	// (default 5, the policy floor).
	Runs int
	// Intervals is the number of measured control intervals per run
	// (default 10).
	Intervals int
	// Warmup intervals excluded from measurement (default 2: the
	// first assign plus the first renewal, so steady state is what is
	// timed).
	Warmup int
	// MaxInFlight is the coordinator's fan-out width (default 64 —
	// identical for both transports, and within the JSON keep-alive
	// pool so neither wire is starved of conns).
	MaxInFlight int
}

func (o *WireBenchOptions) defaults() {
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if o.Intervals <= 0 {
		o.Intervals = 10
	}
	if o.Warmup <= 0 {
		o.Warmup = 2
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
}

// WireBenchCell is one (transport, fleet size) measurement — the unit
// committed to BENCH_ctrlplane.json.
type WireBenchCell struct {
	Transport string `json:"transport"`
	Agents    int    `json:"agents"`
	Runs      int    `json:"runs"`
	Intervals int    `json:"intervals_per_run"`

	// NsPerInterval is the minimum across runs of mean wall time per
	// control interval.
	NsPerInterval int64 `json:"ns_per_interval"`
	// AllocsPerAgentInterval is the minimum across runs of heap
	// allocations (runtime Mallocs delta, both sides of the loopback
	// wire) per agent per interval.
	AllocsPerAgentInterval float64 `json:"allocs_per_agent_interval"`

	// ConnDials / ConnReuses are the binary pool's whole-cell ledger
	// (zero on JSON cells, whose reuse is asserted at the listener).
	ConnDials  uint64 `json:"conn_dials"`
	ConnReuses uint64 `json:"conn_reuses"`
	// BatchFrames counts batch frames sent across the whole cell
	// (zero on JSON cells).
	BatchFrames int `json:"batch_frames"`
}

// RunWireBench measures one cell: a constant cap replayed over a bench
// fleet in steady state, so every measured interval is one scrape plus
// one coalesced renewal per agent (batched into two frames per interval
// on the binary wire).
func RunWireBench(opts WireBenchOptions) (WireBenchCell, error) {
	opts.defaults()
	flt, err := StartBenchFleet(opts.Agents, opts.Transport)
	if err != nil {
		return WireBenchCell{}, err
	}
	defer flt.Close()
	coord, err := New(Config{
		Agents:      flt.Refs(),
		Strategy:    StrategyEqual,
		LeaseS:      700, // longer than the 300 s control interval: steady state renews
		MaxInFlight: opts.MaxInFlight,
	})
	if err != nil {
		return WireBenchCell{}, err
	}
	defer coord.Close()

	ctx := context.Background()
	capW := 100 * float64(opts.Agents) // 100 W/agent: inside (idle floor, nameplate)
	now := 0.0
	step := func() error {
		res, err := coord.Step(ctx, now, capW)
		if err != nil {
			return err
		}
		if res.ScrapeErrs != 0 || res.AssignErrs != 0 {
			return fmt.Errorf("ctrlplane: bench interval at t=%g had RPC errors (%d scrape, %d assign): run invalid",
				now, res.ScrapeErrs, res.AssignErrs)
		}
		for i, g := range res.Granted {
			if !g {
				return fmt.Errorf("ctrlplane: bench agent %d not granted at t=%g: run invalid", i, now)
			}
		}
		now += 300
		return nil
	}

	for i := 0; i < opts.Warmup; i++ {
		if err := step(); err != nil {
			return WireBenchCell{}, err
		}
	}

	cell := WireBenchCell{
		Transport: opts.Transport.String(),
		Agents:    opts.Agents,
		Runs:      opts.Runs,
		Intervals: opts.Intervals,
	}
	var ms runtime.MemStats
	for run := 0; run < opts.Runs; run++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		mallocs0 := ms.Mallocs
		start := time.Now()
		for i := 0; i < opts.Intervals; i++ {
			if err := step(); err != nil {
				return WireBenchCell{}, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)

		ns := elapsed.Nanoseconds() / int64(opts.Intervals)
		allocs := float64(ms.Mallocs-mallocs0) / float64(opts.Intervals*opts.Agents)
		if run == 0 || ns < cell.NsPerInterval {
			cell.NsPerInterval = ns
		}
		if run == 0 || allocs < cell.AllocsPerAgentInterval {
			cell.AllocsPerAgentInterval = allocs
		}
	}

	// Steady state must be renewals: a cell where agents re-applied
	// budgets was not measuring the coalesced-renewal path.
	for i, a := range flt.Agents {
		if n := a.Assigns(); n != 1 {
			return WireBenchCell{}, fmt.Errorf("ctrlplane: bench agent %d applied %d assigns; steady state must renew", i, n)
		}
	}
	st := coord.Stats()
	cell.BatchFrames = st.BatchFrames
	ws := coord.WireStats()
	cell.ConnDials = ws.BinaryDials
	cell.ConnReuses = ws.BinaryReuses
	if opts.Transport == TransportBinary {
		// The pooled-conn fix under test: a whole cell over one
		// listener must not re-dial per interval, let alone per RPC.
		if ws.BinaryDials > 4 {
			return WireBenchCell{}, fmt.Errorf("ctrlplane: binary cell dialed %d conns; the pool is not reusing", ws.BinaryDials)
		}
		if want := 2 * (opts.Warmup + opts.Runs*opts.Intervals); st.BatchFrames != want {
			return WireBenchCell{}, fmt.Errorf("ctrlplane: binary cell sent %d batch frames, want %d", st.BatchFrames, want)
		}
	}
	return cell, nil
}
