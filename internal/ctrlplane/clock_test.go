package ctrlplane

import (
	"context"
	"testing"
	"time"

	"powerstruggle/internal/faults"
)

// clockAgent builds an agent for the protocol-clock unit tests: a
// demand backend near the floor so the cap assignments are the only
// thing under test.
func clockAgent(t *testing.T, safe SafeModeConfig) *Agent {
	t.Helper()
	a, err := NewAgent(AgentConfig{ID: 0, Backend: newDemandBackend(50), SafeMode: safe, Version: "clock"})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAgentClockLeaseLapse: an interval lease lapses when the agent's
// effective interval — the highest observed plus locally elapsed
// nominal intervals — reaches the grant boundary, regardless of what
// LeaseS says. A renewal carrying a newer interval moves the boundary.
func TestAgentClockLeaseLapse(t *testing.T) {
	a := clockAgent(t, SafeModeConfig{})
	// Grant at interval 1 with a 2-interval lease at 10 s per interval:
	// the lease lives through intervals 1 and 2, lapsing the moment the
	// effective interval reaches 3 — local time 20 s with no further
	// observations.
	if _, err := a.Assign(AssignRequest{V: ProtocolV, Epoch: 1, Seq: 1, Server: 0, T: 0,
		CapW: 80, LeaseS: 1, Iv: 1, LeaseIv: 2, IvS: 10}); err != nil {
		t.Fatal(err)
	}
	// LeaseS = 1 s would have fenced a seconds-aged agent long ago.
	if err := a.Tick(19.9); err != nil {
		t.Fatal(err)
	}
	if a.Fenced() {
		t.Fatal("interval lease lapsed before the boundary (seconds aging leaked in)")
	}
	if err := a.Tick(20); err != nil {
		t.Fatal(err)
	}
	if !a.Fenced() {
		t.Fatal("interval lease still live at the grant boundary")
	}

	// A renewal observing interval 2 re-anchors the clock and moves the
	// boundary to interval 4: alive through t=29.9, fenced at t=30.
	b := clockAgent(t, SafeModeConfig{})
	if _, err := b.Assign(AssignRequest{V: ProtocolV, Epoch: 1, Seq: 1, Server: 0, T: 0,
		CapW: 80, Iv: 1, LeaseIv: 2, IvS: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Renew(LeaseRequest{V: ProtocolV, Epoch: 1, Server: 0, T: 10,
		Iv: 2, LeaseIv: 2, IvS: 10}); err != nil {
		t.Fatal(err)
	}
	if err := b.Tick(29.9); err != nil {
		t.Fatal(err)
	}
	if b.Fenced() {
		t.Fatal("renewed interval lease lapsed early")
	}
	if err := b.Tick(30); err != nil {
		t.Fatal(err)
	}
	if !b.Fenced() {
		t.Fatal("renewed interval lease outlived its boundary")
	}
	if b.LastIv() != 2 {
		t.Fatalf("observed interval %d, want 2", b.LastIv())
	}
}

// TestAgentClockSkew: the skew gauge measures locally elapsed nominal
// intervals minus coordinator-minted intervals over the same span —
// positive when the coordinator runs slow against the agent's clock.
func TestAgentClockSkew(t *testing.T) {
	a := clockAgent(t, SafeModeConfig{})
	if _, err := a.Assign(AssignRequest{V: ProtocolV, Epoch: 1, Seq: 1, Server: 0, T: 0,
		CapW: 80, Iv: 1, LeaseIv: 2, IvS: 10}); err != nil {
		t.Fatal(err)
	}
	// One minted interval over 15 local seconds at a 10 s cadence: the
	// coordinator is half an interval slow.
	if _, err := a.Renew(LeaseRequest{V: ProtocolV, Epoch: 1, Server: 0, T: 15,
		Iv: 2, LeaseIv: 2, IvS: 10}); err != nil {
		t.Fatal(err)
	}
	if got := a.ClockSkewIv(); got != 0.5 {
		t.Fatalf("skew %g intervals, want 0.5", got)
	}
	// Two minted intervals over 15 further seconds: now it runs fast.
	if _, err := a.Renew(LeaseRequest{V: ProtocolV, Epoch: 1, Server: 0, T: 30,
		Iv: 4, LeaseIv: 2, IvS: 10}); err != nil {
		t.Fatal(err)
	}
	if got := a.ClockSkewIv(); got != -0.5 {
		t.Fatalf("skew %g intervals, want -0.5", got)
	}
}

// TestSafeModeDecayIntervalBoundaries: protocol-clock decay quantizes
// on interval boundaries — at exact multiples of the interval length it
// is bit-identical with a wall-clock agent decaying the same lease, and
// between boundaries it holds the last boundary's value instead of
// drifting. This is the off-by-one surface between quantized wall-clock
// and interval decay: the lapse instant, the hold window's end, and
// every decay step must land on the same values.
func TestSafeModeDecayIntervalBoundaries(t *testing.T) {
	safe := SafeModeConfig{HoldS: 10, DecayWPerS: 1, FloorW: 50}
	clock := clockAgent(t, safe)
	wall := clockAgent(t, safe)
	// Same lease, two aging rules: 2 intervals of 10 s for the clock
	// agent, 20 s for the wall agent. Both lapse at t=20 holding 100 W.
	if _, err := clock.Assign(AssignRequest{V: ProtocolV, Epoch: 1, Seq: 1, Server: 0, T: 0,
		CapW: 100, Iv: 1, LeaseIv: 2, IvS: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := wall.Assign(AssignRequest{V: ProtocolV, Epoch: 1, Seq: 1, Server: 0, T: 0,
		CapW: 100, LeaseS: 20}); err != nil {
		t.Fatal(err)
	}
	// At every exact interval boundary the two decays must agree to the
	// bit; the wall values are 100 W held through t=30 (lapse 20 + hold
	// 10) then 1 W/s down to the 50 W floor at t=80.
	for _, ts := range []float64{19, 20, 25, 30, 40, 50, 60, 70, 80, 100} {
		if err := clock.Tick(ts); err != nil {
			t.Fatal(err)
		}
		if err := wall.Tick(ts); err != nil {
			t.Fatal(err)
		}
		if ts == 25 {
			// Mid-interval: the clock agent holds the boundary value.
			if clock.CapW() != 100 {
				t.Fatalf("t=25: clock-mode cap %g W mid-interval, want the held 100 W", clock.CapW())
			}
			continue
		}
		if clock.CapW() != wall.CapW() {
			t.Fatalf("t=%g: clock-mode cap %g W != wall-mode cap %g W", ts, clock.CapW(), wall.CapW())
		}
	}
	if clock.CapW() != 50 || wall.CapW() != 50 {
		t.Fatalf("decay did not reach the floor: clock %g W, wall %g W", clock.CapW(), wall.CapW())
	}

	// Between-boundary quantization, one interval at a time: from t=30
	// the decay input only moves when a whole interval completes.
	c2 := clockAgent(t, safe)
	if _, err := c2.Assign(AssignRequest{V: ProtocolV, Epoch: 1, Seq: 1, Server: 0, T: 0,
		CapW: 100, Iv: 1, LeaseIv: 2, IvS: 10}); err != nil {
		t.Fatal(err)
	}
	steps := []struct{ t, want float64 }{
		{20, 100},    // lapse: hold
		{29.99, 100}, // inside the hold window
		{30, 100},    // hold boundary: decay input 10 s, still 100
		{39.99, 100}, // no partial-interval drift
		{40, 90},     // one interval past the hold
		{49.99, 90},
		{50, 80},
	}
	for _, s := range steps {
		if err := c2.Tick(s.t); err != nil {
			t.Fatal(err)
		}
		if c2.CapW() != s.want {
			t.Fatalf("t=%g: clock-mode cap %g W, want %g", s.t, c2.CapW(), s.want)
		}
	}
}

// TestCoordinatorClockRestartRehydration: a restarted clock-mode
// coordinator boots with a zero interval counter and must recover it —
// and its same-epoch sequence — from a majority of agent scrapes before
// granting. Its first post-recovery mint is strictly above everything
// its predecessor issued, and its grants are not stale-dropped.
func TestCoordinatorClockRestartRehydration(t *testing.T) {
	const interval = 300.0
	ev := testEvaluator(t, 3, nil)
	flt, err := StartSimFleet(ev, "clock")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	cfg := Config{
		Agents:    flt.Refs(),
		Strategy:  StrategyUtility,
		LeaseS:    2 * interval,
		LeaseIv:   2,
		IntervalS: interval,
		Seed:      7,
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lastIv uint64
	for s := 1; s <= 3; s++ {
		ts := float64(s) * interval
		res, err := coord.Step(context.Background(), ts, 700)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rehydrating && s > 1 {
			t.Fatalf("step %d still rehydrating", s)
		}
		if res.Iv != uint64(s) {
			t.Fatalf("step %d minted interval %d, want %d", s, res.Iv, s)
		}
		lastIv = res.Iv
		if err := flt.Tick(ts); err != nil {
			t.Fatal(err)
		}
	}
	if coord.Stats().Rehydrations != 1 {
		t.Fatalf("boot rehydrations %d, want 1", coord.Stats().Rehydrations)
	}
	coord.Close()

	// Crash-restart behind a full partition: no scrape answers, so the
	// replacement must hold grants — minting now could duplicate an
	// interval its predecessor already issued.
	inj, err := faults.NewNetInjector(faults.NetConfig{Seed: 1, DropReqP: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Transport = inj
	cfg2.Retries = 0
	cfg2.RPCTimeout = 100 * time.Millisecond
	coord2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	res, err := coord2.Step(context.Background(), 4*interval, 700)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rehydrating || res.Iv != 0 {
		t.Fatalf("partitioned restart step did not hold grants: rehydrating=%v iv=%d", res.Rehydrating, res.Iv)
	}
	for i, g := range res.Granted {
		if g {
			t.Fatalf("agent %d granted while rehydrating", i)
		}
	}
	if err := flt.Tick(4 * interval); err != nil {
		t.Fatal(err)
	}

	// Partition heals: one scrape round recovers the counter and the
	// same-epoch sequence, and the very same step mints past both.
	inj.Heal()
	res, err = coord2.Step(context.Background(), 5*interval, 700)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rehydrating || res.Iv != lastIv+1 {
		t.Fatalf("post-recovery mint: rehydrating=%v iv=%d, want %d", res.Rehydrating, res.Iv, lastIv+1)
	}
	if coord2.Iv() != lastIv+1 {
		t.Fatalf("recovered counter %d, want %d", coord2.Iv(), lastIv+1)
	}
	if res.AssignErrs != 0 {
		t.Fatalf("post-recovery grants failed: %d assign errors", res.AssignErrs)
	}
	for i, g := range res.Granted {
		if !g {
			t.Fatalf("agent %d not granted after recovery (stale sequence?)", i)
		}
	}
	for _, a := range flt.Agents {
		if a.StaleDrops() != 0 {
			t.Fatalf("agent %d stale-dropped a post-restart grant: sequence not rehydrated", a.ID())
		}
	}
	if coord2.Stats().Rehydrations != 1 {
		t.Fatalf("restart rehydrations %d, want 1", coord2.Stats().Rehydrations)
	}
}

// TestClockChaosKillRestartSoak is the flat-tier acceptance drill:
// repeated coordinator kill-restarts (including mid-interval restarts
// on an offset cadence) and a coordinator stall window, with the fleet
// draw checked against the cluster cap at every tick and every minted
// interval number checked unique. Run under -race in CI.
func TestClockChaosKillRestartSoak(t *testing.T) {
	const (
		servers  = 4
		interval = 300.0
		capW     = 700.0
	)
	ev := testEvaluator(t, servers, nil)
	flt, err := StartSimFleetOpts(ev, FleetOptions{
		Version:  "clock-soak",
		SafeMode: SafeModeConfig{HoldS: interval, DecayWPerS: 0.5, FloorW: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	cfg := Config{
		Agents:    flt.Refs(),
		Strategy:  StrategyUtility,
		LeaseS:    2 * interval,
		LeaseIv:   2,
		IntervalS: interval,
		Seed:      23,
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { coord.Close() }()

	var lastIv uint64
	restarts := 0
	check := func(ts float64) {
		t.Helper()
		if err := flt.Tick(ts); err != nil {
			t.Fatal(err)
		}
		if draw := flt.FleetGridW(); draw > capW+1e-6 {
			t.Fatalf("t=%g: fleet draws %g W over the %g W cap", ts, draw, capW)
		}
	}
	ts := 0.0
	for s := 1; s <= 40; s++ {
		ts += interval
		switch {
		case s%9 == 4:
			// Kill-restart between intervals.
			coord.Close()
			if coord, err = New(cfg); err != nil {
				t.Fatal(err)
			}
			restarts++
		case s%9 == 7:
			// Kill, then restart mid-interval: the replacement's first
			// step lands half an interval off cadence. It rehydrates from
			// the same scrape round, so whatever it mints must already be
			// unique.
			coord.Close()
			if coord, err = New(cfg); err != nil {
				t.Fatal(err)
			}
			restarts++
			res, err := coord.Step(context.Background(), ts-interval/2, capW)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iv > 0 {
				if res.Iv <= lastIv {
					t.Fatalf("t=%g: restarted coordinator minted interval %d, already used through %d", ts-interval/2, res.Iv, lastIv)
				}
				lastIv = res.Iv
			}
			check(ts - interval/2)
		case s >= 30 && s < 33:
			// Coordinator stall: no steps for three intervals. The
			// agents' protocol clocks keep aging at the nominal cadence
			// and walk into safe-mode decay on their own.
			check(ts)
			continue
		}
		res, err := coord.Step(context.Background(), ts, capW)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iv > 0 {
			if res.Iv <= lastIv {
				t.Fatalf("t=%g: minted interval %d, already used through %d", ts, res.Iv, lastIv)
			}
			lastIv = res.Iv
		}
		check(ts)
		check(ts + interval/2)
	}
	if restarts < 4 {
		t.Fatalf("soak only restarted the coordinator %d times", restarts)
	}
	if lastIv == 0 {
		t.Fatal("soak never minted an interval — clock mode was off")
	}
}

// TestTwoTierClockDrill: the two-tier tree under protocol-clock leases
// survives a global apportioner crash-restart and a shard-leader kill
// with zero invariant violations and no duplicated global intervals
// (the drill itself checks uniqueness and the cap invariant).
func TestTwoTierClockDrill(t *testing.T) {
	res, err := RunTwoTierDrill(TwoTierOptions{
		Shards:            2,
		AgentsPerShard:    3,
		Intervals:         14,
		IntervalS:         300,
		LeaseIv:           2,
		RestartGlobalStep: 6,
		KillLeaderStep:    10,
		KillShard:         1,
		Seed:              31,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Stats.Rehydrations != 1 {
		t.Fatalf("restarted global rehydrated %d times, want 1", res.Stats.Rehydrations)
	}
	if res.Failovers == 0 {
		t.Fatal("shard-leader kill produced no failover")
	}
}
