package ctrlplane

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(retries int) *rpcClient {
	return newRPCClient(Config{
		RPCTimeout:  time.Second,
		Retries:     retries,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}, newCtrlTel(nil))
}

// The client must absorb transient failures within its retry budget and
// surface the last error once the budget is exhausted.
func TestClientRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "not yet", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"v":2,"server":0,"epoch":1,"capW":50,"expiresT":10,"fenced":false}`))
	}))
	defer srv.Close()

	var resp LeaseResponse
	if err := testClient(2).getJSON(context.Background(), "lease", jitterKey("lease", 0), srv.URL, &resp); err != nil {
		t.Fatalf("2 retries should absorb 2 failures: %v", err)
	}
	if resp.CapW != 50 {
		t.Fatalf("decoded %+v", resp)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d attempts, want 3", calls.Load())
	}

	calls.Store(-100) // next hundred attempts all fail
	err := testClient(1).getJSON(context.Background(), "lease", jitterKey("lease", 0), srv.URL, &resp)
	if err == nil || !strings.Contains(err.Error(), "not yet") {
		t.Fatalf("exhausted retries: %v", err)
	}
}

// Retry jitter is a pure function of (seed, key, attempt): the same
// seed reproduces the same backoff schedule across runs regardless of
// goroutine interleaving, different seeds decorrelate, and every value
// lands in the intended [d/2, d) window.
func TestJitterDeterministicAndBounded(t *testing.T) {
	mk := func(seed int64) *rpcClient {
		return newRPCClient(Config{
			BackoffBase: 10 * time.Millisecond,
			BackoffMax:  80 * time.Millisecond,
			Seed:        seed,
		}, newCtrlTel(nil))
	}
	a, b, c := mk(42), mk(42), mk(43)
	varies := false
	for agent := 0; agent < 8; agent++ {
		for attempt := 1; attempt <= 6; attempt++ {
			key := jitterKey("assign", agent)
			d1, d2, d3 := a.jitteredBackoff(key, attempt), b.jitteredBackoff(key, attempt), c.jitteredBackoff(key, attempt)
			if d1 != d2 {
				t.Fatalf("same seed diverged: %v vs %v (agent %d attempt %d)", d1, d2, agent, attempt)
			}
			if d1 != d3 {
				varies = true
			}
			cap := a.backoffBase << (attempt - 1)
			if cap > a.backoffMax || cap <= 0 {
				cap = a.backoffMax
			}
			if d1 < cap/2 || d1 >= cap {
				t.Fatalf("jitter %v outside [%v, %v)", d1, cap/2, cap)
			}
		}
	}
	if !varies {
		t.Fatal("seeds 42 and 43 produced identical schedules everywhere")
	}
	if jitterKey("assign", 3) == jitterKey("lease", 3) {
		t.Fatal("rpc kinds share a jitter key")
	}
}

// The jitter path must be race-free under concurrent fan-out: before
// this, a shared rand.Rand consumed draws in scheduler order, which
// both raced and broke determinism. Run with -race to enforce.
func TestJitterConcurrentFanout(t *testing.T) {
	c := testClient(0)
	done := make(chan struct{})
	for g := 0; g < 16; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 1; i <= 200; i++ {
				_ = c.jitteredBackoff(jitterKey("assign", g), i%4+1)
			}
		}(g)
	}
	for g := 0; g < 16; g++ {
		<-done
	}
}

// Scrape responses are validated at the client: an invalid report is an
// RPC failure, not bad data handed to the apportioning DP.
func TestClientRejectsInvalidReport(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"v":2,"server":0,"soc":7}`))
	}))
	defer srv.Close()
	var rep Report
	if err := testClient(0).getJSON(context.Background(), "report", jitterKey("report", 0), srv.URL, &rep); err == nil {
		t.Fatal("soc=7 report accepted")
	}
}

// The handler must refuse misdirected and malformed control messages
// with 400s, and answer good ones on the wire paths.
func TestHandlerRouting(t *testing.T) {
	a, err := NewAgent(AgentConfig{ID: 3, Backend: &fakeBackend{}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(a))
	defer srv.Close()

	post := func(path, body string) int {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(PathAssign, `{"v":2,"seq":1,"server":3,"t":0,"capW":40,"leaseS":5,"epoch":1}`); code != http.StatusOK {
		t.Fatalf("good assign: %d", code)
	}
	if got := a.CapW(); got != 40 {
		t.Fatalf("cap %g after assign", got)
	}
	if code := post(PathAssign, `{"v":2,"seq":2,"server":9,"t":0,"capW":40,"leaseS":5,"epoch":1}`); code != http.StatusBadRequest {
		t.Fatalf("misdirected assign: %d", code)
	}
	if code := post(PathAssign, `{"v":9,"seq":3,"server":3,"t":0,"capW":40,"leaseS":5,"epoch":1}`); code != http.StatusBadRequest {
		t.Fatalf("wrong protocol version: %d", code)
	}
	if code := post(PathAssign, `{"v":2,"seq":4,"server":3,"t":0,"capW":40,"leaseS":5}`); code != http.StatusBadRequest {
		t.Fatalf("epochless assign: %d", code)
	}
	if code := post(PathAssign, `garbage`); code != http.StatusBadRequest {
		t.Fatalf("garbage assign: %d", code)
	}
	if code := post(PathLease, `{"v":2,"server":3,"t":1,"leaseS":5,"epoch":1}`); code != http.StatusOK {
		t.Fatalf("good lease: %d", code)
	}

	// A scrape with a bad clock is refused; a good one ticks the agent.
	resp, err := http.Get(srv.URL + PathReport + "?t=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ?t=: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + PathReport + "?t=100")
	if err != nil {
		t.Fatal(err)
	}
	body, err := readBody(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("good scrape: %d %v", resp.StatusCode, err)
	}
	rep, err := DecodeReport(body)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fenced {
		t.Fatal("lease granted at t=0 for 5s must have fenced by t=100")
	}
}
