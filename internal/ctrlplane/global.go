package ctrlplane

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"powerstruggle/internal/cluster"
	"powerstruggle/internal/faults"
	"powerstruggle/internal/telemetry"
)

// ShardRef addresses one shard coordinator: its id and the trunk URLs
// of its coordinator set (leader plus standbys), tried in order until
// a leading one answers.
type ShardRef struct {
	ID   int
	URLs []string
}

// GlobalConfig parameterizes the global apportioner.
type GlobalConfig struct {
	// Shards is the static shard set.
	Shards []ShardRef
	// LeaseS is the budget lease granted with every ShardBudget, in
	// trace seconds. It must be at least the shard's control interval;
	// anything longer bounds how long a partitioned shard keeps its
	// stale budget. Zero grants non-lapsing budgets.
	LeaseS float64
	// LeaseIv, when positive, switches shard budget leases to
	// protocol-clock units: each grant is valid for LeaseIv global
	// intervals and carries the global interval counter, which shards
	// age by IntervalS regardless of their local clock rate. Zero keeps
	// LeaseS wall/trace-second semantics.
	LeaseIv int
	// IntervalS is the nominal length of one global interval in trace
	// seconds. Required (positive) when LeaseIv > 0.
	IntervalS float64
	// MissK is how many consecutive failed trunk scrapes expire a
	// shard's membership (default 3).
	MissK int
	// ReclaimS is how long a silent shard's last budget stays reserved
	// after its membership expires (default LeaseS). It must cover the
	// shard's own agent-lease length: only after budget lease plus
	// agent leases have all lapsed can the silent shard's fleet slice
	// be drawing nothing above its floors, making the watts safe to
	// re-apportion.
	ReclaimS float64
	// GuardFrac is the slack a donor shard keeps above its own
	// max(used, demand) when headroom is rebalanced (default 0.05).
	GuardFrac float64
	// MaxLevels coarsens the global DP grid (default
	// cluster.DefaultShardLevels).
	MaxLevels int
	// MaxInFlight bounds trunk fan-out concurrency (default 8).
	MaxInFlight int
	// RPCTimeout, Retries, BackoffBase, BackoffMax, Seed: as Config.
	RPCTimeout  time.Duration
	Retries     int
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Seed        int64
	// Telemetry, when non-nil, instruments the apportioner (shard
	// budget gauges, headroom moved, trunk RPC counters).
	Telemetry *telemetry.Hub
}

func (c GlobalConfig) missK() int {
	if c.MissK > 0 {
		return c.MissK
	}
	return 3
}

func (c GlobalConfig) reclaimS() float64 {
	if c.ReclaimS > 0 {
		return c.ReclaimS
	}
	return c.LeaseS
}

func (c GlobalConfig) guardFrac() float64 {
	if c.GuardFrac > 0 {
		return c.GuardFrac
	}
	return 0.05
}

// grantDeadbandW / grantDeadbandFrac bound the target jitter a grant
// repaint ignores: a couple of curve-grid steps absolute, or 1% of
// the shard's in-force budget, whichever is larger. Real demand
// shifts move by at least a curve step per cap-limited member and
// clear the band immediately.
const (
	grantDeadbandW    = 2 * cluster.ServerCapStepW
	grantDeadbandFrac = 0.01
)

// grantSlackFrac holds a sliver of the available watts out of the
// apportion target. Without it the DP spends everything, the granted
// budgets sum to the full pool, and — under decrease-before-increase —
// every increase stalls an interval waiting for a donor's acked
// decrease. The slack keeps the increase allowance funded so a demand
// shift is granted in the same interval it appears.
const grantSlackFrac = 0.02

func (c GlobalConfig) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return 8
}

// globalShard is the apportioner's view of one shard coordinator.
type globalShard struct {
	ref    ShardRef
	alive  bool
	misses int
	// urlIdx remembers which trunk URL last answered as leader, so a
	// stable shard costs one RPC per interval, not a URL walk.
	urlIdx int
	// grantedW is the last acknowledged budget — reserved against the
	// cluster cap until reclaimT while the shard is silent, because its
	// agents may legitimately draw against it until their leases lapse.
	grantedW float64
	granted  bool
	scraped  bool
	report   ShardReport
	reclaimT float64
}

// GlobalStats accumulates apportioner lifetime counters.
type GlobalStats struct {
	Steps          int
	Observes       int
	ShardExpiries  int
	ShardRejoins   int
	Reclaims       int
	ScrapeFailures int
	GrantFailures  int
	// Rehydrations counts interval-counter recoveries from a majority
	// of shard scrapes (one per clock-mode apportioner (re)start).
	Rehydrations int
}

// GlobalStepResult is one global interval's outcome.
type GlobalStepResult struct {
	T    float64
	CapW float64
	// Epoch is the global leadership epoch grants fanned out under.
	Epoch   uint64
	Leading bool
	// Deposed reports a ShardBudgetResponse carried a global epoch
	// above this apportioner's — another global leads.
	Deposed bool
	// Budgets/Granted/Alive index GlobalConfig.Shards.
	Budgets []float64
	Granted []bool
	Alive   []bool
	// ReservedW is the summed last-granted budgets of silent shards not
	// yet reclaimed — watts withheld from this interval's apportioning
	// because the silent shards' fleets may still be drawing them.
	ReservedW float64
	// RebalancedW is the unused headroom moved between shards this
	// interval (the ps_ctrl_shard_headroom_watts gauge).
	RebalancedW float64
	// PerfN is the DP's predicted summed performance of the grants.
	PerfN float64
	// ScrapeErrs/GrantErrs count shards whose trunk RPCs failed this
	// interval (after the URL walk and retries).
	ScrapeErrs int
	GrantErrs  int
	// Iv is the global protocol-clock interval this step's grants were
	// minted under (0 in wall/trace-second lease mode).
	Iv uint64
	// Rehydrating reports that a leading clock-mode apportioner skipped
	// granting because its interval counter is not yet recovered from a
	// majority of shard scrapes.
	Rehydrating bool
}

// Global is the apex of the two-tier budget tree: each interval it
// scrapes every shard coordinator's ShardReport over the trunk (the
// shard-tier membership heartbeat), splits the cluster cap across the
// live shards with the cluster.ApportionShards DP over their rolled-up
// curves, shifts unused headroom toward saturated shards, and fans the
// budgets out as epoch-fenced ShardBudget grants.
//
// Safety is the same invariant at a coarser grain: the sum of granted
// shard budgets plus the reserved budgets of silent shards never
// exceeds the cluster cap, and every grant carries the global (Epoch,
// Seq) pair, which shards fence exactly as agents fence assignments —
// global epoch fencing composed with shard epoch fencing
// (docs/CONTROL_PLANE.md §Hierarchy).
type Global struct {
	cfg    GlobalConfig
	client *rpcClient
	tel    *ctrlTel
	flog   *faults.Log

	shards    []*globalShard
	seq       uint64
	stats     GlobalStats
	epoch     atomic.Uint64
	seenEpoch atomic.Uint64

	// iv is the global protocol-clock interval counter, monotonic
	// across elections: SetEpoch clears the granted ledger but never
	// rewinds iv, which is what keeps interval numbers unique for the
	// apportioner's lifetime.
	iv atomic.Uint64
	// rehydrated gates granting in clock mode: a restarted apportioner
	// refuses to mint intervals until a majority of shard scrapes have
	// answered, so it adopts an interval counter at least as high as
	// any its predecessor's grants reached.
	rehydrated bool
	maxSeenIv  uint64
	maxSeenSeq uint64
}

// NewGlobal builds a global apportioner over a static shard set.
func NewGlobal(cfg GlobalConfig) (*Global, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("ctrlplane: global apportioner needs at least one shard")
	}
	seen := make(map[int]bool, len(cfg.Shards))
	for _, ref := range cfg.Shards {
		if ref.ID < 0 || len(ref.URLs) == 0 {
			return nil, fmt.Errorf("ctrlplane: bad shard ref %+v", ref)
		}
		if seen[ref.ID] {
			return nil, fmt.Errorf("ctrlplane: duplicate shard id %d", ref.ID)
		}
		seen[ref.ID] = true
	}
	if cfg.LeaseS < 0 || !finite(cfg.LeaseS) {
		return nil, fmt.Errorf("ctrlplane: shard budget lease %g s", cfg.LeaseS)
	}
	if cfg.LeaseIv < 0 {
		return nil, fmt.Errorf("ctrlplane: shard budget lease %d intervals", cfg.LeaseIv)
	}
	if cfg.LeaseIv > 0 && (!finite(cfg.IntervalS) || cfg.IntervalS <= 0) {
		return nil, fmt.Errorf("ctrlplane: interval leases need a positive interval length, got %g s", cfg.IntervalS)
	}
	tel := newCtrlTel(cfg.Telemetry)
	g := &Global{
		cfg:        cfg,
		tel:        tel,
		rehydrated: cfg.LeaseIv == 0,
		client: newRPCClient(Config{
			RPCTimeout:  cfg.RPCTimeout,
			Retries:     cfg.Retries,
			BackoffBase: cfg.BackoffBase,
			BackoffMax:  cfg.BackoffMax,
			Seed:        cfg.Seed,
		}, tel),
		flog: faults.NewLog(0),
	}
	for _, ref := range cfg.Shards {
		refCopy := ref
		refCopy.URLs = append([]string(nil), ref.URLs...)
		for i, u := range refCopy.URLs {
			refCopy.URLs[i] = trimSlash(u)
		}
		// Shards start alive, like coordinator members: an unreachable
		// one expires after MissK trunk scrapes.
		g.shards = append(g.shards, &globalShard{ref: refCopy, alive: true})
	}
	g.epoch.Store(1)
	return g, nil
}

// Epoch returns the global leadership epoch grants fan out under.
func (g *Global) Epoch() uint64 { return g.epoch.Load() }

// PeakEpoch returns the highest global epoch observed in any shard's
// budget response.
func (g *Global) PeakEpoch() uint64 { return g.seenEpoch.Load() }

// Iv returns the global protocol-clock interval counter — monotonic
// across elections; SetEpoch does not reset it.
func (g *Global) Iv() uint64 { return g.iv.Load() }

// SetEpoch moves the apportioner to a new global epoch, invalidating
// the granted ledger so the next step grants every shard afresh. Call
// between steps only.
func (g *Global) SetEpoch(e uint64) {
	if g.epoch.Swap(e) == e {
		return
	}
	for _, s := range g.shards {
		s.grantedW, s.granted = 0, false
	}
}

func (g *Global) noteEpoch(e uint64) {
	for {
		cur := g.seenEpoch.Load()
		if e <= cur || g.seenEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Stats returns the apportioner's lifetime counters.
func (g *Global) Stats() GlobalStats { return g.stats }

// FaultEvents returns the shard membership event log in order.
func (g *Global) FaultEvents() []faults.Event { return g.flog.Events() }

// Close releases pooled trunk connections.
func (g *Global) Close() { g.client.close() }

// Step drives one global interval at trace time t under cluster cap
// capW.
func (g *Global) Step(ctx context.Context, t, capW float64) (GlobalStepResult, error) {
	return g.step(ctx, t, capW, true)
}

// Observe runs one global interval without granting: scrape the
// shards and compute what this apportioner would grant — the standby's
// warm-takeover path, mirroring Coordinator.Observe.
func (g *Global) Observe(ctx context.Context, t, capW float64) (GlobalStepResult, error) {
	return g.step(ctx, t, capW, false)
}

// scrapeShard walks one shard's trunk URLs from its last-good index
// until a leading coordinator answers.
func (g *Global) scrapeShard(ctx context.Context, s *globalShard, t float64) (ShardReport, int, error) {
	// The trunk scrape carries the global interval counter so shards
	// keep aging their budgets even across deadband-skipped re-grants.
	req := ShardReportRequest{V: ProtocolV, Shard: s.ref.ID, T: t, HasT: true, Iv: g.iv.Load()}
	var lastErr error
	n := len(s.ref.URLs)
	for k := 0; k < n; k++ {
		idx := (s.urlIdx + k) % n
		rep, err := g.client.shardReport(ctx, g.cfg.Retries, s.ref.URLs[idx], req)
		if err != nil {
			lastErr = err
			continue
		}
		if rep.Shard != s.ref.ID {
			lastErr = fmt.Errorf("ctrlplane: trunk scrape of shard %d answered as %d", s.ref.ID, rep.Shard)
			continue
		}
		if !rep.Leading {
			lastErr = fmt.Errorf("ctrlplane: shard %d coordinator at %s is a standby", s.ref.ID, s.ref.URLs[idx])
			continue
		}
		return rep, idx, nil
	}
	return ShardReport{}, s.urlIdx, lastErr
}

func (g *Global) step(ctx context.Context, t, capW float64, lead bool) (GlobalStepResult, error) {
	if !finite(t) || !finite(capW) || capW < 0 {
		return GlobalStepResult{}, fmt.Errorf("ctrlplane: global step t=%g cap=%g", t, capW)
	}
	epoch := g.epoch.Load()
	n := len(g.shards)
	res := GlobalStepResult{
		T: t, CapW: capW, Epoch: epoch, Leading: lead,
		Budgets: make([]float64, n),
		Granted: make([]bool, n),
		Alive:   make([]bool, n),
	}

	// Phase 1 — trunk scrape, doubling as the shard-tier membership
	// heartbeat.
	reports := make([]*ShardReport, n)
	urlIdx := make([]int, n)
	errs := make([]error, n)
	fanOut(ctx, n, g.cfg.maxInFlight(), func(i int) {
		rep, idx, err := g.scrapeShard(ctx, g.shards[i], t)
		urlIdx[i] = idx
		if err != nil {
			errs[i] = err
			return
		}
		reports[i] = &rep
	})
	for i, s := range g.shards {
		s.urlIdx = urlIdx[i]
		if rep := reports[i]; rep != nil {
			s.misses = 0
			s.scraped = true
			s.report = *rep
		} else {
			s.misses++
			s.scraped = false
			res.ScrapeErrs++
			g.stats.ScrapeFailures++
		}
	}

	// Protocol-clock harvest: track the highest interval and same-epoch
	// sequence any shard has seen, and rehydrate the counter from a
	// majority of scrapes after a restart. Runs while observing too, so
	// a warm standby is already rehydrated when promoted.
	if g.cfg.LeaseIv > 0 {
		scrapedOK := 0
		cur := g.iv.Load()
		for i := range g.shards {
			rep := reports[i]
			if rep == nil {
				continue
			}
			scrapedOK++
			if rep.GIv > g.maxSeenIv {
				g.maxSeenIv = rep.GIv
			}
			if rep.GEpoch == epoch && rep.GSeq > g.maxSeenSeq {
				g.maxSeenSeq = rep.GSeq
			}
			if g.tel.enabled {
				var lag float64
				if cur > rep.GIv {
					lag = float64(cur - rep.GIv)
				}
				g.tel.clockSkewIv.With("shard-" + strconv.Itoa(i)).Set(lag)
			}
		}
		// Track the fleet's echo continuously (see Coordinator.step): a
		// warm standby apportioner follows the leader's mints interval
		// by interval, so promotion never re-issues one.
		if g.maxSeenIv > g.iv.Load() {
			g.iv.Store(g.maxSeenIv)
		}
		if !g.rehydrated && scrapedOK >= len(g.shards)/2+1 {
			if g.maxSeenSeq > g.seq {
				g.seq = g.maxSeenSeq
			}
			g.rehydrated = true
			g.stats.Rehydrations++
			g.tel.rehydrations.Inc()
			g.flog.Append(faults.Event{T: t, Kind: "clock-rehydrate", Target: "global",
				Detail: fmt.Sprintf("interval counter recovered from %d/%d shards: iv=%d seq=%d", scrapedOK, len(g.shards), g.iv.Load(), g.seq)})
		}
	}

	// Phase 2 — shard membership: expire after MissK consecutive
	// misses, reserving the expired shard's last budget until its
	// reclaim window passes (its agents hold leases against it);
	// readmit on the first successful scrape.
	for i, s := range g.shards {
		switch {
		case s.alive && s.misses >= g.cfg.missK():
			s.alive = false
			s.reclaimT = t + g.cfg.reclaimS()
			g.stats.ShardExpiries++
			g.flog.Append(faults.Event{T: t, Kind: "shard-expiry", Target: fmt.Sprintf("shard-%d", s.ref.ID),
				Detail: fmt.Sprintf("%d consecutive missed trunk scrapes; reserving %g W until t=%g", s.misses, s.grantedW, s.reclaimT)})
		case !s.alive && s.scraped:
			s.alive = true
			g.stats.ShardRejoins++
			g.flog.Append(faults.Event{T: t, Kind: "shard-rejoin", Target: fmt.Sprintf("shard-%d", s.ref.ID),
				Detail: "shard coordinator back; re-apportioning cluster budget"})
		}
		if !s.alive && s.granted && t >= s.reclaimT {
			g.stats.Reclaims++
			g.flog.Append(faults.Event{T: t, Kind: "shard-reclaim", Target: fmt.Sprintf("shard-%d", s.ref.ID),
				Detail: fmt.Sprintf("budget lease and agent leases lapsed; %g W returned to the pool", s.grantedW)})
			s.grantedW, s.granted = 0, false
		}
		res.Alive[i] = s.alive
	}

	// Phase 3 — reserve silent shards' budgets, then apportion the
	// remainder across the live shards and shift unused headroom toward
	// saturated ones. sum(budgets) ≤ available and available + reserved
	// ≤ capW give the tree's cap invariant.
	for _, s := range g.shards {
		if !s.alive && s.granted {
			res.ReservedW += s.grantedW
		}
	}
	available := capW - res.ReservedW
	if available < 0 {
		available = 0
	}
	var aliveIdx []int
	for i, s := range g.shards {
		if s.alive {
			aliveIdx = append(aliveIdx, i)
		}
	}
	if len(aliveIdx) > 0 {
		curves := make([]cluster.ShardCurve, len(aliveIdx))
		usedW := make([]float64, len(aliveIdx))
		demandW := make([]float64, len(aliveIdx))
		for j, i := range aliveIdx {
			rep := g.shards[i].report
			curves[j] = cluster.ShardCurve{FloorW: rep.FloorW, Points: rep.Curve}
			usedW[j], demandW[j] = rep.UsedW, rep.DemandW
		}
		budgets, perf := cluster.ApportionShards(available*(1-grantSlackFrac), curves, g.cfg.MaxLevels)
		budgets, res.RebalancedW = cluster.RebalanceHeadroom(budgets, usedW, demandW, g.cfg.guardFrac())
		res.PerfN = perf
		// Decrease-before-increase: a granted decrease takes effect at
		// the shard's next step, but a shard that misses a grant (a
		// coordinator mid-failover, a silent shard inside its MissK
		// grace) keeps enforcing its OLD budget — so an interval's caps
		// must stay safe under ANY mix of old and new budgets. Grant
		// decreases in full; scale increases so that the sum of every
		// shard's max(old, new) fits the available watts. The freed
		// watts of a decrease become grantable one interval later, when
		// the donor's report confirms the lower budget in force.
		oldW := make([]float64, len(aliveIdx))
		var sumOld, totalInc float64
		for j, i := range aliveIdx {
			s := g.shards[i]
			oldW[j] = s.grantedW
			if s.report.V != 0 {
				// The shard's own report of the budget it enforces —
				// which also covers its bootstrap budget, granted by
				// nobody.
				oldW[j] = s.report.BudgetW
			}
			// Deadband: hold the grant steady when the target only
			// jittered (DP tie-breaks and demand over-asks wander by a
			// curve step as member splits shift). Sub-noise decreases
			// would otherwise consume the increase allowance below
			// every interval, starving real demand shifts — which clear
			// the deadband easily, at a curve step per member.
			db := grantDeadbandW
			if r := grantDeadbandFrac * oldW[j]; r > db {
				db = r
			}
			if d := budgets[j] - oldW[j]; d > -db && d < db {
				budgets[j] = oldW[j]
			}
			sumOld += oldW[j]
			if inc := budgets[j] - oldW[j]; inc > 0 {
				totalInc += inc
			}
		}
		if allowedInc := available - sumOld; totalInc > allowedInc {
			scale := 0.0
			if allowedInc > 0 {
				scale = allowedInc / totalInc
			}
			for j := range budgets {
				if inc := budgets[j] - oldW[j]; inc > 0 {
					budgets[j] = oldW[j] + inc*scale
				}
			}
		}
		for j, i := range aliveIdx {
			res.Budgets[i] = budgets[j]
		}
	}

	// Phase 4 — fan the grants out (leader only).
	if !lead {
		res.Deposed = g.seenEpoch.Load() > epoch
		g.stats.Observes++
		g.tel.noteGlobalStep(res)
		return res, nil
	}
	if !g.rehydrated {
		// A leading clock-mode apportioner that has not recovered its
		// interval counter from a shard majority must not mint: a lower
		// counter would duplicate interval numbers its predecessor's
		// grants already carry. Shards keep enforcing (and aging) their
		// last budgets, so skipping the grant round is safe.
		res.Rehydrating = true
		res.Deposed = g.seenEpoch.Load() > epoch
		g.stats.Observes++
		g.tel.noteGlobalStep(res)
		return res, nil
	}
	g.seq++
	seq := g.seq
	var mintIv, leaseIv uint64
	var ivS float64
	if g.cfg.LeaseIv > 0 {
		mintIv = g.iv.Add(1)
		leaseIv = uint64(g.cfg.LeaseIv)
		ivS = g.cfg.IntervalS
		res.Iv = mintIv
	}
	fanOut(ctx, len(aliveIdx), g.cfg.maxInFlight(), func(k int) {
		i := aliveIdx[k]
		s := g.shards[i]
		req := ShardBudgetRequest{V: ProtocolV, Epoch: epoch, Seq: seq, Shard: s.ref.ID,
			T: t, CapW: res.Budgets[i], LeaseS: g.cfg.LeaseS,
			Iv: mintIv, LeaseIv: leaseIv, IvS: ivS}
		// Grant to the whole coordinator set, not just the leader —
		// the trunk mirror of agents announcing to every coordinator. A
		// standby that applies each budget to its own fenced ledger is
		// warm on promotion: it enforces the budget the global last
		// granted, not its bootstrap share, which is what keeps the sum
		// of shard budgets capped through a shard-leader failover.
		var grantErr error
		for k2 := 0; k2 < len(s.ref.URLs); k2++ {
			idx := (s.urlIdx + k2) % len(s.ref.URLs)
			resp, err := g.client.shardBudget(ctx, g.cfg.Retries, s.ref.URLs[idx], req)
			if err != nil {
				if grantErr == nil {
					grantErr = err
				}
				continue
			}
			g.noteEpoch(resp.Epoch)
			// Applied, or refused-as-duplicate with our own grant in
			// force, both mean the budget holds; a refusal at a higher
			// epoch means another apportioner owns the shard.
			if resp.Applied || (resp.Epoch == epoch && resp.CapW == res.Budgets[i]) {
				res.Granted[i] = true
			} else if grantErr == nil {
				grantErr = fmt.Errorf("ctrlplane: shard %d refused epoch-%d budget (shard at global epoch %d)",
					s.ref.ID, epoch, resp.Epoch)
			}
		}
		if !res.Granted[i] {
			errs[i] = grantErr
		}
	})
	for _, i := range aliveIdx {
		s := g.shards[i]
		if res.Granted[i] {
			s.grantedW, s.granted = res.Budgets[i], true
		} else {
			res.GrantErrs++
			g.stats.GrantFailures++
		}
	}
	res.Deposed = g.seenEpoch.Load() > epoch
	g.stats.Steps++
	g.tel.noteGlobalStep(res)
	return res, nil
}

// GrantedShardW returns the last acknowledged budget of the shard at
// config index i (0 when none).
func (g *Global) GrantedShardW(i int) float64 {
	if i < 0 || i >= len(g.shards) {
		return 0
	}
	return g.shards[i].grantedW
}

// GlobalHAConfig parameterizes a global apportioner's leader election
// — the subset of HAConfig the apex tier needs.
type GlobalHAConfig struct {
	ID       string
	Election Election
	TermTTL  time.Duration
	Clock    func() time.Time
}

// GlobalHA runs a global apportioner as a member of a leader-elected
// pair: campaign each interval on the shared store, lead under the
// term's epoch or observe to stay warm. The same two safety nets as
// the shard tier apply — elections order takeovers, epoch fencing at
// the shards makes even a deposed-but-unaware global harmless.
type GlobalHA struct {
	g   *Global
	cfg GlobalHAConfig

	mu        sync.Mutex
	leader    bool
	term      Term
	failovers int
}

// NewGlobalHA wraps a global apportioner with leader election.
func NewGlobalHA(g *Global, cfg GlobalHAConfig) (*GlobalHA, error) {
	if g == nil {
		return nil, fmt.Errorf("ctrlplane: global HA needs an apportioner")
	}
	if cfg.Election == nil {
		return nil, fmt.Errorf("ctrlplane: global HA needs an election store")
	}
	if cfg.ID == "" {
		return nil, fmt.Errorf("ctrlplane: global HA needs a candidate id")
	}
	if cfg.TermTTL <= 0 {
		return nil, fmt.Errorf("ctrlplane: global HA term ttl %v", cfg.TermTTL)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &GlobalHA{g: g, cfg: cfg}, nil
}

// Global returns the wrapped apportioner.
func (h *GlobalHA) Global() *Global { return h.g }

// Step campaigns, then leads or observes one global interval.
func (h *GlobalHA) Step(ctx context.Context, t, capW float64) (GlobalStepResult, error) {
	term, err := h.cfg.Election.Campaign(h.cfg.ID, h.cfg.Clock(), h.cfg.TermTTL)
	if err != nil {
		// Same stance as HA.Step: an unreachable store proves nothing,
		// so only observe; shard budget leases lapse on their own.
		h.mu.Lock()
		h.leader = false
		h.mu.Unlock()
		return h.g.Observe(ctx, t, capW)
	}
	lead := term.Leader == h.cfg.ID
	h.mu.Lock()
	if lead && term.Epoch > h.term.Epoch && term.Epoch > 1 {
		h.failovers++
	}
	h.leader, h.term = lead, term
	h.mu.Unlock()
	if !lead {
		return h.g.Observe(ctx, t, capW)
	}
	h.g.SetEpoch(term.Epoch)
	res, err := h.g.Step(ctx, t, capW)
	if err == nil && res.Deposed {
		h.mu.Lock()
		h.leader = false
		h.mu.Unlock()
	}
	return res, err
}

// Leader reports the last campaign's term and whether this node leads.
func (h *GlobalHA) Leader() (Term, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.term, h.leader
}

// Failovers counts leadership acquisitions past the bootstrap
// election.
func (h *GlobalHA) Failovers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.failovers
}
