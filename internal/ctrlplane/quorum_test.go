package ctrlplane

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"powerstruggle/internal/faults"
)

// TestQuorumVoterBallotRules pins the acceptor's two ballot rules —
// prepare grants strictly newer ballots only, accept grants the
// promised ballot itself or newer — and the always-reported accepted
// pair that later prepares adopt.
func TestQuorumVoterBallotRules(t *testing.T) {
	v := NewQuorumVoter(nil)
	w := termToWire(Term{Epoch: 1, Leader: "qa", Expires: t0.Add(10 * time.Second)})

	r := v.Vote(VoteRequest{V: ProtocolV, Phase: VotePrepare, Ballot: 5})
	if !r.Granted || r.Promise != 5 || r.AcceptedBallot != 0 || r.Term != nil {
		t.Fatalf("fresh prepare: %+v", r)
	}
	// The promised ballot itself must bounce: granting it twice would
	// let two proposers share one round.
	if r = v.Vote(VoteRequest{V: ProtocolV, Phase: VotePrepare, Ballot: 5}); r.Granted {
		t.Fatalf("re-prepare at the promise granted: %+v", r)
	}
	if r = v.Vote(VoteRequest{V: ProtocolV, Phase: VotePrepare, Ballot: 4}); r.Granted || r.Promise != 5 {
		t.Fatalf("stale prepare: %+v", r)
	}
	// Accept at the promise lands (it is the proposer's own prepare).
	if r = v.Vote(VoteRequest{V: ProtocolV, Phase: VoteAccept, Ballot: 5, Term: &w}); !r.Granted || r.AcceptedBallot != 5 {
		t.Fatalf("accept at the promise: %+v", r)
	}
	if r = v.Vote(VoteRequest{V: ProtocolV, Phase: VoteAccept, Ballot: 4, Term: &w}); r.Granted {
		t.Fatalf("stale accept granted: %+v", r)
	}
	// A later prepare adopts the accepted pair.
	r = v.Vote(VoteRequest{V: ProtocolV, Phase: VotePrepare, Ballot: 9})
	if !r.Granted || r.Promise != 9 || r.AcceptedBallot != 5 || r.Term == nil || r.Term.Epoch != 1 {
		t.Fatalf("prepare after accept: %+v", r)
	}
	// The old proposer has been superseded; its accept must bounce.
	if r = v.Vote(VoteRequest{V: ProtocolV, Phase: VoteAccept, Ballot: 5, Term: &w}); r.Granted {
		t.Fatalf("superseded accept granted: %+v", r)
	}
	if term, b := v.Accepted(); term.Epoch != 1 || term.Leader != "qa" || b != 5 {
		t.Fatalf("accepted state %+v at ballot %d", term, b)
	}
}

// TestVoterHandlerRejectsBadTraffic drives the /ctrl/vote endpoint with
// the malformed requests the strict wire decoder must bounce.
func TestVoterHandlerRejectsBadTraffic(t *testing.T) {
	srv := httptest.NewServer(NewVoterHandler(NewQuorumVoter(nil)))
	defer srv.Close()

	if resp, err := http.Get(srv.URL + PathVote); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %s", resp.Status)
	}
	for _, body := range []string{
		``,
		`{`,
		`{"v":2,"phase":"prepare","ballot":0}`,
		`{"v":2,"phase":"veto","ballot":1}`,
		`{"v":2,"phase":"prepare","ballot":1,"term":{"epoch":1,"leader":"x"}}`,
		`{"v":2,"phase":"accept","ballot":1}`,
		`{"v":2,"phase":"accept","ballot":1,"term":{"epoch":0,"leader":"x"}}`,
		`{"v":2,"phase":"prepare","ballot":1,"bogus":true}`,
	} {
		resp, err := http.Post(srv.URL+PathVote, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: %s", body, resp.Status)
		}
	}
}

// TestQuorumSurvivesMinorityVoterLoss is the availability half of the
// quorum guarantee: with any minority of voters down the store keeps
// deciding campaigns, and with a majority down it errors instead of
// guessing.
func TestQuorumSurvivesMinorityVoterLoss(t *testing.T) {
	pool, err := StartVoterPool(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	e, err := NewQuorumElection(QuorumConfig{Voters: pool.URLs(), Timeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Quorum(); got != 2 {
		t.Fatalf("majority of 3 = %d", got)
	}
	const ttl = 10 * time.Second
	if term, err := e.Campaign("qa", t0, ttl); err != nil || term.Epoch != 1 || term.Leader != "qa" {
		t.Fatalf("bootstrap: %+v, %v", term, err)
	}

	pool.StopVoter(2)
	term, err := e.Campaign("qa", t0.Add(time.Second), ttl)
	if err != nil {
		t.Fatalf("campaign with one voter down: %v", err)
	}
	if term.Epoch != 1 || term.Leader != "qa" || !term.Expires.Equal(t0.Add(11*time.Second)) {
		t.Fatalf("renewal with one voter down: %+v", term)
	}

	// A second loss breaks the majority: campaigns error — the caller
	// has learned nothing and must not lead — rather than deciding on
	// whatever minority still answers.
	pool.StopVoter(1)
	if term, err := e.Campaign("qa", t0.Add(2*time.Second), ttl); err == nil {
		t.Fatalf("campaign decided without a majority: %+v", term)
	}
}

// TestQuorumMinorityPartitionNeverLeads is the safety half: a proposer
// that can only reach a minority of voters can never mint a leader, no
// matter how expired the term looks to its (far-ahead) clock, while the
// majority side keeps renewing through the same store. When the
// partition heals, the isolated proposer converges on the committed
// state before taking its turn.
func TestQuorumMinorityPartitionNeverLeads(t *testing.T) {
	pool, err := StartVoterPool(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	const ttl = 10 * time.Second
	urls := pool.URLs()

	a, err := NewQuorumElection(QuorumConfig{Voters: urls})
	if err != nil {
		t.Fatal(err)
	}
	if term, err := a.Campaign("qa", t0, ttl); err != nil || term.Epoch != 1 || term.Leader != "qa" {
		t.Fatalf("bootstrap: %+v, %v", term, err)
	}

	// Proposer B sits in a minority partition: only voter 0 is
	// reachable. Its clock runs an hour ahead, so absent the partition
	// it would steal the long-expired term instantly.
	inj, err := faults.NewNetInjector(faults.NetConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range urls[1:] {
		inj.SetDown(strings.TrimPrefix(u, "http://"), true)
	}
	b, err := NewQuorumElection(QuorumConfig{Voters: urls, Transport: inj, Timeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		skewed := t0.Add(time.Hour + time.Duration(i)*time.Second)
		if term, err := b.Campaign("qb", skewed, ttl); err == nil {
			t.Fatalf("minority partition minted a leader: %+v", term)
		}
	}

	// The majority side is undisturbed: A still renews epoch 1, even
	// though B's prepares bumped the reachable voter's promise past A's
	// ballots — A's majority and B's minority don't have to overlap.
	term, err := a.Campaign("qa", t0.Add(5*time.Second), ttl)
	if err != nil {
		t.Fatalf("majority-side renewal during the partition: %v", err)
	}
	if term.Epoch != 1 || term.Leader != "qa" {
		t.Fatalf("majority-side renewal during the partition: %+v", term)
	}
	// No voter ever accepted anything beyond the committed term.
	for i, v := range pool.Voters {
		if acc, _ := v.Accepted(); acc.Epoch != 1 || acc.Leader != "qa" {
			t.Fatalf("voter %d accepted %+v during the partition", i, acc)
		}
	}

	// Heal. B now assembles a majority, adopts the committed term, and —
	// the term being long expired on its clock — takes the next epoch.
	for _, u := range urls[1:] {
		inj.SetDown(strings.TrimPrefix(u, "http://"), false)
	}
	term, err = b.Campaign("qb", t0.Add(time.Hour), ttl)
	if err != nil {
		t.Fatalf("campaign after heal: %v", err)
	}
	if term.Epoch != 2 || term.Leader != "qb" {
		t.Fatalf("post-heal takeover: %+v", term)
	}
}

// TestQuorumFailoverSoak is the quorum-pool acceptance gate, run under
// -race in CI: three priority-ranked coordinators elect through a
// 3-voter quorum store over real loopback HTTP while driving a real
// loopback fleet through a cap ramp; the rank-0 leader is killed
// mid-trace and returns later as an observer. The rank-1 standby must
// take over within one interval of observable silence while rank 2
// holds off, the fleet must never breach the cap, and every granted
// interval's budget vector must match the single-coordinator
// simulation bit for bit.
func TestQuorumFailoverSoak(t *testing.T) {
	const (
		servers  = 4
		interval = 300.0
		steps    = 14
		killStep = 6 // the leader's last step is killStep-1
		backStep = 10
	)
	caps := capRamp(steps, interval, 720, 420)
	oracle, err := testEvaluator(t, servers, nil).Evaluate(caps, oracleStrategy(StrategyUtility))
	if err != nil {
		t.Fatal(err)
	}
	flt, err := StartSimFleet(testEvaluator(t, servers, nil), "quorum-soak")
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()

	pool, err := StartVoterPool(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)

	// Candidate ids chosen so the FNV ballot hashes ascend in step
	// order (qa < qb < qc): the members campaign sequentially each
	// interval, and ascending low halves keep same-round ballots from
	// dueling, so the soak is deterministic. (Hash order affects only
	// liveness — contended campaigns error and retry next interval —
	// never safety.)
	ids := []string{"qa", "qb", "qc"}
	ttl := time.Duration(1.5 * interval * float64(time.Second))
	has := make([]*HA, len(ids))
	clks := make([]*fakeClock, len(ids))
	for i, id := range ids {
		coord, err := New(Config{Agents: flt.Refs(), Strategy: StrategyUtility, LeaseS: interval, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewQuorumElection(QuorumConfig{Voters: pool.URLs()})
		if err != nil {
			t.Fatal(err)
		}
		clks[i] = &fakeClock{t: t0}
		has[i], err = NewHA(coord, HAConfig{ID: id, Election: e, TermTTL: ttl, Clock: clks[i].Now, Priority: i})
		if err != nil {
			t.Fatal(err)
		}
	}

	for s, cp := range caps {
		for _, clk := range clks {
			clk.Set(wallAt(cp.T))
		}
		epochsBefore := make([]uint64, servers)
		for i, ag := range flt.Agents {
			epochsBefore[i] = ag.LastEpoch()
		}

		leaders := 0
		for i, ha := range has {
			if i == 0 && s >= killStep && s < backStep {
				continue
			}
			res, err := ha.Step(context.Background(), cp.T, cp.V)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Leading {
				continue
			}
			leaders++
			if i != 0 && s < killStep {
				t.Fatalf("step %d: standby %s led while the leader was alive", s, ids[i])
			}
			for j, bg := range res.Budgets {
				if bg != oracle.BudgetSeries[s][j] {
					t.Fatalf("step %d server %d: epoch-%d budget %g W, simulation %g W",
						s, j, res.Epoch, bg, oracle.BudgetSeries[s][j])
				}
			}
		}
		if leaders > 1 {
			t.Fatalf("step %d: %d leaders granted in one interval", s, leaders)
		}
		if s == killStep && leaders != 0 {
			t.Fatalf("step %d: the dead leader's unexpired term was stolen early", s)
		}
		if s != killStep && leaders != 1 {
			t.Fatalf("step %d: no leader granted", s)
		}
		if s == killStep+1 {
			if term, lead := has[1].Leader(); !lead || term.Epoch != 2 {
				t.Fatalf("rank-1 standby had not taken over one interval after silence: term %+v lead %v", term, lead)
			}
		}

		// Applied epochs never move backward or skip at any agent.
		for i, ag := range flt.Agents {
			after := ag.LastEpoch()
			if after < epochsBefore[i] {
				t.Fatalf("step %d: agent %d's applied epoch went backward (%d -> %d)", s, i, epochsBefore[i], after)
			}
			if epochsBefore[i] != 0 && after != epochsBefore[i] && epochsBefore[i] != after-1 {
				t.Fatalf("step %d: agent %d jumped epochs %d -> %d in one interval", s, i, epochsBefore[i], after)
			}
		}

		// The cap invariant, at the interval edge and mid-interval.
		if err := flt.Tick(cp.T); err != nil {
			t.Fatal(err)
		}
		if draw := flt.FleetGridW(); draw > cp.V+1e-6 {
			t.Fatalf("step %d (t=%g): fleet draws %g W over the %g W cap", s, cp.T, draw, cp.V)
		}
		if err := flt.Tick(cp.T + interval/2); err != nil {
			t.Fatal(err)
		}
		if draw := flt.FleetGridW(); draw > cp.V+1e-6 {
			t.Fatalf("step %d (t=%g, mid-interval): fleet draws %g W over the %g W cap", s, cp.T, draw, cp.V)
		}
	}

	if got := has[1].Failovers(); got != 1 {
		t.Fatalf("rank-1 standby counted %d failovers, want 1", got)
	}
	if got := has[0].Failovers() + has[2].Failovers(); got != 0 {
		t.Fatalf("ranks 0 and 2 counted %d failovers, want 0", got)
	}
	if got := has[2].Holdoffs(); got < 1 {
		t.Fatalf("rank 2 never held a steal off (holdoffs %d)", got)
	}
	if term, lead := has[0].Leader(); lead {
		t.Fatalf("returned old leader still believes it leads: %+v", term)
	}
	for i, ag := range flt.Agents {
		if ag.LastEpoch() != 2 {
			t.Fatalf("agent %d finished at epoch %d, want 2", i, ag.LastEpoch())
		}
	}
	// The replicated term itself converged on every voter.
	for i, v := range pool.Voters {
		if acc, _ := v.Accepted(); acc.Epoch != 2 || acc.Leader != "qb" {
			t.Fatalf("voter %d holds %+v, want epoch 2 led by qb", i, acc)
		}
	}
}
