package ctrlplane

import (
	"context"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestCtrlPlaneParityBinary is the binary-transport acceptance gate:
// the same replay that TestCtrlPlaneParity runs over HTTP/JSON, carried
// instead as batched binary frames over one pooled TCP conn, must be
// bit-for-bit identical to the pure simulation — and must actually use
// the batch path (one scrape frame and one grant frame per interval)
// rather than falling back to unary RPCs.
func TestCtrlPlaneParityBinary(t *testing.T) {
	const servers = 4
	caps := capRamp(12, 300, 750, 350)
	for _, strat := range []Strategy{StrategyEqual, StrategyUtility} {
		t.Run(strat.String(), func(t *testing.T) {
			ev := testEvaluator(t, servers, nil)
			oracle, err := ev.Evaluate(caps, oracleStrategy(strat))
			if err != nil {
				t.Fatal(err)
			}

			flt, err := StartSimFleetOpts(ev, FleetOptions{Version: "test", Transport: TransportBinary})
			if err != nil {
				t.Fatal(err)
			}
			defer flt.Close()
			coord, err := New(Config{
				Agents:   flt.Refs(),
				Strategy: strat,
				LeaseS:   150,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			results, err := coord.Replay(context.Background(), caps, func(res StepResult) {
				if err := flt.Tick(res.T); err != nil {
					t.Errorf("tick %g: %v", res.T, err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(caps) {
				t.Fatalf("%d results for %d cap points", len(results), len(caps))
			}
			for s, res := range results {
				for i, b := range res.Budgets {
					if b != oracle.BudgetSeries[s][i] {
						t.Fatalf("step %d server %d: binary budget %g W, simulation %g W",
							s, i, b, oracle.BudgetSeries[s][i])
					}
				}
				for i, g := range res.Granted {
					if !g {
						t.Fatalf("step %d: agent %d's budget not acknowledged under zero faults", s, i)
					}
				}
				if res.ScrapeErrs != 0 || res.AssignErrs != 0 {
					t.Fatalf("step %d: RPC errors under zero faults: %+v", s, res)
				}
			}
			st := coord.Stats()
			if st.LeaseExpiries != 0 || st.Reapportions != 0 {
				t.Fatalf("membership churn under zero faults: %+v", st)
			}
			// The whole fleet shares one listener, so every interval must
			// collapse to exactly two frames: one batch scrape, one batch
			// grant, each carrying all four agents.
			if want := 2 * len(caps); st.BatchFrames != want {
				t.Fatalf("%d batch frames over %d intervals, want %d (scrape+grant per interval)",
					st.BatchFrames, len(caps), want)
			}
			if want := 2 * len(caps) * servers; st.BatchedOps != want {
				t.Fatalf("%d batched ops, want %d", st.BatchedOps, want)
			}
			// The conn pool must hold the conn across intervals: one dial
			// for the whole replay, everything after it a reuse.
			ws := coord.WireStats()
			if ws.BinaryDials != 1 {
				t.Fatalf("replay dialed %d conns; the pool should reuse the first across all %d intervals",
					ws.BinaryDials, len(caps))
			}
			if ws.BinaryReuses == 0 {
				t.Fatalf("no conn reuses recorded across %d intervals", len(caps))
			}
		})
	}
}

// TestCrossTransportParity replays one cap schedule twice — once over
// HTTP/JSON, once over binary frames — and requires the two transports
// to produce identical budgets and grants step for step. Parity against
// the oracle already implies this transitively; asserting it directly
// keeps the guarantee when the oracle itself evolves.
func TestCrossTransportParity(t *testing.T) {
	const servers = 4
	caps := capRamp(10, 300, 700, 420)
	run := func(t *testing.T, kind TransportKind) []StepResult {
		t.Helper()
		ev := testEvaluator(t, servers, nil)
		flt, err := StartSimFleetOpts(ev, FleetOptions{Version: "test", Transport: kind})
		if err != nil {
			t.Fatal(err)
		}
		defer flt.Close()
		coord, err := New(Config{Agents: flt.Refs(), Strategy: StrategyUtility, LeaseS: 150})
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		results, err := coord.Replay(context.Background(), caps, func(res StepResult) {
			if err := flt.Tick(res.T); err != nil {
				t.Errorf("tick %g: %v", res.T, err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	jres := run(t, TransportJSON)
	bres := run(t, TransportBinary)
	if len(jres) != len(bres) {
		t.Fatalf("json %d steps, binary %d", len(jres), len(bres))
	}
	for s := range jres {
		for i := range jres[s].Budgets {
			if jres[s].Budgets[i] != bres[s].Budgets[i] {
				t.Fatalf("step %d server %d: json %g W, binary %g W",
					s, i, jres[s].Budgets[i], bres[s].Budgets[i])
			}
		}
		for i := range jres[s].Granted {
			if jres[s].Granted[i] != bres[s].Granted[i] {
				t.Fatalf("step %d server %d: grant outcomes differ across transports", s, i)
			}
		}
	}
}

// TestBinaryCoalescedRenewals: under a constant cap with a long lease,
// the batch grant frame must carry renewals, not re-assignments — each
// agent applies exactly one assign for the whole run, every later
// interval rides the coalesced renewal entries, and nothing fences.
func TestBinaryCoalescedRenewals(t *testing.T) {
	ev := testEvaluator(t, 3, nil)
	flt, err := StartSimFleetOpts(ev, FleetOptions{Version: "test", Transport: TransportBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	coord, err := New(Config{Agents: flt.Refs(), Strategy: StrategyEqual, LeaseS: 700})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	const steps = 6
	for step := 0; step < steps; step++ {
		ts := float64(step) * 300
		res, err := coord.Step(context.Background(), ts, 400)
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range res.Granted {
			if !g {
				t.Fatalf("step %d: agent %d not granted", step, i)
			}
		}
		if err := flt.Tick(ts); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range flt.Agents {
		if n := a.Assigns(); n != 1 {
			t.Errorf("agent %d applied %d assigns; steady state should renew inside the batch frame", i, n)
		}
		if a.Fences() != 0 || a.Fenced() {
			t.Errorf("agent %d fenced under steady renewal", i)
		}
	}
	st := coord.Stats()
	if want := 2 * steps; st.BatchFrames != want {
		t.Fatalf("%d batch frames, want %d — renewals must ride the batch path", st.BatchFrames, want)
	}
	if st.LeaseExpiries != 0 {
		t.Fatalf("lease expiries under steady renewal: %+v", st)
	}
}

// countingListener counts accepted conns — the ground truth for whether
// a transport's pool actually holds conns across intervals.
type countingListener struct {
	net.Listener
	accepted atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepted.Add(1)
	}
	return c, err
}

// TestJSONFanOutReusesConns pins the keep-alive fix: the JSON client's
// pooled http.Transport must hold its conns across control intervals
// instead of re-dialing per RPC (http.DefaultTransport's 2-per-host
// idle cap silently degrades to dial-per-request under fan-out).
func TestJSONFanOutReusesConns(t *testing.T) {
	ev := testEvaluator(t, 1, nil)
	a, err := NewAgent(AgentConfig{ID: 0, Backend: NewSimBackend(ev, 0), Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &countingListener{Listener: ln}
	srv := &http.Server{Handler: NewHandler(a), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(cl) }()
	defer srv.Close()

	coord, err := New(Config{
		Agents:   []AgentRef{{ID: 0, URL: "http://" + ln.Addr().String()}},
		Strategy: StrategyEqual,
		LeaseS:   150,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	const steps = 8
	for step := 0; step < steps; step++ {
		ts := float64(step) * 300
		if _, err := coord.Step(context.Background(), ts, 400); err != nil {
			t.Fatal(err)
		}
		if err := a.Tick(ts); err != nil {
			t.Fatal(err)
		}
	}
	// 2 RPCs per interval; a working keep-alive pool serves all of them
	// over one or two conns total.
	if n := cl.accepted.Load(); n > 2 {
		t.Fatalf("JSON fan-out opened %d conns over %d RPCs; keep-alive pool is not reusing", n, 2*steps)
	}
}

// TestBinaryChaosSoak bounces the binary conn pool from both ends mid
// replay — the server hard-closing every live conn, the client dropping
// its idle pool — and requires the transport's redial-once recovery to
// keep the replay bit-exact: every grant acknowledged, zero surfaced
// RPC errors, budgets identical to the pure simulation. CI runs this
// under -race; the bounce exercises the pool's lifecycle paths
// concurrently with checkout.
func TestBinaryChaosSoak(t *testing.T) {
	const servers = 4
	caps := capRamp(24, 300, 750, 400)
	ev := testEvaluator(t, servers, nil)
	oracle, err := ev.Evaluate(caps, oracleStrategy(StrategyEqual))
	if err != nil {
		t.Fatal(err)
	}
	flt, err := StartSimFleetOpts(ev, FleetOptions{Version: "test", Transport: TransportBinary})
	if err != nil {
		t.Fatal(err)
	}
	defer flt.Close()
	coord, err := New(Config{Agents: flt.Refs(), Strategy: StrategyEqual, LeaseS: 150})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	for s, cp := range caps {
		// Chaos on a fixed schedule, so the soak is reproducible: the
		// server bounces its conns on some steps, the client drops its
		// pool on others, and both collide on steps divisible by 35.
		if s%5 == 2 {
			flt.BinaryServer().BounceConns()
		}
		if s%7 == 3 {
			coord.client.dialer.bin.closeIdle()
		}
		res, err := coord.Step(context.Background(), cp.T, cp.V)
		if err != nil {
			t.Fatal(err)
		}
		if err := flt.Tick(cp.T); err != nil {
			t.Fatal(err)
		}
		for i, b := range res.Budgets {
			if b != oracle.BudgetSeries[s][i] {
				t.Fatalf("step %d server %d: chaos budget %g W, simulation %g W", s, i, b, oracle.BudgetSeries[s][i])
			}
		}
		for i, g := range res.Granted {
			if !g {
				t.Fatalf("step %d: agent %d not granted after conn bounce", s, i)
			}
		}
		if res.ScrapeErrs != 0 || res.AssignErrs != 0 {
			t.Fatalf("step %d: surfaced RPC errors despite redial recovery: %+v", s, res)
		}
	}
	st := coord.Stats()
	if st.LeaseExpiries != 0 || st.Reapportions != 0 {
		t.Fatalf("membership churn from conn bounces alone: %+v", st)
	}
	ws := coord.WireStats()
	if ws.BinaryDials < 2 {
		t.Fatalf("chaos soak dialed %d conns; bounces should have forced redials", ws.BinaryDials)
	}
	// Redials stay bounded: at most a couple per bounced step, never
	// dial-per-RPC.
	if ws.BinaryDials > uint64(len(caps)) {
		t.Fatalf("chaos soak dialed %d conns over %d intervals; redial should be once per bounce, not per RPC", ws.BinaryDials, len(caps))
	}
}
