package ctrlplane

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"powerstruggle/internal/cluster"
)

// This file is the two-tier drill harness behind the hierarchy tests,
// pscluster -shards, and the psbench "binary-2tier" cell: a sharded
// fleet of demand-driven agents, each shard run by an HA pair of shard
// coordinators over the binary wire, with a global apportioner
// splitting the cluster cap across the shards each interval. The drill
// asserts the tree's safety invariant — the sum of enforced agent caps
// never exceeds the cluster cap, every interval, including through
// shard-coordinator failover — and measures interval latency.

// demandBackend is a workload-driven Backend: the server draws
// min(demand, cap) (never below the idle floor while powered), so a
// saturated server pins its draw at its cap and an idle one leaves
// headroom — the signal the global tier's rebalancer consumes.
type demandBackend struct {
	mu       sync.Mutex
	floorW   float64
	namepW   float64
	demandW  float64
	perfPerW float64
}

func newDemandBackend(demandW float64) *demandBackend {
	return &demandBackend{floorW: 45, namepW: 61, demandW: demandW, perfPerW: 1.0 / 16}
}

// setDemand moves the workload's draw target.
func (b *demandBackend) setDemand(w float64) {
	b.mu.Lock()
	b.demandW = w
	b.mu.Unlock()
}

func (b *demandBackend) Apply(capW float64) (float64, float64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	eff := math.Min(capW, b.namepW)
	var draw float64
	switch {
	case eff <= 0:
		draw = 0
	case eff < b.floorW:
		draw = eff
	default:
		draw = math.Min(math.Max(b.demandW, b.floorW), eff)
	}
	perf := (draw - b.floorW) * b.perfPerW
	if perf < 0 {
		perf = 0
	}
	return perf, draw, nil
}

func (b *demandBackend) SoC() float64        { return 0.5 }
func (b *demandBackend) IdleFloorW() float64 { return b.floorW }
func (b *demandBackend) NameplateW() float64 { return b.namepW }

// UtilityCurve characterizes the server's cap → perf capacity on the
// shared 2 W grid, floor to nameplate — 9 points per member, so a
// 125-agent shard's flat DP stays small and its rollup cheap.
func (b *demandBackend) UtilityCurve() ([]cluster.CapPoint, error) {
	var pts []cluster.CapPoint
	for w := b.floorW; w <= b.namepW+1e-9; w += cluster.ServerCapStepW {
		pts = append(pts, cluster.CapPoint{CapW: w, Perf: (w - b.floorW) * b.perfPerW, GridW: w})
	}
	return pts, nil
}

// drillClock is the drill's shared wall clock for HA elections,
// advanced in lockstep with trace time so the leadership TTLs are
// deterministic under -race and fast regardless of interval length.
type drillClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *drillClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *drillClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// shardNode is one shard coordinator process: a coordinator (in an HA
// pair), its ShardCoordinator wrapper, and the trunk server the global
// dials. alive=false models a crashed process — it is not stepped and
// its trunk server is closed.
type shardNode struct {
	coord *Coordinator
	ha    *HA
	sc    *ShardCoordinator
	trunk *BinaryServer
	alive bool
}

// drillShard is one shard of the tree: its fleet slice behind one
// binary listener, and its HA pair of coordinator nodes.
type drillShard struct {
	agents   []*Agent
	backends []*demandBackend
	agentSrv *BinaryServer
	nodes    []*shardNode
}

// TwoTierOptions parameterizes a drill.
type TwoTierOptions struct {
	Shards         int
	AgentsPerShard int
	Intervals      int
	// IntervalS is the control interval in trace seconds (default 300).
	IntervalS float64
	// ClusterCapW defaults to 52 W per agent — between the 45 W idle
	// floor and the 61 W nameplate, so the cap binds.
	ClusterCapW float64
	// AgentLeaseS is the draw lease shard coordinators grant (default
	// 2 intervals); the shard budget lease is 3 intervals and the
	// reclaim window covers both.
	AgentLeaseS float64
	Seed        int64
	// KillLeaderStep, when > 0, crashes the leading coordinator node of
	// KillShard at the start of that interval (1-based): the shard's
	// standby takes over by election.
	KillLeaderStep int
	// KillShardStep, when > 0, crashes BOTH coordinator nodes of
	// KillShard: the global expires the shard and reserves its budget
	// until the reclaim window passes.
	KillShardStep int
	KillShard     int
	// SaturateStep, when > 0, raises SaturateShard's agents to
	// nameplate demand at that interval: the following global interval
	// must move headroom toward it.
	SaturateStep  int
	SaturateShard int
	// LeaseIv, when > 0, switches both tiers to protocol-clock leases:
	// shard coordinators grant agent leases of LeaseIv of their own
	// intervals, the global grants shard budget leases of LeaseIv+1
	// global intervals, and everything ages at IntervalS.
	LeaseIv int
	// RestartGlobalStep, when > 0, discards the global apportioner at
	// the start of that interval (1-based) and boots a fresh one with a
	// zero interval counter: in clock mode it must rehydrate from a
	// shard majority before it may grant again, and the intervals it
	// then mints must never duplicate its predecessor's.
	RestartGlobalStep int
}

func (o *TwoTierOptions) defaults() error {
	if o.Shards <= 0 || o.AgentsPerShard <= 0 || o.Intervals <= 0 {
		return fmt.Errorf("ctrlplane: two-tier drill needs shards, agents, and intervals")
	}
	if o.IntervalS <= 0 {
		o.IntervalS = 300
	}
	if o.ClusterCapW <= 0 {
		o.ClusterCapW = 52 * float64(o.Shards*o.AgentsPerShard)
	}
	if o.AgentLeaseS <= 0 {
		o.AgentLeaseS = 2 * o.IntervalS
	}
	if o.KillShard < 0 || o.KillShard >= o.Shards || o.SaturateShard < 0 || o.SaturateShard >= o.Shards {
		return fmt.Errorf("ctrlplane: drill shard target out of range")
	}
	return nil
}

// TwoTierIntervalStat is one interval's measured outcome.
type TwoTierIntervalStat struct {
	T    float64 `json:"t"`
	CapW float64 `json:"capW"`
	// SumBudgetsW sums the global's granted shard budgets this
	// interval; ReservedW is the silent-shard reservation.
	SumBudgetsW float64 `json:"sumBudgetsW"`
	ReservedW   float64 `json:"reservedW"`
	RebalancedW float64 `json:"rebalancedW"`
	// AgentCapSumW sums every agent's enforced cap — the tree's hard
	// invariant is AgentCapSumW ≤ CapW at every interval.
	AgentCapSumW float64 `json:"agentCapSumW"`
	// BudgetsW is the per-shard granted-budget ledger after this
	// interval's grant fan-out.
	BudgetsW    []float64 `json:"budgetsW"`
	GlobalAlive int       `json:"globalAlive"`
	// WallNs is the wall-clock cost of the whole control interval
	// (every shard step plus the global step).
	WallNs int64 `json:"wallNs"`
}

// TwoTierResult is a drill's full outcome.
type TwoTierResult struct {
	Intervals []TwoTierIntervalStat
	// Violations lists every broken invariant (empty on a passing
	// drill).
	Violations []string
	// ShardBudgetW is the final granted budget per shard.
	ShardBudgetW []float64
	// Failovers counts shard-tier leadership takeovers.
	Failovers int
	Stats     GlobalStats
}

// capEps absorbs float accumulation across a fleet-wide sum.
const capEps = 1e-6

// RunTwoTierDrill builds the sharded topology, drives it for the
// configured intervals with the scripted chaos, and checks the cap
// invariant every interval.
func RunTwoTierDrill(opts TwoTierOptions) (*TwoTierResult, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	ctx := context.Background()
	clock := &drillClock{t: time.Unix(0, 0)}
	termTTL := time.Duration(1.5 * opts.IntervalS * float64(time.Second))

	shards := make([]*drillShard, opts.Shards)
	evenBudget := opts.ClusterCapW / float64(opts.Shards)
	defer func() {
		for _, sh := range shards {
			if sh == nil {
				continue
			}
			for _, nd := range sh.nodes {
				if nd.trunk != nil {
					nd.trunk.Close()
				}
				nd.coord.Close()
			}
			if sh.agentSrv != nil {
				sh.agentSrv.Close()
			}
		}
	}()

	refs := make([]ShardRef, opts.Shards)
	for s := 0; s < opts.Shards; s++ {
		sh := &drillShard{}
		shards[s] = sh
		eps := make(map[int]CtrlEndpoint, opts.AgentsPerShard)
		for j := 0; j < opts.AgentsPerShard; j++ {
			id := s*opts.AgentsPerShard + j
			// Idle-but-alive demand just above the floor; saturation is
			// scripted per shard.
			b := newDemandBackend(47)
			a, err := NewAgent(AgentConfig{ID: id, Backend: b, Version: "2tier"})
			if err != nil {
				return nil, err
			}
			sh.agents = append(sh.agents, a)
			sh.backends = append(sh.backends, b)
			eps[id] = a
		}
		srv, err := StartBinaryServer("127.0.0.1:0", BinaryServerConfig{Endpoints: eps})
		if err != nil {
			return nil, err
		}
		sh.agentSrv = srv
		agentRefs := make([]AgentRef, 0, opts.AgentsPerShard)
		for _, a := range sh.agents {
			agentRefs = append(agentRefs, AgentRef{ID: a.ID(), URL: srv.URL()})
		}

		elect := NewMemElection()
		ref := ShardRef{ID: s}
		for r := 0; r < 2; r++ {
			coord, err := New(Config{
				Agents:    agentRefs,
				Strategy:  StrategyUtility,
				FloorW:    45,
				LeaseS:    opts.AgentLeaseS,
				LeaseIv:   opts.LeaseIv,
				IntervalS: opts.IntervalS,
				Seed:      opts.Seed + int64(s*2+r),
			})
			if err != nil {
				return nil, err
			}
			ha, err := NewHA(coord, HAConfig{
				ID:       fmt.Sprintf("shard%d-%s", s, string(rune('a'+r))),
				Election: elect,
				TermTTL:  termTTL,
				Clock:    clock.now,
				Priority: r,
			})
			if err != nil {
				return nil, err
			}
			sc, err := NewShardCoordinatorHA(ha, ShardConfig{Shard: s, InitialBudgetW: evenBudget})
			if err != nil {
				return nil, err
			}
			trunk, err := StartBinaryServer("127.0.0.1:0", sc.ShardBinaryConfig(BinaryServerConfig{}))
			if err != nil {
				return nil, err
			}
			sh.nodes = append(sh.nodes, &shardNode{coord: coord, ha: ha, sc: sc, trunk: trunk, alive: true})
			ref.URLs = append(ref.URLs, trunk.URL())
		}
		refs[s] = ref
	}

	gcfg := GlobalConfig{
		Shards:   refs,
		LeaseS:   3 * opts.IntervalS,
		ReclaimS: opts.AgentLeaseS + opts.IntervalS,
		Seed:     opts.Seed,
	}
	if opts.LeaseIv > 0 {
		gcfg.LeaseIv = opts.LeaseIv + 1
		gcfg.IntervalS = opts.IntervalS
	}
	global, err := NewGlobal(gcfg)
	if err != nil {
		return nil, err
	}
	defer func() { global.Close() }()

	res := &TwoTierResult{}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	now := 0.0
	var lastGIv uint64
	for iv := 1; iv <= opts.Intervals; iv++ {
		now += opts.IntervalS
		clock.advance(time.Duration(opts.IntervalS * float64(time.Second)))

		if iv == opts.RestartGlobalStep {
			// Crash-restart the apex: the replacement boots with a zero
			// interval counter and must recover it from the shards.
			global.Close()
			if global, err = NewGlobal(gcfg); err != nil {
				return nil, err
			}
		}
		if iv == opts.KillLeaderStep {
			sh := shards[opts.KillShard]
			for _, nd := range sh.nodes {
				if _, lead := nd.ha.Leader(); lead && nd.alive {
					nd.alive = false
					nd.trunk.Close()
					break
				}
			}
		}
		if iv == opts.KillShardStep {
			for _, nd := range shards[opts.KillShard].nodes {
				if nd.alive {
					nd.alive = false
					nd.trunk.Close()
				}
			}
		}
		if iv == opts.SaturateStep {
			sh := shards[opts.SaturateShard]
			for j, b := range sh.backends {
				b.setDemand(b.NameplateW())
				if err := sh.agents[j].Refresh(); err != nil {
					return nil, err
				}
			}
		}

		start := time.Now()
		for _, sh := range shards {
			for _, nd := range sh.nodes {
				if !nd.alive {
					continue
				}
				if _, err := nd.sc.Step(ctx, now); err != nil {
					return nil, fmt.Errorf("shard step at t=%g: %w", now, err)
				}
			}
		}
		gres, err := global.Step(ctx, now, opts.ClusterCapW)
		if err != nil {
			return nil, fmt.Errorf("global step at t=%g: %w", now, err)
		}
		wall := time.Since(start)
		if gres.Iv > 0 {
			// Interval-number uniqueness across the restart: a duplicate
			// would let two different budget fan-outs share one lease
			// window.
			if gres.Iv <= lastGIv {
				violate("t=%g: global minted interval %d, already used through %d", now, gres.Iv, lastGIv)
			}
			lastGIv = gres.Iv
		}

		// Dead shards' agents tick on their own wall clocks (the daemon
		// loop); live ones were ticked by their coordinator's scrapes.
		stat := TwoTierIntervalStat{T: now, CapW: opts.ClusterCapW, RebalancedW: gres.RebalancedW,
			ReservedW: gres.ReservedW, WallNs: wall.Nanoseconds()}
		for i := range gres.Budgets {
			if gres.Granted[i] {
				stat.SumBudgetsW += gres.Budgets[i]
			}
			if gres.Alive[i] {
				stat.GlobalAlive++
			}
		}
		for _, sh := range shards {
			for _, a := range sh.agents {
				if err := a.Tick(now); err != nil {
					return nil, err
				}
				stat.AgentCapSumW += a.CapW()
			}
		}
		// The tree's invariants, checked every interval.
		if stat.SumBudgetsW+gres.ReservedW > opts.ClusterCapW+capEps {
			violate("t=%g: granted %g W + reserved %g W exceeds cluster cap %g W",
				now, stat.SumBudgetsW, gres.ReservedW, opts.ClusterCapW)
		}
		var ledger float64
		for i := range refs {
			w := global.GrantedShardW(i)
			stat.BudgetsW = append(stat.BudgetsW, w)
			ledger += w
		}
		if ledger > opts.ClusterCapW+capEps {
			violate("t=%g: shard budget ledger sums to %g W over cluster cap %g W", now, ledger, opts.ClusterCapW)
		}
		if stat.AgentCapSumW > opts.ClusterCapW+capEps {
			violate("t=%g: enforced agent caps sum to %g W over cluster cap %g W",
				now, stat.AgentCapSumW, opts.ClusterCapW)
		}
		res.Intervals = append(res.Intervals, stat)
	}

	for i := range refs {
		res.ShardBudgetW = append(res.ShardBudgetW, global.GrantedShardW(i))
	}
	for _, sh := range shards {
		for _, nd := range sh.nodes {
			res.Failovers += nd.ha.Failovers()
		}
	}
	res.Stats = global.Stats()
	return res, nil
}

// HierBenchCell is the psbench "binary-2tier" measurement: interval
// latency of the whole two-tier control loop (all shard steps plus the
// global step) at a given fleet size, comparable to the flat binary
// cell at the same agent count.
type HierBenchCell struct {
	Transport string `json:"transport"`
	Agents    int    `json:"agents"`
	Shards    int    `json:"shards"`
	Runs      int    `json:"runs"`
	Intervals int    `json:"intervals_per_run"`
	// NsPerInterval is the minimum across runs of mean wall time per
	// two-tier control interval.
	NsPerInterval int64 `json:"ns_per_interval"`
}

// RunHierBench measures the two-tier control loop: Runs passes of
// Intervals each over a fresh drill topology, minimum-of-runs mean
// interval latency reported (the flat-bench policy). The drill's cap
// invariant doubles as the validity check — a run with violations or
// failed grants is invalid.
func RunHierBench(agents, shardCount, runs, intervals int) (HierBenchCell, error) {
	if shardCount <= 0 || agents <= 0 || agents%shardCount != 0 {
		return HierBenchCell{}, fmt.Errorf("ctrlplane: hier bench needs agents divisible by shards, got %d/%d", agents, shardCount)
	}
	if runs <= 0 {
		runs = 5
	}
	if intervals <= 0 {
		intervals = 10
	}
	cell := HierBenchCell{Transport: "binary-2tier", Agents: agents, Shards: shardCount, Runs: runs, Intervals: intervals}
	for run := 0; run < runs; run++ {
		res, err := RunTwoTierDrill(TwoTierOptions{
			Shards:         shardCount,
			AgentsPerShard: agents / shardCount,
			// Warmup is the drill's first two intervals (first assign
			// plus first renewal); measure the rest.
			Intervals: intervals + 2,
			Seed:      int64(run),
		})
		if err != nil {
			return HierBenchCell{}, err
		}
		if len(res.Violations) > 0 {
			return HierBenchCell{}, fmt.Errorf("ctrlplane: hier bench run violated invariants: %s", res.Violations[0])
		}
		var ns int64
		for _, iv := range res.Intervals[2:] {
			ns += iv.WallNs
		}
		ns /= int64(intervals)
		if run == 0 || ns < cell.NsPerInterval {
			cell.NsPerInterval = ns
		}
	}
	return cell, nil
}
