package ctrlplane

import (
	"fmt"

	"powerstruggle/internal/cluster"
)

// The shard↔global trunk of the two-tier budget tree (docs/WIRE.md §6,
// docs/CONTROL_PLANE.md §Hierarchy). The global apportioner treats a
// shard coordinator the way a shard coordinator treats an agent: it
// scrapes a ShardReport each interval (the membership heartbeat), and
// grants a ShardBudget carrying the global (Epoch, Seq) pair, which
// the shard fences exactly as agents fence assignments. The trunk is
// binary-only — it reuses the PR 7 frame machinery, and a global tier
// fanning out to at most a few dozen shards per interval has no need
// for a JSON fallback.

// ShardReport is one shard coordinator's interval summary, shipped up
// the trunk: membership, the rolled-up cap-utility curve the global DP
// apportions against, and the live draw/demand the headroom rebalancer
// consumes.
type ShardReport struct {
	V     int `json:"v"`
	Shard int `json:"shard"`
	// Epoch and Seq are the shard's local leadership epoch and step
	// counter — the shard tier's own fencing pair, distinct from the
	// global epoch the budget grants carry.
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
	// T is the shard clock at the summarized interval.
	T float64 `json:"t"`
	// Leading reports that the answering coordinator currently leads
	// its shard; the global tries the shard's trunk URLs in order until
	// a leader answers.
	Leading bool `json:"leading"`
	// Agents counts members holding a live membership lease.
	Agents int `json:"agents"`
	// FloorW sums the live members' idle floors; DemandW estimates the
	// watts the shard could usefully absorb right now (saturated
	// members count at nameplate, idle ones at their draw); UsedW sums
	// the scraped grid draw; CapW sums the budgets in force.
	FloorW  float64 `json:"floorW"`
	DemandW float64 `json:"demandW"`
	UsedW   float64 `json:"usedW"`
	CapW    float64 `json:"capW"`
	// BudgetW is the shard budget in force (the last applied
	// ShardBudget grant; the bootstrap budget before the first).
	BudgetW float64 `json:"budgetW"`
	// Starved reports the shard's budget lease has lapsed — it is
	// holding its last budget and granting nothing larger.
	Starved bool `json:"starved,omitempty"`
	// Curve is the shard's aggregate cap-utility rollup
	// (cluster.RollupCurves); empty when any live member is curveless,
	// which sends the global to its even-share fallback for this shard.
	Curve []cluster.CapPoint `json:"curve,omitempty"`
	// GEpoch/GSeq/GIv are the global-tier fencing epoch, sequence, and
	// protocol-clock interval of the last applied budget grant (all 0
	// before the first). A restarting global apportioner rehydrates its
	// sequence and interval counters from a majority of these, so a
	// crash–restart cannot re-issue interval numbers down the trunk.
	GEpoch uint64 `json:"gEpoch,omitempty"`
	GSeq   uint64 `json:"gSeq,omitempty"`
	GIv    uint64 `json:"gIv,omitempty"`
}

// Validate enforces the shard-report invariants.
func (r ShardReport) Validate() error {
	if r.V != ProtocolV {
		return fmt.Errorf("ctrlplane: shard report protocol v%d, want v%d", r.V, ProtocolV)
	}
	if r.Shard < 0 {
		return fmt.Errorf("ctrlplane: shard report shard %d", r.Shard)
	}
	if r.Agents < 0 {
		return fmt.Errorf("ctrlplane: shard report %d agents", r.Agents)
	}
	if !finite(r.T) || r.T < 0 {
		return fmt.Errorf("ctrlplane: shard report time %g", r.T)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"floor", r.FloorW}, {"demand", r.DemandW}, {"used", r.UsedW},
		{"cap", r.CapW}, {"budget", r.BudgetW},
	} {
		if !finite(f.v) || f.v < 0 {
			return fmt.Errorf("ctrlplane: shard report %s %g W", f.name, f.v)
		}
	}
	prev := -1.0
	for i, p := range r.Curve {
		if !finite(p.CapW) || !finite(p.Perf) || !finite(p.GridW) || p.CapW < 0 || p.Perf < 0 || p.GridW < 0 {
			return fmt.Errorf("ctrlplane: shard report curve point %d: %+v", i, p)
		}
		if p.CapW <= prev {
			return fmt.Errorf("ctrlplane: shard report curve caps not strictly increasing at %d", i)
		}
		prev = p.CapW
	}
	return nil
}

// ShardReportRequest asks one shard coordinator for its trunk summary.
type ShardReportRequest struct {
	V     int     `json:"v"`
	Shard int     `json:"shard"`
	T     float64 `json:"t"`
	HasT  bool    `json:"hasT,omitempty"`
	// Iv broadcasts the global protocol clock on every trunk scrape (0
	// when the global runs clockless). Scrapes reach every shard each
	// interval even when the grant deadband skips a re-grant, so the
	// shard's clock keeps advancing.
	Iv uint64 `json:"iv,omitempty"`
}

// Validate enforces the request invariants.
func (r ShardReportRequest) Validate() error {
	if r.V != ProtocolV {
		return fmt.Errorf("ctrlplane: shard report request protocol v%d, want v%d", r.V, ProtocolV)
	}
	if r.Shard < 0 {
		return fmt.Errorf("ctrlplane: shard report request shard %d", r.Shard)
	}
	if r.HasT && (!finite(r.T) || r.T < 0) {
		return fmt.Errorf("ctrlplane: shard report request time %g", r.T)
	}
	if !r.HasT && r.T != 0 {
		return fmt.Errorf("ctrlplane: shard report request time %g without hasT", r.T)
	}
	return nil
}

// ShardBudgetRequest grants one shard its slice of the cluster cap —
// the trunk mirror of AssignRequest, fenced by the global (Epoch, Seq)
// pair.
type ShardBudgetRequest struct {
	V     int     `json:"v"`
	Epoch uint64  `json:"epoch"`
	Seq   uint64  `json:"seq"`
	Shard int     `json:"shard"`
	T     float64 `json:"t"`
	CapW  float64 `json:"capW"`
	// LeaseS is the budget lease: past it the shard holds its last
	// budget and reports itself starved. Zero grants a non-lapsing
	// budget.
	LeaseS float64 `json:"leaseS"`
	// Iv/LeaseIv/IvS mirror AssignRequest's protocol-clock triple: the
	// shard's budget lease lapses once its effective global interval
	// reaches Iv+LeaseIv, instead of at T+LeaseS.
	Iv      uint64  `json:"iv,omitempty"`
	LeaseIv uint64  `json:"leaseIv,omitempty"`
	IvS     float64 `json:"ivS,omitempty"`
}

// Validate enforces the budget-grant invariants.
func (r ShardBudgetRequest) Validate() error {
	if r.V != ProtocolV {
		return fmt.Errorf("ctrlplane: shard budget protocol v%d, want v%d", r.V, ProtocolV)
	}
	if r.Epoch == 0 {
		return fmt.Errorf("ctrlplane: shard budget epoch 0 (epochs start at 1)")
	}
	if r.Seq == 0 {
		return fmt.Errorf("ctrlplane: shard budget seq 0 (sequence numbers start at 1)")
	}
	if r.Shard < 0 {
		return fmt.Errorf("ctrlplane: shard budget shard %d", r.Shard)
	}
	if !finite(r.T) || r.T < 0 {
		return fmt.Errorf("ctrlplane: shard budget time %g", r.T)
	}
	if !finite(r.CapW) || r.CapW < 0 {
		return fmt.Errorf("ctrlplane: shard budget cap %g W", r.CapW)
	}
	if !finite(r.LeaseS) || r.LeaseS < 0 {
		return fmt.Errorf("ctrlplane: shard budget lease %g s", r.LeaseS)
	}
	if err := validateClockFields(r.Iv, r.LeaseIv, r.IvS); err != nil {
		return fmt.Errorf("ctrlplane: shard budget %w", err)
	}
	return nil
}

// ShardBudgetResponse acknowledges a budget grant: Applied when the
// grant took; otherwise Epoch/Seq echo the shard's fencing ledger so
// the global can tell a duplicate of its own grant (in force, counts
// as granted) from a refusal by a shard that has moved to a newer
// global epoch (this apportioner is deposed).
type ShardBudgetResponse struct {
	V       int     `json:"v"`
	Shard   int     `json:"shard"`
	Epoch   uint64  `json:"epoch"`
	Seq     uint64  `json:"seq"`
	Applied bool    `json:"applied"`
	CapW    float64 `json:"capW"`
	// Iv is the highest global protocol-clock interval the shard has
	// observed (0 while clockless).
	Iv uint64 `json:"iv,omitempty"`
}
