package ctrlplane

import (
	"testing"
	"time"
)

// A small healthy tree: every interval must grant every shard, hold
// the cap invariant, and keep headroom churn bounded (the stateless
// DP tie-breaks its spare watts unevenly each interval and the
// rebalancer spreads them back — a small constant churn, not drift).
func TestTwoTierDrillSmall(t *testing.T) {
	res, err := RunTwoTierDrill(TwoTierOptions{
		Shards: 3, AgentsPerShard: 8, Intervals: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	for _, iv := range res.Intervals {
		if iv.GlobalAlive != 3 {
			t.Fatalf("t=%g: %d shards alive, want 3", iv.T, iv.GlobalAlive)
		}
		if iv.SumBudgetsW <= 0 {
			t.Fatalf("t=%g: nothing granted", iv.T)
		}
	}
	// Identically idle shards: churn stays a small fraction of the cap
	// and every shard keeps at least its floor once settled.
	last := res.Intervals[len(res.Intervals)-1]
	if last.RebalancedW > last.CapW/4 {
		t.Fatalf("idle tree moving %g W of headroom at the end (cap %g W)", last.RebalancedW, last.CapW)
	}
	floor := 8 * 45.0
	for i, b := range res.ShardBudgetW {
		if b < floor-1e-6 {
			t.Fatalf("shard %d ended below its floor: %g W < %g W", i, b, floor)
		}
	}
	if res.Failovers != 0 {
		t.Fatalf("healthy tree recorded %d failovers", res.Failovers)
	}
}

// Saturating one shard must pull headroom toward it within one global
// interval of the demand being visible, and its budget must end above
// the even share.
func TestTwoTierHeadroomRebalance(t *testing.T) {
	opts := TwoTierOptions{
		Shards: 3, AgentsPerShard: 8, Intervals: 14, Seed: 2,
		SaturateStep: 4, SaturateShard: 1,
	}
	res, err := RunTwoTierDrill(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// The demand jump lands at interval 4 (1-based); the shard reports
	// it that same interval, so the global interval at index 3 is the
	// first that can move headroom toward it.
	if got := res.Intervals[opts.SaturateStep-1].RebalancedW; got <= 0 {
		t.Fatalf("no headroom moved in the saturation interval (moved %g W)", got)
	}
	// Decrease-before-increase defers the granted increase by one
	// interval: the saturated shard's granted budget must be up within
	// one interval of the rebalance decision.
	pre := res.Intervals[opts.SaturateStep-2].BudgetsW[1]
	post := res.Intervals[opts.SaturateStep].BudgetsW[1]
	if post <= pre {
		t.Fatalf("saturated shard's grant did not grow within one interval (%g W -> %g W)", pre, post)
	}
	even := res.Intervals[0].CapW / 3
	if res.ShardBudgetW[1] <= even {
		t.Fatalf("saturated shard ended at %g W, not above the even share %g W", res.ShardBudgetW[1], even)
	}
	if res.ShardBudgetW[1] <= res.ShardBudgetW[0] || res.ShardBudgetW[1] <= res.ShardBudgetW[2] {
		t.Fatalf("saturated shard (%g W) did not end above the idle shards (%g, %g W)",
			res.ShardBudgetW[1], res.ShardBudgetW[0], res.ShardBudgetW[2])
	}
}

// Killing a shard's leading coordinator mid-campaign must fail over to
// the standby — warm, thanks to budgets granted to the whole trunk set
// — without the cluster cap ever being exceeded and without the global
// expiring the shard.
func TestTwoTierShardLeaderFailover(t *testing.T) {
	res, err := RunTwoTierDrill(TwoTierOptions{
		Shards: 3, AgentsPerShard: 8, Intervals: 14, Seed: 3,
		KillLeaderStep: 5, KillShard: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Failovers == 0 {
		t.Fatal("standby never took the shard over")
	}
	last := res.Intervals[len(res.Intervals)-1]
	if last.GlobalAlive != 3 {
		t.Fatalf("shard with a live standby expired at the global (%d alive)", last.GlobalAlive)
	}
	if res.ShardBudgetW[0] <= 0 {
		t.Fatal("failed-over shard holds no budget")
	}
}

// Killing a whole shard (both coordinator nodes) must reserve its last
// budget until the reclaim window passes — the watts its still-leased
// agents may draw — and only then return them to the pool, with the
// cap invariant holding throughout.
func TestTwoTierWholeShardLoss(t *testing.T) {
	res, err := RunTwoTierDrill(TwoTierOptions{
		Shards: 3, AgentsPerShard: 8, Intervals: 16, Seed: 4,
		KillShardStep: 5, KillShard: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	sawReserve := false
	for _, iv := range res.Intervals {
		if iv.ReservedW > 0 {
			sawReserve = true
		}
	}
	if !sawReserve {
		t.Fatal("dead shard's budget was never reserved")
	}
	if res.Stats.ShardExpiries == 0 {
		t.Fatal("global never expired the dead shard")
	}
	if res.Stats.Reclaims == 0 {
		t.Fatal("reserved budget was never reclaimed")
	}
	last := res.Intervals[len(res.Intervals)-1]
	if last.ReservedW != 0 {
		t.Fatalf("reservation still holding %g W at the end", last.ReservedW)
	}
	if last.GlobalAlive != 2 {
		t.Fatalf("%d shards alive at the end, want 2", last.GlobalAlive)
	}
	// The dead shard's agents fenced once their leases lapsed, so the
	// enforced-cap sum fell well below the cap.
	if last.AgentCapSumW >= last.CapW {
		t.Fatalf("agent caps sum to %g W with a dead shard (cap %g W)", last.AgentCapSumW, last.CapW)
	}
}

// The CI-gated scale drill: 1000 agents across 8 shards, with a shard
// leader killed and a shard saturated mid-run, under -race. Asserts
// the cap invariant every interval and a bounded interval latency.
func TestTwoTierDrill1000Agents(t *testing.T) {
	if testing.Short() {
		t.Skip("scale drill skipped in -short")
	}
	res, err := RunTwoTierDrill(TwoTierOptions{
		Shards: 8, AgentsPerShard: 125, Intervals: 16, Seed: 7,
		KillLeaderStep: 5, KillShard: 3,
		SaturateStep: 6, SaturateShard: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Failovers == 0 {
		t.Fatal("standby never took shard 3 over")
	}
	even := res.Intervals[0].CapW / 8
	if res.ShardBudgetW[6] <= even {
		t.Fatalf("saturated shard ended at %g W, not above even share %g W", res.ShardBudgetW[6], even)
	}
	for _, iv := range res.Intervals {
		if iv.WallNs > int64(30*time.Second) {
			t.Fatalf("interval at t=%g took %v; the two-tier loop is not keeping up",
				iv.T, time.Duration(iv.WallNs))
		}
	}
}

// Direct trunk-unit coverage: ShardBudget fencing mirrors agent
// assignment fencing.
func TestShardBudgetFencing(t *testing.T) {
	b := newDemandBackend(47)
	a, err := NewAgent(AgentConfig{ID: 0, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := StartBinaryServer("127.0.0.1:0", BinaryServerConfig{Endpoints: map[int]CtrlEndpoint{0: a}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	coord, err := New(Config{Agents: []AgentRef{{ID: 0, URL: srv.URL()}}, LeaseS: 600})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	sc, err := NewShardCoordinator(coord, ShardConfig{Shard: 4, InitialBudgetW: 100})
	if err != nil {
		t.Fatal(err)
	}

	grant := func(epoch, seq uint64, capW float64) ShardBudgetResponse {
		resp, err := sc.ApplyBudget(ShardBudgetRequest{
			V: ProtocolV, Epoch: epoch, Seq: seq, Shard: 4, T: 300, CapW: capW, LeaseS: 900,
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := grant(2, 5, 80); !resp.Applied || sc.BudgetW() != 80 {
		t.Fatalf("fresh grant not applied: %+v (budget %g)", resp, sc.BudgetW())
	}
	// A stale seq from the same epoch is refused with the ledger echoed.
	if resp := grant(2, 4, 200); resp.Applied || resp.Epoch != 2 || resp.Seq != 5 || resp.CapW != 80 {
		t.Fatalf("stale grant handled wrong: %+v", resp)
	}
	// A duplicate of the in-force grant satisfies the global's granted
	// criterion without Applied.
	if resp := grant(2, 5, 80); resp.Applied || resp.Epoch != 2 || resp.CapW != 80 {
		t.Fatalf("duplicate grant handled wrong: %+v", resp)
	}
	// An older epoch is fenced outright.
	if resp := grant(1, 99, 500); resp.Applied || sc.BudgetW() != 80 {
		t.Fatalf("old-epoch grant landed: %+v (budget %g)", resp, sc.BudgetW())
	}
	// A newer epoch takes over.
	if resp := grant(3, 1, 90); !resp.Applied || sc.BudgetW() != 90 {
		t.Fatalf("new-epoch grant refused: %+v (budget %g)", resp, sc.BudgetW())
	}
	if sc.Starved() {
		t.Fatal("freshly granted shard reports starved")
	}

	// A mismatched shard id is an error, not a silent ack.
	if _, err := sc.ApplyBudget(ShardBudgetRequest{V: ProtocolV, Epoch: 9, Seq: 9, Shard: 0, T: 1, CapW: 1, LeaseS: 1}); err == nil {
		t.Fatal("grant for another shard accepted")
	}
	// Report before the first step is refused (nothing to summarize).
	if _, err := sc.Report(ShardReportRequest{V: ProtocolV, Shard: 4}); err == nil {
		t.Fatal("report served before the first control interval")
	}
}

// A shard whose budget lease lapses must hold its last budget and
// report itself starved — never grow.
func TestShardBudgetLeaseLapse(t *testing.T) {
	b := newDemandBackend(47)
	a, err := NewAgent(AgentConfig{ID: 0, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := StartBinaryServer("127.0.0.1:0", BinaryServerConfig{Endpoints: map[int]CtrlEndpoint{0: a}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	coord, err := New(Config{Agents: []AgentRef{{ID: 0, URL: srv.URL()}}, LeaseS: 6000})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	sc, err := NewShardCoordinator(coord, ShardConfig{Shard: 0, InitialBudgetW: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ApplyBudget(ShardBudgetRequest{V: ProtocolV, Epoch: 1, Seq: 1, Shard: 0, T: 300, CapW: 90, LeaseS: 600}); err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	if _, err := sc.Step(ctx, 600); err != nil {
		t.Fatal(err)
	}
	if sc.Starved() {
		t.Fatal("starved inside the lease window")
	}
	// Past T+LeaseS with no fresh grant: starved, budget held.
	if _, err := sc.Step(ctx, 1200); err != nil {
		t.Fatal(err)
	}
	if !sc.Starved() {
		t.Fatal("lapsed budget lease not reported starved")
	}
	if sc.BudgetW() != 90 {
		t.Fatalf("starved shard moved its budget to %g W", sc.BudgetW())
	}
	rep, err := sc.Report(ShardReportRequest{V: ProtocolV, Shard: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Starved {
		t.Fatal("trunk report does not carry the starved flag")
	}
	// A fresh grant clears starvation.
	if _, err := sc.ApplyBudget(ShardBudgetRequest{V: ProtocolV, Epoch: 1, Seq: 2, Shard: 0, T: 1200, CapW: 95, LeaseS: 600}); err != nil {
		t.Fatal(err)
	}
	if sc.Starved() || sc.BudgetW() != 95 {
		t.Fatalf("fresh grant did not clear starvation (starved=%v budget=%g)", sc.Starved(), sc.BudgetW())
	}
}
