package ctrlplane

import (
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"powerstruggle/internal/telemetry"
)

// This file is the quorum election store: the term replicated across
// the coordinator pool itself, with no shared file or external service
// behind it. Every pool member runs a QuorumVoter (dumb acceptor
// storage served at /ctrl/vote), and QuorumElection commits each
// campaign with a single-decree consensus round in the CASPaxos style:
//
//	prepare(ballot)        → a majority grants, each reporting its last
//	                         accepted (ballot, term)
//	adopt                  → the term with the highest accepted ballot
//	                         is the current value (zero term if none)
//	decide                 → campaignDecide, the same acquire/renew/
//	                         observe rule the other stores apply
//	accept(ballot, term')  → a majority acks, committing the decision
//
// The accept round runs even when the decision leaves the term
// unchanged: writing the adopted value back is what makes each
// campaign a linearizable compare-and-swap — a term seen on a minority
// of voters may never have committed at all, and only the write-back
// promotes it to a fact later campaigns must observe.
//
// Safety is quorum intersection. A committed term sits on a majority;
// any later prepare also needs a majority; the two overlap in at least
// one voter, which reports the committed value (and its ballot beats
// any uncommitted leftover, because an acceptor only accepts at its
// promised ballot). So epochs can only move through campaignDecide —
// strictly monotonic — and a minority partition, unable to assemble
// either quorum, can never mint a leader. Liveness holds with any
// minority of voters down. Voter state is in-memory: a restarted voter
// rejoins empty, so the pool's guarantees assume fewer than a majority
// of voters are down or freshly restarted at once (the same spirit in
// which FileElection assumes its one filesystem survives, weakened to
// a minority).
//
// Voters never judge expiry or leadership: campaignDecide applies the
// caller's clock, exactly like the other stores, and cluster safety
// rests on agent-side epoch fencing rather than on anyone's clock.

// QuorumConfig parameterizes a quorum election store proposer.
type QuorumConfig struct {
	// Voters lists every pool member's voter base URL, this
	// coordinator's own included. A campaign commits on a majority
	// (len/2 + 1), so an odd pool size buys the most crash tolerance.
	// The list is the pool: every member must be configured with the
	// same set.
	Voters []string
	// Timeout bounds each voter RPC (default 1s). There are no
	// retries: a campaign that cannot reach a majority errors, and the
	// HA layer treats that as "not leader", which is always safe.
	Timeout time.Duration
	// Transport is the HTTP transport (nil: http.DefaultTransport);
	// the chaos suite hands a fault injector in.
	Transport http.RoundTripper
	// Telemetry, when non-nil, registers the quorum gauges. May be
	// nil.
	Telemetry *telemetry.Hub
}

// QuorumElection implements Election over a pool of voter endpoints.
// Safe for concurrent use; each coordinator of the pool holds its own
// QuorumElection over the same voter list. Voters may be addressed
// over either wire encoding — http(s):// posts JSON to /ctrl/vote,
// tcp:// sends binary vote frames.
type QuorumElection struct {
	voters  []string
	quorum  int
	dialer  *wireDialer
	timeout time.Duration
	tel     *quorumTel

	mu    sync.Mutex
	round uint64 // high half of the next ballot; bumped past rejections
}

// NewQuorumElection builds a proposer over the given voter pool.
func NewQuorumElection(cfg QuorumConfig) (*QuorumElection, error) {
	if len(cfg.Voters) == 0 {
		return nil, fmt.Errorf("ctrlplane: quorum election needs voter URLs")
	}
	voters := make([]string, len(cfg.Voters))
	for i, raw := range cfg.Voters {
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("ctrlplane: quorum voter url: %w", err)
		}
		if (u.Scheme != "http" && u.Scheme != "https" && u.Scheme != "tcp") || u.Host == "" {
			return nil, fmt.Errorf("ctrlplane: quorum voter url %q (need http(s):// or tcp:// host[:port])", raw)
		}
		voters[i] = trimSlash(raw)
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	tel := newQuorumTel(cfg.Telemetry)
	tel.setVoters(len(voters))
	return &QuorumElection{
		voters:  voters,
		quorum:  len(voters)/2 + 1,
		dialer:  newWireDialer(cfg.Transport, nil),
		timeout: timeout,
		tel:     tel,
	}, nil
}

// Close releases the proposer's pooled voter connections.
func (q *QuorumElection) Close() { q.dialer.Close() }

// Quorum returns the majority size campaigns commit on.
func (q *QuorumElection) Quorum() int { return q.quorum }

// Campaign implements Election: one consensus round as described atop
// this file. An error means the round could not reach a majority —
// the caller has learned nothing and must not act as leader.
func (q *QuorumElection) Campaign(id string, now time.Time, ttl time.Duration) (Term, error) {
	if err := validCampaign(id, ttl); err != nil {
		return Term{}, err
	}
	cur, ballot, err := q.prepare(id)
	if err != nil {
		q.tel.noteCampaign(0, false)
		return Term{}, err
	}
	next := campaignDecide(cur, id, now, ttl)
	acks, err := q.accept(ballot, next)
	if err != nil {
		q.tel.noteCampaign(acks, false)
		return Term{}, err
	}
	q.tel.noteCampaign(acks, true)
	return next, nil
}

// Resign implements Election: expire id's term, keeping its epoch. A
// no-op when id does not hold the term.
func (q *QuorumElection) Resign(id string) error {
	cur, ballot, err := q.prepare(id)
	if err != nil {
		return err
	}
	if cur.Leader != id {
		return nil
	}
	cur.Expires = time.Time{}
	_, err = q.accept(ballot, cur)
	return err
}

// prepare claims a fresh ballot on a majority and returns the newest
// accepted term among the granting voters (zero Term when the store
// is empty).
func (q *QuorumElection) prepare(id string) (Term, uint64, error) {
	b := q.nextBallot(id)
	outs := q.ask(VoteRequest{V: ProtocolV, Phase: VotePrepare, Ballot: b})
	var cur Term
	var curB uint64
	grants := 0
	for _, o := range outs {
		if o.err != nil {
			continue
		}
		if !o.resp.Granted {
			q.observeRejection(o.resp.Promise)
			continue
		}
		grants++
		if o.resp.AcceptedBallot > curB {
			curB, cur = o.resp.AcceptedBallot, termFromWire(*o.resp.Term)
		}
	}
	if grants < q.quorum {
		return Term{}, 0, fmt.Errorf("ctrlplane: quorum prepare granted by %d of %d voters (need %d)",
			grants, len(q.voters), q.quorum)
	}
	return cur, b, nil
}

// accept writes next back under ballot b; the term commits iff a
// majority acks.
func (q *QuorumElection) accept(b uint64, next Term) (int, error) {
	w := termToWire(next)
	outs := q.ask(VoteRequest{V: ProtocolV, Phase: VoteAccept, Ballot: b, Term: &w})
	grants := 0
	for _, o := range outs {
		if o.err != nil {
			continue
		}
		if o.resp.Granted {
			grants++
		} else {
			q.observeRejection(o.resp.Promise)
		}
	}
	if grants < q.quorum {
		return grants, fmt.Errorf("ctrlplane: quorum accept acked by %d of %d voters (need %d)",
			grants, len(q.voters), q.quorum)
	}
	return grants, nil
}

// voteOutcome is one voter's answer to one phase.
type voteOutcome struct {
	resp VoteResponse
	err  error
}

// ask runs one phase against every voter concurrently.
func (q *QuorumElection) ask(req VoteRequest) []voteOutcome {
	out := make([]voteOutcome, len(q.voters))
	fanOut(context.Background(), len(q.voters), len(q.voters), func(i int) {
		out[i].resp, out[i].err = q.vote(q.voters[i], req)
	})
	return out
}

// vote sends one phase to one voter over its URL's wire encoding.
func (q *QuorumElection) vote(base string, req VoteRequest) (VoteResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), q.timeout)
	defer cancel()
	resp, err := q.dialer.forURL(base).Vote(ctx, base, req)
	if err != nil {
		return VoteResponse{}, fmt.Errorf("ctrlplane: voter %s: %w", base, err)
	}
	return resp, nil
}

// nextBallot mints a fresh, pool-unique ballot: a per-proposer round
// counter in the high half, a hash of the candidate identity in the
// low half so two proposers never share a ballot number.
func (q *QuorumElection) nextBallot(id string) uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.round++
	return q.round<<32 | uint64(hashID(id))
}

// observeRejection fast-forwards the round counter past a rejecting
// voter's promise, so the next campaign's ballot can win.
func (q *QuorumElection) observeRejection(promise uint64) {
	q.mu.Lock()
	if r := promise >> 32; r > q.round {
		q.round = r
	}
	q.mu.Unlock()
}

func hashID(id string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return h.Sum32()
}

// termToWire encodes a term for the vote wire.
func termToWire(t Term) WireTerm {
	w := WireTerm{Epoch: t.Epoch, Leader: t.Leader}
	if !t.Expires.IsZero() {
		w.ExpiresUnixNano = t.Expires.UnixNano()
	}
	return w
}

// termFromWire decodes a wire term.
func termFromWire(w WireTerm) Term {
	t := Term{Epoch: w.Epoch, Leader: w.Leader}
	if w.ExpiresUnixNano != 0 {
		t.Expires = time.Unix(0, w.ExpiresUnixNano).UTC()
	}
	return t
}

// QuorumVoter is one pool member's share of the replicated term: the
// acceptor half of the consensus round. It only orders ballots — it
// never judges expiry or leadership — so proposers' clock skew cannot
// corrupt it. Safe for concurrent use.
type QuorumVoter struct {
	tel *quorumTel

	mu        sync.Mutex
	promise   uint64 // highest ballot promised to a prepare
	acceptedB uint64 // ballot of the last accepted term (0: none yet)
	term      Term   // last accepted term
}

// NewQuorumVoter builds an empty voter. hub may be nil.
func NewQuorumVoter(hub *telemetry.Hub) *QuorumVoter {
	return &QuorumVoter{tel: newQuorumTel(hub)}
}

// Vote answers one prepare or accept. req must already be validated
// (the wire decoder enforces the message invariants).
func (v *QuorumVoter) Vote(req VoteRequest) VoteResponse {
	v.mu.Lock()
	defer v.mu.Unlock()
	resp := VoteResponse{V: ProtocolV}
	switch req.Phase {
	case VotePrepare:
		// Strictly newer ballots only: granting the promised ballot
		// itself would let two proposers share one round.
		if req.Ballot > v.promise {
			v.promise = req.Ballot
			resp.Granted = true
		}
	case VoteAccept:
		// The promised ballot itself is acceptable (the proposer's own
		// prepare set it); anything older has been superseded by a
		// newer prepare and must bounce.
		if req.Ballot >= v.promise {
			v.promise = req.Ballot
			v.acceptedB = req.Ballot
			v.term = termFromWire(*req.Term)
			resp.Granted = true
		}
	}
	if v.acceptedB > 0 {
		w := termToWire(v.term)
		resp.AcceptedBallot, resp.Term = v.acceptedB, &w
	}
	resp.Promise = v.promise
	v.tel.noteVote(req.Phase, resp.Granted, v.term.Epoch)
	return resp
}

// Accepted returns the voter's last accepted term and its ballot
// (ballot 0 while nothing has been accepted).
func (v *QuorumVoter) Accepted() (Term, uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.term, v.acceptedB
}

// NewVoterHandler serves one voter's /ctrl/vote endpoint — mounted
// into NewCoordinatorHandler for a pool-member pscoord, or served
// alone by VoterPool.
func NewVoterHandler(v *QuorumVoter) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathVote, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := readBody(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := DecodeVote(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeWireJSON(w, v.Vote(req))
	})
	return mux
}

// VoterPool is n quorum voters served over real loopback HTTP — the
// in-process stand-in for a coordinator pool's voter endpoints, behind
// the conformance and chaos suites and pscluster's -ha-members drill.
type VoterPool struct {
	Voters []*QuorumVoter

	urls []string
	lns  []net.Listener
	srvs []*http.Server
}

// StartVoterPool boots n voters on loopback listeners. hub may be nil.
func StartVoterPool(n int, hub *telemetry.Hub) (*VoterPool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ctrlplane: voter pool size %d", n)
	}
	p := &VoterPool{}
	for i := 0; i < n; i++ {
		v := NewQuorumVoter(hub)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			p.Close()
			return nil, err
		}
		srv := &http.Server{
			Handler:           NewVoterHandler(v),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() { _ = srv.Serve(ln) }()
		p.Voters = append(p.Voters, v)
		p.urls = append(p.urls, "http://"+ln.Addr().String())
		p.lns = append(p.lns, ln)
		p.srvs = append(p.srvs, srv)
	}
	return p, nil
}

// URLs returns the voter base URLs in pool order.
func (p *VoterPool) URLs() []string { return append([]string(nil), p.urls...) }

// StopVoter shuts one voter's listener down — a voter crash. Its
// in-memory acceptor state is unreachable from then on, like a
// process exit.
func (p *VoterPool) StopVoter(i int) {
	_ = p.srvs[i].Close()
	_ = p.lns[i].Close()
}

// Close shuts every voter listener down.
func (p *VoterPool) Close() {
	for _, srv := range p.srvs {
		_ = srv.Close()
	}
	for _, ln := range p.lns {
		_ = ln.Close()
	}
}
