// Package ctrlplane promotes the Section IV-D cluster layer from an
// in-process simulation to a distributed system: a coordinator manages
// a fleet of per-server agents over HTTP/JSON, fanning out power-budget
// assignments, scraping telemetry, and re-apportioning the cluster cap
// when servers drop out — with internal/cluster kept as its bit-exact
// oracle.
//
// # Protocol
//
// Three endpoints per agent, JSON over HTTP (docs/CONTROL_PLANE.md has
// the full wire reference and failure matrix):
//
//   - POST /ctrl/assign — grant a power budget. The grant doubles as a
//     lease: it authorizes the agent to draw up to CapW until the lease
//     lapses, after which the agent fences itself to its fail-safe cap.
//     Requests carry a monotonic sequence number, so duplicated or
//     reordered RPCs cannot resurrect a stale budget.
//   - GET /ctrl/report — scrape power draw, battery state of charge,
//     and the agent's cap-utility curve. The coordinator uses the
//     scrape as its liveness heartbeat and feeds the curves into the
//     cluster.ApportionCurves DP (the paper's R1 one level up the
//     power hierarchy).
//   - POST /ctrl/lease — renew the draw lease without changing the
//     budget; the coordinator sends this instead of a full assignment
//     when an agent's budget is unchanged.
//
// # Safety argument
//
// The coordinator never relies on an unacknowledged assignment: an
// agent either acked this interval's grant (and draws at most its new
// share) or missed it (and fences itself to the fail-safe cap once the
// lease lapses). With a lease no longer than the control interval, the
// summed fleet draw cannot exceed the cluster cap even when RPCs are
// dropped, delayed, or duplicated — the invariant TestCtrlPlaneSoak
// holds under injected network faults. Longer leases trade that hard
// guarantee for fewer fences, bounding any breach by the lease length.
//
// A server that stays unreachable for MissK consecutive intervals loses
// its membership lease; the coordinator re-apportions the surviving
// fleet's budget exactly as internal/cluster/dropout.go does in
// process, and a recovered agent rejoins on its first successful
// scrape.
package ctrlplane
