package ctrlplane

import (
	"strconv"

	"powerstruggle/internal/telemetry"
)

// ctrlTel is the coordinator's pre-resolved instrument set: fleet-wide
// counterparts of the per-server control-loop metrics, plus fan-out
// spans on the coordinator trace track. A disabled hub resolves to nil
// instruments whose methods no-op, keeping the uninstrumented replay
// bit-identical.
type ctrlTel struct {
	enabled bool
	tracer  *telemetry.Tracer

	steps         *telemetry.Counter
	rpcs          *telemetry.CounterVec // kind ∈ {assign, report, lease}, outcome ∈ {ok, error}
	retries       *telemetry.Counter
	leaseExpiries *telemetry.Counter
	rejoins       *telemetry.Counter
	reapportions  *telemetry.Counter
	assignFails   *telemetry.Counter
	breakerTrips  *telemetry.Counter
	aliveAgents   *telemetry.Gauge
	fleetCapW     *telemetry.Gauge
	fleetGridW    *telemetry.Gauge
	fleetPerfN    *telemetry.Gauge
	agentBudgetW  *telemetry.GaugeVec
	agentSoC      *telemetry.GaugeVec
	rpcLatency    *telemetry.HistogramVec

	epochGauge    *telemetry.Gauge
	leaderGauge   *telemetry.Gauge
	failovers     *telemetry.Gauge
	registrations *telemetry.Counter

	// Protocol-clock instruments (docs/METRICS.md §Protocol clock).
	clockSkewIv  *telemetry.GaugeVec
	rehydrations *telemetry.Counter

	// Per-transport wire accounting (transport ∈ {json, binary}).
	wireFrames *telemetry.CounterVec // dir ∈ {tx, rx}; one HTTP message counts as one frame
	wireBytes  *telemetry.CounterVec // dir ∈ {tx, rx}; payload bytes (JSON: bodies, binary: whole frames)
	connDials  *telemetry.CounterVec
	connReuses *telemetry.CounterVec
	batchedOps *telemetry.Counter

	// Shard-tier gauges (docs/METRICS.md §Hierarchy): set by the global
	// apportioner each interval.
	shardBudgetW   *telemetry.GaugeVec
	shardHeadroomW *telemetry.Gauge
	treeDepth      *telemetry.Gauge
}

func newCtrlTel(h *telemetry.Hub) *ctrlTel {
	reg := h.Registry()
	if reg == nil {
		return &ctrlTel{}
	}
	// Bounds in seconds: loopback RPCs land in the sub-millisecond
	// buckets, cross-rack ones in the milliseconds, retry storms above.
	bounds := []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}
	return &ctrlTel{
		enabled: true,
		tracer:  h.Tracer(),
		steps: reg.Counter("ps_ctrl_steps_total",
			"Control intervals the coordinator has driven."),
		rpcs: reg.CounterVec("ps_ctrl_rpcs_total",
			"Control-plane RPCs by kind and outcome.", "kind", "outcome"),
		retries: reg.Counter("ps_ctrl_rpc_retries_total",
			"RPC attempts beyond the first (jittered backoff)."),
		leaseExpiries: reg.Counter("ps_ctrl_lease_expiries_total",
			"Membership leases expired after consecutive missed scrapes."),
		rejoins: reg.Counter("ps_ctrl_rejoins_total",
			"Expired agents readmitted on a successful scrape."),
		reapportions: reg.Counter("ps_ctrl_reapportions_total",
			"Alive-set transitions that re-apportioned the cluster budget."),
		assignFails: reg.Counter("ps_ctrl_assign_failures_total",
			"Budget assignments that exhausted their retries."),
		breakerTrips: reg.Counter("ps_ctrl_breaker_trips_total",
			"Per-agent circuit breakers opened after consecutive failed scrapes."),
		aliveAgents: reg.Gauge("ps_ctrl_alive_agents",
			"Agents holding a live membership lease."),
		fleetCapW: reg.Gauge("ps_ctrl_fleet_cap_watts",
			"Cluster cap at the last control interval."),
		fleetGridW: reg.Gauge("ps_ctrl_fleet_grid_watts",
			"Summed scraped grid draw at the last control interval."),
		fleetPerfN: reg.Gauge("ps_ctrl_fleet_perf",
			"Summed scraped normalized performance at the last control interval."),
		agentBudgetW: reg.GaugeVec("ps_ctrl_agent_budget_watts",
			"Per-agent budget granted at the last control interval (0 while expired).", "agent"),
		agentSoC: reg.GaugeVec("ps_ctrl_agent_soc",
			"Per-agent battery state of charge at the last scrape.", "agent"),
		rpcLatency: reg.HistogramVec("ps_ctrl_rpc_seconds",
			"Wall-clock RPC latency by kind (successful attempts).", bounds, "kind"),
		epochGauge: reg.Gauge("ps_ctrl_epoch",
			"Leadership epoch this coordinator is operating under."),
		leaderGauge: reg.Gauge("ps_ctrl_leader",
			"1 while this coordinator leads the cluster, 0 while it observes."),
		failovers: reg.Gauge("ps_ctrl_failovers_total",
			"Leadership terms this coordinator took over from a lapsed or resigned predecessor."),
		registrations: reg.Counter("ps_ctrl_registrations_total",
			"Agent self-registrations admitted into the fleet."),
		clockSkewIv: reg.GaugeVec("ps_ctrl_clock_skew_intervals",
			"Per-member protocol-clock lag at the last scrape: coordinator interval counter minus the member's observed interval (the old fleet max is max() over the series; shard members are labeled shard-N).", "member"),
		rehydrations: reg.Counter("ps_ctrl_restart_rehydrations_total",
			"Interval-counter rehydrations from a majority of agent scrapes (one per clock-mode coordinator (re)start)."),
		wireFrames: reg.CounterVec("ps_ctrl_wire_frames_total",
			"Wire messages by transport and direction.", "transport", "dir"),
		wireBytes: reg.CounterVec("ps_ctrl_wire_bytes_total",
			"Wire bytes by transport and direction.", "transport", "dir"),
		connDials: reg.CounterVec("ps_ctrl_conn_dials_total",
			"Control-plane connections dialed, by transport.", "transport"),
		connReuses: reg.CounterVec("ps_ctrl_conn_reuses_total",
			"Pooled binary connections reused instead of re-dialed.", "transport"),
		batchedOps: reg.Counter("ps_ctrl_batched_ops_total",
			"Per-agent operations carried inside batch frames instead of unary RPCs."),
		shardBudgetW: reg.GaugeVec("ps_ctrl_shard_budget_watts",
			"Per-shard budget granted by the global apportioner at the last interval.", "shard"),
		shardHeadroomW: reg.Gauge("ps_ctrl_shard_headroom_watts",
			"Unused headroom moved between shards at the last global interval."),
		treeDepth: reg.Gauge("ps_ctrl_tree_depth",
			"Depth of the coordination tree (1 flat, 2 sharded)."),
	}
}

// quorumTel instruments one quorum-pool member: the proposer side's
// campaign outcomes and the local voter's ballot decisions. Same
// nil-safe pattern as ctrlTel — a disabled hub no-ops everything.
type quorumTel struct {
	enabled bool

	voters     *telemetry.Gauge
	lastAcks   *telemetry.Gauge
	commits    *telemetry.Counter
	losses     *telemetry.Counter
	votes      *telemetry.CounterVec // phase ∈ {prepare, accept}, outcome ∈ {granted, rejected}
	voterEpoch *telemetry.Gauge
}

func newQuorumTel(h *telemetry.Hub) *quorumTel {
	reg := h.Registry()
	if reg == nil {
		return &quorumTel{}
	}
	return &quorumTel{
		enabled: true,
		voters: reg.Gauge("ps_ctrl_quorum_voters",
			"Voter pool size this coordinator campaigns against."),
		lastAcks: reg.Gauge("ps_ctrl_quorum_last_acks",
			"Voter acks on the last commit attempt."),
		commits: reg.Counter("ps_ctrl_quorum_commits_total",
			"Campaigns committed on a majority of voters."),
		losses: reg.Counter("ps_ctrl_quorum_losses_total",
			"Campaigns abandoned without a majority (partition or voter loss)."),
		votes: reg.CounterVec("ps_ctrl_voter_votes_total",
			"Local voter's ballot decisions by phase and outcome.", "phase", "outcome"),
		voterEpoch: reg.Gauge("ps_ctrl_voter_epoch",
			"Epoch of the local voter's last accepted term."),
	}
}

// setVoters records the pool size.
func (t *quorumTel) setVoters(n int) {
	if !t.enabled {
		return
	}
	t.voters.Set(float64(n))
}

// noteCampaign records one campaign's ack count and outcome.
func (t *quorumTel) noteCampaign(acks int, committed bool) {
	if !t.enabled {
		return
	}
	t.lastAcks.Set(float64(acks))
	if committed {
		t.commits.Inc()
	} else {
		t.losses.Inc()
	}
}

// noteVote records one local voter decision.
func (t *quorumTel) noteVote(phase string, granted bool, epoch uint64) {
	if !t.enabled {
		return
	}
	outcome := "rejected"
	if granted {
		outcome = "granted"
	}
	t.votes.With(phase, outcome).Inc()
	t.voterEpoch.Set(float64(epoch))
}

// noteLeadership records the epoch and leader/observer role after a
// campaign.
func (t *ctrlTel) noteLeadership(epoch uint64, leading bool) {
	if !t.enabled {
		return
	}
	t.epochGauge.Set(float64(epoch))
	if leading {
		t.leaderGauge.Set(1)
	} else {
		t.leaderGauge.Set(0)
	}
}

// setFailovers mirrors the HA layer's failover count.
func (t *ctrlTel) setFailovers(n int) {
	if !t.enabled {
		return
	}
	t.failovers.Set(float64(n))
}

// noteStep records one control interval's fleet state.
func (t *ctrlTel) noteStep(res StepResult) {
	if !t.enabled {
		return
	}
	t.steps.Inc()
	t.fleetCapW.Set(res.CapW)
	t.fleetGridW.Set(res.FleetGridW)
	t.fleetPerfN.Set(res.FleetPerfN)
	alive := 0
	for i, b := range res.Budgets {
		t.agentBudgetW.With(strconv.Itoa(i)).Set(b)
		if res.Alive[i] {
			alive++
		}
	}
	t.aliveAgents.Set(float64(alive))
	t.tracer.Instant("ctrl-step", telemetry.CatCtrl, telemetry.TidCoord, res.T,
		telemetry.A("capW", res.CapW), telemetry.A("gridW", res.FleetGridW),
		telemetry.A("alive", alive))
}

// noteGlobalStep records one global interval's shard budgets, the
// headroom moved, and the tree depth.
func (t *ctrlTel) noteGlobalStep(res GlobalStepResult) {
	if !t.enabled {
		return
	}
	t.steps.Inc()
	t.fleetCapW.Set(res.CapW)
	for i, b := range res.Budgets {
		t.shardBudgetW.With(strconv.Itoa(i)).Set(b)
	}
	t.shardHeadroomW.Set(res.RebalancedW)
	t.treeDepth.Set(2)
	t.tracer.Instant("global-step", telemetry.CatCtrl, telemetry.TidCoord, res.T,
		telemetry.A("capW", res.CapW), telemetry.A("reservedW", res.ReservedW),
		telemetry.A("movedW", res.RebalancedW))
}

// noteMembership mirrors a lease expiry or rejoin into the trace.
func (t *ctrlTel) noteMembership(tm float64, agent int, expired bool) {
	if !t.enabled {
		return
	}
	kind := "lease-expiry"
	if !expired {
		kind = "agent-rejoin"
	}
	t.tracer.Instant(kind, telemetry.CatCtrl, telemetry.TidCoord, tm,
		telemetry.A("agent", agent))
}
