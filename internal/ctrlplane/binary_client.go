package ctrlplane

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxIdleBinaryConns caps pooled conns per host. Unary fan-out to one
// shared listener holds at most MaxInFlight conns at once; batch
// fan-out needs one or two.
const maxIdleBinaryConns = 16

const (
	binaryDialTimeout    = 5 * time.Second
	binaryDefaultTimeout = 30 * time.Second
)

// frameRemoteError is a server-side failure relayed in a FrameError
// frame. The conn that carried it is still in protocol sync, so it
// goes back to the pool and the error is not worth a redial.
type frameRemoteError struct{ msg string }

func (e *frameRemoteError) Error() string { return "ctrlplane: remote: " + e.msg }

// bconn is one pooled framed conn.
type bconn struct {
	c      net.Conn
	br     *bufio.Reader
	reused bool
}

// binaryTransport is the binary encoding: length-prefixed frames over
// persistent TCP conns, pooled per host so an interval's fan-out
// reuses last interval's conns instead of re-dialing. Each method is a
// single protocol attempt; a reused conn gets one transparent redial
// on transport failure, because a pooled conn may have died since its
// last use and that is indistinguishable from a dead peer without one
// fresh dial.
type binaryTransport struct {
	tel    *ctrlTel
	dials  atomic.Uint64
	reuses atomic.Uint64

	mu     sync.Mutex
	idle   map[string][]*bconn
	closed bool
}

func newBinaryTransport(tel *ctrlTel) *binaryTransport {
	return &binaryTransport{tel: tel, idle: map[string][]*bconn{}}
}

func (t *binaryTransport) Name() string { return "binary" }

// binaryHost strips the tcp:// scheme and any path suffix off a base URL.
func binaryHost(base string) string {
	h := strings.TrimPrefix(base, "tcp://")
	if i := strings.IndexByte(h, '/'); i >= 0 {
		h = h[:i]
	}
	return h
}

func (t *binaryTransport) checkout(ctx context.Context, host string) (*bconn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("ctrlplane: binary transport closed")
	}
	if list := t.idle[host]; len(list) > 0 {
		bc := list[len(list)-1]
		list[len(list)-1] = nil
		t.idle[host] = list[:len(list)-1]
		t.mu.Unlock()
		bc.reused = true
		t.reuses.Add(1)
		t.tel.connReuses.With("binary").Inc()
		return bc, nil
	}
	t.mu.Unlock()
	return t.dial(ctx, host)
}

func (t *binaryTransport) dial(ctx context.Context, host string) (*bconn, error) {
	d := net.Dialer{Timeout: binaryDialTimeout}
	c, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, err
	}
	t.dials.Add(1)
	t.tel.connDials.With("binary").Inc()
	return &bconn{c: c, br: bufio.NewReader(c)}, nil
}

func (t *binaryTransport) put(host string, bc *bconn) {
	t.mu.Lock()
	if !t.closed && len(t.idle[host]) < maxIdleBinaryConns {
		t.idle[host] = append(t.idle[host], bc)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	bc.c.Close()
}

// exchange writes one request frame and reads its response frame. Any
// transport-level failure closes the conn (the stream can no longer be
// trusted to be at a frame boundary).
func (t *binaryTransport) exchange(ctx context.Context, bc *bconn, frame []byte, respType byte) ([]byte, error) {
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(binaryDefaultTimeout)
	}
	_ = bc.c.SetDeadline(deadline)
	if _, err := bc.c.Write(frame); err != nil {
		bc.c.Close()
		return nil, err
	}
	t.tel.wireFrames.With("binary", "tx").Inc()
	t.tel.wireBytes.With("binary", "tx").Add(uint64(len(frame)))
	ftype, payload, err := readFrame(bc.br)
	if err != nil {
		bc.c.Close()
		return nil, err
	}
	t.tel.wireFrames.With("binary", "rx").Inc()
	t.tel.wireBytes.With("binary", "rx").Add(uint64(frameHeaderLen + len(payload)))
	switch ftype {
	case respType:
		return payload, nil
	case FrameError:
		msg, derr := decodeErrPayload(payload)
		if derr != nil {
			bc.c.Close()
			return nil, derr
		}
		return nil, &frameRemoteError{msg: msg}
	default:
		bc.c.Close()
		return nil, fmt.Errorf("ctrlplane: frame type %#02x in reply, want %#02x", ftype, respType)
	}
}

// roundTrip runs one request/response exchange against base, pooling
// the conn on success (and on remote errors, which leave the stream in
// sync).
func (t *binaryTransport) roundTrip(ctx context.Context, base string, reqType byte, payload []byte, respType byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	host := binaryHost(base)
	frame := EncodeFrame(reqType, payload)
	bc, err := t.checkout(ctx, host)
	if err != nil {
		return nil, err
	}
	resp, err := t.exchange(ctx, bc, frame, respType)
	var remote *frameRemoteError
	if err == nil {
		t.put(host, bc)
		return resp, nil
	}
	if errors.As(err, &remote) {
		t.put(host, bc)
		return nil, err
	}
	if bc.reused && ctx.Err() == nil {
		bc2, derr := t.dial(ctx, host)
		if derr != nil {
			return nil, err
		}
		resp, err = t.exchange(ctx, bc2, frame, respType)
		if err == nil {
			t.put(host, bc2)
			return resp, nil
		}
		if errors.As(err, &remote) {
			t.put(host, bc2)
			return nil, err
		}
	}
	return nil, err
}

// closeIdle drops every pooled conn (chaos drills bounce the pool).
func (t *binaryTransport) closeIdle() {
	t.mu.Lock()
	idle := t.idle
	t.idle = map[string][]*bconn{}
	t.mu.Unlock()
	for _, list := range idle {
		for _, bc := range list {
			bc.c.Close()
		}
	}
}

func (t *binaryTransport) Close() {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.closeIdle()
}

func (t *binaryTransport) Scrape(ctx context.Context, base string, server int, at float64, hasT bool) (Report, error) {
	p, err := t.roundTrip(ctx, base, FrameScrapeReq, appendScrapeReq(nil, server, at, hasT), FrameReportResp)
	if err != nil {
		return Report{}, err
	}
	return decodeReportPayload(p)
}

func (t *binaryTransport) Assign(ctx context.Context, base string, req AssignRequest) (AssignResponse, error) {
	if err := req.Validate(); err != nil {
		return AssignResponse{}, err
	}
	p, err := t.roundTrip(ctx, base, FrameAssignReq, appendAssignReq(nil, req), FrameAssignResp)
	if err != nil {
		return AssignResponse{}, err
	}
	return decodeAssignRespPayload(p)
}

func (t *binaryTransport) Renew(ctx context.Context, base string, req LeaseRequest) (LeaseResponse, error) {
	if err := req.Validate(); err != nil {
		return LeaseResponse{}, err
	}
	p, err := t.roundTrip(ctx, base, FrameLeaseReq, appendLeaseReq(nil, req), FrameLeaseResp)
	if err != nil {
		return LeaseResponse{}, err
	}
	return decodeLeaseRespPayload(p)
}

func (t *binaryTransport) Register(ctx context.Context, base string, req RegisterRequest) (RegisterResponse, error) {
	if err := req.Validate(); err != nil {
		return RegisterResponse{}, err
	}
	p, err := t.roundTrip(ctx, base, FrameRegisterReq, appendRegisterReq(nil, req), FrameRegisterResp)
	if err != nil {
		return RegisterResponse{}, err
	}
	return decodeRegisterRespPayload(p)
}

func (t *binaryTransport) Vote(ctx context.Context, base string, req VoteRequest) (VoteResponse, error) {
	if err := req.Validate(); err != nil {
		return VoteResponse{}, err
	}
	p, err := t.roundTrip(ctx, base, FrameVoteReq, appendVoteReq(nil, req), FrameVoteResp)
	if err != nil {
		return VoteResponse{}, err
	}
	return decodeVoteRespPayload(p)
}

func (t *binaryTransport) Leader(ctx context.Context, base string) (LeaderStatus, error) {
	p, err := t.roundTrip(ctx, base, FrameLeaderReq, nil, FrameLeaderResp)
	if err != nil {
		return LeaderStatus{}, err
	}
	return decodeLeaderStatusPayload(p)
}

func (t *binaryTransport) ShardScrape(ctx context.Context, base string, req ShardReportRequest) (ShardReport, error) {
	if err := req.Validate(); err != nil {
		return ShardReport{}, err
	}
	p, err := t.roundTrip(ctx, base, FrameShardReportReq, appendShardReportReq(nil, req), FrameShardReportResp)
	if err != nil {
		return ShardReport{}, err
	}
	return decodeShardReportPayload(p)
}

func (t *binaryTransport) ShardBudget(ctx context.Context, base string, req ShardBudgetRequest) (ShardBudgetResponse, error) {
	if err := req.Validate(); err != nil {
		return ShardBudgetResponse{}, err
	}
	p, err := t.roundTrip(ctx, base, FrameShardBudgetReq, appendShardBudgetReq(nil, req), FrameShardBudgetResp)
	if err != nil {
		return ShardBudgetResponse{}, err
	}
	return decodeShardBudgetRespPayload(p)
}

func (t *binaryTransport) ScrapeBatch(ctx context.Context, base string, req BatchScrapeRequest) (BatchScrapeResponse, error) {
	if err := req.Validate(); err != nil {
		return BatchScrapeResponse{}, err
	}
	p, err := t.roundTrip(ctx, base, FrameBatchScrapeReq, appendBatchScrapeReq(nil, req), FrameBatchScrapeResp)
	if err != nil {
		return BatchScrapeResponse{}, err
	}
	return decodeBatchScrapeRespPayload(p)
}

func (t *binaryTransport) GrantBatch(ctx context.Context, base string, req BatchGrantRequest) (BatchGrantResponse, error) {
	if err := req.Validate(); err != nil {
		return BatchGrantResponse{}, err
	}
	p, err := t.roundTrip(ctx, base, FrameBatchGrantReq, appendBatchGrantReq(nil, req), FrameBatchGrantResp)
	if err != nil {
		return BatchGrantResponse{}, err
	}
	return decodeBatchGrantRespPayload(p)
}
