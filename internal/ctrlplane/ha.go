package ctrlplane

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// HAConfig parameterizes one coordinator's participation in leader
// election.
type HAConfig struct {
	// ID is this coordinator's candidate identity (e.g. host:pid).
	ID string
	// Election is the shared store (required). Every coordinator of
	// the cluster must campaign on the same store.
	Election Election
	// TermTTL is the leadership lease length. The leader renews it
	// every control interval, so anything comfortably above the
	// interval works; the standby takes over one campaign after the
	// TTL lapses, so a short TTL shrinks the failover window. pscoord
	// defaults to 3 × the control interval.
	TermTTL time.Duration
	// Clock supplies the campaign timestamps (default time.Now). The
	// chaos suite injects skewed and frozen clocks here.
	Clock func() time.Time
	// Priority ranks this member in the takeover order: rank 0
	// campaigns for a lapsed term immediately, rank k observes for
	// k × PriorityHoldoff past the observed expiry first, so the
	// preferred standby wins the steal uncontested. Renewals, terms
	// still in force, and a member with no observed term yet are never
	// held off — priorities only order who steals a lapsed term.
	Priority int
	// PriorityHoldoff is the per-rank takeover delay (default
	// TermTTL/4 — with the default TTL of 1.5 control intervals, rank
	// 1 still steals within one interval of observable silence).
	PriorityHoldoff time.Duration
}

// HA runs one coordinator as a member of a leader-elected pair (or
// trio): each control interval it campaigns on the shared store, then
// either leads — fanning grants out under its term's epoch — or
// observes, scraping the fleet so its membership view, utility curves,
// and budget decisions stay warm for takeover. Safety never rests on
// the election alone: grants carry the epoch, and agents refuse
// anything older than the newest epoch they have applied, so even a
// deposed leader that has not yet noticed cannot land a stale budget.
//
// Step and the accessors are safe for concurrent use (the coordinator
// handler reads leadership state from HTTP goroutines); Step itself
// must still be called from a single control loop, like
// Coordinator.Step.
type HA struct {
	c   *Coordinator
	cfg HAConfig

	mu        sync.Mutex
	leader    bool
	term      Term
	failovers int
	campErrs  int
	holdoffs  int
}

// NewHA wraps a coordinator with leader election.
func NewHA(c *Coordinator, cfg HAConfig) (*HA, error) {
	if c == nil {
		return nil, fmt.Errorf("ctrlplane: HA needs a coordinator")
	}
	if cfg.Election == nil {
		return nil, fmt.Errorf("ctrlplane: HA needs an election store")
	}
	if cfg.ID == "" {
		return nil, fmt.Errorf("ctrlplane: HA needs a candidate id")
	}
	if cfg.TermTTL <= 0 {
		return nil, fmt.Errorf("ctrlplane: HA term ttl %v", cfg.TermTTL)
	}
	if cfg.Priority < 0 {
		return nil, fmt.Errorf("ctrlplane: HA priority %d", cfg.Priority)
	}
	if cfg.PriorityHoldoff <= 0 {
		cfg.PriorityHoldoff = cfg.TermTTL / 4
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &HA{c: c, cfg: cfg}, nil
}

// Coordinator returns the wrapped coordinator.
func (h *HA) Coordinator() *Coordinator { return h.c }

// heldOff reports whether the takeover priority says to sit this
// campaign out: the last observed term has lapsed — a steal is on the
// table and a lower-ranked member's turn comes first — but this
// member's rank-scaled holdoff has not yet passed.
func (h *HA) heldOff(now time.Time) bool {
	if h.cfg.Priority <= 0 {
		return false
	}
	h.mu.Lock()
	term := h.term
	h.mu.Unlock()
	if term.Epoch == 0 || term.Leader == h.cfg.ID {
		// Nothing observed yet (bootstrap races are the store's to
		// serialize), or our own term, which a campaign only renews.
		return false
	}
	if now.Before(term.Expires) {
		// A term still in force: campaigning is pure observation, and
		// observing keeps the expiry we hold off against fresh.
		return false
	}
	return now.Before(term.Expires.Add(time.Duration(h.cfg.Priority) * h.cfg.PriorityHoldoff))
}

// Step campaigns, then leads or observes one control interval.
func (h *HA) Step(ctx context.Context, t, capW float64) (StepResult, error) {
	now := h.cfg.Clock()
	if h.heldOff(now) {
		h.mu.Lock()
		h.leader = false
		h.holdoffs++
		h.mu.Unlock()
		h.c.tel.noteLeadership(h.c.Epoch(), false)
		return h.c.Observe(ctx, t, capW)
	}
	term, err := h.cfg.Election.Campaign(h.cfg.ID, now, h.cfg.TermTTL)
	if err != nil {
		// An unreachable or contended store proves nothing about
		// leadership, so assume the worst and only observe: a true
		// leader that keeps failing campaigns loses its term by TTL
		// and the standby picks the fleet up; meanwhile the agents'
		// draw leases lapse on their own, so the cap stays safe.
		h.mu.Lock()
		h.leader = false
		h.campErrs++
		h.mu.Unlock()
		h.c.tel.noteLeadership(h.c.Epoch(), false)
		res, oerr := h.c.Observe(ctx, t, capW)
		if oerr != nil {
			return res, oerr
		}
		return res, nil
	}

	lead := term.Leader == h.cfg.ID
	h.mu.Lock()
	if lead && term.Epoch > h.term.Epoch && term.Epoch > 1 {
		// Winning any epoch past 1 means a prior term (ours or
		// another's) lapsed or was resigned — a failover, distinct
		// from the cluster's bootstrap election, which mints epoch 1.
		h.failovers++
	}
	h.leader, h.term = lead, term
	failover := h.failovers
	h.mu.Unlock()

	if !lead {
		h.c.tel.noteLeadership(term.Epoch, false)
		return h.c.Observe(ctx, t, capW)
	}
	h.c.SetEpoch(term.Epoch)
	h.c.tel.noteLeadership(term.Epoch, true)
	h.c.tel.setFailovers(failover)
	res, err := h.c.Step(ctx, t, capW)
	if err == nil && res.Deposed {
		// Some agent already applied a higher epoch: another
		// coordinator holds a newer term than the one we renewed —
		// possible when our store read raced its write, or under
		// clock skew. Stand down immediately instead of waiting for
		// the next campaign to tell us.
		h.mu.Lock()
		h.leader = false
		h.mu.Unlock()
		h.c.tel.noteLeadership(term.Epoch, false)
	}
	return res, err
}

// Leader reports the last campaign's term and whether this node leads.
func (h *HA) Leader() (Term, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.term, h.leader
}

// Failovers counts leadership acquisitions after the bootstrap
// election — terms this node took over from a lapsed or resigned
// predecessor.
func (h *HA) Failovers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.failovers
}

// CampaignErrors counts campaigns that failed against the store.
func (h *HA) CampaignErrors() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.campErrs
}

// Holdoffs counts intervals this member sat out a possible steal,
// yielding to a lower takeover rank.
func (h *HA) Holdoffs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.holdoffs
}

// Resign gives up leadership on the store (clean shutdown: the standby
// takes over on its next campaign instead of waiting out the TTL).
func (h *HA) Resign() error {
	h.mu.Lock()
	wasLeader := h.leader
	h.leader = false
	h.mu.Unlock()
	if !wasLeader {
		return nil
	}
	return h.cfg.Election.Resign(h.cfg.ID)
}

// ID returns the candidate identity.
func (h *HA) ID() string { return h.cfg.ID }

// Announce registers an agent with every coordinator URL given —
// agents announce to the whole coordinator set, not just the current
// leader, so a standby's membership view is warm before it ever wins a
// term. Every URL is posted to before returning. Returns the first
// leader-affirming response, or the first accepting one; err is
// non-nil only if every coordinator was unreachable or refused.
func Announce(ctx context.Context, coordURLs []string, req RegisterRequest, timeout time.Duration) (RegisterResponse, error) {
	if len(coordURLs) == 0 {
		return RegisterResponse{}, fmt.Errorf("ctrlplane: announce with no coordinator URLs")
	}
	if err := req.Validate(); err != nil {
		return RegisterResponse{}, err
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	// A coordinator URL's scheme picks the wire: http(s):// posts JSON,
	// tcp:// sends a register frame.
	dialer := newWireDialer(nil, nil)
	defer dialer.Close()
	var best RegisterResponse
	var lastErr error
	accepted, haveLeader := false, false
	// Post to every coordinator, even after the leader has accepted:
	// the whole point of announcing to the full set is that a standby's
	// membership view is warm before it ever wins a term.
	for _, base := range coordURLs {
		base = trimSlash(base)
		callCtx, cancel := context.WithTimeout(ctx, timeout)
		reg, err := dialer.forURL(base).Register(callCtx, base, req)
		cancel()
		if err != nil {
			lastErr = fmt.Errorf("ctrlplane: register at %s: %w", base, err)
			continue
		}
		if !reg.Accepted {
			lastErr = fmt.Errorf("ctrlplane: coordinator %s refused registration (static fleet?)", base)
			continue
		}
		if !accepted || (reg.Leader && !haveLeader) {
			best = reg
		}
		accepted = true
		haveLeader = haveLeader || reg.Leader
	}
	if accepted {
		return best, nil
	}
	return RegisterResponse{}, lastErr
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}
