package ctrlplane

import "sync"

// fanOut runs fn(i) for i in [0, n) with at most maxInFlight executing
// concurrently and blocks until all complete. The bound keeps a large
// fleet from opening hundreds of simultaneous connections when a cap
// event fans out.
func fanOut(n, maxInFlight int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if maxInFlight <= 0 || maxInFlight > n {
		maxInFlight = n
	}
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
}
