package ctrlplane

import (
	"context"
	"sync"
)

// fanOut runs fn(i) for i in [0, n) with at most maxInFlight executing
// concurrently and blocks until all launched calls complete. The bound
// keeps a large fleet from opening hundreds of simultaneous connections
// when a cap event fans out. A canceled ctx stops further launches —
// in-flight calls still drain (their RPCs see the same ctx and abort
// promptly), so a shutdown mid-interval never leaks goroutines past
// the return and never starts new RPCs toward a fleet it is leaving.
func fanOut(ctx context.Context, n, maxInFlight int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if maxInFlight <= 0 || maxInFlight > n {
		maxInFlight = n
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case <-done:
			wg.Wait()
			return
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(i int) {
			defer func() {
				<-sem
				wg.Done()
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
}
