package ctrlplane

import (
	"powerstruggle/internal/cluster"
	"powerstruggle/internal/policy"
)

// SimBackend backs an agent with one server of a cluster evaluator: the
// same memoized planning the Section IV-D replay uses, so a fleet of
// SimBackend agents driven over the network is the distributed twin of
// the in-process simulation. Several backends share one evaluator; its
// planning layer is concurrency-safe.
type SimBackend struct {
	ev    *cluster.Evaluator
	index int
	kind  policy.Kind
	// soc is the steady-state mid-charge the planner characterizes
	// sustained operation at (the replay's 0.6 assumption).
	soc float64
}

// NewSimBackend wraps server index of ev with the App+Res+ESD-Aware
// per-server policy — the "(Ours)" half of Equal(Ours) and
// Utility(Ours).
func NewSimBackend(ev *cluster.Evaluator, index int) *SimBackend {
	return &SimBackend{ev: ev, index: index, kind: policy.AppResESDAware, soc: 0.6}
}

// Apply plans the server under capW and returns the plan's delivered
// performance and grid draw.
func (b *SimBackend) Apply(capW float64) (perfN, gridW float64, err error) {
	return b.ev.PlanServer(b.index, b.kind, capW)
}

// SoC returns the steady-state battery charge.
func (b *SimBackend) SoC() float64 { return b.soc }

// IdleFloorW returns the platform idle floor.
func (b *SimBackend) IdleFloorW() float64 { return b.ev.HW().PIdleWatts }

// NameplateW returns the platform nameplate draw.
func (b *SimBackend) NameplateW() float64 { return b.ev.HW().MaxServerWatts() }

// UtilityCurve samples this server's cap-utility curve on the shared
// DP grid.
func (b *SimBackend) UtilityCurve() ([]cluster.CapPoint, error) {
	return b.ev.ServerCapCurve(b.index)
}
