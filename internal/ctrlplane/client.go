package ctrlplane

import (
	"context"
	"encoding/json"
	"hash/fnv"
	"time"
)

// rpcClient is the coordinator's side of the wire. The actual encoding
// lives behind the Transport interface — JSON/HTTP or binary frames,
// chosen per endpoint URL scheme — while this layer owns everything
// transport-independent: per-attempt timeouts and bounded retries
// under jittered exponential backoff (the same hardening pattern
// internal/coordinator applies to knob writes, moved up to the
// network), plus RPC telemetry.
type rpcClient struct {
	dialer      *wireDialer
	timeout     time.Duration
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	seed        int64

	tel *ctrlTel
}

func newRPCClient(cfg Config, tel *ctrlTel) *rpcClient {
	return &rpcClient{
		dialer:      newWireDialer(cfg.Transport, tel),
		timeout:     cfg.rpcTimeout(),
		retries:     cfg.rpcRetries(),
		backoffBase: cfg.backoffBase(),
		backoffMax:  cfg.backoffMax(),
		seed:        cfg.Seed,
		tel:         tel,
	}
}

// close releases both transports' pooled connections.
func (c *rpcClient) close() { c.dialer.Close() }

// jitterKey folds an RPC kind and agent id into the backoff hash key,
// so two RPC kinds to the same agent do not retry in lockstep.
func jitterKey(kind string, agent int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(kind))
	return h.Sum64() ^ uint64(agent)*0x9e3779b97f4a7c15
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit
// hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitteredBackoff returns the sleep before retry attempt (1-based):
// base·2^(attempt-1) capped at max, then jittered to [d/2, d) so a
// fleet of failing RPCs does not retry in lockstep. The jitter is a
// pure function of (seed, key, attempt) — no shared random stream —
// so concurrent fan-out cannot consume draws in scheduler order and a
// seeded HA soak retries with the same backoff schedule every run.
func (c *rpcClient) jitteredBackoff(key uint64, attempt int) time.Duration {
	d := c.backoffBase << (attempt - 1)
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	h := splitmix64(uint64(c.seed) ^ splitmix64(key^uint64(attempt)))
	f := 0.5 + 0.5*float64(h>>11)/float64(1<<53)
	return time.Duration(float64(d) * f)
}

// do runs one RPC attempt closure with the client's full retry budget.
// kind labels telemetry; key seeds the backoff jitter (callers pass
// jitterKey(kind, agent)).
func (c *rpcClient) do(ctx context.Context, kind string, key uint64, attempt func(ctx context.Context) error) error {
	return c.doN(ctx, kind, key, c.retries, attempt)
}

// doN is do with an explicit retry budget — 0 for the circuit
// breaker's half-open probe, where burning the whole budget against a
// likely-still-dead agent is exactly what the breaker exists to avoid.
// Each attempt runs under the per-RPC timeout.
func (c *rpcClient) doN(ctx context.Context, kind string, key uint64, retries int, attempt func(ctx context.Context) error) error {
	if err := ctx.Err(); err != nil {
		// A canceled interval must not start new RPCs: shutdown
		// promptness is bounded by one attempt, not the retry budget.
		return err
	}
	var lastErr error
	for i := 0; i <= retries; i++ {
		if i > 0 {
			c.tel.retries.Inc()
			select {
			case <-time.After(c.jitteredBackoff(key, i)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		start := time.Now()
		attemptCtx, cancel := context.WithTimeout(ctx, c.timeout)
		err := attempt(attemptCtx)
		cancel()
		if err == nil {
			c.tel.rpcs.With(kind, "ok").Inc()
			if c.tel.enabled {
				c.tel.rpcLatency.With(kind).Observe(time.Since(start).Seconds())
			}
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	c.tel.rpcs.With(kind, "error").Inc()
	return lastErr
}

// scrape fetches one agent's report, ticking its replay clock to t.
func (c *rpcClient) scrape(ctx context.Context, retries int, base string, server int, t float64) (Report, error) {
	tr := c.dialer.forURL(base)
	var rep Report
	err := c.doN(ctx, "report", jitterKey("report", server), retries, func(ctx context.Context) error {
		r, err := tr.Scrape(ctx, base, server, t, true)
		if err != nil {
			return err
		}
		rep = r
		return nil
	})
	return rep, err
}

// assign grants one agent a budget.
func (c *rpcClient) assign(ctx context.Context, retries int, base string, req AssignRequest) (AssignResponse, error) {
	tr := c.dialer.forURL(base)
	var resp AssignResponse
	err := c.doN(ctx, "assign", jitterKey("assign", req.Server), retries, func(ctx context.Context) error {
		r, err := tr.Assign(ctx, base, req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	return resp, err
}

// renew extends one agent's lease.
func (c *rpcClient) renew(ctx context.Context, base string, req LeaseRequest) (LeaseResponse, error) {
	tr := c.dialer.forURL(base)
	var resp LeaseResponse
	err := c.do(ctx, "lease", jitterKey("lease", req.Server), func(ctx context.Context) error {
		r, err := tr.Renew(ctx, base, req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	return resp, err
}

// scrapeBatch fetches a whole listener's worth of reports in one
// frame (binary endpoints only).
func (c *rpcClient) scrapeBatch(ctx context.Context, base string, req BatchScrapeRequest) (BatchScrapeResponse, error) {
	var resp BatchScrapeResponse
	key := jitterKey("batch-report", len(req.Servers))
	if len(req.Servers) > 0 {
		key = jitterKey("batch-report", req.Servers[0])
	}
	err := c.do(ctx, "batch-report", key, func(ctx context.Context) error {
		r, err := c.dialer.bin.ScrapeBatch(ctx, base, req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	return resp, err
}

// grantBatch fans one interval's grants to a whole listener in one
// frame (binary endpoints only). Retries are safe: renewals are
// idempotent and a re-delivered assign under the same (Epoch, Seq) is
// acknowledged with the in-force state.
func (c *rpcClient) grantBatch(ctx context.Context, base string, req BatchGrantRequest) (BatchGrantResponse, error) {
	var resp BatchGrantResponse
	key := jitterKey("batch-grant", len(req.Entries))
	if len(req.Entries) > 0 {
		key = jitterKey("batch-grant", req.Entries[0].Server)
	}
	err := c.do(ctx, "batch-grant", key, func(ctx context.Context) error {
		r, err := c.dialer.bin.GrantBatch(ctx, base, req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	return resp, err
}

// shardReport scrapes one shard coordinator's trunk summary (binary
// endpoints only — the trunk has no JSON fallback).
func (c *rpcClient) shardReport(ctx context.Context, retries int, base string, req ShardReportRequest) (ShardReport, error) {
	var rep ShardReport
	err := c.doN(ctx, "shard-report", jitterKey("shard-report", req.Shard), retries, func(ctx context.Context) error {
		r, err := c.dialer.bin.ShardScrape(ctx, base, req)
		if err != nil {
			return err
		}
		rep = r
		return nil
	})
	return rep, err
}

// shardBudget grants one shard its budget slice. Retries are safe: a
// re-delivered grant under the same (Epoch, Seq) is acknowledged with
// the in-force state, exactly like agent assigns.
func (c *rpcClient) shardBudget(ctx context.Context, retries int, base string, req ShardBudgetRequest) (ShardBudgetResponse, error) {
	var resp ShardBudgetResponse
	err := c.doN(ctx, "shard-budget", jitterKey("shard-budget", req.Shard), retries, func(ctx context.Context) error {
		r, err := c.dialer.bin.ShardBudget(ctx, base, req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	return resp, err
}

// postJSON POSTs in as JSON to a complete URL and decodes the response
// into out, with the full retry budget — the generic escape hatch for
// JSON-only surfaces.
func (c *rpcClient) postJSON(ctx context.Context, kind string, key uint64, url string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, kind, key, func(ctx context.Context) error {
		return c.dialer.json.call(ctx, "POST", url, payload, out)
	})
}

// getJSON GETs a complete URL and decodes the response into out.
func (c *rpcClient) getJSON(ctx context.Context, kind string, key uint64, url string, out any) error {
	return c.do(ctx, kind, key, func(ctx context.Context) error {
		return c.dialer.json.get(ctx, url, out)
	})
}
