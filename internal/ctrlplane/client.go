package ctrlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"
)

// rpcClient is the coordinator's side of the wire: JSON POST/GET with a
// per-attempt timeout and bounded retries under jittered exponential
// backoff — the same hardening pattern internal/coordinator applies to
// knob writes, moved up to the network.
type rpcClient struct {
	hc          *http.Client
	timeout     time.Duration
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	seed        int64

	tel *ctrlTel
}

func newRPCClient(cfg Config, tel *ctrlTel) *rpcClient {
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	return &rpcClient{
		hc:          &http.Client{Transport: transport},
		timeout:     cfg.rpcTimeout(),
		retries:     cfg.rpcRetries(),
		backoffBase: cfg.backoffBase(),
		backoffMax:  cfg.backoffMax(),
		seed:        cfg.Seed,
		tel:         tel,
	}
}

// jitterKey folds an RPC kind and agent id into the backoff hash key,
// so two RPC kinds to the same agent do not retry in lockstep.
func jitterKey(kind string, agent int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(kind))
	return h.Sum64() ^ uint64(agent)*0x9e3779b97f4a7c15
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit
// hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitteredBackoff returns the sleep before retry attempt (1-based):
// base·2^(attempt-1) capped at max, then jittered to [d/2, d) so a
// fleet of failing RPCs does not retry in lockstep. The jitter is a
// pure function of (seed, key, attempt) — no shared random stream —
// so concurrent fan-out cannot consume draws in scheduler order and a
// seeded HA soak retries with the same backoff schedule every run.
func (c *rpcClient) jitteredBackoff(key uint64, attempt int) time.Duration {
	d := c.backoffBase << (attempt - 1)
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	h := splitmix64(uint64(c.seed) ^ splitmix64(key^uint64(attempt)))
	f := 0.5 + 0.5*float64(h>>11)/float64(1<<53)
	return time.Duration(float64(d) * f)
}

// do performs one JSON RPC with the client's full retry budget. kind
// labels telemetry; key seeds the backoff jitter (callers pass
// jitterKey(kind, agent)); build constructs a fresh request per
// attempt (bodies are single-use).
func (c *rpcClient) do(ctx context.Context, kind string, key uint64, build func(ctx context.Context) (*http.Request, error), out any) error {
	return c.doN(ctx, kind, key, c.retries, build, out)
}

// doN is do with an explicit retry budget — 0 for the circuit
// breaker's half-open probe, where burning the whole budget against a
// likely-still-dead agent is exactly what the breaker exists to avoid.
func (c *rpcClient) doN(ctx context.Context, kind string, key uint64, retries int, build func(ctx context.Context) (*http.Request, error), out any) error {
	if err := ctx.Err(); err != nil {
		// A canceled interval must not start new RPCs: shutdown
		// promptness is bounded by one attempt, not the retry budget.
		return err
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			c.tel.retries.Inc()
			select {
			case <-time.After(c.jitteredBackoff(key, attempt)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		start := time.Now()
		err := c.once(ctx, build, out)
		if err == nil {
			c.tel.rpcs.With(kind, "ok").Inc()
			if c.tel.enabled {
				c.tel.rpcLatency.With(kind).Observe(time.Since(start).Seconds())
			}
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	c.tel.rpcs.With(kind, "error").Inc()
	return lastErr
}

// once performs a single attempt under the per-RPC timeout.
func (c *rpcClient) once(ctx context.Context, build func(ctx context.Context) (*http.Request, error), out any) error {
	attemptCtx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := build(attemptCtx)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
	}()
	body, err := readBody(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ctrlplane: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	switch v := out.(type) {
	case *Report:
		rep, err := DecodeReport(body)
		if err != nil {
			return err
		}
		*v = rep
	default:
		if err := json.Unmarshal(body, out); err != nil {
			return fmt.Errorf("ctrlplane: decode response: %w", err)
		}
	}
	return nil
}

// buildPost returns a request builder for a JSON POST of payload.
func buildPost(url string, payload []byte) func(ctx context.Context) (*http.Request, error) {
	return func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}
}

// buildGet returns a request builder for a GET of url.
func buildGet(url string) func(ctx context.Context) (*http.Request, error) {
	return func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	}
}

// postJSON POSTs in as JSON and decodes the response into out.
func (c *rpcClient) postJSON(ctx context.Context, kind string, key uint64, url string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, kind, key, buildPost(url, payload), out)
}

// postJSONOnce is postJSON with a single attempt (half-open probes).
func (c *rpcClient) postJSONOnce(ctx context.Context, kind string, key uint64, url string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.doN(ctx, kind, key, 0, buildPost(url, payload), out)
}

// getJSON GETs url and decodes the response into out.
func (c *rpcClient) getJSON(ctx context.Context, kind string, key uint64, url string, out any) error {
	return c.do(ctx, kind, key, buildGet(url), out)
}

// getJSONOnce is getJSON with a single attempt (half-open probes).
func (c *rpcClient) getJSONOnce(ctx context.Context, kind string, key uint64, url string, out any) error {
	return c.doN(ctx, kind, key, 0, buildGet(url), out)
}
