package ctrlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// rpcClient is the coordinator's side of the wire: JSON POST/GET with a
// per-attempt timeout and bounded retries under jittered exponential
// backoff — the same hardening pattern internal/coordinator applies to
// knob writes, moved up to the network.
type rpcClient struct {
	hc          *http.Client
	timeout     time.Duration
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration

	mu  sync.Mutex
	rng *rand.Rand

	tel *ctrlTel
}

func newRPCClient(cfg Config, tel *ctrlTel) *rpcClient {
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	return &rpcClient{
		hc:          &http.Client{Transport: transport},
		timeout:     cfg.rpcTimeout(),
		retries:     cfg.rpcRetries(),
		backoffBase: cfg.backoffBase(),
		backoffMax:  cfg.backoffMax(),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		tel:         tel,
	}
}

// jitteredBackoff returns the sleep before retry attempt (1-based):
// base·2^(attempt-1) capped at max, then jittered to [d/2, d) so a
// fleet of failing RPCs does not retry in lockstep.
func (c *rpcClient) jitteredBackoff(attempt int) time.Duration {
	d := c.backoffBase << (attempt - 1)
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	c.mu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// do performs one JSON RPC with retries. kind labels telemetry; build
// constructs a fresh request per attempt (bodies are single-use).
func (c *rpcClient) do(ctx context.Context, kind string, build func(ctx context.Context) (*http.Request, error), out any) error {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.tel.retries.Inc()
			select {
			case <-time.After(c.jitteredBackoff(attempt)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		start := time.Now()
		err := c.once(ctx, build, out)
		if err == nil {
			c.tel.rpcs.With(kind, "ok").Inc()
			if c.tel.enabled {
				c.tel.rpcLatency.With(kind).Observe(time.Since(start).Seconds())
			}
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	c.tel.rpcs.With(kind, "error").Inc()
	return lastErr
}

// once performs a single attempt under the per-RPC timeout.
func (c *rpcClient) once(ctx context.Context, build func(ctx context.Context) (*http.Request, error), out any) error {
	attemptCtx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := build(attemptCtx)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
	}()
	body, err := readBody(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ctrlplane: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	switch v := out.(type) {
	case *Report:
		rep, err := DecodeReport(body)
		if err != nil {
			return err
		}
		*v = rep
	default:
		if err := json.Unmarshal(body, out); err != nil {
			return fmt.Errorf("ctrlplane: decode response: %w", err)
		}
	}
	return nil
}

// postJSON POSTs in as JSON and decodes the response into out.
func (c *rpcClient) postJSON(ctx context.Context, kind, url string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, kind, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, out)
}

// getJSON GETs url and decodes the response into out.
func (c *rpcClient) getJSON(ctx context.Context, kind, url string, out any) error {
	return c.do(ctx, kind, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	}, out)
}
