package ctrlplane

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives arbitrary bytes through the frame and message
// decoders and asserts the canonical-encoding property: every frame the
// decoder accepts must re-encode byte-identically. Fixed-width scalars,
// strict 0|1 bools, and length-checked counts mean there is exactly one
// byte representation per value — any accepted-but-not-canonical input
// the fuzzer finds is a codec bug. Decoders must also never panic or
// over-allocate on garbage (the lying-count guards).
func FuzzDecodeFrame(f *testing.F) {
	for ftype, payload := range canonicalMessages() {
		f.Add(EncodeFrame(ftype, payload))
	}
	// Malformed seeds steer the fuzzer at the interesting edges.
	f.Add([]byte{})
	f.Add([]byte("PW"))
	f.Add([]byte("GET /ctrl/report HTTP/1.1\r\n\r\n"))
	f.Add(EncodeFrame(FrameError, nil))
	f.Add(append(EncodeFrame(FrameLeaderReq, nil), EncodeFrame(FrameLeaderReq, nil)...))
	f.Add([]byte{frameMagic0, frameMagic1, ProtocolV, FrameAssignReq, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk every stacked frame in the input, not just the first.
		rest := data
		for len(rest) > 0 {
			ftype, payload, next, err := DecodeFrame(rest)
			if err != nil {
				return
			}
			consumed := len(rest) - len(next)
			re, derr := reencodePayload(ftype, payload)
			if derr == nil {
				frame := EncodeFrame(ftype, re)
				if !bytes.Equal(frame, rest[:consumed]) {
					t.Fatalf("frame %#02x: accepted %d bytes re-encode to %d different bytes", ftype, consumed, len(frame))
				}
			}
			rest = next
		}
	})
}
