package ctrlplane

import (
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// t0 is an arbitrary fixed origin for election-test clocks.
var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// electionSemantics drives one store through the acquire → renew →
// hold-off → expire → takeover → resign lifecycle that both
// implementations must share.
func electionSemantics(t *testing.T, e Election) {
	t.Helper()
	const ttl = 10 * time.Second

	// Bootstrap: first campaigner takes epoch 1.
	term, err := e.Campaign("a", t0, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if term.Epoch != 1 || term.Leader != "a" {
		t.Fatalf("bootstrap term %+v", term)
	}

	// A renewal keeps the epoch and pushes the expiry out.
	term, err = e.Campaign("a", t0.Add(5*time.Second), ttl)
	if err != nil {
		t.Fatal(err)
	}
	if term.Epoch != 1 || term.Leader != "a" || !term.Expires.Equal(t0.Add(15*time.Second)) {
		t.Fatalf("renewed term %+v", term)
	}

	// A challenger against an unexpired term changes nothing.
	term, err = e.Campaign("b", t0.Add(10*time.Second), ttl)
	if err != nil {
		t.Fatal(err)
	}
	if term.Leader != "a" || term.Epoch != 1 {
		t.Fatalf("unexpired term lost to a challenger: %+v", term)
	}

	// Past the expiry the challenger takes over, and the epoch moves —
	// the takeover must be distinguishable from the old term at every
	// agent, by number alone.
	term, err = e.Campaign("b", t0.Add(16*time.Second), ttl)
	if err != nil {
		t.Fatal(err)
	}
	if term.Leader != "b" || term.Epoch != 2 {
		t.Fatalf("takeover term %+v", term)
	}

	// The deposed leader's campaign now loses.
	term, err = e.Campaign("a", t0.Add(17*time.Second), ttl)
	if err != nil {
		t.Fatal(err)
	}
	if term.Leader != "b" || term.Epoch != 2 {
		t.Fatalf("deposed leader re-took the term: %+v", term)
	}

	// Resign hands over without waiting out the TTL, and the next
	// winner still bumps the epoch.
	if err := e.Resign("b"); err != nil {
		t.Fatal(err)
	}
	term, err = e.Campaign("a", t0.Add(18*time.Second), ttl)
	if err != nil {
		t.Fatal(err)
	}
	if term.Leader != "a" || term.Epoch != 3 {
		t.Fatalf("post-resign term %+v", term)
	}

	// Resign by a non-holder is a no-op.
	if err := e.Resign("b"); err != nil {
		t.Fatal(err)
	}
	term, err = e.Campaign("a", t0.Add(19*time.Second), ttl)
	if err != nil {
		t.Fatal(err)
	}
	if term.Leader != "a" || term.Epoch != 3 {
		t.Fatalf("non-holder resign disturbed the term: %+v", term)
	}

	// Bad campaigns are refused outright.
	if _, err := e.Campaign("", t0, ttl); err == nil {
		t.Fatal("empty candidate id accepted")
	}
	if _, err := e.Campaign("a", t0, 0); err == nil {
		t.Fatal("zero ttl accepted")
	}
}

func TestMemElectionSemantics(t *testing.T) {
	electionSemantics(t, NewMemElection())
}

func TestFileElectionSemantics(t *testing.T) {
	e, err := NewFileElection(filepath.Join(t.TempDir(), "term.json"))
	if err != nil {
		t.Fatal(err)
	}
	electionSemantics(t, e)
}

// Epochs must stay strictly monotonic no matter how leadership
// thrashes; a repeated epoch would let two leaders' grants tie at the
// agents.
func TestElectionEpochMonotonicUnderThrash(t *testing.T) {
	e := NewMemElection()
	const ttl = time.Second
	last := uint64(0)
	now := t0
	for i := 0; i < 20; i++ {
		// Alternate winners by always campaigning after the expiry.
		id := "a"
		if i%2 == 1 {
			id = "b"
		}
		term, err := e.Campaign(id, now, ttl)
		if err != nil {
			t.Fatal(err)
		}
		if term.Leader != id {
			t.Fatalf("round %d: expired term not taken by %s: %+v", i, id, term)
		}
		if term.Epoch <= last {
			t.Fatalf("round %d: epoch %d did not advance past %d", i, term.Epoch, last)
		}
		last = term.Epoch
		now = now.Add(2 * ttl)
	}
}

// Concurrent campaigns on the file store must serialize through the
// lock file: exactly one winner per round, no corrupted state, and the
// epoch advances exactly once. Run under -race in CI.
func TestFileElectionConcurrentCampaigns(t *testing.T) {
	e, err := NewFileElection(filepath.Join(t.TempDir(), "term.json"))
	if err != nil {
		t.Fatal(err)
	}
	const ttl = time.Minute
	ids := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	terms := make([]Term, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			term, err := e.Campaign(id, t0, ttl)
			if err != nil {
				t.Errorf("campaign %s: %v", id, err)
				return
			}
			terms[i] = term
		}(i, id)
	}
	wg.Wait()
	// Whoever won, every campaigner must have converged on one term.
	final, err := e.Campaign(terms[0].Leader, t0.Add(time.Second), ttl)
	if err != nil {
		t.Fatal(err)
	}
	if final.Epoch != 1 {
		t.Fatalf("%d concurrent bootstrap campaigns minted epoch %d, want 1", len(ids), final.Epoch)
	}
	for i, term := range terms {
		if term.Leader != final.Leader || term.Epoch != 1 {
			t.Fatalf("campaigner %s saw term %+v, store holds %+v", ids[i], term, final)
		}
	}
}

// The file store must survive a process restart: a new handle on the
// same path sees the persisted term.
func TestFileElectionPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "term.json")
	e1, err := NewFileElection(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Campaign("a", t0, time.Minute); err != nil {
		t.Fatal(err)
	}
	e2, err := NewFileElection(path)
	if err != nil {
		t.Fatal(err)
	}
	term, err := e2.Campaign("b", t0.Add(time.Second), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if term.Leader != "a" || term.Epoch != 1 {
		t.Fatalf("restarted handle lost the term: %+v", term)
	}
	if _, err := NewFileElection(filepath.Join(path, "nope", "term.json")); err == nil {
		t.Fatal("missing parent directory accepted")
	}
}
