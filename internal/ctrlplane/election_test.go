package ctrlplane

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// t0 is an arbitrary fixed origin for election-test clocks.
var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// The store-agnostic lifecycle and invariant coverage lives in
// conformance_test.go (testElectionConformance, run against all three
// stores); this file keeps the FileElection-specific regressions.

// Concurrent campaigns on the file store must serialize through the
// lock file: exactly one winner per round, no corrupted state, and the
// epoch advances exactly once. Run under -race in CI.
func TestFileElectionConcurrentCampaigns(t *testing.T) {
	e, err := NewFileElection(filepath.Join(t.TempDir(), "term.json"))
	if err != nil {
		t.Fatal(err)
	}
	const ttl = time.Minute
	ids := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	terms := make([]Term, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			term, err := e.Campaign(id, t0, ttl)
			if err != nil {
				t.Errorf("campaign %s: %v", id, err)
				return
			}
			terms[i] = term
		}(i, id)
	}
	wg.Wait()
	// Whoever won, every campaigner must have converged on one term.
	final, err := e.Campaign(terms[0].Leader, t0.Add(time.Second), ttl)
	if err != nil {
		t.Fatal(err)
	}
	if final.Epoch != 1 {
		t.Fatalf("%d concurrent bootstrap campaigns minted epoch %d, want 1", len(ids), final.Epoch)
	}
	for i, term := range terms {
		if term.Leader != final.Leader || term.Epoch != 1 {
			t.Fatalf("campaigner %s saw term %+v, store holds %+v", ids[i], term, final)
		}
	}
}

// The file store must survive a process restart: a new handle on the
// same path sees the persisted term.
func TestFileElectionPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "term.json")
	e1, err := NewFileElection(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Campaign("a", t0, time.Minute); err != nil {
		t.Fatal(err)
	}
	e2, err := NewFileElection(path)
	if err != nil {
		t.Fatal(err)
	}
	term, err := e2.Campaign("b", t0.Add(time.Second), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if term.Leader != "a" || term.Epoch != 1 {
		t.Fatalf("restarted handle lost the term: %+v", term)
	}
	if _, err := NewFileElection(filepath.Join(path, "nope", "term.json")); err == nil {
		t.Fatal("missing parent directory accepted")
	}
}

// A holder that crashed mid-campaign leaves its lock file behind; the
// store must steal locks older than the whole retry budget instead of
// erroring on every campaign forever, while a fresh lock — a live
// writer — still blocks. Regression: withLock used to treat any
// existing lock as live.
func TestFileElectionStealsOrphanedLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "term.json")
	e, err := NewFileElection(path)
	if err != nil {
		t.Fatal(err)
	}
	lock := path + ".lock"

	// The orphan: a dead process's token, aged well past the budget.
	if err := os.WriteFile(lock, []byte("999999-1"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphanAge := time.Now().Add(-time.Second)
	if err := os.Chtimes(lock, orphanAge, orphanAge); err != nil {
		t.Fatal(err)
	}
	term, err := e.Campaign("a", t0, time.Minute)
	if err != nil {
		t.Fatalf("campaign against an orphaned lock: %v", err)
	}
	if term.Leader != "a" || term.Epoch != 1 {
		t.Fatalf("post-steal term %+v", term)
	}
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Fatal("lock file left behind after the stolen campaign")
	}

	// A live writer's lock must still block. Its mtime is pinned into
	// the future so a scheduler stall cannot age it past the budget
	// mid-test.
	future := time.Now().Add(time.Hour)
	if err := os.WriteFile(lock, []byte("999999-2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(lock, future, future); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Campaign("a", t0.Add(time.Second), time.Minute); err == nil {
		t.Fatal("campaign went through a live lock")
	}
	// Once that lock ages out too, the store recovers on its own.
	if err := os.Chtimes(lock, orphanAge, orphanAge); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Campaign("a", t0.Add(2*time.Second), time.Minute); err != nil {
		t.Fatalf("campaign after the live lock aged into an orphan: %v", err)
	}
}

// A renewal that decides the exact term already stored must skip the
// rewrite. Regression: the decision was compared with struct ==, and
// time.Time's monotonic-clock reading (present on the freshly computed
// expiry, stripped from the JSON-decoded one) made every identical
// renewal look different, so each one burned a write + rename.
func TestFileElectionRenewalSkipsIdenticalWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "term.json")
	e, err := NewFileElection(path)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now() // carries a monotonic reading, unlike decoded state
	if _, err := e.Campaign("a", now, time.Minute); err != nil {
		t.Fatal(err)
	}
	st1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Same candidate, instant, and ttl: the decided term is the stored
	// term, instant-for-instant.
	term, err := e.Campaign("a", now, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if term.Leader != "a" || term.Epoch != 1 {
		t.Fatalf("identical renewal changed the term: %+v", term)
	}
	st2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !os.SameFile(st1, st2) {
		t.Fatal("an identical renewal rewrote the state file")
	}
}
