package ctrlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/url"

	"powerstruggle/internal/cluster"
)

// ProtocolV is the control-plane wire version; both sides reject
// anything else, so a mixed-version fleet fails loudly instead of
// misinterpreting budgets. v2 added coordinator epochs (leader-election
// fencing) and agent registration; the strict decoders mean a v1 peer
// rejects the new fields rather than silently ignoring them.
const ProtocolV = 2

// Agent endpoint paths.
const (
	PathAssign = "/ctrl/assign"
	PathReport = "/ctrl/report"
	PathLease  = "/ctrl/lease"
)

// PathRegister is the coordinator-side registration endpoint: agents
// announce themselves at boot so fleets grow without a restart.
const PathRegister = "/ctrl/register"

// PathLeader is the coordinator-side leadership probe: operators and
// agents ask any coordinator who leads, and under which epoch.
const PathLeader = "/ctrl/leader"

// PathVote is the coordinator-side quorum voter endpoint: proposers of
// the quorum election store (QuorumElection) prepare and accept ballots
// here. Every member of a -ha-members pool serves it.
const PathVote = "/ctrl/vote"

// Vote phases. A campaign is one prepare round (claim a ballot, learn
// the newest accepted term) followed by one accept round (write the
// decided term back); both commit only on a majority of voters.
const (
	VotePrepare = "prepare"
	VoteAccept  = "accept"
)

// maxBodyBytes bounds any control-plane request or response body. The
// largest legitimate message is a report carrying a cap-utility curve
// (a few hundred points); a megabyte is two orders of magnitude of
// headroom.
const maxBodyBytes = 1 << 20

// AssignRequest grants one server a power budget. The grant is also a
// lease renewal: the agent may draw up to CapW until T+LeaseS, after
// which it fences itself.
type AssignRequest struct {
	V int `json:"v"`
	// Epoch is the granting coordinator's leadership epoch. Agents
	// order grants by (Epoch, Seq): anything not strictly newer than
	// the last applied pair is acknowledged without effect, which is
	// what fences a deposed leader's in-flight fan-out exactly like a
	// stale lease. Epochs start at 1 (a single coordinator runs its
	// whole life in epoch 1).
	Epoch  uint64  `json:"epoch"`
	Seq    uint64  `json:"seq"`
	Server int     `json:"server"`
	T      float64 `json:"t"`
	CapW   float64 `json:"capW"`
	// LeaseS extends the agent's draw lease through T+LeaseS. Zero
	// means the lease never lapses (a daemon configured with its own
	// wall-clock TTL still applies that).
	LeaseS float64 `json:"leaseS"`
	// Iv is the protocol-clock interval this grant was minted in —
	// the coordinator's (epoch, interval-counter) clock, monotonic
	// across epochs (docs/WIRE.md §8). Zero means the coordinator runs
	// without a protocol clock and the lease ages in seconds above.
	Iv uint64 `json:"iv,omitempty"`
	// LeaseIv is the lease length in protocol intervals: the lease
	// lapses once the agent's effective interval reaches Iv+LeaseIv —
	// identically for trace-replay agents and wall-clock daemons.
	LeaseIv uint64 `json:"leaseIv,omitempty"`
	// IvS is the nominal interval length in seconds, which agents use
	// to age the protocol clock locally when the coordinator stalls
	// (no new interval observed ⇒ the clock keeps counting at IvS).
	IvS float64 `json:"ivS,omitempty"`
}

// Validate enforces the assign invariants the replay depends on.
func (r AssignRequest) Validate() error {
	if r.V != ProtocolV {
		return fmt.Errorf("ctrlplane: assign protocol v%d, want v%d", r.V, ProtocolV)
	}
	if r.Epoch == 0 {
		return fmt.Errorf("ctrlplane: assign epoch 0 (epochs start at 1)")
	}
	if r.Seq == 0 {
		return fmt.Errorf("ctrlplane: assign seq 0 (sequence numbers start at 1)")
	}
	if r.Server < 0 {
		return fmt.Errorf("ctrlplane: assign server %d", r.Server)
	}
	if !finite(r.T) || r.T < 0 {
		return fmt.Errorf("ctrlplane: assign time %g", r.T)
	}
	if !finite(r.CapW) || r.CapW < 0 {
		return fmt.Errorf("ctrlplane: assign cap %g W", r.CapW)
	}
	if !finite(r.LeaseS) || r.LeaseS < 0 {
		return fmt.Errorf("ctrlplane: assign lease %g s", r.LeaseS)
	}
	if err := validateClockFields(r.Iv, r.LeaseIv, r.IvS); err != nil {
		return fmt.Errorf("ctrlplane: assign %w", err)
	}
	return nil
}

// validateClockFields enforces the protocol-clock triple carried by
// grants and renewals: the fields travel together (an interval lease
// needs a mint interval and a nominal interval length to age against),
// and a clockless message carries all zeros.
func validateClockFields(iv, leaseIv uint64, ivS float64) error {
	if !finite(ivS) || ivS < 0 {
		return fmt.Errorf("interval length %g s", ivS)
	}
	if leaseIv > 0 && (iv == 0 || ivS <= 0) {
		return fmt.Errorf("interval lease %d with iv=%d ivS=%g (a protocol-clock lease needs iv >= 1 and ivS > 0)", leaseIv, iv, ivS)
	}
	if leaseIv == 0 && (iv != 0 || ivS != 0) {
		return fmt.Errorf("clock fields iv=%d ivS=%g without an interval lease", iv, ivS)
	}
	return nil
}

// AssignResponse acknowledges a budget grant with the agent's state
// after applying it.
type AssignResponse struct {
	V      int `json:"v"`
	Server int `json:"server"`
	// Epoch is the highest coordinator epoch the agent has applied a
	// grant from. A coordinator seeing an Epoch above its own in any
	// response has been deposed and must stop granting.
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
	// Applied is false when the request was stale (its Seq not newer
	// than the last applied one); the reported state is then the
	// in-force assignment, not the request's.
	Applied bool    `json:"applied"`
	CapW    float64 `json:"capW"`
	PerfN   float64 `json:"perfN"`
	GridW   float64 `json:"gridW"`
	SoC     float64 `json:"soc"`
	Fenced  bool    `json:"fenced"`
	// SafeMode reports leaderless degradation in progress: the agent is
	// fenced but holding/decaying its last granted cap instead of
	// cliffing to the fence cap.
	SafeMode bool `json:"safeMode,omitempty"`
	// Iv is the highest protocol-clock interval the agent has observed
	// (0 while clockless).
	Iv uint64 `json:"iv,omitempty"`
}

// Report is one telemetry scrape: the agent's enforced cap, draw,
// battery state, and (optionally) its cap-utility curve for the
// coordinator's apportioning DP.
type Report struct {
	V      int `json:"v"`
	Server int `json:"server"`
	// Epoch is the highest coordinator epoch the agent has applied a
	// grant from (0 before the first grant) — how a warm standby learns
	// the cluster's current epoch from scrapes alone.
	Epoch  uint64  `json:"epoch"`
	Seq    uint64  `json:"seq"`
	CapW   float64 `json:"capW"`
	PerfN  float64 `json:"perfN"`
	GridW  float64 `json:"gridW"`
	SoC    float64 `json:"soc"`
	Fenced bool    `json:"fenced"`
	// SafeMode mirrors AssignResponse.SafeMode: fenced, but degrading
	// gracefully rather than cliffed at the fence cap.
	SafeMode   bool    `json:"safeMode,omitempty"`
	IdleFloorW float64 `json:"idleFloorW"`
	NameplateW float64 `json:"nameplateW"`
	// UtilityCurve samples cap → (perf, grid) on the shared
	// ServerCapStepW grid. Agents that cannot characterize themselves
	// yet (a live daemon still learning its mix) omit it; the
	// coordinator then falls back to even apportioning for them.
	UtilityCurve []cluster.CapPoint `json:"utilityCurve,omitempty"`
	// CurveConf and CurveCells qualify an online-learned UtilityCurve:
	// the estimator's coverage confidence in [0, 1] and the number of
	// cap cells actually observed. Pre-characterized curves (trace
	// replay agents) omit both — absence means full trust. The
	// coordinator treats a learned curve below its confidence floor as
	// no curve at all (docs/CONTROL_PLANE.md "Online utility
	// learning").
	CurveConf  float64 `json:"curveConf,omitempty"`
	CurveCells int     `json:"curveCells,omitempty"`
	// Version is the agent's build version, surfaced so a fleet
	// upgrade can be audited from the coordinator.
	Version string `json:"version,omitempty"`
	// Iv is the highest protocol-clock interval the agent has observed
	// (0 while clockless). A restarting coordinator rehydrates its
	// interval counter from a majority of these before granting, so a
	// crash–restart cannot re-issue interval numbers.
	Iv uint64 `json:"iv,omitempty"`
}

// Validate enforces the report invariants the apportioning DP depends
// on: finite non-negative power figures and a strictly increasing,
// finite utility curve.
func (r Report) Validate() error {
	if r.V != ProtocolV {
		return fmt.Errorf("ctrlplane: report protocol v%d, want v%d", r.V, ProtocolV)
	}
	if r.Server < 0 {
		return fmt.Errorf("ctrlplane: report server %d", r.Server)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"capW", r.CapW}, {"perfN", r.PerfN}, {"gridW", r.GridW},
		{"idleFloorW", r.IdleFloorW}, {"nameplateW", r.NameplateW},
	} {
		if !finite(f.v) || f.v < 0 {
			return fmt.Errorf("ctrlplane: report %s = %g", f.name, f.v)
		}
	}
	if !finite(r.SoC) || r.SoC < 0 || r.SoC > 1 {
		return fmt.Errorf("ctrlplane: report soc = %g outside [0, 1]", r.SoC)
	}
	prev := math.Inf(-1)
	for i, p := range r.UtilityCurve {
		if !finite(p.CapW) || !finite(p.Perf) || !finite(p.GridW) ||
			p.CapW < 0 || p.Perf < 0 || p.GridW < 0 {
			return fmt.Errorf("ctrlplane: report curve point %d = %+v", i, p)
		}
		if p.CapW <= prev {
			return fmt.Errorf("ctrlplane: report curve caps must increase (%g after %g)", p.CapW, prev)
		}
		prev = p.CapW
	}
	if !finite(r.CurveConf) || r.CurveConf < 0 || r.CurveConf > 1 {
		return fmt.Errorf("ctrlplane: report curveConf = %g outside [0, 1]", r.CurveConf)
	}
	if r.CurveCells < 0 {
		return fmt.Errorf("ctrlplane: report curveCells = %d", r.CurveCells)
	}
	if (r.CurveConf != 0 || r.CurveCells != 0) && len(r.UtilityCurve) == 0 {
		return fmt.Errorf("ctrlplane: report curve meta (conf %g, %d cells) without a curve", r.CurveConf, r.CurveCells)
	}
	return nil
}

// LeaseRequest renews an agent's draw lease without changing its
// budget. Only the epoch that granted the in-force budget may renew
// it: a renewal from any other epoch is answered with current state
// but does not move the lease clock.
type LeaseRequest struct {
	V      int     `json:"v"`
	Epoch  uint64  `json:"epoch"`
	Server int     `json:"server"`
	T      float64 `json:"t"`
	LeaseS float64 `json:"leaseS"`
	// Iv/LeaseIv/IvS mirror AssignRequest's protocol-clock triple: a
	// renewal re-anchors the interval lease at the renewing interval.
	Iv      uint64  `json:"iv,omitempty"`
	LeaseIv uint64  `json:"leaseIv,omitempty"`
	IvS     float64 `json:"ivS,omitempty"`
}

// Validate enforces the lease-renewal invariants.
func (r LeaseRequest) Validate() error {
	if r.V != ProtocolV {
		return fmt.Errorf("ctrlplane: lease protocol v%d, want v%d", r.V, ProtocolV)
	}
	if r.Epoch == 0 {
		return fmt.Errorf("ctrlplane: lease epoch 0 (epochs start at 1)")
	}
	if r.Server < 0 {
		return fmt.Errorf("ctrlplane: lease server %d", r.Server)
	}
	if !finite(r.T) || r.T < 0 {
		return fmt.Errorf("ctrlplane: lease time %g", r.T)
	}
	if !finite(r.LeaseS) || r.LeaseS < 0 {
		return fmt.Errorf("ctrlplane: lease length %g s", r.LeaseS)
	}
	if err := validateClockFields(r.Iv, r.LeaseIv, r.IvS); err != nil {
		return fmt.Errorf("ctrlplane: lease %w", err)
	}
	return nil
}

// LeaseResponse acknowledges a renewal. Epoch is the agent's highest
// applied epoch: a renewing coordinator whose epoch is lower has been
// deposed — its renewal did not extend anything.
type LeaseResponse struct {
	V      int     `json:"v"`
	Epoch  uint64  `json:"epoch"`
	Server int     `json:"server"`
	CapW   float64 `json:"capW"`
	// ExpiresT is the trace time the renewed lease lapses (0 when the
	// lease never lapses).
	ExpiresT float64 `json:"expiresT"`
	Fenced   bool    `json:"fenced"`
	// Iv is the highest protocol-clock interval the agent has observed
	// (0 while clockless).
	Iv uint64 `json:"iv,omitempty"`
}

// RegisterRequest announces one agent to the coordinator: its fleet
// index, base URL, and nameplate. Agents send it at boot (and may
// re-send after a restart with a new URL); scrape heartbeats keep the
// member listed afterwards.
type RegisterRequest struct {
	V      int    `json:"v"`
	Server int    `json:"server"`
	URL    string `json:"url"`
	// NameplateW is advisory (the scrape carries the authoritative
	// figure); it lets the coordinator log what joined.
	NameplateW float64 `json:"nameplateW"`
}

// maxURLBytes bounds a registered URL; anything longer is garbage.
const maxURLBytes = 2048

// Validate enforces the registration invariants.
func (r RegisterRequest) Validate() error {
	if r.V != ProtocolV {
		return fmt.Errorf("ctrlplane: register protocol v%d, want v%d", r.V, ProtocolV)
	}
	if r.Server < 0 {
		return fmt.Errorf("ctrlplane: register server %d", r.Server)
	}
	if len(r.URL) > maxURLBytes {
		return fmt.Errorf("ctrlplane: register url %d bytes", len(r.URL))
	}
	u, err := url.Parse(r.URL)
	if err != nil {
		return fmt.Errorf("ctrlplane: register url: %w", err)
	}
	if (u.Scheme != "http" && u.Scheme != "https" && u.Scheme != "tcp") || u.Host == "" {
		return fmt.Errorf("ctrlplane: register url %q (need http(s):// or tcp:// host[:port])", r.URL)
	}
	if !finite(r.NameplateW) || r.NameplateW < 0 {
		return fmt.Errorf("ctrlplane: register nameplate %g W", r.NameplateW)
	}
	return nil
}

// RegisterResponse acknowledges a registration and tells the agent who
// currently leads, so an agent announcing to a standby knows where
// grants will come from.
type RegisterResponse struct {
	V        int    `json:"v"`
	Server   int    `json:"server"`
	Accepted bool   `json:"accepted"`
	Epoch    uint64 `json:"epoch"`
	Leader   bool   `json:"leader"`
	LeaderID string `json:"leaderID,omitempty"`
}

// maxLeaderBytes bounds a candidate identity on the wire; anything
// longer than a hostname-pid pair is garbage.
const maxLeaderBytes = 256

// WireTerm is a Term on the wire. Expiry travels as Unix nanoseconds
// (0 encodes the zero time — a resigned term) so an encode/decode
// round trip preserves the instant exactly: serializing time.Time
// directly would drag location names and RFC 3339 truncation into the
// voters' equality checks.
type WireTerm struct {
	Epoch           uint64 `json:"epoch"`
	Leader          string `json:"leader"`
	ExpiresUnixNano int64  `json:"expiresUnixNano"`
}

// Validate enforces the term invariants every voter stores.
func (t WireTerm) Validate() error {
	if t.Epoch == 0 {
		return fmt.Errorf("ctrlplane: vote term epoch 0 (epochs start at 1)")
	}
	if t.Leader == "" {
		return fmt.Errorf("ctrlplane: vote term with empty leader")
	}
	if len(t.Leader) > maxLeaderBytes {
		return fmt.Errorf("ctrlplane: vote term leader %d bytes", len(t.Leader))
	}
	if t.ExpiresUnixNano < 0 {
		return fmt.Errorf("ctrlplane: vote term expiry %d ns", t.ExpiresUnixNano)
	}
	return nil
}

// VoteRequest is one phase of a quorum-store consensus round. Ballots
// totally order proposals across the pool (the round counter in the
// high bits, a hash of the proposer identity in the low bits keeps
// them unique); prepare claims a ballot, accept proposes a term under
// a claimed one.
type VoteRequest struct {
	V      int    `json:"v"`
	Phase  string `json:"phase"`
	Ballot uint64 `json:"ballot"`
	// Term is the proposed value — required for accept, absent for
	// prepare.
	Term *WireTerm `json:"term,omitempty"`
}

// Validate enforces the vote invariants the voters' ordering depends
// on.
func (r VoteRequest) Validate() error {
	if r.V != ProtocolV {
		return fmt.Errorf("ctrlplane: vote protocol v%d, want v%d", r.V, ProtocolV)
	}
	if r.Ballot == 0 {
		return fmt.Errorf("ctrlplane: vote ballot 0 (ballots start at 1)")
	}
	switch r.Phase {
	case VotePrepare:
		if r.Term != nil {
			return fmt.Errorf("ctrlplane: prepare carries a term")
		}
	case VoteAccept:
		if r.Term == nil {
			return fmt.Errorf("ctrlplane: accept without a term")
		}
		if err := r.Term.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("ctrlplane: vote phase %q", r.Phase)
	}
	return nil
}

// VoteResponse is a voter's answer. Promise is its promised ballot
// after the call — a rejected proposer bumps its next ballot past it.
// AcceptedBallot and Term report the voter's last accepted value
// (both absent while it has none); prepare grants carry it so the
// proposer adopts the newest possibly-committed term before deciding.
type VoteResponse struct {
	V              int       `json:"v"`
	Granted        bool      `json:"granted"`
	Promise        uint64    `json:"promise"`
	AcceptedBallot uint64    `json:"acceptedBallot,omitempty"`
	Term           *WireTerm `json:"term,omitempty"`
}

// Validate enforces the voter-answer invariants the proposer adopts
// values under.
func (r VoteResponse) Validate() error {
	if r.V != ProtocolV {
		return fmt.Errorf("ctrlplane: vote response protocol v%d, want v%d", r.V, ProtocolV)
	}
	if (r.AcceptedBallot == 0) != (r.Term == nil) {
		return fmt.Errorf("ctrlplane: vote response accepted ballot %d with term %v", r.AcceptedBallot, r.Term)
	}
	if r.AcceptedBallot > r.Promise {
		return fmt.Errorf("ctrlplane: vote response accepted ballot %d above promise %d", r.AcceptedBallot, r.Promise)
	}
	if r.Term != nil {
		return r.Term.Validate()
	}
	return nil
}

// finite reports whether v is a usable float (not NaN or ±Inf).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// decodeStrict unmarshals exactly one JSON value with unknown fields
// rejected and trailing garbage refused — wire messages are
// machine-built, so anything unexpected is a bug or an attack, not a
// compatibility case.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("ctrlplane: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("ctrlplane: trailing data after message")
	}
	return nil
}

// DecodeAssign parses and validates an assign request.
func DecodeAssign(data []byte) (AssignRequest, error) {
	var r AssignRequest
	if err := decodeStrict(data, &r); err != nil {
		return AssignRequest{}, err
	}
	if err := r.Validate(); err != nil {
		return AssignRequest{}, err
	}
	return r, nil
}

// DecodeReport parses and validates a telemetry report.
func DecodeReport(data []byte) (Report, error) {
	var r Report
	if err := decodeStrict(data, &r); err != nil {
		return Report{}, err
	}
	if err := r.Validate(); err != nil {
		return Report{}, err
	}
	return r, nil
}

// DecodeLease parses and validates a lease renewal.
func DecodeLease(data []byte) (LeaseRequest, error) {
	var r LeaseRequest
	if err := decodeStrict(data, &r); err != nil {
		return LeaseRequest{}, err
	}
	if err := r.Validate(); err != nil {
		return LeaseRequest{}, err
	}
	return r, nil
}

// DecodeRegister parses and validates an agent registration.
func DecodeRegister(data []byte) (RegisterRequest, error) {
	var r RegisterRequest
	if err := decodeStrict(data, &r); err != nil {
		return RegisterRequest{}, err
	}
	if err := r.Validate(); err != nil {
		return RegisterRequest{}, err
	}
	return r, nil
}

// DecodeVote parses and validates a quorum vote request.
func DecodeVote(data []byte) (VoteRequest, error) {
	var r VoteRequest
	if err := decodeStrict(data, &r); err != nil {
		return VoteRequest{}, err
	}
	if err := r.Validate(); err != nil {
		return VoteRequest{}, err
	}
	return r, nil
}

// DecodeVoteResponse parses and validates a voter's answer.
func DecodeVoteResponse(data []byte) (VoteResponse, error) {
	var r VoteResponse
	if err := decodeStrict(data, &r); err != nil {
		return VoteResponse{}, err
	}
	if err := r.Validate(); err != nil {
		return VoteResponse{}, err
	}
	return r, nil
}

// ReadBody drains a bounded control-plane request or response body —
// exported so the daemon's /ctrl handlers apply the same bound as the
// replay agent's.
func ReadBody(r io.Reader) ([]byte, error) { return readBody(r) }

// readBody drains a bounded request or response body.
func readBody(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxBodyBytes {
		return nil, fmt.Errorf("ctrlplane: body exceeds %d bytes", maxBodyBytes)
	}
	return data, nil
}
