package kernels

import (
	"fmt"
	"math"
	"math/rand"
)

// MassSpringGrid is a 2-D cloth/face patch of unit masses connected to
// their four neighbours by springs — the implicit-integration core of a
// facesim-style physics workload.
type MassSpringGrid struct {
	W, H int
	// PosX/PosY/VelX/VelY are the per-node states.
	PosX, PosY, VelX, VelY []float64
	// Pinned nodes do not move (the boundary).
	Pinned []bool
	// Stiffness and Damping parameterize the springs.
	Stiffness, Damping float64
}

// NewMassSpringGrid builds a w x h grid at rest with the top row pinned
// and a deterministic initial perturbation.
func NewMassSpringGrid(w, h int, seed int64) (*MassSpringGrid, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("kernels: grid %dx%d too small", w, h)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &MassSpringGrid{
		W: w, H: h,
		PosX: make([]float64, w*h), PosY: make([]float64, w*h),
		VelX: make([]float64, w*h), VelY: make([]float64, w*h),
		Pinned:    make([]bool, w*h),
		Stiffness: 80, Damping: 2.5,
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			g.PosX[i] = float64(x) + 0.05*rng.NormFloat64()
			g.PosY[i] = float64(y) + 0.05*rng.NormFloat64()
			if y == 0 {
				g.Pinned[i] = true
				g.PosX[i], g.PosY[i] = float64(x), 0
			}
		}
	}
	return g, nil
}

// StepImplicit advances the grid by dt seconds using Jacobi-iterated
// implicit Euler (iters inner iterations), the numerically-stiff solve
// that makes this workload compute-bound. It returns the residual of the
// final iteration.
func (g *MassSpringGrid) StepImplicit(dt float64, iters int) float64 {
	w, h := g.W, g.H
	nextVX := make([]float64, len(g.VelX))
	nextVY := make([]float64, len(g.VelY))
	copy(nextVX, g.VelX)
	copy(nextVY, g.VelY)
	var residual float64
	const gravity = -9.8
	for it := 0; it < iters; it++ {
		residual = 0
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				if g.Pinned[i] {
					continue
				}
				// Spring forces at the position advanced by the
				// candidate velocity (the implicit part).
				px := g.PosX[i] + nextVX[i]*dt
				py := g.PosY[i] + nextVY[i]*dt
				var fx, fy float64
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := x+d[0], y+d[1]
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					j := ny*w + nx
					qx := g.PosX[j] + nextVX[j]*dt
					qy := g.PosY[j] + nextVY[j]*dt
					dx, dy := qx-px, qy-py
					dist := math.Hypot(dx, dy)
					if dist < 1e-9 {
						continue
					}
					stretch := dist - 1 // unit rest length
					fx += g.Stiffness * stretch * dx / dist
					fy += g.Stiffness * stretch * dy / dist
				}
				fy += gravity
				fx -= g.Damping * nextVX[i]
				fy -= g.Damping * nextVY[i]
				vx := g.VelX[i] + fx*dt
				vy := g.VelY[i] + fy*dt
				residual += math.Abs(vx-nextVX[i]) + math.Abs(vy-nextVY[i])
				nextVX[i], nextVY[i] = vx, vy
			}
		}
	}
	for i := range g.VelX {
		if g.Pinned[i] {
			continue
		}
		g.VelX[i], g.VelY[i] = nextVX[i], nextVY[i]
		g.PosX[i] += g.VelX[i] * dt
		g.PosY[i] += g.VelY[i] * dt
	}
	return residual
}

// Energy returns the grid's kinetic energy, a stability probe.
func (g *MassSpringGrid) Energy() float64 {
	var e float64
	for i := range g.VelX {
		e += 0.5 * (g.VelX[i]*g.VelX[i] + g.VelY[i]*g.VelY[i])
	}
	return e
}

// FaceSim runs frames of the implicit solve, beating once per frame, and
// returns the final kinetic energy.
func FaceSim(w, h, frames, itersPerFrame int, seed int64, onFrame func()) (float64, error) {
	g, err := NewMassSpringGrid(w, h, seed)
	if err != nil {
		return 0, err
	}
	for f := 0; f < frames; f++ {
		g.StepImplicit(1.0/60, itersPerFrame)
		if onFrame != nil {
			onFrame()
		}
	}
	return g.Energy(), nil
}
