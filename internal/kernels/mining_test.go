package kernels

import (
	"testing"
)

func TestAprioriOnKnownBaskets(t *testing.T) {
	// {1,2} appears 3 times; {1,2,3} twice; 4 once.
	txns := []Transaction{
		{1, 2, 3},
		{1, 2},
		{1, 2, 3},
		{4},
	}
	sets, err := Apriori(txns, 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	support := map[string]int{}
	for _, s := range sets {
		support[itemKey(s.Items)] = s.Support
	}
	cases := []struct {
		items []int32
		want  int
	}{
		{[]int32{1}, 3},
		{[]int32{2}, 3},
		{[]int32{3}, 2},
		{[]int32{1, 2}, 3},
		{[]int32{1, 3}, 2},
		{[]int32{2, 3}, 2},
		{[]int32{1, 2, 3}, 2},
	}
	for _, tc := range cases {
		if got := support[itemKey(tc.items)]; got != tc.want {
			t.Errorf("support(%v) = %d, want %d", tc.items, got, tc.want)
		}
	}
	if _, ok := support[itemKey([]int32{4})]; ok {
		t.Error("infrequent singleton reported")
	}
	if len(sets) != len(cases) {
		t.Errorf("%d frequent itemsets, want %d", len(sets), len(cases))
	}
}

func TestAprioriDownwardClosure(t *testing.T) {
	txns := SyntheticBaskets(800, 60, 6, 4, 3)
	sets, err := Apriori(txns, 40, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) == 0 {
		t.Fatal("no frequent itemsets mined from patterned baskets")
	}
	bySupport := map[string]int{}
	for _, s := range sets {
		bySupport[itemKey(s.Items)] = s.Support
	}
	for _, s := range sets {
		if s.Support < 40 {
			t.Fatalf("itemset %v below the support threshold (%d)", s.Items, s.Support)
		}
		// Downward closure: every prefix-removed subset is frequent
		// with at least the superset's support.
		if len(s.Items) < 2 {
			continue
		}
		sub := make([]int32, 0, len(s.Items)-1)
		for skip := range s.Items {
			sub = sub[:0]
			for i, v := range s.Items {
				if i != skip {
					sub = append(sub, v)
				}
			}
			subSupport, ok := bySupport[itemKey(sub)]
			if !ok {
				t.Fatalf("subset %v of frequent %v not reported", sub, s.Items)
			}
			if subSupport < s.Support {
				t.Fatalf("subset %v support %d below superset's %d", sub, subSupport, s.Support)
			}
		}
	}
}

func TestAprioriValidation(t *testing.T) {
	if _, err := Apriori(nil, 1, 0, nil); err == nil {
		t.Error("empty transactions accepted")
	}
	if _, err := Apriori([]Transaction{{1}}, 0, 0, nil); err == nil {
		t.Error("zero support accepted")
	}
}

func TestAprioriMaxLenBounds(t *testing.T) {
	txns := SyntheticBaskets(500, 40, 4, 5, 9)
	sets, err := Apriori(txns, 25, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sets {
		if len(s.Items) > 2 {
			t.Fatalf("itemset %v exceeds maxLen 2", s.Items)
		}
	}
}

func TestFaceSimStaysStable(t *testing.T) {
	g, err := NewMassSpringGrid(24, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	var prevEnergy float64
	for f := 0; f < 300; f++ {
		g.StepImplicit(1.0/60, 8)
		e := g.Energy()
		if e != e || e > 1e6 { // NaN or blow-up
			t.Fatalf("solver unstable at frame %d: energy %g", f, e)
		}
		prevEnergy = e
	}
	// Damped cloth under gravity settles: energy stays bounded.
	if prevEnergy > 1e4 {
		t.Errorf("final kinetic energy %g, expected a settled patch", prevEnergy)
	}
	// Pinned row never moves.
	for x := 0; x < g.W; x++ {
		if g.PosY[x] != 0 {
			t.Fatalf("pinned node %d moved to y=%g", x, g.PosY[x])
		}
	}
	if _, err := NewMassSpringGrid(1, 5, 0); err == nil {
		t.Error("degenerate grid accepted")
	}
}

func TestKNNReturnsNearest(t *testing.T) {
	db := NewFeatureDB(2000, 32, 7)
	query := db.Vecs[123] // a database vector queried against itself
	nn, err := db.KNN(query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 5 {
		t.Fatalf("%d neighbours", len(nn))
	}
	if nn[0] != 123 {
		t.Errorf("self not the nearest neighbour: %v", nn)
	}
	// Results are in descending similarity.
	sim := func(i int) float32 {
		var dot float32
		for d := range query {
			dot += query[d] * db.Vecs[i][d]
		}
		return dot
	}
	for i := 1; i < len(nn); i++ {
		if sim(nn[i]) > sim(nn[i-1])+1e-6 {
			t.Fatalf("neighbours out of order at %d", i)
		}
	}
	// Brute-force cross-check of the top-1.
	best, bestSim := -1, float32(-2)
	for i := range db.Vecs {
		if s := sim(i); s > bestSim {
			best, bestSim = i, s
		}
	}
	if best != nn[0] {
		t.Errorf("top-1 %d, brute force %d", nn[0], best)
	}
}

func TestKNNValidation(t *testing.T) {
	db := NewFeatureDB(10, 8, 1)
	if _, err := db.KNN(make([]float32, 4), 3); err == nil {
		t.Error("wrong-dimension query accepted")
	}
	if _, err := db.KNN(make([]float32, 8), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := db.KNN(make([]float32, 8), 11); err == nil {
		t.Error("k>n accepted")
	}
}

func TestFerretDeterministic(t *testing.T) {
	db := NewFeatureDB(500, 16, 2)
	a, err := Ferret(db, 5, 4, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ferret(db, 5, 4, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("ferret checksum not deterministic")
	}
}
