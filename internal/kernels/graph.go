// Package kernels provides real, runnable Go implementations of the
// benchmark applications the paper co-locates: the GAP-style graph
// kernels (BFS, connected components, SSSP, betweenness centrality,
// triangle counting, PageRank), MineBench-style k-means, the STREAM
// bandwidth kernel, and a PARSEC-style media pipeline. Each kernel emits
// Application Heartbeats per unit of useful work, so the runtime's
// performance accounting works on them exactly as the paper's prototype
// worked on the originals.
//
// The analytic models in internal/workload stand in for these kernels on
// the simulated platform; this package exists so examples exercise real
// computation, and so the models' qualitative shapes (memory-bound
// STREAM, compute-bound k-means, irregular graph kernels) have a
// concrete referent.
package kernels

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a directed graph in compressed sparse row form.
type Graph struct {
	// N is the vertex count.
	N int
	// RowPtr has N+1 entries; vertex v's out-neighbors are
	// Col[RowPtr[v]:RowPtr[v+1]].
	RowPtr []int32
	// Col holds the concatenated adjacency lists.
	Col []int32
	// Weight holds per-edge weights parallel to Col (nil for
	// unweighted graphs).
	Weight []float32
}

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.Col) }

// OutDegree returns vertex v's out-degree.
func (g *Graph) OutDegree(v int32) int {
	return int(g.RowPtr[v+1] - g.RowPtr[v])
}

// Neighbors returns vertex v's out-neighbor slice (shared storage; do
// not mutate).
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Col[g.RowPtr[v]:g.RowPtr[v+1]]
}

// Validate checks CSR invariants.
func (g *Graph) Validate() error {
	if g.N < 0 {
		return fmt.Errorf("kernels: negative vertex count %d", g.N)
	}
	if len(g.RowPtr) != g.N+1 {
		return fmt.Errorf("kernels: RowPtr has %d entries for %d vertices", len(g.RowPtr), g.N)
	}
	if g.RowPtr[0] != 0 || int(g.RowPtr[g.N]) != len(g.Col) {
		return fmt.Errorf("kernels: RowPtr endpoints [%d, %d] disagree with %d edges", g.RowPtr[0], g.RowPtr[g.N], len(g.Col))
	}
	for v := 0; v < g.N; v++ {
		if g.RowPtr[v] > g.RowPtr[v+1] {
			return fmt.Errorf("kernels: RowPtr not monotone at vertex %d", v)
		}
	}
	for _, c := range g.Col {
		if c < 0 || int(c) >= g.N {
			return fmt.Errorf("kernels: edge endpoint %d outside %d vertices", c, g.N)
		}
	}
	if g.Weight != nil && len(g.Weight) != len(g.Col) {
		return fmt.Errorf("kernels: %d weights for %d edges", len(g.Weight), len(g.Col))
	}
	return nil
}

// edgeList builds a CSR graph from an edge list, sorting adjacencies.
func edgeList(n int, src, dst []int32, w []float32) *Graph {
	deg := make([]int32, n+1)
	for _, s := range src {
		deg[s+1]++
	}
	row := make([]int32, n+1)
	for v := 0; v < n; v++ {
		row[v+1] = row[v] + deg[v+1]
	}
	col := make([]int32, len(src))
	var wt []float32
	if w != nil {
		wt = make([]float32, len(src))
	}
	next := make([]int32, n)
	copy(next, row[:n])
	for i, s := range src {
		col[next[s]] = dst[i]
		if w != nil {
			wt[next[s]] = w[i]
		}
		next[s]++
	}
	g := &Graph{N: n, RowPtr: row, Col: col, Weight: wt}
	// Sort each adjacency list (by target) so intersections and scans
	// are cache-friendly and deterministic.
	for v := 0; v < n; v++ {
		lo, hi := row[v], row[v+1]
		if wt == nil {
			s := col[lo:hi]
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			continue
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = i
		}
		c, ww := col[lo:hi], wt[lo:hi]
		sort.Slice(idx, func(i, j int) bool { return c[idx[i]] < c[idx[j]] })
		nc := make([]int32, len(idx))
		nw := make([]float32, len(idx))
		for i, j := range idx {
			nc[i], nw[i] = c[j], ww[j]
		}
		copy(c, nc)
		copy(ww, nw)
	}
	return g
}

// UniformRandom generates an Erdos-Renyi-style directed graph with n
// vertices and approximately degree*n edges, deterministically from
// seed.
func UniformRandom(n, degree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	m := n * degree
	src := make([]int32, m)
	dst := make([]int32, m)
	for i := 0; i < m; i++ {
		src[i] = int32(rng.Intn(n))
		dst[i] = int32(rng.Intn(n))
	}
	return edgeList(n, src, dst, nil)
}

// Kronecker generates an RMAT/Kronecker graph (the GAP benchmark's
// generator family) with 2^scale vertices and degree*2^scale edges, with
// the usual (0.57, 0.19, 0.19) partition probabilities.
func Kronecker(scale, degree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := n * degree
	const a, b, c = 0.57, 0.19, 0.19
	src := make([]int32, m)
	dst := make([]int32, m)
	for i := 0; i < m; i++ {
		var s, d int32
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: neither bit set
			case r < a+b:
				d |= 1 << bit
			case r < a+b+c:
				s |= 1 << bit
			default:
				s |= 1 << bit
				d |= 1 << bit
			}
		}
		src[i], dst[i] = s, d
	}
	return edgeList(n, src, dst, nil)
}

// WithUniformWeights returns a copy of g carrying uniform random edge
// weights in [1, maxW), for SSSP.
func (g *Graph) WithUniformWeights(maxW float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float32, len(g.Col))
	for i := range w {
		w[i] = float32(1 + rng.Float64()*(maxW-1))
	}
	out := *g
	out.Weight = w
	return &out
}

// Reverse returns the transpose graph (used by PageRank's pull phase and
// direction-optimizing traversals).
func (g *Graph) Reverse() *Graph {
	src := make([]int32, 0, len(g.Col))
	dst := make([]int32, 0, len(g.Col))
	for v := int32(0); int(v) < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			src = append(src, u)
			dst = append(dst, v)
		}
	}
	return edgeList(g.N, src, dst, nil)
}
