package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

// pathGraph builds the directed path 0 -> 1 -> ... -> n-1.
func pathGraph(n int) *Graph {
	src := make([]int32, n-1)
	dst := make([]int32, n-1)
	for i := 0; i < n-1; i++ {
		src[i], dst[i] = int32(i), int32(i+1)
	}
	return edgeList(n, src, dst, nil)
}

// completeGraph builds K_n with both edge directions.
func completeGraph(n int) *Graph {
	var src, dst []int32
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				src = append(src, int32(i))
				dst = append(dst, int32(j))
			}
		}
	}
	return edgeList(n, src, dst, nil)
}

func TestGraphValidate(t *testing.T) {
	g := pathGraph(5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *g
	bad.RowPtr = bad.RowPtr[:3]
	if err := bad.Validate(); err == nil {
		t.Error("truncated RowPtr accepted")
	}
	bad2 := *g
	bad2.Col = append([]int32(nil), g.Col...)
	bad2.Col[0] = 99
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

func TestGeneratorsProduceValidGraphs(t *testing.T) {
	for _, g := range []*Graph{
		UniformRandom(500, 8, 1),
		Kronecker(10, 8, 2),
	} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if g.Edges() == 0 {
			t.Error("generator produced no edges")
		}
	}
	// Determinism.
	a := UniformRandom(100, 4, 7)
	b := UniformRandom(100, 4, 7)
	if a.Edges() != b.Edges() {
		t.Fatal("generator not deterministic")
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := pathGraph(10)
	var visited int
	parent := BFS(g, 0, func(v int) { visited += v })
	if visited != 9 {
		t.Errorf("BFS visited %d vertices beyond the source, want 9", visited)
	}
	for v := 1; v < 10; v++ {
		if parent[v] != int32(v-1) {
			t.Errorf("parent[%d] = %d, want %d", v, parent[v], v-1)
		}
	}
	if parent[0] != 0 {
		t.Errorf("source parent = %d", parent[0])
	}
}

func TestBFSParentsFormValidTree(t *testing.T) {
	g := Kronecker(10, 8, 3)
	parent := BFS(g, 0, nil)
	// Every reached vertex's parent must be reached and actually have
	// an edge to it.
	for v := int32(0); int(v) < g.N; v++ {
		p := parent[v]
		if p == -1 || v == 0 {
			continue
		}
		if parent[p] == -1 {
			t.Fatalf("vertex %d reached via unreached parent %d", v, p)
		}
		found := false
		for _, u := range g.Neighbors(p) {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no edge %d -> %d despite parent link", p, v)
		}
	}
}

func TestConnectedComponentsOnKnownGraph(t *testing.T) {
	// Two components: {0, 1, 2} as a path and {3, 4} as an edge.
	g := edgeList(5, []int32{0, 1, 3}, []int32{1, 2, 4}, nil)
	labels := ConnectedComponents(g, nil)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("component 1 split: %v", labels)
	}
	if labels[3] != labels[4] {
		t.Errorf("component 2 split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Errorf("components merged: %v", labels)
	}
}

func TestSSSPMatchesBFSOnUnitWeights(t *testing.T) {
	g := Kronecker(9, 6, 4)
	unit := *g
	unit.Weight = make([]float32, len(g.Col))
	for i := range unit.Weight {
		unit.Weight[i] = 1
	}
	dist := SSSP(&unit, 0, 0, nil)
	// BFS levels give the same distances on unit weights.
	level := make([]int32, g.N)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	frontier := []int32{0}
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if level[u] == -1 {
					level[u] = level[v] + 1
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	for v := 0; v < g.N; v++ {
		switch {
		case level[v] == -1:
			if !math.IsInf(float64(dist[v]), 1) {
				t.Fatalf("vertex %d unreachable by BFS but dist %g", v, dist[v])
			}
		case float64(dist[v]) != float64(level[v]):
			t.Fatalf("vertex %d: dist %g, BFS level %d", v, dist[v], level[v])
		}
	}
}

func TestSSSPTriangleInequality(t *testing.T) {
	g := Kronecker(9, 6, 5).WithUniformWeights(8, 6)
	dist := SSSP(g, 0, 0, nil)
	for v := int32(0); int(v) < g.N; v++ {
		if math.IsInf(float64(dist[v]), 1) {
			continue
		}
		row := g.RowPtr[v]
		for i, u := range g.Neighbors(v) {
			w := g.Weight[int(row)+i]
			if float64(dist[u]) > float64(dist[v]+w)+1e-4 {
				t.Fatalf("relaxable edge %d->%d: %g > %g + %g", v, u, dist[u], dist[v], w)
			}
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := Kronecker(10, 8, 7)
	var iters int
	rank := PageRank(g, 50, 1e-9, func(float64) { iters++ })
	var sum float64
	for _, r := range rank {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %g", sum)
	}
	if iters == 0 {
		t.Error("no iterations reported")
	}
}

func TestTriangleCountOnCompleteGraph(t *testing.T) {
	// K_5 has C(5,3) = 10 triangles.
	g := completeGraph(5)
	if got := TriangleCount(g, 0, nil); got != 10 {
		t.Errorf("K5 triangles = %d, want 10", got)
	}
	// A path has none.
	if got := TriangleCount(pathGraph(10), 0, nil); got != 0 {
		t.Errorf("path triangles = %d, want 0", got)
	}
}

func TestBetweennessPathCenter(t *testing.T) {
	// On the undirected 3-path 0-1-2 (both directions), vertex 1
	// carries all shortest paths.
	g := edgeList(3, []int32{0, 1, 1, 2}, []int32{1, 0, 2, 1}, nil)
	bc := Betweenness(g, 3, 0, nil)
	if bc[1] <= bc[0] || bc[1] <= bc[2] {
		t.Errorf("center not dominant: %v", bc)
	}
	for _, v := range bc {
		if v < 0 {
			t.Fatal("negative betweenness")
		}
	}
}

func TestQuickReversePreservesEdges(t *testing.T) {
	prop := func(seed int64) bool {
		g := UniformRandom(64, 4, seed)
		r := g.Reverse()
		if r.Edges() != g.Edges() {
			return false
		}
		// Every edge u->v appears as v->u in the reverse.
		for v := int32(0); int(v) < g.N; v++ {
			for _, u := range g.Neighbors(v) {
				found := false
				for _, w := range r.Neighbors(u) {
					if w == v {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDirectionOptimizingBFSMatchesPlain(t *testing.T) {
	g := Kronecker(11, 8, 8)
	rev := g.Reverse()
	plain := BFS(g, 0, nil)
	opt := BFSDirectionOpt(g, rev, 0, nil)
	// Reachability must be identical; levels must match (BFS distance
	// is unique even when parents differ).
	levelOf := func(parent []int32) []int {
		level := make([]int, g.N)
		for v := range level {
			level[v] = -1
		}
		level[0] = 0
		changed := true
		for changed {
			changed = false
			for v := int32(0); int(v) < g.N; v++ {
				p := parent[v]
				if v == 0 || p == -1 || level[p] == -1 || level[v] != -1 {
					continue
				}
				level[v] = level[p] + 1
				changed = true
			}
		}
		return level
	}
	lp, lo := levelOf(plain), levelOf(opt)
	for v := 0; v < g.N; v++ {
		if (plain[v] == -1) != (opt[v] == -1) {
			t.Fatalf("vertex %d reachability differs", v)
		}
		if plain[v] != -1 && lp[v] != lo[v] {
			t.Fatalf("vertex %d: plain level %d, direction-opt level %d", v, lp[v], lo[v])
		}
	}
}
