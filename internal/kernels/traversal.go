package kernels

import (
	"container/heap"
	"math"
)

// BFS runs a breadth-first search from source and returns the parent
// array (-1 for unreached, source's parent is itself). onLevel, when
// non-nil, is invoked once per frontier level with the number of
// vertices visited in it — the kernel's heartbeat hook.
func BFS(g *Graph, source int32, onLevel func(visited int)) []int32 {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[source] = source
	frontier := []int32{source}
	next := make([]int32, 0, 64)
	for len(frontier) > 0 {
		next = next[:0]
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if parent[u] == -1 {
					parent[u] = v
					next = append(next, u)
				}
			}
		}
		if onLevel != nil {
			onLevel(len(next))
		}
		frontier, next = next, frontier
	}
	return parent
}

// ConnectedComponents labels vertices with Shiloach-Vishkin-style label
// propagation (treating edges as undirected) and returns the labels.
// onPass reports label updates per pass.
func ConnectedComponents(g *Graph, onPass func(updates int)) []int32 {
	label := make([]int32, g.N)
	for i := range label {
		label[i] = int32(i)
	}
	for {
		updates := 0
		for v := int32(0); int(v) < g.N; v++ {
			lv := label[v]
			for _, u := range g.Neighbors(v) {
				if label[u] < lv {
					lv = label[u]
				}
			}
			if lv < label[v] {
				label[v] = lv
				updates++
			}
		}
		// Propagate backwards too (directed CSR, undirected semantics).
		for v := int32(g.N - 1); v >= 0; v-- {
			lv := label[v]
			for _, u := range g.Neighbors(v) {
				if lv < label[u] {
					label[u] = lv
					updates++
				}
			}
		}
		if onPass != nil {
			onPass(updates)
		}
		if updates == 0 {
			return label
		}
	}
}

// distHeap is a min-heap of (vertex, distance) pairs for Dijkstra.
type distItem struct {
	v int32
	d float32
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SSSP computes single-source shortest paths with Dijkstra's algorithm
// (lazy deletion) on a weighted graph and returns the distance array
// (+Inf for unreached). onSettle reports settled vertices in batches of
// batch.
func SSSP(g *Graph, source int32, batch int, onSettle func(settled int)) []float32 {
	if batch <= 0 {
		batch = 1024
	}
	dist := make([]float32, g.N)
	inf := float32(math.Inf(1))
	for i := range dist {
		dist[i] = inf
	}
	dist[source] = 0
	h := &distHeap{{v: source, d: 0}}
	settled := 0
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if it.d > dist[it.v] {
			continue // stale entry
		}
		settled++
		if onSettle != nil && settled%batch == 0 {
			onSettle(batch)
		}
		row := g.RowPtr[it.v]
		for i, u := range g.Neighbors(it.v) {
			w := float32(1)
			if g.Weight != nil {
				w = g.Weight[int(row)+i]
			}
			if nd := it.d + w; nd < dist[u] {
				dist[u] = nd
				heap.Push(h, distItem{v: u, d: nd})
			}
		}
	}
	if onSettle != nil && settled%batch != 0 {
		onSettle(settled % batch)
	}
	return dist
}

// PageRank runs power iteration with the standard 0.85 damping until the
// L1 delta drops below tol or iters iterations elapse, returning the
// rank vector. onIter reports each iteration's L1 delta.
func PageRank(g *Graph, iters int, tol float64, onIter func(delta float64)) []float64 {
	const damping = 0.85
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	outDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		outDeg[v] = float64(g.OutDegree(int32(v)))
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(n)
		var dangling float64
		for v := 0; v < n; v++ {
			next[v] = base
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
		}
		danglingShare := damping * dangling / float64(n)
		for v := int32(0); int(v) < n; v++ {
			if outDeg[v] == 0 {
				continue
			}
			share := damping * rank[v] / outDeg[v]
			for _, u := range g.Neighbors(v) {
				next[u] += share
			}
		}
		var delta float64
		for v := 0; v < n; v++ {
			next[v] += danglingShare
			delta += math.Abs(next[v] - rank[v])
		}
		rank, next = next, rank
		if onIter != nil {
			onIter(delta)
		}
		if delta < tol {
			break
		}
	}
	return rank
}

// TriangleCount counts triangles by sorted-adjacency intersection on the
// degree-ordered orientation. onVertex reports per-vertex triangle
// contributions in batches of batch vertices.
func TriangleCount(g *Graph, batch int, onVertex func(done int)) int64 {
	if batch <= 0 {
		batch = 4096
	}
	var total int64
	done := 0
	for v := int32(0); int(v) < g.N; v++ {
		nv := g.Neighbors(v)
		for _, u := range nv {
			if u <= v {
				continue
			}
			total += intersectGreater(nv, g.Neighbors(u), u)
		}
		done++
		if onVertex != nil && done%batch == 0 {
			onVertex(batch)
		}
	}
	if onVertex != nil && done%batch != 0 {
		onVertex(done % batch)
	}
	return total
}

// intersectGreater counts common elements of two sorted lists strictly
// greater than floor.
func intersectGreater(a, b []int32, floor int32) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] > floor {
				count++
			}
			i++
			j++
		}
	}
	return count
}

// Betweenness computes approximate betweenness centrality with Brandes'
// algorithm over sources sampled source vertices. onSource reports each
// completed source.
func Betweenness(g *Graph, sources int, seed int64, onSource func()) []float64 {
	bc := make([]float64, g.N)
	if g.N == 0 {
		return bc
	}
	step := g.N / sources
	if step < 1 {
		step = 1
	}
	sigma := make([]float64, g.N)
	dist := make([]int32, g.N)
	delta := make([]float64, g.N)
	order := make([]int32, 0, g.N)
	for s := int32(int(seed) % g.N); sources > 0; sources-- {
		// Brandes forward pass.
		order = order[:0]
		for i := range sigma {
			sigma[i], dist[i], delta[i] = 0, -1, 0
		}
		sigma[s], dist[s] = 1, 0
		frontier := []int32{s}
		for len(frontier) > 0 {
			var next []int32
			for _, v := range frontier {
				order = append(order, v)
				for _, u := range g.Neighbors(v) {
					if dist[u] == -1 {
						dist[u] = dist[v] + 1
						next = append(next, u)
					}
					if dist[u] == dist[v]+1 {
						sigma[u] += sigma[v]
					}
				}
			}
			frontier = next
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			for _, u := range g.Neighbors(v) {
				if dist[u] == dist[v]+1 && sigma[u] > 0 {
					delta[v] += sigma[v] / sigma[u] * (1 + delta[u])
				}
			}
			if v != s {
				bc[v] += delta[v]
			}
		}
		if onSource != nil {
			onSource()
		}
		s = int32((int(s) + step) % g.N)
	}
	return bc
}

// BFSDirectionOpt runs the GAP benchmark's signature direction-optimizing
// BFS: top-down while the frontier is small, switching to bottom-up
// (scan unvisited vertices for any visited in-neighbor) once the
// frontier grows past a fraction of the graph — the optimization that
// makes BFS bandwidth-bound on low-diameter graphs. rev must be g's
// transpose. The returned parent array matches a plain BFS's
// reachability (parents may differ within a level).
func BFSDirectionOpt(g, rev *Graph, source int32, onLevel func(visited int)) []int32 {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[source] = source
	frontier := []int32{source}
	inFrontier := make([]bool, g.N)
	inFrontier[source] = true
	// Switch to bottom-up when the frontier exceeds this share of the
	// vertices (GAP uses edge-based heuristics; a vertex share keeps
	// the same behaviour on our synthetic graphs).
	const bottomUpFrac = 0.05

	for len(frontier) > 0 {
		var next []int32
		if float64(len(frontier)) < bottomUpFrac*float64(g.N) {
			// Top-down step.
			for _, v := range frontier {
				for _, u := range g.Neighbors(v) {
					if parent[u] == -1 {
						parent[u] = v
						next = append(next, u)
					}
				}
			}
		} else {
			// Bottom-up step: every unvisited vertex looks for any
			// in-neighbor on the frontier.
			for v := int32(0); int(v) < g.N; v++ {
				if parent[v] != -1 {
					continue
				}
				for _, u := range rev.Neighbors(v) {
					if inFrontier[u] {
						parent[v] = u
						next = append(next, v)
						break
					}
				}
			}
		}
		for i := range inFrontier {
			inFrontier[i] = false
		}
		for _, v := range next {
			inFrontier[v] = true
		}
		if onLevel != nil {
			onLevel(len(next))
		}
		frontier = next
	}
	return parent
}
