package kernels

import (
	"fmt"
	"sort"
	"time"

	"powerstruggle/internal/heartbeat"
)

// Runner is a runnable, heartbeat-instrumented benchmark. Run executes
// one bounded unit of the benchmark (a few hundred milliseconds at
// default sizes), emitting heartbeats to hb under the registered name.
type Runner struct {
	// Name matches the paper application the kernel stands for.
	Name string
	// Description says what the kernel computes.
	Description string
	// Run executes the kernel; beats receives heartbeat counts as work
	// completes.
	Run func(beats func(count float64)) error
}

// Size scales the default kernel inputs; 1 is the standard size.
type Size struct {
	// GraphScale is the Kronecker scale (vertices = 2^scale).
	GraphScale int
	// GraphDegree is the average degree.
	GraphDegree int
	// Points is the k-means population.
	Points int
	// StreamN is the STREAM array length.
	StreamN int
	// Frames is the media pipeline's frame count.
	Frames int
	// Baskets is the Apriori transaction count.
	Baskets int
	// GridW and GridH size the facesim mass-spring patch.
	GridW, GridH int
	// DBVectors and QueryCount size the ferret similarity search.
	DBVectors, QueryCount int
	// Seed drives all deterministic input generation.
	Seed int64
}

// DefaultSize returns inputs sized for sub-second single-shot runs.
func DefaultSize() Size {
	return Size{
		GraphScale: 13, GraphDegree: 8, Points: 20000, StreamN: 1 << 20,
		Frames: 12, Baskets: 4000, GridW: 48, GridH: 48,
		DBVectors: 8000, QueryCount: 24, Seed: 42,
	}
}

// Registry builds the runnable counterparts of the paper's applications
// at the given size.
func Registry(sz Size) map[string]*Runner {
	g := Kronecker(sz.GraphScale, sz.GraphDegree, sz.Seed)
	wg := g.WithUniformWeights(8, sz.Seed+1)
	reg := map[string]*Runner{
		"BFS": {
			Name:        "BFS",
			Description: "breadth-first search on a Kronecker graph",
			Run: func(beats func(float64)) error {
				BFS(g, 0, func(v int) { beats(float64(v)) })
				return nil
			},
		},
		"Connected": {
			Name:        "Connected",
			Description: "connected components by label propagation",
			Run: func(beats func(float64)) error {
				ConnectedComponents(g, func(int) { beats(1) })
				return nil
			},
		},
		"SSSP": {
			Name:        "SSSP",
			Description: "single-source shortest paths (Dijkstra)",
			Run: func(beats func(float64)) error {
				SSSP(wg, 0, 1024, func(settled int) { beats(float64(settled)) })
				return nil
			},
		},
		"PageRank": {
			Name:        "PageRank",
			Description: "PageRank power iteration",
			Run: func(beats func(float64)) error {
				PageRank(g, 20, 1e-7, func(float64) { beats(1) })
				return nil
			},
		},
		"TriangleCount": {
			Name:        "TriangleCount",
			Description: "triangle counting by adjacency intersection",
			Run: func(beats func(float64)) error {
				TriangleCount(g, 2048, func(done int) { beats(float64(done)) })
				return nil
			},
		},
		"Betweenness": {
			Name:        "Betweenness",
			Description: "Brandes betweenness centrality (sampled sources)",
			Run: func(beats func(float64)) error {
				Betweenness(g, 8, sz.Seed, func() { beats(1) })
				return nil
			},
		},
		"kmeans": {
			Name:        "kmeans",
			Description: "Lloyd's k-means on Gaussian clusters",
			Run: func(beats func(float64)) error {
				pts := GaussianClusters(sz.Points, 16, 8, 0.6, sz.Seed)
				_, _, err := KMeans(pts, 16, 25, sz.Seed, func(int) { beats(1) })
				return err
			},
		},
		"APR": {
			Name:        "APR",
			Description: "a-priori frequent-itemset mining over synthetic baskets",
			Run: func(beats func(float64)) error {
				txns := SyntheticBaskets(sz.Baskets, 200, 12, 4, sz.Seed+7)
				_, err := Apriori(txns, sz.Baskets/20, 4, func(found int) { beats(float64(found)) })
				return err
			},
		},
		"STREAM": {
			Name:        "STREAM",
			Description: "STREAM copy/scale/add/triad bandwidth kernels",
			Run: func(beats func(float64)) error {
				clock := func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
				_, err := Stream(sz.StreamN, 5, clock, func() { beats(1) })
				return err
			},
		},
	}
	reg["X264"] = &Runner{
		Name:        "X264",
		Description: "media encode pipeline (blur + motion + quantize)",
		Run: func(beats func(float64)) error {
			frames := make([]Frame, sz.Frames)
			for i := range frames {
				frames[i] = RandomFrame(320, 240, sz.Seed+11+int64(i))
			}
			_, err := MediaPipeline(frames, func() { beats(1) })
			return err
		},
	}
	reg["facesim"] = &Runner{
		Name:        "facesim",
		Description: "implicit mass-spring physics solve over frames",
		Run: func(beats func(float64)) error {
			_, err := FaceSim(sz.GridW, sz.GridH, sz.Frames, 8, sz.Seed+13, func() { beats(1) })
			return err
		},
	}
	reg["ferret"] = &Runner{
		Name:        "ferret",
		Description: "k-NN similarity search over feature vectors",
		Run: func(beats func(float64)) error {
			db := NewFeatureDB(sz.DBVectors, 64, sz.Seed+17)
			_, err := Ferret(db, sz.QueryCount, 10, sz.Seed+19, func() { beats(1) })
			return err
		},
	}
	return reg
}

// Names lists the registered kernels in sorted order.
func Names(reg map[string]*Runner) []string {
	out := make([]string, 0, len(reg))
	for n := range reg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RunWithHeartbeats executes a named kernel once, feeding its beats into
// a heartbeat monitor under the kernel's name with timestamps from the
// wall clock, and returns the total beat count.
func RunWithHeartbeats(reg map[string]*Runner, name string, hb *heartbeat.Monitor) (float64, error) {
	r, ok := reg[name]
	if !ok {
		return 0, fmt.Errorf("kernels: unknown kernel %q", name)
	}
	if err := hb.Register(name, 10); err != nil {
		return 0, err
	}
	start := time.Now()
	var total float64
	err := r.Run(func(count float64) {
		total += count
		t := time.Since(start).Seconds()
		_ = hb.Beat(name, t, count)
	})
	return total, err
}
