package kernels

import (
	"fmt"
	"math/rand"
	"sort"
)

// Transaction is one itemset of a market-basket dataset.
type Transaction []int32

// SyntheticBaskets generates n transactions over an alphabet of items
// with embedded frequent patterns — the standard synthetic input family
// for association-rule mining (MineBench's APR workload).
func SyntheticBaskets(n, items, patterns, patternLen int, seed int64) []Transaction {
	rng := rand.New(rand.NewSource(seed))
	// Build the hidden frequent patterns.
	pats := make([][]int32, patterns)
	for i := range pats {
		p := make([]int32, patternLen)
		for j := range p {
			p[j] = int32(rng.Intn(items))
		}
		pats[i] = dedupSorted(p)
	}
	out := make([]Transaction, n)
	for i := range out {
		var t []int32
		// Each basket embeds one pattern with high probability plus
		// random noise items.
		if rng.Float64() < 0.7 {
			t = append(t, pats[rng.Intn(patterns)]...)
		}
		for k := rng.Intn(6); k > 0; k-- {
			t = append(t, int32(rng.Intn(items)))
		}
		out[i] = dedupSorted(t)
	}
	return out
}

func dedupSorted(in []int32) []int32 {
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	out := in[:0]
	var prev int32 = -1
	for _, v := range in {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// Itemset is a sorted set of items with its support count.
type Itemset struct {
	Items   []int32
	Support int
}

// Apriori mines frequent itemsets with at least minSupport occurrences,
// level-wise (the classic a-priori pruning: every subset of a frequent
// itemset is frequent). onLevel beats once per level with the number of
// frequent itemsets found there. maxLen bounds the itemset length (0
// means unbounded).
func Apriori(txns []Transaction, minSupport, maxLen int, onLevel func(found int)) ([]Itemset, error) {
	if minSupport <= 0 {
		return nil, fmt.Errorf("kernels: apriori needs a positive support, got %d", minSupport)
	}
	if len(txns) == 0 {
		return nil, fmt.Errorf("kernels: apriori needs transactions")
	}
	// Level 1: frequent single items.
	counts := make(map[int32]int)
	for _, t := range txns {
		for _, it := range t {
			counts[it]++
		}
	}
	var frequent []Itemset
	var current [][]int32
	for it, c := range counts {
		if c >= minSupport {
			frequent = append(frequent, Itemset{Items: []int32{it}, Support: c})
			current = append(current, []int32{it})
		}
	}
	sortItemsets(current)
	if onLevel != nil {
		onLevel(len(current))
	}

	for level := 2; len(current) > 0 && (maxLen == 0 || level <= maxLen); level++ {
		candidates := aprioriJoin(current)
		if len(candidates) == 0 {
			break
		}
		var next [][]int32
		for _, cand := range candidates {
			support := 0
			for _, t := range txns {
				if containsAll(t, cand) {
					support++
				}
			}
			if support >= minSupport {
				frequent = append(frequent, Itemset{Items: append([]int32(nil), cand...), Support: support})
				next = append(next, cand)
			}
		}
		if onLevel != nil {
			onLevel(len(next))
		}
		current = next
	}
	return frequent, nil
}

// aprioriJoin builds level-k+1 candidates from level-k frequent sets
// sharing a k-1 prefix, pruning candidates with an infrequent subset.
func aprioriJoin(level [][]int32) [][]int32 {
	seen := make(map[string]bool, len(level))
	for _, s := range level {
		seen[itemKey(s)] = true
	}
	var out [][]int32
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := len(a)
			if !samePrefix(a, b, k-1) {
				continue
			}
			cand := make([]int32, k+1)
			copy(cand, a)
			last := b[k-1]
			if last <= a[k-1] {
				continue
			}
			cand[k] = last
			// Prune: every k-subset must be frequent.
			if allSubsetsFrequent(cand, seen) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b []int32, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand []int32, seen map[string]bool) bool {
	sub := make([]int32, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, v := range cand {
			if i != skip {
				sub = append(sub, v)
			}
		}
		if !seen[itemKey(sub)] {
			return false
		}
	}
	return true
}

func itemKey(items []int32) string {
	b := make([]byte, 0, len(items)*4)
	for _, v := range items {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// containsAll reports whether sorted transaction t contains every item of
// sorted set s.
func containsAll(t Transaction, s []int32) bool {
	i := 0
	for _, item := range s {
		for i < len(t) && t[i] < item {
			i++
		}
		if i == len(t) || t[i] != item {
			return false
		}
		i++
	}
	return true
}

func sortItemsets(sets [][]int32) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
