package kernels

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// FeatureDB is a ferret-style similarity-search database: feature
// vectors (image descriptors in the original) queried for their k
// nearest neighbours.
type FeatureDB struct {
	Dim  int
	Vecs [][]float32
}

// NewFeatureDB generates n unit-norm feature vectors of dimension dim,
// clustered around a handful of modes like real descriptor sets.
func NewFeatureDB(n, dim int, seed int64) *FeatureDB {
	rng := rand.New(rand.NewSource(seed))
	const modes = 16
	centers := make([][]float32, modes)
	for i := range centers {
		centers[i] = randomUnit(dim, rng)
	}
	db := &FeatureDB{Dim: dim, Vecs: make([][]float32, n)}
	for i := range db.Vecs {
		c := centers[rng.Intn(modes)]
		v := make([]float32, dim)
		for d := range v {
			v[d] = c[d] + 0.3*float32(rng.NormFloat64())
		}
		normalize(v)
		db.Vecs[i] = v
	}
	return db
}

func randomUnit(dim int, rng *rand.Rand) []float32 {
	v := make([]float32, dim)
	for d := range v {
		v[d] = float32(rng.NormFloat64())
	}
	normalize(v)
	return v
}

func normalize(v []float32) {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	n := float32(math.Sqrt(s))
	if n == 0 {
		v[0] = 1
		return
	}
	for d := range v {
		v[d] /= n
	}
}

// neighbor is one candidate with its similarity.
type neighbor struct {
	idx int
	sim float32
}

// neighborHeap is a min-heap by similarity (so the worst of the current
// top-k sits on top).
type neighborHeap []neighbor

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].sim < h[j].sim }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// KNN returns the indices of the k most cosine-similar vectors to query,
// in descending similarity order.
func (db *FeatureDB) KNN(query []float32, k int) ([]int, error) {
	if len(query) != db.Dim {
		return nil, fmt.Errorf("kernels: query dimension %d, database %d", len(query), db.Dim)
	}
	if k <= 0 || k > len(db.Vecs) {
		return nil, fmt.Errorf("kernels: k=%d with %d vectors", k, len(db.Vecs))
	}
	h := make(neighborHeap, 0, k)
	for i, v := range db.Vecs {
		var dot float32
		for d := range v {
			dot += v[d] * query[d]
		}
		if len(h) < k {
			heap.Push(&h, neighbor{idx: i, sim: dot})
		} else if dot > h[0].sim {
			h[0] = neighbor{idx: i, sim: dot}
			heap.Fix(&h, 0)
		}
	}
	out := make([]int, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(neighbor).idx
	}
	return out, nil
}

// Ferret runs queries random k-NN queries against the database, beating
// once per query, and returns a checksum of the result ranks.
func Ferret(db *FeatureDB, queries, k int, seed int64, onQuery func()) (uint64, error) {
	rng := rand.New(rand.NewSource(seed))
	var checksum uint64
	for q := 0; q < queries; q++ {
		query := randomUnit(db.Dim, rng)
		nn, err := db.KNN(query, k)
		if err != nil {
			return 0, err
		}
		for rank, idx := range nn {
			checksum = checksum*31 + uint64(idx) + uint64(rank)
		}
		if onQuery != nil {
			onQuery()
		}
	}
	return checksum, nil
}
