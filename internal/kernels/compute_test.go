package kernels

import (
	"math"
	"testing"
	"time"

	"powerstruggle/internal/heartbeat"
)

func TestKMeansConvergesOnSeparatedClusters(t *testing.T) {
	pts := GaussianClusters(2000, 4, 3, 0.05, 1)
	var iters, lastMoved int
	cent, assign, err := KMeans(pts, 4, 50, 1, func(moved int) {
		iters++
		lastMoved = moved
	})
	if err != nil {
		t.Fatal(err)
	}
	if lastMoved != 0 {
		t.Errorf("did not converge in 50 iterations (last pass moved %d)", lastMoved)
	}
	if iters == 0 || iters == 50 {
		t.Errorf("suspicious iteration count %d", iters)
	}
	if len(cent) != 4 || len(assign) != 2000 {
		t.Fatalf("shape: %d centroids, %d assignments", len(cent), len(assign))
	}
	for i, a := range assign {
		if a < 0 || a >= 4 {
			t.Fatalf("point %d assigned to %d", i, a)
		}
	}
	// Every point must be nearest its own centroid (Lloyd's invariant
	// at convergence).
	for i, p := range pts {
		best, bestD := -1, math.Inf(1)
		for c := range cent {
			var d float64
			for j := range p {
				diff := p[j] - cent[c][j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best != assign[i] {
			t.Fatalf("point %d assigned to %d but nearest %d", i, assign[i], best)
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, _, err := KMeans(nil, 3, 10, 1, nil); err == nil {
		t.Error("empty input accepted")
	}
	pts := GaussianClusters(10, 2, 2, 1, 1)
	if _, _, err := KMeans(pts, 0, 10, 1, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := KMeans(pts, 11, 10, 1, nil); err == nil {
		t.Error("k > n accepted")
	}
}

func TestStreamKernels(t *testing.T) {
	clock := func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
	var reps int
	res, err := Stream(1<<16, 3, clock, func() { reps++ })
	if err != nil {
		t.Fatal(err)
	}
	if reps != 3 {
		t.Errorf("%d rep beats, want 3", reps)
	}
	for name, bw := range map[string]float64{
		"copy": res.CopyGBs, "scale": res.ScaleGBs, "add": res.AddGBs, "triad": res.TriadGBs,
	} {
		if bw <= 0 {
			t.Errorf("%s bandwidth %g", name, bw)
		}
	}
	// The arithmetic is fixed: a = b + 3c with the chain of updates is
	// deterministic, so the checksum is stable across runs.
	res2, err := Stream(1<<16, 3, clock, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Check != res2.Check {
		t.Errorf("checksums differ: %g vs %g", res.Check, res2.Check)
	}
	if _, err := Stream(0, 1, clock, nil); err == nil {
		t.Error("zero-length stream accepted")
	}
}

func TestMediaPipeline(t *testing.T) {
	frames := make([]Frame, 4)
	for i := range frames {
		frames[i] = RandomFrame(64, 48, int64(i))
	}
	var beats int
	sum, err := MediaPipeline(frames, func() { beats++ })
	if err != nil {
		t.Fatal(err)
	}
	if beats != 4 {
		t.Errorf("%d frame beats, want 4", beats)
	}
	// Deterministic inputs give a deterministic checksum.
	frames2 := make([]Frame, 4)
	for i := range frames2 {
		frames2[i] = RandomFrame(64, 48, int64(i))
	}
	sum2, err := MediaPipeline(frames2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum != sum2 {
		t.Errorf("checksums differ: %d vs %d", sum, sum2)
	}
	// Invalid geometry is rejected.
	if _, err := MediaPipeline([]Frame{{W: 1, H: 1, Pix: []uint8{0}}}, nil); err == nil {
		t.Error("degenerate frame accepted")
	}
}

func TestRegistryRunsEveryPaperApplication(t *testing.T) {
	sz := DefaultSize()
	sz.GraphScale = 10 // keep the test fast
	sz.Points = 4000
	sz.StreamN = 1 << 16
	sz.Frames = 3
	reg := Registry(sz)
	if len(reg) != 12 {
		t.Fatalf("registry has %d kernels, want 12", len(reg))
	}
	hb := heartbeat.NewMonitor()
	for _, name := range Names(reg) {
		total, err := RunWithHeartbeats(reg, name, hb)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if total <= 0 {
			t.Errorf("%s delivered no heartbeats", name)
		}
		got, err := hb.Total(name)
		if err != nil {
			t.Fatal(err)
		}
		if got != total {
			t.Errorf("%s: monitor total %g, runner total %g", name, got, total)
		}
	}
	if _, err := RunWithHeartbeats(reg, "nope", hb); err == nil {
		t.Error("unknown kernel accepted")
	}
}
