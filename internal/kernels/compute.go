package kernels

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeans runs Lloyd's algorithm on dim-dimensional points for at most
// iters iterations (or until assignments stabilize) and returns the
// final centroids and assignments. onIter reports each iteration's
// number of reassignments — the kernel's heartbeat hook.
func KMeans(points [][]float64, k, iters int, seed int64, onIter func(moved int)) ([][]float64, []int, error) {
	n := len(points)
	if n == 0 || k <= 0 || k > n {
		return nil, nil, fmt.Errorf("kernels: kmeans with %d points and k=%d", n, k)
	}
	dim := len(points[0])
	rng := rand.New(rand.NewSource(seed))
	cent := make([][]float64, k)
	for i, idx := range rng.Perm(n)[:k] {
		cent[i] = append([]float64(nil), points[idx]...)
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int, k)
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	for it := 0; it < iters; it++ {
		moved := 0
		for i := range counts {
			counts[i] = 0
			for d := range sums[i] {
				sums[i][d] = 0
			}
		}
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range cent {
				var d float64
				for j := range p {
					diff := p[j] - cent[c][j]
					d += diff * diff
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				moved++
			}
			counts[best]++
			for j := range p {
				sums[best][j] += p[j]
			}
		}
		for c := range cent {
			if counts[c] == 0 {
				continue
			}
			for j := range cent[c] {
				cent[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if onIter != nil {
			onIter(moved)
		}
		if moved == 0 {
			break
		}
	}
	return cent, assign, nil
}

// GaussianClusters generates n points around k Gaussian blobs in dim
// dimensions, a standard k-means input.
func GaussianClusters(n, k, dim int, spread float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = make([]float64, dim)
		for d := range centers[i] {
			centers[i][d] = rng.Float64() * 10
		}
	}
	points := make([][]float64, n)
	for i := range points {
		c := centers[rng.Intn(k)]
		p := make([]float64, dim)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()*spread
		}
		points[i] = p
	}
	return points
}

// StreamResult carries the measured STREAM kernel bandwidths.
type StreamResult struct {
	// CopyGBs, ScaleGBs, AddGBs and TriadGBs are the classic four
	// kernels' effective bandwidths in gigabytes per second.
	CopyGBs, ScaleGBs, AddGBs, TriadGBs float64
	// Check is a value-dependent checksum preventing dead-code
	// elimination of the kernels.
	Check float64
}

// Stream runs the four STREAM kernels over float64 arrays of n elements
// for reps repetitions, timing with the caller's clock function (seconds)
// and reporting a heartbeat per repetition through onRep.
func Stream(n, reps int, clock func() float64, onRep func()) (StreamResult, error) {
	if n <= 0 || reps <= 0 {
		return StreamResult{}, fmt.Errorf("kernels: stream with n=%d reps=%d", n, reps)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = 1
		b[i] = 2
		c[i] = 0
	}
	const scalar = 3.0
	bytesMoved := func(arrays int) float64 { return float64(arrays) * float64(n) * 8 }
	var res StreamResult
	var tCopy, tScale, tAdd, tTriad float64
	for r := 0; r < reps; r++ {
		t0 := clock()
		copy(c, a)
		t1 := clock()
		for i := range b {
			b[i] = scalar * c[i]
		}
		t2 := clock()
		for i := range c {
			c[i] = a[i] + b[i]
		}
		t3 := clock()
		for i := range a {
			a[i] = b[i] + scalar*c[i]
		}
		t4 := clock()
		tCopy += t1 - t0
		tScale += t2 - t1
		tAdd += t3 - t2
		tTriad += t4 - t3
		if onRep != nil {
			onRep()
		}
	}
	if tCopy > 0 {
		res.CopyGBs = bytesMoved(2) * float64(reps) / tCopy / 1e9
	}
	if tScale > 0 {
		res.ScaleGBs = bytesMoved(2) * float64(reps) / tScale / 1e9
	}
	if tAdd > 0 {
		res.AddGBs = bytesMoved(3) * float64(reps) / tAdd / 1e9
	}
	if tTriad > 0 {
		res.TriadGBs = bytesMoved(3) * float64(reps) / tTriad / 1e9
	}
	res.Check = a[0] + b[n/2] + c[n-1]
	return res, nil
}

// Frame is one media-pipeline work unit: a grayscale image.
type Frame struct {
	W, H int
	Pix  []uint8
}

// RandomFrame generates a deterministic pseudo-random frame.
func RandomFrame(w, h int, seed int64) Frame {
	rng := rand.New(rand.NewSource(seed))
	pix := make([]uint8, w*h)
	for i := range pix {
		pix[i] = uint8(rng.Intn(256))
	}
	return Frame{W: w, H: h, Pix: pix}
}

// MediaPipeline mimics an X264/ferret-style pipeline over frames: a
// 3x3 box blur (filter stage), gradient-based "motion estimation", and
// block quantization (encode stage). It returns an output checksum and
// beats once per frame through onFrame.
func MediaPipeline(frames []Frame, onFrame func()) (uint64, error) {
	var checksum uint64
	for fi := range frames {
		f := &frames[fi]
		if f.W < 3 || f.H < 3 || len(f.Pix) != f.W*f.H {
			return 0, fmt.Errorf("kernels: frame %d has invalid geometry %dx%d", fi, f.W, f.H)
		}
		blurred := boxBlur(f)
		grad := gradientEnergy(blurred, f.W, f.H)
		q := quantize(blurred, 16)
		checksum = checksum*1099511628211 + uint64(grad) + uint64(q)
		if onFrame != nil {
			onFrame()
		}
	}
	return checksum, nil
}

// boxBlur applies a 3x3 mean filter.
func boxBlur(f *Frame) []uint8 {
	out := make([]uint8, len(f.Pix))
	for y := 1; y < f.H-1; y++ {
		for x := 1; x < f.W-1; x++ {
			var sum int
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					sum += int(f.Pix[(y+dy)*f.W+(x+dx)])
				}
			}
			out[y*f.W+x] = uint8(sum / 9)
		}
	}
	return out
}

// gradientEnergy sums absolute horizontal and vertical gradients.
func gradientEnergy(pix []uint8, w, h int) int64 {
	var e int64
	for y := 0; y < h-1; y++ {
		for x := 0; x < w-1; x++ {
			p := int64(pix[y*w+x])
			e += abs64(p-int64(pix[y*w+x+1])) + abs64(p-int64(pix[(y+1)*w+x]))
		}
	}
	return e
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// quantize buckets pixels into levels and returns a checksum.
func quantize(pix []uint8, levels int) int64 {
	if levels <= 0 {
		levels = 16
	}
	step := 256 / levels
	var sum int64
	for _, p := range pix {
		sum += int64(int(p) / step)
	}
	return sum
}
