package kernels

import (
	"testing"
	"time"
)

// The kernel micro-benchmarks: one per real workload implementation, at
// sizes matching DefaultSize's single-shot runs.

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	return Kronecker(12, 8, 42)
}

func BenchmarkKernelBFS(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0, nil)
	}
}

func BenchmarkKernelConnected(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponents(g, nil)
	}
}

func BenchmarkKernelSSSP(b *testing.B) {
	g := benchGraph(b).WithUniformWeights(8, 43)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSSP(g, 0, 0, nil)
	}
}

func BenchmarkKernelPageRank(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRank(g, 20, 1e-7, nil)
	}
}

func BenchmarkKernelTriangleCount(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TriangleCount(g, 0, nil)
	}
}

func BenchmarkKernelBetweenness(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Betweenness(g, 4, 1, nil)
	}
}

func BenchmarkKernelKMeans(b *testing.B) {
	pts := GaussianClusters(10000, 16, 8, 0.6, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := KMeans(pts, 16, 10, 42, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelStreamTriad(b *testing.B) {
	clock := func() float64 { return float64(time.Now().UnixNano()) / 1e9 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Stream(1<<20, 1, clock, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TriadGBs, "triadGB/s")
	}
}

func BenchmarkKernelApriori(b *testing.B) {
	txns := SyntheticBaskets(4000, 200, 12, 4, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Apriori(txns, 200, 4, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelFaceSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FaceSim(48, 48, 4, 8, 42, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelFerret(b *testing.B) {
	db := NewFeatureDB(8000, 64, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Ferret(db, 8, 10, 42, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelMediaPipeline(b *testing.B) {
	frames := make([]Frame, 4)
	for i := range frames {
		frames[i] = RandomFrame(320, 240, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MediaPipeline(frames, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelBFSDirectionOpt(b *testing.B) {
	g := benchGraph(b)
	rev := g.Reverse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFSDirectionOpt(g, rev, 0, nil)
	}
}
