package scenario

import (
	"fmt"
	"math"
	"strings"

	"powerstruggle/internal/ctrlplane"
)

// Result is one campaign run: a deterministic invariant log (the byte
// stream replays are compared on), the violations found, and summary
// counters the tests and the CLI assert against.
type Result struct {
	Campaign Campaign
	// Log is the canonical step-by-step record. Two runs of the same
	// campaign must produce identical logs, byte for byte.
	Log []string
	// Violations are invariant breaches, in discovery order. Empty
	// means the campaign passed.
	Violations []string

	// SafeModeSteps counts steps where at least one agent rode a lost
	// leader in safe mode.
	SafeModeSteps int
	// LeaderlessMinCapW is the smallest fleet cap sum observed while
	// leaderless with agents in safe mode (+Inf if never leaderless) —
	// the "did the fleet cliff to zero?" witness.
	LeaderlessMinCapW float64
	// LeaseExpiries and Rejoins mirror the coordinator's membership
	// counters (control-plane families), accumulated across coordinator
	// restarts.
	LeaseExpiries int
	Rejoins       int
	// Rehydrations counts interval-counter rehydrations from fleet
	// scrapes (protocol-clock campaigns with coordinator restarts).
	Rehydrations int
	// LearnUnconverged counts fleet members whose learned curve was
	// still partial at run end, and LearnMinConfidence is the smallest
	// coverage fraction any member reached (learning campaigns only).
	LearnUnconverged   int
	LearnMinConfidence float64
	// FinalEpoch is the leadership epoch the run ended under.
	FinalEpoch uint64
	// Failovers, ShardExpiries, and ShardReclaims count the hierarchy
	// family's shard-tier leadership takeovers, global-membership
	// expiries, and reservation reclaims.
	Failovers     int
	ShardExpiries int
	ShardReclaims int
	// ShortfallJ, DischargedJ, ChargedJ total the ESD families' energy
	// movement over the run.
	ShortfallJ  float64
	DischargedJ float64
	ChargedJ    float64
}

// Ok reports whether every invariant held.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// LogText renders the canonical log as one byte stream.
func (r *Result) LogText() string {
	return strings.Join(r.Log, "\n") + "\n"
}

func (r *Result) logf(format string, args ...any) {
	r.Log = append(r.Log, fmt.Sprintf(format, args...))
}

func (r *Result) violatef(format string, args ...any) {
	v := fmt.Sprintf(format, args...)
	r.Violations = append(r.Violations, v)
	r.Log = append(r.Log, "VIOLATION "+v)
}

// ctrlChecker holds the cross-step state the control-plane invariants
// need: the previous cap (one lease of grace after a cap change), the
// cap in force at the last leading grant (what a leaderless fleet's
// held budgets must stay under), and the last observed epoch.
type ctrlChecker struct {
	prevCapW     float64
	lastLeadCapW float64
	lastEpoch    uint64
	// clock marks a protocol-clock campaign; lastIv is then the highest
	// interval any coordinator incarnation has minted — a mint at or
	// below it means a restarted coordinator re-issued an interval
	// number, the exact duplication rehydration exists to prevent.
	clock  bool
	lastIv uint64
	// learn marks an online-learning campaign: the checker then audits
	// that no probing member enforces more than its granted budget while
	// its curve is partial, and the log carries the fleet's coverage.
	learn bool
}

// check audits one control interval after the agents ticked. The cap
// invariant: the fleet's summed enforced caps never exceed the largest
// budget any live lease could still legitimately carry — this step's
// cap, last step's cap (a lease granted before a drop is honored until
// it lapses), or the cap at the last leading grant (all a leaderless
// fleet in safe mode may hold).
func (ck *ctrlChecker) check(r *Result, step int, t, capW float64, led bool,
	res ctrlplane.StepResult, agents []*ctrlplane.Agent, epoch uint64) {

	var capSum, gridSum float64
	safe, fenced := 0, 0
	for _, a := range agents {
		capSum += a.CapW()
		gridSum += a.GridW()
		if a.SafeMode() {
			safe++
		}
		if a.Fenced() {
			fenced++
		}
	}
	if led {
		ck.lastLeadCapW = capW
	}
	allowed := math.Max(capW, math.Max(ck.prevCapW, ck.lastLeadCapW))
	if capSum > allowed+1e-6 {
		r.violatef("step=%03d fleet cap sum %.3f W exceeds allowed %.3f W (cap=%.3f prev=%.3f lastLead=%.3f)",
			step, capSum, allowed, capW, ck.prevCapW, ck.lastLeadCapW)
	}
	if epoch < ck.lastEpoch {
		r.violatef("step=%03d epoch went backward: %d after %d", step, epoch, ck.lastEpoch)
	}
	granted := 0
	if led {
		for i, g := range res.Granted {
			if !g {
				continue
			}
			granted++
			// No lease honored across epochs: a grant acknowledged this
			// interval must have been applied under the current epoch.
			if got := agents[i].LastEpoch(); got != epoch {
				r.violatef("step=%03d agent %d granted under epoch %d but applied epoch %d",
					step, i, epoch, got)
			}
		}
	}
	for i, a := range agents {
		if got := a.LastEpoch(); got > epoch {
			r.violatef("step=%03d agent %d at epoch %d ahead of coordinator epoch %d",
				step, i, got, epoch)
		}
	}
	if safe > 0 {
		r.SafeModeSteps++
		if !led && capSum < r.LeaderlessMinCapW {
			r.LeaderlessMinCapW = capSum
		}
	}
	// Learning campaigns carry the fleet's coverage in the log and pin
	// the local half of the cap invariant: a probing member self-caps,
	// so while its curve is partial it may only undershoot this
	// interval's granted budget, never overshoot it.
	learn := ""
	if ck.learn {
		unconv := 0
		minConf := 1.0
		for i, a := range agents {
			if !a.Learning() {
				continue
			}
			if v := a.LearnConfidence(); v < minConf {
				minConf = v
			}
			if a.LearnConverged() {
				continue
			}
			unconv++
			if led && i < len(res.Budgets) && res.Granted[i] && a.CapW() > res.Budgets[i]+1e-9 {
				r.violatef("step=%03d learning agent %d enforces %.3f W over its %.3f W grant with a partial curve",
					step, i, a.CapW(), res.Budgets[i])
			}
		}
		learn = fmt.Sprintf(" unconv=%d minconf=%.3f", unconv, minConf)
	}
	if ck.clock {
		if led && res.Iv > 0 {
			if res.Iv <= ck.lastIv {
				r.violatef("step=%03d coordinator minted interval %d, already used through %d",
					step, res.Iv, ck.lastIv)
			}
			ck.lastIv = res.Iv
		}
		r.logf("step=%03d t=%.0f cap=%.3f capsum=%.3f grid=%.3f granted=%d safe=%d fenced=%d epoch=%d led=%d iv=%d rehydrating=%d%s",
			step, t, capW, capSum, gridSum, granted, safe, fenced, epoch, b2i(led), res.Iv, b2i(res.Rehydrating), learn)
	} else {
		r.logf("step=%03d t=%.0f cap=%.3f capsum=%.3f grid=%.3f granted=%d safe=%d fenced=%d epoch=%d led=%d%s",
			step, t, capW, capSum, gridSum, granted, safe, fenced, epoch, b2i(led), learn)
	}
	ck.prevCapW = capW
	ck.lastEpoch = epoch
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
