package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// Generation is a pure function of (family, seed, size): same inputs,
// same campaign; a different seed, a different campaign.
func TestGenerateDeterministic(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(string(f), func(t *testing.T) {
			a, err := Generate(Config{Family: f, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Generate(Config{Family: f, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same (family, seed) generated different campaigns")
			}
			c, err := Generate(Config{Family: f, Seed: 43})
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(a, c) {
				t.Fatal("different seeds generated identical campaigns")
			}
			if len(a.Events) == 0 {
				t.Fatal("campaign has no scripted events")
			}
		})
	}
}

// mustRun executes a campaign and fails the test on any invariant
// violation.
func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
	if t.Failed() {
		t.FailNow()
	}
	return r
}

// Correlated cap drops: the networked fleet re-caps inside one lease of
// every drop and the summed enforced caps never exceed the allowance.
func TestCampaignCapDrop(t *testing.T) {
	r := mustRun(t, Config{Family: FamilyCapDrop, Seed: 7})
	base := r.Campaign.Caps[0].V
	minCap := base
	for _, p := range r.Campaign.Caps {
		minCap = math.Min(minCap, p.V)
	}
	if minCap >= base {
		t.Fatalf("no drop generated: min cap %.1f of base %.1f", minCap, base)
	}
	if r.FinalEpoch != 1 {
		t.Fatalf("epoch moved to %d without any leader change", r.FinalEpoch)
	}
}

// Flash crowd: surge waves push demand past the cap and the battery
// fleet peak-shaves them; valleys recharge it.
func TestCampaignFlashCrowd(t *testing.T) {
	r := mustRun(t, Config{Family: FamilyFlashCrowd, Seed: 7})
	if r.DischargedJ <= 0 {
		t.Fatal("no discharge: the waves never stressed the cap")
	}
	if r.ChargedJ <= 0 {
		t.Fatal("no charge: the valleys never banked energy")
	}
}

// Price-driven cap schedule: the fleet banks energy in cheap valleys
// and spends it under the tight peak caps.
func TestCampaignPriceSchedule(t *testing.T) {
	r := mustRun(t, Config{Family: FamilyPriceSchedule, Seed: 7})
	if r.DischargedJ <= 0 || r.ChargedJ <= 0 {
		t.Fatalf("no duty cycle: discharged %.0f J, charged %.0f J", r.DischargedJ, r.ChargedJ)
	}
}

// Battery fleet with staggered SoC: the planner's richest-first /
// poorest-first ordering runs against a fleet where it matters from
// step one, and no device ever leaves its usable window.
func TestCampaignBatteryFleet(t *testing.T) {
	r := mustRun(t, Config{Family: FamilyBatteryFleet, Seed: 7})
	soc := r.Campaign.Battery.SoC0
	for i := 1; i < len(soc); i++ {
		if soc[i] <= soc[i-1] {
			t.Fatalf("SoC not staggered: %v", soc)
		}
	}
	if r.DischargedJ+r.ChargedJ <= 0 {
		t.Fatal("fleet never moved any energy")
	}
}

// Rolling coordinator restarts mid-traffic: the fleet rides every
// leader outage in safe mode — holding the last granted caps instead of
// cliffing to 0 W — without ever exceeding the cluster cap, and the
// returning leader's bumped epoch re-grants everything afresh.
func TestCampaignRollingRestart(t *testing.T) {
	r := mustRun(t, Config{Family: FamilyRollingRestart, Seed: 11})
	if r.SafeModeSteps == 0 {
		t.Fatal("no step rode the outage in safe mode")
	}
	if r.FinalEpoch < 2 {
		t.Fatalf("final epoch %d: the leader never restarted", r.FinalEpoch)
	}
	if math.IsInf(r.LeaderlessMinCapW, 1) {
		t.Fatal("never observed a leaderless interval")
	}
	// The survival demonstration: leaderless, the fleet held real
	// budgets (at worst the decay floors), not the 0 W cliff.
	floorSum := float64(r.Campaign.Config.Servers) * r.Campaign.SafeMode.FloorW
	if r.LeaderlessMinCapW < floorSum-1e-6 {
		t.Fatalf("leaderless fleet cap sum fell to %.1f W, below the %.1f W floor sum",
			r.LeaderlessMinCapW, floorSum)
	}
}

// Partition during a cap emergency: the blackholed agents fence, the
// survivors absorb the re-apportioned emergency cap, and the healed
// agents rejoin — with the cluster cap honored throughout.
func TestCampaignPartitionEmergency(t *testing.T) {
	r := mustRun(t, Config{Family: FamilyPartitionEmergency, Seed: 7})
	if r.LeaseExpiries == 0 {
		t.Fatal("no membership lease expired despite the partition")
	}
	if r.Rejoins == 0 {
		t.Fatal("no agent rejoined after the heal")
	}
}

// Two-tier shard loss: the budget tree rides a shard-coordinator
// death — warm standby promotion or a whole-shard reservation — with
// the cluster cap invariant held every interval, and headroom still
// flows to the saturating survivor over the trunk.
func TestCampaignHierarchyShardLoss(t *testing.T) {
	r := mustRun(t, Config{Family: FamilyHierarchyShardLoss, Seed: 7})
	if r.Failovers == 0 && r.ShardExpiries == 0 {
		t.Fatal("the scripted shard loss left no failover and no expiry")
	}
	if r.ShardExpiries > 0 && r.ShardReclaims == 0 {
		t.Fatal("dead shard expired but its reserved budget was never reclaimed")
	}
	tt := r.Campaign.TwoTier
	if tt == nil {
		t.Fatal("campaign carries no two-tier setup")
	}
	if tt.KillLeaderStep == 0 && tt.KillShardStep == 0 {
		t.Fatal("no shard loss was scripted")
	}
}

// Clock chaos: skewed agent clocks, a coordinator stall across a cap
// emergency, and a crash-restart — all under protocol-clock leases.
// The stall must put the fleet through interval-aged safe mode, the
// restarted coordinator must rehydrate its counter from fleet scrapes
// (the duplicate-mint invariant runs every leading step), and the run
// must end with everyone re-granted under the original epoch.
func TestCampaignClockChaos(t *testing.T) {
	r := mustRun(t, Config{Family: FamilyClockChaos, Seed: 7})
	if r.Campaign.LeaseIv == 0 {
		t.Fatal("campaign did not select protocol-clock leases")
	}
	if r.SafeModeSteps == 0 {
		t.Fatal("no step rode the stall in safe mode")
	}
	if math.IsInf(r.LeaderlessMinCapW, 1) {
		t.Fatal("never observed a leaderless interval")
	}
	floorSum := float64(r.Campaign.Config.Servers) * r.Campaign.SafeMode.FloorW
	if r.LeaderlessMinCapW < floorSum-1e-6 {
		t.Fatalf("stalled fleet cap sum fell to %.1f W, below the %.1f W floor sum",
			r.LeaderlessMinCapW, floorSum)
	}
	if r.Rehydrations == 0 {
		t.Fatal("the scripted crash-restart never rehydrated the interval counter")
	}
	if r.FinalEpoch != 1 {
		t.Fatalf("final epoch %d: a stall and a same-epoch restart must not elect anyone", r.FinalEpoch)
	}
	skewed := false
	for _, ev := range r.Campaign.Events {
		if ev.Kind == "skew" {
			skewed = true
			if ev.Value <= 0 || ev.Value >= 0.5 {
				t.Fatalf("skew rate %g outside the scripted band", ev.Value)
			}
		}
	}
	if !skewed {
		t.Fatal("no agent clock was skewed")
	}
}

// Learning cold start: the fleet joins curveless, learns its utility
// curves online under live grants, and rides a coordinator
// crash-restart plus a cap drop with the curves still partial. The
// headline invariant — the cluster cap is never exceeded while curves
// are partial — is checked every step by the runner (probes self-cap
// at or below grants); this test asserts the campaign actually
// exercised that window.
func TestCampaignLearningColdStart(t *testing.T) {
	r := mustRun(t, Config{Family: FamilyLearningColdStart, Seed: 7})
	if r.Campaign.Learn == nil {
		t.Fatal("campaign carries no learning config")
	}
	if r.Campaign.LeaseIv == 0 {
		t.Fatal("campaign did not select protocol-clock leases")
	}
	if f := r.Campaign.LearnConfFloor; f <= 0 || f >= 1 {
		t.Fatalf("confidence floor %.3f outside the partial-admission band", f)
	}
	if r.LearnMinConfidence <= 0 {
		t.Fatalf("fleet never observed a sample: min coverage %.3f", r.LearnMinConfidence)
	}
	if r.LearnUnconverged == 0 {
		t.Fatal("every curve converged: the run never witnessed the partial-curve window")
	}
	if r.Rehydrations == 0 {
		t.Fatal("the scripted crash-restart never rehydrated the interval counter")
	}
	if r.FinalEpoch != 1 {
		t.Fatalf("final epoch %d: a same-epoch restart must not elect anyone", r.FinalEpoch)
	}
	kinds := map[string]bool{}
	for _, ev := range r.Campaign.Events {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{"cold-start", "coord-restart", "cap-drop"} {
		if !kinds[k] {
			t.Fatalf("campaign scripted no %s event", k)
		}
	}
}

// The replay guarantee: running the same campaign twice produces the
// same invariant log, byte for byte — including the control-plane
// families, whose faults are scripted rather than rolled.
func TestReplayDeterminism(t *testing.T) {
	for _, cfg := range []Config{
		{Family: FamilyPartitionEmergency, Seed: 7},
		{Family: FamilyRollingRestart, Seed: 11},
		{Family: FamilyFlashCrowd, Seed: 7},
		{Family: FamilyHierarchyShardLoss, Seed: 7},
		{Family: FamilyClockChaos, Seed: 7},
		{Family: FamilyLearningColdStart, Seed: 7},
	} {
		cfg := cfg
		t.Run(string(cfg.Family), func(t *testing.T) {
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.LogText() != b.LogText() {
				t.Fatalf("replay diverged:\nfirst run:\n%s\nsecond run:\n%s",
					diffHead(a.LogText(), b.LogText()), "")
			}
		})
	}
}

// diffHead returns the first differing line pair, for readable failures.
func diffHead(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + al[i] + "\n  vs " + bl[i]
		}
	}
	return "logs differ in length"
}
