package scenario

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"powerstruggle/internal/cluster"
	"powerstruggle/internal/ctrlplane"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/faults"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

// Run generates and executes the campaign a config names.
func Run(cfg Config) (*Result, error) {
	c, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	return RunCampaign(c)
}

// RunCampaign executes a generated campaign and audits every step.
func RunCampaign(c Campaign) (*Result, error) {
	if len(c.Caps) != c.Config.Steps {
		return nil, fmt.Errorf("scenario: %d cap points for %d steps", len(c.Caps), c.Config.Steps)
	}
	if c.Config.Family == FamilyHierarchyShardLoss {
		return runHier(c)
	}
	if c.Config.Family.controlPlane() {
		return runCtrl(c)
	}
	return runESD(c)
}

// runHier drives a two-tier campaign through the hierarchical drill:
// per-shard coordinator pairs over loopback trunks under the global
// apportioner, with the scripted shard loss and saturation the
// generator sized. The drill audits the cap invariants itself; the
// runner renders its per-interval outcomes as the canonical log. Wall
// time is deliberately excluded from the log — replay is a byte
// comparison.
func runHier(c Campaign) (*Result, error) {
	if c.TwoTier == nil {
		return nil, fmt.Errorf("scenario: family %s has no two-tier setup", c.Config.Family)
	}
	r := &Result{Campaign: c, LeaderlessMinCapW: math.Inf(1)}
	res, err := ctrlplane.RunTwoTierDrill(*c.TwoTier)
	if err != nil {
		return r, err
	}
	eventsAt := make(map[int][]Event)
	for _, ev := range c.Events {
		eventsAt[ev.Step] = append(eventsAt[ev.Step], ev)
	}
	for s, iv := range res.Intervals {
		for _, ev := range eventsAt[s] {
			r.logf("event step=%03d kind=%s agent=%d %s", ev.Step, ev.Kind, ev.Agent, ev.Detail)
		}
		r.logf("step=%03d t=%.0f cap=%.3f granted=%.3f reserved=%.3f rebalanced=%.3f capsum=%.3f alive=%d",
			s, iv.T, iv.CapW, iv.SumBudgetsW, iv.ReservedW, iv.RebalancedW, iv.AgentCapSumW, iv.GlobalAlive)
	}
	for _, v := range res.Violations {
		r.violatef("%s", v)
	}
	r.Failovers = res.Failovers
	r.ShardExpiries = res.Stats.ShardExpiries
	r.ShardReclaims = res.Stats.Reclaims
	r.logf("summary steps=%d failovers=%d shardExpiries=%d reclaims=%d",
		c.Config.Steps, r.Failovers, r.ShardExpiries, r.ShardReclaims)
	return r, nil
}

// evaluator builds the shared cluster simulation the control-plane
// families' agents are backed by — the same construction the parity
// suites use, one workload mix per server in rotation.
func evaluator(servers int) (*cluster.Evaluator, error) {
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		return nil, err
	}
	mixes := workload.Mixes()
	assign := make([]workload.Mix, servers)
	for i := range assign {
		assign[i] = mixes[i%len(mixes)]
	}
	return cluster.NewEvaluator(cluster.Config{HW: hw, Library: lib, Mixes: assign})
}

// runCtrl drives a control-plane campaign: a real coordinator over
// loopback HTTP against in-process agents, with scripted blackholes
// and leader outages. Only deterministic faults are scripted, so the
// invariant log replays byte-identically.
func runCtrl(c Campaign) (*Result, error) {
	ev, err := evaluator(c.Config.Servers)
	if err != nil {
		return nil, err
	}
	flt, err := ctrlplane.StartSimFleetOpts(ev, ctrlplane.FleetOptions{
		Version:  "scenario",
		SafeMode: c.SafeMode,
		Learn:    c.Learn,
	})
	if err != nil {
		return nil, err
	}
	defer flt.Close()
	inj, err := faults.NewNetInjector(faults.NetConfig{Seed: c.Config.Seed}, nil)
	if err != nil {
		return nil, err
	}
	ccfg := ctrlplane.Config{
		Agents: flt.Refs(),
		// One step of lease: a partitioned agent fences (or enters safe
		// mode) within the interval after its last grant, and MissK=1
		// expires its membership in the same interval the outage lands.
		LeaseS:     c.Config.StepS,
		MissK:      1,
		Retries:    1,
		RPCTimeout: 5 * time.Second,
		Transport:  inj,
		Seed:       c.Config.Seed,
	}
	if c.LeaseIv > 0 {
		// Protocol-clock leases: LeaseIv intervals at the nominal step
		// length replace LeaseS seconds for every member.
		ccfg.LeaseIv = c.LeaseIv
		ccfg.IntervalS = c.Config.StepS
	}
	if c.Learn != nil {
		// A learning fleet is apportioned by utility: learned curves
		// enter the DP once past the campaign's confidence floor, and
		// members still below it take the curveless even-share fallback.
		// A coord-restart rebuilds from this same ccfg, so the
		// replacement coordinator inherits the strategy and floor.
		ccfg.Strategy = ctrlplane.StrategyUtility
		ccfg.CurveConfFloor = c.LearnConfFloor
	}
	coord, err := ctrlplane.New(ccfg)
	if err != nil {
		return nil, err
	}
	defer func() { coord.Close() }()
	hosts := make([]string, 0, len(flt.Refs()))
	for _, ref := range flt.Refs() {
		hosts = append(hosts, strings.TrimPrefix(ref.URL, "http://"))
	}
	eventsAt := make(map[int][]Event)
	for _, ev := range c.Events {
		eventsAt[ev.Step] = append(eventsAt[ev.Step], ev)
	}

	r := &Result{Campaign: c, LeaderlessMinCapW: math.Inf(1)}
	ck := ctrlChecker{clock: c.LeaseIv > 0, learn: c.Learn != nil}
	ctx := context.Background()
	leaderDown := false
	skew := make([]float64, c.Config.Servers)
	var accExpiries, accRejoins, accRehyd int
	for s := 0; s < c.Config.Steps; s++ {
		for _, ev := range eventsAt[s] {
			r.logf("event step=%03d kind=%s agent=%d %s", ev.Step, ev.Kind, ev.Agent, ev.Detail)
			switch ev.Kind {
			case "partition":
				inj.SetDown(hosts[ev.Agent], true)
			case "heal":
				inj.SetDown(hosts[ev.Agent], false)
			case "leader-down":
				leaderDown = true
			case "leader-up":
				// The restarted coordinator returns under a fresh epoch,
				// as the HA layer would after winning an election: the
				// granted ledger resets and every member is assigned
				// afresh — no lease from the old epoch is renewed.
				leaderDown = false
				coord.SetEpoch(coord.Epoch() + 1)
			case "skew":
				// The victim's local clock runs fast by this rate for
				// the rest of the run.
				skew[ev.Agent] = ev.Value
			case "clock-pause":
				// A stall, not a crash: the same coordinator resumes
				// later on its own counter, no epoch bump.
				leaderDown = true
			case "clock-resume":
				leaderDown = false
			case "coord-restart":
				// Crash-restart under the same epoch: the replacement
				// owns no interval history and must rehydrate it from
				// fleet scrapes before minting.
				st := coord.Stats()
				accExpiries += st.LeaseExpiries
				accRejoins += st.Rejoins
				accRehyd += st.Rehydrations
				coord.Close()
				if coord, err = ctrlplane.New(ccfg); err != nil {
					return r, err
				}
			}
		}
		t, capW := c.Caps[s].T, c.Caps[s].V
		led := !leaderDown
		var res ctrlplane.StepResult
		if led {
			if res, err = coord.Step(ctx, t, capW); err != nil {
				return r, err
			}
		}
		// The agents' own clocks advance regardless of the leader — the
		// daemon-side ticker is exactly what fences a stale lease when
		// the coordinator is gone. A skewed agent's clock reads ahead of
		// trace time by its rate error.
		for i, a := range flt.Agents {
			if err := a.Tick(t * (1 + skew[i])); err != nil {
				return r, err
			}
		}
		ck.check(r, s, t, capW, led, res, flt.Agents, coord.Epoch())
	}
	st := coord.Stats()
	r.LeaseExpiries, r.Rejoins = accExpiries+st.LeaseExpiries, accRejoins+st.Rejoins
	r.Rehydrations = accRehyd + st.Rehydrations
	r.FinalEpoch = coord.Epoch()
	if ck.clock {
		maxSkew := 0.0
		for _, a := range flt.Agents {
			if sk := math.Abs(a.ClockSkewIv()); sk > maxSkew {
				maxSkew = sk
			}
		}
		r.logf("clock summary lastIv=%d rehydrations=%d maxSkewIv=%.3f",
			ck.lastIv, r.Rehydrations, maxSkew)
	}
	if c.Learn != nil {
		unconv := 0
		minConf := 1.0
		for _, a := range flt.Agents {
			if !a.LearnConverged() {
				unconv++
			}
			if v := a.LearnConfidence(); v < minConf {
				minConf = v
			}
		}
		r.LearnUnconverged, r.LearnMinConfidence = unconv, minConf
		r.logf("learning summary unconverged=%d minconf=%.3f confFloor=%.2f epsilon=%.2f",
			unconv, minConf, c.LearnConfFloor, c.Learn.Epsilon)
	}
	r.logf("summary steps=%d expiries=%d rejoins=%d epoch=%d safeModeSteps=%d",
		c.Config.Steps, r.LeaseExpiries, r.Rejoins, r.FinalEpoch, r.SafeModeSteps)
	return r, nil
}

// runESD drives an ESD campaign: the cluster-scale battery planner over
// the generated demand matrix and cap schedule. Pure computation — the
// replay guarantee is structural.
func runESD(c Campaign) (*Result, error) {
	if c.Battery == nil {
		return nil, fmt.Errorf("scenario: family %s has no battery setup", c.Config.Family)
	}
	if len(c.Demand) != c.Config.Steps {
		return nil, fmt.Errorf("scenario: %d demand rows for %d steps", len(c.Demand), c.Config.Steps)
	}
	devs := make([]*esd.Device, c.Config.Servers)
	for i := range devs {
		d, err := esd.NewDevice(c.Battery.Spec, c.Battery.SoC0[i])
		if err != nil {
			return nil, err
		}
		devs[i] = d
	}
	eventsAt := make(map[int][]Event)
	for _, ev := range c.Events {
		eventsAt[ev.Step] = append(eventsAt[ev.Step], ev)
	}
	spec := c.Battery.Spec
	r := &Result{Campaign: c, LeaderlessMinCapW: math.Inf(1)}
	dt := c.Config.StepS
	for s := 0; s < c.Config.Steps; s++ {
		for _, ev := range eventsAt[s] {
			r.logf("event step=%03d kind=%s agent=%d %s", ev.Step, ev.Kind, ev.Agent, ev.Detail)
		}
		capW := c.Caps[s].V
		var demand float64
		for _, w := range c.Demand[s] {
			demand += w
		}
		plan, err := esd.PlanFleet(capW, dt, devs, c.Demand[s])
		if err != nil {
			return r, err
		}
		for i := range devs {
			if plan.DischargeW[i] > 0 && plan.ChargeW[i] > 0 {
				r.violatef("step=%03d device %d both charges (%.3f W) and discharges (%.3f W)",
					s, i, plan.ChargeW[i], plan.DischargeW[i])
			}
		}
		disW, chgW := esd.ApplyFleet(plan, devs, dt)
		// The plan's bounds mirror the devices' clamps: what was planned
		// must be what moved.
		if math.Abs(disW-plan.TotalDischargeW()) > 1e-6 || math.Abs(chgW-plan.TotalChargeW()) > 1e-6 {
			r.violatef("step=%03d applied (%.3f, %.3f) W diverged from plan (%.3f, %.3f) W",
				s, disW, chgW, plan.TotalDischargeW(), plan.TotalChargeW())
		}
		// Grid draw never exceeds the cap except by the declared
		// shortfall — the unavoidable loss the planner must own up to.
		if plan.ShortfallW <= 1e-9 {
			if plan.GridW > capW+1e-6 {
				r.violatef("step=%03d grid %.3f W over cap %.3f W with no declared shortfall",
					s, plan.GridW, capW)
			}
		} else if math.Abs(plan.GridW-(capW+plan.ShortfallW)) > 1e-6 {
			r.violatef("step=%03d grid %.3f W inconsistent with cap %.3f W + shortfall %.3f W",
				s, plan.GridW, capW, plan.ShortfallW)
		}
		socMin, socMax := math.Inf(1), math.Inf(-1)
		for i, d := range devs {
			soc := d.SoC()
			if soc < spec.MinSoC-1e-9 || soc > spec.MaxSoC+1e-9 {
				r.violatef("step=%03d device %d SoC %.6f outside [%.2f, %.2f]",
					s, i, soc, spec.MinSoC, spec.MaxSoC)
			}
			socMin = math.Min(socMin, soc)
			socMax = math.Max(socMax, soc)
		}
		r.ShortfallJ += plan.ShortfallW * dt
		r.DischargedJ += disW * dt
		r.ChargedJ += chgW * dt
		r.logf("step=%03d t=%.0f cap=%.3f demand=%.3f grid=%.3f dis=%.3f chg=%.3f short=%.3f soc=[%.4f %.4f]",
			s, c.Caps[s].T, capW, demand, plan.GridW, disW, chgW, plan.ShortfallW, socMin, socMax)
	}
	r.logf("summary steps=%d dischargedJ=%.1f chargedJ=%.1f shortfallJ=%.1f",
		c.Config.Steps, r.DischargedJ, r.ChargedJ, r.ShortfallJ)
	return r, nil
}
