// Package scenario is the seeded chaos campaign engine: it composes
// the trace replayer, the cluster ESD scheduler, the fault injectors,
// and the networked control plane into named, replayable campaigns.
// Every campaign is generated from a (family, seed) pair by a single
// deterministic stream, and every run emits a canonical invariant log —
// so "replay bit-identically" is a byte comparison, and a failure seen
// in CI reproduces on a laptop from two integers.
//
// Families split along the two subsystems they stress:
//
//   - Control-plane families (cap-drop, rolling-restart,
//     partition-emergency) drive a real coordinator over loopback HTTP
//     against in-process agents, with scripted blackholes and leader
//     outages. Faults are scripted — deterministic SetDown windows and
//     epoch bumps — never probabilistic, because dice rolled under
//     concurrent fan-out are consumed in scheduler order and would
//     break replay.
//
//   - ESD families (flash-crowd, price-schedule, battery-fleet) drive
//     the cluster-scale battery planner (the paper's Fig. 12 extended
//     from one server to a rack) through demand waves, price-driven cap
//     schedules, and staggered state-of-charge fleets. The planner is a
//     pure function, so these replay trivially.
//
// Invariants checked every step: the cluster cap is never exceeded
// (with one lease of grace after a cap change, and a leaderless fleet
// held to the last granted cap), state of charge stays inside every
// device's usable window, and no lease is honored across leadership
// epochs.
package scenario

import (
	"fmt"
	"math/rand"

	"powerstruggle/internal/cf"
	"powerstruggle/internal/ctrlplane"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/trace"
)

// Family names one campaign shape.
type Family string

const (
	// FamilyCapDrop replays correlated cluster cap drops — the grid
	// emergency where the whole rack's budget collapses at once.
	FamilyCapDrop Family = "cap-drop"
	// FamilyFlashCrowd replays demand surge waves over a battery fleet
	// under a constant cap: the batteries peak-shave the crowd.
	FamilyFlashCrowd Family = "flash-crowd"
	// FamilyPriceSchedule replays a price-driven cap schedule: the cap
	// tightens when energy is expensive, and the fleet banks energy in
	// the cheap valleys to spend at the peaks.
	FamilyPriceSchedule Family = "price-schedule"
	// FamilyBatteryFleet replays a cyclic demand over a fleet whose
	// batteries start at staggered states of charge, so the discharge
	// order matters from the first interval.
	FamilyBatteryFleet Family = "battery-fleet"
	// FamilyRollingRestart kills the coordinator mid-traffic for a few
	// intervals and brings it back under a bumped epoch; agents ride
	// the outage in safe mode instead of fencing to zero.
	FamilyRollingRestart Family = "rolling-restart"
	// FamilyPartitionEmergency blackholes part of the fleet exactly
	// while the cluster cap drops — the compound failure where
	// re-apportioning and lease fencing must both hold the line.
	FamilyPartitionEmergency Family = "partition-emergency"
	// FamilyHierarchyShardLoss drives the two-tier budget tree through
	// a shard-coordinator loss — a leader kill with a warm standby, or
	// a whole shard going dark — while another shard saturates. The
	// invariant: the cluster cap is never exceeded, not even during the
	// failover or the dead shard's reservation window.
	FamilyHierarchyShardLoss Family = "hierarchy-shard-loss"
	// FamilyClockChaos drives a protocol-clock fleet through clock
	// trouble: agents whose local clocks run fast, a coordinator stall
	// spanning a cap emergency (leases age out on the agents' own
	// interval extrapolation), and a coordinator crash-restart that
	// must rehydrate its interval counter from fleet scrapes instead of
	// re-issuing interval numbers.
	FamilyClockChaos Family = "clock-chaos"
	// FamilyLearningColdStart boots a fleet that joins curveless and
	// characterizes its cap→utility curves online: epsilon-greedy probes
	// under live grants, learned curves admitted to the utility DP once
	// past a confidence floor, a coordinator crash-restart mid-learning,
	// and a cap drop with the curves still partial. The invariant: the
	// cluster cap is never exceeded while the curves are partial —
	// probes self-cap at or below grants, so a learning fleet can only
	// undershoot its budget, never overshoot it.
	FamilyLearningColdStart Family = "learning-cold-start"
)

// Description summarizes what the family stresses, for -list output
// and docs.
func (f Family) Description() string {
	switch f {
	case FamilyCapDrop:
		return "correlated cluster cap drops over the networked control plane"
	case FamilyFlashCrowd:
		return "demand surge waves peak-shaved by the battery fleet"
	case FamilyPriceSchedule:
		return "price-driven cap schedule: bank cheap energy, spend it at the peaks"
	case FamilyBatteryFleet:
		return "cyclic demand over a staggered-SoC battery fleet"
	case FamilyRollingRestart:
		return "coordinator restarts mid-traffic; agents ride the gap in safe mode"
	case FamilyPartitionEmergency:
		return "network partition during a cap emergency; fencing holds the line"
	case FamilyHierarchyShardLoss:
		return "two-tier budget tree loses a shard coordinator; the cap holds through failover"
	case FamilyClockChaos:
		return "skewed agent clocks, a coordinator stall, and a crash-restart under protocol-clock leases"
	case FamilyLearningColdStart:
		return "fleet joins curveless and learns its utility curves online; the cap holds while curves are partial"
	default:
		return ""
	}
}

// Families lists every campaign family in canonical order.
func Families() []Family {
	return []Family{
		FamilyCapDrop, FamilyFlashCrowd, FamilyPriceSchedule,
		FamilyBatteryFleet, FamilyRollingRestart, FamilyPartitionEmergency,
		FamilyHierarchyShardLoss, FamilyClockChaos, FamilyLearningColdStart,
	}
}

// ParseFamily maps a CLI name to a family.
func ParseFamily(name string) (Family, error) {
	for _, f := range Families() {
		if string(f) == name {
			return f, nil
		}
	}
	return "", fmt.Errorf("scenario: unknown family %q (%v)", name, Families())
}

// controlPlane reports whether the family drives the networked control
// plane (as opposed to the pure ESD fleet planner).
func (f Family) controlPlane() bool {
	switch f {
	case FamilyCapDrop, FamilyRollingRestart, FamilyPartitionEmergency,
		FamilyClockChaos, FamilyLearningColdStart:
		return true
	}
	return false
}

// Config selects and sizes one campaign. The zero values of Servers,
// Steps, and StepS take the defaults (4 servers, 24 steps of 300 s).
type Config struct {
	Family  Family
	Seed    int64
	Servers int
	Steps   int
	StepS   float64
}

// withDefaults normalizes the config.
func (c Config) withDefaults() Config {
	if c.Servers == 0 {
		c.Servers = 4
	}
	if c.Steps == 0 {
		c.Steps = 24
	}
	if c.StepS == 0 {
		c.StepS = 300
	}
	return c
}

// Validate reports whether the config is runnable.
func (c Config) Validate() error {
	if _, err := ParseFamily(string(c.Family)); err != nil {
		return err
	}
	c = c.withDefaults()
	if c.Servers < 2 || c.Servers > 64 {
		return fmt.Errorf("scenario: %d servers (want 2..64)", c.Servers)
	}
	if c.Steps < 4 || c.Steps > 10000 {
		return fmt.Errorf("scenario: %d steps (want 4..10000)", c.Steps)
	}
	if c.StepS <= 0 {
		return fmt.Errorf("scenario: step %g s", c.StepS)
	}
	return nil
}

// Event is one scripted fault in a campaign, pinned to a step index.
type Event struct {
	// Step is the control interval the event fires at (applied before
	// the interval runs).
	Step int
	// Kind is one of partition, heal, leader-down, leader-up (the
	// kinds the runner acts on), or an informational marker such as
	// cap-drop, surge, or price-peak whose effect is already baked
	// into the cap/demand schedules.
	Kind string
	// Agent is the target fleet index, or -1 for a cluster-wide event.
	Agent int
	// Value carries the event's numeric parameter — a skew event's
	// clock-rate error, for example. Zero for events that need none.
	Value float64
	// Detail is a human-readable note, stable across runs.
	Detail string
}

// BatterySetup equips an ESD campaign's fleet.
type BatterySetup struct {
	Spec esd.Spec
	// SoC0 is each server's initial state of charge.
	SoC0 []float64
}

// Campaign is one fully generated, replayable scenario: everything the
// runner consumes is here, and all of it is a pure function of the
// (family, seed, size) tuple.
type Campaign struct {
	Config Config
	// Caps is the cluster cap schedule, one point per step.
	Caps []trace.Point
	// Demand is per-step per-server unassisted grid demand (ESD
	// families only; nil for control-plane families, whose demand comes
	// from the cluster evaluator's workload mixes).
	Demand [][]float64
	// Events are the scripted faults in step order.
	Events []Event
	// Battery equips the fleet (ESD families only).
	Battery *BatterySetup
	// SafeMode configures leaderless degradation for the fleet's agents
	// (zero: agents fence to 0 W on lease lapse).
	SafeMode ctrlplane.SafeModeConfig
	// LeaseIv, when positive, runs the control plane on protocol-clock
	// leases: grants are valid LeaseIv coordinator intervals (aged at
	// StepS per interval) instead of LeaseS seconds.
	LeaseIv int
	// Learn, when non-nil, boots every fleet member curveless: agents
	// characterize their cap→utility curves online from this config
	// (the fleet harness derives per-agent seeds, Seed + server index),
	// and the coordinator apportions by utility with learned curves
	// gated on LearnConfFloor. Learning campaigns only.
	Learn *cf.OnlineConfig
	// LearnConfFloor is the coordinator's confidence floor for learned
	// curves: a member reporting coverage below it takes the curveless
	// even-share fallback instead of entering the utility DP.
	LearnConfFloor float64
	// TwoTier sizes the hierarchical drill (hierarchy families only).
	TwoTier *ctrlplane.TwoTierOptions
}

// Generate expands a config into a campaign. Same config, same
// campaign — the generator consumes a single seeded stream in a fixed
// order and never touches the wall clock.
func Generate(cfg Config) (Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return Campaign{}, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := Campaign{Config: cfg}
	switch cfg.Family {
	case FamilyCapDrop:
		genCapDrop(&c, rng)
	case FamilyFlashCrowd:
		genFlashCrowd(&c, rng)
	case FamilyPriceSchedule:
		genPriceSchedule(&c, rng)
	case FamilyBatteryFleet:
		genBatteryFleet(&c, rng)
	case FamilyRollingRestart:
		genRollingRestart(&c, rng)
	case FamilyPartitionEmergency:
		genPartitionEmergency(&c, rng)
	case FamilyHierarchyShardLoss:
		genHierarchyShardLoss(&c, rng)
	case FamilyClockChaos:
		genClockChaos(&c, rng)
	case FamilyLearningColdStart:
		genLearningColdStart(&c, rng)
	default:
		return Campaign{}, fmt.Errorf("scenario: unknown family %q", cfg.Family)
	}
	return c, nil
}

// uniform draws from [lo, hi).
func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// capSchedule builds a flat schedule at baseW, one point per step.
func capSchedule(cfg Config, baseW float64) []trace.Point {
	pts := make([]trace.Point, cfg.Steps)
	for i := range pts {
		pts[i] = trace.Point{T: float64(i) * cfg.StepS, V: baseW}
	}
	return pts
}
