package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"powerstruggle/internal/cf"
	"powerstruggle/internal/ctrlplane"
	"powerstruggle/internal/esd"
)

// Generation draws every parameter from one seeded stream in a fixed
// order, so a campaign is a pure function of (family, seed, size).
// The draws below deliberately stay inside the simulated machine's
// envelope: per-server caps in the 90–190 W band the cluster replays
// use, per-server demand under the lead-acid fleet's shaving reach.

// genCapDrop builds correlated cluster cap drops over a steady base.
func genCapDrop(c *Campaign, rng *rand.Rand) {
	cfg := c.Config
	base := float64(cfg.Servers) * uniform(rng, 150, 185)
	c.Caps = capSchedule(cfg, base)
	drops := 2 + rng.Intn(3)
	for d := 0; d < drops; d++ {
		at := 2 + rng.Intn(cfg.Steps-5)
		dur := 2 + rng.Intn(3)
		depth := uniform(rng, 0.40, 0.65)
		for s := at; s < at+dur && s < cfg.Steps; s++ {
			if v := base * depth; v < c.Caps[s].V {
				c.Caps[s].V = v
			}
		}
		c.Events = append(c.Events, Event{Step: at, Kind: "cap-drop", Agent: -1,
			Detail: fmt.Sprintf("cap to %.0f%% of base for %d steps", depth*100, dur)})
	}
}

// genRollingRestart builds coordinator outages mid-traffic: the leader
// vanishes for a few intervals, then returns under a bumped epoch. The
// fleet rides the gap in safe mode — hold the last grant, decay toward
// a floor — instead of cliffing to 0 W.
func genRollingRestart(c *Campaign, rng *rand.Rand) {
	cfg := c.Config
	base := float64(cfg.Servers) * uniform(rng, 150, 180)
	c.Caps = capSchedule(cfg, base)
	perShare := base / float64(cfg.Servers)
	c.SafeMode = ctrlplane.SafeModeConfig{
		HoldS:      cfg.StepS,
		DecayWPerS: uniform(rng, 0.01, 0.05),
		FloorW:     math.Min(20, perShare/2),
	}
	outages := 1 + rng.Intn(2)
	next := 3
	for o := 0; o < outages; o++ {
		room := cfg.Steps - 4 - next
		if room <= 0 {
			break
		}
		at := next + rng.Intn(room)
		dur := 2 + rng.Intn(3)
		if at+dur > cfg.Steps-2 {
			dur = cfg.Steps - 2 - at
		}
		c.Events = append(c.Events,
			Event{Step: at, Kind: "leader-down", Agent: -1,
				Detail: fmt.Sprintf("coordinator restart: silent for %d steps", dur)},
			Event{Step: at + dur, Kind: "leader-up", Agent: -1,
				Detail: "coordinator back under a bumped epoch"})
		next = at + dur + 2
	}
}

// genPartitionEmergency blackholes part of the fleet exactly while the
// cluster cap drops — re-apportioning across survivors and lease
// fencing of the partitioned agents must both hold the cap line.
func genPartitionEmergency(c *Campaign, rng *rand.Rand) {
	cfg := c.Config
	base := float64(cfg.Servers) * uniform(rng, 150, 185)
	c.Caps = capSchedule(cfg, base)
	// The emergency: a deep cap drop in the middle of the run.
	at := 4 + rng.Intn(cfg.Steps/2)
	dur := 3 + rng.Intn(3)
	depth := uniform(rng, 0.45, 0.60)
	for s := at; s < at+dur && s < cfg.Steps; s++ {
		c.Caps[s].V = base * depth
	}
	c.Events = append(c.Events, Event{Step: at, Kind: "cap-drop", Agent: -1,
		Detail: fmt.Sprintf("emergency: cap to %.0f%% of base for %d steps", depth*100, dur)})
	// The partition overlaps it: up to half the fleet goes dark one
	// step into the emergency and heals before the run ends.
	k := 1 + rng.Intn(cfg.Servers/2)
	victims := rng.Perm(cfg.Servers)[:k]
	pAt := at + 1
	pDur := dur + rng.Intn(2)
	if pAt+pDur > cfg.Steps-3 {
		pDur = cfg.Steps - 3 - pAt
	}
	for _, v := range victims {
		c.Events = append(c.Events,
			Event{Step: pAt, Kind: "partition", Agent: v,
				Detail: fmt.Sprintf("blackholed for %d steps during the emergency", pDur)},
			Event{Step: pAt + pDur, Kind: "heal", Agent: v, Detail: "partition lifted"})
	}
}

// genHierarchyShardLoss sizes a two-tier drill: Servers becomes the
// shard count, each shard gets a drawn fleet slice, and mid-run one
// shard loses its leading coordinator (warm standby promotes) or both
// coordinator nodes (the global reserves its budget until the reclaim
// window passes). A surviving shard saturates afterward, so the run
// also witnesses headroom flowing across the trunk under degraded
// membership. Event steps are 0-based like every family; the drill's
// own step numbering is 1-based, hence the +1 when sizing it.
func genHierarchyShardLoss(c *Campaign, rng *rand.Rand) {
	cfg := c.Config
	shards := cfg.Servers
	agents := 6 + rng.Intn(7)
	capW := 52 * float64(shards*agents)
	c.Caps = capSchedule(cfg, capW)
	tt := &ctrlplane.TwoTierOptions{
		Shards: shards, AgentsPerShard: agents,
		Intervals: cfg.Steps, IntervalS: cfg.StepS,
		ClusterCapW: capW, Seed: cfg.Seed,
	}
	kill0 := 3 + rng.Intn(cfg.Steps/3)
	tt.KillShard = rng.Intn(shards)
	if rng.Intn(2) == 1 {
		tt.KillShardStep = kill0 + 1
		c.Events = append(c.Events, Event{Step: kill0, Kind: "shard-loss", Agent: tt.KillShard,
			Detail: fmt.Sprintf("both coordinators of shard %d go dark; budget reserved until reclaim", tt.KillShard)})
	} else {
		tt.KillLeaderStep = kill0 + 1
		c.Events = append(c.Events, Event{Step: kill0, Kind: "shard-leader-down", Agent: tt.KillShard,
			Detail: fmt.Sprintf("shard %d leader dies; the warm standby promotes", tt.KillShard)})
	}
	tt.SaturateShard = (tt.KillShard + 1 + rng.Intn(shards-1)) % shards
	sat0 := kill0 + 2 + rng.Intn(3)
	if sat0 > cfg.Steps-4 {
		sat0 = cfg.Steps - 4
	}
	tt.SaturateStep = sat0 + 1
	c.Events = append(c.Events, Event{Step: sat0, Kind: "saturate", Agent: tt.SaturateShard,
		Detail: fmt.Sprintf("shard %d demand jumps to nameplate; headroom must flow to it", tt.SaturateShard)})
	c.TwoTier = tt
}

// genClockChaos builds a protocol-clock campaign: part of the fleet
// runs on fast local clocks, the coordinator stalls for several
// intervals exactly while the cluster cap collapses (leases must age
// out on the agents' own interval extrapolation, and the held budgets
// must decay on interval boundaries), and later the coordinator
// crash-restarts mid-run — the replacement has to rehydrate its
// interval counter from fleet scrapes before it may mint.
func genClockChaos(c *Campaign, rng *rand.Rand) {
	cfg := c.Config
	base := float64(cfg.Servers) * uniform(rng, 150, 180)
	c.Caps = capSchedule(cfg, base)
	perShare := base / float64(cfg.Servers)
	c.LeaseIv = 2
	c.SafeMode = ctrlplane.SafeModeConfig{
		HoldS:      cfg.StepS,
		DecayWPerS: uniform(rng, 0.01, 0.05),
		FloorW:     math.Min(20, perShare/2),
	}
	// Skewed clocks: up to half the fleet runs fast by a fixed rate —
	// under half an interval of drift per interval, so a skewed agent
	// ages leases early but never spuriously inside a healthy cadence.
	k := 1 + rng.Intn(cfg.Servers/2)
	for _, v := range rng.Perm(cfg.Servers)[:k] {
		rate := uniform(rng, 0.02, 0.10)
		c.Events = append(c.Events, Event{Step: 0, Kind: "skew", Agent: v, Value: rate,
			Detail: fmt.Sprintf("local clock runs %.1f%% fast", rate*100)})
	}
	// The stall: the coordinator goes silent past the two-interval
	// lease, and the cap drops while nobody can re-apportion it — the
	// fleet must ride on held grants decaying along interval
	// boundaries, not on wall-second guesses.
	at := 3 + rng.Intn(cfg.Steps/3)
	dur := 3 + rng.Intn(2)
	depth := uniform(rng, 0.50, 0.70)
	for s := at + 1; s < at+dur && s < cfg.Steps; s++ {
		c.Caps[s].V = base * depth
	}
	c.Events = append(c.Events,
		Event{Step: at, Kind: "clock-pause", Agent: -1,
			Detail: fmt.Sprintf("coordinator stalls for %d steps; cap drops to %.0f%% mid-stall", dur, depth*100)},
		Event{Step: at + dur, Kind: "clock-resume", Agent: -1,
			Detail: "coordinator resumes minting on its own counter"})
	// The restart: a fresh coordinator under the same epoch. It owns no
	// interval history — granting before rehydrating from a majority of
	// scrapes could re-issue interval numbers, which the duplicate-mint
	// invariant would catch.
	rAt := at + dur + 2 + rng.Intn(2)
	if rAt > cfg.Steps-3 {
		rAt = cfg.Steps - 3
	}
	c.Events = append(c.Events, Event{Step: rAt, Kind: "coord-restart", Agent: -1,
		Detail: "coordinator crash-restarts; interval counter rehydrates from fleet scrapes"})
}

// genLearningColdStart builds the online-learning campaign: a
// protocol-clock fleet joins curveless under a deliberately tight cap
// (the even split a curveless fleet starts on leaves performance on the
// table, so the learned curves have watts to move once admitted), the
// coordinator crash-restarts mid-learning, and the cap drops with the
// curves still partial. The confidence floor is drawn low enough that
// half-learned curves get admitted mid-run — the window the cap
// invariant must survive. A curve admitted early may stall below full
// coverage (probes never exceed the grant, so cells above a modest
// grant can stay unsampled); that is allowed — the invariant is about
// the cap, not about convergence.
func genLearningColdStart(c *Campaign, rng *rand.Rand) {
	cfg := c.Config
	base := float64(cfg.Servers) * uniform(rng, 95, 120)
	c.Caps = capSchedule(cfg, base)
	perShare := base / float64(cfg.Servers)
	c.LeaseIv = 2
	c.SafeMode = ctrlplane.SafeModeConfig{
		HoldS:      cfg.StepS,
		DecayWPerS: uniform(rng, 0.01, 0.05),
		FloorW:     math.Min(20, perShare/2),
	}
	c.Learn = &cf.OnlineConfig{Epsilon: uniform(rng, 0.3, 0.6), Seed: cfg.Seed}
	c.LearnConfFloor = uniform(rng, 0.2, 0.45)
	c.Events = append(c.Events, Event{Step: 0, Kind: "cold-start", Agent: -1,
		Detail: fmt.Sprintf("fleet joins curveless; epsilon %.2f probes, curves admitted at %.0f%% coverage",
			c.Learn.Epsilon, c.LearnConfFloor*100)})
	// The crash-restart lands mid-learning: the replacement coordinator
	// must rehydrate its interval counter and re-scrape the half-learned
	// curves — the fleet's estimator state lives on the agents, so the
	// restart must not reset it.
	rAt := 2 + rng.Intn(max(1, cfg.Steps/2))
	if rAt > cfg.Steps-2 {
		rAt = cfg.Steps - 2
	}
	c.Events = append(c.Events, Event{Step: rAt, Kind: "coord-restart", Agent: -1,
		Detail: "coordinator crash-restarts mid-learning; curves re-scraped after rehydration"})
	// The cap drop lands after the restart, while curves are still
	// partial: probing members self-cap at or below the shrunken grants,
	// so the tightened budget holds through the learning window.
	dAt := rAt + 1 + rng.Intn(2)
	if dAt > cfg.Steps-2 {
		dAt = cfg.Steps - 2
	}
	dur := 2 + rng.Intn(2)
	depth := uniform(rng, 0.60, 0.80)
	for s := dAt; s < dAt+dur && s < cfg.Steps; s++ {
		c.Caps[s].V = base * depth
	}
	c.Events = append(c.Events, Event{Step: dAt, Kind: "cap-drop", Agent: -1,
		Detail: fmt.Sprintf("cap to %.0f%% of base for %d steps with curves still partial", depth*100, dur)})
}

// genFlashCrowd builds demand surge waves over a battery fleet under a
// constant cap: every wave pushes fleet demand past the cap, and the
// batteries peak-shave it.
func genFlashCrowd(c *Campaign, rng *rand.Rand) {
	cfg := c.Config
	c.Caps = capSchedule(cfg, float64(cfg.Servers)*95)
	base := make([]float64, cfg.Servers)
	for i := range base {
		base[i] = uniform(rng, 65, 90)
	}
	mult := make([]float64, cfg.Steps)
	for s := range mult {
		mult[s] = 1
	}
	waves := 2 + rng.Intn(2)
	for w := 0; w < waves; w++ {
		at := 2 + rng.Intn(cfg.Steps-6)
		dur := 2 + rng.Intn(3)
		m := uniform(rng, 1.7, 2.3)
		for s := at; s < at+dur && s < cfg.Steps; s++ {
			if m > mult[s] {
				mult[s] = m
			}
		}
		c.Events = append(c.Events, Event{Step: at, Kind: "surge", Agent: -1,
			Detail: fmt.Sprintf("flash crowd: %.1fx demand for %d steps", m, dur)})
	}
	c.Demand = make([][]float64, cfg.Steps)
	for s := range c.Demand {
		row := make([]float64, cfg.Servers)
		for i := range row {
			row[i] = base[i] * mult[s] * (1 + 0.03*uniform(rng, -1, 1))
		}
		c.Demand[s] = row
	}
	spec := esd.LeadAcid(uniform(rng, 2e5, 4e5))
	c.Battery = &BatterySetup{Spec: spec, SoC0: esd.StaggeredSoC(spec, cfg.Servers)}
}

// genPriceSchedule derives the cap from an energy price curve: tight
// while expensive, generous in the valleys. The fleet banks energy
// cheap and spends it at the peaks.
func genPriceSchedule(c *Campaign, rng *rand.Rand) {
	cfg := c.Config
	hi := float64(cfg.Servers) * 110
	// Peak cap below the minimum possible fleet demand (70 W/server),
	// so every price peak forces a discharge decision.
	lo := float64(cfg.Servers) * uniform(rng, 55, 65)
	c.Caps = capSchedule(cfg, hi)
	peaks := 2
	for p := 0; p < peaks; p++ {
		at := 2 + p*cfg.Steps/2 + rng.Intn(cfg.Steps/4)
		dur := 3 + rng.Intn(3)
		for s := at; s < at+dur && s < cfg.Steps; s++ {
			c.Caps[s].V = lo
		}
		c.Events = append(c.Events, Event{Step: at, Kind: "price-peak", Agent: -1,
			Detail: fmt.Sprintf("price peak: cap %.0f W for %d steps", lo, dur)})
	}
	c.Demand = make([][]float64, cfg.Steps)
	for s := range c.Demand {
		row := make([]float64, cfg.Servers)
		for i := range row {
			row[i] = uniform(rng, 70, 95)
		}
		c.Demand[s] = row
	}
	spec := esd.LeadAcid(uniform(rng, 2.5e5, 4e5))
	c.Battery = &BatterySetup{Spec: spec, SoC0: esd.StaggeredSoC(spec, cfg.Servers)}
}

// genBatteryFleet builds a cyclic demand over a staggered-SoC fleet:
// no two servers start equally provisioned, so the richest-first
// discharge and poorest-first charge orders matter from step one.
func genBatteryFleet(c *Campaign, rng *rand.Rand) {
	cfg := c.Config
	c.Caps = capSchedule(cfg, float64(cfg.Servers)*uniform(rng, 90, 105))
	base := uniform(rng, 70, 90)
	amp := uniform(rng, 20, 35)
	period := float64(cfg.Steps) / float64(2+rng.Intn(2))
	phase := uniform(rng, 0, 2*math.Pi)
	c.Events = append(c.Events, Event{Step: 0, Kind: "demand-cycle", Agent: -1,
		Detail: fmt.Sprintf("demand %.0f±%.0f W/server over a %.0f-step period", base, amp, period)})
	c.Demand = make([][]float64, cfg.Steps)
	for s := range c.Demand {
		wave := base + amp*math.Sin(2*math.Pi*float64(s)/period+phase)
		row := make([]float64, cfg.Servers)
		for i := range row {
			d := wave * (1 + 0.04*uniform(rng, -1, 1))
			if d < 10 {
				d = 10
			}
			row[i] = d
		}
		c.Demand[s] = row
	}
	spec := esd.LiIon(uniform(rng, 1.5e5, 3e5))
	c.Battery = &BatterySetup{Spec: spec, SoC0: esd.StaggeredSoC(spec, cfg.Servers)}
}
